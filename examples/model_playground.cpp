// Model playground (Section 7): fit the three embedded ML families on the
// same set of measured samples and compare their accuracy on held-out
// configurations — Poly and Trees do well on little data, the NN lags.
//
// Build & run:  ./build/examples/model_playground

#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "camal/evaluator.h"
#include "camal/sample.h"
#include "model/cost_model.h"
#include "util/random.h"

using namespace camal;
using namespace camal::tune;

int main() {
  SystemSetup setup;
  setup.num_entries = 8000;
  setup.total_memory_bits = 16 * 8000;
  setup.train_ops = 800;
  Evaluator evaluator(setup);
  const model::SystemParams sys = setup.ToModelParams();
  model::WorkloadSpec w{0.25, 0.25, 0.25, 0.25};

  // Gather samples on a (T, bits-per-key) grid.
  util::Random rng(1);
  std::vector<Sample> train, test;
  uint64_t salt = 0;
  for (double t : {2.0, 4.0, 8.0, 16.0, 32.0}) {
    for (double bpk : {0.0, 4.0, 8.0, 12.0}) {
      TuningConfig c;
      c.size_ratio = t;
      c.mf_bits = bpk * sys.num_entries;
      c.mb_bits = sys.total_memory_bits - c.mf_bits;
      Sample s = evaluator.MakeSample(w, c, ++salt);
      (rng.Bernoulli(0.75) ? train : test).push_back(s);
    }
  }
  std::printf("%zu training samples, %zu held-out samples\n\n", train.size(),
              test.size());

  for (ModelKind kind :
       {ModelKind::kPoly, ModelKind::kTrees, ModelKind::kNn}) {
    std::unique_ptr<ml::Regressor> model = MakeModel(kind, 7);
    std::vector<std::vector<double>> x;
    std::vector<double> y;
    for (const Sample& s : train) {
      x.push_back(RawFeatures(s.workload, s.config, s.sys));
      y.push_back(s.mean_latency_ns / 1000.0);
    }
    model->Fit(x, y);
    double sse = 0.0, baseline = 0.0, mean = 0.0;
    for (const Sample& s : test) mean += s.mean_latency_ns / 1000.0;
    mean /= static_cast<double>(test.size());
    for (const Sample& s : test) {
      const double pred =
          model->Predict(RawFeatures(s.workload, s.config, s.sys));
      const double truth = s.mean_latency_ns / 1000.0;
      sse += (pred - truth) * (pred - truth);
      baseline += (mean - truth) * (mean - truth);
    }
    std::printf("%-6s held-out RMSE %7.2f us   (R^2 = %.2f)\n",
                ModelKindName(kind),
                std::sqrt(sse / static_cast<double>(test.size())),
                1.0 - sse / baseline);
  }

  // The closed-form I/O model, for contrast: correlation only, no latency.
  const model::CostModel cm(sys);
  std::printf("\nclosed-form I/O cost vs measured latency (held-out):\n");
  for (const Sample& s : test) {
    std::printf("  T=%4.0f bpk=%4.1f   theory=%6.3f I/O   measured=%7.1f us\n",
                s.config.size_ratio, s.config.mf_bits / sys.num_entries,
                cm.OpCost(s.workload, s.config.ToModelConfig()),
                s.mean_latency_ns / 1e3);
  }
  return 0;
}
