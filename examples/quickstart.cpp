// Quickstart: build an LSM-tree on the simulated device, run a few
// operations, and tune it for a workload with the closed-form model.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>
#include <vector>

#include "camal/classic_tuner.h"
#include "camal/sample.h"
#include "lsm/lsm_tree.h"
#include "model/workload_spec.h"
#include "sim/device.h"

using camal::lsm::Entry;
using camal::lsm::LsmTree;
using camal::lsm::Options;
using camal::model::WorkloadSpec;
using camal::sim::Device;
using camal::tune::ClassicTuner;
using camal::tune::SystemSetup;
using camal::tune::TunerOptions;
using camal::tune::TuningConfig;

int main() {
  // 1. A device and a tree with hand-picked options.
  Device device;
  Options options;
  options.size_ratio = 4.0;
  options.entry_bytes = 128;
  options.buffer_bytes = 128 * 256;  // 256 entries of write buffer
  options.bloom_bits = 10 * 10000;   // ~10 bits per key
  LsmTree tree(options, &device);

  // 2. Write, read, delete, scan.
  for (uint64_t k = 1; k <= 10000; ++k) tree.Put(k * 2, k);
  uint64_t value = 0;
  if (tree.Get(2000, &value)) {
    std::printf("Get(2000) -> %llu\n", static_cast<unsigned long long>(value));
  }
  tree.Delete(2000);
  std::printf("after Delete: Get(2000) found=%d\n",
              static_cast<int>(tree.Get(2000, &value)));

  std::vector<Entry> scan;
  tree.Scan(5000, 5, &scan);
  std::printf("Scan(5000, 5):");
  for (const Entry& e : scan) {
    std::printf(" %llu", static_cast<unsigned long long>(e.key));
  }
  std::printf("\n");

  // 3. What did that cost on the simulated device?
  std::printf("simulated time: %.2f ms, block reads: %llu, writes: %llu\n",
              device.elapsed_ns() / 1e6,
              static_cast<unsigned long long>(device.block_reads()),
              static_cast<unsigned long long>(device.block_writes()));
  std::printf("levels: %d, entries on disk: %llu\n",
              tree.NumPopulatedLevels(),
              static_cast<unsigned long long>(tree.DiskEntries()));

  // 4. Ask the classic (closed-form) tuner for a write-heavy configuration.
  SystemSetup setup;
  setup.num_entries = 10000;
  setup.total_memory_bits = 16 * 10000;
  ClassicTuner tuner(setup, TunerOptions{});
  WorkloadSpec write_heavy{0.05, 0.05, 0.05, 0.85};
  const TuningConfig tuned = tuner.Recommend(write_heavy);
  std::printf("classic tuning for 85%% writes: %s\n",
              tuned.ToString().c_str());

  // 5. Reconfigure the live tree to the tuned shape (lazy transition).
  tree.Reconfigure(tuned.ToOptions(setup));
  for (uint64_t k = 1; k <= 5000; ++k) tree.Put(k * 2 + 100000, k);
  std::printf("after reconfigure: in_transition=%d, transition I/Os=%llu\n",
              static_cast<int>(tree.InTransition()),
              static_cast<unsigned long long>(tree.counters().transition_ios));
  return 0;
}
