// Dynamic mode (Section 6): a single live LSM-tree serves the paper's 24
// shifting Table-2 workloads while CAMAL's detector (window p, threshold
// tau) re-tunes it on the fly. The tree morphs lazily during natural
// compactions; transition I/Os are reported.
//
// Build & run:  ./build/examples/dynamic_workloads

#include <cstdio>

#include "camal/camal_tuner.h"
#include "camal/dynamic_tuner.h"
#include "camal/evaluator.h"
#include "lsm/lsm_tree.h"
#include "workload/tables.h"

using namespace camal;
using namespace camal::tune;

int main() {
  SystemSetup setup;
  setup.num_entries = 20000;  // keep the demo quick
  setup.total_memory_bits = 16 * 20000;

  // Train once, at 1/10 scale.
  TunerOptions options;
  options.model_kind = ModelKind::kTrees;
  options.extrapolation_factor = 10.0;
  CamalTuner camal(setup, options);
  camal.Train(workload::TrainingWorkloads());
  std::printf("trained: %zu samples\n\n", camal.samples().size());

  // One long-lived tree, starting from the RocksDB-style default config.
  sim::Device device(setup.device);
  workload::KeySpace keys(setup.num_entries, setup.seed);
  lsm::LsmTree tree(MonkeyDefaultConfig(setup).ToOptions(setup), &device);
  workload::BulkLoad(&tree, keys);

  DynamicTuner::Params params;
  params.window_ops = 1000;  // p
  params.tau = 0.10;         // tau
  DynamicTuner dynamic(
      [&](const model::WorkloadSpec& w, const model::SystemParams& target) {
        return camal.RecommendFor(w, target);
      },
      setup, params);

  std::printf("%3s %-38s %10s %8s %6s %8s\n", "ph", "workload", "latency/op",
              "I/O-op", "T", "reconf");
  const auto phases = workload::ShiftingWorkloads();
  for (size_t i = 0; i < phases.size(); ++i) {
    const auto result =
        dynamic.RunPhase(&tree, &keys, phases[i], 4000, /*seed=*/i + 1);
    std::printf("%3zu %-38s %8.1fus %8.2f %6.0f %8zu\n", i + 1,
                phases[i].ToString().c_str(), result.MeanLatencyNs() / 1e3,
                result.IosPerOp(), tree.options().size_ratio,
                dynamic.reconfigurations());
  }
  std::printf("\ntotal transition I/Os: %llu (vs %llu compaction I/Os)\n",
              static_cast<unsigned long long>(tree.counters().transition_ios),
              static_cast<unsigned long long>(
                  tree.counters().compaction_block_reads +
                  tree.counters().compaction_block_writes));
  std::printf("data grew to %llu entries across the phases\n",
              static_cast<unsigned long long>(tree.TotalEntries()));
  return 0;
}
