// End-to-end CAMAL tuning: train the decoupled active learner on the
// paper's Table-1 workloads (with the x10 extrapolation strategy), then
// compare its recommendation against well-tuned-RocksDB defaults and
// classic tuning on a workload it never saw.
//
// Build & run:  ./build/examples/workload_tuning

#include <cstdio>

#include "camal/camal_tuner.h"
#include "camal/classic_tuner.h"
#include "camal/evaluator.h"
#include "workload/tables.h"

using namespace camal;
using namespace camal::tune;

int main() {
  SystemSetup setup;  // 40k x 128B entries, ~16 bits/key memory budget
  Evaluator evaluator(setup);

  // Train CAMAL (gradient-boosted trees) at 1/10th scale — Lemma 5.1 lets
  // the learned model extrapolate to the full system.
  TunerOptions options;
  options.model_kind = ModelKind::kTrees;
  options.extrapolation_factor = 10.0;
  CamalTuner camal(setup, options);
  std::printf("training CAMAL(Trees) on the 15 Table-1 workloads...\n");
  camal.Train(workload::TrainingWorkloads());
  std::printf("  %zu samples, simulated sampling cost %.1f s\n",
              camal.samples().size(), camal.sampling_cost_ns() / 1e9);

  ClassicTuner classic(setup, TunerOptions{});
  MonkeyTuner monkey(setup);

  // A workload outside the training table: mixed reads with some scans.
  model::WorkloadSpec target{0.15, 0.45, 0.25, 0.15};
  std::printf("\ntarget workload %s\n", target.ToString().c_str());

  struct Row {
    const char* name;
    TuningConfig config;
  };
  const Row rows[] = {
      {"CAMAL(Trees)", camal.Recommend(target)},
      {"Classic", classic.Recommend(target)},
      {"Monkey", monkey.Recommend(target)},
  };
  std::printf("%-14s %-44s %10s %10s %8s\n", "method", "config",
              "latency/op", "p90", "I/O per op");
  for (const Row& row : rows) {
    const Measurement m = evaluator.Evaluate(target, row.config);
    std::printf("%-14s %-44s %8.1fus %8.1fus %8.2f\n", row.name,
                row.config.ToString().c_str(), m.mean_latency_ns / 1e3,
                m.p90_latency_ns / 1e3, m.ios_per_op);
  }
  return 0;
}
