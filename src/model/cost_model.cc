#include "model/cost_model.h"

#include <algorithm>
#include <cmath>

namespace camal::model {

namespace {
constexpr double kLn2Sq = 0.4804530139182014;  // ln^2(2)
}  // namespace

double CostModel::Levels(const ModelConfig& c) const {
  const double mb = std::max(c.mb_bits, params_.entry_bits);
  const double ratio = params_.num_entries * params_.entry_bits / mb + 1.0;
  const double l = std::log(ratio) / std::log(c.size_ratio);
  return std::max(1.0, l);
}

double CostModel::RunsPerLevel(const ModelConfig& c) const {
  if (c.runs_per_level > 0.0) return c.runs_per_level;
  return c.policy == lsm::CompactionPolicy::kLeveling ? 1.0 : c.size_ratio;
}

double CostModel::ZeroResultLookupCost(const ModelConfig& c) const {
  const double fpr =
      std::exp(-kLn2Sq * c.mf_bits / params_.num_entries);
  return std::min(1.0, fpr) * RunsPerLevel(c);
}

double CostModel::NonZeroResultLookupCost(const ModelConfig& c) const {
  return ZeroResultLookupCost(c) + 1.0;
}

double CostModel::RangeLookupCost(const ModelConfig& c) const {
  const double k = RunsPerLevel(c);
  return k * Levels(c) + k * params_.selectivity / params_.block_entries;
}

double CostModel::WriteCost(const ModelConfig& c) const {
  const double k = RunsPerLevel(c);
  return Levels(c) * c.size_ratio / (k * params_.block_entries);
}

double CostModel::OpCost(const WorkloadSpec& w, const ModelConfig& c) const {
  return w.v * Corrected(CostChannel::kPointLookup, ZeroResultLookupCost(c)) +
         w.r * Corrected(CostChannel::kPointLookup,
                         NonZeroResultLookupCost(c)) +
         w.q * Corrected(CostChannel::kRangeLookup, RangeLookupCost(c)) +
         w.w * Corrected(CostChannel::kWrite, WriteCost(c));
}

double CostModel::ReadFanout(const WorkloadSpec& w, const ModelConfig& c) const {
  const double read_weight = w.v + w.r + w.q;
  if (read_weight <= 0.0) return 1.0;
  // Per-op independent reads by op type: a zero-result lookup's V reads
  // land on distinct runs; a non-zero lookup adds the hit block; a range
  // lookup opens K*L run cursors plus s/B data blocks (the Q formula).
  const double point_zero = ZeroResultLookupCost(c);
  const double point_hit = NonZeroResultLookupCost(c);
  const double range = RangeLookupCost(c);
  const double fanout =
      (w.v * point_zero + w.r * point_hit + w.q * range) / read_weight;
  return std::max(1.0, fanout);
}

double CostModel::OverlapFactor(const WorkloadSpec& w,
                                const ModelConfig& c) const {
  const double depth = std::max(1.0, c.io_queue_depth);
  return 1.0 / std::min(depth, ReadFanout(w, c));
}

double CostModel::EffectiveOpCost(const WorkloadSpec& w,
                                  const ModelConfig& c) const {
  const double ov = OverlapFactor(w, c);
  return ov * (w.v * Corrected(CostChannel::kPointLookup,
                               ZeroResultLookupCost(c)) +
               w.r * Corrected(CostChannel::kPointLookup,
                               NonZeroResultLookupCost(c)) +
               w.q * Corrected(CostChannel::kRangeLookup,
                               RangeLookupCost(c))) +
         w.w * Corrected(CostChannel::kWrite, WriteCost(c));
}

int CostModel::RecommendedQueueDepth(const WorkloadSpec& w,
                                     const ModelConfig& c,
                                     int max_depth) const {
  const int fanout = static_cast<int>(std::llround(ReadFanout(w, c)));
  return std::clamp(fanout, 1, std::max(1, max_depth));
}

double CostModel::SizeRatioLimit() const {
  const double t_lim =
      params_.num_entries * params_.entry_bits / params_.total_memory_bits +
      1.0;
  return std::clamp(t_lim, 4.0, 64.0);
}

}  // namespace camal::model
