#include "model/cost_model.h"

#include <algorithm>
#include <cmath>

namespace camal::model {

namespace {
constexpr double kLn2Sq = 0.4804530139182014;  // ln^2(2)
}  // namespace

double CostModel::Levels(const ModelConfig& c) const {
  const double mb = std::max(c.mb_bits, params_.entry_bits);
  const double ratio = params_.num_entries * params_.entry_bits / mb + 1.0;
  const double l = std::log(ratio) / std::log(c.size_ratio);
  return std::max(1.0, l);
}

double CostModel::RunsPerLevel(const ModelConfig& c) const {
  if (c.runs_per_level > 0.0) return c.runs_per_level;
  return c.policy == lsm::CompactionPolicy::kLeveling ? 1.0 : c.size_ratio;
}

double CostModel::ZeroResultLookupCost(const ModelConfig& c) const {
  const double fpr =
      std::exp(-kLn2Sq * c.mf_bits / params_.num_entries);
  return std::min(1.0, fpr) * RunsPerLevel(c);
}

double CostModel::NonZeroResultLookupCost(const ModelConfig& c) const {
  return ZeroResultLookupCost(c) + 1.0;
}

double CostModel::RangeLookupCost(const ModelConfig& c) const {
  const double k = RunsPerLevel(c);
  return k * Levels(c) + k * params_.selectivity / params_.block_entries;
}

double CostModel::WriteCost(const ModelConfig& c) const {
  const double k = RunsPerLevel(c);
  return Levels(c) * c.size_ratio / (k * params_.block_entries);
}

double CostModel::OpCost(const WorkloadSpec& w, const ModelConfig& c) const {
  return w.v * ZeroResultLookupCost(c) + w.r * NonZeroResultLookupCost(c) +
         w.q * RangeLookupCost(c) + w.w * WriteCost(c);
}

double CostModel::SizeRatioLimit() const {
  const double t_lim =
      params_.num_entries * params_.entry_bits / params_.total_memory_bits +
      1.0;
  return std::clamp(t_lim, 4.0, 64.0);
}

}  // namespace camal::model
