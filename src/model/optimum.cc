#include "model/optimum.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace camal::model {

namespace {
constexpr double kLn2Sq = 0.4804530139182014;

// Golden-section minimization of a unimodal-ish 1-D function on [lo, hi].
template <typename F>
double GoldenMin(F f, double lo, double hi, int iters = 80) {
  const double phi = (std::sqrt(5.0) - 1.0) / 2.0;
  double a = lo, b = hi;
  double x1 = b - phi * (b - a);
  double x2 = a + phi * (b - a);
  double f1 = f(x1), f2 = f(x2);
  for (int i = 0; i < iters; ++i) {
    if (f1 < f2) {
      b = x2;
      x2 = x1;
      f2 = f1;
      x1 = b - phi * (b - a);
      f1 = f(x1);
    } else {
      a = x1;
      x1 = x2;
      f1 = f2;
      x2 = a + phi * (b - a);
      f2 = f(x2);
    }
  }
  return (a + b) / 2.0;
}
}  // namespace

double MinBufferBits(const SystemParams& params) {
  // At least 5% of the memory budget (scale-invariant, so a scaled-down
  // training instance explores the same bits-per-key range as the full
  // system — extrapolation, Section 5), floored at 8 entries.
  return std::max(8.0 * params.entry_bits, 0.10 * params.total_memory_bits);
}

double OptimalSizeRatioLeveling(const WorkloadSpec& w_in,
                                const CostModel& model) {
  const WorkloadSpec w = w_in.Normalized();
  const double t_lim = model.SizeRatioLimit();
  const double b = model.params().block_entries;
  if (w.w <= 1e-9 && w.q <= 1e-9) return 10.0;  // point-lookup only
  if (w.w <= 1e-9) return t_lim;                 // no writes: shrink L
  // g(T) = w*T*(ln T - 1) - q*B, increasing for T > 1 on [e, T_lim].
  auto g = [&](double t) { return w.w * t * (std::log(t) - 1.0) - w.q * b; };
  const double e = std::exp(1.0);
  if (g(t_lim) <= 0.0) return t_lim;
  double lo = e, hi = t_lim;
  for (int i = 0; i < 100; ++i) {
    const double mid = (lo + hi) / 2.0;
    (g(mid) < 0.0 ? lo : hi) = mid;
  }
  return std::clamp((lo + hi) / 2.0, 2.0, t_lim);
}

double OptimalMfBitsLeveling(const WorkloadSpec& w_in, const CostModel& model,
                             double size_ratio, double mc_bits) {
  const WorkloadSpec w = w_in.Normalized();
  const SystemParams& p = model.params();
  const double budget = p.total_memory_bits - mc_bits;
  const double mf_max = std::max(0.0, budget - MinBufferBits(p));
  if (mf_max <= 0.0) return 0.0;
  if (w.v + w.r <= 1e-9) return 0.0;  // filters useless without point reads
  const double second_coeff =
      (w.q + w.w * size_ratio / p.block_entries) / std::log(size_ratio);
  if (second_coeff <= 1e-12) return mf_max;  // nothing competes for memory
  // h(mf) = -c(v+r)/N * exp(-c*mf/N) + second_coeff / (budget - mf)
  auto h = [&](double mf) {
    return -kLn2Sq * (w.v + w.r) / p.num_entries *
               std::exp(-kLn2Sq * mf / p.num_entries) +
           second_coeff / std::max(1.0, budget - mf);
  };
  if (h(0.0) >= 0.0) return 0.0;
  if (h(mf_max) <= 0.0) return mf_max;
  double lo = 0.0, hi = mf_max;
  for (int i = 0; i < 100; ++i) {
    const double mid = (lo + hi) / 2.0;
    (h(mid) < 0.0 ? lo : hi) = mid;
  }
  return (lo + hi) / 2.0;
}

double OptimalSizeRatioNumeric(const WorkloadSpec& w_in,
                               const CostModel& model,
                               const ModelConfig& base) {
  const WorkloadSpec w = w_in.Normalized();
  const int t_lim = static_cast<int>(std::floor(model.SizeRatioLimit()));
  double best_t = 2.0;
  double best_cost = std::numeric_limits<double>::infinity();
  for (int t = 2; t <= t_lim; ++t) {
    ModelConfig c = base;
    c.size_ratio = t;
    const double cost = model.OpCost(w, c);
    if (cost < best_cost) {
      best_cost = cost;
      best_t = t;
    }
  }
  return best_t;
}

double OptimalMfBitsNumeric(const WorkloadSpec& w_in, const CostModel& model,
                            const ModelConfig& base, double mc_bits) {
  const WorkloadSpec w = w_in.Normalized();
  const SystemParams& p = model.params();
  const double budget = p.total_memory_bits - mc_bits;
  const double mf_max = std::max(0.0, budget - MinBufferBits(p));
  if (mf_max <= 0.0) return 0.0;
  auto objective = [&](double mf) {
    ModelConfig c = base;
    c.mf_bits = mf;
    c.mb_bits = budget - mf;
    return model.OpCost(w, c);
  };
  const double mf = GoldenMin(objective, 0.0, mf_max);
  // Golden section can get stuck on a boundary plateau; compare endpoints.
  double best = mf;
  double best_cost = objective(mf);
  for (double cand : {0.0, mf_max}) {
    const double cost = objective(cand);
    if (cost < best_cost) {
      best_cost = cost;
      best = cand;
    }
  }
  return best;
}

TheoreticalOptimum MinimizeCost(const WorkloadSpec& w_in,
                                const CostModel& model,
                                lsm::CompactionPolicy policy) {
  const WorkloadSpec w = w_in.Normalized();
  const SystemParams& p = model.params();
  const int t_lim = static_cast<int>(std::floor(model.SizeRatioLimit()));
  TheoreticalOptimum best;
  best.cost = std::numeric_limits<double>::infinity();
  for (int t = 2; t <= t_lim; ++t) {
    ModelConfig c;
    c.policy = policy;
    c.size_ratio = t;
    const double mf = OptimalMfBitsNumeric(w, model, c, /*mc_bits=*/0.0);
    c.mf_bits = mf;
    c.mb_bits = p.total_memory_bits - mf;
    const double cost = model.OpCost(w, c);
    if (cost < best.cost) {
      best.cost = cost;
      best.config = c;
    }
  }
  return best;
}

TheoreticalOptimum MinimizeCostOverPolicies(const WorkloadSpec& w,
                                            const CostModel& model) {
  const TheoreticalOptimum lev =
      MinimizeCost(w, model, lsm::CompactionPolicy::kLeveling);
  const TheoreticalOptimum tier =
      MinimizeCost(w, model, lsm::CompactionPolicy::kTiering);
  return lev.cost <= tier.cost ? lev : tier;
}

}  // namespace camal::model
