#ifndef CAMAL_MODEL_COST_CORRECTOR_H_
#define CAMAL_MODEL_COST_CORRECTOR_H_

#include <cstddef>

namespace camal::model {

/// The cost channels a measured-cost corrector can adjust independently —
/// the three families of per-operation I/O cost the closed-form model
/// prices (point lookups V/R, range lookups Q, amortized writes W). A
/// corrector learns one predicted→measured mapping per channel, because the
/// model's error modes differ per channel (e.g. Bloom-probe cache residency
/// flatters point lookups while compaction write-back penalizes writes).
enum class CostChannel : int {
  kPointLookup = 0,
  kRangeLookup = 1,
  kWrite = 2,
};

inline constexpr size_t kNumCostChannels = 3;

/// Maps a model-predicted per-op cost to a calibrated estimate of what the
/// live system would measure. `CostModel` applies a corrector (when one is
/// attached) to each cost term of its workload-weighted objectives, so
/// everything that minimizes those objectives — tuner grids, arbiter
/// pricing, closed-form optima — transparently optimizes *corrected* cost.
///
/// Implementations must be pure functions of (channel, predicted): the
/// model may evaluate them any number of times in any order. An unfitted
/// corrector should return `predicted` unchanged (the identity), which is
/// also the contract of a detached (`nullptr`) corrector.
class CostCorrector {
 public:
  virtual ~CostCorrector() = default;

  /// Calibrated estimate of the measured per-op cost for a model
  /// prediction of `predicted` on `channel`.
  virtual double Correct(CostChannel channel, double predicted) const = 0;
};

}  // namespace camal::model

#endif  // CAMAL_MODEL_COST_CORRECTOR_H_
