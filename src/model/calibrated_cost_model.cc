#include "model/calibrated_cost_model.h"

namespace camal::model {

CalibratedCostModel MakeCalibratedModel(
    const SystemParams& params,
    std::shared_ptr<const CostCorrector> corrector) {
  return CalibratedCostModel(params, std::move(corrector));
}

}  // namespace camal::model
