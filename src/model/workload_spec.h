#ifndef CAMAL_MODEL_WORKLOAD_SPEC_H_
#define CAMAL_MODEL_WORKLOAD_SPEC_H_

#include <string>

#include "util/random.h"

namespace camal::model {

/// Operation mix of a workload (the paper's (v, r, q, w) vector) plus the
/// data-distribution knobs used by the evaluation section.
struct WorkloadSpec {
  /// Fraction of zero-result point lookups (v).
  double v = 0.25;
  /// Fraction of non-zero-result point lookups (r).
  double r = 0.25;
  /// Fraction of range lookups (q).
  double q = 0.25;
  /// Fraction of writes (w).
  double w = 0.25;

  /// Zipfian skew coefficient for key choice; 0 = uniform.
  double skew = 0.0;
  /// Fraction of writes that are deletes (the rest are updates/inserts).
  double delete_frac = 0.0;

  /// Rescales (v, r, q, w) to sum to 1. Requires a positive sum.
  WorkloadSpec Normalized() const;

  /// Sum of the four operation fractions.
  double Total() const { return v + r + q + w; }

  std::string ToString() const;
};

/// KL divergence KL(a || b) between two (normalized) operation mixes, the
/// distance Endure uses to define workload-uncertainty regions.
double KlDivergence(const WorkloadSpec& a, const WorkloadSpec& b);

/// Samples a workload whose KL divergence from `center` is at most `rho`
/// (rejection sampling over Dirichlet-ish perturbations).
WorkloadSpec SampleInKlBall(const WorkloadSpec& center, double rho,
                            util::Random* rng);

/// Linear interpolation between two mixes (used by shifting workloads).
WorkloadSpec Interpolate(const WorkloadSpec& a, const WorkloadSpec& b,
                         double t);

}  // namespace camal::model

#endif  // CAMAL_MODEL_WORKLOAD_SPEC_H_
