#ifndef CAMAL_MODEL_COST_MODEL_H_
#define CAMAL_MODEL_COST_MODEL_H_

#include <cstdint>

#include "lsm/options.h"
#include "model/cost_corrector.h"
#include "model/workload_spec.h"

namespace camal::model {

/// Fixed system facts the complexity model needs (Figure 2 of the paper).
struct SystemParams {
  /// Total number of entries (N).
  double num_entries = 40000;
  /// Entry size in bits (E).
  double entry_bits = 128 * 8;
  /// Entries per storage block (B).
  double block_entries = 32;
  /// Range-lookup selectivity in entries (s).
  double selectivity = 16;
  /// Total memory budget in bits (M = Mb + Mf + Mc). Default ~16 bits per
  /// entry, matching the paper's 16 MB for 10M 1KB entries ratio.
  double total_memory_bits = 16.0 * 40000;
};

/// One point in the (complexity-model view of the) configuration space.
struct ModelConfig {
  lsm::CompactionPolicy policy = lsm::CompactionPolicy::kLeveling;
  /// Size ratio T (>= 2).
  double size_ratio = 10.0;
  /// Bloom filter memory in bits (Mf).
  double mf_bits = 0.0;
  /// Write-buffer memory in bits (Mb).
  double mb_bits = 0.0;
  /// Generalized runs-per-level K (0 = policy default: 1 leveling,
  /// T tiering). Used only by the extension model.
  double runs_per_level = 0.0;
  /// Block reads kept in flight on the real-IO backend's ring path
  /// (FileEngine io_uring). 1 = serial reads, the sim-equivalent default.
  /// Only the overlap-aware costs (Effective*) consume it — the paper's
  /// serial I/O counts (V/R/Q/W) are depth-independent by construction.
  double io_queue_depth = 1.0;
};

/// Monkey/Dostoevsky-style closed-form expected-I/O model.
///
/// Implements the four per-operation costs of Figure 2 with the standard
/// ln^2(2) Bloom factor (FPR = exp(-(Mf/N) ln^2 2)) so the model is
/// consistent with real Bloom filters, plus a generalized hybrid form with
/// K runs per level used by the Section 8.4 extension.
class CostModel {
 public:
  /// `corrector`, when non-null, maps each predicted cost term of the
  /// workload-weighted objectives (`OpCost`, `EffectiveOpCost`) to its
  /// calibrated measured-cost estimate; not owned, must outlive the model.
  /// Null (the default) is the identity — bit-for-bit the uncalibrated
  /// model. The per-operation primitives (V/R/Q/W) and the overlap terms
  /// stay uncorrected: they are the model's *structural* quantities
  /// (Bloom-probe fan-out, run counts) that calibration has no measured
  /// counterpart for.
  explicit CostModel(const SystemParams& params,
                     const CostCorrector* corrector = nullptr)
      : params_(params), corrector_(corrector) {}

  /// Continuous number of levels log_T(N*E/Mb + 1), floored at 1.
  double Levels(const ModelConfig& c) const;

  /// Expected I/Os of a zero-result point lookup (V).
  double ZeroResultLookupCost(const ModelConfig& c) const;
  /// Expected I/Os of a non-zero-result point lookup (R).
  double NonZeroResultLookupCost(const ModelConfig& c) const;
  /// Expected I/Os of a range lookup (Q).
  double RangeLookupCost(const ModelConfig& c) const;
  /// Amortized I/Os of a write (W).
  double WriteCost(const ModelConfig& c) const;

  /// Workload-weighted cost f = vV + rR + qQ + wW (Equation 2).
  double OpCost(const WorkloadSpec& w, const ModelConfig& c) const;

  /// Expected *independent* block reads a read op fans out across — the
  /// per-op parallelism a submission ring can exploit. Point lookups fan
  /// over the runs their Bloom probes reach (V, or V+1 with the hit
  /// block); range lookups touch every run cursor plus s/B data blocks
  /// (Q). Weighted by the read mix, floored at 1 (a serial op cannot
  /// overlap with itself). Writes contribute nothing: flush/compaction
  /// I/O is sequential and stays off the ring.
  double ReadFanout(const WorkloadSpec& w, const ModelConfig& c) const;

  /// Wall-clock scaling of the read terms under queue depth d: reads
  /// overlap up to min(d, fanout)-way, so effective read cost divides by
  /// that factor. 1.0 at depth 1 (the model collapses to OpCost).
  double OverlapFactor(const WorkloadSpec& w, const ModelConfig& c) const;

  /// Overlap-aware workload-weighted cost: read terms scaled by
  /// OverlapFactor, write term unscaled (compaction I/O is serial). This
  /// is the objective that makes queue depth a priced tunable; with
  /// c.io_queue_depth == 1 it equals OpCost exactly.
  double EffectiveOpCost(const WorkloadSpec& w, const ModelConfig& c) const;

  /// The queue depth the model recommends: the per-op read fan-out,
  /// rounded, clamped to [1, max_depth] — depth beyond the fan-out buys
  /// nothing the model can see (cross-op batching makes this a
  /// conservative floor, not a ceiling, on real hardware).
  int RecommendedQueueDepth(const WorkloadSpec& w, const ModelConfig& c,
                            int max_depth) const;

  /// Largest size ratio considered (T_lim: the ratio at which the tree
  /// collapses toward a single level for the smallest sensible buffer).
  double SizeRatioLimit() const;

  const SystemParams& params() const { return params_; }
  const CostCorrector* corrector() const { return corrector_; }

 private:
  /// Effective runs per level: K if set, else policy default.
  double RunsPerLevel(const ModelConfig& c) const;

  /// `x` through the attached corrector; the identity when detached (same
  /// value, same floating-point expression — the uncalibrated objectives
  /// stay bit-identical).
  double Corrected(CostChannel channel, double x) const {
    return corrector_ == nullptr ? x : corrector_->Correct(channel, x);
  }

  SystemParams params_;
  const CostCorrector* corrector_ = nullptr;
};

}  // namespace camal::model

#endif  // CAMAL_MODEL_COST_MODEL_H_
