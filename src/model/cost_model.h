#ifndef CAMAL_MODEL_COST_MODEL_H_
#define CAMAL_MODEL_COST_MODEL_H_

#include <cstdint>

#include "lsm/options.h"
#include "model/workload_spec.h"

namespace camal::model {

/// Fixed system facts the complexity model needs (Figure 2 of the paper).
struct SystemParams {
  /// Total number of entries (N).
  double num_entries = 40000;
  /// Entry size in bits (E).
  double entry_bits = 128 * 8;
  /// Entries per storage block (B).
  double block_entries = 32;
  /// Range-lookup selectivity in entries (s).
  double selectivity = 16;
  /// Total memory budget in bits (M = Mb + Mf + Mc). Default ~16 bits per
  /// entry, matching the paper's 16 MB for 10M 1KB entries ratio.
  double total_memory_bits = 16.0 * 40000;
};

/// One point in the (complexity-model view of the) configuration space.
struct ModelConfig {
  lsm::CompactionPolicy policy = lsm::CompactionPolicy::kLeveling;
  /// Size ratio T (>= 2).
  double size_ratio = 10.0;
  /// Bloom filter memory in bits (Mf).
  double mf_bits = 0.0;
  /// Write-buffer memory in bits (Mb).
  double mb_bits = 0.0;
  /// Generalized runs-per-level K (0 = policy default: 1 leveling,
  /// T tiering). Used only by the extension model.
  double runs_per_level = 0.0;
};

/// Monkey/Dostoevsky-style closed-form expected-I/O model.
///
/// Implements the four per-operation costs of Figure 2 with the standard
/// ln^2(2) Bloom factor (FPR = exp(-(Mf/N) ln^2 2)) so the model is
/// consistent with real Bloom filters, plus a generalized hybrid form with
/// K runs per level used by the Section 8.4 extension.
class CostModel {
 public:
  explicit CostModel(const SystemParams& params) : params_(params) {}

  /// Continuous number of levels log_T(N*E/Mb + 1), floored at 1.
  double Levels(const ModelConfig& c) const;

  /// Expected I/Os of a zero-result point lookup (V).
  double ZeroResultLookupCost(const ModelConfig& c) const;
  /// Expected I/Os of a non-zero-result point lookup (R).
  double NonZeroResultLookupCost(const ModelConfig& c) const;
  /// Expected I/Os of a range lookup (Q).
  double RangeLookupCost(const ModelConfig& c) const;
  /// Amortized I/Os of a write (W).
  double WriteCost(const ModelConfig& c) const;

  /// Workload-weighted cost f = vV + rR + qQ + wW (Equation 2).
  double OpCost(const WorkloadSpec& w, const ModelConfig& c) const;

  /// Largest size ratio considered (T_lim: the ratio at which the tree
  /// collapses toward a single level for the smallest sensible buffer).
  double SizeRatioLimit() const;

  const SystemParams& params() const { return params_; }

 private:
  /// Effective runs per level: K if set, else policy default.
  double RunsPerLevel(const ModelConfig& c) const;

  SystemParams params_;
};

}  // namespace camal::model

#endif  // CAMAL_MODEL_COST_MODEL_H_
