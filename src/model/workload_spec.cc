#include "model/workload_spec.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/status.h"

namespace camal::model {

WorkloadSpec WorkloadSpec::Normalized() const {
  const double total = Total();
  CAMAL_CHECK(total > 0.0);
  WorkloadSpec out = *this;
  out.v /= total;
  out.r /= total;
  out.q /= total;
  out.w /= total;
  return out;
}

std::string WorkloadSpec::ToString() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "(v=%.2f r=%.2f q=%.2f w=%.2f skew=%.2f)",
                v, r, q, w, skew);
  return buf;
}

double KlDivergence(const WorkloadSpec& a_in, const WorkloadSpec& b_in) {
  const WorkloadSpec a = a_in.Normalized();
  const WorkloadSpec b = b_in.Normalized();
  const double pa[4] = {a.v, a.r, a.q, a.w};
  const double pb[4] = {b.v, b.r, b.q, b.w};
  double kl = 0.0;
  for (int i = 0; i < 4; ++i) {
    const double p = std::max(pa[i], 1e-9);
    const double q = std::max(pb[i], 1e-9);
    kl += p * std::log(p / q);
  }
  return kl;
}

WorkloadSpec SampleInKlBall(const WorkloadSpec& center, double rho,
                            util::Random* rng) {
  const WorkloadSpec c = center.Normalized();
  if (rho <= 0.0) return c;
  for (int attempt = 0; attempt < 200; ++attempt) {
    // Perturb with Gamma(alpha)-weighted resampling around the center.
    double p[4] = {c.v, c.r, c.q, c.w};
    double total = 0.0;
    for (double& x : p) {
      const double noise = std::exp(0.8 * rng->NextGaussian());
      x = std::max(1e-4, x * noise);
      total += x;
    }
    WorkloadSpec cand;
    cand.v = p[0] / total;
    cand.r = p[1] / total;
    cand.q = p[2] / total;
    cand.w = p[3] / total;
    cand.skew = c.skew;
    cand.delete_frac = c.delete_frac;
    if (KlDivergence(cand, c) <= rho) return cand;
  }
  return c;
}

WorkloadSpec Interpolate(const WorkloadSpec& a, const WorkloadSpec& b,
                         double t) {
  WorkloadSpec out;
  out.v = a.v + (b.v - a.v) * t;
  out.r = a.r + (b.r - a.r) * t;
  out.q = a.q + (b.q - a.q) * t;
  out.w = a.w + (b.w - a.w) * t;
  out.skew = a.skew + (b.skew - a.skew) * t;
  out.delete_frac = a.delete_frac + (b.delete_frac - a.delete_frac) * t;
  return out.Normalized();
}

}  // namespace camal::model
