#ifndef CAMAL_MODEL_CALIBRATED_COST_MODEL_H_
#define CAMAL_MODEL_CALIBRATED_COST_MODEL_H_

#include <memory>

#include "model/cost_model.h"

namespace camal::model {

/// A `CostModel` bound to a corrector it owns — the value type for call
/// sites that want corrected objectives without managing the corrector's
/// lifetime separately (benches, tests). Everything else about the model
/// is inherited unchanged: with an unfitted (identity) corrector the
/// calibrated model's objectives are bit-identical to the plain model's.
///
/// Sites that already hold a corrector elsewhere (tuners via
/// `TunerOptions::cost_corrector`, the arbiter via pricing parameters)
/// construct plain `CostModel`s with the borrowed pointer instead.
class CalibratedCostModel : public CostModel {
 public:
  CalibratedCostModel(const SystemParams& params,
                      std::shared_ptr<const CostCorrector> corrector)
      : CostModel(params, corrector.get()), owned_(std::move(corrector)) {}

  const std::shared_ptr<const CostCorrector>& shared_corrector() const {
    return owned_;
  }

 private:
  std::shared_ptr<const CostCorrector> owned_;
};

/// Convenience: the calibrated model for `params` when `corrector` is set,
/// else an uncorrected model (null correctors are the documented identity,
/// so this is pure sugar for optional-calibration call sites).
CalibratedCostModel MakeCalibratedModel(
    const SystemParams& params,
    std::shared_ptr<const CostCorrector> corrector);

}  // namespace camal::model

#endif  // CAMAL_MODEL_CALIBRATED_COST_MODEL_H_
