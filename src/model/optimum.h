#ifndef CAMAL_MODEL_OPTIMUM_H_
#define CAMAL_MODEL_OPTIMUM_H_

#include "model/cost_model.h"
#include "model/workload_spec.h"

namespace camal::model {

/// A configuration together with its closed-form cost.
struct TheoreticalOptimum {
  ModelConfig config;
  double cost = 0.0;
};

/// Theoretical optimal size ratio for the leveling policy from Equation 5:
/// the root of w*T*(ln T - 1) = q*B, clamped to [2, T_lim].
///
/// Degenerate mixes: with no writes the cost is decreasing in T (fewer
/// levels), so T_lim is returned; with writes but no range lookups T = e
/// (clamped to 2) minimizes L*T; a pure point-lookup mix is T-insensitive
/// and returns 10 (the industry default).
double OptimalSizeRatioLeveling(const WorkloadSpec& w, const CostModel& model);

/// Theoretical optimal Bloom memory (bits) for leveling with fixed T from
/// Equation 6 — balances the marginal point-lookup gain of more filter bits
/// against the extra levels caused by a smaller buffer.
/// `mc_bits` memory is reserved (for the block cache) before the split.
double OptimalMfBitsLeveling(const WorkloadSpec& w, const CostModel& model,
                             double size_ratio, double mc_bits = 0.0);

/// Numeric argmin of the closed-form cost over integer T in [2, T_lim],
/// holding the other fields of `base` fixed.
double OptimalSizeRatioNumeric(const WorkloadSpec& w, const CostModel& model,
                               const ModelConfig& base);

/// Numeric argmin of the closed-form cost over Mf (golden-section), holding
/// T and policy of `base` fixed; Mb absorbs the remainder of the budget
/// after `mc_bits`.
double OptimalMfBitsNumeric(const WorkloadSpec& w, const CostModel& model,
                            const ModelConfig& base, double mc_bits = 0.0);

/// Full nested minimization over (T, Mf) for one policy — the "Classic"
/// (Endure nominal) tuning of the paper's baselines.
TheoreticalOptimum MinimizeCost(const WorkloadSpec& w, const CostModel& model,
                                lsm::CompactionPolicy policy);

/// Classic tuning across both compaction policies.
TheoreticalOptimum MinimizeCostOverPolicies(const WorkloadSpec& w,
                                            const CostModel& model);

/// Smallest sensible write-buffer size in bits (one block of entries).
double MinBufferBits(const SystemParams& params);

}  // namespace camal::model

#endif  // CAMAL_MODEL_OPTIMUM_H_
