#ifndef CAMAL_MODEL_ARBITRATION_H_
#define CAMAL_MODEL_ARBITRATION_H_

#include "model/cost_model.h"
#include "model/workload_spec.h"

namespace camal::model {

/// Marginal-benefit pricing of shard memory — the query the per-tenant
/// memory arbiter redistributes budgets with. A shard is priced as its own
/// small system: its local operation mix, its local entry count, and its
/// local memory budget, with the budget split optimally between write
/// buffer and Bloom filters (the paper's Mb/Mf round applied at shard
/// scale). Moving memory between shards then reduces to comparing one
/// shard's marginal gain per bit against another's marginal loss.

/// Modeled per-op cost of serving `w` on a shard holding
/// `params.num_entries` entries with `params.total_memory_bits` bits of
/// memory: `mc_bits` are carved off for the block cache (which the
/// closed-form model does not price directly; it simply shrinks the
/// buffer/filter budget) and the remainder is split optimally between Mb
/// and Mf with `shape`'s size ratio, policy, and K held fixed.
/// `corrector`, when non-null, calibrates the priced cost (see
/// `CostCorrector`); null is the identity, bit-for-bit.
double OptimalShardCost(const WorkloadSpec& w, const SystemParams& params,
                        const ModelConfig& shape, double mc_bits,
                        const CostCorrector* corrector = nullptr);

/// Finite-difference marginal value of `delta_bits` of memory for one
/// shard, at its optimal internal split.
struct MemoryMarginal {
  /// Per-op cost decrease of growing the budget by delta_bits (>= 0).
  double gain = 0.0;
  /// Per-op cost increase of shrinking the budget by delta_bits (>= 0).
  double loss = 0.0;
};

/// Prices growing/shrinking a shard's budget by `delta_bits`. The block
/// cache keeps its current fraction of the budget (`mc_frac`) on both
/// sides of the difference. `delta_bits` must be positive and smaller
/// than the shard's budget; shrinking below one entry of buffer is
/// treated as infinitely costly (the caller's floor should prevent it).
MemoryMarginal PriceMemoryDelta(const WorkloadSpec& w,
                                const SystemParams& params,
                                const ModelConfig& shape, double mc_frac,
                                double delta_bits,
                                const CostCorrector* corrector = nullptr);

}  // namespace camal::model

#endif  // CAMAL_MODEL_ARBITRATION_H_
