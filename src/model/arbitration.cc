#include "model/arbitration.h"

#include <algorithm>
#include <limits>

#include "model/optimum.h"

namespace camal::model {

double OptimalShardCost(const WorkloadSpec& w_in, const SystemParams& params,
                        const ModelConfig& shape, double mc_bits,
                        const CostCorrector* corrector) {
  const WorkloadSpec w = w_in.Normalized();
  const CostModel model(params, corrector);
  ModelConfig c = shape;
  const double mf = OptimalMfBitsNumeric(w, model, c, mc_bits);
  c.mf_bits = mf;
  c.mb_bits =
      std::max(params.entry_bits, params.total_memory_bits - mc_bits - mf);
  return model.OpCost(w, c);
}

MemoryMarginal PriceMemoryDelta(const WorkloadSpec& w,
                                const SystemParams& params,
                                const ModelConfig& shape, double mc_frac,
                                double delta_bits,
                                const CostCorrector* corrector) {
  const double m = params.total_memory_bits;
  const auto cost_at = [&](double budget) {
    SystemParams p = params;
    p.total_memory_bits = budget;
    return OptimalShardCost(w, p, shape, mc_frac * budget, corrector);
  };

  MemoryMarginal out;
  const double base = cost_at(m);
  out.gain = std::max(0.0, base - cost_at(m + delta_bits));
  // A budget too small to hold even a few entries of buffer after the
  // shrink cannot donate: the model below this point is meaningless.
  const double shrunk = m - delta_bits;
  if (shrunk <= MinBufferBits(params) + mc_frac * m) {
    out.loss = std::numeric_limits<double>::infinity();
  } else {
    out.loss = std::max(0.0, cost_at(shrunk) - base);
  }
  return out;
}

}  // namespace camal::model
