#include "util/crc32c.h"

namespace camal::util {

namespace {

/// 256-entry lookup table for the reflected Castagnoli polynomial,
/// generated once at first use (trivially race-free: C++11 static-local
/// initialization).
struct Crc32cTable {
  uint32_t entries[256];

  Crc32cTable() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) ? 0x82F63B78u : 0u);
      }
      entries[i] = crc;
    }
  }
};

const Crc32cTable& Table() {
  static const Crc32cTable table;
  return table;
}

}  // namespace

uint32_t Crc32c(const void* data, size_t n, uint32_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  const Crc32cTable& table = Table();
  uint32_t crc = ~seed;
  for (size_t i = 0; i < n; ++i) {
    crc = table.entries[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

uint32_t MaskedCrc32c(const void* data, size_t n) {
  // Rotate-and-add masking (the LevelDB constant): invertible, cheap, and
  // guarantees a stored masked CRC never equals the raw CRC of the bytes
  // that contain it.
  const uint32_t crc = Crc32c(data, n);
  return ((crc >> 15) | (crc << 17)) + 0xA282EAD8u;
}

}  // namespace camal::util
