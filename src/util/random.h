#ifndef CAMAL_UTIL_RANDOM_H_
#define CAMAL_UTIL_RANDOM_H_

#include <cstdint>

namespace camal::util {

/// Deterministic, seedable pseudo-random generator (xoshiro256**).
///
/// All randomness in the repository flows through this class so experiments
/// are reproducible bit-for-bit given a seed.
class Random {
 public:
  explicit Random(uint64_t seed = 42);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform value in [0, n). Requires n > 0.
  uint64_t Uniform(uint64_t n);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Standard normal variate (Box-Muller).
  double NextGaussian();

  /// Returns true with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  uint64_t s_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace camal::util

#endif  // CAMAL_UTIL_RANDOM_H_
