#ifndef CAMAL_UTIL_RANDOM_H_
#define CAMAL_UTIL_RANDOM_H_

#include <cstdint>

namespace camal::util {

/// Boost-style 64-bit hash combiner: deterministically folds `b` into `a`.
/// Used to derive independent seed streams from (master seed, salt) pairs.
inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  a ^= b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2);
  return a;
}

/// SplitMix64 finalizer: a cheap, high-quality 64-bit mixing function.
/// Used as the deterministic shard partitioner (keys are structured —
/// consecutive even integers — so raw modulo would stripe, not hash).
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// MurmurHash3 fmix64 finalizer — the second shared mixer. The Bloom
/// filters double-hash through this one; keeping it distinct from `Mix64`
/// means a shard's Bloom bit patterns are decorrelated from the shard
/// routing that `Mix64` decides (and its constants must not change: Bloom
/// hashes are part of the repository's bit-reproducible results).
inline uint64_t Fmix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

/// Deterministic, seedable pseudo-random generator (xoshiro256**).
///
/// All randomness in the repository flows through this class so experiments
/// are reproducible bit-for-bit given a seed.
class Random {
 public:
  explicit Random(uint64_t seed = 42);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform value in [0, n). Requires n > 0.
  uint64_t Uniform(uint64_t n);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Standard normal variate (Box-Muller).
  double NextGaussian();

  /// Returns true with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  uint64_t s_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace camal::util

#endif  // CAMAL_UTIL_RANDOM_H_
