#ifndef CAMAL_UTIL_ZIPF_H_
#define CAMAL_UTIL_ZIPF_H_

#include <cstdint>

#include "util/random.h"

namespace camal::util {

/// Harmonic normalizer sum_{i=1..n} 1/i^theta, memoized per theta with
/// incremental extension: asking for a larger n resumes the summation
/// loop from the largest previously computed checkpoint instead of
/// restarting at 1. The resumed loop performs the identical
/// floating-point operation sequence as a fresh one, so results are
/// bitwise independent of cache state. Thread-safe.
double HarmonicZeta(uint64_t n, double theta);

/// Zipfian rank sampler over {0, .., n-1} with skew coefficient theta,
/// following the rejection-inversion style used by YCSB (Gray et al.).
///
/// theta = 0 degenerates to a uniform distribution; theta close to 1 is
/// highly skewed. Rank 0 is the hottest item.
class ZipfGenerator {
 public:
  /// Requires n > 0 and 0 <= theta < 1.
  ZipfGenerator(uint64_t n, double theta);

  /// Samples a rank in [0, n).
  uint64_t Next(Random* rng) const;

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  uint64_t n_;
  double theta_;
  double alpha_ = 0.0;
  double zetan_ = 0.0;
  double eta_ = 0.0;
  double zeta2_ = 0.0;
};

}  // namespace camal::util

#endif  // CAMAL_UTIL_ZIPF_H_
