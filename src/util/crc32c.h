#ifndef CAMAL_UTIL_CRC32C_H_
#define CAMAL_UTIL_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace camal::util {

/// CRC-32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78) over
/// `n` bytes, continuing from `seed` (pass the previous call's return value
/// to checksum discontiguous spans as one stream; 0 starts a fresh CRC).
/// Software slice-by-one implementation — the durability logs it protects
/// (manifest records, WAL frames) are tiny compared to the run-file I/O
/// around them, so hardware CRC instructions would not be measurable here.
uint32_t Crc32c(const void* data, size_t n, uint32_t seed = 0);

/// `Crc32c` xor-folded with a fixed mask, in the spirit of the
/// LevelDB/RocksDB masked CRC: a log record whose payload itself embeds
/// CRCs (e.g. a manifest snapshot carrying Bloom words) never accidentally
/// frames a valid-looking record at a misaligned offset.
uint32_t MaskedCrc32c(const void* data, size_t n);

}  // namespace camal::util

#endif  // CAMAL_UTIL_CRC32C_H_
