#include "util/stats.h"

#include <algorithm>
#include <cmath>

namespace camal::util {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double PercentileSketch::Quantile(double q) const {
  if (values_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
  if (q <= 0.0) return values_.front();
  if (q >= 1.0) return values_.back();
  const double pos = q * static_cast<double>(values_.size() - 1);
  const auto lo = static_cast<size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= values_.size()) return values_.back();
  return values_[lo] * (1.0 - frac) + values_[lo + 1] * frac;
}

double PercentileSketch::Mean() const {
  if (values_.empty()) return 0.0;
  double s = 0.0;
  for (double v : values_) s += v;
  return s / static_cast<double>(values_.size());
}

}  // namespace camal::util
