#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>
#include <utility>

namespace camal::util {

namespace {
thread_local bool tls_in_worker = false;
}  // namespace

int HardwareThreads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) num_threads = HardwareThreads();
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

bool ThreadPool::InWorkerThread() { return tls_in_worker; }

void ThreadPool::WorkerLoop() {
  tls_in_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to run
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

namespace {
std::mutex g_global_mu;
int g_global_threads = 1;
std::unique_ptr<ThreadPool> g_global_pool;
}  // namespace

void SetGlobalThreads(int n) {
  if (n <= 0) n = HardwareThreads();
  std::lock_guard<std::mutex> lock(g_global_mu);
  if (n == g_global_threads) return;
  g_global_threads = n;
  g_global_pool.reset();
}

int GlobalThreads() {
  std::lock_guard<std::mutex> lock(g_global_mu);
  return g_global_threads;
}

ThreadPool* GlobalPool() {
  std::lock_guard<std::mutex> lock(g_global_mu);
  if (g_global_threads <= 1) return nullptr;
  if (g_global_pool == nullptr) {
    g_global_pool = std::make_unique<ThreadPool>(g_global_threads);
  }
  return g_global_pool.get();
}

void ParallelFor(ThreadPool* pool, size_t begin, size_t end,
                 const std::function<void(size_t)>& fn) {
  if (begin >= end) return;
  const size_t n = end - begin;
  if (pool == nullptr || pool->num_threads() <= 1 || n == 1 ||
      ThreadPool::InWorkerThread()) {
    for (size_t i = begin; i < end; ++i) fn(i);
    return;
  }

  struct SharedState {
    std::atomic<size_t> next;
    size_t end;
    std::mutex mu;
    std::condition_variable done_cv;
    size_t pending = 0;
    std::exception_ptr error;
  };
  SharedState state;
  state.next.store(begin, std::memory_order_relaxed);
  state.end = end;

  // The claim loop every participant runs: grab the next unclaimed index
  // until the range is exhausted. Dynamic claiming balances uneven task
  // costs; result placement by index keeps output order deterministic.
  auto drain = [&state, &fn] {
    for (;;) {
      const size_t i = state.next.fetch_add(1, std::memory_order_relaxed);
      if (i >= state.end) break;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(state.mu);
        if (!state.error) state.error = std::current_exception();
        // Abandon unclaimed iterations; the first error wins.
        state.next.store(state.end, std::memory_order_relaxed);
      }
    }
  };

  const size_t helpers =
      std::min(static_cast<size_t>(pool->num_threads()), n - 1);
  state.pending = helpers;
  for (size_t h = 0; h < helpers; ++h) {
    pool->Submit([&state, &drain] {
      drain();
      std::lock_guard<std::mutex> lock(state.mu);
      if (--state.pending == 0) state.done_cv.notify_one();
    });
  }
  drain();  // the caller participates
  {
    std::unique_lock<std::mutex> lock(state.mu);
    state.done_cv.wait(lock, [&state] { return state.pending == 0; });
    if (state.error) std::rethrow_exception(state.error);
  }
}

}  // namespace camal::util
