#ifndef CAMAL_UTIL_THREAD_POOL_H_
#define CAMAL_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace camal::util {

/// Fixed-size worker pool for the embarrassingly parallel loops of the
/// tuning pipeline (batch sampling, suite evaluation). Tasks must be
/// independent; determinism is achieved by seeding each task's randomness
/// from its index, never from thread identity or scheduling order.
class ThreadPool {
 public:
  /// `num_threads` <= 0 selects the hardware concurrency.
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a task for asynchronous execution.
  void Submit(std::function<void()> task);

  /// Blocks until the queue is empty and every running task has finished.
  void WaitIdle();

  /// True when the calling thread is a worker of *any* ThreadPool — used
  /// by ParallelFor to run nested parallel loops inline instead of
  /// deadlocking on a fully occupied pool.
  static bool InWorkerThread();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  size_t active_ = 0;
  bool stop_ = false;
};

/// Hardware concurrency, clamped to at least 1.
int HardwareThreads();

/// Process-wide default parallelism for components that do not carry an
/// explicit thread count. `n` <= 0 selects the hardware concurrency.
/// Intended to be called once at startup (e.g. from a --threads flag);
/// resizing while the global pool is in use is not supported.
void SetGlobalThreads(int n);
int GlobalThreads();

/// Shared pool sized by SetGlobalThreads. Returns nullptr while the global
/// parallelism is 1 (callers then run inline).
ThreadPool* GlobalPool();

/// Runs fn(i) for every i in [begin, end), distributed over `pool`'s
/// workers; the calling thread participates too. Runs inline (plain serial
/// loop) when `pool` is null or when called from inside a pool worker
/// (nested parallelism). If any invocation throws, the first exception is
/// rethrown on the caller after the loop winds down; remaining iterations
/// may be skipped.
void ParallelFor(ThreadPool* pool, size_t begin, size_t end,
                 const std::function<void(size_t)>& fn);

}  // namespace camal::util

#endif  // CAMAL_UTIL_THREAD_POOL_H_
