#include "util/random.h"

#include <cmath>

#include "util/status.h"

namespace camal::util {

namespace {
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Random::Random(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Random::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Random::Uniform(uint64_t n) {
  CAMAL_CHECK(n > 0);
  // Rejection sampling to remove modulo bias.
  const uint64_t threshold = -n % n;
  for (;;) {
    const uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

double Random::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Random::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = NextDouble();
  double u2 = NextDouble();
  while (u1 <= 1e-300) u1 = NextDouble();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  cached_gaussian_ = mag * std::sin(2.0 * M_PI * u2);
  has_cached_gaussian_ = true;
  return mag * std::cos(2.0 * M_PI * u2);
}

}  // namespace camal::util
