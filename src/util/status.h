#ifndef CAMAL_UTIL_STATUS_H_
#define CAMAL_UTIL_STATUS_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>

namespace camal::util {

/// Lightweight error-reporting type used across API boundaries instead of
/// exceptions (the codebase is exception-free, in the Google/Arrow style).
class Status {
 public:
  /// Creates an OK status.
  Status() = default;

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(Code::kFailedPrecondition, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }

  /// Human-readable message; empty for OK.
  const std::string& message() const { return message_; }

  std::string ToString() const {
    switch (code_) {
      case Code::kOk:
        return "OK";
      case Code::kInvalidArgument:
        return "InvalidArgument: " + message_;
      case Code::kNotFound:
        return "NotFound: " + message_;
      case Code::kFailedPrecondition:
        return "FailedPrecondition: " + message_;
    }
    return "Unknown";
  }

 private:
  enum class Code { kOk, kInvalidArgument, kNotFound, kFailedPrecondition };

  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  Code code_ = Code::kOk;
  std::string message_;
};

namespace internal {
[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}
}  // namespace internal

}  // namespace camal::util

/// Aborts the process when `expr` is false. Used for programmer errors and
/// internal invariants, never for recoverable conditions.
#define CAMAL_CHECK(expr)                                           \
  do {                                                              \
    if (!(expr)) {                                                  \
      ::camal::util::internal::CheckFailed(__FILE__, __LINE__, #expr); \
    }                                                               \
  } while (0)

#endif  // CAMAL_UTIL_STATUS_H_
