#ifndef CAMAL_UTIL_STATS_H_
#define CAMAL_UTIL_STATS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace camal::util {

/// Streaming mean/variance accumulator (Welford's algorithm).
class RunningStats {
 public:
  void Add(double x);

  size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  /// Sample variance; 0 when fewer than two observations.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Stores every observation and answers arbitrary quantile queries.
/// Intended for per-experiment latency distributions (≤ a few million
/// samples), not for unbounded streams.
class PercentileSketch {
 public:
  void Add(double x) { values_.push_back(x); sorted_ = false; }

  /// q in [0, 1]; e.g. Quantile(0.9) is the 90th percentile. Returns 0 when
  /// empty. Logically const: the sort performed on the first query after an
  /// Add is cached behind `mutable` state, so concurrent const queries on
  /// the same sketch are NOT safe (query from one thread at a time).
  double Quantile(double q) const;

  double Mean() const;
  size_t count() const { return values_.size(); }

 private:
  mutable std::vector<double> values_;
  mutable bool sorted_ = false;
};

}  // namespace camal::util

#endif  // CAMAL_UTIL_STATS_H_
