#include "util/zipf.h"

#include <cmath>
#include <map>
#include <mutex>

#include "util/status.h"

namespace camal::util {

namespace {

/// Memoized harmonic-sum state for one theta: checkpoints of
/// sum_{i=1..n} 1/i^theta at every n a caller has requested. Resuming the
/// loop from the largest checkpoint <= n executes exactly the same
/// floating-point additions, in the same order, as a fresh 1..n loop —
/// so cached and uncached constructions are bitwise identical and the
/// cache never affects results, only construction cost.
struct ZetaSeries {
  std::map<uint64_t, double> checkpoints;  // n -> zeta(n, theta)
};

double ZetaTail(uint64_t from, uint64_t to, double theta, double sum) {
  for (uint64_t i = from; i <= to; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

}  // namespace

double HarmonicZeta(uint64_t n, double theta) {
  // Keyed by the exact double bits of theta; workloads use a handful of
  // skew values, so the map stays tiny.
  static std::mutex mu;
  static std::map<double, ZetaSeries>* series = new std::map<double, ZetaSeries>();

  std::lock_guard<std::mutex> lock(mu);
  ZetaSeries& s = (*series)[theta];
  uint64_t from = 1;
  double sum = 0.0;
  // Largest checkpoint at or below n (the incremental-extension point).
  auto it = s.checkpoints.upper_bound(n);
  if (it != s.checkpoints.begin()) {
    --it;
    from = it->first + 1;
    sum = it->second;
  }
  if (from <= n) {
    sum = ZetaTail(from, n, theta, sum);
    s.checkpoints[n] = sum;
  }
  return sum;
}

ZipfGenerator::ZipfGenerator(uint64_t n, double theta) : n_(n), theta_(theta) {
  CAMAL_CHECK(n > 0);
  CAMAL_CHECK(theta >= 0.0 && theta < 1.0);
  if (theta_ > 0.0) {
    alpha_ = 1.0 / (1.0 - theta_);
    zetan_ = HarmonicZeta(n_, theta_);
    zeta2_ = HarmonicZeta(2, theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
           (1.0 - zeta2_ / zetan_);
  }
}

uint64_t ZipfGenerator::Next(Random* rng) const {
  if (theta_ == 0.0) return rng->Uniform(n_);
  const double u = rng->NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const auto rank = static_cast<uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return rank >= n_ ? n_ - 1 : rank;
}

}  // namespace camal::util
