#include "util/zipf.h"

#include <cmath>

#include "util/status.h"

namespace camal::util {

namespace {
double Zeta(uint64_t n, double theta) {
  double sum = 0.0;
  for (uint64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(static_cast<double>(i), theta);
  return sum;
}
}  // namespace

ZipfGenerator::ZipfGenerator(uint64_t n, double theta) : n_(n), theta_(theta) {
  CAMAL_CHECK(n > 0);
  CAMAL_CHECK(theta >= 0.0 && theta < 1.0);
  if (theta_ > 0.0) {
    alpha_ = 1.0 / (1.0 - theta_);
    zetan_ = Zeta(n_, theta_);
    zeta2_ = Zeta(2, theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
           (1.0 - zeta2_ / zetan_);
  }
}

uint64_t ZipfGenerator::Next(Random* rng) const {
  if (theta_ == 0.0) return rng->Uniform(n_);
  const double u = rng->NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const auto rank = static_cast<uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return rank >= n_ ? n_ - 1 : rank;
}

}  // namespace camal::util
