#include "sim/device.h"

#include <algorithm>

namespace camal::sim {

Device::Device(const DeviceConfig& config)
    : config_(config), jitter_rng_(config.jitter_seed) {}

void Device::ReadBlock() {
  ++block_reads_;
  double ns = config_.read_block_us * 1000.0;
  if (config_.io_jitter_frac > 0.0) {
    const double f = 1.0 + config_.io_jitter_frac * jitter_rng_.NextGaussian();
    ns *= std::max(0.1, f);
  }
  elapsed_ns_ += ns;
}

void Device::ReadBlockSequential() {
  ++block_reads_;
  double ns = config_.seq_read_block_us * 1000.0;
  if (config_.io_jitter_frac > 0.0) {
    const double f = 1.0 + config_.io_jitter_frac * jitter_rng_.NextGaussian();
    ns *= std::max(0.1, f);
  }
  elapsed_ns_ += ns;
}

void Device::WriteBlock() {
  ++block_writes_;
  double ns = config_.write_block_us * 1000.0;
  if (config_.io_jitter_frac > 0.0) {
    const double f = 1.0 + config_.io_jitter_frac * jitter_rng_.NextGaussian();
    ns *= std::max(0.1, f);
  }
  elapsed_ns_ += ns;
}

void Device::ChargeCpu(double ns) { elapsed_ns_ += ns; }

void Device::Reset() {
  block_reads_ = 0;
  block_writes_ = 0;
  elapsed_ns_ = 0.0;
}

}  // namespace camal::sim
