#ifndef CAMAL_SIM_DEVICE_H_
#define CAMAL_SIM_DEVICE_H_

#include <cstdint>

#include "util/random.h"

namespace camal::sim {

/// Cost constants of the simulated machine.
///
/// The paper evaluates on a real NVMe SSD with direct I/O; this repository
/// substitutes a simulated block device plus an explicit CPU cost model (the
/// same decomposition the paper uses in Lemma 5.1: I/O costs `I_r`, `I_w`
/// and CPU costs `C_r`, `C_w`, `C_q`). Defaults approximate a 4 KiB-page
/// NVMe device and a modern core; absolute values only set the scale, the
/// I/O-vs-CPU *ratio* is what shapes the tuning landscape.
struct DeviceConfig {
  /// Bytes per storage block (RocksDB default page: 4 KiB).
  uint64_t block_bytes = 4096;
  /// Latency of one random block read, microseconds (I_r).
  double read_block_us = 90.0;
  /// Amortized latency of one sequential block read (compaction input), us.
  double seq_read_block_us = 30.0;
  /// Amortized latency of one sequential block write, microseconds (I_w).
  double write_block_us = 25.0;

  /// CPU: one key comparison, nanoseconds.
  double cpu_key_compare_ns = 25.0;
  /// CPU: merging one entry during compaction (C_w per entry), nanoseconds.
  double cpu_entry_merge_ns = 120.0;
  /// CPU: one Bloom filter probe, nanoseconds.
  double cpu_bloom_probe_ns = 250.0;
  /// CPU: probing one sorted run's metadata / fence pointers (C_r), ns.
  double cpu_run_probe_ns = 400.0;
  /// CPU: advancing a merged range iterator by one entry (C_q-ish), ns.
  double cpu_iter_next_ns = 180.0;
  /// CPU: appending one entry to the write buffer, nanoseconds.
  double cpu_buffer_insert_ns = 250.0;
  /// CPU: block-cache bookkeeping per access, nanoseconds.
  double cpu_cache_access_ns = 120.0;
  /// CPU: finalizing one SST file during compaction, nanoseconds.
  double cpu_file_finalize_ns = 20000.0;

  /// Multiplicative jitter applied to each I/O (stddev as a fraction of the
  /// base latency). Models device/background-job variability; 0 disables.
  double io_jitter_frac = 0.05;
  /// Seed for the jitter stream.
  uint64_t jitter_seed = 1234;
};

/// Point-in-time copy of a device's counters; subtract two snapshots to get
/// the cost of an operation window.
struct DeviceSnapshot {
  uint64_t block_reads = 0;
  uint64_t block_writes = 0;
  double elapsed_ns = 0.0;

  DeviceSnapshot Delta(const DeviceSnapshot& earlier) const {
    return DeviceSnapshot{block_reads - earlier.block_reads,
                          block_writes - earlier.block_writes,
                          elapsed_ns - earlier.elapsed_ns};
  }
  DeviceSnapshot& operator+=(const DeviceSnapshot& other) {
    block_reads += other.block_reads;
    block_writes += other.block_writes;
    elapsed_ns += other.elapsed_ns;
    return *this;
  }
  uint64_t TotalIos() const { return block_reads + block_writes; }
};

/// Simulated block device + CPU time accountant.
///
/// Every physically meaningful action in the LSM engine is charged here;
/// `elapsed_ns()` is the simulated wall clock used as "latency" and
/// "sampling hours" throughout the reproduction.
class Device {
 public:
  explicit Device(const DeviceConfig& config = DeviceConfig());

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  /// Charges one random block read.
  void ReadBlock();
  /// Charges one sequential block read (cheaper; compaction input).
  void ReadBlockSequential();
  /// Charges one sequential block write.
  void WriteBlock();
  /// Charges `ns` nanoseconds of CPU time.
  void ChargeCpu(double ns);

  const DeviceConfig& config() const { return config_; }
  uint64_t block_reads() const { return block_reads_; }
  uint64_t block_writes() const { return block_writes_; }
  /// Total simulated time (I/O + CPU), nanoseconds.
  double elapsed_ns() const { return elapsed_ns_; }

  DeviceSnapshot Snapshot() const {
    return DeviceSnapshot{block_reads_, block_writes_, elapsed_ns_};
  }

  /// Zeroes all counters (the device "forgets" past charges).
  void Reset();

 private:
  DeviceConfig config_;
  util::Random jitter_rng_;
  uint64_t block_reads_ = 0;
  uint64_t block_writes_ = 0;
  double elapsed_ns_ = 0.0;
};

}  // namespace camal::sim

#endif  // CAMAL_SIM_DEVICE_H_
