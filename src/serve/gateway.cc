#include "serve/gateway.h"

#include <algorithm>
#include <limits>

#include "util/status.h"

namespace camal::serve {

namespace {

/// Lock-free max update (arrivals from concurrent producers).
void AtomicMax(std::atomic<uint64_t>* target, uint64_t value) {
  uint64_t prev = target->load(std::memory_order_relaxed);
  while (prev < value &&
         !target->compare_exchange_weak(prev, value,
                                        std::memory_order_relaxed)) {
  }
}

}  // namespace

bool Gateway::TokenBucket::TryTake(uint64_t now_ns) {
  if (ns_per_token == 0) return true;
  if (now_ns > last_ns) {
    const uint64_t delta = now_ns - last_ns;
    // Saturating refill: credit never exceeds the bucket capacity.
    credit_ns = delta >= cap_ns - credit_ns ? cap_ns : credit_ns + delta;
    last_ns = now_ns;
  }
  if (credit_ns >= ns_per_token) {
    credit_ns -= ns_per_token;
    return true;
  }
  return false;
}

Gateway::Gateway(engine::StorageEngine* engine, const GatewayConfig& config)
    : engine_(engine), config_(config), tenants_(config.num_tenants) {
  CAMAL_CHECK(engine != nullptr);
  CAMAL_CHECK(config_.num_tenants >= 1);
  CAMAL_CHECK(config_.batch_ops >= 1);
  CAMAL_CHECK(!config_.admission_control || config_.max_queue_depth >= 1);
  if (config_.rate_limit_ops_per_sec > 0.0) {
    bucket_ns_per_token_ = std::max<uint64_t>(
        1, static_cast<uint64_t>(1e9 / config_.rate_limit_ops_per_sec + 0.5));
    bucket_cap_ns_ = std::max<uint64_t>(1, config_.rate_limit_burst) *
                     bucket_ns_per_token_;
  }
  batch_ops_.reserve(config_.batch_ops);
  batch_meta_.reserve(config_.batch_ops);
  batch_tenants_.reserve(config_.batch_ops);
}

Gateway::~Gateway() {
  for (auto& slot : tenants_) {
    delete slot.load(std::memory_order_acquire);
  }
}

Gateway::Tenant& Gateway::EnsureTenant(uint32_t tenant) {
  Tenant* live = tenants_[tenant].load(std::memory_order_acquire);
  if (live != nullptr) return *live;
  auto fresh = std::make_unique<Tenant>();
  fresh->bucket.ns_per_token = bucket_ns_per_token_;
  fresh->bucket.cap_ns = bucket_cap_ns_;
  fresh->bucket.credit_ns = bucket_cap_ns_;  // start full
  Tenant* expected = nullptr;
  if (tenants_[tenant].compare_exchange_strong(expected, fresh.get(),
                                               std::memory_order_acq_rel)) {
    return *fresh.release();
  }
  return *expected;  // another producer won the race
}

SubmitResult Gateway::Submit(uint32_t tenant, const engine::Op& op,
                             uint64_t arrival_ns) {
  CAMAL_CHECK(tenant < tenants_.size());
  AtomicMax(&max_arrival_ns_, arrival_ns);
  // Drain whatever the engine could have finished by this arrival before
  // judging queue depth, so admission sees the queue state at time
  // `arrival_ns`, not at the last dispatch.
  TryPump();

  Tenant& t = EnsureTenant(tenant);
  SubmitResult out;
  {
    std::lock_guard<std::mutex> lock(t.mu);
    ++t.counters.submitted;
    if (!t.bucket.TryTake(arrival_ns)) {
      ++t.counters.shed_rate_limited;
      out.status = AdmitStatus::kRejectedRate;
    } else if (config_.admission_control &&
               t.queue.size() >= config_.max_queue_depth) {
      ++t.counters.shed_queue;
      out.status = AdmitStatus::kRejectedQueue;
    } else {
      out.status = AdmitStatus::kAdmitted;
      out.id = next_id_.fetch_add(1, std::memory_order_relaxed);
      const bool was_empty = t.queue.empty();
      t.queue.push_back(PendingRequest{op, out.id, arrival_ns});
      ++t.counters.admitted;
      total_pending_.fetch_add(1, std::memory_order_relaxed);
      if (was_empty) {
        std::lock_guard<std::mutex> mark(nonempty_mu_);
        nonempty_.insert(tenant);
      }
    }
    out.queue_depth = t.queue.size();
    t.counters.max_queue_depth =
        std::max<uint64_t>(t.counters.max_queue_depth, out.queue_depth);
  }
  if (config_.admission_control) {
    out.queue_fill = static_cast<double>(out.queue_depth) /
                     static_cast<double>(config_.max_queue_depth);
  }
  out.backpressure = out.status != AdmitStatus::kAdmitted ||
                     (config_.admission_control &&
                      out.queue_fill >= config_.backpressure_threshold);
  return out;
}

void Gateway::TryPump() {
  if (dispatch_mu_.try_lock()) {
    PumpLocked(
        static_cast<double>(max_arrival_ns_.load(std::memory_order_relaxed)));
    dispatch_mu_.unlock();
  }
}

void Gateway::Pump(uint64_t now_ns) {
  AtomicMax(&max_arrival_ns_, now_ns);
  std::lock_guard<std::mutex> lock(dispatch_mu_);
  PumpLocked(
      static_cast<double>(max_arrival_ns_.load(std::memory_order_relaxed)));
}

void Gateway::Flush() {
  std::lock_guard<std::mutex> lock(dispatch_mu_);
  PumpLocked(std::numeric_limits<double>::infinity());
}

void Gateway::PumpLocked(double now_ns) {
  while (DispatchOne(now_ns)) {
  }
}

bool Gateway::DispatchOne(double now_ns) {
  if (total_pending_.load(std::memory_order_relaxed) == 0) return false;

  // Sweep only tenants with (possibly) nonempty queues — O(active), not
  // O(configured tenants).
  sweep_scratch_.clear();
  {
    std::lock_guard<std::mutex> lock(nonempty_mu_);
    sweep_scratch_.assign(nonempty_.begin(), nonempty_.end());
  }
  if (sweep_scratch_.empty()) return false;

  // The next batch starts when the engine is free and its oldest eligible
  // op has arrived.
  uint64_t earliest = std::numeric_limits<uint64_t>::max();
  for (size_t idx : sweep_scratch_) {
    Tenant& t = *LiveTenant(static_cast<uint32_t>(idx));
    std::lock_guard<std::mutex> lock(t.mu);
    if (!t.queue.empty()) {
      earliest = std::min(earliest, t.queue.front().arrival_ns);
    }
  }
  if (earliest == std::numeric_limits<uint64_t>::max()) return false;
  const double start_ns =
      std::max(engine_free_ns_, static_cast<double>(earliest));
  if (start_ns > now_ns) return false;  // engine busy beyond `now_ns`

  // Coalesce: round-robin one op per tenant per sweep, taking only ops
  // that had arrived by the batch's start (causality — an op cannot join
  // a batch that began before it existed). The sweep walks the nonempty
  // tenants in the same cyclic tenant order the dense walk used: ascending
  // ids starting at the cursor, wrapping.
  batch_ops_.clear();
  batch_meta_.clear();
  batch_tenants_.clear();
  const size_t num_active = sweep_scratch_.size();
  const size_t first =
      std::lower_bound(sweep_scratch_.begin(), sweep_scratch_.end(),
                       rr_cursor_) -
      sweep_scratch_.begin();
  bool progress = true;
  while (batch_ops_.size() < config_.batch_ops && progress) {
    progress = false;
    for (size_t i = 0;
         i < num_active && batch_ops_.size() < config_.batch_ops; ++i) {
      const size_t idx = sweep_scratch_[(first + i) % num_active];
      Tenant& t = *LiveTenant(static_cast<uint32_t>(idx));
      std::lock_guard<std::mutex> lock(t.mu);
      if (!t.queue.empty() &&
          static_cast<double>(t.queue.front().arrival_ns) <= start_ns) {
        batch_ops_.push_back(t.queue.front().op);
        batch_meta_.push_back(t.queue.front());
        batch_tenants_.push_back(static_cast<uint32_t>(idx));
        t.queue.pop_front();
        total_pending_.fetch_sub(1, std::memory_order_relaxed);
        progress = true;
      }
      if (t.queue.empty()) {
        std::lock_guard<std::mutex> mark(nonempty_mu_);
        nonempty_.erase(idx);
      }
    }
  }
  rr_cursor_ = (rr_cursor_ + 1) % tenants_.size();
  if (batch_ops_.empty()) return false;

  // Observer cost attribution: remember the pre-batch clock of every
  // resident shard not yet observed, so the post-batch pass can compute
  // exact per-batch deltas touching only resident shards. Shards that
  // materialize from cold mid-batch start at clock zero, and a shard's
  // clock never advances while it is cold or hibernated, so the sparse
  // bookkeeping reproduces the dense before/after subtraction.
  const size_t num_shards = engine_->NumShards();
  if (observer_ != nullptr) {
    if (shard_cost_scratch_.size() != num_shards) {
      shard_cost_scratch_.assign(num_shards, 0.0);
      last_shard_cost_.assign(num_shards, 0.0);
      cost_seen_.assign(num_shards, 0);
      prev_cost_shards_.clear();
    }
    resident_scratch_.clear();
    engine_->AppendResidentShards(&resident_scratch_);
    for (size_t s : resident_scratch_) {
      if (cost_seen_[s]) continue;
      last_shard_cost_[s] = engine_->ShardCostSnapshot(s).elapsed_ns;
      cost_seen_[s] = 1;
    }
  }

  batch_results_.resize(batch_ops_.size());
  engine_->ExecuteOps(batch_ops_.data(), batch_ops_.size(),
                      batch_results_.data());

  // Serial-equivalent completion: op i finishes at start + the cumulative
  // service of ops 0..i (matching the engines' serial-equivalent cost
  // accounting); everything before its own service time is queueing.
  double cum_ns = 0.0;
  for (size_t i = 0; i < batch_ops_.size(); ++i) {
    Completion c;
    c.id = batch_meta_[i].id;
    c.tenant = batch_tenants_[i];
    c.kind = batch_ops_[i].kind;
    c.result = batch_results_[i];
    c.arrival_ns = batch_meta_[i].arrival_ns;
    c.service_ns = batch_results_[i].latency_ns;
    c.queue_ns =
        (start_ns - static_cast<double>(c.arrival_ns)) + cum_ns;
    cum_ns += c.service_ns;
    stats_.total_latency_ns.Add(c.TotalNs());
    stats_.queue_latency_ns.Add(c.queue_ns);
    stats_.service_latency_ns.Add(c.service_ns);
    stats_.service_ns_total += c.service_ns;
    stats_.total_ios += c.result.ios;
    ++stats_.completed;
    completions_.push_back(c);
  }
  engine_free_ns_ = start_ns + cum_ns;
  ++stats_.batches;

  if (observer_ != nullptr) {
    // Dense delta buffer, sparse upkeep: zero the slots the previous
    // batch wrote, then write this batch's deltas over the (possibly
    // grown) resident set.
    for (size_t s : prev_cost_shards_) shard_cost_scratch_[s] = 0.0;
    resident_scratch_.clear();
    engine_->AppendResidentShards(&resident_scratch_);
    for (size_t s : resident_scratch_) {
      const double now = engine_->ShardCostSnapshot(s).elapsed_ns;
      shard_cost_scratch_[s] = now - last_shard_cost_[s];
      last_shard_cost_[s] = now;
      cost_seen_[s] = 1;
    }
    prev_cost_shards_.swap(resident_scratch_);

    // Same pattern for queue depths: only nonempty tenants can report a
    // nonzero depth, so refresh those slots and zero last batch's.
    if (depths_scratch_.size() != tenants_.size()) {
      depths_scratch_.assign(tenants_.size(), 0);
      prev_depth_tenants_.clear();
    }
    for (size_t idx : prev_depth_tenants_) depths_scratch_[idx] = 0;
    {
      std::lock_guard<std::mutex> lock(nonempty_mu_);
      prev_depth_tenants_.assign(nonempty_.begin(), nonempty_.end());
    }
    for (size_t idx : prev_depth_tenants_) {
      Tenant& t = *LiveTenant(static_cast<uint32_t>(idx));
      std::lock_guard<std::mutex> lock(t.mu);
      depths_scratch_[idx] = t.queue.size();
    }
    workload::BatchEvent event;
    event.batch_index = batch_index_;
    event.count = batch_ops_.size();
    event.engine_ops = batch_ops_.data();
    event.results = batch_results_.data();
    workload::CountBatchKinds(&event);
    event.queue_depths = depths_scratch_.data();
    event.num_queues = depths_scratch_.size();
    event.shard_cost_delta_ns = shard_cost_scratch_.data();
    event.num_shards = num_shards;
    observer_->OnBatchEvent(engine_, event);
  }
  ++batch_index_;
  return true;
}

size_t Gateway::PollCompletions(std::vector<Completion>* out) {
  std::lock_guard<std::mutex> lock(dispatch_mu_);
  const size_t n = completions_.size();
  if (out != nullptr) {
    out->insert(out->end(), completions_.begin(), completions_.end());
  }
  completions_.clear();
  return n;
}

size_t Gateway::QueueDepth(uint32_t tenant) const {
  CAMAL_CHECK(tenant < tenants_.size());
  const Tenant* t = LiveTenant(tenant);
  if (t == nullptr) return 0;  // never submitted
  std::lock_guard<std::mutex> lock(t->mu);
  return t->queue.size();
}

double Gateway::engine_free_ns() const {
  std::lock_guard<std::mutex> lock(dispatch_mu_);
  return engine_free_ns_;
}

GatewayStats Gateway::StatsSnapshot() const {
  GatewayStats out;
  {
    std::lock_guard<std::mutex> lock(dispatch_mu_);
    out = stats_;
  }
  // Admission accounting lives tenant-local (the submit path never takes
  // the dispatch mutex); aggregate it here over materialized tenants —
  // a never-submitting tenant has all-zero counters by definition.
  for (const auto& slot : tenants_) {
    const Tenant* t = slot.load(std::memory_order_acquire);
    if (t == nullptr) continue;
    std::lock_guard<std::mutex> lock(t->mu);
    out.submitted += t->counters.submitted;
    out.admitted += t->counters.admitted;
    out.shed_queue += t->counters.shed_queue;
    out.shed_rate_limited += t->counters.shed_rate_limited;
    out.max_queue_depth =
        std::max(out.max_queue_depth, t->counters.max_queue_depth);
  }
  return out;
}

TenantCounters Gateway::TenantStats(uint32_t tenant) const {
  CAMAL_CHECK(tenant < tenants_.size());
  const Tenant* t = LiveTenant(tenant);
  if (t == nullptr) return TenantCounters{};  // never submitted
  std::lock_guard<std::mutex> lock(t->mu);
  return t->counters;
}

}  // namespace camal::serve
