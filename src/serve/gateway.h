#ifndef CAMAL_SERVE_GATEWAY_H_
#define CAMAL_SERVE_GATEWAY_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <set>
#include <vector>

#include "engine/storage_engine.h"
#include "util/stats.h"
#include "workload/request.h"

namespace camal::serve {

/// Why a submitted request was (not) admitted.
enum class AdmitStatus : uint8_t {
  kAdmitted,
  /// Shed by admission control: the tenant's queue was at its depth bound.
  kRejectedQueue,
  /// Shed by the tenant's token-bucket rate limit.
  kRejectedRate,
};

/// Gateway knobs.
struct GatewayConfig {
  /// Independent request streams (per-tenant queues). Benches map tenants
  /// to engine shards 1:1, but any stable mapping works.
  size_t num_tenants = 1;
  /// Maximum ops coalesced into one `ExecuteOps` dispatch.
  size_t batch_ops = 512;
  /// Per-tenant queue depth bound enforced by admission control.
  size_t max_queue_depth = 256;
  /// When false, queues are unbounded and nothing is shed on depth — the
  /// "collapse" baseline an overload bench compares against.
  bool admission_control = true;
  /// Per-tenant token-bucket rate limit in ops/second; 0 disables it.
  /// Refill arithmetic is integer-exact (whole nanoseconds of credit), so
  /// admit counts are an exact function of the arrival timestamps.
  double rate_limit_ops_per_sec = 0.0;
  /// Token-bucket capacity in ops (also the initial credit).
  size_t rate_limit_burst = 32;
  /// Queue-fill fraction at (or above) which `SubmitResult::backpressure`
  /// signals open-loop producers to slow down.
  double backpressure_threshold = 0.75;
};

/// What `Submit` tells the producer.
struct SubmitResult {
  AdmitStatus status = AdmitStatus::kAdmitted;
  /// Request id (valid only when admitted); completions carry it back.
  uint64_t id = 0;
  /// Tenant queue depth right after this submit.
  size_t queue_depth = 0;
  /// Depth as a fraction of the admission bound (0 when unbounded).
  double queue_fill = 0.0;
  /// Backpressure signal: the tenant's queue is filling (or this request
  /// was shed) — an open-loop producer should slow down.
  bool backpressure = false;
};

/// One served request: the engine-attributed outcome plus the gateway's
/// latency attribution, queue and service separated.
struct Completion {
  uint64_t id = 0;
  uint32_t tenant = 0;
  engine::OpKind kind = engine::OpKind::kGet;
  engine::OpResult result;
  /// Virtual arrival timestamp the producer submitted with.
  uint64_t arrival_ns = 0;
  /// Time spent queued: dispatch start minus arrival, plus the serial
  /// wait behind earlier ops of the same batch.
  double queue_ns = 0.0;
  /// Engine-attributed service time of this op alone.
  double service_ns = 0.0;

  double TotalNs() const { return queue_ns + service_ns; }
};

/// Aggregate serving metrics. Sketches hold one entry per completed
/// request; query them only at quiescence (PercentileSketch caches its
/// sort).
struct GatewayStats {
  uint64_t submitted = 0;
  uint64_t admitted = 0;
  uint64_t shed_queue = 0;
  uint64_t shed_rate_limited = 0;
  uint64_t completed = 0;
  uint64_t batches = 0;
  /// High-water mark of any tenant queue depth.
  uint64_t max_queue_depth = 0;
  uint64_t total_ios = 0;
  double service_ns_total = 0.0;
  util::PercentileSketch total_latency_ns;
  util::PercentileSketch queue_latency_ns;
  util::PercentileSketch service_latency_ns;

  uint64_t shed() const { return shed_queue + shed_rate_limited; }
  double ShedFraction() const {
    return submitted == 0
               ? 0.0
               : static_cast<double>(shed()) / static_cast<double>(submitted);
  }
};

/// Per-tenant admission counters.
struct TenantCounters {
  uint64_t submitted = 0;
  uint64_t admitted = 0;
  uint64_t shed_queue = 0;
  uint64_t shed_rate_limited = 0;
  /// High-water mark of this tenant's queue depth.
  uint64_t max_queue_depth = 0;
};

/// \brief In-process serving front-end: accepts concurrent per-tenant
/// request streams, enforces overload policy (token-bucket rate limits,
/// bounded-queue admission control, backpressure signaling), coalesces
/// admitted requests into `engine::Op` batches submitted through
/// `StorageEngine::ExecuteOps`, and attributes queue and service latency
/// separately per request.
///
/// **Time model.** The gateway runs on *virtual time*: producers stamp
/// every request with an open-loop arrival timestamp, and the service
/// side advances a virtual engine clock by the engine-attributed latency
/// of each dispatched batch (`engine_free_ns`). A batch starts at
/// max(engine-free, oldest eligible arrival) and only ops that had
/// arrived by that start join it, so queueing delay is the causal wait an
/// op would experience on a real serial server — reproducible on the
/// simulated backend, measured on the real-IO backend. Because dispatch
/// decisions depend only on arrival timestamps and engine-attributed
/// costs (never on wall-clock or thread scheduling), replaying a fixed
/// arrival trace from one thread yields identical admit/shed decisions
/// and identical latency attribution at any engine pool size.
///
/// **Admission.** Both overload checks are tenant-local and run at
/// submit time, after the virtual clock has drained everything the
/// engine could have finished by the request's arrival: first the token
/// bucket (integer-exact credit in nanoseconds), then the queue depth
/// bound. A shed request is counted and reported (`kRejected*`) and
/// never reaches the engine — no queue slot, no engine op, no I/O.
///
/// **Scale.** Tenant state is lazy: a tenant that never submitted holds
/// one null pointer, and its queue/bucket/counters materialize on first
/// `Submit` (so `num_tenants` in the millions costs pointers, not
/// queues). Dispatch tracks the set of nonempty queues and sweeps only
/// those, and the observer's per-shard cost deltas are computed over the
/// engine's resident shards — per-batch work is O(active tenants +
/// resident shards), never O(configured totals).
///
/// **Threading.** Queues are finely locked MPSC: each tenant has its own
/// mutex, so concurrent producers of different tenants never contend.
/// Dispatch (engine access, the virtual clock, completions, stats) is
/// serialized by one dispatch mutex; submitters opportunistically pump it
/// with `try_lock`, and `Pump`/`Flush` pump it blocking. The engine is
/// only ever driven under the dispatch mutex, honoring its
/// externally-synchronized contract.
class Gateway {
 public:
  /// `engine` is borrowed, not owned, and must outlive the gateway. The
  /// caller must not drive the engine while the gateway serves it.
  Gateway(engine::StorageEngine* engine, const GatewayConfig& config);
  ~Gateway();

  Gateway(const Gateway&) = delete;
  Gateway& operator=(const Gateway&) = delete;

  /// Submits one request on `tenant`'s stream with open-loop arrival
  /// timestamp `arrival_ns` (monotone non-decreasing per producer).
  /// Admission happens here; admitted requests complete asynchronously
  /// (drain with `PollCompletions` after `Pump`/`Flush`).
  SubmitResult Submit(uint32_t tenant, const engine::Op& op,
                      uint64_t arrival_ns);

  /// Advances virtual time to (at least) `now_ns`, dispatching every
  /// batch the engine could have started by then. Blocking (takes the
  /// dispatch mutex).
  void Pump(uint64_t now_ns);

  /// Drains all queues regardless of virtual time (end of trace). After
  /// Flush, every admitted request has a completion.
  void Flush();

  /// Appends all buffered completions to `*out`; returns how many.
  size_t PollCompletions(std::vector<Completion>* out);

  /// Current depth of one tenant's queue.
  size_t QueueDepth(uint32_t tenant) const;

  /// Virtual time at which the engine finishes its last dispatched batch.
  double engine_free_ns() const;

  /// Copy of the aggregate metrics (take at quiescence for quantiles).
  GatewayStats StatsSnapshot() const;

  /// Copy of one tenant's admission counters.
  TenantCounters TenantStats(uint32_t tenant) const;

  /// Attaches (or detaches, with nullptr) a batch observer fired after
  /// every dispatched batch with engine ops, results, per-tenant queue
  /// depths, and per-shard cost deltas (`event.ops` is null: there is no
  /// generator behind gateway traffic). The arbiter attaches here to ride
  /// gateway batch boundaries. Not owned; must outlive its use. The
  /// observer runs under the dispatch mutex and may reconfigure the
  /// engine but must not submit to the gateway.
  void set_observer(workload::BatchObserver* observer) {
    observer_ = observer;
  }
  workload::BatchObserver* observer() const { return observer_; }

  const GatewayConfig& config() const { return config_; }
  engine::StorageEngine* engine() const { return engine_; }

 private:
  /// Integer-exact token bucket: credit accrues in whole nanoseconds, one
  /// token costs `ns_per_token` of credit.
  struct TokenBucket {
    uint64_t ns_per_token = 0;  // 0 = unlimited
    uint64_t cap_ns = 0;
    uint64_t credit_ns = 0;
    uint64_t last_ns = 0;

    bool TryTake(uint64_t now_ns);
  };

  struct PendingRequest {
    engine::Op op;
    uint64_t id = 0;
    uint64_t arrival_ns = 0;
  };

  struct Tenant {
    mutable std::mutex mu;
    std::deque<PendingRequest> queue;
    TokenBucket bucket;
    TenantCounters counters;
  };

  /// The tenant's live state, or null while it has never submitted.
  Tenant* LiveTenant(uint32_t tenant) const {
    return tenants_[tenant].load(std::memory_order_acquire);
  }

  /// Materializes (first submit) or returns the tenant's live state.
  Tenant& EnsureTenant(uint32_t tenant);

  /// Non-blocking pump: dispatches when the dispatch mutex is free,
  /// otherwise leaves the work to whoever holds it.
  void TryPump();

  /// Dispatch loop; `dispatch_mu_` must be held. `now_ns` bounds the
  /// virtual time batches may start at (use +inf to drain everything).
  void PumpLocked(double now_ns);

  /// One dispatch step; returns false when nothing could start by
  /// `now_ns`. `dispatch_mu_` must be held.
  bool DispatchOne(double now_ns);

  engine::StorageEngine* engine_;
  GatewayConfig config_;
  /// Lazily materialized tenant slots (null = tenant never submitted).
  /// Slots are created with a CAS and never destroyed before the gateway.
  std::vector<std::atomic<Tenant*>> tenants_;
  /// Token-bucket parameters every materializing tenant starts with.
  uint64_t bucket_ns_per_token_ = 0;
  uint64_t bucket_cap_ns_ = 0;

  /// Tenants whose queues are (possibly) nonempty — dispatch sweeps only
  /// these. Transitions happen under the owning tenant's mutex (lock
  /// order: tenant mu, then nonempty_mu_).
  mutable std::mutex nonempty_mu_;
  std::set<size_t> nonempty_;

  std::atomic<uint64_t> next_id_{1};
  std::atomic<uint64_t> max_arrival_ns_{0};
  std::atomic<size_t> total_pending_{0};

  mutable std::mutex dispatch_mu_;
  // --- everything below is guarded by dispatch_mu_ -----------------------
  double engine_free_ns_ = 0.0;
  size_t rr_cursor_ = 0;
  size_t batch_index_ = 0;
  std::vector<Completion> completions_;
  GatewayStats stats_;
  // Scratch buffers reused across dispatches.
  std::vector<engine::Op> batch_ops_;
  std::vector<engine::OpResult> batch_results_;
  std::vector<PendingRequest> batch_meta_;
  std::vector<uint32_t> batch_tenants_;
  std::vector<size_t> sweep_scratch_;
  std::vector<uint64_t> depths_scratch_;
  std::vector<size_t> prev_depth_tenants_;
  // Observer cost attribution: dense delta buffer with sparse upkeep —
  // only resident shards are visited per batch; stale slots from the
  // previous batch are zeroed by index.
  std::vector<double> shard_cost_scratch_;
  std::vector<double> last_shard_cost_;
  std::vector<uint8_t> cost_seen_;
  std::vector<size_t> prev_cost_shards_;
  std::vector<size_t> resident_scratch_;

  workload::BatchObserver* observer_ = nullptr;
};

}  // namespace camal::serve

#endif  // CAMAL_SERVE_GATEWAY_H_
