#ifndef CAMAL_CAMAL_PLAIN_AL_TUNER_H_
#define CAMAL_CAMAL_PLAIN_AL_TUNER_H_

#include <vector>

#include "camal/tuner.h"

namespace camal::tune {

/// Plain active learning baseline: random initialization, then repeated
/// train-the-model / sample-the-predicted-minimum cycles over the *joint*
/// configuration space (no complexity-analysis initialization, no
/// parameter decoupling). Samples are shared across workloads through one
/// model, as in Section 8.1.
class PlainAlTuner : public ModelBackedTuner {
 public:
  PlainAlTuner(const SystemSetup& full_setup, const TunerOptions& options);

  void Train(const std::vector<model::WorkloadSpec>& workloads) override;

 private:
  TuningConfig RandomConfig(const model::SystemParams& sys);
  /// Model argmin over the grid, skipping configs already sampled for `w`.
  TuningConfig NextQuery(const model::WorkloadSpec& w,
                         const model::SystemParams& sys,
                         const std::vector<TuningConfig>& already) const;
};

/// Returns true when two configurations are (almost) the same point.
bool SameConfig(const TuningConfig& a, const TuningConfig& b);

}  // namespace camal::tune

#endif  // CAMAL_CAMAL_PLAIN_AL_TUNER_H_
