#include "camal/evaluator.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <memory>

#include "camal/memory_arbiter.h"
#include "engine/file_engine.h"
#include "engine/sharded_engine.h"
#include "serve/gateway.h"
#include "util/random.h"
#include "util/thread_pool.h"
#include "workload/executor.h"
#include "workload/generator.h"

namespace camal::tune {

using util::HashCombine;

namespace {

/// Maps the setup-level read-submission knob to the engine's enum.
engine::IoMode ToIoMode(FileIoMode m) {
  switch (m) {
    case FileIoMode::kPread:
      return engine::IoMode::kPread;
    case FileIoMode::kUring:
      return engine::IoMode::kUring;
    case FileIoMode::kAuto:
      return engine::IoMode::kAuto;
  }
  return engine::IoMode::kAuto;
}

/// Maps the setup-level WAL fsync knob to the engine's policy enum.
engine::fileio::WalSyncPolicy ToWalSyncPolicy(FileWalSync s) {
  switch (s) {
    case FileWalSync::kNone:
      return engine::fileio::WalSyncPolicy::kNone;
    case FileWalSync::kBatch:
      return engine::fileio::WalSyncPolicy::kBatch;
    case FileWalSync::kAlways:
      return engine::fileio::WalSyncPolicy::kAlways;
  }
  return engine::fileio::WalSyncPolicy::kNone;
}

}  // namespace

Evaluator::Evaluator(const SystemSetup& setup) : setup_(setup) {
  ValidateOrDie(setup_);
  // A pool only pays off when there are shards to fan across: with one
  // shard every ExecuteOps batch is a single sub-list and runs inline.
  if (setup_.engine_threads != 1 && setup_.num_shards > 1) {
    engine_pool_ = std::make_shared<util::ThreadPool>(setup_.engine_threads);
  }
}

Measurement Evaluator::Measure(const model::WorkloadSpec& workload,
                               const TuningConfig& config, size_t num_ops,
                               uint64_t salt) const {
  // The dataset itself is fixed per setup (same keys for every sample).
  workload::KeySpace keys(setup_.num_entries, setup_.seed);
  const size_t num_shards = std::max<size_t>(1, setup_.num_shards);
  std::unique_ptr<engine::StorageEngine> owned;
  if (setup_.backend == EngineBackend::kFile) {
    // Real-IO backend: a unique file set per measurement (concurrent
    // MakeSamples measurements must never share a directory).
    engine::FileEngineConfig fcfg;
    const std::string base =
        setup_.file_workdir.empty()
            ? std::string()
            : setup_.file_workdir + "/m_" +
                  std::to_string(engine::FileEngine::NextUniqueId());
    fcfg.workdir = base;
    fcfg.io_mode = ToIoMode(setup_.io_mode);
    fcfg.io_queue_depth = static_cast<uint32_t>(
        std::max(1, setup_.io_queue_depth));
    // Durability knobs: manifest + WAL writes land outside the counted
    // cost clocks, so I/O counters stay identical durable on or off.
    fcfg.durable = setup_.file_durable;
    fcfg.wal_sync = ToWalSyncPolicy(setup_.file_wal_sync);
    // Recovery timing reopens this file set after the measured engine
    // closes, so the measured engine must leave it behind.
    if (setup_.measure_recovery) fcfg.keep_files = true;
    auto fe = std::make_unique<engine::FileEngine>(
        num_shards, config.ToOptions(setup_), fcfg);
    fe->set_pool(engine_pool_.get());
    owned = std::move(fe);
  } else {
    // One shard is bit-identical to the historical direct-tree path: the
    // engine wraps a single tree over a device with exactly this config.
    auto se = std::make_unique<engine::ShardedEngine>(
        num_shards, config.ToOptions(setup_), setup_.MakeDeviceConfig(salt));
    se->set_pool(engine_pool_.get());
    owned = std::move(se);
  }
  engine::StorageEngine& eng = *owned;
  workload::BulkLoad(&eng, keys);
  // Phase-randomizing warmup: a salt-dependent burst of updates so each
  // measurement samples a different compaction-fullness phase. Without it,
  // every run would observe the single deterministic post-load phase, and
  // that phase (not the steady state) would dominate the learned landscape.
  {
    util::Random warm_rng(HashCombine(setup_.seed * 17, salt + 3));
    const auto extra = static_cast<uint64_t>(
        0.3 * static_cast<double>(setup_.num_entries) * warm_rng.NextDouble());
    for (uint64_t i = 0; i < extra; ++i) {
      eng.Put(keys.KeyAt(warm_rng.Uniform(keys.num_keys())), i);
    }
  }
  const double build_ns = eng.CostSnapshot().elapsed_ns;
  // Residual attribution starts clean: the op-cost profiler should see
  // the measured query phase only, not ingest/warmup traffic.
  eng.ResetOpCostWindows();

  workload::ExecutorConfig exec;
  exec.num_ops = num_ops;
  exec.generator.scan_len = setup_.scan_len;
  exec.generator.insert_new_keys = false;
  // Tenant-skewed traffic (inert at shard_skew == 0: the generator then
  // draws exactly the historical stream).
  exec.generator.shard_skew = setup_.shard_skew;
  exec.generator.num_shards = eng.NumShards();
  exec.seed = HashCombine(setup_.seed * 31, salt + 1);
  // Static evaluation can price uneven splits: with arbitration on, the
  // arbiter rides the batch pipeline as a hook and redistributes shard
  // budgets mid-measurement, exactly as a serving system would.
  std::unique_ptr<MemoryArbiter> arbiter;
  if (setup_.arbitration == ArbitrationMode::kPeriodic && eng.NumShards() > 1) {
    ArbiterOptions arb_opts;
    arb_opts.period_ops = setup_.arbiter_period_ops;
    arbiter = std::make_unique<MemoryArbiter>(
        setup_, config.ToOptions(setup_), eng.NumShards(), arb_opts);
    exec.hook = arbiter.get();
  }

  Measurement m;
  m.build_ns = build_ns;
  if (setup_.serve_mode == ServeMode::kGateway) {
    // Open-loop serving: the same generated stream, but requests arrive on
    // Poisson timestamps and pass through the gateway's per-tenant
    // admission before reaching the engine. Latency then includes queueing
    // delay, and overload shows up as a shed rate instead of as a slower
    // closed loop.
    serve::GatewayConfig gcfg;
    gcfg.num_tenants = eng.NumShards();
    gcfg.max_queue_depth = setup_.gateway_queue_depth;
    gcfg.admission_control = setup_.gateway_admission;
    gcfg.rate_limit_ops_per_sec = setup_.gateway_rate_limit_ops_per_sec;
    gcfg.rate_limit_burst = setup_.gateway_rate_burst;
    serve::Gateway gateway(&eng, gcfg);
    // The arbiter rides gateway batch boundaries instead of executor ones.
    if (arbiter != nullptr) gateway.set_observer(arbiter.get());

    workload::OperationGenerator gen(workload, &keys, exec.generator,
                                     exec.seed);
    util::Random arrivals(HashCombine(setup_.seed * 131, salt + 9));
    double clock_ns = 0.0;
    for (size_t i = 0; i < num_ops; ++i) {
      const workload::Operation op = gen.Next();
      clock_ns -= setup_.gateway_interarrival_ns *
                  std::log(1.0 - arrivals.NextDouble());
      const engine::Op engine_op = workload::ToEngineOp(op);
      gateway.Submit(static_cast<uint32_t>(eng.ShardIndex(engine_op.key)),
                     engine_op, static_cast<uint64_t>(clock_ns));
    }
    gateway.Flush();

    const serve::GatewayStats stats = gateway.StatsSnapshot();
    m.mean_latency_ns = stats.total_latency_ns.Mean();
    m.p90_latency_ns = stats.total_latency_ns.Quantile(0.9);
    m.p99_latency_ns = stats.total_latency_ns.Quantile(0.99);
    m.ios_per_op = stats.completed == 0
                       ? 0.0
                       : static_cast<double>(stats.total_ios) /
                             static_cast<double>(stats.completed);
    m.shed_rate = stats.ShedFraction();
    m.queue_p99_ns = stats.queue_latency_ns.Quantile(0.99);
    // The run "takes" until the engine finishes its last batch — arrivals
    // plus queueing, the open-loop makespan.
    m.run_ns = gateway.engine_free_ns();
  } else {
    workload::ExecutionResult result =
        workload::Execute(&eng, workload, exec, &keys);
    m.mean_latency_ns = result.MeanLatencyNs();
    m.p90_latency_ns = result.latency_ns.Quantile(0.9);
    m.p99_latency_ns = result.latency_ns.Quantile(0.99);
    m.ios_per_op = result.IosPerOp();
    m.run_ns = result.total_ns;
  }
  // Per-channel measured-vs-predicted residuals: the closed-form model's
  // expectation at this (workload, config) against the engine's profiler
  // windows over the query phase just served. Predictions use the
  // system-total scale — on a multi-shard engine this is the model's
  // whole-system view of the same approximation the tuners price with.
  {
    const model::CostModel cm(setup_.ToModelParams());
    const model::ModelConfig mc = config.ToModelConfig();
    const model::WorkloadSpec wn = workload.Normalized();
    const double point_weight = wn.v + wn.r;
    m.point_ios_predicted =
        point_weight <= 0.0
            ? 0.0
            : (wn.v * cm.ZeroResultLookupCost(mc) +
               wn.r * cm.NonZeroResultLookupCost(mc)) /
                  point_weight;
    m.range_ios_predicted = cm.RangeLookupCost(mc);
    m.write_ios_predicted = cm.WriteCost(mc);

    const engine::OpCostWindow points =
        eng.OpCostWindowTotal(engine::OpKind::kGet);
    engine::OpCostWindow writes = eng.OpCostWindowTotal(engine::OpKind::kPut);
    writes += eng.OpCostWindowTotal(engine::OpKind::kDelete);
    const engine::OpCostWindow ranges =
        eng.OpCostWindowTotal(engine::OpKind::kScan);
    if (points.ops > 0) {
      m.point_ios_measured = points.IosPerOp();
      m.point_ios_residual = m.point_ios_measured - m.point_ios_predicted;
    }
    if (ranges.ops > 0) {
      m.range_ios_measured = ranges.IosPerOp();
      m.range_ios_residual = m.range_ios_measured - m.range_ios_predicted;
    }
    if (writes.ops > 0) {
      m.write_ios_measured = writes.IosPerOp();
      m.write_ios_residual = m.write_ios_measured - m.write_ios_predicted;
    }
  }
  m.total_cost_ns = build_ns + m.run_ns;
  // Crash-free recovery timing: close the measured engine cleanly (WAL
  // commit + fd close), then time a `reopen=true` construction over the
  // same file set — manifest replay plus WAL tail replay, no run
  // rebuilds. The file set is removed afterwards either way.
  if (setup_.backend == EngineBackend::kFile && setup_.measure_recovery) {
    const std::string dir =
        static_cast<engine::FileEngine&>(eng).workdir();
    arbiter.reset();  // drops the executor hook before its engine goes
    owned.reset();    // clean close: the measured engine releases `dir`
    engine::FileEngineConfig rcfg;
    rcfg.workdir = dir;
    rcfg.reopen = true;
    rcfg.wal_sync = ToWalSyncPolicy(setup_.file_wal_sync);
    rcfg.io_mode = ToIoMode(setup_.io_mode);
    rcfg.io_queue_depth =
        static_cast<uint32_t>(std::max(1, setup_.io_queue_depth));
    const auto t0 = std::chrono::steady_clock::now();
    {
      engine::FileEngine reopened(num_shards, config.ToOptions(setup_),
                                  rcfg);
      m.recovery_ns = static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - t0)
              .count());
    }
    // The reopened engine removes its shard subtrees on destruction;
    // sweep whatever shell of the unique measurement dir remains.
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
  }
  return m;
}

Sample Evaluator::MakeSample(const model::WorkloadSpec& workload,
                             const TuningConfig& config, uint64_t salt) const {
  // Average two compaction-fullness phases per sample so the label
  // estimates the steady state (the paper's single long run does the same
  // by sheer query count). Both runs are paid for in the sample cost.
  const Measurement a = Measure(workload, config, setup_.train_ops, salt);
  const Measurement b =
      Measure(workload, config, setup_.train_ops, HashCombine(salt, 0xb0b));
  Sample sample;
  sample.workload = workload;
  sample.config = config;
  sample.sys = setup_.ToModelParams();
  sample.mean_latency_ns = (a.mean_latency_ns + b.mean_latency_ns) / 2.0;
  sample.p90_latency_ns = (a.p90_latency_ns + b.p90_latency_ns) / 2.0;
  sample.ios_per_op = (a.ios_per_op + b.ios_per_op) / 2.0;
  sample.cost_ns = a.total_cost_ns + b.total_cost_ns;
  return sample;
}

Measurement Evaluator::Evaluate(const model::WorkloadSpec& workload,
                                const TuningConfig& config,
                                uint64_t salt) const {
  return Measure(workload, config, setup_.eval_ops, HashCombine(salt, 777));
}

std::vector<Sample> Evaluator::MakeSamples(
    const model::WorkloadSpec& workload,
    const std::vector<TuningConfig>& configs, uint64_t first_salt,
    util::ThreadPool* pool) const {
  std::vector<Sample> out(configs.size());
  util::ParallelFor(pool, 0, configs.size(), [&](size_t i) {
    out[i] = MakeSample(workload, configs[i],
                        first_salt + static_cast<uint64_t>(i));
  });
  return out;
}

std::vector<Measurement> Evaluator::EvaluateBatch(
    const std::vector<EvalJob>& jobs, util::ThreadPool* pool) const {
  std::vector<Measurement> out(jobs.size());
  util::ParallelFor(pool, 0, jobs.size(), [&](size_t i) {
    out[i] = Evaluate(jobs[i].workload, jobs[i].config, jobs[i].salt);
  });
  return out;
}

}  // namespace camal::tune
