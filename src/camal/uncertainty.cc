#include "camal/uncertainty.h"

#include <limits>
#include <vector>

#include "util/status.h"

namespace camal::tune {

TuningConfig RecommendUnderUncertainty(const ModelBackedTuner& tuner,
                                       const model::WorkloadSpec& expected,
                                       double rho, int num_workloads,
                                       util::Random* rng) {
  CAMAL_CHECK(num_workloads > 0);
  if (rho <= 0.0) return tuner.Recommend(expected);

  std::vector<model::WorkloadSpec> scenarios;
  scenarios.reserve(static_cast<size_t>(num_workloads));
  for (int i = 0; i < num_workloads; ++i) {
    scenarios.push_back(model::SampleInKlBall(expected, rho, rng));
  }

  const model::SystemParams target = tuner.full_setup().ToModelParams();
  // Candidates: the per-scenario optima (cheap and well-spread).
  std::vector<TuningConfig> candidates;
  candidates.push_back(tuner.Recommend(expected));
  for (const model::WorkloadSpec& s : scenarios) {
    candidates.push_back(tuner.RecommendFor(s, target));
  }

  TuningConfig best = candidates.front();
  double best_avg = std::numeric_limits<double>::infinity();
  for (const TuningConfig& c : candidates) {
    double total = 0.0;
    for (const model::WorkloadSpec& s : scenarios) {
      total += tuner.PredictObjective(s, c, target);
    }
    const double avg = total / static_cast<double>(scenarios.size());
    if (avg < best_avg) {
      best_avg = avg;
      best = c;
    }
  }
  return best;
}

}  // namespace camal::tune
