#include "camal/extrapolation.h"

#include "util/status.h"

namespace camal::tune {

TuningConfig ExtrapolateConfig(const TuningConfig& config, double k) {
  CAMAL_CHECK(k > 0.0);
  TuningConfig out = config;
  out.mf_bits *= k;
  out.mb_bits *= k;
  out.mc_bits *= k;
  // size_ratio, policy, runs_per_level and file size carry over unchanged.
  return out;
}

model::SystemParams ScaleParams(const model::SystemParams& params, double k) {
  CAMAL_CHECK(k > 0.0);
  model::SystemParams out = params;
  out.num_entries *= k;
  out.total_memory_bits *= k;
  return out;
}

}  // namespace camal::tune
