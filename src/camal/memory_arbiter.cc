#include "camal/memory_arbiter.h"

#include <algorithm>
#include <limits>
#include <set>

#include "engine/sharded_engine.h"
#include "model/arbitration.h"
#include "model/optimum.h"
#include "util/status.h"

namespace camal::tune {

MemoryArbiter::MemoryArbiter(const SystemSetup& setup,
                             const lsm::Options& total_options,
                             size_t num_shards,
                             const ArbiterOptions& options)
    : setup_(setup), options_(options) {
  CAMAL_CHECK(num_shards >= 1);
  shape_.policy = total_options.policy;
  shape_.size_ratio = total_options.size_ratio;
  shape_.runs_per_level = total_options.runs_per_level;

  // Start from exactly what the engine handed each shard (floor division
  // drops remainders system-wide, so the conserved total is the sum of
  // the shares, not the nominal system budget).
  const engine::ShardBudget even = engine::ShardBudget::FromOptions(
      engine::ShardedEngine::ShardOptions(total_options, num_shards));
  num_shards_ = num_shards;
  even_share_bits_ = even.TotalBits();
  total_bits_ = even_share_bits_ * num_shards;
  // Every shard starts implicit: its even share pooled in its group. The
  // pool of g members holds exactly g * share, so any withdrawal order
  // hands each member exactly the even share until lifecycle events
  // perturb the pool — the lazy hierarchy is invisible at steady start.
  group_size_ = std::max<size_t>(1, options_.group_size);
  const size_t num_groups = (num_shards + group_size_ - 1) / group_size_;
  groups_.resize(num_groups);
  for (size_t g = 0; g < num_groups; ++g) {
    const size_t members =
        std::min(group_size_, num_shards - g * group_size_);
    groups_[g].implicit_members = members;
    groups_[g].pool_bits = even_share_bits_ * members;
  }
  const double share = static_cast<double>(even.TotalBits());
  floor_bits_ = static_cast<uint64_t>(options_.floor_frac * share);
  quantum_bits_ =
      std::max<uint64_t>(1, static_cast<uint64_t>(options_.quantum_frac * share));
  // A quantum whose buffer slice is smaller than one entry is below the
  // engine's discretization: budgets would drift, behavior would barely
  // change, and every move would still pay reconfiguration transitions.
  // Raise the quantum so each move shifts at least one whole buffer
  // entry on the proportional split.
  const double buffer_frac =
      share == 0.0 ? 1.0 : 8.0 * static_cast<double>(even.buffer_bytes) / share;
  const double entry_bits = 8.0 * static_cast<double>(total_options.entry_bytes);
  quantum_bits_ = std::max<uint64_t>(
      quantum_bits_,
      static_cast<uint64_t>(entry_bits / std::max(0.05, buffer_frac)) + 1);
  // Degenerate-budget guard: when the even share's buffer allocation is
  // already below the model's smallest sensible buffer, the closed form
  // has nothing trustworthy to say about moving memory — budgets hold at
  // the even split rather than trade real transition I/O for modeled
  // noise.
  model::SystemParams share_params = setup_.ToModelParams();
  share_params.total_memory_bits = share;
  active_ = 8.0 * static_cast<double>(even.buffer_bytes) >=
            model::MinBufferBits(share_params);
}

uint64_t MemoryArbiter::TrackShard(size_t s) {
  Group& g = groups_[s / group_size_];
  CAMAL_CHECK(g.implicit_members > 0);
  uint64_t take = g.pool_bits / g.implicit_members;
  g.pool_bits -= take;
  g.implicit_members -= 1;
  if (g.implicit_members == 0) {
    // The last member takes the division remainder with it: pools drain
    // to exactly zero and not one bit strands outside the ledger.
    take += g.pool_bits;
    g.pool_bits = 0;
  }
  explicit_.emplace(s, take);
  return take;
}

void MemoryArbiter::UntrackShard(size_t s) {
  auto it = explicit_.find(s);
  CAMAL_CHECK(it != explicit_.end());
  Group& g = groups_[s / group_size_];
  g.pool_bits += it->second;
  g.implicit_members += 1;
  explicit_.erase(it);
}

uint64_t MemoryArbiter::ImplicitBudget(size_t s) const {
  const Group& g = groups_[s / group_size_];
  CAMAL_CHECK(g.implicit_members > 0);
  return g.pool_bits / g.implicit_members;
}

size_t MemoryArbiter::ImplicitDonorCandidate() const {
  for (size_t g = 0; g < groups_.size(); ++g) {
    const Group& grp = groups_[g];
    if (grp.implicit_members == 0) continue;
    if (grp.pool_bits / grp.implicit_members < floor_bits_ + quantum_bits_) {
      continue;
    }
    const size_t begin = g * group_size_;
    const size_t end = std::min(begin + group_size_, num_shards_);
    for (size_t s = begin; s < end; ++s) {
      if (explicit_.find(s) == explicit_.end()) return s;
    }
  }
  return std::numeric_limits<size_t>::max();
}

uint64_t MemoryArbiter::BudgetBits(size_t shard) const {
  CAMAL_CHECK(shard < num_shards_);
  const auto it = explicit_.find(shard);
  return it != explicit_.end() ? it->second : ImplicitBudget(shard);
}

std::vector<uint64_t> MemoryArbiter::budget_bits() const {
  std::vector<uint64_t> out(num_shards_);
  for (size_t s = 0; s < num_shards_; ++s) out[s] = BudgetBits(s);
  return out;
}

void MemoryArbiter::Record(size_t shard, workload::OpType type) {
  CAMAL_CHECK(shard < num_shards_);
  auto& c = counts_[shard];
  switch (type) {
    case workload::OpType::kZeroResultLookup:
      ++c[0];
      break;
    case workload::OpType::kNonZeroResultLookup:
      ++c[1];
      break;
    case workload::OpType::kRangeLookup:
      ++c[2];
      break;
    case workload::OpType::kWrite:
    case workload::OpType::kDelete:
      ++c[3];
      break;
  }
}

void MemoryArbiter::OnBatch(engine::StorageEngine* engine,
                            const workload::Operation* ops, size_t count) {
  // A scatter-gather scan probes every *data-holding* shard — the
  // resident set, which on an eager engine is every shard (the historical
  // accounting, bit-identical) and on a lazy one exactly the shards the
  // scan actually visited. Resolved once per batch, not per scan.
  std::vector<size_t> resident;
  bool resident_ready = false;
  for (size_t i = 0; i < count; ++i) {
    if (ops[i].type == workload::OpType::kRangeLookup) {
      if (!resident_ready) {
        engine->AppendResidentShards(&resident);
        resident_ready = true;
      }
      for (size_t s : resident) Record(s, ops[i].type);
    } else {
      Record(engine->ShardIndex(ops[i].key), ops[i].type);
    }
  }
  window_ops_ += count;
  if (RoundDue()) Rebalance(engine);
}

void MemoryArbiter::OnBatchEvent(engine::StorageEngine* engine,
                                 const workload::BatchEvent& event) {
  if (event.ops != nullptr) {
    // Executor-driven: the generator's typed operations are available, so
    // take the historical path (bit-identical accounting).
    OnBatch(engine, event.ops, event.count);
    return;
  }
  // Gateway-driven: only engine ops exist. Lookups are classified by
  // their outcome — a found key is the model's non-zero-result lookup, a
  // miss its zero-result one — which is exactly what the generator's
  // labels encode on a steady-state key space.
  CAMAL_CHECK(event.engine_ops != nullptr && event.results != nullptr);
  std::vector<size_t> resident;
  bool resident_ready = false;
  for (size_t i = 0; i < event.count; ++i) {
    const engine::Op& op = event.engine_ops[i];
    switch (op.kind) {
      case engine::OpKind::kGet:
        Record(engine->ShardIndex(op.key),
               event.results[i].found
                   ? workload::OpType::kNonZeroResultLookup
                   : workload::OpType::kZeroResultLookup);
        break;
      case engine::OpKind::kScan:
        // A scan probes the resident set; each probed shard pays for it.
        if (!resident_ready) {
          engine->AppendResidentShards(&resident);
          resident_ready = true;
        }
        for (size_t s : resident) Record(s, workload::OpType::kRangeLookup);
        break;
      case engine::OpKind::kPut:
        Record(engine->ShardIndex(op.key), workload::OpType::kWrite);
        break;
      case engine::OpKind::kDelete:
        Record(engine->ShardIndex(op.key), workload::OpType::kDelete);
        break;
    }
  }
  window_ops_ += event.count;
  if (RoundDue()) Rebalance(engine);
}

model::SystemParams MemoryArbiter::ShardParams(
    const engine::StorageEngine& engine, size_t s,
    uint64_t budget_bits) const {
  model::SystemParams p = setup_.ToModelParams();
  p.num_entries =
      static_cast<double>(std::max<uint64_t>(1, engine.ShardEntries(s)));
  p.total_memory_bits = static_cast<double>(budget_bits);
  // A scatter-gather scan drains only ~1/N of the merged selectivity from
  // each shard; pricing the full selectivity on every shard would make
  // scan-probed cold shards look far more memory-hungry than they are.
  p.selectivity =
      std::max(1.0, p.selectivity / static_cast<double>(num_shards_));
  return p;
}

model::WorkloadSpec MemoryArbiter::WindowSpec(size_t s) const {
  const auto it = counts_.find(s);
  if (it == counts_.end()) return model::WorkloadSpec{0.25, 0.25, 0.25, 0.25};
  const auto& c = it->second;
  const uint64_t total = c[0] + c[1] + c[2] + c[3];
  if (total == 0) return model::WorkloadSpec{0.25, 0.25, 0.25, 0.25};
  const double n = static_cast<double>(total);
  model::WorkloadSpec spec;
  spec.v = static_cast<double>(c[0]) / n;
  spec.r = static_cast<double>(c[1]) / n;
  spec.q = static_cast<double>(c[2]) / n;
  spec.w = static_cast<double>(c[3]) / n;
  return spec;
}

size_t MemoryArbiter::Rebalance(engine::StorageEngine* engine) {
  ++rounds_;
  size_t reconfigured = 0;
  std::set<size_t> changed;
  if (active_ && num_shards_ > 1) {
    // Lifecycle handoffs first, both exact to the bit. Demote: an
    // explicit shard that hibernated and stayed silent this window
    // deposits its whole budget back into its group pool — its memory
    // amortizes over the group until it wakes. Promote: every shard that
    // saw window traffic withdraws its amortized slice from the pool and
    // becomes a rebalance participant; if the slice differs from what the
    // engine currently holds (the pool drifted while the shard was
    // implicit), the shard is reconfigured to the ledger value below.
    std::vector<size_t> demote;
    for (const auto& [s, bits] : explicit_) {
      if (counts_.find(s) != counts_.end()) continue;
      if (engine->ShardLifecycle(s) == engine::ShardState::kHibernated) {
        demote.push_back(s);
      }
    }
    for (size_t s : demote) UntrackShard(s);
    for (const auto& [s, c] : counts_) {
      if (explicit_.find(s) != explicit_.end()) continue;
      const uint64_t take = TrackShard(s);
      const engine::ShardBudget held =
          engine::ShardBudget::FromOptions(engine->ShardOptionsSnapshot(s));
      if (take != held.TotalBits()) changed.insert(s);
    }

    // Rebalance participants: the explicit ledger, ascending — on a fully
    // explicit system the exact shard order (and therefore every
    // tie-break) of the flat dense arbiter.
    std::vector<size_t> part;
    part.reserve(explicit_.size());
    for (const auto& [s, bits] : explicit_) part.push_back(s);

    // Load share of each shard: its window operation volume, with scans
    // counted on every shard they probe (the per-probe work is priced at
    // the per-shard selectivity slice by ShardParams). Op volume — not
    // the measured cost clock — ranks shards deliberately: measured cost
    // is dominated by whichever shard happened to run a big compaction,
    // and a freshly reconfigured shard pays transition I/O that would
    // read as load, feeding budget moves back into themselves. The
    // measured clocks (`ShardCostSnapshot`) stay the *validation* signal:
    // they are what benches report per shard next to the budgets.
    const auto window_load = [this](size_t s) {
      const auto it = counts_.find(s);
      if (it == counts_.end()) return 0.0;
      const auto& c = it->second;
      return static_cast<double>(c[0] + c[1] + c[2] + c[3]);
    };
    double load_total = 0.0;
    for (const auto& [s, c] : counts_) {
      load_total += static_cast<double>(c[0] + c[1] + c[2] + c[3]);
    }

    // Load-weighted marginal value of one quantum per participant,
    // refreshed only for shards whose budget a move changed.
    const double delta = static_cast<double>(quantum_bits_);
    std::vector<double> rate(part.size(), 0.0);
    std::vector<model::MemoryMarginal> marginal(part.size());
    const auto refresh = [&](size_t i) {
      const size_t s = part[i];
      const double load = window_load(s);
      rate[i] = load_total <= 0.0 ? 0.0 : load / load_total;
      if (load == 0.0) {
        // A silent tenant neither gains nor loses by the model; only its
        // floor protects it from being fully drained.
        marginal[i] = model::MemoryMarginal{};
        return;
      }
      const lsm::Options live = engine->ShardOptionsSnapshot(s);
      const engine::ShardBudget held = engine::ShardBudget::FromOptions(live);
      const double mc_frac =
          held.TotalBits() == 0
              ? 0.0
              : static_cast<double>(8 * held.block_cache_bytes) /
                    static_cast<double>(held.TotalBits());
      model::ModelConfig shape = shape_;
      shape.policy = live.policy;
      shape.size_ratio = live.size_ratio;
      shape.runs_per_level = live.runs_per_level;
      marginal[i] =
          model::PriceMemoryDelta(WindowSpec(s), ShardParams(*engine, s, explicit_[s]),
                                  shape, mc_frac, delta,
                                  cost_corrector_.get());
    };
    for (size_t i = 0; i < part.size(); ++i) refresh(i);

    constexpr size_t kNone = std::numeric_limits<size_t>::max();
    for (int move = 0; move < options_.max_moves_per_round; ++move) {
      size_t receiver = kNone, donor = kNone;
      double best_gain = 0.0;
      double best_loss = std::numeric_limits<double>::infinity();
      for (size_t i = 0; i < part.size(); ++i) {
        const double gain = rate[i] * marginal[i].gain;
        if (gain > best_gain) {
          best_gain = gain;
          receiver = i;
        }
      }
      if (receiver == kNone) break;
      for (size_t i = 0; i < part.size(); ++i) {
        if (i == receiver) continue;
        if (explicit_[part[i]] < floor_bits_ + quantum_bits_) continue;
        const double loss = rate[i] * marginal[i].loss;
        if (loss < best_loss) {
          best_loss = loss;
          donor = i;
        }
      }
      // The pool fallback: when no explicit shard donates at zero loss, a
      // silent implicit shard can — the flat arbiter drained exactly such
      // shards (silent, zero modeled loss). Promote the lowest fundable
      // one; it enters the ledger at its amortized slice and donates from
      // there. Explicit zero-loss donors still win (they come first).
      if (best_loss > 0.0) {
        const size_t s = ImplicitDonorCandidate();
        if (s != kNone) {
          TrackShard(s);
          part.push_back(s);
          rate.push_back(0.0);
          marginal.push_back(model::MemoryMarginal{});
          donor = part.size() - 1;
          best_loss = 0.0;
        }
      }
      if (donor == kNone) break;
      if (best_gain <= options_.hysteresis * best_loss) break;
      explicit_[part[receiver]] += quantum_bits_;
      explicit_[part[donor]] -= quantum_bits_;
      changed.insert(part[receiver]);
      changed.insert(part[donor]);
      ++moves_;
      refresh(receiver);
      refresh(donor);
    }

    for (size_t s : changed) {
      ApplyBudget(engine, s);
      ++reconfigured;
    }
  }

  reconfigurations_ += reconfigured;
  counts_.clear();
  window_ops_ = 0;
  return reconfigured;
}

void MemoryArbiter::ApplyBudget(engine::StorageEngine* engine, size_t s) {
  lsm::Options opts = engine->ShardOptionsSnapshot(s);
  const engine::ShardBudget held = engine::ShardBudget::FromOptions(opts);
  const double budget = static_cast<double>(BudgetBits(s));

  // Buffer, Bloom, and cache scale proportionally into the new budget:
  // the shard keeps the *shape* of its internal split (whether it came
  // from the system config or a per-shard retune) and only its total
  // changes. The model already decided the cross-shard move; re-deciding
  // the intra-shard split here would bet the measured substrate agrees
  // with the closed form twice per move. Per-shard retunes
  // (DynamicTuner) remain the place where splits are re-optimized — at
  // the arbitrated budget.
  const double scale =
      held.TotalBits() == 0 ? 1.0
                            : budget / static_cast<double>(held.TotalBits());

  // Floor divisions round bits down into bytes, so an applied budget can
  // only undershoot the arbitrated one (the buffer clamp mirrors
  // TuningConfig::ToOptions and is covered by the per-shard floor).
  opts.buffer_bytes = std::max<uint64_t>(
      opts.entry_bytes * 4,
      static_cast<uint64_t>(static_cast<double>(held.buffer_bytes) * scale));
  opts.bloom_bits =
      static_cast<uint64_t>(static_cast<double>(held.bloom_bits) * scale);
  opts.block_cache_bytes = static_cast<uint64_t>(
      static_cast<double>(held.block_cache_bytes) * scale);
  engine->ReconfigureShard(s, opts);
}

}  // namespace camal::tune
