#include "camal/memory_arbiter.h"

#include <algorithm>
#include <limits>

#include "engine/sharded_engine.h"
#include "model/arbitration.h"
#include "model/optimum.h"
#include "util/status.h"

namespace camal::tune {

MemoryArbiter::MemoryArbiter(const SystemSetup& setup,
                             const lsm::Options& total_options,
                             size_t num_shards,
                             const ArbiterOptions& options)
    : setup_(setup), options_(options) {
  CAMAL_CHECK(num_shards >= 1);
  shape_.policy = total_options.policy;
  shape_.size_ratio = total_options.size_ratio;
  shape_.runs_per_level = total_options.runs_per_level;

  // Start from exactly what the engine handed each shard (floor division
  // drops remainders system-wide, so the conserved total is the sum of
  // the shares, not the nominal system budget).
  const engine::ShardBudget even = engine::ShardBudget::FromOptions(
      engine::ShardedEngine::ShardOptions(total_options, num_shards));
  budgets_.assign(num_shards, even.TotalBits());
  total_bits_ = even.TotalBits() * num_shards;
  const double share = static_cast<double>(even.TotalBits());
  floor_bits_ = static_cast<uint64_t>(options_.floor_frac * share);
  quantum_bits_ =
      std::max<uint64_t>(1, static_cast<uint64_t>(options_.quantum_frac * share));
  // A quantum whose buffer slice is smaller than one entry is below the
  // engine's discretization: budgets would drift, behavior would barely
  // change, and every move would still pay reconfiguration transitions.
  // Raise the quantum so each move shifts at least one whole buffer
  // entry on the proportional split.
  const double buffer_frac =
      share == 0.0 ? 1.0 : 8.0 * static_cast<double>(even.buffer_bytes) / share;
  const double entry_bits = 8.0 * static_cast<double>(total_options.entry_bytes);
  quantum_bits_ = std::max<uint64_t>(
      quantum_bits_,
      static_cast<uint64_t>(entry_bits / std::max(0.05, buffer_frac)) + 1);
  // Degenerate-budget guard: when the even share's buffer allocation is
  // already below the model's smallest sensible buffer, the closed form
  // has nothing trustworthy to say about moving memory — budgets hold at
  // the even split rather than trade real transition I/O for modeled
  // noise.
  model::SystemParams share_params = setup_.ToModelParams();
  share_params.total_memory_bits = share;
  active_ = 8.0 * static_cast<double>(even.buffer_bytes) >=
            model::MinBufferBits(share_params);
  counts_.assign(num_shards, {0, 0, 0, 0});
}

void MemoryArbiter::Record(size_t shard, workload::OpType type) {
  CAMAL_CHECK(shard < counts_.size());
  switch (type) {
    case workload::OpType::kZeroResultLookup:
      ++counts_[shard][0];
      break;
    case workload::OpType::kNonZeroResultLookup:
      ++counts_[shard][1];
      break;
    case workload::OpType::kRangeLookup:
      ++counts_[shard][2];
      break;
    case workload::OpType::kWrite:
    case workload::OpType::kDelete:
      ++counts_[shard][3];
      break;
  }
}

void MemoryArbiter::OnBatch(engine::StorageEngine* engine,
                            const workload::Operation* ops, size_t count) {
  const size_t num_shards = counts_.size();
  for (size_t i = 0; i < count; ++i) {
    if (ops[i].type == workload::OpType::kRangeLookup) {
      // A scatter-gather scan probes every shard; each pays for it.
      for (size_t s = 0; s < num_shards; ++s) Record(s, ops[i].type);
    } else {
      Record(engine->ShardIndex(ops[i].key), ops[i].type);
    }
  }
  window_ops_ += count;
  if (RoundDue()) Rebalance(engine);
}

void MemoryArbiter::OnBatchEvent(engine::StorageEngine* engine,
                                 const workload::BatchEvent& event) {
  if (event.ops != nullptr) {
    // Executor-driven: the generator's typed operations are available, so
    // take the historical path (bit-identical accounting).
    OnBatch(engine, event.ops, event.count);
    return;
  }
  // Gateway-driven: only engine ops exist. Lookups are classified by
  // their outcome — a found key is the model's non-zero-result lookup, a
  // miss its zero-result one — which is exactly what the generator's
  // labels encode on a steady-state key space.
  CAMAL_CHECK(event.engine_ops != nullptr && event.results != nullptr);
  const size_t num_shards = counts_.size();
  for (size_t i = 0; i < event.count; ++i) {
    const engine::Op& op = event.engine_ops[i];
    switch (op.kind) {
      case engine::OpKind::kGet:
        Record(engine->ShardIndex(op.key),
               event.results[i].found
                   ? workload::OpType::kNonZeroResultLookup
                   : workload::OpType::kZeroResultLookup);
        break;
      case engine::OpKind::kScan:
        // A scatter-gather scan probes every shard; each pays for it.
        for (size_t s = 0; s < num_shards; ++s) {
          Record(s, workload::OpType::kRangeLookup);
        }
        break;
      case engine::OpKind::kPut:
        Record(engine->ShardIndex(op.key), workload::OpType::kWrite);
        break;
      case engine::OpKind::kDelete:
        Record(engine->ShardIndex(op.key), workload::OpType::kDelete);
        break;
    }
  }
  window_ops_ += event.count;
  if (RoundDue()) Rebalance(engine);
}

model::SystemParams MemoryArbiter::ShardParams(
    const engine::StorageEngine& engine, size_t s) const {
  model::SystemParams p = setup_.ToModelParams();
  p.num_entries =
      static_cast<double>(std::max<uint64_t>(1, engine.ShardEntries(s)));
  p.total_memory_bits = static_cast<double>(budgets_[s]);
  // A scatter-gather scan drains only ~1/N of the merged selectivity from
  // each shard; pricing the full selectivity on every shard would make
  // scan-probed cold shards look far more memory-hungry than they are.
  p.selectivity = std::max(
      1.0, p.selectivity / static_cast<double>(counts_.size()));
  return p;
}

model::WorkloadSpec MemoryArbiter::WindowSpec(size_t s) const {
  const auto& c = counts_[s];
  const uint64_t total = c[0] + c[1] + c[2] + c[3];
  if (total == 0) return model::WorkloadSpec{0.25, 0.25, 0.25, 0.25};
  const double n = static_cast<double>(total);
  model::WorkloadSpec spec;
  spec.v = static_cast<double>(c[0]) / n;
  spec.r = static_cast<double>(c[1]) / n;
  spec.q = static_cast<double>(c[2]) / n;
  spec.w = static_cast<double>(c[3]) / n;
  return spec;
}

size_t MemoryArbiter::Rebalance(engine::StorageEngine* engine) {
  ++rounds_;
  const size_t num_shards = counts_.size();
  size_t reconfigured = 0;
  if (active_ && num_shards > 1) {
    // Load share of each shard: its window operation volume, with scans
    // counted on every shard they probe (the per-probe work is priced at
    // the per-shard selectivity slice by ShardParams). Op volume — not
    // the measured cost clock — ranks shards deliberately: measured cost
    // is dominated by whichever shard happened to run a big compaction,
    // and a freshly reconfigured shard pays transition I/O that would
    // read as load, feeding budget moves back into themselves. The
    // measured clocks (`ShardCostSnapshot`) stay the *validation* signal:
    // they are what benches report per shard next to the budgets.
    std::vector<double> load(num_shards, 0.0);
    double load_total = 0.0;
    for (size_t s = 0; s < num_shards; ++s) {
      const auto& c = counts_[s];
      load[s] = static_cast<double>(c[0] + c[1] + c[2] + c[3]);
      load_total += load[s];
    }

    // Load-weighted marginal value of one quantum for each shard,
    // refreshed only for shards whose budget a move changed.
    const double delta = static_cast<double>(quantum_bits_);
    std::vector<double> rate(num_shards, 0.0);
    std::vector<model::MemoryMarginal> marginal(num_shards);
    const auto refresh = [&](size_t s) {
      const auto& c = counts_[s];
      const uint64_t ops = c[0] + c[1] + c[2] + c[3];
      rate[s] = load_total <= 0.0 ? 0.0 : load[s] / load_total;
      if (ops == 0) {
        // A silent tenant neither gains nor loses by the model; only its
        // floor protects it from being fully drained.
        marginal[s] = model::MemoryMarginal{};
        return;
      }
      const lsm::Options live = engine->ShardOptionsSnapshot(s);
      const engine::ShardBudget held = engine::ShardBudget::FromOptions(live);
      const double mc_frac =
          held.TotalBits() == 0
              ? 0.0
              : static_cast<double>(8 * held.block_cache_bytes) /
                    static_cast<double>(held.TotalBits());
      model::ModelConfig shape = shape_;
      shape.policy = live.policy;
      shape.size_ratio = live.size_ratio;
      shape.runs_per_level = live.runs_per_level;
      marginal[s] = model::PriceMemoryDelta(WindowSpec(s), ShardParams(*engine, s),
                                            shape, mc_frac, delta);
    };
    for (size_t s = 0; s < num_shards; ++s) refresh(s);

    std::vector<bool> changed(num_shards, false);
    for (int move = 0; move < options_.max_moves_per_round; ++move) {
      size_t receiver = num_shards, donor = num_shards;
      double best_gain = 0.0;
      double best_loss = std::numeric_limits<double>::infinity();
      for (size_t s = 0; s < num_shards; ++s) {
        const double gain = rate[s] * marginal[s].gain;
        if (gain > best_gain) {
          best_gain = gain;
          receiver = s;
        }
      }
      if (receiver == num_shards) break;
      for (size_t s = 0; s < num_shards; ++s) {
        if (s == receiver) continue;
        if (budgets_[s] < floor_bits_ + quantum_bits_) continue;
        const double loss = rate[s] * marginal[s].loss;
        if (loss < best_loss) {
          best_loss = loss;
          donor = s;
        }
      }
      if (donor == num_shards) break;
      if (best_gain <= options_.hysteresis * best_loss) break;
      budgets_[receiver] += quantum_bits_;
      budgets_[donor] -= quantum_bits_;
      changed[receiver] = changed[donor] = true;
      ++moves_;
      refresh(receiver);
      refresh(donor);
    }

    for (size_t s = 0; s < num_shards; ++s) {
      if (!changed[s]) continue;
      ApplyBudget(engine, s);
      ++reconfigured;
    }
  }

  reconfigurations_ += reconfigured;
  counts_.assign(num_shards, {0, 0, 0, 0});
  window_ops_ = 0;
  return reconfigured;
}

void MemoryArbiter::ApplyBudget(engine::StorageEngine* engine, size_t s) {
  lsm::Options opts = engine->ShardOptionsSnapshot(s);
  const engine::ShardBudget held = engine::ShardBudget::FromOptions(opts);
  const double budget = static_cast<double>(budgets_[s]);

  // Buffer, Bloom, and cache scale proportionally into the new budget:
  // the shard keeps the *shape* of its internal split (whether it came
  // from the system config or a per-shard retune) and only its total
  // changes. The model already decided the cross-shard move; re-deciding
  // the intra-shard split here would bet the measured substrate agrees
  // with the closed form twice per move. Per-shard retunes
  // (DynamicTuner) remain the place where splits are re-optimized — at
  // the arbitrated budget.
  const double scale =
      held.TotalBits() == 0 ? 1.0
                            : budget / static_cast<double>(held.TotalBits());

  // Floor divisions round bits down into bytes, so an applied budget can
  // only undershoot the arbitrated one (the buffer clamp mirrors
  // TuningConfig::ToOptions and is covered by the per-shard floor).
  opts.buffer_bytes = std::max<uint64_t>(
      opts.entry_bytes * 4,
      static_cast<uint64_t>(static_cast<double>(held.buffer_bytes) * scale));
  opts.bloom_bits =
      static_cast<uint64_t>(static_cast<double>(held.bloom_bits) * scale);
  opts.block_cache_bytes = static_cast<uint64_t>(
      static_cast<double>(held.block_cache_bytes) * scale);
  engine->ReconfigureShard(s, opts);
}

}  // namespace camal::tune
