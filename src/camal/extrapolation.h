#ifndef CAMAL_CAMAL_EXTRAPOLATION_H_
#define CAMAL_CAMAL_EXTRAPOLATION_H_

#include "camal/sample.h"

namespace camal::tune {

/// Lemma 5.1: when the data grows from N' to kN' and the memory budget
/// from M' to kM', the tuned configuration transfers as T'' = T',
/// Mf'' = kMf', Mb'' = kMb' (and Mc'' = kMc'). This rescales a config
/// accordingly — no retraining required.
TuningConfig ExtrapolateConfig(const TuningConfig& config, double k);

/// Rescales a model-view of the system by k (N and M grow together).
model::SystemParams ScaleParams(const model::SystemParams& params, double k);

}  // namespace camal::tune

#endif  // CAMAL_CAMAL_EXTRAPOLATION_H_
