#ifndef CAMAL_CAMAL_UNCERTAINTY_H_
#define CAMAL_CAMAL_UNCERTAINTY_H_

#include "camal/tuner.h"

namespace camal::tune {

/// Workload-uncertainty-aware recommendation (Section 8.1 "Implementation
/// optimizations", third application): samples `num_workloads` mixes within
/// a KL ball of radius `rho` around the expected workload and returns the
/// configuration minimizing the *average* predicted objective across them —
/// CAMAL's statistically-based answer to Endure's robust tuning.
TuningConfig RecommendUnderUncertainty(const ModelBackedTuner& tuner,
                                       const model::WorkloadSpec& expected,
                                       double rho, int num_workloads,
                                       util::Random* rng);

}  // namespace camal::tune

#endif  // CAMAL_CAMAL_UNCERTAINTY_H_
