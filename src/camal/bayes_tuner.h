#ifndef CAMAL_CAMAL_BAYES_TUNER_H_
#define CAMAL_CAMAL_BAYES_TUNER_H_

#include <vector>

#include "camal/tuner.h"
#include "ml/gp.h"

namespace camal::tune {

/// Bayesian-optimization baseline: per training workload, an independent
/// Gaussian process with expected-improvement acquisition explores the
/// joint configuration space from a random initialization (the standard
/// BayesianOptimization-package setup the paper compares against). A final
/// model of the configured family is fit on all gathered samples so the
/// tuner can also recommend for unseen workloads.
class BayesOptTuner : public ModelBackedTuner {
 public:
  BayesOptTuner(const SystemSetup& full_setup, const TunerOptions& options);

  void Train(const std::vector<model::WorkloadSpec>& workloads) override;

 private:
  std::vector<double> GpFeatures(const TuningConfig& c,
                                 const model::SystemParams& sys) const;
};

}  // namespace camal::tune

#endif  // CAMAL_CAMAL_BAYES_TUNER_H_
