#include "camal/sample.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "ml/gbdt.h"
#include "ml/mlp.h"
#include "ml/poly.h"
#include "util/random.h"
#include "util/status.h"

namespace camal::tune {

namespace {
constexpr double kLn2Sq = 0.4804530139182014;

// Raw feature vector layout (see RawFeatures).
enum RawIdx : size_t {
  kIdxV = 0,
  kIdxR,
  kIdxQ,
  kIdxW,
  kIdxT,
  kIdxBpk,
  kIdxBufFrac,
  kIdxCacheFrac,
  kIdxPolicyTier,
  kIdxRunsK,
  kIdxLogFile,
  kIdxSkew,
  kIdxLogN,
  kIdxMemPerEntry,
  kIdxSelOverB,
  kIdxInvB,
  kIdxLevels,
  kIdxFpr,
  kNumRawFeatures,
};
}  // namespace

model::SystemParams SystemSetup::ToModelParams() const {
  model::SystemParams p;
  p.num_entries = static_cast<double>(num_entries);
  p.entry_bits = static_cast<double>(entry_bytes) * 8.0;
  p.block_entries = static_cast<double>(
      std::max<uint64_t>(1, device.block_bytes / entry_bytes));
  p.selectivity = static_cast<double>(scan_len);
  p.total_memory_bits = static_cast<double>(total_memory_bits);
  return p;
}

sim::DeviceConfig SystemSetup::MakeDeviceConfig(uint64_t salt) const {
  sim::DeviceConfig cfg = device;
  cfg.jitter_seed = util::HashCombine(seed, salt);
  return cfg;
}

util::Status SystemSetup::Validate() const {
  using util::Status;
  if (num_entries == 0) {
    return Status::InvalidArgument("num_entries must be > 0");
  }
  if (entry_bytes == 0) {
    return Status::InvalidArgument("entry_bytes must be > 0");
  }
  if (total_memory_bits == 0) {
    return Status::InvalidArgument("total_memory_bits must be > 0");
  }
  if (train_ops == 0 || eval_ops == 0) {
    return Status::InvalidArgument("train_ops and eval_ops must be > 0");
  }
  if (num_shards == 0) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  if (num_shards > kMaxShards) {
    return Status::InvalidArgument(
        "num_shards is past the supported ceiling (16M): shard counts that "
        "large exceed the million-tenant envelope the lazy engines are "
        "sized for and almost certainly indicate a units mistake");
  }
  if (engine_threads < 0) {
    return Status::InvalidArgument(
        "engine_threads must be >= 0 (0 = hardware concurrency)");
  }
  if (arbitration == ArbitrationMode::kPeriodic && num_shards < 2) {
    return Status::InvalidArgument(
        "arbitration = kPeriodic needs num_shards >= 2: there is no "
        "second tenant to move memory between");
  }
  if (arbitration == ArbitrationMode::kPeriodic && arbiter_period_ops == 0) {
    return Status::InvalidArgument(
        "arbiter_period_ops must be > 0 with periodic arbitration");
  }
  if (shard_skew < 0.0) {
    return Status::InvalidArgument("shard_skew must be >= 0");
  }
  if (shard_skew > 0.0 && num_shards < 2) {
    return Status::InvalidArgument(
        "shard_skew > 0 needs num_shards >= 2: a single shard has no "
        "hot/cold tenants to bias traffic between");
  }
  if (backend == EngineBackend::kSim && !file_workdir.empty()) {
    return Status::InvalidArgument(
        "file_workdir is set but backend is kSim: the simulated backend "
        "never touches files (did you mean backend = kFile?)");
  }
  if (backend == EngineBackend::kSim && io_mode != FileIoMode::kAuto) {
    return Status::InvalidArgument(
        "io_mode is set but backend is kSim: the simulated backend issues "
        "no real reads to submit (did you mean backend = kFile?)");
  }
  if (backend == EngineBackend::kSim && io_queue_depth != 1) {
    return Status::InvalidArgument(
        "io_queue_depth != 1 but backend is kSim: the simulated backend "
        "has no submission ring (did you mean backend = kFile?)");
  }
  if (io_queue_depth < 1 || io_queue_depth > 1024) {
    return Status::InvalidArgument("io_queue_depth must be in [1, 1024]");
  }
  if (backend == EngineBackend::kSim && file_durable) {
    return Status::InvalidArgument(
        "file_durable is set but backend is kSim: the simulated backend "
        "has no files to make durable (did you mean backend = kFile?)");
  }
  if (backend == EngineBackend::kSim && file_wal_sync != FileWalSync::kNone) {
    return Status::InvalidArgument(
        "file_wal_sync is set but backend is kSim: the simulated backend "
        "writes no WAL to sync (did you mean backend = kFile?)");
  }
  if (!file_durable && file_wal_sync != FileWalSync::kNone) {
    return Status::InvalidArgument(
        "file_wal_sync is set but file_durable is off: there is no WAL "
        "to apply the policy to (set file_durable = true)");
  }
  if (measure_recovery && !file_durable) {
    return Status::InvalidArgument(
        "measure_recovery needs file_durable: without a manifest + WAL "
        "there is no recovery path to time (set file_durable = true)");
  }
  if (serve_mode == ServeMode::kGateway && gateway_interarrival_ns <= 0.0) {
    return Status::InvalidArgument(
        "serve_mode = kGateway needs gateway_interarrival_ns > 0: "
        "open-loop serving is defined by its arrival rate");
  }
  if (serve_mode == ServeMode::kGateway && gateway_admission &&
      gateway_queue_depth == 0) {
    return Status::InvalidArgument(
        "gateway_queue_depth must be >= 1 when admission control is on");
  }
  if (gateway_rate_limit_ops_per_sec < 0.0) {
    return Status::InvalidArgument(
        "gateway_rate_limit_ops_per_sec must be >= 0");
  }
  if (serve_mode == ServeMode::kClosedLoop &&
      gateway_rate_limit_ops_per_sec > 0.0) {
    return Status::InvalidArgument(
        "gateway_rate_limit_ops_per_sec is set but serve_mode is "
        "kClosedLoop: rate limits only apply to gateway serving");
  }
  return Status::Ok();
}

void ValidateOrDie(const SystemSetup& setup) {
  const util::Status status = setup.Validate();
  if (!status.ok()) {
    std::fprintf(stderr, "[camal] invalid SystemSetup: %s\n",
                 status.message().c_str());
    std::abort();
  }
}

SystemSetup ScaledDown(const SystemSetup& setup, double k) {
  CAMAL_CHECK(k > 0.0);
  SystemSetup out = setup;
  out.num_entries = std::max<uint64_t>(
      512, static_cast<uint64_t>(std::llround(
               static_cast<double>(setup.num_entries) / k)));
  out.total_memory_bits = std::max<uint64_t>(
      4096, static_cast<uint64_t>(std::llround(
                static_cast<double>(setup.total_memory_bits) / k)));
  return out;
}

lsm::Options TuningConfig::ToOptions(const SystemSetup& setup) const {
  lsm::Options opts;
  opts.policy = policy;
  opts.size_ratio = std::max(2.0, size_ratio);
  opts.entry_bytes = setup.entry_bytes;
  opts.buffer_bytes = std::max<uint64_t>(
      setup.entry_bytes * 4,
      static_cast<uint64_t>(std::llround(mb_bits / 8.0)));
  opts.bloom_bits =
      static_cast<uint64_t>(std::llround(std::max(0.0, mf_bits)));
  opts.block_cache_bytes =
      static_cast<uint64_t>(std::llround(std::max(0.0, mc_bits) / 8.0));
  opts.runs_per_level = runs_per_level;
  opts.file_bytes = file_bytes;
  opts.io_queue_depth = io_queue_depth;
  return opts;
}

model::ModelConfig TuningConfig::ToModelConfig() const {
  model::ModelConfig c;
  c.policy = policy;
  c.size_ratio = size_ratio;
  c.mf_bits = mf_bits;
  c.mb_bits = mb_bits;
  c.runs_per_level = runs_per_level;
  c.io_queue_depth = std::max(1.0, static_cast<double>(io_queue_depth));
  return c;
}

std::string TuningConfig::ToString() const {
  char buf[176];
  std::snprintf(
      buf, sizeof(buf),
      "{%s T=%.0f mf=%.0fKb mb=%.0fKb mc=%.0fKb K=%d file=%lluKB qd=%d}",
      policy == lsm::CompactionPolicy::kLeveling ? "level" : "tier",
      size_ratio, mf_bits / 1024.0, mb_bits / 1024.0, mc_bits / 1024.0,
      runs_per_level, static_cast<unsigned long long>(file_bytes / 1024),
      io_queue_depth);
  return buf;
}

TuningConfig MonkeyDefaultConfig(const SystemSetup& setup) {
  TuningConfig c;
  c.policy = lsm::CompactionPolicy::kLeveling;
  c.size_ratio = 10.0;
  const double m = static_cast<double>(setup.total_memory_bits);
  // 10 bits per key, but never more than 80% of the budget.
  c.mf_bits = std::min(10.0 * static_cast<double>(setup.num_entries), 0.8 * m);
  c.mb_bits = m - c.mf_bits;
  c.mc_bits = 0.0;
  return c;
}

double ObjectiveValue(const Sample& sample, Objective objective) {
  switch (objective) {
    case Objective::kMeanLatency:
      return sample.mean_latency_ns;
    case Objective::kP90Latency:
      return sample.p90_latency_ns;
    case Objective::kIosPerOp:
      return sample.ios_per_op;
  }
  return sample.mean_latency_ns;
}

const char* ModelKindName(ModelKind kind) {
  switch (kind) {
    case ModelKind::kPoly:
      return "Poly";
    case ModelKind::kTrees:
      return "Trees";
    case ModelKind::kNn:
      return "NN";
  }
  return "?";
}

std::vector<double> RawFeatures(const model::WorkloadSpec& w_in,
                                const TuningConfig& x,
                                const model::SystemParams& sys) {
  const model::WorkloadSpec w = w_in.Normalized();
  std::vector<double> f(kNumRawFeatures, 0.0);
  const double n = sys.num_entries;
  const double m = sys.total_memory_bits;
  const double k_eff =
      x.runs_per_level > 0
          ? static_cast<double>(x.runs_per_level)
          : (x.policy == lsm::CompactionPolicy::kTiering ? x.size_ratio : 1.0);
  const double mb = std::max(x.mb_bits, sys.entry_bits);
  const double levels = std::max(
      1.0, std::log(n * sys.entry_bits / mb + 1.0) / std::log(x.size_ratio));

  f[kIdxV] = w.v;
  f[kIdxR] = w.r;
  f[kIdxQ] = w.q;
  f[kIdxW] = w.w;
  f[kIdxT] = x.size_ratio;
  f[kIdxBpk] = x.mf_bits / n;
  f[kIdxBufFrac] = x.mb_bits / m;
  f[kIdxCacheFrac] = x.mc_bits / m;
  f[kIdxPolicyTier] =
      x.policy == lsm::CompactionPolicy::kTiering ? 1.0 : 0.0;
  f[kIdxRunsK] = k_eff;
  f[kIdxLogFile] = std::log2(static_cast<double>(x.file_bytes) + 1.0);
  f[kIdxSkew] = w.skew;
  f[kIdxLogN] = std::log10(n);
  f[kIdxMemPerEntry] = m / n;
  f[kIdxSelOverB] = sys.selectivity / sys.block_entries;
  f[kIdxInvB] = 1.0 / sys.block_entries;
  f[kIdxLevels] = levels;
  f[kIdxFpr] = std::exp(-kLn2Sq * x.mf_bits / n);
  return f;
}

std::vector<double> CostBasisFromRaw(const std::vector<double>& raw) {
  CAMAL_CHECK(raw.size() == kNumRawFeatures);
  const double v = raw[kIdxV], r = raw[kIdxR], q = raw[kIdxQ], w = raw[kIdxW];
  const double t = raw[kIdxT];
  const double k = raw[kIdxRunsK];
  const double sel_over_b = raw[kIdxSelOverB];
  const double inv_b = raw[kIdxInvB];
  const double levels = raw[kIdxLevels];
  const double fpr = raw[kIdxFpr];
  const double cache = raw[kIdxCacheFrac];
  const double skew = raw[kIdxSkew];

  return {
      (v + r) * k * fpr,          // zero-result wasted block reads
      r,                          // the +1 successful block read
      q * k * levels,             // range seeks across runs
      q * k * sel_over_b,         // range data blocks
      w * levels * t * inv_b / k,  // amortized write I/O
      w * t * levels,             // compaction merge CPU
      (v + r) * levels * k,       // per-run probe CPU
      v,                          // per-op constants (CPU floor)
      q,
      w,
      cache * (r + q),            // cache absorbs read I/O
      cache * (r + q) * skew,     // ...more so under skew
      cache * (r + q) * fpr,      // interaction with filter quality
  };
}

std::unique_ptr<ml::Regressor> MakeModel(ModelKind kind, uint64_t seed) {
  switch (kind) {
    case ModelKind::kPoly:
      return std::make_unique<ml::PolyRegression>(1e-4, CostBasisFromRaw);
    case ModelKind::kTrees: {
      ml::GbdtParams params;
      params.seed = seed;
      return std::make_unique<ml::Gbdt>(params);
    }
    case ModelKind::kNn: {
      ml::MlpParams params;
      params.seed = seed;
      return std::make_unique<ml::Mlp>(params);
    }
  }
  return nullptr;
}

}  // namespace camal::tune
