#include "camal/dynamic_tuner.h"

#include <vector>

#include "camal/extrapolation.h"

namespace camal::tune {

DynamicTuner::DynamicTuner(RecommendFn recommend,
                           const SystemSetup& base_setup, const Params& params)
    : recommend_(std::move(recommend)),
      base_setup_(base_setup),
      params_(params),
      detector_(params.window_ops, params.tau) {}

workload::ExecutionResult DynamicTuner::RunPhase(
    lsm::LsmTree* tree, workload::KeySpace* keys,
    const model::WorkloadSpec& spec, size_t num_ops, uint64_t seed) {
  workload::ExecutionResult result;
  workload::GeneratorConfig gen_cfg;
  gen_cfg.scan_len = base_setup_.scan_len;
  gen_cfg.insert_new_keys = true;  // data grows across phases
  workload::OperationGenerator gen(spec, keys, gen_cfg, seed);
  sim::Device* device = tree->device();
  std::vector<lsm::Entry> scan_buf;

  for (size_t i = 0; i < num_ops; ++i) {
    const workload::Operation op = gen.Next();
    const sim::DeviceSnapshot before = device->Snapshot();
    switch (op.type) {
      case workload::OpType::kZeroResultLookup:
      case workload::OpType::kNonZeroResultLookup: {
        uint64_t value = 0;
        if (tree->Get(op.key, &value)) {
          ++result.lookups_found;
        } else {
          ++result.lookups_missed;
        }
        break;
      }
      case workload::OpType::kRangeLookup:
        scan_buf.clear();
        tree->Scan(op.key, op.scan_len, &scan_buf);
        break;
      case workload::OpType::kWrite:
        tree->Put(op.key, op.value);
        break;
      case workload::OpType::kDelete:
        tree->Delete(op.key);
        break;
    }
    const sim::DeviceSnapshot delta = device->Snapshot().Delta(before);
    result.latency_ns.Add(delta.elapsed_ns);
    result.total_ns += delta.elapsed_ns;
    result.total_ios += delta.TotalIos();

    if (detector_.Record(op.type)) {
      // A shift (or the initial window) was detected: re-tune for the
      // estimated mix at the *current* data scale.
      model::WorkloadSpec estimated = detector_.LastWindowSpec();
      estimated.skew = spec.skew;
      const double scale = static_cast<double>(tree->TotalEntries()) /
                           static_cast<double>(base_setup_.num_entries);
      const model::SystemParams target =
          ScaleParams(base_setup_.ToModelParams(), std::max(0.1, scale));
      last_applied_ = recommend_(estimated, target);
      tree->Reconfigure(last_applied_.ToOptions(base_setup_));
    }
  }
  result.num_ops = num_ops;
  return result;
}

}  // namespace camal::tune
