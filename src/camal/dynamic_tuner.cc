#include "camal/dynamic_tuner.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>
#include <vector>

#include "camal/extrapolation.h"
#include "camal/memory_arbiter.h"
#include "util/status.h"

namespace camal::tune {

namespace {

/// The shard's profiler totals summed across op kinds — the measured-op
/// clock race windows are cut on.
engine::OpCostWindow ShardWindowTotal(const engine::StorageEngine& engine,
                                      size_t s) {
  engine::OpCostWindow total;
  for (size_t k = 0; k < engine::kNumOpKinds; ++k) {
    total += engine.ShardOpCostWindow(s, static_cast<engine::OpKind>(k));
  }
  return total;
}

/// The shard's live options as a tuning-space point (the incumbent race
/// candidate).
TuningConfig IncumbentConfig(const lsm::Options& live) {
  TuningConfig c;
  c.policy = live.policy;
  c.size_ratio = live.size_ratio;
  c.mf_bits = static_cast<double>(live.bloom_bits);
  c.mb_bits = 8.0 * static_cast<double>(live.buffer_bytes);
  c.mc_bits = 8.0 * static_cast<double>(live.block_cache_bytes);
  c.runs_per_level = live.runs_per_level;
  c.io_queue_depth = live.io_queue_depth;
  return c;
}

/// Candidate identity for deduplication: racing two copies of one config
/// wastes windows without telling the race anything.
bool SameConfig(const TuningConfig& a, const TuningConfig& b) {
  return a.policy == b.policy && a.size_ratio == b.size_ratio &&
         a.mf_bits == b.mf_bits && a.mb_bits == b.mb_bits &&
         a.mc_bits == b.mc_bits && a.runs_per_level == b.runs_per_level;
}

/// Measured objective of one candidate: ios per measured op (unmeasured
/// candidates price as infinitely bad — they cannot win).
double MeasuredIosPerOp(uint64_t ops, uint64_t ios) {
  if (ops == 0) return std::numeric_limits<double>::infinity();
  return static_cast<double>(ios) / static_cast<double>(ops);
}

}  // namespace

DynamicTuner::DynamicTuner(RecommendFn recommend,
                           const SystemSetup& base_setup, const Params& params)
    : recommend_(std::move(recommend)),
      base_setup_(base_setup),
      shard_setup_(base_setup),
      params_(params) {}

void DynamicTuner::BindEngine(const engine::StorageEngine& engine) {
  const size_t shards = std::max<size_t>(1, engine.NumShards());
  if (!detectors_.empty()) {
    CAMAL_CHECK(detectors_.size() == shards);
    return;
  }
  detectors_.reserve(shards);
  for (size_t s = 0; s < shards; ++s) {
    detectors_.emplace_back(params_.window_ops, params_.tau);
  }
  shard_setup_ = ScaledDown(base_setup_, static_cast<double>(shards));
}

size_t DynamicTuner::reconfigurations() const {
  size_t total = 0;
  for (const workload::ShiftDetector& d : detectors_) {
    total += d.reconfigurations();
  }
  return total;
}

void DynamicTuner::RetuneShard(engine::StorageEngine* engine, size_t s,
                               const model::WorkloadSpec& stream_spec) {
  // A shift (or the shard's initial window) was detected: re-tune for the
  // shard's estimated local mix at the shard's *current* data scale.
  model::WorkloadSpec estimated = detectors_[s].LastWindowSpec();
  estimated.skew = stream_spec.skew;
  const double scale = static_cast<double>(engine->ShardEntries(s)) /
                       static_cast<double>(shard_setup_.num_entries);
  model::SystemParams target =
      ScaleParams(shard_setup_.ToModelParams(), std::max(0.1, scale));
  if (arbiter_ != nullptr) {
    // The retune prices its recommendation at the shard's arbitrated
    // budget, not the scaled even share: a hot shard that was granted
    // extra memory keeps it across shape retunes.
    target.total_memory_bits = static_cast<double>(arbiter_->BudgetBits(s));
  }
  last_applied_ = recommend_(estimated, target);
  if (racing_.enabled &&
      engine->ShardLifecycle(s) == engine::ShardState::kMaterialized) {
    // Race the recommendation against the incumbent on live traffic
    // instead of trusting the model outright. Only materialized shards
    // race: a cold/hibernated shard has no live structures to measure,
    // so its recommendation applies directly (below), exactly as with
    // racing off.
    StartRace(engine, s, last_applied_);
    return;
  }
  engine->ReconfigureShard(s, last_applied_.ToOptions(shard_setup_));
}

void DynamicTuner::ApplyRaceConfig(engine::StorageEngine* engine, size_t s,
                                   const TuningConfig& c) {
  TuningConfig applied = c;
  if (arbiter_ != nullptr) {
    // Racing owns the shape (T, policy, split proportions); the arbiter
    // owns the budget. Rescale the candidate's memory to the shard's
    // arbitrated budget so rotations never fight arbitration rounds —
    // and never create or destroy budget (conservation stays exact).
    const double budget = static_cast<double>(arbiter_->BudgetBits(s));
    const double have = c.mf_bits + c.mb_bits + c.mc_bits;
    if (have > 0.0 && budget > 0.0) {
      const double k = budget / have;
      // Floor each pool to the whole units ToOptions materializes (bits
      // for Bloom, bytes for buffer/cache) so its rounding can only
      // undershoot the arbitrated budget, never overshoot it — the same
      // discipline as MemoryArbiter::ApplyBudget.
      applied.mf_bits = std::floor(c.mf_bits * k);
      applied.mb_bits = 8.0 * std::floor(c.mb_bits * k / 8.0);
      applied.mc_bits = 8.0 * std::floor(c.mc_bits * k / 8.0);
    }
  }
  engine->ReconfigureShard(s, applied.ToOptions(shard_setup_));
}

void DynamicTuner::StartRace(engine::StorageEngine* engine, size_t s,
                             const TuningConfig& recommended) {
  // A fire on a racing shard abandons the stale race: the shift that
  // fired the detector made its half-collected measurements
  // unrepresentative.
  races_.erase(s);

  ShardRace race;
  RaceCandidate incumbent;
  incumbent.config = IncumbentConfig(engine->ShardOptionsSnapshot(s));
  race.candidates.push_back(std::move(incumbent));
  const auto add_candidate = [&](const TuningConfig& c) {
    if (race.candidates.size() >=
        static_cast<size_t>(std::max(2, racing_.candidates))) {
      return;
    }
    for (const RaceCandidate& existing : race.candidates) {
      if (SameConfig(existing.config, c)) return;
    }
    RaceCandidate cand;
    cand.config = c;
    race.candidates.push_back(std::move(cand));
  };
  add_candidate(recommended);
  // A shape perturbation of the recommendation: one size-ratio notch
  // toward the incumbent's side of the space (or outward at the floor),
  // probing whether the model stopped one step short.
  TuningConfig perturbed = recommended;
  perturbed.size_ratio = recommended.size_ratio > 4.0
                             ? recommended.size_ratio - 2.0
                             : recommended.size_ratio + 2.0;
  add_candidate(perturbed);

  if (race.candidates.size() < 2) {
    // Everything deduplicated onto the incumbent: nothing to learn from
    // a race; apply the recommendation directly (it IS the incumbent).
    engine->ReconfigureShard(s, recommended.ToOptions(shard_setup_));
    return;
  }

  // The race opens on the incumbent (already applied — the shard keeps
  // serving untouched while its first window fills).
  race.incumbent = 0;
  race.current = 0;
  const engine::OpCostWindow w = ShardWindowTotal(*engine, s);
  race.base_ops = w.ops;
  race.base_ios = w.ios;
  race.base_latency_ns = w.latency_ns;
  races_.emplace(s, std::move(race));
  ++races_started_;
}

void DynamicTuner::AdvanceRaces(engine::StorageEngine* engine) {
  if (races_.empty()) return;
  std::vector<size_t> settled;
  for (auto& [s, race] : races_) {
    const engine::OpCostWindow w = ShardWindowTotal(*engine, s);
    const uint64_t window_ops = w.ops - race.base_ops;
    // Windows advance on *measured* ops only: an idle (or hibernated)
    // shard's race pauses where it stood and resumes with its traffic.
    if (window_ops < racing_.window_ops) continue;

    RaceCandidate& cur = race.candidates[race.current];
    cur.ops += window_ops;
    cur.ios += w.ios - race.base_ios;
    cur.latency_ns += w.latency_ns - race.base_latency_ns;

    race.current = (race.current + 1) % race.candidates.size();
    if (race.current == 0) ++race.rounds;

    if (race.rounds >= std::max(1, racing_.min_rounds)) {
      // Settle: the measured-ios/op winner takes the shard — if it
      // clears the hysteresis margin over the incumbent.
      size_t winner = race.incumbent;
      double winner_cost = std::numeric_limits<double>::infinity();
      for (size_t i = 0; i < race.candidates.size(); ++i) {
        const double cost = MeasuredIosPerOp(race.candidates[i].ops,
                                             race.candidates[i].ios);
        if (cost < winner_cost) {
          winner_cost = cost;
          winner = i;
        }
      }
      const double incumbent_cost =
          MeasuredIosPerOp(race.candidates[race.incumbent].ops,
                           race.candidates[race.incumbent].ios);
      const bool switch_away =
          winner != race.incumbent &&
          winner_cost <= incumbent_cost * (1.0 - racing_.min_improvement);
      const size_t chosen = switch_away ? winner : race.incumbent;
      last_applied_ = race.candidates[chosen].config;
      ApplyRaceConfig(engine, s, last_applied_);
      if (switch_away) {
        ++race_switches_;
      } else {
        ++race_holds_;
      }
      settled.push_back(s);
      continue;
    }

    // Rotate: next candidate takes the shard for its window.
    ApplyRaceConfig(engine, s, race.candidates[race.current].config);
    const engine::OpCostWindow after = ShardWindowTotal(*engine, s);
    race.base_ops = after.ops;
    race.base_ios = after.ios;
    race.base_latency_ns = after.latency_ns;
  }
  for (size_t s : settled) races_.erase(s);
}

workload::ExecutionResult DynamicTuner::RunPhase(
    engine::StorageEngine* engine, workload::KeySpace* keys,
    const model::WorkloadSpec& spec, size_t num_ops, uint64_t seed) {
  BindEngine(*engine);

  workload::ExecutionResult result;
  workload::GeneratorConfig gen_cfg;
  gen_cfg.scan_len = base_setup_.scan_len;
  gen_cfg.insert_new_keys = true;  // data grows across phases
  // Tenant-skewed phases (inert at shard_skew == 0: the generator then
  // draws exactly the historical stream).
  gen_cfg.shard_skew = base_setup_.shard_skew;
  gen_cfg.num_shards = engine->NumShards();
  workload::OperationGenerator gen(spec, keys, gen_cfg, seed);

  // The stream executes through the engine's batched pipeline. Detector
  // state depends only on operation *types*, so firings are computed at
  // generation time; a batch is cut exactly at the op whose recording
  // fires a detector, the pending ops execute, and the fired shards are
  // retuned before any later op runs — the same execute-record-retune
  // order as op-at-a-time serving, with each shard's retune observing the
  // shard's true local scale at that point of the stream.
  constexpr size_t kMaxBatch = 512;
  std::vector<workload::Operation> pending;
  std::vector<engine::Op> ops;
  std::vector<engine::OpResult> op_results;
  // Shards whose detector fired at the batch-ending op: one home shard for
  // a point op, any subset (in shard order) for a scan, which every
  // detector records.
  std::vector<size_t> fired;

  size_t done = 0;
  size_t batch_index = 0;
  while (done < num_ops) {
    pending.clear();
    fired.clear();
    while (done + pending.size() < num_ops && pending.size() < kMaxBatch) {
      const workload::Operation op = gen.Next();
      pending.push_back(op);
      if (op.type != workload::OpType::kRangeLookup) {
        const size_t home = engine->ShardIndex(op.key);
        if (detectors_[home].Record(op.type)) fired.push_back(home);
      } else {
        for (size_t s = 0; s < detectors_.size(); ++s) {
          if (detectors_[s].Record(op.type)) fired.push_back(s);
        }
      }
      if (!fired.empty()) break;
    }

    ops.clear();
    for (const workload::Operation& op : pending) {
      ops.push_back(workload::ToEngineOp(op));
    }
    op_results.resize(ops.size());
    engine->ExecuteOps(ops.data(), ops.size(), op_results.data());
    for (size_t i = 0; i < pending.size(); ++i) {
      workload::AccumulateOpResult(pending[i].type, op_results[i], &result);
    }
    done += pending.size();

    // Race windows close on the measured ops of the batch just executed,
    // before any retune: a detector fire at this boundary then restarts
    // its shard's race against fully-accounted measurements.
    if (racing_.enabled) AdvanceRaces(engine);

    for (size_t s : fired) RetuneShard(engine, s, spec);

    // Arbitration composes with retunes at the same boundary: budgets
    // observed over whole windows move between shards between batches,
    // never inside one.
    if (arbiter_ != nullptr) {
      workload::BatchEvent event;
      event.batch_index = batch_index;
      event.count = pending.size();
      event.ops = pending.data();
      event.engine_ops = ops.data();
      event.results = op_results.data();
      workload::CountBatchKinds(&event);
      // `ops` is set, so this is exactly the historical OnBatch path.
      arbiter_->OnBatchEvent(engine, event);
    }
    ++batch_index;
  }
  result.num_ops = num_ops;
  return result;
}

}  // namespace camal::tune
