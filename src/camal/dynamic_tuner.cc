#include "camal/dynamic_tuner.h"

#include <algorithm>
#include <vector>

#include "camal/extrapolation.h"
#include "camal/memory_arbiter.h"
#include "util/status.h"

namespace camal::tune {

DynamicTuner::DynamicTuner(RecommendFn recommend,
                           const SystemSetup& base_setup, const Params& params)
    : recommend_(std::move(recommend)),
      base_setup_(base_setup),
      shard_setup_(base_setup),
      params_(params) {}

void DynamicTuner::BindEngine(const engine::StorageEngine& engine) {
  const size_t shards = std::max<size_t>(1, engine.NumShards());
  if (!detectors_.empty()) {
    CAMAL_CHECK(detectors_.size() == shards);
    return;
  }
  detectors_.reserve(shards);
  for (size_t s = 0; s < shards; ++s) {
    detectors_.emplace_back(params_.window_ops, params_.tau);
  }
  shard_setup_ = ScaledDown(base_setup_, static_cast<double>(shards));
}

size_t DynamicTuner::reconfigurations() const {
  size_t total = 0;
  for (const workload::ShiftDetector& d : detectors_) {
    total += d.reconfigurations();
  }
  return total;
}

void DynamicTuner::RetuneShard(engine::StorageEngine* engine, size_t s,
                               const model::WorkloadSpec& stream_spec) {
  // A shift (or the shard's initial window) was detected: re-tune for the
  // shard's estimated local mix at the shard's *current* data scale.
  model::WorkloadSpec estimated = detectors_[s].LastWindowSpec();
  estimated.skew = stream_spec.skew;
  const double scale = static_cast<double>(engine->ShardEntries(s)) /
                       static_cast<double>(shard_setup_.num_entries);
  model::SystemParams target =
      ScaleParams(shard_setup_.ToModelParams(), std::max(0.1, scale));
  if (arbiter_ != nullptr) {
    // The retune prices its recommendation at the shard's arbitrated
    // budget, not the scaled even share: a hot shard that was granted
    // extra memory keeps it across shape retunes.
    target.total_memory_bits = static_cast<double>(arbiter_->BudgetBits(s));
  }
  last_applied_ = recommend_(estimated, target);
  engine->ReconfigureShard(s, last_applied_.ToOptions(shard_setup_));
}

workload::ExecutionResult DynamicTuner::RunPhase(
    engine::StorageEngine* engine, workload::KeySpace* keys,
    const model::WorkloadSpec& spec, size_t num_ops, uint64_t seed) {
  BindEngine(*engine);

  workload::ExecutionResult result;
  workload::GeneratorConfig gen_cfg;
  gen_cfg.scan_len = base_setup_.scan_len;
  gen_cfg.insert_new_keys = true;  // data grows across phases
  // Tenant-skewed phases (inert at shard_skew == 0: the generator then
  // draws exactly the historical stream).
  gen_cfg.shard_skew = base_setup_.shard_skew;
  gen_cfg.num_shards = engine->NumShards();
  workload::OperationGenerator gen(spec, keys, gen_cfg, seed);

  // The stream executes through the engine's batched pipeline. Detector
  // state depends only on operation *types*, so firings are computed at
  // generation time; a batch is cut exactly at the op whose recording
  // fires a detector, the pending ops execute, and the fired shards are
  // retuned before any later op runs — the same execute-record-retune
  // order as op-at-a-time serving, with each shard's retune observing the
  // shard's true local scale at that point of the stream.
  constexpr size_t kMaxBatch = 512;
  std::vector<workload::Operation> pending;
  std::vector<engine::Op> ops;
  std::vector<engine::OpResult> op_results;
  // Shards whose detector fired at the batch-ending op: one home shard for
  // a point op, any subset (in shard order) for a scan, which every
  // detector records.
  std::vector<size_t> fired;

  size_t done = 0;
  size_t batch_index = 0;
  while (done < num_ops) {
    pending.clear();
    fired.clear();
    while (done + pending.size() < num_ops && pending.size() < kMaxBatch) {
      const workload::Operation op = gen.Next();
      pending.push_back(op);
      if (op.type != workload::OpType::kRangeLookup) {
        const size_t home = engine->ShardIndex(op.key);
        if (detectors_[home].Record(op.type)) fired.push_back(home);
      } else {
        for (size_t s = 0; s < detectors_.size(); ++s) {
          if (detectors_[s].Record(op.type)) fired.push_back(s);
        }
      }
      if (!fired.empty()) break;
    }

    ops.clear();
    for (const workload::Operation& op : pending) {
      ops.push_back(workload::ToEngineOp(op));
    }
    op_results.resize(ops.size());
    engine->ExecuteOps(ops.data(), ops.size(), op_results.data());
    for (size_t i = 0; i < pending.size(); ++i) {
      workload::AccumulateOpResult(pending[i].type, op_results[i], &result);
    }
    done += pending.size();

    for (size_t s : fired) RetuneShard(engine, s, spec);

    // Arbitration composes with retunes at the same boundary: budgets
    // observed over whole windows move between shards between batches,
    // never inside one.
    if (arbiter_ != nullptr) {
      workload::BatchEvent event;
      event.batch_index = batch_index;
      event.count = pending.size();
      event.ops = pending.data();
      event.engine_ops = ops.data();
      event.results = op_results.data();
      workload::CountBatchKinds(&event);
      // `ops` is set, so this is exactly the historical OnBatch path.
      arbiter_->OnBatchEvent(engine, event);
    }
    ++batch_index;
  }
  result.num_ops = num_ops;
  return result;
}

}  // namespace camal::tune
