#include "camal/dynamic_tuner.h"

#include <algorithm>
#include <vector>

#include "camal/extrapolation.h"
#include "util/status.h"

namespace camal::tune {

DynamicTuner::DynamicTuner(RecommendFn recommend,
                           const SystemSetup& base_setup, const Params& params)
    : recommend_(std::move(recommend)),
      base_setup_(base_setup),
      shard_setup_(base_setup),
      params_(params) {}

void DynamicTuner::BindEngine(const engine::StorageEngine& engine) {
  const size_t shards = std::max<size_t>(1, engine.NumShards());
  if (!detectors_.empty()) {
    CAMAL_CHECK(detectors_.size() == shards);
    return;
  }
  detectors_.reserve(shards);
  for (size_t s = 0; s < shards; ++s) {
    detectors_.emplace_back(params_.window_ops, params_.tau);
  }
  shard_setup_ = ScaledDown(base_setup_, static_cast<double>(shards));
}

size_t DynamicTuner::reconfigurations() const {
  size_t total = 0;
  for (const workload::ShiftDetector& d : detectors_) {
    total += d.reconfigurations();
  }
  return total;
}

void DynamicTuner::RetuneShard(engine::StorageEngine* engine, size_t s,
                               const model::WorkloadSpec& stream_spec) {
  // A shift (or the shard's initial window) was detected: re-tune for the
  // shard's estimated local mix at the shard's *current* data scale.
  model::WorkloadSpec estimated = detectors_[s].LastWindowSpec();
  estimated.skew = stream_spec.skew;
  const double scale = static_cast<double>(engine->ShardEntries(s)) /
                       static_cast<double>(shard_setup_.num_entries);
  const model::SystemParams target =
      ScaleParams(shard_setup_.ToModelParams(), std::max(0.1, scale));
  last_applied_ = recommend_(estimated, target);
  engine->ReconfigureShard(s, last_applied_.ToOptions(shard_setup_));
}

workload::ExecutionResult DynamicTuner::RunPhase(
    engine::StorageEngine* engine, workload::KeySpace* keys,
    const model::WorkloadSpec& spec, size_t num_ops, uint64_t seed) {
  BindEngine(*engine);

  workload::ExecutionResult result;
  workload::GeneratorConfig gen_cfg;
  gen_cfg.scan_len = base_setup_.scan_len;
  gen_cfg.insert_new_keys = true;  // data grows across phases
  workload::OperationGenerator gen(spec, keys, gen_cfg, seed);
  std::vector<lsm::Entry> scan_buf;

  for (size_t i = 0; i < num_ops; ++i) {
    const workload::Operation op = gen.Next();
    // Point ops charge one shard only; price them off that shard's device
    // (identical delta, no per-op sum over all shard devices).
    const bool point_op = op.type != workload::OpType::kRangeLookup;
    const size_t home = point_op ? engine->ShardIndex(op.key) : 0;
    const sim::DeviceSnapshot before = point_op
                                           ? engine->ShardCostSnapshot(home)
                                           : engine->CostSnapshot();
    switch (op.type) {
      case workload::OpType::kZeroResultLookup:
      case workload::OpType::kNonZeroResultLookup: {
        uint64_t value = 0;
        if (engine->Get(op.key, &value)) {
          ++result.lookups_found;
        } else {
          ++result.lookups_missed;
        }
        break;
      }
      case workload::OpType::kRangeLookup:
        scan_buf.clear();
        engine->Scan(op.key, op.scan_len, &scan_buf);
        break;
      case workload::OpType::kWrite:
        engine->Put(op.key, op.value);
        break;
      case workload::OpType::kDelete:
        engine->Delete(op.key);
        break;
    }
    const sim::DeviceSnapshot after = point_op
                                          ? engine->ShardCostSnapshot(home)
                                          : engine->CostSnapshot();
    const sim::DeviceSnapshot delta = after.Delta(before);
    result.latency_ns.Add(delta.elapsed_ns);
    result.total_ns += delta.elapsed_ns;
    result.total_ios += delta.TotalIos();

    // Feed the detector(s) of the shard(s) that served the operation:
    // point ops route to one shard, range lookups fan out to all.
    if (point_op) {
      if (detectors_[home].Record(op.type)) RetuneShard(engine, home, spec);
    } else {
      for (size_t s = 0; s < detectors_.size(); ++s) {
        if (detectors_[s].Record(op.type)) RetuneShard(engine, s, spec);
      }
    }
  }
  result.num_ops = num_ops;
  return result;
}

}  // namespace camal::tune
