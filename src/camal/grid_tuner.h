#ifndef CAMAL_CAMAL_GRID_TUNER_H_
#define CAMAL_CAMAL_GRID_TUNER_H_

#include <vector>

#include "camal/tuner.h"

namespace camal::tune {

/// Plain-ML baseline: the sampling budget is spread over a uniform grid of
/// the configuration space (no feedback between samples); a model is fit on
/// all samples afterwards and recommendations take its argmin.
class GridTuner : public ModelBackedTuner {
 public:
  GridTuner(const SystemSetup& full_setup, const TunerOptions& options);

  void Train(const std::vector<model::WorkloadSpec>& workloads) override;

 private:
  /// Evenly spaced grid with ~budget points over (T, bpk[, mc]).
  std::vector<TuningConfig> UniformGrid(const model::SystemParams& sys,
                                        int budget) const;
};

}  // namespace camal::tune

#endif  // CAMAL_CAMAL_GRID_TUNER_H_
