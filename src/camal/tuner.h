#ifndef CAMAL_CAMAL_TUNER_H_
#define CAMAL_CAMAL_TUNER_H_

#include <functional>
#include <memory>
#include <vector>

#include "camal/evaluator.h"
#include "camal/sample.h"
#include "model/workload_spec.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace camal::tune {

/// How `K` (runs per level) is brought into the search space (Section 8.4).
enum class KTuningMode { kOff, kIndependent, kCodependent };

/// Knobs shared by every tuning strategy.
struct TunerOptions {
  ModelKind model_kind = ModelKind::kTrees;
  Objective objective = Objective::kMeanLatency;
  /// Base compaction policy searched/tuned.
  lsm::CompactionPolicy policy = lsm::CompactionPolicy::kLeveling;
  /// When true, both policies enter the search space (doubles CAMAL's
  /// sampling rounds; baselines just widen their grids).
  bool tune_policy = false;
  /// When false, the Mb/Mf split round is skipped and the Monkey-style
  /// default split is kept (used by the Figure 6g parameter breakdown).
  bool tune_memory = true;
  /// When true, block-cache memory is tuned as a third round.
  bool tune_mc = false;
  /// Runs-per-level extension.
  KTuningMode k_mode = KTuningMode::kOff;
  /// SST file-size extension.
  bool tune_file_size = false;
  /// When true, recommendations carry an io_uring queue depth derived from
  /// the cost model's read fan-out (real-IO backend only; the depth never
  /// changes results or I/O counts, so it needs no sampling rounds of its
  /// own — it is priced closed-form on top of whatever config wins).
  bool tune_io_depth = false;
  /// Largest queue depth `tune_io_depth` may recommend.
  int max_io_queue_depth = 64;
  /// Neighborhood samples per decoupled round (the paper uses 3).
  int samples_per_round = 3;
  /// Closing active-learning iterations per workload: after the decoupled
  /// rounds, CAMAL samples the configuration its model currently predicts
  /// best (within the pruned window), refits, and repeats — catching model
  /// error exactly where it matters.
  int refine_rounds = 2;
  /// Sample budget per workload for the baseline strategies (plain AL,
  /// Bayes, grid).
  int budget_per_workload = 12;
  /// Extrapolation factor k: train at (N/k, M/k), recommend at (N, M).
  /// 1 disables extrapolation (full-size training).
  double extrapolation_factor = 1.0;
  /// Worker threads for batched sampling/evaluation: 1 = serial,
  /// N > 1 = a private pool of N workers, 0 = follow the process-wide
  /// setting (util::SetGlobalThreads). Results are bit-identical for every
  /// value — each sample's randomness is derived from its salt, never from
  /// scheduling.
  int threads = 0;
  uint64_t seed = 1;
  /// Measured-cost corrector closed-form objectives are filtered through
  /// (see `model::CostCorrector`): every `CostModel` a tuner builds for
  /// pruning, refinement, or closed-form fallback applies it, so
  /// recommendations minimize *calibrated* cost. Null (the default) is
  /// the identity — bit-identical to the uncalibrated tuner. Shared:
  /// tuners, the arbiter, and benches may hold the same corrector and
  /// refit it as measurements accumulate.
  std::shared_ptr<const model::CostCorrector> cost_corrector;
};

/// Common interface of all tuning strategies.
class TunerBase {
 public:
  /// Tuners are owned polymorphically by the bench harnesses.
  virtual ~TunerBase() = default;

  /// Gathers training samples for the given workloads (the expensive
  /// phase). Implementations accumulate `sampling_cost_ns`.
  virtual void Train(const std::vector<model::WorkloadSpec>& workloads) = 0;

  /// Recommends a configuration for `w` at the full-size target system.
  virtual TuningConfig Recommend(const model::WorkloadSpec& w) const = 0;

  /// Total simulated sampling cost so far ("sampling hours").
  double sampling_cost_ns() const { return sampling_cost_ns_; }

  /// Invoked whenever a coherent chunk of training finished (used to draw
  /// learning curves: cost so far -> quality of current recommendations).
  void SetCheckpointCallback(std::function<void(double cum_cost_ns)> cb) {
    checkpoint_ = std::move(cb);
  }

 protected:
  void Checkpoint() {
    if (checkpoint_) checkpoint_(sampling_cost_ns_);
  }

  double sampling_cost_ns_ = 0.0;
  std::function<void(double)> checkpoint_;
};

/// Base for strategies that learn a latency model from samples and
/// recommend by minimizing the model over a configuration grid.
class ModelBackedTuner : public TunerBase {
 public:
  ModelBackedTuner(const SystemSetup& full_setup, const TunerOptions& options);

  /// Recommends for the full-size system.
  TuningConfig Recommend(const model::WorkloadSpec& w) const override;

  /// Recommends for an arbitrary target scale (dynamic mode / growth):
  /// model features are scale-invariant, so the same model serves any
  /// target (Lemma 5.1). CamalTuner overrides this to prefer the best
  /// *measured* configuration when the workload was trained on.
  virtual TuningConfig RecommendFor(const model::WorkloadSpec& w,
                                    const model::SystemParams& target) const;

  /// Model prediction of the objective for a (workload, config) pair at
  /// the given scale.
  double PredictObjective(const model::WorkloadSpec& w, const TuningConfig& x,
                          const model::SystemParams& target) const;

  const std::vector<Sample>& samples() const { return samples_; }
  const SystemSetup& train_setup() const { return train_setup_; }
  const SystemSetup& full_setup() const { return full_setup_; }
  const TunerOptions& options() const { return options_; }
  bool has_model() const { return model_ != nullptr && model_->fitted(); }

 protected:
  /// Evaluates (w, x) on the training-scale system, records the sample and
  /// its cost, and returns it.
  const Sample& CollectSample(const model::WorkloadSpec& w,
                              const TuningConfig& x);

  /// Batched CollectSample: evaluates every configuration (in parallel when
  /// the tuner has worker threads) and appends the samples in config order.
  /// Consumes the same salts a serial CollectSample loop would, so the
  /// sample stream is bit-identical at any thread count. Returns the index
  /// into samples() of the first appended sample; exactly xs.size() samples
  /// follow it, one per configuration in order.
  size_t CollectSamples(const model::WorkloadSpec& w,
                        const std::vector<TuningConfig>& xs);

  /// Worker pool for batched work; nullptr means "run inline".
  util::ThreadPool* pool();

  /// Refits the model on all samples gathered so far.
  void RefitModel();

  /// Enumerates the candidate grid at the given scale (absolute bits).
  /// The base implementation spans the whole space; CamalTuner overrides
  /// it to prune to the neighborhood of the theoretical optimum for `w`
  /// (complexity-analysis-driven pruning, Design 1 of the paper).
  virtual std::vector<TuningConfig> CandidateGrid(
      const model::WorkloadSpec& w, const model::SystemParams& target) const;

  /// Argmin of the model over the candidate grid, with one local
  /// refinement pass around the best coarse point.
  TuningConfig ArgminOverGrid(const model::WorkloadSpec& w,
                              const model::SystemParams& target) const;

  /// Maximum sensible bits-per-key for Bloom memory at a target scale.
  double MaxBloomBpk(const model::SystemParams& target) const;

  /// When `tune_io_depth` is on, stamps `c` with the queue depth the cost
  /// model recommends for it (`CostModel::RecommendedQueueDepth`, clamped
  /// to `max_io_queue_depth`); otherwise leaves `c` untouched. Idempotent —
  /// the recommendation depends on the config's read fan-out, never on the
  /// depth already stamped — so every Recommend* return path applies it.
  void ApplyIoDepthRecommendation(const model::WorkloadSpec& w,
                                  const model::SystemParams& target,
                                  TuningConfig* c) const;

  SystemSetup full_setup_;
  SystemSetup train_setup_;
  TunerOptions options_;
  Evaluator evaluator_;
  std::unique_ptr<ml::Regressor> model_;
  std::vector<Sample> samples_;
  mutable util::Random rng_;
  uint64_t sample_salt_ = 0;
  /// Private pool, lazily created when options_.threads > 1.
  std::unique_ptr<util::ThreadPool> pool_;
};

}  // namespace camal::tune

#endif  // CAMAL_CAMAL_TUNER_H_
