#ifndef CAMAL_CAMAL_SAMPLE_H_
#define CAMAL_CAMAL_SAMPLE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "lsm/options.h"
#include "ml/regressor.h"
#include "model/cost_model.h"
#include "model/workload_spec.h"
#include "sim/device.h"
#include "util/status.h"

namespace camal::tune {

/// Whether (and how) per-tenant memory arbitration runs during serving:
/// `kOff` keeps the even per-shard split (bit-identical to the
/// pre-arbiter system); `kPeriodic` redistributes shard budgets by
/// modeled marginal benefit every `arbiter_period_ops` operations.
enum class ArbitrationMode { kOff, kPeriodic };

/// Which storage backend measurement runs execute on: `kSim` — the
/// simulated-device engine (`engine::ShardedEngine`, bit-reproducible,
/// the default and the basis of every figure) — or `kFile` — the real-IO
/// `engine::FileEngine`, whose costs come from monotonic clocks over
/// actual file reads/writes (used to validate that model-driven tunings
/// transfer to a real device).
enum class EngineBackend { kSim, kFile };

/// How measurement runs drive the engine: `kClosedLoop` — the generator
/// submits the next operation as soon as the previous one finishes
/// (every figure's historical mode) — or `kGateway` — operations arrive
/// open-loop on Poisson timestamps and are served through
/// `serve::Gateway` (per-tenant queues, admission control), so the
/// measurement includes queueing delay and a shed rate.
enum class ServeMode { kClosedLoop, kGateway };

/// Read-submission mode of `kFile` measurement engines (mirrors
/// `engine::IoMode`; the Evaluator maps it through): `kPread` — serial
/// block reads — `kUring` — io_uring ring submission where supported —
/// or `kAuto` — ring only when the queue depth asks for overlap.
enum class FileIoMode { kPread, kUring, kAuto };

/// WAL fsync policy of durable `kFile` measurement engines (mirrors
/// `engine::fileio::WalSyncPolicy`; the Evaluator maps it through):
/// `kNone` — never fsync (clean-close durability only) — `kBatch` —
/// one fsync per committed batch (group commit) — or `kAlways` — fsync
/// every logged write.
enum class FileWalSync { kNone, kBatch, kAlways };

/// The experimental scale: data size, memory budget, device, and query
/// volumes. One SystemSetup corresponds to one "database server" in the
/// paper's evaluation.
struct SystemSetup {
  /// Number of initially ingested entries (N).
  uint64_t num_entries = 40000;
  /// Entry size in bytes (E).
  uint64_t entry_bytes = 128;
  /// Total memory budget in bits (M = Mb + Mf + Mc); default ~16 bits/key.
  uint64_t total_memory_bits = 640000;
  /// Range-lookup selectivity in entries (s).
  size_t scan_len = 16;
  /// Simulated device / CPU cost constants.
  sim::DeviceConfig device;
  /// Operations per *training* sample (kept small: sampling is the cost
  /// CAMAL fights; ingest dominates it, so queries are comparatively
  /// cheap).
  size_t train_ops = 4000;
  /// Operations per final *evaluation* run.
  size_t eval_ops = 8000;
  /// Master seed.
  uint64_t seed = 42;
  /// Hard ceiling `Validate` enforces on `num_shards` (16M): past the
  /// million-tenant envelope the lazy engines are sized for, a larger
  /// count is almost certainly a units mistake, not a real fleet.
  static constexpr size_t kMaxShards = size_t{16} * 1024 * 1024;
  /// Number of independent LSM-tree shards the serving engine partitions
  /// the key space across (1 = a single tree, today's direct path; up to
  /// `kMaxShards`). The Evaluator measures samples on an
  /// `engine::ShardedEngine` with this many shards; the tuning space
  /// (memory, T, policy) still describes the *total* system budget.
  size_t num_shards = 1;
  /// Intra-engine parallelism: workers the serving engine fans per-shard
  /// sub-batches (and scatter-gather scan probes) across inside
  /// `ExecuteOps`. 1 = serial (default), 0 = all hardware threads.
  /// Results are bit-identical at any value; only wall-clock changes.
  /// Complements job-level parallelism (`TunerOptions::threads`): batched
  /// sampling fanned across a pool already saturates the machine, so
  /// nested engine fan-out runs inline there — this knob buys wall-clock
  /// when job-level parallelism is exhausted (e.g. a single final
  /// Evaluate, or the dynamic tuner driving one big sharded engine).
  int engine_threads = 1;
  /// Per-tenant memory arbitration during measurement runs (only
  /// meaningful with `num_shards` > 1). `kOff` — the default — is
  /// bit-identical to the pre-arbiter evaluator.
  ArbitrationMode arbitration = ArbitrationMode::kOff;
  /// Operations between arbitration rounds (`kPeriodic` mode).
  size_t arbiter_period_ops = 2048;
  /// Per-shard traffic hotness of generated streams (Zipf over shard
  /// index; see `workload::GeneratorConfig::shard_skew`). 0 = uniform
  /// tenant traffic, today's behavior.
  double shard_skew = 0.0;
  /// Storage backend measurement runs execute on. `kSim` (the default)
  /// is bit-identical to the pre-backend-selection evaluator; `kFile`
  /// measures on the real-IO `engine::FileEngine` with monotonic-clock
  /// costs (latencies then vary run to run; I/O counts stay
  /// deterministic).
  EngineBackend backend = EngineBackend::kSim;
  /// Base directory for `kFile` measurement file sets; each measurement
  /// creates (and removes) a unique subdirectory. Empty = the system
  /// temp dir.
  std::string file_workdir;
  /// Read-submission mode of `kFile` measurement engines. `kAuto` with
  /// `io_queue_depth` 1 (the defaults) preserves the serial pread path
  /// byte for byte; results and I/O counts are identical whatever the
  /// mode — only wall-clock changes.
  FileIoMode io_mode = FileIoMode::kAuto;
  /// Engine-default ring queue depth of `kFile` measurement engines
  /// (block reads kept in flight per shard; 1 = no overlap). Per-shard
  /// tunings override it through `lsm::Options::io_queue_depth`.
  int io_queue_depth = 1;
  /// When true, `kFile` measurement engines run with the durability
  /// subsystem on (per-shard manifest + WAL). Off — the default — is
  /// bit-identical in I/O counters to the pre-durability evaluator;
  /// on adds manifest/WAL writes outside the counted cost clocks, so
  /// counters still match and only wall-clock changes.
  bool file_durable = false;
  /// WAL fsync policy of durable `kFile` engines (inert unless
  /// `file_durable`). `kNone` keeps measurement wall-clock free of
  /// fsync stalls; `kBatch`/`kAlways` price real durability.
  FileWalSync file_wal_sync = FileWalSync::kNone;
  /// When true, each measurement additionally times a crash-free
  /// recovery: after the measured run the engine closes cleanly, a
  /// second engine reopens the same file set (`reopen=true`, manifest
  /// replay + WAL tail replay, no run rebuilds), and the wall-clock of
  /// that reopen lands in `Measurement::recovery_ns`. Requires
  /// `file_durable`.
  bool measure_recovery = false;
  /// Serving mode of measurement runs. `kClosedLoop` (the default) is
  /// bit-identical to the pre-gateway evaluator; `kGateway` serves the
  /// query phase through `serve::Gateway` with open-loop Poisson
  /// arrivals (see the gateway_* knobs below, all inert in closed loop).
  ServeMode serve_mode = ServeMode::kClosedLoop;
  /// Mean inter-arrival gap between requests (whole system) in
  /// simulated ns; required > 0 in `kGateway` mode.
  double gateway_interarrival_ns = 0.0;
  /// Per-tenant queue depth bound (tenants map to engine shards).
  size_t gateway_queue_depth = 256;
  /// When false, gateway queues are unbounded (no depth shedding).
  bool gateway_admission = true;
  /// Per-tenant token-bucket rate limit in ops per simulated second;
  /// 0 disables rate limiting.
  double gateway_rate_limit_ops_per_sec = 0.0;
  /// Token-bucket burst capacity in ops.
  size_t gateway_rate_burst = 32;

  /// Checks the knob combination for consistency: arbitration or tenant
  /// skew without shards to arbitrate/skew across, file-backend knobs on
  /// the simulated backend, gateway mode without an arrival rate, and
  /// degenerate scales are all rejected with an explanatory message.
  /// `Evaluator` and the benches call this instead of silently serving a
  /// setup that cannot mean what the caller intended.
  util::Status Validate() const;

  /// The closed-form model's view of this setup.
  model::SystemParams ToModelParams() const;

  /// Device config for one measurement run: a copy of `device` whose
  /// jitter seed is derived from (`seed`, `salt`) so distinct setups (and
  /// distinct salts within a setup) never share a correlated jitter
  /// stream.
  sim::DeviceConfig MakeDeviceConfig(uint64_t salt = 0) const;
};

/// Returns a copy of `setup` scaled down by factor `k` (N/k entries, M/k
/// memory) — the training-side counterpart of the extrapolation strategy.
SystemSetup ScaledDown(const SystemSetup& setup, double k);

/// `Validate()` or abort with the message — the entry-point guard the
/// Evaluator and every bench run before building engines.
void ValidateOrDie(const SystemSetup& setup);

/// One point X in the tuning space. All memory fields are absolute bits for
/// a specific system scale; `ExtrapolateConfig` rescales them.
struct TuningConfig {
  lsm::CompactionPolicy policy = lsm::CompactionPolicy::kLeveling;
  double size_ratio = 10.0;
  double mf_bits = 0.0;
  double mb_bits = 0.0;
  double mc_bits = 0.0;
  /// Runs-per-level extension knob K (0 = policy default).
  int runs_per_level = 0;
  /// SST file size extension knob (0 = one file per run).
  uint64_t file_bytes = 0;
  /// Ring queue depth extension knob (real-IO backend only; 0 = engine
  /// default, i.e. not tuned). Priced by the cost model's overlap term;
  /// recommended when `TunerOptions::tune_io_depth` is on.
  int io_queue_depth = 0;

  /// Materializes engine options for the given setup.
  lsm::Options ToOptions(const SystemSetup& setup) const;

  /// The closed-form model's view of this config.
  model::ModelConfig ToModelConfig() const;

  std::string ToString() const;
};

/// The paper's "well-tuned RocksDB" baseline configuration: leveling,
/// T = 10, 10 bits/key of Bloom memory, the rest to the write buffer.
TuningConfig MonkeyDefaultConfig(const SystemSetup& setup);

/// One training observation (W, X, Y) plus the system scale it was measured
/// at and its sampling cost.
struct Sample {
  model::WorkloadSpec workload;
  TuningConfig config;
  model::SystemParams sys;
  double mean_latency_ns = 0.0;
  double p90_latency_ns = 0.0;
  double ios_per_op = 0.0;
  /// Simulated time spent producing this sample (ingest + queries) — the
  /// "sampling hours" currency of Figure 5a.
  double cost_ns = 0.0;
};

/// What the tuners optimize (Section 8.4 explores the alternatives).
enum class Objective { kMeanLatency, kP90Latency, kIosPerOp };

/// Extracts the objective value from a sample.
double ObjectiveValue(const Sample& sample, Objective objective);

/// The ML model families of Section 7.
enum class ModelKind { kPoly, kTrees, kNn };

const char* ModelKindName(ModelKind kind);

/// Scale-invariant feature vector for (workload, config, system) — bits
/// per key, memory fractions, and derived cost-model quantities (levels,
/// FPR) rather than absolute sizes, so models trained at N' transfer to
/// kN' (Lemma 5.1).
std::vector<double> RawFeatures(const model::WorkloadSpec& w,
                                const TuningConfig& x,
                                const model::SystemParams& sys);

/// Cost-model basis expansion for polynomial regression (Equation 11):
/// each theoretical cost term of Figure 2 becomes one basis function, plus
/// per-operation constants for CPU time.
std::vector<double> CostBasisFromRaw(const std::vector<double>& raw);

/// Builds a fresh regressor of the requested family (Poly models get the
/// cost-model basis expansion).
std::unique_ptr<ml::Regressor> MakeModel(ModelKind kind, uint64_t seed);

}  // namespace camal::tune

#endif  // CAMAL_CAMAL_SAMPLE_H_
