#ifndef CAMAL_CAMAL_GROUP_SAMPLING_H_
#define CAMAL_CAMAL_GROUP_SAMPLING_H_

#include <utility>
#include <vector>

#include "model/cost_model.h"
#include "model/workload_spec.h"

namespace camal::tune {

/// Theoretical optimal runs-per-level K at a fixed size ratio, from the
/// generalized hybrid cost model (argmin over K in [1, min(T, 8)]).
int TheoreticalOptimalK(const model::WorkloadSpec& w,
                        const model::CostModel& model, double size_ratio);

/// 2-D sampling neighborhood around (T*, K*) for co-dependent group-wise
/// sampling (Section 8.4): the center plus alternating +-steps in each
/// dimension, `count` points total, clamped to valid ranges.
std::vector<std::pair<double, int>> JointTkNeighborhood(double t_star,
                                                        int k_star, int count,
                                                        double t_lim);

}  // namespace camal::tune

#endif  // CAMAL_CAMAL_GROUP_SAMPLING_H_
