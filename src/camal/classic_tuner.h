#ifndef CAMAL_CAMAL_CLASSIC_TUNER_H_
#define CAMAL_CAMAL_CLASSIC_TUNER_H_

#include <vector>

#include "camal/tuner.h"

namespace camal::tune {

/// "Classic" tuning baseline (Endure's nominal tuner): minimizes the
/// closed-form I/O cost model exactly — no samples, no learning.
class ClassicTuner : public TunerBase {
 public:
  ClassicTuner(const SystemSetup& setup, const TunerOptions& options);

  /// No-op: classic tuning needs no training samples.
  void Train(const std::vector<model::WorkloadSpec>& workloads) override;

  TuningConfig Recommend(const model::WorkloadSpec& w) const override;

  /// Recommendation at an arbitrary target scale.
  TuningConfig RecommendFor(const model::WorkloadSpec& w,
                            const model::SystemParams& target) const;

 private:
  SystemSetup setup_;
  TunerOptions options_;
};

/// Fixed "well-tuned RocksDB" baseline: leveling, T = 10, 10 bits/key
/// Bloom memory with Monkey allocation, remaining budget to the buffer.
/// With `use_cache` (the paper's "Classic (Cache)" row) 20% of the budget
/// goes to the block cache.
class MonkeyTuner : public TunerBase {
 public:
  MonkeyTuner(const SystemSetup& setup, bool use_cache = false);

  void Train(const std::vector<model::WorkloadSpec>& workloads) override;
  TuningConfig Recommend(const model::WorkloadSpec& w) const override;
  TuningConfig RecommendFor(const model::WorkloadSpec& w,
                            const model::SystemParams& target) const;

 private:
  SystemSetup setup_;
  bool use_cache_;
};

}  // namespace camal::tune

#endif  // CAMAL_CAMAL_CLASSIC_TUNER_H_
