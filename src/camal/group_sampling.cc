#include "camal/group_sampling.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace camal::tune {

int TheoreticalOptimalK(const model::WorkloadSpec& w_in,
                        const model::CostModel& model, double size_ratio) {
  const model::WorkloadSpec w = w_in.Normalized();
  const int k_max =
      std::max(1, std::min(8, static_cast<int>(std::floor(size_ratio))));
  int best_k = 1;
  double best_cost = std::numeric_limits<double>::infinity();
  for (int k = 1; k <= k_max; ++k) {
    model::ModelConfig c;
    c.policy = lsm::CompactionPolicy::kLeveling;
    c.size_ratio = size_ratio;
    c.runs_per_level = k;
    c.mf_bits = 10.0 * model.params().num_entries;
    c.mb_bits =
        std::max(model.params().entry_bits,
                 model.params().total_memory_bits - c.mf_bits);
    const double cost = model.OpCost(w, c);
    if (cost < best_cost) {
      best_cost = cost;
      best_k = k;
    }
  }
  return best_k;
}

std::vector<std::pair<double, int>> JointTkNeighborhood(double t_star,
                                                        int k_star, int count,
                                                        double t_lim) {
  std::vector<std::pair<double, int>> out;
  auto push = [&](double t, int k) {
    t = std::clamp(std::round(t), 2.0, std::floor(t_lim));
    k = std::clamp(k, 1, std::min(8, static_cast<int>(t)));
    for (const auto& p : out) {
      if (p.first == t && p.second == k) return;
    }
    out.emplace_back(t, k);
  };
  // Center first, then alternating steps along each axis and diagonals.
  push(t_star, k_star);
  const int deltas[][2] = {{2, 0},  {0, 1},  {-2, 0}, {0, -1}, {2, 1},
                           {-2, -1}, {4, 0},  {0, 2},  {-4, 0}, {0, -2},
                           {2, -1}, {-2, 1}};
  for (const auto& d : deltas) {
    if (static_cast<int>(out.size()) >= count) break;
    push(t_star + d[0], k_star + d[1]);
  }
  if (static_cast<int>(out.size()) > count) out.resize(count);
  return out;
}

}  // namespace camal::tune
