#ifndef CAMAL_CAMAL_CAMAL_TUNER_H_
#define CAMAL_CAMAL_CAMAL_TUNER_H_

#include <vector>

#include "camal/tuner.h"

namespace camal::tune {

/// CAMAL: complexity-analysis-driven decoupled active learning
/// (Sections 3, 4 and Algorithm 2 of the paper).
///
/// For every training workload it runs one sampling round per parameter —
/// size ratio T first, then the Mb/Mf memory split, then (optionally) Mc,
/// the runs-per-level K extension, and SST file size. Each round:
///  1. derives the parameter's theoretical optimum from the closed-form
///     cost model,
///  2. samples the real system in a small neighborhood of that optimum
///     (`samples_per_round` points),
///  3. refits the ML model on all samples gathered so far (across
///     workloads), and
///  4. fixes the parameter at the model's argmin before the next round.
class CamalTuner : public ModelBackedTuner {
 public:
  CamalTuner(const SystemSetup& full_setup, const TunerOptions& options);

  void Train(const std::vector<model::WorkloadSpec>& workloads) override;

  /// The per-workload configurations chosen during training (parallel to
  /// the workload vector passed to Train).
  const std::vector<TuningConfig>& tuned_configs() const {
    return tuned_configs_;
  }

  /// CAMAL prunes the candidate space to a window around the theoretical
  /// optimum of `w` (Design 1: complexity analysis narrows the search so
  /// the model never has to extrapolate far from its samples).
  std::vector<TuningConfig> CandidateGrid(
      const model::WorkloadSpec& w,
      const model::SystemParams& target) const override;

  /// For workloads the tuner trained on, recommends the configuration with
  /// the best *measured* objective (rescaled to the target via Lemma 5.1);
  /// the closing refine rounds guarantee the model's favorite points are
  /// among the measured candidates. Unseen workloads fall back to the
  /// model argmin.
  TuningConfig RecommendFor(const model::WorkloadSpec& w,
                            const model::SystemParams& target) const override;

  /// Additive half-width of the bits-per-key pruning window.
  static constexpr double kPruneRadius = 5.0;
  /// Multiplicative half-width of the size-ratio window: T is searched in
  /// [T*/kTWindow, T* x kTWindow] (T acts on the tree logarithmically, so
  /// its neighborhood is geometric).
  static constexpr double kTWindow = 4.0;
  /// T* and the search window are capped at this fraction of T_lim: at
  /// T ~ T_lim the tree degenerates to a single level whose behaviour is
  /// fragile and scale-dependent — a corner the closed form loves (it sees
  /// only fewer levels) but real systems avoid.
  static constexpr double kTStarCap = 0.6;
  static constexpr double kTSearchCap = 0.8;

  /// Geometric neighborhood of T*: {T*, T*/2, 2T*, T*/4, 4T*, ...} clamped
  /// to [2, t_lim], `samples_per_round` distinct integers.
  std::vector<double> SizeRatioNeighborhood(double t_star,
                                            double t_lim) const;

 private:
  /// Runs all decoupled rounds for one workload under one policy; returns
  /// the tuned configuration (at training scale).
  TuningConfig TrainWorkload(const model::WorkloadSpec& w,
                             lsm::CompactionPolicy policy);

  /// Integer neighborhood of `center` within [lo, hi], at most
  /// `samples_per_round` distinct values spread +-2 around the center.
  std::vector<double> Neighborhood(double center, double lo, double hi,
                                   double step) const;

  std::vector<TuningConfig> tuned_configs_;
};

}  // namespace camal::tune

#endif  // CAMAL_CAMAL_CAMAL_TUNER_H_
