#include "camal/camal_tuner.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "camal/extrapolation.h"
#include "camal/group_sampling.h"
#include "camal/plain_al_tuner.h"  // SameConfig
#include "model/optimum.h"

namespace camal::tune {

CamalTuner::CamalTuner(const SystemSetup& full_setup,
                       const TunerOptions& options)
    : ModelBackedTuner(full_setup, options) {}

namespace {
bool SameWorkload(const model::WorkloadSpec& a, const model::WorkloadSpec& b) {
  return std::fabs(a.v - b.v) < 1e-9 && std::fabs(a.r - b.r) < 1e-9 &&
         std::fabs(a.q - b.q) < 1e-9 && std::fabs(a.w - b.w) < 1e-9 &&
         std::fabs(a.skew - b.skew) < 1e-9;
}
}  // namespace

TuningConfig CamalTuner::RecommendFor(const model::WorkloadSpec& w,
                                      const model::SystemParams& target) const {
  const model::WorkloadSpec normalized = w.Normalized();
  // Dynamic mode hands us detector-estimated mixes that rarely match a
  // trained workload exactly. For unseen mixes, score every trained
  // workload's chosen configuration under the model *for the new mix* —
  // the model's predictions are well-grounded at measured configurations,
  // while its global argmin may live in an extrapolated corner. The raw
  // argmin is kept only when it predicts a clear (>25%) advantage.
  bool have_exact = false;
  for (const Sample& s : samples_) {
    if (SameWorkload(s.workload, normalized)) {
      have_exact = true;
      break;
    }
  }
  if (!have_exact) {
    if (samples_.empty() || !has_model()) {
      return ModelBackedTuner::RecommendFor(w, target);
    }
    // Distinct trained workloads -> their per-workload recommendations.
    std::vector<model::WorkloadSpec> trained;
    for (const Sample& s : samples_) {
      bool seen = false;
      for (const model::WorkloadSpec& t : trained) {
        if (SameWorkload(t, s.workload)) {
          seen = true;
          break;
        }
      }
      if (!seen) trained.push_back(s.workload);
    }
    TuningConfig best;
    double best_pred = std::numeric_limits<double>::infinity();
    for (const model::WorkloadSpec& t : trained) {
      const TuningConfig candidate = RecommendFor(t, target);
      const double pred = PredictObjective(normalized, candidate, target);
      if (pred < best_pred) {
        best_pred = pred;
        best = candidate;
      }
    }
    TuningConfig chosen = best;
    const TuningConfig argmin = ArgminOverGrid(normalized, target);
    if (PredictObjective(normalized, argmin, target) < 0.75 * best_pred) {
      chosen = argmin;
    }
    ApplyIoDepthRecommendation(normalized, target, &chosen);
    return chosen;
  }
  // Group this workload's samples by configuration (repeat measurements of
  // the same point — e.g. from the refine rounds — average out) and pick
  // the best measured group.
  struct Group {
    const Sample* sample = nullptr;
    double total = 0.0;
    int count = 0;
  };
  std::vector<Group> groups;
  for (const Sample& s : samples_) {
    if (!SameWorkload(s.workload, normalized)) continue;
    const double value = ObjectiveValue(s, options_.objective);
    bool merged = false;
    for (Group& g : groups) {
      if (SameConfig(g.sample->config, s.config)) {
        g.total += value;
        ++g.count;
        merged = true;
        break;
      }
    }
    if (!merged) groups.push_back(Group{&s, value, 1});
  }
  if (groups.empty()) return ModelBackedTuner::RecommendFor(w, target);
  const Group* best = &groups.front();
  for (const Group& g : groups) {
    if (g.total / g.count < best->total / best->count) best = &g;
  }
  // Lemma 5.1: rescale the measured configuration to the target scale.
  const double k = target.num_entries / best->sample->sys.num_entries;
  TuningConfig scaled = ExtrapolateConfig(best->sample->config, k);
  ApplyIoDepthRecommendation(normalized, target, &scaled);
  return scaled;
}

std::vector<TuningConfig> CamalTuner::CandidateGrid(
    const model::WorkloadSpec& w, const model::SystemParams& target) const {
  const model::CostModel cm(target, options_.cost_corrector.get());
  const double t_lim = std::floor(cm.SizeRatioLimit());
  const double n = target.num_entries;
  const double m = target.total_memory_bits;
  const double min_buf = model::MinBufferBits(target);
  const double max_bpk = MaxBloomBpk(target);

  std::vector<lsm::CompactionPolicy> policies;
  if (options_.tune_policy) {
    policies = {lsm::CompactionPolicy::kLeveling,
                lsm::CompactionPolicy::kTiering};
  } else {
    policies = {options_.policy};
  }
  std::vector<double> mc_fracs = {0.0};
  if (options_.tune_mc) mc_fracs = {0.0, 0.1, 0.2, 0.3, 0.4};

  std::vector<TuningConfig> grid;
  for (lsm::CompactionPolicy policy : policies) {
    TuningConfig defaults;
    defaults.policy = policy;
    defaults.mf_bits = std::min(10.0 * n, 0.8 * m);
    defaults.mb_bits = m - defaults.mf_bits;

    double t_star;
    if (policy == lsm::CompactionPolicy::kLeveling) {
      t_star = model::OptimalSizeRatioLeveling(w, cm);
    } else {
      t_star = model::OptimalSizeRatioNumeric(w, cm, defaults.ToModelConfig());
    }
    t_star = std::clamp(std::round(std::min(t_star, kTStarCap * t_lim)), 2.0,
                        t_lim);
    const double t_cap = std::max(4.0, kTSearchCap * t_lim);
    const double t_lo = std::max(2.0, std::floor(t_star / kTWindow));
    const double t_hi = std::min(t_cap, std::ceil(t_star * kTWindow));

    std::vector<double> bpk_values;
    if (options_.tune_memory) {
      double bpk_star;
      if (policy == lsm::CompactionPolicy::kLeveling) {
        bpk_star = model::OptimalMfBitsLeveling(w, cm, t_star) / n;
      } else {
        TuningConfig probe = defaults;
        probe.size_ratio = t_star;
        bpk_star =
            model::OptimalMfBitsNumeric(w, cm, probe.ToModelConfig()) / n;
      }
      // Window spans the theoretical optimum AND the practical default
      // (10 bits/key): the closed form can badly underestimate filter
      // memory when its buffer-size derivative is off (e.g. sparse shallow
      // levels make small buffers cheap for scans).
      const double lo =
          std::max(0.0, std::min(bpk_star, 10.0) - kPruneRadius);
      const double hi =
          std::min(max_bpk, std::max(bpk_star, 10.0) + kPruneRadius);
      for (double bpk = lo; bpk <= hi + 1e-9; bpk += 1.0) {
        bpk_values.push_back(bpk);
      }
    } else {
      bpk_values.push_back(std::min(10.0, max_bpk));
    }

    for (double t = t_lo; t <= t_hi + 1e-9; t += 1.0) {
      std::vector<int> k_values = {0};
      if (options_.k_mode != KTuningMode::kOff) {
        k_values.clear();
        for (int k = 1; k <= std::min(8, static_cast<int>(t)); ++k) {
          k_values.push_back(k);
        }
      }
      for (double bpk : bpk_values) {
        for (double mc_frac : mc_fracs) {
          for (int k : k_values) {
            TuningConfig c;
            c.policy = policy;
            c.size_ratio = std::round(t);
            c.runs_per_level = k;
            c.mc_bits = mc_frac * m;
            c.mf_bits =
                std::clamp(bpk * n, 0.0, m - c.mc_bits - min_buf);
            if (c.mf_bits < 0.0) continue;
            c.mb_bits = m - c.mf_bits - c.mc_bits;
            if (c.mb_bits < min_buf) continue;
            grid.push_back(c);
          }
        }
      }
    }
  }
  return grid;
}

std::vector<double> CamalTuner::SizeRatioNeighborhood(double t_star,
                                                      double t_lim) const {
  std::vector<double> out;
  auto push = [&](double v) {
    v = std::clamp(std::round(v), 2.0, std::floor(t_lim));
    for (double existing : out) {
      if (std::fabs(existing - v) < 0.5) return;
    }
    out.push_back(v);
  };
  push(t_star);
  for (double factor = 2.0;
       static_cast<int>(out.size()) < options_.samples_per_round;
       factor *= 2.0) {
    push(t_star / factor);
    if (static_cast<int>(out.size()) >= options_.samples_per_round) break;
    push(t_star * factor);
    if (factor > 16.0) break;  // range exhausted
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<double> CamalTuner::Neighborhood(double center, double lo,
                                             double hi, double step) const {
  std::vector<double> out;
  auto push = [&](double v) {
    v = std::clamp(v, lo, hi);
    for (double existing : out) {
      if (std::fabs(existing - v) < 1e-9) return;
    }
    out.push_back(v);
  };
  push(center);
  for (int ring = 1; static_cast<int>(out.size()) < options_.samples_per_round;
       ++ring) {
    push(center - ring * step);
    if (static_cast<int>(out.size()) >= options_.samples_per_round) break;
    push(center + ring * step);
    if (ring > 8) break;  // range exhausted
  }
  std::sort(out.begin(), out.end());
  return out;
}

void CamalTuner::Train(const std::vector<model::WorkloadSpec>& workloads) {
  tuned_configs_.clear();
  std::vector<lsm::CompactionPolicy> policies;
  if (options_.tune_policy) {
    policies = {lsm::CompactionPolicy::kLeveling,
                lsm::CompactionPolicy::kTiering};
  } else {
    policies = {options_.policy};
  }
  const model::SystemParams train_sys = train_setup_.ToModelParams();
  for (const model::WorkloadSpec& w : workloads) {
    for (lsm::CompactionPolicy policy : policies) {
      TrainWorkload(w, policy);
    }
    // Closing AL iterations: sample the model's current favorite within the
    // pruned window, learn from it, repeat.
    for (int round = 0; round < options_.refine_rounds; ++round) {
      const TuningConfig candidate = ArgminOverGrid(w, train_sys);
      CollectSample(w, candidate);
      RefitModel();
    }
    // The recommendation for this workload given everything learned so far
    // (ArgminOverGrid searches across policies when tune_policy is set).
    tuned_configs_.push_back(Recommend(w));
    Checkpoint();
  }
}

TuningConfig CamalTuner::TrainWorkload(const model::WorkloadSpec& w,
                                       lsm::CompactionPolicy policy) {
  const model::SystemParams sys = train_setup_.ToModelParams();
  const model::CostModel cm(sys, options_.cost_corrector.get());
  const double t_lim = std::floor(cm.SizeRatioLimit());
  const double n = sys.num_entries;
  const double m = sys.total_memory_bits;
  const double min_buf = model::MinBufferBits(sys);

  // Untuned parameters start from the Monkey-style defaults.
  TuningConfig cur;
  cur.policy = policy;
  cur.mf_bits = std::min(10.0 * n, 0.8 * m);
  cur.mb_bits = m - cur.mf_bits;
  cur.mc_bits = 0.0;

  auto set_memory = [&](double mf_bits, double mc_bits) {
    mc_bits = std::max(0.0, mc_bits);
    mf_bits = std::clamp(mf_bits, 0.0, m - mc_bits - min_buf);
    cur.mc_bits = mc_bits;
    cur.mf_bits = mf_bits;
    cur.mb_bits = m - mf_bits - mc_bits;
  };

  // ---------------- Round 1: size ratio T (and K when co-dependent).
  double t_star;
  if (policy == lsm::CompactionPolicy::kLeveling) {
    t_star = model::OptimalSizeRatioLeveling(w, cm);
  } else {
    t_star = model::OptimalSizeRatioNumeric(w, cm, cur.ToModelConfig());
  }
  t_star = std::clamp(std::round(std::min(t_star, kTStarCap * t_lim)), 2.0,
                      t_lim);
  const double t_cap = std::max(4.0, kTSearchCap * t_lim);

  if (options_.k_mode == KTuningMode::kCodependent) {
    const int k_star = TheoreticalOptimalK(w, cm, t_star);
    const auto pairs = JointTkNeighborhood(
        t_star, k_star, options_.samples_per_round * 2, t_cap);
    std::vector<TuningConfig> round;
    for (const auto& [t, k] : pairs) {
      TuningConfig c = cur;
      c.size_ratio = t;
      c.runs_per_level = k;
      round.push_back(c);
    }
    CollectSamples(w, round);
    RefitModel();
    // Joint argmin over (T, K) within the pruned window.
    double best_pred = std::numeric_limits<double>::infinity();
    const int t_lo =
        static_cast<int>(std::max(2.0, std::floor(t_star / kTWindow)));
    const int t_hi =
        static_cast<int>(std::min(t_cap, std::ceil(t_star * kTWindow)));
    for (int t = t_lo; t <= t_hi; ++t) {
      for (int k = 1; k <= std::min(8, t); ++k) {
        TuningConfig c = cur;
        c.size_ratio = t;
        c.runs_per_level = k;
        const double pred = PredictObjective(w, c, sys);
        if (pred < best_pred) {
          best_pred = pred;
          cur.size_ratio = t;
          cur.runs_per_level = k;
        }
      }
    }
  } else {
    std::vector<TuningConfig> round;
    for (double t : SizeRatioNeighborhood(t_star, t_cap)) {
      TuningConfig c = cur;
      c.size_ratio = std::round(t);
      round.push_back(c);
    }
    CollectSamples(w, round);
    RefitModel();
    // Argmin within the pruned window around T* — the complexity analysis
    // bounds how far the intermediate model may pull the parameter.
    double best_pred = std::numeric_limits<double>::infinity();
    double best_t = cur.size_ratio;
    const int t_lo =
        static_cast<int>(std::max(2.0, std::floor(t_star / kTWindow)));
    const int t_hi =
        static_cast<int>(std::min(t_cap, std::ceil(t_star * kTWindow)));
    for (int t = t_lo; t <= t_hi; ++t) {
      TuningConfig c = cur;
      c.size_ratio = t;
      const double pred = PredictObjective(w, c, sys);
      if (pred < best_pred) {
        best_pred = pred;
        best_t = t;
      }
    }
    cur.size_ratio = best_t;
  }

  // ---------------- Round 2: memory split Mf vs Mb.
  if (!options_.tune_memory) {
    return cur;  // Figure 6g "+T" stage: keep the default memory split.
  }
  double mf_star;
  if (policy == lsm::CompactionPolicy::kLeveling) {
    mf_star = model::OptimalMfBitsLeveling(w, cm, cur.size_ratio, cur.mc_bits);
  } else {
    mf_star =
        model::OptimalMfBitsNumeric(w, cm, cur.ToModelConfig(), cur.mc_bits);
  }
  const double max_bpk = std::clamp((m - min_buf) / n, 0.0, 16.0);
  std::vector<double> bpk_samples = Neighborhood(mf_star / n, 0.0, max_bpk, 2.0);
  // Anchor at the practical default when theory lands far from it.
  if (std::fabs(mf_star / n - 10.0) > 3.0 && 10.0 <= max_bpk) {
    bpk_samples.push_back(10.0);
  }
  {
    std::vector<TuningConfig> round;
    for (double bpk : bpk_samples) {
      TuningConfig c = cur;
      c.mf_bits = std::clamp(bpk * n, 0.0, m - cur.mc_bits - min_buf);
      c.mb_bits = m - c.mf_bits - c.mc_bits;
      round.push_back(c);
    }
    CollectSamples(w, round);
  }
  RefitModel();
  {
    double best_pred = std::numeric_limits<double>::infinity();
    double best_bpk = cur.mf_bits / n;
    const double bpk_lo =
        std::max(0.0, std::min(mf_star / n, 10.0) - kPruneRadius);
    const double bpk_hi =
        std::min(max_bpk, std::max(mf_star / n, 10.0) + kPruneRadius);
    for (double bpk = bpk_lo; bpk <= bpk_hi + 1e-9; bpk += 0.5) {
      TuningConfig c = cur;
      c.mf_bits = std::clamp(bpk * n, 0.0, m - cur.mc_bits - min_buf);
      c.mb_bits = m - c.mf_bits - c.mc_bits;
      const double pred = PredictObjective(w, c, sys);
      if (pred < best_pred) {
        best_pred = pred;
        best_bpk = bpk;
      }
    }
    set_memory(best_bpk * n, cur.mc_bits);
  }

  // ---------------- Round 3 (optional): block cache Mc.
  if (options_.tune_mc) {
    // The closed-form model has no cache term; start from a practically
    // reasonable center (15% of the budget).
    std::vector<TuningConfig> round;
    for (double frac : Neighborhood(0.15, 0.0, 0.4, 0.15)) {
      TuningConfig c = cur;
      const double mc = frac * m;
      c.mc_bits = mc;
      c.mf_bits = std::clamp(cur.mf_bits, 0.0, m - mc - min_buf);
      c.mb_bits = m - c.mf_bits - c.mc_bits;
      round.push_back(c);
    }
    CollectSamples(w, round);
    RefitModel();
    double best_pred = std::numeric_limits<double>::infinity();
    double best_frac = 0.0;
    for (double frac = 0.0; frac <= 0.45; frac += 0.05) {
      TuningConfig c = cur;
      const double mc = frac * m;
      c.mc_bits = mc;
      c.mf_bits = std::clamp(cur.mf_bits, 0.0, m - mc - min_buf);
      c.mb_bits = m - c.mf_bits - c.mc_bits;
      const double pred = PredictObjective(w, c, sys);
      if (pred < best_pred) {
        best_pred = pred;
        best_frac = frac;
      }
    }
    const double mc = best_frac * m;
    set_memory(std::min(cur.mf_bits, m - mc - min_buf), mc);
  }

  // ---------------- Optional round: K tuned independently after T.
  if (options_.k_mode == KTuningMode::kIndependent) {
    const int k_star = TheoreticalOptimalK(w, cm, cur.size_ratio);
    std::vector<TuningConfig> round;
    for (double k : Neighborhood(k_star, 1.0,
                                 std::min(8.0, cur.size_ratio), 1.0)) {
      TuningConfig c = cur;
      c.runs_per_level = static_cast<int>(std::round(k));
      round.push_back(c);
    }
    CollectSamples(w, round);
    RefitModel();
    double best_pred = std::numeric_limits<double>::infinity();
    int best_k = std::max(1, cur.runs_per_level);
    for (int k = 1; k <= std::min(8, static_cast<int>(cur.size_ratio)); ++k) {
      TuningConfig c = cur;
      c.runs_per_level = k;
      const double pred = PredictObjective(w, c, sys);
      if (pred < best_pred) {
        best_pred = pred;
        best_k = k;
      }
    }
    cur.runs_per_level = best_k;
  }

  // ---------------- Optional round: SST file size.
  if (options_.tune_file_size) {
    const std::vector<uint64_t> candidates = {32 * 1024, 64 * 1024,
                                              128 * 1024};
    std::vector<TuningConfig> round;
    for (uint64_t fb : candidates) {
      TuningConfig c = cur;
      c.file_bytes = fb;
      round.push_back(c);
    }
    CollectSamples(w, round);
    RefitModel();
    double best_pred = std::numeric_limits<double>::infinity();
    uint64_t best_fb = 0;
    for (uint64_t fb : {uint64_t{0}, uint64_t{16 * 1024}, uint64_t{32 * 1024},
                        uint64_t{64 * 1024}, uint64_t{128 * 1024},
                        uint64_t{256 * 1024}}) {
      TuningConfig c = cur;
      c.file_bytes = fb;
      const double pred = PredictObjective(w, c, sys);
      if (pred < best_pred) {
        best_pred = pred;
        best_fb = fb;
      }
    }
    cur.file_bytes = best_fb;
  }

  return cur;
}

}  // namespace camal::tune
