#include "camal/classic_tuner.h"

#include <algorithm>

#include "model/optimum.h"

namespace camal::tune {

ClassicTuner::ClassicTuner(const SystemSetup& setup,
                           const TunerOptions& options)
    : setup_(setup), options_(options) {}

void ClassicTuner::Train(const std::vector<model::WorkloadSpec>&) {
  Checkpoint();
}

TuningConfig ClassicTuner::Recommend(const model::WorkloadSpec& w) const {
  return RecommendFor(w, setup_.ToModelParams());
}

TuningConfig ClassicTuner::RecommendFor(
    const model::WorkloadSpec& w, const model::SystemParams& target) const {
  const model::CostModel cm(target, options_.cost_corrector.get());
  const model::TheoreticalOptimum opt =
      options_.tune_policy ? model::MinimizeCostOverPolicies(w, cm)
                           : model::MinimizeCost(w, cm, options_.policy);
  TuningConfig c;
  c.policy = opt.config.policy;
  c.size_ratio = opt.config.size_ratio;
  c.mf_bits = opt.config.mf_bits;
  c.mb_bits = opt.config.mb_bits;
  c.mc_bits = 0.0;  // the I/O model cannot reason about the cache
  return c;
}

MonkeyTuner::MonkeyTuner(const SystemSetup& setup, bool use_cache)
    : setup_(setup), use_cache_(use_cache) {}

void MonkeyTuner::Train(const std::vector<model::WorkloadSpec>&) {
  Checkpoint();
}

TuningConfig MonkeyTuner::Recommend(const model::WorkloadSpec& w) const {
  return RecommendFor(w, setup_.ToModelParams());
}

TuningConfig MonkeyTuner::RecommendFor(
    const model::WorkloadSpec&, const model::SystemParams& target) const {
  TuningConfig c;
  c.policy = lsm::CompactionPolicy::kLeveling;
  c.size_ratio = 10.0;
  const double m = target.total_memory_bits;
  if (use_cache_) c.mc_bits = 0.2 * m;
  c.mf_bits = std::min(10.0 * target.num_entries, 0.8 * (m - c.mc_bits));
  c.mb_bits = m - c.mf_bits - c.mc_bits;
  return c;
}

}  // namespace camal::tune
