#include "camal/grid_tuner.h"

#include <algorithm>
#include <cmath>

#include "model/optimum.h"

namespace camal::tune {

GridTuner::GridTuner(const SystemSetup& full_setup,
                     const TunerOptions& options)
    : ModelBackedTuner(full_setup, options) {}

std::vector<TuningConfig> GridTuner::UniformGrid(
    const model::SystemParams& sys, int budget) const {
  const model::CostModel cm(sys);
  const double t_lim = std::floor(cm.SizeRatioLimit());
  const double m = sys.total_memory_bits;
  const double min_buf = model::MinBufferBits(sys);
  const double max_bpk =
      std::clamp((m - min_buf) / sys.num_entries, 0.0, 16.0);

  // Split the budget over two (or three) dimensions as evenly as possible.
  const int dims = options_.tune_mc ? 3 : 2;
  const int per_dim = std::max(
      2, static_cast<int>(std::floor(std::pow(budget, 1.0 / dims))));
  const int t_points = per_dim;
  const int bpk_points = per_dim;
  const int mc_points = options_.tune_mc ? per_dim : 1;

  std::vector<TuningConfig> grid;
  for (int ti = 0; ti < t_points; ++ti) {
    const double t = std::round(
        2.0 + (t_lim - 2.0) * ti / std::max(1, t_points - 1));
    for (int bi = 0; bi < bpk_points; ++bi) {
      const double bpk = max_bpk * bi / std::max(1, bpk_points - 1);
      for (int mi = 0; mi < mc_points; ++mi) {
        const double mc_frac =
            options_.tune_mc ? 0.4 * mi / std::max(1, mc_points - 1) : 0.0;
        TuningConfig c;
        c.policy = options_.policy;
        c.size_ratio = t;
        c.mc_bits = mc_frac * m;
        c.mf_bits = std::clamp(bpk * sys.num_entries, 0.0,
                               m - c.mc_bits - min_buf);
        c.mb_bits = m - c.mf_bits - c.mc_bits;
        grid.push_back(c);
        if (static_cast<int>(grid.size()) >= budget) return grid;
      }
    }
  }
  return grid;
}

void GridTuner::Train(const std::vector<model::WorkloadSpec>& workloads) {
  const model::SystemParams sys = train_setup_.ToModelParams();
  const std::vector<TuningConfig> grid =
      UniformGrid(sys, options_.budget_per_workload);
  for (const model::WorkloadSpec& w : workloads) {
    // The whole per-workload grid is one independent batch — the prime
    // target for the parallel evaluation engine.
    CollectSamples(w, grid);
    RefitModel();
    Checkpoint();
  }
}

}  // namespace camal::tune
