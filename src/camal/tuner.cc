#include "camal/tuner.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "model/optimum.h"
#include "util/status.h"

namespace camal::tune {

ModelBackedTuner::ModelBackedTuner(const SystemSetup& full_setup,
                                   const TunerOptions& options)
    : full_setup_(full_setup),
      train_setup_(ScaledDown(full_setup, options.extrapolation_factor)),
      options_(options),
      evaluator_(train_setup_),
      rng_(options.seed * 7919 + 13) {}

const Sample& ModelBackedTuner::CollectSample(const model::WorkloadSpec& w,
                                              const TuningConfig& x) {
  Sample sample = evaluator_.MakeSample(w, x, ++sample_salt_);
  sampling_cost_ns_ += sample.cost_ns;
  samples_.push_back(std::move(sample));
  return samples_.back();
}

size_t ModelBackedTuner::CollectSamples(const model::WorkloadSpec& w,
                                        const std::vector<TuningConfig>& xs) {
  const size_t first = samples_.size();
  if (xs.empty()) return first;
  std::vector<Sample> batch =
      evaluator_.MakeSamples(w, xs, sample_salt_ + 1, pool());
  sample_salt_ += xs.size();
  for (Sample& sample : batch) {
    sampling_cost_ns_ += sample.cost_ns;
    samples_.push_back(std::move(sample));
  }
  return first;
}

util::ThreadPool* ModelBackedTuner::pool() {
  if (options_.threads == 0) return util::GlobalPool();
  if (options_.threads <= 1) return nullptr;
  if (pool_ == nullptr) {
    pool_ = std::make_unique<util::ThreadPool>(options_.threads);
  }
  return pool_.get();
}

void ModelBackedTuner::RefitModel() {
  if (samples_.empty()) return;
  if (model_ == nullptr) {
    model_ = MakeModel(options_.model_kind, options_.seed);
  }
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  x.reserve(samples_.size());
  y.reserve(samples_.size());
  for (const Sample& s : samples_) {
    x.push_back(RawFeatures(s.workload, s.config, s.sys));
    // Fit latency in microseconds (I/O counts stay as-is).
    const double target = ObjectiveValue(s, options_.objective);
    y.push_back(options_.objective == Objective::kIosPerOp ? target
                                                           : target / 1000.0);
  }
  model_->Fit(x, y);
}

double ModelBackedTuner::PredictObjective(
    const model::WorkloadSpec& w, const TuningConfig& x,
    const model::SystemParams& target) const {
  CAMAL_CHECK(has_model());
  return model_->Predict(RawFeatures(w, x, target));
}

double ModelBackedTuner::MaxBloomBpk(const model::SystemParams& target) const {
  const double spare =
      target.total_memory_bits - model::MinBufferBits(target);
  return std::clamp(spare / target.num_entries, 0.0, 16.0);
}

void ModelBackedTuner::ApplyIoDepthRecommendation(
    const model::WorkloadSpec& w, const model::SystemParams& target,
    TuningConfig* c) const {
  if (!options_.tune_io_depth) return;
  const model::CostModel cm(target, options_.cost_corrector.get());
  c->io_queue_depth = cm.RecommendedQueueDepth(
      w.Normalized(), c->ToModelConfig(), options_.max_io_queue_depth);
}

std::vector<TuningConfig> ModelBackedTuner::CandidateGrid(
    const model::WorkloadSpec& /*w*/,
    const model::SystemParams& target) const {
  const model::CostModel cm(target, options_.cost_corrector.get());
  const int t_lim = static_cast<int>(std::floor(cm.SizeRatioLimit()));
  const double n = target.num_entries;
  const double m = target.total_memory_bits;
  const double max_bpk = MaxBloomBpk(target);

  std::vector<lsm::CompactionPolicy> policies;
  if (options_.tune_policy) {
    policies = {lsm::CompactionPolicy::kLeveling,
                lsm::CompactionPolicy::kTiering};
  } else {
    policies = {options_.policy};
  }
  std::vector<double> mc_fracs = {0.0};
  if (options_.tune_mc) mc_fracs = {0.0, 0.1, 0.2, 0.3, 0.4};
  // With the memory round disabled, only the Monkey default split is
  // eligible (Figure 6g "+T" stage).
  std::vector<double> bpk_values;
  if (options_.tune_memory) {
    for (double bpk = 0.0; bpk <= max_bpk + 1e-9; bpk += 2.0) {
      bpk_values.push_back(bpk);
    }
  } else {
    bpk_values.push_back(std::min(10.0, max_bpk));
  }

  std::vector<TuningConfig> grid;
  for (lsm::CompactionPolicy policy : policies) {
    for (int t = 2; t <= t_lim; t += (t_lim > 24 ? 2 : 1)) {
      std::vector<int> k_values = {0};
      if (options_.k_mode != KTuningMode::kOff) {
        k_values.clear();
        const int k_max = std::min(t, 8);
        for (int k = 1; k <= k_max; ++k) k_values.push_back(k);
      }
      for (double bpk : bpk_values) {
        for (double mc_frac : mc_fracs) {
          for (int k : k_values) {
            TuningConfig c;
            c.policy = policy;
            c.size_ratio = t;
            c.runs_per_level = k;
            c.mc_bits = mc_frac * m;
            c.mf_bits = std::min(bpk * n, m - c.mc_bits -
                                              model::MinBufferBits(target));
            if (c.mf_bits < 0.0) continue;
            c.mb_bits = m - c.mf_bits - c.mc_bits;
            if (c.mb_bits < model::MinBufferBits(target)) continue;
            grid.push_back(c);
          }
        }
      }
    }
  }
  return grid;
}

TuningConfig ModelBackedTuner::ArgminOverGrid(
    const model::WorkloadSpec& w, const model::SystemParams& target) const {
  CAMAL_CHECK(has_model());
  const std::vector<TuningConfig> grid = CandidateGrid(w, target);
  CAMAL_CHECK(!grid.empty());
  TuningConfig best = grid.front();
  double best_pred = std::numeric_limits<double>::infinity();
  for (const TuningConfig& c : grid) {
    const double pred = PredictObjective(w, c, target);
    if (pred < best_pred) {
      best_pred = pred;
      best = c;
    }
  }

  // Local refinement around the coarse winner: T +- 2 step 1, bpk +- 2
  // step 0.5, mc +- 5%. The window is anchored at the *coarse* winner
  // (`anchor`), not the running best, so it cannot creep outward.
  const model::CostModel cm(target, options_.cost_corrector.get());
  const double t_lim = cm.SizeRatioLimit();
  const double n = target.num_entries;
  const double m = target.total_memory_bits;
  const double max_bpk = MaxBloomBpk(target);
  const TuningConfig anchor = best;
  const double base_bpk = anchor.mf_bits / n;
  const double base_mc_frac = anchor.mc_bits / m;
  const double bpk_radius = options_.tune_memory ? 2.0 : 0.0;
  for (double t = std::max(2.0, anchor.size_ratio - 2.0);
       t <= std::min(t_lim, anchor.size_ratio + 2.0); t += 1.0) {
    for (double bpk = std::max(0.0, base_bpk - bpk_radius);
         bpk <= std::min(max_bpk, base_bpk + bpk_radius) + 1e-9; bpk += 0.5) {
      for (double mc_frac :
           {std::max(0.0, base_mc_frac - 0.05), base_mc_frac,
            base_mc_frac + 0.05}) {
        if (!options_.tune_mc && mc_frac > 0.0) continue;
        TuningConfig c = anchor;
        c.size_ratio = t;
        c.mc_bits = mc_frac * m;
        c.mf_bits = std::min(bpk * n,
                             m - c.mc_bits - model::MinBufferBits(target));
        if (c.mf_bits < 0.0) continue;
        c.mb_bits = m - c.mf_bits - c.mc_bits;
        if (c.mb_bits < model::MinBufferBits(target)) continue;
        const double pred = PredictObjective(w, c, target);
        if (pred < best_pred) {
          best_pred = pred;
          best = c;
        }
      }
    }
  }
  return best;
}

TuningConfig ModelBackedTuner::Recommend(const model::WorkloadSpec& w) const {
  return RecommendFor(w, full_setup_.ToModelParams());
}

TuningConfig ModelBackedTuner::RecommendFor(
    const model::WorkloadSpec& w, const model::SystemParams& target) const {
  if (!has_model()) {
    // Untrained: fall back to the closed-form optimum.
    const model::CostModel cm(target, options_.cost_corrector.get());
    const model::TheoreticalOptimum opt =
        options_.tune_policy
            ? model::MinimizeCostOverPolicies(w, cm)
            : model::MinimizeCost(w, cm, options_.policy);
    TuningConfig c;
    c.policy = opt.config.policy;
    c.size_ratio = opt.config.size_ratio;
    c.mf_bits = opt.config.mf_bits;
    c.mb_bits = opt.config.mb_bits;
    ApplyIoDepthRecommendation(w, target, &c);
    return c;
  }
  TuningConfig best = ArgminOverGrid(w, target);
  ApplyIoDepthRecommendation(w, target, &best);
  return best;
}

}  // namespace camal::tune
