#ifndef CAMAL_CAMAL_MEMORY_ARBITER_H_
#define CAMAL_CAMAL_MEMORY_ARBITER_H_

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "camal/sample.h"
#include "engine/storage_engine.h"
#include "model/workload_spec.h"
#include "util/status.h"
#include "workload/executor.h"
#include "workload/generator.h"

namespace camal::tune {

/// Knobs of the per-tenant memory arbiter.
struct ArbiterOptions {
  /// Operations observed between arbitration rounds. Rounds land at batch
  /// boundaries, so the effective period is quantized to the pipeline's
  /// batch granularity.
  size_t period_ops = 2048;
  /// Per-shard budget floor as a fraction of the even share: no shard
  /// ever drops below `floor_frac * total / num_shards` bits.
  double floor_frac = 0.5;
  /// Budget quantum moved per step, as a fraction of the even share.
  double quantum_frac = 0.125;
  /// Maximum quanta moved per arbitration round.
  int max_moves_per_round = 8;
  /// A move requires the receiver's traffic-weighted modeled gain to
  /// exceed the donor's loss by this factor (hysteresis against budget
  /// thrashing under noisy windows; the concavity of cost-vs-memory
  /// already penalizes moves, so this stays close to 1).
  double hysteresis = 1.1;
  /// Shards per budget group of the two-level hierarchy. Shards that have
  /// never been rebalance participants hold no per-shard ledger entry:
  /// their budget lives amortized in their group's pool (exactly the even
  /// share until lifecycle events perturb it), so arbitration state and
  /// per-round work scale with the *active* tenant set, not the total.
  size_t group_size = 64;
};

/// \brief Per-tenant memory arbitration: observes per-shard load
/// (operation mix and volume, entry counts) over windows of `period_ops`
/// operations and periodically redistributes buffer/Bloom/block-cache
/// memory between the shards of a `StorageEngine` by model-priced
/// marginal benefit — the multi-tenant generalization of the paper's
/// Mb/Mf split round.
///
/// **Contract.** The fixed system total is conserved (budgets only move,
/// never grow), every shard keeps at least its floor, and the arbiter
/// talks only to the `StorageEngine` surface (`ShardOptionsSnapshot`,
/// `ShardEntries`, `ReconfigureShard`) — it works unchanged against any
/// backend, simulated or real-IO. The arbiter is a `workload::BatchHook`:
/// attach it to an `ExecutorConfig` (static serving, `Evaluator` with
/// `SystemSetup::arbitration`) or to a `DynamicTuner` (dynamic serving,
/// composing with per-shard retunes, which then respect arbitrated
/// budgets). Not attached — the even split — is the exact pre-arbiter
/// behavior.
///
/// **Scale.** Budgets live in a two-level hierarchy (group → shard):
/// shards that have never participated in a rebalance are *implicit* —
/// their budget is amortized in their group's pool and they cost no
/// per-shard state or per-round work. A shard is promoted to an explicit
/// per-shard ledger entry the first time it sees window traffic
/// (withdrawing its exact amortized slice from the pool), and demoted
/// back (depositing its whole budget) when it hibernates idle. Every
/// promotion/demotion conserves the total bit-exactly, and a round's work
/// is O(explicit + active), never O(total shards). While every shard is
/// explicit — the regime any fully-loaded engine reaches — decisions are
/// bit-identical to a flat dense arbiter.
///
/// **Thread-safety.** Externally synchronized, like the engine it
/// arbitrates: `OnBatch` fires on the execution thread between batches,
/// never concurrently with operations.
///
/// **Determinism.** All decisions are a deterministic function of the
/// observed operation stream and engine state (budget moves are priced on
/// op-mix windows, not on measured cost clocks — see `Rebalance`), so a
/// run with an arbiter attached is reproducible on the simulated backend
/// and produces identical budget trajectories on the real backend.
class MemoryArbiter : public workload::BatchHook {
 public:
  /// `total_options` is the system-wide configuration whose memory the
  /// arbiter conserves; starting per-shard budgets are the engine's even
  /// split of it (`ShardedEngine::ShardOptions` floor division), so an
  /// arbiter that never moves memory changes nothing. `setup` supplies
  /// the model basis (entry size, block size, scan selectivity).
  MemoryArbiter(const SystemSetup& setup, const lsm::Options& total_options,
                size_t num_shards, const ArbiterOptions& options);

  /// Records one observed operation routed to `shard` (scans are recorded
  /// on every shard they probe).
  void Record(size_t shard, workload::OpType type);

  /// True when a full observation window has elapsed.
  bool RoundDue() const { return window_ops_ >= options_.period_ops; }

  /// Runs one arbitration round against `engine`: prices every shard's
  /// marginal memory benefit from its window mix, moves quanta from the
  /// lowest-loss donors to the highest-gain receivers, reconfigures the
  /// shards whose budgets changed, and resets the window. Returns the
  /// number of shards reconfigured.
  size_t Rebalance(engine::StorageEngine* engine);

  /// BatchHook: accounts the batch per shard and rebalances when a window
  /// has elapsed.
  void OnBatch(engine::StorageEngine* engine, const workload::Operation* ops,
               size_t count) override;

  /// BatchObserver: executor-driven events (`event.ops` set) take the
  /// `OnBatch` path unchanged; gateway-driven events (`event.ops` null —
  /// there is no generator behind gateway traffic) classify the engine
  /// ops instead, reading lookup zero-/non-zero-result from
  /// `OpResult::found`. Either way the arbiter rides batch boundaries of
  /// whatever pipeline drives the engine.
  void OnBatchEvent(engine::StorageEngine* engine,
                    const workload::BatchEvent& event) override;

  /// Current arbitrated budget of one shard, in bits. For a shard with no
  /// per-shard ledger entry this is its amortized slice of its group pool
  /// (exactly the even share until lifecycle events perturb the pool).
  uint64_t BudgetBits(size_t shard) const;
  /// Materialized dense budget view (O(num_shards) — observability/tests).
  std::vector<uint64_t> budget_bits() const;

  /// The conserved system total and the per-shard floor, in bits.
  uint64_t total_bits() const { return total_bits_; }
  uint64_t floor_bits() const { return floor_bits_; }

  size_t rounds() const { return rounds_; }
  size_t moves() const { return moves_; }
  size_t reconfigurations() const { return reconfigurations_; }

  /// False when the per-shard even share is too small for the model to
  /// price moves meaningfully (its buffer slice is under the model's
  /// minimum sensible buffer); the arbiter then observes but never moves
  /// memory.
  bool active() const { return active_; }

  const ArbiterOptions& options() const { return options_; }

  /// Attaches (or detaches, with null) a measured-cost corrector: every
  /// marginal-benefit pricing of subsequent rounds calibrates through it
  /// (`model::PriceMemoryDelta`), so budgets chase *measured* cost.
  /// Detached (the default) is the exact uncalibrated arbiter.
  void set_cost_corrector(std::shared_ptr<const model::CostCorrector> c) {
    cost_corrector_ = std::move(c);
  }
  const std::shared_ptr<const model::CostCorrector>& cost_corrector() const {
    return cost_corrector_;
  }

 private:
  /// One group of the two-level budget hierarchy: the pooled bits of all
  /// its member shards that hold no per-shard ledger entry.
  struct Group {
    uint64_t pool_bits = 0;
    size_t implicit_members = 0;
  };

  /// Model view of shard `s` at its current budget: local entry count from
  /// the engine, window mix, shared entry/block/selectivity basis.
  model::SystemParams ShardParams(const engine::StorageEngine& engine,
                                  size_t s, uint64_t budget_bits) const;

  /// Window mix of shard `s` (uniform when the shard saw no traffic).
  model::WorkloadSpec WindowSpec(size_t s) const;

  /// Applies shard `s`'s arbitrated budget: scales the shard's live
  /// buffer/Bloom/cache split proportionally into the new total and
  /// reconfigures the shard (shape knobs untouched).
  void ApplyBudget(engine::StorageEngine* engine, size_t s);

  /// Promotes shard `s` from its group pool to a per-shard ledger entry,
  /// withdrawing its exact amortized slice (the last member also takes the
  /// pool's division remainder, so not one bit strands). Returns the
  /// withdrawn budget.
  uint64_t TrackShard(size_t s);

  /// Demotes explicit shard `s` back to its group pool, depositing its
  /// entire ledger budget (the hibernation handoff — conservation exact).
  void UntrackShard(size_t s);

  /// Budget of a shard with no ledger entry: its group pool's floor
  /// average.
  uint64_t ImplicitBudget(size_t s) const;

  /// Lowest implicit member of the lowest group whose amortized slice can
  /// fund a donation (≥ floor + quantum); SIZE_MAX when no group can.
  size_t ImplicitDonorCandidate() const;

  SystemSetup setup_;
  ArbiterOptions options_;
  /// Shape the pricing holds fixed (T, policy, K of the system config).
  model::ModelConfig shape_;
  size_t num_shards_ = 0;
  size_t group_size_ = 1;
  uint64_t even_share_bits_ = 0;
  /// sum(pools) + sum(explicit ledger) == total_bits_, exactly, always.
  std::vector<Group> groups_;
  /// Per-shard ledger of every past/present rebalance participant,
  /// ascending (donor iteration order matches the dense arbiter's).
  std::map<size_t, uint64_t> explicit_;
  uint64_t total_bits_ = 0;
  uint64_t floor_bits_ = 0;
  uint64_t quantum_bits_ = 0;
  /// Window operation counts, only for shards that saw ops: v, r, q,
  /// w(+deletes). Ascending iteration keeps decisions deterministic.
  std::map<size_t, std::array<uint64_t, 4>> counts_;
  bool active_ = true;
  size_t window_ops_ = 0;
  size_t rounds_ = 0;
  size_t moves_ = 0;
  size_t reconfigurations_ = 0;
  std::shared_ptr<const model::CostCorrector> cost_corrector_;
};

}  // namespace camal::tune

#endif  // CAMAL_CAMAL_MEMORY_ARBITER_H_
