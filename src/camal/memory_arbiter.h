#ifndef CAMAL_CAMAL_MEMORY_ARBITER_H_
#define CAMAL_CAMAL_MEMORY_ARBITER_H_

#include <array>
#include <cstdint>
#include <vector>

#include "camal/sample.h"
#include "engine/storage_engine.h"
#include "model/workload_spec.h"
#include "util/status.h"
#include "workload/executor.h"
#include "workload/generator.h"

namespace camal::tune {

/// Knobs of the per-tenant memory arbiter.
struct ArbiterOptions {
  /// Operations observed between arbitration rounds. Rounds land at batch
  /// boundaries, so the effective period is quantized to the pipeline's
  /// batch granularity.
  size_t period_ops = 2048;
  /// Per-shard budget floor as a fraction of the even share: no shard
  /// ever drops below `floor_frac * total / num_shards` bits.
  double floor_frac = 0.5;
  /// Budget quantum moved per step, as a fraction of the even share.
  double quantum_frac = 0.125;
  /// Maximum quanta moved per arbitration round.
  int max_moves_per_round = 8;
  /// A move requires the receiver's traffic-weighted modeled gain to
  /// exceed the donor's loss by this factor (hysteresis against budget
  /// thrashing under noisy windows; the concavity of cost-vs-memory
  /// already penalizes moves, so this stays close to 1).
  double hysteresis = 1.1;
};

/// \brief Per-tenant memory arbitration: observes per-shard load
/// (operation mix and volume, entry counts) over windows of `period_ops`
/// operations and periodically redistributes buffer/Bloom/block-cache
/// memory between the shards of a `StorageEngine` by model-priced
/// marginal benefit — the multi-tenant generalization of the paper's
/// Mb/Mf split round.
///
/// **Contract.** The fixed system total is conserved (budgets only move,
/// never grow), every shard keeps at least its floor, and the arbiter
/// talks only to the `StorageEngine` surface (`ShardOptionsSnapshot`,
/// `ShardEntries`, `ReconfigureShard`) — it works unchanged against any
/// backend, simulated or real-IO. The arbiter is a `workload::BatchHook`:
/// attach it to an `ExecutorConfig` (static serving, `Evaluator` with
/// `SystemSetup::arbitration`) or to a `DynamicTuner` (dynamic serving,
/// composing with per-shard retunes, which then respect arbitrated
/// budgets). Not attached — the even split — is the exact pre-arbiter
/// behavior.
///
/// **Thread-safety.** Externally synchronized, like the engine it
/// arbitrates: `OnBatch` fires on the execution thread between batches,
/// never concurrently with operations.
///
/// **Determinism.** All decisions are a deterministic function of the
/// observed operation stream and engine state (budget moves are priced on
/// op-mix windows, not on measured cost clocks — see `Rebalance`), so a
/// run with an arbiter attached is reproducible on the simulated backend
/// and produces identical budget trajectories on the real backend.
class MemoryArbiter : public workload::BatchHook {
 public:
  /// `total_options` is the system-wide configuration whose memory the
  /// arbiter conserves; starting per-shard budgets are the engine's even
  /// split of it (`ShardedEngine::ShardOptions` floor division), so an
  /// arbiter that never moves memory changes nothing. `setup` supplies
  /// the model basis (entry size, block size, scan selectivity).
  MemoryArbiter(const SystemSetup& setup, const lsm::Options& total_options,
                size_t num_shards, const ArbiterOptions& options);

  /// Records one observed operation routed to `shard` (scans are recorded
  /// on every shard they probe).
  void Record(size_t shard, workload::OpType type);

  /// True when a full observation window has elapsed.
  bool RoundDue() const { return window_ops_ >= options_.period_ops; }

  /// Runs one arbitration round against `engine`: prices every shard's
  /// marginal memory benefit from its window mix, moves quanta from the
  /// lowest-loss donors to the highest-gain receivers, reconfigures the
  /// shards whose budgets changed, and resets the window. Returns the
  /// number of shards reconfigured.
  size_t Rebalance(engine::StorageEngine* engine);

  /// BatchHook: accounts the batch per shard and rebalances when a window
  /// has elapsed.
  void OnBatch(engine::StorageEngine* engine, const workload::Operation* ops,
               size_t count) override;

  /// BatchObserver: executor-driven events (`event.ops` set) take the
  /// `OnBatch` path unchanged; gateway-driven events (`event.ops` null —
  /// there is no generator behind gateway traffic) classify the engine
  /// ops instead, reading lookup zero-/non-zero-result from
  /// `OpResult::found`. Either way the arbiter rides batch boundaries of
  /// whatever pipeline drives the engine.
  void OnBatchEvent(engine::StorageEngine* engine,
                    const workload::BatchEvent& event) override;

  /// Current arbitrated budget of one shard, in bits.
  uint64_t BudgetBits(size_t shard) const {
    CAMAL_CHECK(shard < budgets_.size());
    return budgets_[shard];
  }
  const std::vector<uint64_t>& budget_bits() const { return budgets_; }

  /// The conserved system total and the per-shard floor, in bits.
  uint64_t total_bits() const { return total_bits_; }
  uint64_t floor_bits() const { return floor_bits_; }

  size_t rounds() const { return rounds_; }
  size_t moves() const { return moves_; }
  size_t reconfigurations() const { return reconfigurations_; }

  /// False when the per-shard even share is too small for the model to
  /// price moves meaningfully (its buffer slice is under the model's
  /// minimum sensible buffer); the arbiter then observes but never moves
  /// memory.
  bool active() const { return active_; }

  const ArbiterOptions& options() const { return options_; }

 private:
  /// Model view of shard `s` at its current budget: local entry count from
  /// the engine, window mix, shared entry/block/selectivity basis.
  model::SystemParams ShardParams(const engine::StorageEngine& engine,
                                  size_t s) const;

  /// Window mix of shard `s` (uniform when the shard saw no traffic).
  model::WorkloadSpec WindowSpec(size_t s) const;

  /// Applies shard `s`'s arbitrated budget: scales the shard's live
  /// buffer/Bloom/cache split proportionally into the new total and
  /// reconfigures the shard (shape knobs untouched).
  void ApplyBudget(engine::StorageEngine* engine, size_t s);

  SystemSetup setup_;
  ArbiterOptions options_;
  /// Shape the pricing holds fixed (T, policy, K of the system config).
  model::ModelConfig shape_;
  std::vector<uint64_t> budgets_;
  uint64_t total_bits_ = 0;
  uint64_t floor_bits_ = 0;
  uint64_t quantum_bits_ = 0;
  /// Window operation counts per shard: v, r, q, w(+deletes).
  std::vector<std::array<uint64_t, 4>> counts_;
  bool active_ = true;
  size_t window_ops_ = 0;
  size_t rounds_ = 0;
  size_t moves_ = 0;
  size_t reconfigurations_ = 0;
};

}  // namespace camal::tune

#endif  // CAMAL_CAMAL_MEMORY_ARBITER_H_
