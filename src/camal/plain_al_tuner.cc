#include "camal/plain_al_tuner.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "model/optimum.h"

namespace camal::tune {

bool SameConfig(const TuningConfig& a, const TuningConfig& b) {
  return a.policy == b.policy &&
         std::fabs(a.size_ratio - b.size_ratio) < 0.5 &&
         std::fabs(a.mf_bits - b.mf_bits) < 1.0 &&
         std::fabs(a.mc_bits - b.mc_bits) < 1.0 &&
         a.runs_per_level == b.runs_per_level && a.file_bytes == b.file_bytes;
}

PlainAlTuner::PlainAlTuner(const SystemSetup& full_setup,
                           const TunerOptions& options)
    : ModelBackedTuner(full_setup, options) {}

TuningConfig PlainAlTuner::RandomConfig(const model::SystemParams& sys) {
  const model::CostModel cm(sys);
  const double t_lim = std::floor(cm.SizeRatioLimit());
  const double m = sys.total_memory_bits;
  const double min_buf = model::MinBufferBits(sys);
  TuningConfig c;
  c.policy = options_.tune_policy
                 ? (rng_.Bernoulli(0.5) ? lsm::CompactionPolicy::kLeveling
                                        : lsm::CompactionPolicy::kTiering)
                 : options_.policy;
  c.size_ratio = 2.0 + std::floor(rng_.NextDouble() * (t_lim - 2.0 + 1.0));
  if (options_.tune_mc) {
    c.mc_bits = rng_.NextDouble() * 0.4 * m;
  }
  const double max_bpk =
      std::max(0.0, (m - c.mc_bits - min_buf) / sys.num_entries);
  const double bpk = rng_.NextDouble() * std::min(16.0, max_bpk);
  c.mf_bits = bpk * sys.num_entries;
  c.mb_bits = m - c.mf_bits - c.mc_bits;
  if (options_.k_mode != KTuningMode::kOff) {
    c.runs_per_level =
        1 + static_cast<int>(rng_.Uniform(static_cast<uint64_t>(
                std::min(8.0, c.size_ratio))));
  }
  return c;
}

TuningConfig PlainAlTuner::NextQuery(
    const model::WorkloadSpec& w, const model::SystemParams& sys,
    const std::vector<TuningConfig>& already) const {
  const std::vector<TuningConfig> grid = CandidateGrid(w, sys);
  TuningConfig best = grid.front();
  double best_pred = std::numeric_limits<double>::infinity();
  for (const TuningConfig& c : grid) {
    bool seen = false;
    for (const TuningConfig& a : already) {
      if (SameConfig(a, c)) {
        seen = true;
        break;
      }
    }
    if (seen) continue;
    const double pred = PredictObjective(w, c, sys);
    if (pred < best_pred) {
      best_pred = pred;
      best = c;
    }
  }
  return best;
}

void PlainAlTuner::Train(const std::vector<model::WorkloadSpec>& workloads) {
  const model::SystemParams sys = train_setup_.ToModelParams();
  const int init_samples = std::min(3, options_.budget_per_workload);
  for (const model::WorkloadSpec& w : workloads) {
    // Draw the initial random configurations serially (they consume rng_),
    // then evaluate them as one parallel batch. The closing AL loop is
    // inherently sequential: each query depends on the refit model.
    std::vector<TuningConfig> queried;
    for (int i = 0; i < init_samples; ++i) {
      queried.push_back(RandomConfig(sys));
    }
    CollectSamples(w, queried);
    for (int round = init_samples; round < options_.budget_per_workload;
         ++round) {
      RefitModel();
      const TuningConfig c = NextQuery(w, sys, queried);
      CollectSample(w, c);
      queried.push_back(c);
    }
    RefitModel();
    Checkpoint();
  }
}

}  // namespace camal::tune
