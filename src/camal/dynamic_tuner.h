#ifndef CAMAL_CAMAL_DYNAMIC_TUNER_H_
#define CAMAL_CAMAL_DYNAMIC_TUNER_H_

#include <functional>
#include <vector>

#include "camal/sample.h"
#include "engine/storage_engine.h"
#include "workload/executor.h"
#include "workload/generator.h"
#include "workload/shift_detector.h"

namespace camal::tune {

class MemoryArbiter;

/// Produces a configuration for an (estimated) workload at a target system
/// scale. Model-backed tuners bind `ModelBackedTuner::RecommendFor`.
using RecommendFn = std::function<TuningConfig(const model::WorkloadSpec&,
                                               const model::SystemParams&)>;

/// \brief Dynamic system mode (Section 6): drives a live storage engine
/// through a changing operation stream, detecting workload shifts with
/// (p, tau) threshold detectors and lazily reconfiguring.
///
/// **Contract.** Because the stream keeps inserting new entries, the data
/// grows; the target scale passed to the recommender grows accordingly
/// (extrapolation strategy). The tuner is shard-aware: it keeps one
/// `ShiftDetector` per engine shard and retunes each shard independently,
/// from its *local* operation mix at its *local* data scale, through
/// `StorageEngine::ReconfigureShard`. On a single-shard engine (a bare
/// `lsm::LsmTree`) this degenerates to exactly the original one-detector,
/// whole-tree behavior. The tuner targets the abstract `StorageEngine`
/// surface only, so it drives the simulated and the real-IO backend
/// identically.
///
/// **Thread-safety.** Externally synchronized; `RunPhase` owns the engine
/// for its duration (engine-internal shard fan-out still applies).
///
/// **Determinism.** Batches are cut exactly at detector firings, so
/// retunes land at the op where op-at-a-time serving would place them;
/// on the simulated backend a phase is bit-reproducible at any engine
/// thread count. Detector decisions depend only on the op stream, so
/// reconfiguration points are deterministic on every backend.
class DynamicTuner {
 public:
  struct Params {
    /// Detector window p, in operations (per shard).
    size_t window_ops = 1000;
    /// Detector threshold tau on any operation fraction.
    double tau = 0.10;
  };

  DynamicTuner(RecommendFn recommend, const SystemSetup& base_setup,
               const Params& params);

  /// Runs `num_ops` operations of `spec` against `engine` through the
  /// batched `ExecuteOps` pipeline (batches are cut at detector firings so
  /// retunes land at exactly the op they would under op-at-a-time
  /// serving), reconfiguring any shard whose detector fires. Writes insert
  /// new keys so the data set grows across phases.
  workload::ExecutionResult RunPhase(engine::StorageEngine* engine,
                                     workload::KeySpace* keys,
                                     const model::WorkloadSpec& spec,
                                     size_t num_ops, uint64_t seed);

  /// Total reconfigurations across all shards.
  size_t reconfigurations() const;
  const TuningConfig& last_applied() const { return last_applied_; }

  /// Attaches (or detaches, with nullptr) a memory arbiter (not owned;
  /// must outlive its use). With an arbiter attached, arbitration rounds
  /// fire between detector-cut batches, and per-shard retunes price their
  /// recommendations at the shard's *arbitrated* budget instead of the
  /// scaled even share — budget redistribution and shape retuning
  /// compose. Detached (the default) is the exact pre-arbiter behavior.
  void set_arbiter(MemoryArbiter* arbiter) { arbiter_ = arbiter; }
  MemoryArbiter* arbiter() const { return arbiter_; }

  /// Sets the tenant-hotness skew (`SystemSetup::shard_skew`, Zipf over
  /// shard index) the *following* phases generate traffic with — the
  /// dynamic-drift knob: step it between phases to model tenant hotness
  /// drifting over a run. Writing the value already in effect changes
  /// nothing (the phase stream stays bit-identical), so a zero-drift
  /// driver that calls this every phase reproduces the fixed-skew run
  /// exactly.
  void set_phase_shard_skew(double skew) { base_setup_.shard_skew = skew; }
  double phase_shard_skew() const { return base_setup_.shard_skew; }

 private:
  /// Lazily sizes the per-shard detector array to the engine's shard
  /// count (the engine must not change between phases).
  void BindEngine(const engine::StorageEngine& engine);

  /// Retunes shard `s` from its detector's last-window mix at its current
  /// local scale.
  void RetuneShard(engine::StorageEngine* engine, size_t s,
                   const model::WorkloadSpec& stream_spec);

  RecommendFn recommend_;
  SystemSetup base_setup_;
  /// `base_setup_` divided across the bound engine's shards: the scale one
  /// shard serves, used to price shard-local recommendations.
  SystemSetup shard_setup_;
  Params params_;
  std::vector<workload::ShiftDetector> detectors_;
  TuningConfig last_applied_;
  MemoryArbiter* arbiter_ = nullptr;
};

}  // namespace camal::tune

#endif  // CAMAL_CAMAL_DYNAMIC_TUNER_H_
