#ifndef CAMAL_CAMAL_DYNAMIC_TUNER_H_
#define CAMAL_CAMAL_DYNAMIC_TUNER_H_

#include <functional>

#include "camal/sample.h"
#include "lsm/lsm_tree.h"
#include "workload/executor.h"
#include "workload/generator.h"
#include "workload/shift_detector.h"

namespace camal::tune {

/// Produces a configuration for an (estimated) workload at a target system
/// scale. Model-backed tuners bind `ModelBackedTuner::RecommendFor`.
using RecommendFn = std::function<TuningConfig(const model::WorkloadSpec&,
                                               const model::SystemParams&)>;

/// Dynamic system mode (Section 6): drives a live LSM-tree through a
/// changing operation stream, detecting workload shifts with a (p, tau)
/// threshold detector and lazily reconfiguring the tree. Because the
/// stream keeps inserting new entries, the data grows; the target scale
/// passed to the recommender grows accordingly (extrapolation strategy).
class DynamicTuner {
 public:
  struct Params {
    /// Detector window p, in operations.
    size_t window_ops = 1000;
    /// Detector threshold tau on any operation fraction.
    double tau = 0.10;
  };

  DynamicTuner(RecommendFn recommend, const SystemSetup& base_setup,
               const Params& params);

  /// Runs `num_ops` operations of `spec` against `tree`, reconfiguring
  /// whenever the detector fires. Writes insert new keys so the data set
  /// grows across phases.
  workload::ExecutionResult RunPhase(lsm::LsmTree* tree,
                                     workload::KeySpace* keys,
                                     const model::WorkloadSpec& spec,
                                     size_t num_ops, uint64_t seed);

  size_t reconfigurations() const { return detector_.reconfigurations(); }
  const TuningConfig& last_applied() const { return last_applied_; }

 private:
  RecommendFn recommend_;
  SystemSetup base_setup_;
  Params params_;
  workload::ShiftDetector detector_;
  TuningConfig last_applied_;
};

}  // namespace camal::tune

#endif  // CAMAL_CAMAL_DYNAMIC_TUNER_H_
