#ifndef CAMAL_CAMAL_DYNAMIC_TUNER_H_
#define CAMAL_CAMAL_DYNAMIC_TUNER_H_

#include <functional>
#include <map>
#include <vector>

#include "camal/sample.h"
#include "engine/storage_engine.h"
#include "workload/executor.h"
#include "workload/generator.h"
#include "workload/shift_detector.h"

namespace camal::tune {

class MemoryArbiter;

/// Produces a configuration for an (estimated) workload at a target system
/// scale. Model-backed tuners bind `ModelBackedTuner::RecommendFor`.
using RecommendFn = std::function<TuningConfig(const model::WorkloadSpec&,
                                               const model::SystemParams&)>;

/// Knobs of online configuration racing (timed-window candidate racing
/// with hysteresis). Racing replaces "trust the model's pick" with
/// "measure the model's pick against the incumbent on live traffic":
/// when a shard's detector fires, the tuner races a small candidate set
/// through measured windows of the shard's own operation stream and
/// hot-swaps to the observed winner — only if it beats the incumbent by
/// a sustained margin.
struct RacingOptions {
  /// Off (the default) is the exact pre-racing dynamic tuner: detector
  /// fires apply the recommendation immediately.
  bool enabled = false;
  /// Maximum candidates raced per shard: the incumbent, the model's
  /// recommendation, and a shape perturbation of it (deduplicated, so a
  /// race may hold fewer).
  int candidates = 3;
  /// Measured operations each candidate serves per window — the race's
  /// minimum-window floor. Windows are cut on the shard's *measured* op
  /// count (engine op-cost profiler), so idle shards never advance.
  size_t window_ops = 512;
  /// Full rotations through the candidate set before settling (each
  /// candidate accumulates this many windows of measurement).
  int min_rounds = 2;
  /// Hysteresis: a challenger must beat the incumbent's measured ios/op
  /// by at least this fraction to be adopted; anything less settles back
  /// to the incumbent (switching has a cost, flapping has a bigger one).
  double min_improvement = 0.05;
};

/// \brief Dynamic system mode (Section 6): drives a live storage engine
/// through a changing operation stream, detecting workload shifts with
/// (p, tau) threshold detectors and lazily reconfiguring.
///
/// **Contract.** Because the stream keeps inserting new entries, the data
/// grows; the target scale passed to the recommender grows accordingly
/// (extrapolation strategy). The tuner is shard-aware: it keeps one
/// `ShiftDetector` per engine shard and retunes each shard independently,
/// from its *local* operation mix at its *local* data scale, through
/// `StorageEngine::ReconfigureShard`. On a single-shard engine (a bare
/// `lsm::LsmTree`) this degenerates to exactly the original one-detector,
/// whole-tree behavior. The tuner targets the abstract `StorageEngine`
/// surface only, so it drives the simulated and the real-IO backend
/// identically.
///
/// **Thread-safety.** Externally synchronized; `RunPhase` owns the engine
/// for its duration (engine-internal shard fan-out still applies).
///
/// **Determinism.** Batches are cut exactly at detector firings, so
/// retunes land at the op where op-at-a-time serving would place them;
/// on the simulated backend a phase is bit-reproducible at any engine
/// thread count. Detector decisions depend only on the op stream, so
/// reconfiguration points are deterministic on every backend.
class DynamicTuner {
 public:
  struct Params {
    /// Detector window p, in operations (per shard).
    size_t window_ops = 1000;
    /// Detector threshold tau on any operation fraction.
    double tau = 0.10;
  };

  DynamicTuner(RecommendFn recommend, const SystemSetup& base_setup,
               const Params& params);

  /// Runs `num_ops` operations of `spec` against `engine` through the
  /// batched `ExecuteOps` pipeline (batches are cut at detector firings so
  /// retunes land at exactly the op they would under op-at-a-time
  /// serving), reconfiguring any shard whose detector fires. Writes insert
  /// new keys so the data set grows across phases.
  workload::ExecutionResult RunPhase(engine::StorageEngine* engine,
                                     workload::KeySpace* keys,
                                     const model::WorkloadSpec& spec,
                                     size_t num_ops, uint64_t seed);

  /// Total reconfigurations across all shards.
  size_t reconfigurations() const;
  const TuningConfig& last_applied() const { return last_applied_; }

  /// Attaches (or detaches, with nullptr) a memory arbiter (not owned;
  /// must outlive its use). With an arbiter attached, arbitration rounds
  /// fire between detector-cut batches, and per-shard retunes price their
  /// recommendations at the shard's *arbitrated* budget instead of the
  /// scaled even share — budget redistribution and shape retuning
  /// compose. Detached (the default) is the exact pre-arbiter behavior.
  void set_arbiter(MemoryArbiter* arbiter) { arbiter_ = arbiter; }
  MemoryArbiter* arbiter() const { return arbiter_; }

  /// Sets the tenant-hotness skew (`SystemSetup::shard_skew`, Zipf over
  /// shard index) the *following* phases generate traffic with — the
  /// dynamic-drift knob: step it between phases to model tenant hotness
  /// drifting over a run. Writing the value already in effect changes
  /// nothing (the phase stream stays bit-identical), so a zero-drift
  /// driver that calls this every phase reproduces the fixed-skew run
  /// exactly.
  void set_phase_shard_skew(double skew) { base_setup_.shard_skew = skew; }
  double phase_shard_skew() const { return base_setup_.shard_skew; }

  /// Enables/configures online config racing. With racing on, a detector
  /// fire on a *materialized* shard starts a race instead of applying the
  /// recommendation directly: the incumbent, the recommendation, and a
  /// perturbed variant rotate through measured windows of the shard's
  /// live traffic, and the shard settles on the measured-ios/op winner
  /// (hysteresis: a challenger needs `min_improvement` over the
  /// incumbent). Cold and hibernated shards never race — a fire on one
  /// applies the recommendation directly, as without racing — and a race
  /// paused by mid-race hibernation simply resumes with the shard's
  /// traffic (windows advance on measured ops only). A fresh fire on a
  /// racing shard abandons the stale race and starts over with fresh
  /// candidates (the shift made its measurements unrepresentative).
  void set_racing(const RacingOptions& racing) { racing_ = racing; }
  const RacingOptions& racing() const { return racing_; }

  /// Racing observability: races started, settles that switched away
  /// from the incumbent, settles the hysteresis held at the incumbent,
  /// and races currently running.
  size_t races_started() const { return races_started_; }
  size_t race_switches() const { return race_switches_; }
  size_t race_holds() const { return race_holds_; }
  size_t active_races() const { return races_.size(); }

 private:
  /// One candidate's accumulated measured windows.
  struct RaceCandidate {
    TuningConfig config;
    uint64_t ops = 0;
    uint64_t ios = 0;
    double latency_ns = 0.0;
  };

  /// A running race on one shard. The baseline fields snapshot the
  /// shard's profiler totals at the current window's start; the window
  /// closes when measured ops advance by `RacingOptions::window_ops`.
  struct ShardRace {
    std::vector<RaceCandidate> candidates;
    size_t incumbent = 0;
    size_t current = 0;
    int rounds = 0;
    uint64_t base_ops = 0;
    uint64_t base_ios = 0;
    double base_latency_ns = 0.0;
  };

  /// Starts (or restarts) a race on shard `s` between the shard's live
  /// incumbent, `recommended`, and a perturbation of it. Degenerate
  /// candidate sets (everything deduplicates to the incumbent) apply
  /// `recommended` directly instead.
  void StartRace(engine::StorageEngine* engine, size_t s,
                 const TuningConfig& recommended);

  /// Advances every running race from the engine's measured op-cost
  /// windows: closes full windows, rotates candidates, settles races
  /// that completed `min_rounds` rotations.
  void AdvanceRaces(engine::StorageEngine* engine);

  /// Applies a race candidate to shard `s`, rescaling its memory to the
  /// shard's arbitrated budget when an arbiter is attached (racing owns
  /// the *shape*, the arbiter owns the budget — the two compose).
  void ApplyRaceConfig(engine::StorageEngine* engine, size_t s,
                       const TuningConfig& c);
  /// Lazily sizes the per-shard detector array to the engine's shard
  /// count (the engine must not change between phases).
  void BindEngine(const engine::StorageEngine& engine);

  /// Retunes shard `s` from its detector's last-window mix at its current
  /// local scale.
  void RetuneShard(engine::StorageEngine* engine, size_t s,
                   const model::WorkloadSpec& stream_spec);

  RecommendFn recommend_;
  SystemSetup base_setup_;
  /// `base_setup_` divided across the bound engine's shards: the scale one
  /// shard serves, used to price shard-local recommendations.
  SystemSetup shard_setup_;
  Params params_;
  std::vector<workload::ShiftDetector> detectors_;
  TuningConfig last_applied_;
  MemoryArbiter* arbiter_ = nullptr;
  RacingOptions racing_;
  /// Running races, keyed by shard (ascending iteration keeps rotation
  /// order deterministic).
  std::map<size_t, ShardRace> races_;
  size_t races_started_ = 0;
  size_t race_switches_ = 0;
  size_t race_holds_ = 0;
};

}  // namespace camal::tune

#endif  // CAMAL_CAMAL_DYNAMIC_TUNER_H_
