#ifndef CAMAL_CAMAL_EVALUATOR_H_
#define CAMAL_CAMAL_EVALUATOR_H_

#include <cstdint>

#include "camal/sample.h"
#include "model/workload_spec.h"

namespace camal::tune {

/// What one measurement run produced.
struct Measurement {
  double mean_latency_ns = 0.0;
  double p90_latency_ns = 0.0;
  double ios_per_op = 0.0;
  /// Simulated time of the initial data ingestion.
  double build_ns = 0.0;
  /// Simulated time of the query phase.
  double run_ns = 0.0;
  /// build_ns + run_ns — the cost of obtaining this measurement.
  double total_cost_ns = 0.0;
};

/// Runs (workload, config) pairs on fresh LSM-tree instances and measures
/// simulated latency/IO — the "execute database instance" step of
/// Algorithm 2.
class Evaluator {
 public:
  explicit Evaluator(const SystemSetup& setup) : setup_(setup) {}

  /// Builds a fresh tree with `config`, ingests N entries, runs `num_ops`
  /// operations of `workload`, and reports the measurements. `salt`
  /// diversifies the noise/query seed between repeated measurements.
  Measurement Measure(const model::WorkloadSpec& workload,
                      const TuningConfig& config, size_t num_ops,
                      uint64_t salt) const;

  /// Measures with `setup().train_ops` operations and wraps the result as a
  /// training sample.
  Sample MakeSample(const model::WorkloadSpec& workload,
                    const TuningConfig& config, uint64_t salt) const;

  /// Measures with `setup().eval_ops` operations (final evaluation).
  Measurement Evaluate(const model::WorkloadSpec& workload,
                       const TuningConfig& config, uint64_t salt = 0) const;

  const SystemSetup& setup() const { return setup_; }

 private:
  SystemSetup setup_;
};

}  // namespace camal::tune

#endif  // CAMAL_CAMAL_EVALUATOR_H_
