#ifndef CAMAL_CAMAL_EVALUATOR_H_
#define CAMAL_CAMAL_EVALUATOR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "camal/sample.h"
#include "model/workload_spec.h"

namespace camal::util {
class ThreadPool;
}  // namespace camal::util

namespace camal::tune {

/// What one measurement run produced. In closed-loop mode the latency
/// metrics are pure engine service times; in gateway mode
/// (`SystemSetup::serve_mode`) they are end-to-end (queueing + service)
/// and the two gateway-only fields become meaningful.
struct Measurement {
  double mean_latency_ns = 0.0;
  double p90_latency_ns = 0.0;
  double p99_latency_ns = 0.0;
  double ios_per_op = 0.0;
  /// Simulated time of the initial data ingestion.
  double build_ns = 0.0;
  /// Simulated time of the query phase.
  double run_ns = 0.0;
  /// build_ns + run_ns — the cost of obtaining this measurement.
  double total_cost_ns = 0.0;
  /// Fraction of submitted requests shed by admission control or rate
  /// limits (gateway mode; 0 in closed loop, where nothing is shed).
  double shed_rate = 0.0;
  /// p99 of queueing delay alone (gateway mode; 0 in closed loop).
  double queue_p99_ns = 0.0;
  /// Measured-vs-predicted per-op I/O by cost channel: `*_predicted` is
  /// the closed-form model's expected I/Os per operation at this
  /// (workload, config); `*_measured` comes from the engine's op-cost
  /// profiler windows over the query phase (point = lookups, range =
  /// scans, write = puts + deletes); `*_residual` = measured − predicted.
  /// The sim-vs-model gap a calibration pass learns (`ResidualCorrector`).
  /// Measured and residual are 0 for a channel that served no ops.
  double point_ios_predicted = 0.0;
  double point_ios_measured = 0.0;
  double point_ios_residual = 0.0;
  double range_ios_predicted = 0.0;
  double range_ios_measured = 0.0;
  double range_ios_residual = 0.0;
  double write_ios_predicted = 0.0;
  double write_ios_measured = 0.0;
  double write_ios_residual = 0.0;
  /// Wall-clock ns of a crash-free recovery of the measured file set —
  /// close cleanly, then reopen with manifest replay + WAL tail replay
  /// (no run rebuilds). Only populated when
  /// `SystemSetup::measure_recovery` is on; 0 otherwise. Real time, not
  /// simulated: it varies run to run like every file-backend latency.
  double recovery_ns = 0.0;
};

/// One (workload, config, salt) measurement request for batched
/// evaluation.
struct EvalJob {
  model::WorkloadSpec workload;
  TuningConfig config;
  uint64_t salt = 0;
};

/// Runs (workload, config) pairs on fresh serving-engine instances and
/// measures simulated latency/IO — the "execute database instance" step of
/// Algorithm 2. Instances are `engine::ShardedEngine`s with
/// `setup.num_shards` partitions (1 shard is bit-identical to a bare
/// tree).
///
/// Every measurement builds its own engine/device(s)/generator from
/// deterministic seeds, so distinct measurements are independent and the
/// batch entry points below may fan them across a ThreadPool without
/// changing any result.
class Evaluator {
 public:
  /// When `setup.engine_threads` != 1, the evaluator owns a worker pool
  /// that every engine it builds fans `ExecuteOps` batches across
  /// (shard-level parallelism). Measurements fanned across a *job-level*
  /// pool are unaffected: nested engine fan-out runs inline on pool
  /// workers, so the knob buys wall-clock exactly when job-level
  /// parallelism is exhausted. Results are bit-identical either way.
  explicit Evaluator(const SystemSetup& setup);

  /// Builds a fresh tree with `config`, ingests N entries, runs `num_ops`
  /// operations of `workload`, and reports the measurements. `salt`
  /// diversifies the noise/query seed between repeated measurements.
  Measurement Measure(const model::WorkloadSpec& workload,
                      const TuningConfig& config, size_t num_ops,
                      uint64_t salt) const;

  /// Measures with `setup().train_ops` operations and wraps the result as a
  /// training sample.
  Sample MakeSample(const model::WorkloadSpec& workload,
                    const TuningConfig& config, uint64_t salt) const;

  /// Measures with `setup().eval_ops` operations (final evaluation).
  Measurement Evaluate(const model::WorkloadSpec& workload,
                       const TuningConfig& config, uint64_t salt = 0) const;

  /// Batched MakeSample over `configs`, where configs[i] uses salt
  /// `first_salt + i` — exactly the salts a serial loop over MakeSample
  /// would consume. Results are returned in config order, so the output is
  /// bit-identical for any `pool` (including none).
  std::vector<Sample> MakeSamples(const model::WorkloadSpec& workload,
                                  const std::vector<TuningConfig>& configs,
                                  uint64_t first_salt,
                                  util::ThreadPool* pool = nullptr) const;

  /// Batched Evaluate over independent jobs; results in job order,
  /// bit-identical for any `pool`.
  std::vector<Measurement> EvaluateBatch(const std::vector<EvalJob>& jobs,
                                         util::ThreadPool* pool = nullptr) const;

  const SystemSetup& setup() const { return setup_; }

  /// The engine-level pool (nullptr when `engine_threads` == 1).
  util::ThreadPool* engine_pool() const { return engine_pool_.get(); }

 private:
  SystemSetup setup_;
  /// Shared so the Evaluator stays copyable (tuners copy their setup's
  /// evaluator); engines only borrow the pointer for one measurement.
  std::shared_ptr<util::ThreadPool> engine_pool_;
};

}  // namespace camal::tune

#endif  // CAMAL_CAMAL_EVALUATOR_H_
