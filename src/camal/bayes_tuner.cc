#include "camal/bayes_tuner.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "camal/plain_al_tuner.h"
#include "model/optimum.h"

namespace camal::tune {

BayesOptTuner::BayesOptTuner(const SystemSetup& full_setup,
                             const TunerOptions& options)
    : ModelBackedTuner(full_setup, options) {}

std::vector<double> BayesOptTuner::GpFeatures(
    const TuningConfig& c, const model::SystemParams& sys) const {
  return {
      c.size_ratio,
      c.mf_bits / sys.num_entries,
      c.mc_bits / sys.total_memory_bits,
      c.policy == lsm::CompactionPolicy::kTiering ? 1.0 : 0.0,
      static_cast<double>(c.runs_per_level),
  };
}

void BayesOptTuner::Train(const std::vector<model::WorkloadSpec>& workloads) {
  const model::SystemParams sys = train_setup_.ToModelParams();
  const model::CostModel cm(sys);
  const double t_lim = std::floor(cm.SizeRatioLimit());
  const double m = sys.total_memory_bits;
  const double min_buf = model::MinBufferBits(sys);
  const double max_bpk =
      std::clamp((m - min_buf) / sys.num_entries, 0.0, 16.0);
  const int init_samples = std::min(3, options_.budget_per_workload);

  auto random_config = [&]() {
    TuningConfig c;
    c.policy = options_.tune_policy
                   ? (rng_.Bernoulli(0.5) ? lsm::CompactionPolicy::kLeveling
                                          : lsm::CompactionPolicy::kTiering)
                   : options_.policy;
    c.size_ratio = 2.0 + std::floor(rng_.NextDouble() * (t_lim - 1.0));
    if (options_.tune_mc) c.mc_bits = rng_.NextDouble() * 0.4 * m;
    c.mf_bits = std::clamp(rng_.NextDouble() * max_bpk * sys.num_entries, 0.0,
                           m - c.mc_bits - min_buf);
    c.mb_bits = m - c.mf_bits - c.mc_bits;
    return c;
  };

  for (const model::WorkloadSpec& w : workloads) {
    // Per-workload GP over configuration features only: Bayesian
    // optimization "explores each workload independently, without
    // utilizing information from other workloads" (Section 8.2).
    std::vector<TuningConfig> queried;
    std::vector<std::vector<double>> gp_x;
    std::vector<double> gp_y;

    // Random init configurations are drawn serially (they consume rng_)
    // and evaluated as one parallel batch; the acquisition loop below is
    // inherently sequential (each query depends on the refit GP).
    for (int i = 0; i < init_samples; ++i) {
      queried.push_back(random_config());
    }
    const size_t batch_begin = CollectSamples(w, queried);
    for (int i = 0; i < init_samples; ++i) {
      const Sample& s = samples_[batch_begin + static_cast<size_t>(i)];
      gp_x.push_back(GpFeatures(queried[static_cast<size_t>(i)], sys));
      gp_y.push_back(ObjectiveValue(s, options_.objective) / 1000.0);
    }

    for (int round = init_samples; round < options_.budget_per_workload;
         ++round) {
      ml::GaussianProcess gp;
      gp.Fit(gp_x, gp_y);
      const double best_y = *std::min_element(gp_y.begin(), gp_y.end());

      const std::vector<TuningConfig> grid = CandidateGrid(w, sys);
      TuningConfig next = grid.front();
      double best_ei = -1.0;
      for (const TuningConfig& c : grid) {
        bool seen = false;
        for (const TuningConfig& a : queried) {
          if (SameConfig(a, c)) {
            seen = true;
            break;
          }
        }
        if (seen) continue;
        const auto [mean, var] = gp.PredictMeanVar(GpFeatures(c, sys));
        const double ei = ml::ExpectedImprovement(mean, var, best_y);
        if (ei > best_ei) {
          best_ei = ei;
          next = c;
        }
      }
      const Sample& s = CollectSample(w, next);
      queried.push_back(next);
      gp_x.push_back(GpFeatures(next, sys));
      gp_y.push_back(ObjectiveValue(s, options_.objective) / 1000.0);
    }
    RefitModel();
    Checkpoint();
  }
}

}  // namespace camal::tune
