#include "camal/residual_corrector.h"

#include <algorithm>

#include "util/status.h"

namespace camal::tune {

namespace {
size_t ChannelIndex(model::CostChannel channel) {
  const size_t i = static_cast<size_t>(channel);
  CAMAL_CHECK(i < model::kNumCostChannels);
  return i;
}
}  // namespace

ResidualCorrector::ResidualCorrector(const ResidualCorrectorOptions& options)
    : options_(options) {}

void ResidualCorrector::Observe(model::CostChannel channel, double predicted,
                                double measured) {
  Channel& ch = channels_[ChannelIndex(channel)];
  ch.x.push_back({predicted});
  ch.y.push_back(measured);
}

void ResidualCorrector::Fit() {
  for (size_t i = 0; i < channels_.size(); ++i) {
    Channel& ch = channels_[i];
    if (ch.x.size() < options_.min_observations) {
      ch.model.reset();  // under-observed: stay/revert to the identity
      continue;
    }
    // A fresh regressor per fit keeps the result a pure function of
    // (observations, seed) — refitting after more observations cannot
    // depend on the previous fit's internal state.
    ch.model = MakeModel(options_.model_kind, options_.seed * 31 + i);
    ch.model->Fit(ch.x, ch.y);
  }
}

double ResidualCorrector::Correct(model::CostChannel channel,
                                  double predicted) const {
  const Channel& ch = channels_[ChannelIndex(channel)];
  if (ch.model == nullptr || !ch.model->fitted()) return predicted;
  return std::max(0.0, ch.model->Predict({predicted}));
}

bool ResidualCorrector::fitted(model::CostChannel channel) const {
  const Channel& ch = channels_[ChannelIndex(channel)];
  return ch.model != nullptr && ch.model->fitted();
}

size_t ResidualCorrector::observations(model::CostChannel channel) const {
  return channels_[ChannelIndex(channel)].x.size();
}

}  // namespace camal::tune
