#ifndef CAMAL_CAMAL_RESIDUAL_CORRECTOR_H_
#define CAMAL_CAMAL_RESIDUAL_CORRECTOR_H_

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "camal/sample.h"
#include "ml/regressor.h"
#include "model/cost_corrector.h"

namespace camal::tune {

/// Knobs of the measured-cost residual corrector.
struct ResidualCorrectorOptions {
  /// Regressor family of the per-channel predicted→measured maps (the
  /// same families CAMAL's latency model uses; see `MakeModel`).
  ModelKind model_kind = ModelKind::kTrees;
  /// Seed of the per-channel regressors (each channel derives its own
  /// stream from it, so fits are deterministic given the observations).
  uint64_t seed = 1;
  /// Observations a channel needs before `Fit` trains it; below the
  /// floor the channel stays the identity (one point cannot say whether
  /// the model is biased or the measurement was noise).
  size_t min_observations = 2;
};

/// Learns, per cost channel, the mapping from the closed-form model's
/// predicted per-op I/O cost to the cost the live engine actually
/// measured — the residual between simulation and reality. Feed it
/// (predicted, measured) pairs harvested from the engine's op-cost
/// profiler windows (`engine::StorageEngine::ShardOpCostWindow`), call
/// `Fit`, and attach it to any `CostModel` (directly, through
/// `CalibratedCostModel`, or via `TunerOptions::cost_corrector`): every
/// objective minimized over that model then optimizes *measured* cost.
///
/// Unfitted channels are the identity, so a freshly constructed (or
/// under-observed) corrector is bit-identical to no corrector at all.
/// `Correct` is const and pure; `Observe`/`Fit` are externally
/// synchronized like everything else in the tuning layer.
class ResidualCorrector : public model::CostCorrector {
 public:
  explicit ResidualCorrector(const ResidualCorrectorOptions& options = {});

  /// Records one (predicted, measured) per-op-cost pair for `channel`.
  void Observe(model::CostChannel channel, double predicted, double measured);

  /// Trains every channel holding at least `min_observations` pairs;
  /// channels below the floor stay (or revert to) the identity.
  /// Deterministic: the fit depends only on the observation sequence and
  /// the options seed. Callable repeatedly as observations accumulate.
  void Fit();

  /// CostCorrector: the channel regressor's prediction clamped to >= 0
  /// (a corrected cost is still a cost); identity while unfitted.
  double Correct(model::CostChannel channel, double predicted) const override;

  bool fitted(model::CostChannel channel) const;
  size_t observations(model::CostChannel channel) const;

  const ResidualCorrectorOptions& options() const { return options_; }

 private:
  struct Channel {
    std::vector<std::vector<double>> x;
    std::vector<double> y;
    std::unique_ptr<ml::Regressor> model;
  };

  ResidualCorrectorOptions options_;
  std::array<Channel, model::kNumCostChannels> channels_;
};

}  // namespace camal::tune

#endif  // CAMAL_CAMAL_RESIDUAL_CORRECTOR_H_
