#include "lsm/version.h"

namespace camal::lsm {

const std::vector<RunPtr> Levels::kEmpty;

std::vector<RunPtr>& Levels::At(size_t i) {
  if (i >= levels_.size()) levels_.resize(i + 1);
  return levels_[i];
}

const std::vector<RunPtr>& Levels::At(size_t i) const {
  if (i >= levels_.size()) return kEmpty;
  return levels_[i];
}

uint64_t Levels::LevelEntries(size_t i) const {
  uint64_t n = 0;
  for (const RunPtr& run : At(i)) n += run->size();
  return n;
}

uint64_t Levels::TotalEntries() const {
  uint64_t n = 0;
  for (size_t i = 0; i < levels_.size(); ++i) n += LevelEntries(i);
  return n;
}

int Levels::DeepestNonEmpty() const {
  for (int i = static_cast<int>(levels_.size()) - 1; i >= 0; --i) {
    if (!levels_[static_cast<size_t>(i)].empty()) return i;
  }
  return -1;
}

std::vector<uint64_t> Levels::EntryCounts() const {
  std::vector<uint64_t> counts(levels_.size(), 0);
  for (size_t i = 0; i < levels_.size(); ++i) counts[i] = LevelEntries(i);
  return counts;
}

std::vector<size_t> Levels::RunCounts() const {
  std::vector<size_t> counts(levels_.size(), 0);
  for (size_t i = 0; i < levels_.size(); ++i) counts[i] = levels_[i].size();
  return counts;
}

}  // namespace camal::lsm
