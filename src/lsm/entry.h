#ifndef CAMAL_LSM_ENTRY_H_
#define CAMAL_LSM_ENTRY_H_

#include <cstdint>

namespace camal::lsm {

/// One key-value record. The logical on-disk footprint of an entry is
/// `Options::entry_bytes`; the in-memory representation stores only the key,
/// a value word (enough to verify correctness in tests), and a tombstone
/// flag for deletes.
struct Entry {
  uint64_t key = 0;
  uint64_t value = 0;
  bool tombstone = false;
};

inline bool operator==(const Entry& a, const Entry& b) {
  return a.key == b.key && a.value == b.value && a.tombstone == b.tombstone;
}

}  // namespace camal::lsm

#endif  // CAMAL_LSM_ENTRY_H_
