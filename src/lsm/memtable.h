#ifndef CAMAL_LSM_MEMTABLE_H_
#define CAMAL_LSM_MEMTABLE_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

#include "lsm/entry.h"
#include "sim/device.h"

namespace camal::lsm {

/// In-memory write buffer (paper Level 0). Keeps the freshest version of
/// each key; flushing drains it into a sorted run.
class Memtable {
 public:
  /// Inserts or overwrites `key`. Charges buffer-insert CPU.
  void Put(uint64_t key, uint64_t value, bool tombstone, sim::Device* device);

  /// Looks up `key`; returns true when present (including tombstones, which
  /// are reported through `out->tombstone`). Charges comparison CPU.
  bool Get(uint64_t key, Entry* out, sim::Device* device) const;

  /// Number of distinct buffered keys.
  size_t size() const { return table_.size(); }
  bool empty() const { return table_.empty(); }

  /// Removes and returns all entries in key order.
  std::vector<Entry> DrainSorted();

  /// Rebuilds the table from `entries` (sorted by key, as produced by
  /// `DrainSorted`), charging nothing: the restore half of shard
  /// hibernation, which must leave all cost clocks untouched.
  void LoadSorted(const std::vector<Entry>& entries);

  /// Appends buffered entries with key in [start_key, +inf), in key order,
  /// up to `max_entries`, into `out` (used by range scans; the caller merges
  /// with on-disk runs).
  void CollectFrom(uint64_t start_key, size_t max_entries,
                   std::vector<Entry>* out) const;

 private:
  std::map<uint64_t, Entry> table_;
};

}  // namespace camal::lsm

#endif  // CAMAL_LSM_MEMTABLE_H_
