#ifndef CAMAL_LSM_OPTIONS_H_
#define CAMAL_LSM_OPTIONS_H_

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "util/status.h"

namespace camal::lsm {

/// Merge policy of the tree (Figure 2 of the paper).
enum class CompactionPolicy {
  kLeveling,  ///< one sorted run per level; in-level merges on arrival
  kTiering,   ///< up to T runs per level; merged together when full
};

/// Tunable parameters of an LSM-tree instance — the configuration point `X`
/// that CAMAL searches over.
struct Options {
  /// Size ratio `T` between adjacent level capacities. Must be >= 2.
  double size_ratio = 10.0;
  /// Size of one key-value entry in bytes (`E`).
  uint64_t entry_bytes = 128;
  /// Memory allocated to the write buffer in bytes (`Mb`).
  uint64_t buffer_bytes = 64 * 1024;
  /// Total memory allocated to Bloom filters in bits (`Mf`), distributed
  /// across levels with the Monkey allocation.
  uint64_t bloom_bits = 8 * 50 * 1024;
  /// Memory allocated to the block cache in bytes (`Mc`).
  uint64_t block_cache_bytes = 0;
  /// Compaction policy.
  CompactionPolicy policy = CompactionPolicy::kLeveling;
  /// Extension knob `K`: maximum sorted runs per level. 0 derives the value
  /// from `policy` (1 for leveling, round(T) for tiering).
  int runs_per_level = 0;
  /// Extension knob: target SST file size in bytes; 0 keeps each sorted run
  /// in a single file.
  uint64_t file_bytes = 0;
  /// Extension knob: block reads kept in flight per shard on the real-IO
  /// backend's ring path (`FileEngine` with io_uring). 0 inherits the
  /// engine-wide `FileEngineConfig::io_queue_depth`; the simulated backend
  /// ignores it. Results and I/O counts are identical at any depth — only
  /// wall-clock changes — which is what makes it safely tunable.
  int io_queue_depth = 0;

  /// Entries that fit in the write buffer (Level 0 capacity).
  uint64_t BufferEntries() const {
    return std::max<uint64_t>(1, buffer_bytes / entry_bytes);
  }

  /// Entries per storage block (`B`).
  uint64_t EntriesPerBlock(uint64_t block_bytes) const {
    return std::max<uint64_t>(1, block_bytes / entry_bytes);
  }

  /// Effective maximum number of runs per level (`K`).
  int MaxRunsPerLevel() const {
    if (runs_per_level > 0) return runs_per_level;
    if (policy == CompactionPolicy::kLeveling) return 1;
    return std::max(2, static_cast<int>(std::llround(size_ratio)));
  }

  /// Capacity in entries of on-disk level `level_idx` (0-based; paper level
  /// `level_idx + 1`): `(Mb/E) * (T-1) * T^level_idx`.
  double LevelCapacityEntries(int level_idx) const {
    return static_cast<double>(BufferEntries()) * (size_ratio - 1.0) *
           std::pow(size_ratio, level_idx);
  }

  /// Number of on-disk levels needed for `n` total entries (Equation 1).
  int LevelsForEntries(uint64_t n) const {
    const double ratio =
        static_cast<double>(n) / static_cast<double>(BufferEntries()) + 1.0;
    const int l = static_cast<int>(
        std::ceil(std::log(ratio) / std::log(size_ratio) - 1e-9));
    return std::max(1, l);
  }

  util::Status Validate() const {
    if (size_ratio < 2.0) {
      return util::Status::InvalidArgument("size_ratio must be >= 2");
    }
    if (entry_bytes == 0) {
      return util::Status::InvalidArgument("entry_bytes must be positive");
    }
    if (buffer_bytes < entry_bytes) {
      return util::Status::InvalidArgument(
          "buffer must hold at least one entry");
    }
    if (runs_per_level < 0) {
      return util::Status::InvalidArgument("runs_per_level must be >= 0");
    }
    if (io_queue_depth < 0 || io_queue_depth > 1024) {
      return util::Status::InvalidArgument(
          "io_queue_depth must be in [0, 1024]");
    }
    return util::Status::Ok();
  }
};

}  // namespace camal::lsm

#endif  // CAMAL_LSM_OPTIONS_H_
