#ifndef CAMAL_LSM_VERSION_H_
#define CAMAL_LSM_VERSION_H_

#include <cstdint>
#include <vector>

#include "lsm/run.h"

namespace camal::lsm {

/// The on-disk shape of the tree: a stack of levels, each holding one or
/// more sorted runs ordered oldest-to-newest.
class Levels {
 public:
  /// Mutable access to level `i` (0-based = paper level i+1); grows the
  /// level vector on demand.
  std::vector<RunPtr>& At(size_t i);
  const std::vector<RunPtr>& At(size_t i) const;

  size_t NumLevels() const { return levels_.size(); }

  /// Entries stored in level `i` across all of its runs.
  uint64_t LevelEntries(size_t i) const;

  /// Entries across all levels (counting shadowed duplicates).
  uint64_t TotalEntries() const;

  /// Index of the deepest level holding at least one run; -1 when empty.
  int DeepestNonEmpty() const;

  /// Per-level entry counts, one slot per allocated level.
  std::vector<uint64_t> EntryCounts() const;

  /// Per-level run counts.
  std::vector<size_t> RunCounts() const;

 private:
  std::vector<std::vector<RunPtr>> levels_;
  static const std::vector<RunPtr> kEmpty;
};

}  // namespace camal::lsm

#endif  // CAMAL_LSM_VERSION_H_
