#ifndef CAMAL_LSM_RUN_H_
#define CAMAL_LSM_RUN_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "lsm/block_cache.h"
#include "lsm/bloom.h"
#include "lsm/entry.h"
#include "sim/device.h"

namespace camal::lsm {

/// One immutable sorted run (SSTable) made of fixed-size blocks with fence
/// pointers and an optional Bloom filter.
///
/// Block contents live in memory, but every block touched on the read path
/// is charged to the simulated device (through the block cache) and every
/// block written at construction time is charged as a sequential write.
class Run {
 public:
  enum class LookupOutcome {
    kFilteredOut,     ///< Bloom filter said no — zero I/O
    kNotFoundAfterIo,  ///< filter false positive; a block was read in vain
    kFound,           ///< entry located (may be a tombstone)
  };

  /// Builds a run from already-sorted, deduplicated `entries`.
  /// `entries_per_block` is B; `bloom_bits_per_key` sizes the filter
  /// (<= 0 builds no filter). `file_bytes` > 0 splits the run into that many
  /// logical SST files (affects per-lookup metadata CPU only).
  Run(uint64_t id, std::vector<Entry> entries, uint64_t entries_per_block,
      double bloom_bits_per_key, uint64_t entry_bytes, uint64_t file_bytes);

  Run(const Run&) = delete;
  Run& operator=(const Run&) = delete;

  /// Point lookup. Charges filter-probe CPU; on a filter pass, charges fence
  /// search CPU and one block access (cache or device).
  LookupOutcome Get(uint64_t key, Entry* out, sim::Device* device,
                    BlockCache* cache) const;

  /// Index of the first entry with key >= `key` (== size() when past end).
  /// Charges fence-pointer search CPU only; block access is charged as the
  /// caller iterates (see ChargeBlockAccess).
  size_t FirstGeq(uint64_t key, sim::Device* device) const;

  /// Charges the block containing entry `idx` as a read-path access
  /// (cache-aware). Used by range scans as their cursor advances.
  void ChargeBlockAccess(size_t idx, sim::Device* device,
                         BlockCache* cache) const;

  const std::vector<Entry>& entries() const { return entries_; }
  const Entry& entry(size_t idx) const { return entries_[idx]; }
  size_t size() const { return entries_.size(); }
  uint64_t id() const { return id_; }
  size_t num_blocks() const { return num_blocks_; }
  size_t num_files() const { return num_files_; }
  uint64_t min_key() const { return entries_.front().key; }
  uint64_t max_key() const { return entries_.back().key; }
  const BloomFilter& filter() const { return filter_; }

 private:
  size_t BlockOf(size_t idx) const { return idx / entries_per_block_; }

  uint64_t id_;
  std::vector<Entry> entries_;
  uint64_t entries_per_block_;
  size_t num_blocks_;
  size_t num_files_;
  BloomFilter filter_;
};

using RunPtr = std::shared_ptr<const Run>;

}  // namespace camal::lsm

#endif  // CAMAL_LSM_RUN_H_
