#ifndef CAMAL_LSM_BLOOM_H_
#define CAMAL_LSM_BLOOM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace camal::lsm {

/// Standard Bloom filter over 64-bit keys with double hashing.
///
/// A filter built with fewer than ~0.5 bits per key is degenerate and is
/// represented as "absent": `MayContain` always returns true and the filter
/// consumes no memory. This mirrors Monkey's behaviour of dropping filters
/// at the deepest levels when the memory budget runs out.
class BloomFilter {
 public:
  /// Creates an absent (always-true) filter.
  BloomFilter() = default;

  /// Creates a filter sized for `num_entries` keys at `bits_per_key` bits.
  BloomFilter(size_t num_entries, double bits_per_key);

  void Add(uint64_t key);

  /// Returns false only if `key` was definitely never added.
  bool MayContain(uint64_t key) const;

  double bits_per_key() const { return bits_per_key_; }
  size_t memory_bits() const { return num_bits_; }
  bool absent() const { return num_bits_ == 0; }

  /// Expected false-positive rate exp(-bpk * ln^2 2), clamped to [~0, 1].
  double TheoreticalFpr() const;

  // Serialization surface (shard hibernation snapshots): raw internal
  // state, enough to reconstruct a filter that answers every probe
  // identically.
  const std::vector<uint64_t>& words() const { return words_; }
  int num_hashes() const { return num_hashes_; }

  /// Reconstructs a filter from previously exported internals.
  static BloomFilter FromParts(std::vector<uint64_t> words, size_t num_bits,
                               int num_hashes, double bits_per_key) {
    BloomFilter f;
    f.words_ = std::move(words);
    f.num_bits_ = num_bits;
    f.num_hashes_ = num_hashes;
    f.bits_per_key_ = bits_per_key;
    return f;
  }

 private:
  std::vector<uint64_t> words_;
  size_t num_bits_ = 0;
  int num_hashes_ = 0;
  double bits_per_key_ = 0.0;
};

}  // namespace camal::lsm

#endif  // CAMAL_LSM_BLOOM_H_
