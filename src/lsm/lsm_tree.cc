#include "lsm/lsm_tree.h"

#include <algorithm>
#include <limits>

#include "lsm/compaction.h"
#include "lsm/monkey.h"
#include "util/status.h"

namespace camal::lsm {

namespace {
constexpr double kBloomBuildNsPerEntry = 30.0;
}  // namespace

LsmTree::LsmTree(const Options& options, sim::Device* device)
    : options_(options),
      device_(device),
      cache_(options.block_cache_bytes / device->config().block_bytes) {
  CAMAL_CHECK(options.Validate().ok());
}

LsmTree::LsmTree(FrozenTreeState state, sim::Device* device)
    : options_(state.options),
      device_(device),
      cache_(0),
      levels_(std::move(state.levels)),
      counters_(state.counters),
      next_run_id_(state.next_run_id),
      transition_active_(state.transition_active) {
  memtable_.LoadSorted(state.memtable);
  cache_.Restore(state.cache);
}

std::unique_ptr<FrozenTreeState> LsmTree::Freeze() {
  auto state = std::make_unique<FrozenTreeState>();
  state->total_entries = TotalEntries();
  state->disk_entries = DiskEntries();
  state->options = options_;
  state->memtable = memtable_.DrainSorted();
  state->levels = std::move(levels_);
  state->counters = counters_;
  state->cache = cache_.Freeze();
  state->next_run_id = next_run_id_;
  state->transition_active = transition_active_;
  return state;
}

void LsmTree::Put(uint64_t key, uint64_t value) {
  memtable_.Put(key, value, /*tombstone=*/false, device_);
  if (memtable_.size() >= options_.BufferEntries()) FlushMemtable();
}

void LsmTree::Delete(uint64_t key) {
  memtable_.Put(key, 0, /*tombstone=*/true, device_);
  if (memtable_.size() >= options_.BufferEntries()) FlushMemtable();
}

bool LsmTree::Get(uint64_t key, uint64_t* value) {
  Entry entry;
  if (memtable_.Get(key, &entry, device_)) {
    if (entry.tombstone) return false;
    if (value != nullptr) *value = entry.value;
    return true;
  }
  const int deepest = levels_.DeepestNonEmpty();
  for (int level = 0; level <= deepest; ++level) {
    const auto& runs = levels_.At(static_cast<size_t>(level));
    for (auto it = runs.rbegin(); it != runs.rend(); ++it) {  // newest first
      device_->ChargeCpu(device_->config().cpu_run_probe_ns);
      const Run::LookupOutcome outcome =
          (*it)->Get(key, &entry, device_, &cache_);
      if (outcome == Run::LookupOutcome::kFound) {
        if (entry.tombstone) return false;
        if (value != nullptr) *value = entry.value;
        return true;
      }
    }
  }
  return false;
}

size_t LsmTree::Scan(uint64_t start_key, size_t max_entries,
                     std::vector<Entry>* out) {
  if (max_entries == 0) return 0;
  const sim::DeviceConfig& cfg = device_->config();

  // Source 0 is the memtable (newest); then runs ordered newest-to-oldest.
  struct Cursor {
    const Run* run = nullptr;          // null for the memtable source
    std::vector<Entry> mem_entries;    // materialized memtable slice
    size_t idx = 0;
    size_t end = 0;
    int64_t last_block = -1;
  };
  std::vector<Cursor> cursors;

  {
    // Collect the full memtable tail: tombstones in it shadow run entries
    // arbitrarily far into the scan, so a max_entries-bounded slice could
    // miss live keys. The memtable holds at most BufferEntries() entries.
    Cursor mem;
    memtable_.CollectFrom(start_key, memtable_.size(), &mem.mem_entries);
    mem.end = mem.mem_entries.size();
    cursors.push_back(std::move(mem));
  }
  const int deepest = levels_.DeepestNonEmpty();
  for (int level = 0; level <= deepest; ++level) {
    const auto& runs = levels_.At(static_cast<size_t>(level));
    for (auto it = runs.rbegin(); it != runs.rend(); ++it) {
      Cursor c;
      c.run = it->get();
      device_->ChargeCpu(cfg.cpu_run_probe_ns);
      c.idx = c.run->FirstGeq(start_key, device_);
      c.end = c.run->size();
      cursors.push_back(std::move(c));
    }
  }

  auto key_at = [](const Cursor& c) {
    return c.run != nullptr ? c.run->entry(c.idx).key : c.mem_entries[c.idx].key;
  };
  auto entry_at = [](const Cursor& c) -> const Entry& {
    return c.run != nullptr ? c.run->entry(c.idx) : c.mem_entries[c.idx];
  };

  size_t added = 0;
  while (added < max_entries) {
    uint64_t min_key = std::numeric_limits<uint64_t>::max();
    bool any = false;
    for (const Cursor& c : cursors) {
      if (c.idx >= c.end) continue;
      const uint64_t k = key_at(c);
      if (!any || k < min_key) {
        min_key = k;
        any = true;
      }
    }
    if (!any) break;

    bool taken = false;
    for (Cursor& c : cursors) {
      if (c.idx >= c.end || key_at(c) != min_key) continue;
      device_->ChargeCpu(cfg.cpu_iter_next_ns);
      if (c.run != nullptr) {
        // Charge the block this entry lives in when the cursor enters it.
        const auto block =
            static_cast<int64_t>(c.idx / EntriesPerBlock());
        if (block != c.last_block) {
          c.run->ChargeBlockAccess(c.idx, device_, &cache_);
          c.last_block = block;
        }
      }
      if (!taken) {
        taken = true;
        const Entry& e = entry_at(c);
        if (!e.tombstone) {
          out->push_back(e);
          ++added;
        }
      }
      ++c.idx;
    }
  }
  return added;
}

void LsmTree::FlushMemtable() {
  if (memtable_.empty()) return;
  std::vector<Entry> entries = memtable_.DrainSorted();
  RunPtr run =
      BuildRun(std::move(entries), /*target_level=*/0, /*drained_level=*/-1);
  levels_.At(0).push_back(std::move(run));
  ++counters_.flushes;
  NormalizeFrom(0);
}

void LsmTree::Reconfigure(const Options& new_options) {
  CAMAL_CHECK(new_options.Validate().ok());
  CAMAL_CHECK(new_options.entry_bytes == options_.entry_bytes);
  options_ = new_options;
  cache_.Resize(new_options.block_cache_bytes /
                device_->config().block_bytes);
  transition_active_ = AnyLevelViolates(options_);
  // The structure morphs lazily: violations are resolved by the next
  // natural flush/compaction, not here. An over-full memtable flushes on
  // the next write.
}

RunPtr LsmTree::BuildRun(std::vector<Entry> entries, size_t target_level,
                         int drained_level) {
  CAMAL_CHECK(!entries.empty());
  const double bpk =
      BloomBpkForLevel(target_level, entries.size(), drained_level);
  const uint64_t per_block = EntriesPerBlock();
  const uint64_t n = entries.size();
  auto run = std::make_shared<const Run>(next_run_id_++, std::move(entries),
                                         per_block, bpk, options_.entry_bytes,
                                         options_.file_bytes);
  const uint64_t blocks = run->num_blocks();
  for (uint64_t b = 0; b < blocks; ++b) device_->WriteBlock();
  counters_.compaction_block_writes += blocks;
  device_->ChargeCpu(kBloomBuildNsPerEntry * static_cast<double>(n));
  device_->ChargeCpu(device_->config().cpu_file_finalize_ns *
                     static_cast<double>(run->num_files()));
  if (transition_active_) counters_.transition_ios += blocks;
  return run;
}

double LsmTree::BloomBpkForLevel(size_t target_level, uint64_t incoming,
                                 int drained_level) const {
  std::vector<uint64_t> counts = levels_.EntryCounts();
  if (counts.size() <= target_level) counts.resize(target_level + 1, 0);
  if (drained_level >= 0 &&
      static_cast<size_t>(drained_level) < counts.size()) {
    counts[static_cast<size_t>(drained_level)] = 0;
  }
  counts[target_level] += incoming;
  const std::vector<double> bpk =
      MonkeyAllocate(static_cast<double>(options_.bloom_bits), counts);
  return bpk[target_level];
}

void LsmTree::NormalizeFrom(size_t level_idx) {
  for (size_t i = level_idx;; ++i) {
    auto& runs = levels_.At(i);
    if (runs.empty()) break;

    const auto max_runs = static_cast<size_t>(options_.MaxRunsPerLevel());
    if (runs.size() > max_runs) {
      RunPtr merged = MergeLevelIntoRun(i, i);
      runs.clear();
      runs.push_back(std::move(merged));
    }

    const double cap = options_.LevelCapacityEntries(static_cast<int>(i));
    if (static_cast<double>(levels_.LevelEntries(i)) <= cap) break;

    // Push this level's data down one level.
    RunPtr moving;
    if (runs.size() == 1) {
      moving = runs.front();
    } else {
      moving = MergeLevelIntoRun(i, i + 1);
    }
    runs.clear();
    levels_.At(i + 1).push_back(std::move(moving));
  }
  if (transition_active_ && !AnyLevelViolates(options_)) {
    transition_active_ = false;
  }
}

RunPtr LsmTree::MergeLevelIntoRun(size_t level_idx, size_t output_level) {
  const auto& runs = levels_.At(level_idx);
  CAMAL_CHECK(!runs.empty());
  std::vector<RunPtr> newest_first(runs.rbegin(), runs.rend());

  uint64_t input_blocks = 0;
  uint64_t input_entries = 0;
  for (const RunPtr& run : newest_first) {
    input_blocks += run->num_blocks();
    input_entries += run->size();
  }
  for (uint64_t b = 0; b < input_blocks; ++b) device_->ReadBlockSequential();
  counters_.compaction_block_reads += input_blocks;
  if (transition_active_) counters_.transition_ios += input_blocks;
  device_->ChargeCpu(device_->config().cpu_entry_merge_ns *
                     static_cast<double>(input_entries));

  const bool bottommost =
      static_cast<int>(level_idx) >= levels_.DeepestNonEmpty() &&
      output_level >= level_idx;
  std::vector<Entry> merged = MergeRuns(newest_first, bottommost);
  ++counters_.merges;
  // Merging tombstones against each other can annihilate everything.
  if (merged.empty()) {
    merged.push_back(Entry{0, 0, true});
  }
  return BuildRun(std::move(merged), output_level,
                  static_cast<int>(level_idx));
}

bool LsmTree::LevelViolates(size_t idx, const Options& opts) const {
  const auto& runs = levels_.At(idx);
  if (runs.empty()) return false;
  if (runs.size() > static_cast<size_t>(opts.MaxRunsPerLevel())) return true;
  return static_cast<double>(levels_.LevelEntries(idx)) >
         opts.LevelCapacityEntries(static_cast<int>(idx));
}

bool LsmTree::AnyLevelViolates(const Options& opts) const {
  for (size_t i = 0; i < levels_.NumLevels(); ++i) {
    if (LevelViolates(i, opts)) return true;
  }
  return false;
}

}  // namespace camal::lsm
