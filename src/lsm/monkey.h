#ifndef CAMAL_LSM_MONKEY_H_
#define CAMAL_LSM_MONKEY_H_

#include <cstdint>
#include <vector>

namespace camal::lsm {

/// Monkey-style optimal Bloom memory allocation (Dayan et al., SIGMOD'17).
///
/// Distributes `total_bits` of Bloom filter memory across levels holding
/// `level_entries[i]` entries each so that the summed false-positive rate
/// is minimized. The optimum sets each level's FPR proportional to its
/// entry count (larger, deeper levels get higher FPR / fewer bits per key),
/// clamping to FPR = 1 (no filter) when the budget runs out.
///
/// Returns the bits-per-key for each level (0 for unfiltered levels).
/// Levels with zero entries receive 0 and do not consume memory.
std::vector<double> MonkeyAllocate(double total_bits,
                                   const std::vector<uint64_t>& level_entries);

/// Sum over levels of the expected false-positive rate implied by a Monkey
/// allocation — the expected wasted I/Os of a zero-result point lookup with
/// one run per level.
double MonkeyZeroResultIoCost(double total_bits,
                              const std::vector<uint64_t>& level_entries);

}  // namespace camal::lsm

#endif  // CAMAL_LSM_MONKEY_H_
