#include "lsm/compaction.h"

#include <cstdint>
#include <limits>

namespace camal::lsm {

std::vector<Entry> MergeRuns(const std::vector<RunPtr>& newest_first,
                             bool drop_tombstones) {
  std::vector<size_t> cursor(newest_first.size(), 0);
  std::vector<Entry> out;
  uint64_t total = 0;
  for (const RunPtr& run : newest_first) total += run->size();
  out.reserve(total);

  for (;;) {
    uint64_t min_key = std::numeric_limits<uint64_t>::max();
    bool any = false;
    for (size_t s = 0; s < newest_first.size(); ++s) {
      if (cursor[s] >= newest_first[s]->size()) continue;
      const uint64_t k = newest_first[s]->entry(cursor[s]).key;
      if (!any || k < min_key) {
        min_key = k;
        any = true;
      }
    }
    if (!any) break;

    bool taken = false;
    for (size_t s = 0; s < newest_first.size(); ++s) {
      if (cursor[s] >= newest_first[s]->size()) continue;
      const Entry& e = newest_first[s]->entry(cursor[s]);
      if (e.key != min_key) continue;
      if (!taken) {
        taken = true;
        if (!(drop_tombstones && e.tombstone)) out.push_back(e);
      }
      ++cursor[s];
    }
  }
  return out;
}

}  // namespace camal::lsm
