#ifndef CAMAL_LSM_BLOCK_CACHE_H_
#define CAMAL_LSM_BLOCK_CACHE_H_

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

namespace camal::lsm {

/// LRU block cache keyed by (run id, block index).
///
/// Only caches read-path block accesses; compaction I/O bypasses the cache,
/// matching the paper's direct-I/O RocksDB setup where compactions do not
/// pollute the block cache.
class BlockCache {
 public:
  /// `capacity_blocks` = Mc / block size; 0 disables caching.
  explicit BlockCache(uint64_t capacity_blocks = 0);

  BlockCache(const BlockCache&) = delete;
  BlockCache& operator=(const BlockCache&) = delete;

  /// Composes a cache key from a run id and a block index within the run.
  static uint64_t MakeKey(uint64_t run_id, uint64_t block_idx) {
    return (run_id << 22) | (block_idx & ((1ULL << 22) - 1));
  }

  /// Returns true on hit (and promotes the block to most-recently-used).
  bool Lookup(uint64_t key);

  /// Inserts a block, evicting the least-recently-used block if full.
  void Insert(uint64_t key);

  /// Changes capacity; evicts immediately if shrinking.
  void Resize(uint64_t capacity_blocks);

  /// Drops every cached block (e.g. when the underlying run is deleted the
  /// blocks become dead weight; we conservatively keep them, but tests use
  /// Clear()).
  void Clear();

  uint64_t capacity_blocks() const { return capacity_; }
  uint64_t size() const { return map_.size(); }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

  /// Complete cache state in a compact form: capacity, the resident keys
  /// in MRU-to-LRU order, and the hit/miss counters. Restoring it
  /// reproduces every future lookup/insert/eviction decision exactly.
  struct FrozenState {
    uint64_t capacity = 0;
    std::vector<uint64_t> keys_mru_to_lru;
    uint64_t hits = 0;
    uint64_t misses = 0;
  };

  /// Exports the current state and clears the cache (shard hibernation).
  FrozenState Freeze();

  /// Replaces the current state with `state` (shard wake-up).
  void Restore(const FrozenState& state);

 private:
  void EvictToCapacity();

  uint64_t capacity_;
  std::list<uint64_t> lru_;  // front = most recently used
  std::unordered_map<uint64_t, std::list<uint64_t>::iterator> map_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace camal::lsm

#endif  // CAMAL_LSM_BLOCK_CACHE_H_
