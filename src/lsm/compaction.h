#ifndef CAMAL_LSM_COMPACTION_H_
#define CAMAL_LSM_COMPACTION_H_

#include <vector>

#include "lsm/entry.h"
#include "lsm/run.h"

namespace camal::lsm {

/// Merges sorted runs into one sorted, deduplicated entry stream.
///
/// `newest_first` orders the inputs by recency: when the same key appears in
/// several runs, the version from the earliest run in the vector wins.
/// Tombstones are carried through unless `drop_tombstones` is set (legal
/// only when merging into the bottommost populated level).
std::vector<Entry> MergeRuns(const std::vector<RunPtr>& newest_first,
                             bool drop_tombstones);

}  // namespace camal::lsm

#endif  // CAMAL_LSM_COMPACTION_H_
