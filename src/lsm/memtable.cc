#include "lsm/memtable.h"

#include <cmath>

namespace camal::lsm {

void Memtable::Put(uint64_t key, uint64_t value, bool tombstone,
                   sim::Device* device) {
  device->ChargeCpu(device->config().cpu_buffer_insert_ns);
  table_[key] = Entry{key, value, tombstone};
}

bool Memtable::Get(uint64_t key, Entry* out, sim::Device* device) const {
  const double depth = table_.empty()
                           ? 1.0
                           : std::log2(static_cast<double>(table_.size()) + 1);
  device->ChargeCpu(device->config().cpu_key_compare_ns * depth);
  auto it = table_.find(key);
  if (it == table_.end()) return false;
  *out = it->second;
  return true;
}

std::vector<Entry> Memtable::DrainSorted() {
  std::vector<Entry> out;
  out.reserve(table_.size());
  for (const auto& [key, entry] : table_) out.push_back(entry);
  table_.clear();
  return out;
}

void Memtable::LoadSorted(const std::vector<Entry>& entries) {
  table_.clear();
  for (const Entry& e : entries) table_.emplace_hint(table_.end(), e.key, e);
}

void Memtable::CollectFrom(uint64_t start_key, size_t max_entries,
                           std::vector<Entry>* out) const {
  for (auto it = table_.lower_bound(start_key);
       it != table_.end() && out->size() < max_entries; ++it) {
    out->push_back(it->second);
  }
}

}  // namespace camal::lsm
