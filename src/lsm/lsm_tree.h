#ifndef CAMAL_LSM_LSM_TREE_H_
#define CAMAL_LSM_LSM_TREE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "engine/storage_engine.h"
#include "lsm/block_cache.h"
#include "lsm/entry.h"
#include "lsm/memtable.h"
#include "lsm/options.h"
#include "lsm/run.h"
#include "lsm/version.h"
#include "sim/device.h"

namespace camal::lsm {

/// Aggregate counters the tuners and benchmarks read off a tree — the
/// single-tree view of the engine-level counters.
using TreeCounters = engine::EngineCounters;

/// A hibernated tree: the complete logical state of an `LsmTree` in a
/// compact, memtable-free form. `Freeze` produces it without charging the
/// device; the restoring constructor rebuilds a tree that behaves
/// bit-identically to one that was never frozen. The run data (`levels`)
/// is carried by reference-counted immutable runs — the simulated "disk"
/// — while the memtable collapses from a `std::map` into a sorted vector.
struct FrozenTreeState {
  Options options;
  std::vector<Entry> memtable;  // sorted by key, tombstones included
  Levels levels;
  TreeCounters counters;
  BlockCache::FrozenState cache;
  uint64_t next_run_id = 1;
  bool transition_active = false;
  // Cached aggregates so hibernated shards answer size queries without
  // rehydrating.
  uint64_t total_entries = 0;
  uint64_t disk_entries = 0;
};

/// A log-structured merge tree over a simulated device.
///
/// Supports both compaction policies from the paper, Monkey-allocated Bloom
/// filters, an LRU block cache, tombstone deletes, the runs-per-level `K`
/// and SST-file-size extension knobs, and lazy online reconfiguration
/// (the DLSM design of Section 6): `Reconfigure` updates the target shape
/// and the structure converges through subsequent natural compactions.
///
/// The batched `ExecuteOps` pipeline is served by the base class's serial
/// implementation (one tree, one device — per-op costs are plain device
/// snapshot deltas); `engine::ShardedEngine` is the parallel override.
class LsmTree : public engine::StorageEngine {
 public:
  /// `device` must outlive the tree; all simulated cost is charged there.
  LsmTree(const Options& options, sim::Device* device);

  /// Rehydrates a tree from a frozen snapshot (shard wake-up). Charges
  /// nothing on `device`; the restored tree is bit-identical — logical
  /// contents, counters, cache state, future cost charges — to the tree
  /// `Freeze` consumed.
  LsmTree(FrozenTreeState state, sim::Device* device);

  /// Destructively exports the tree's complete state (shard hibernation):
  /// the memtable drains into a sorted vector, the levels and cache state
  /// move out, and the husk is left empty (callers destroy it). Charges
  /// nothing on the device.
  std::unique_ptr<FrozenTreeState> Freeze();

  LsmTree(const LsmTree&) = delete;
  LsmTree& operator=(const LsmTree&) = delete;

  /// Inserts or updates a key. May trigger a flush and compactions.
  void Put(uint64_t key, uint64_t value) override;

  /// Deletes a key by writing a tombstone.
  void Delete(uint64_t key) override;

  /// Point lookup. Returns true and fills `*value` when the key is live;
  /// false for missing or deleted keys. (`value` may be null.)
  bool Get(uint64_t key, uint64_t* value) override;

  /// Range lookup: appends up to `max_entries` live entries with
  /// key >= start_key, in key order, to `out`. Returns how many were added.
  size_t Scan(uint64_t start_key, size_t max_entries,
              std::vector<Entry>* out) override;

  /// Forces the write buffer to disk (no-op when empty).
  void FlushMemtable() override;

  /// Applies a new configuration lazily (Section 6). Level capacities,
  /// runs-per-level, and Bloom bits-per-key targets change immediately, but
  /// the physical structure only morphs during subsequent flushes and
  /// compactions; the block cache is resized immediately. `entry_bytes`
  /// must not change.
  void Reconfigure(const Options& new_options) override;

  const Options& options() const { return options_; }
  Options ShardOptionsSnapshot(size_t shard) const override {
    CAMAL_CHECK(shard == 0);
    return options_;
  }
  sim::Device* device() { return device_; }
  BlockCache* cache() { return &cache_; }
  const TreeCounters& counters() const { return counters_; }

  /// Engine cost accounting: the tree's single device.
  sim::DeviceSnapshot CostSnapshot() const override {
    return device_->Snapshot();
  }
  engine::EngineCounters AggregateCounters() const override {
    return counters_;
  }

  /// Live view helpers.
  uint64_t TotalEntries() const override {
    return levels_.TotalEntries() + memtable_.size();
  }
  uint64_t DiskEntries() const override { return levels_.TotalEntries(); }
  size_t MemtableSize() const { return memtable_.size(); }
  int NumPopulatedLevels() const { return levels_.DeepestNonEmpty() + 1; }
  std::vector<uint64_t> LevelEntryCounts() const {
    return levels_.EntryCounts();
  }
  std::vector<size_t> LevelRunCounts() const { return levels_.RunCounts(); }
  /// True while the structure still violates the latest configuration.
  bool InTransition() const override { return transition_active_; }

 private:
  uint64_t EntriesPerBlock() const {
    return options_.EntriesPerBlock(device_->config().block_bytes);
  }

  /// Builds a run destined for level `target_level`, charging sequential
  /// writes for its blocks, Bloom build CPU, and file finalize CPU.
  /// `drained_level` (if >= 0) is a level whose current runs are being
  /// replaced by this run and must not count toward the Monkey allocation.
  RunPtr BuildRun(std::vector<Entry> entries, size_t target_level,
                  int drained_level);

  /// Bits-per-key the Monkey allocation assigns to `target_level` given the
  /// current shape plus `incoming` entries at that level, with
  /// `drained_level`'s current contents excluded (-1 = none).
  double BloomBpkForLevel(size_t target_level, uint64_t incoming,
                          int drained_level) const;

  /// Restores the level invariants (runs <= K, bytes <= capacity) starting
  /// at `level_idx`, cascading deeper as needed.
  void NormalizeFrom(size_t level_idx);

  /// Merges all runs of `level_idx` into one new run placed at
  /// `output_level`, charging compaction I/O and CPU.
  RunPtr MergeLevelIntoRun(size_t level_idx, size_t output_level);

  bool LevelViolates(size_t idx, const Options& opts) const;
  bool AnyLevelViolates(const Options& opts) const;

  Options options_;
  sim::Device* device_;
  BlockCache cache_;
  Memtable memtable_;
  Levels levels_;
  TreeCounters counters_;
  uint64_t next_run_id_ = 1;
  bool transition_active_ = false;
};

}  // namespace camal::lsm

#endif  // CAMAL_LSM_LSM_TREE_H_
