#include "lsm/block_cache.h"

namespace camal::lsm {

BlockCache::BlockCache(uint64_t capacity_blocks) : capacity_(capacity_blocks) {}

bool BlockCache::Lookup(uint64_t key) {
  if (capacity_ == 0) {
    ++misses_;
    return false;
  }
  auto it = map_.find(key);
  if (it == map_.end()) {
    ++misses_;
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++hits_;
  return true;
}

void BlockCache::Insert(uint64_t key) {
  if (capacity_ == 0) return;
  auto it = map_.find(key);
  if (it != map_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(key);
  map_[key] = lru_.begin();
  EvictToCapacity();
}

void BlockCache::Resize(uint64_t capacity_blocks) {
  capacity_ = capacity_blocks;
  EvictToCapacity();
}

void BlockCache::Clear() {
  lru_.clear();
  map_.clear();
}

BlockCache::FrozenState BlockCache::Freeze() {
  FrozenState state;
  state.capacity = capacity_;
  state.keys_mru_to_lru.assign(lru_.begin(), lru_.end());
  state.hits = hits_;
  state.misses = misses_;
  Clear();
  return state;
}

void BlockCache::Restore(const FrozenState& state) {
  Clear();
  capacity_ = state.capacity;
  hits_ = state.hits;
  misses_ = state.misses;
  for (uint64_t key : state.keys_mru_to_lru) {
    lru_.push_back(key);
    map_[key] = std::prev(lru_.end());
  }
}

void BlockCache::EvictToCapacity() {
  while (map_.size() > capacity_) {
    map_.erase(lru_.back());
    lru_.pop_back();
  }
}

}  // namespace camal::lsm
