#include "lsm/run.h"

#include <algorithm>
#include <cmath>

#include "util/status.h"

namespace camal::lsm {

Run::Run(uint64_t id, std::vector<Entry> entries, uint64_t entries_per_block,
         double bloom_bits_per_key, uint64_t entry_bytes, uint64_t file_bytes)
    : id_(id),
      entries_(std::move(entries)),
      entries_per_block_(std::max<uint64_t>(1, entries_per_block)),
      filter_(entries_.size(), bloom_bits_per_key) {
  CAMAL_CHECK(!entries_.empty());
  num_blocks_ = (entries_.size() + entries_per_block_ - 1) / entries_per_block_;
  if (file_bytes > 0) {
    const uint64_t entries_per_file =
        std::max<uint64_t>(1, file_bytes / entry_bytes);
    num_files_ = (entries_.size() + entries_per_file - 1) / entries_per_file;
  } else {
    num_files_ = 1;
  }
  for (const Entry& e : entries_) filter_.Add(e.key);
}

Run::LookupOutcome Run::Get(uint64_t key, Entry* out, sim::Device* device,
                            BlockCache* cache) const {
  const sim::DeviceConfig& cfg = device->config();
  device->ChargeCpu(cfg.cpu_bloom_probe_ns);
  if (key < min_key() || key > max_key()) return LookupOutcome::kFilteredOut;
  if (!filter_.MayContain(key)) return LookupOutcome::kFilteredOut;

  // Fence-pointer binary search over blocks, then within-block search.
  // Extra logical SST files add a small metadata binary-search overhead.
  const double fence_depth = std::log2(static_cast<double>(num_blocks_) + 1) +
                             std::log2(static_cast<double>(num_files_) + 1);
  device->ChargeCpu(cfg.cpu_key_compare_ns * fence_depth);

  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), key,
      [](const Entry& e, uint64_t k) { return e.key < k; });
  const size_t idx = static_cast<size_t>(it - entries_.begin());
  // One block access regardless of hit or false positive: the filter said
  // "maybe", so the block must be fetched to know.
  ChargeBlockAccess(std::min(idx, entries_.size() - 1), device, cache);
  device->ChargeCpu(cfg.cpu_key_compare_ns *
                    std::log2(static_cast<double>(entries_per_block_) + 1));
  if (it == entries_.end() || it->key != key) {
    return LookupOutcome::kNotFoundAfterIo;
  }
  *out = *it;
  return LookupOutcome::kFound;
}

size_t Run::FirstGeq(uint64_t key, sim::Device* device) const {
  const sim::DeviceConfig& cfg = device->config();
  const double fence_depth = std::log2(static_cast<double>(num_blocks_) + 1) +
                             std::log2(static_cast<double>(num_files_) + 1);
  device->ChargeCpu(cfg.cpu_key_compare_ns * fence_depth);
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), key,
      [](const Entry& e, uint64_t k) { return e.key < k; });
  return static_cast<size_t>(it - entries_.begin());
}

void Run::ChargeBlockAccess(size_t idx, sim::Device* device,
                            BlockCache* cache) const {
  const uint64_t key = BlockCache::MakeKey(id_, BlockOf(idx));
  device->ChargeCpu(device->config().cpu_cache_access_ns);
  if (cache != nullptr && cache->Lookup(key)) return;
  device->ReadBlock();
  if (cache != nullptr) cache->Insert(key);
}

}  // namespace camal::lsm
