#include "lsm/monkey.h"

#include <algorithm>
#include <cmath>

namespace camal::lsm {

namespace {
constexpr double kLn2Sq = 0.4804530139182014;  // ln^2(2)

// Total bits consumed when level FPRs are min(1, mu * n_i).
double BitsForMu(double mu, const std::vector<uint64_t>& level_entries) {
  double bits = 0.0;
  for (uint64_t n : level_entries) {
    if (n == 0) continue;
    const double p = mu * static_cast<double>(n);
    if (p >= 1.0) continue;  // no filter for this level
    bits += static_cast<double>(n) * (-std::log(p)) / kLn2Sq;
  }
  return bits;
}
}  // namespace

std::vector<double> MonkeyAllocate(
    double total_bits, const std::vector<uint64_t>& level_entries) {
  std::vector<double> bpk(level_entries.size(), 0.0);
  if (total_bits <= 0.0) return bpk;
  bool any = false;
  for (uint64_t n : level_entries) any |= (n > 0);
  if (!any) return bpk;

  // BitsForMu is monotone decreasing in mu; bisect in log space.
  double lo = 1e-30, hi = 1e+6;
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = std::sqrt(lo * hi);
    if (BitsForMu(mid, level_entries) > total_bits) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  const double mu = std::sqrt(lo * hi);
  for (size_t i = 0; i < level_entries.size(); ++i) {
    const uint64_t n = level_entries[i];
    if (n == 0) continue;
    const double p = mu * static_cast<double>(n);
    if (p >= 1.0) continue;
    bpk[i] = -std::log(p) / kLn2Sq;
  }
  return bpk;
}

double MonkeyZeroResultIoCost(double total_bits,
                              const std::vector<uint64_t>& level_entries) {
  const std::vector<double> bpk = MonkeyAllocate(total_bits, level_entries);
  double cost = 0.0;
  for (size_t i = 0; i < level_entries.size(); ++i) {
    if (level_entries[i] == 0) continue;
    cost += bpk[i] > 0.0 ? std::exp(-bpk[i] * kLn2Sq) : 1.0;
  }
  return cost;
}

}  // namespace camal::lsm
