#include "lsm/bloom.h"

#include <algorithm>
#include <cmath>

#include "util/random.h"

namespace camal::lsm {

namespace {
constexpr double kLn2 = 0.6931471805599453;
constexpr double kMinUsefulBpk = 0.5;

using util::Fmix64;
}  // namespace

BloomFilter::BloomFilter(size_t num_entries, double bits_per_key) {
  if (num_entries == 0 || bits_per_key < kMinUsefulBpk) return;
  bits_per_key_ = bits_per_key;
  num_bits_ = std::max<size_t>(
      64, static_cast<size_t>(std::llround(
              static_cast<double>(num_entries) * bits_per_key)));
  words_.assign((num_bits_ + 63) / 64, 0);
  num_hashes_ =
      std::max(1, static_cast<int>(std::llround(bits_per_key * kLn2)));
  num_hashes_ = std::min(num_hashes_, 30);
}

void BloomFilter::Add(uint64_t key) {
  if (absent()) return;
  uint64_t h1 = Fmix64(key);
  const uint64_t h2 = Fmix64(key ^ 0x9e3779b97f4a7c15ULL) | 1;
  for (int i = 0; i < num_hashes_; ++i) {
    const size_t bit = h1 % num_bits_;
    words_[bit >> 6] |= (1ULL << (bit & 63));
    h1 += h2;
  }
}

bool BloomFilter::MayContain(uint64_t key) const {
  if (absent()) return true;
  uint64_t h1 = Fmix64(key);
  const uint64_t h2 = Fmix64(key ^ 0x9e3779b97f4a7c15ULL) | 1;
  for (int i = 0; i < num_hashes_; ++i) {
    const size_t bit = h1 % num_bits_;
    if ((words_[bit >> 6] & (1ULL << (bit & 63))) == 0) return false;
    h1 += h2;
  }
  return true;
}

double BloomFilter::TheoreticalFpr() const {
  if (absent()) return 1.0;
  return std::min(1.0, std::exp(-bits_per_key_ * kLn2 * kLn2));
}

}  // namespace camal::lsm
