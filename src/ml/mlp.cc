#include "ml/mlp.h"

#include <algorithm>
#include <cmath>

#include "util/random.h"
#include "util/status.h"

namespace camal::ml {

Mlp::Mlp(const MlpParams& params) : params_(params) {}

double Mlp::Forward(const std::vector<double>& x,
                    std::vector<std::vector<double>>* acts) const {
  std::vector<double> cur = x;
  if (acts != nullptr) {
    acts->clear();
    acts->push_back(cur);
  }
  for (size_t li = 0; li < layers_.size(); ++li) {
    const Layer& layer = layers_[li];
    std::vector<double> next(static_cast<size_t>(layer.out), 0.0);
    for (int o = 0; o < layer.out; ++o) {
      double s = layer.b[static_cast<size_t>(o)];
      const double* wrow = &layer.w[static_cast<size_t>(o * layer.in)];
      for (int i = 0; i < layer.in; ++i) s += wrow[i] * cur[static_cast<size_t>(i)];
      const bool last = li + 1 == layers_.size();
      next[static_cast<size_t>(o)] = last ? s : std::max(0.0, s);
    }
    cur = std::move(next);
    if (acts != nullptr) acts->push_back(cur);
  }
  return cur[0];
}

void Mlp::Fit(const std::vector<std::vector<double>>& x,
              const std::vector<double>& y) {
  CAMAL_CHECK(!x.empty());
  CAMAL_CHECK(x.size() == y.size());
  input_scaler_.Fit(x);
  target_scaler_.Fit(y);
  const std::vector<std::vector<double>> xs = input_scaler_.ApplyAll(x);
  std::vector<double> ys(y.size());
  for (size_t i = 0; i < y.size(); ++i) ys[i] = target_scaler_.Scale(y[i]);

  util::Random rng(params_.seed);
  // Build layers: input -> hidden... -> 1.
  layers_.clear();
  int prev = static_cast<int>(x[0].size());
  std::vector<int> widths = params_.hidden;
  widths.push_back(1);
  for (int width : widths) {
    Layer layer;
    layer.in = prev;
    layer.out = width;
    layer.w.resize(static_cast<size_t>(prev * width));
    layer.b.assign(static_cast<size_t>(width), 0.0);
    const double scale = std::sqrt(2.0 / static_cast<double>(prev));
    for (double& w : layer.w) w = scale * rng.NextGaussian();
    layer.mw.assign(layer.w.size(), 0.0);
    layer.vw.assign(layer.w.size(), 0.0);
    layer.mb.assign(layer.b.size(), 0.0);
    layer.vb.assign(layer.b.size(), 0.0);
    layers_.push_back(std::move(layer));
    prev = width;
  }

  const double beta1 = 0.9, beta2 = 0.999, eps = 1e-8;
  int64_t step = 0;
  std::vector<size_t> order(x.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  for (int epoch = 0; epoch < params_.epochs; ++epoch) {
    // Fisher-Yates shuffle.
    for (size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng.Uniform(i)]);
    }
    for (size_t start = 0; start < order.size();
         start += static_cast<size_t>(params_.batch_size)) {
      const size_t end = std::min(
          order.size(), start + static_cast<size_t>(params_.batch_size));
      // Accumulate gradients over the batch.
      std::vector<std::vector<double>> gw(layers_.size());
      std::vector<std::vector<double>> gb(layers_.size());
      for (size_t li = 0; li < layers_.size(); ++li) {
        gw[li].assign(layers_[li].w.size(), 0.0);
        gb[li].assign(layers_[li].b.size(), 0.0);
      }
      for (size_t bi = start; bi < end; ++bi) {
        const size_t row = order[bi];
        std::vector<std::vector<double>> acts;
        const double pred = Forward(xs[row], &acts);
        // dL/dpred for squared loss (factor 2 folded into learning rate).
        std::vector<double> delta{pred - ys[row]};
        for (size_t li = layers_.size(); li-- > 0;) {
          const Layer& layer = layers_[li];
          const std::vector<double>& input = acts[li];
          std::vector<double> prev_delta(static_cast<size_t>(layer.in), 0.0);
          for (int o = 0; o < layer.out; ++o) {
            const double d = delta[static_cast<size_t>(o)];
            if (d == 0.0) continue;
            gb[li][static_cast<size_t>(o)] += d;
            const size_t base = static_cast<size_t>(o * layer.in);
            for (int i = 0; i < layer.in; ++i) {
              gw[li][base + static_cast<size_t>(i)] +=
                  d * input[static_cast<size_t>(i)];
              prev_delta[static_cast<size_t>(i)] +=
                  d * layer.w[base + static_cast<size_t>(i)];
            }
          }
          if (li > 0) {
            // ReLU derivative of the previous activation.
            const std::vector<double>& act = acts[li];
            (void)act;
            for (int i = 0; i < layer.in; ++i) {
              if (acts[li][static_cast<size_t>(i)] <= 0.0) {
                prev_delta[static_cast<size_t>(i)] = 0.0;
              }
            }
          }
          delta = std::move(prev_delta);
        }
      }
      // Adam update.
      ++step;
      const double count = static_cast<double>(end - start);
      const double bc1 = 1.0 - std::pow(beta1, static_cast<double>(step));
      const double bc2 = 1.0 - std::pow(beta2, static_cast<double>(step));
      for (size_t li = 0; li < layers_.size(); ++li) {
        Layer& layer = layers_[li];
        for (size_t j = 0; j < layer.w.size(); ++j) {
          const double g = gw[li][j] / count + params_.l2 * layer.w[j];
          layer.mw[j] = beta1 * layer.mw[j] + (1 - beta1) * g;
          layer.vw[j] = beta2 * layer.vw[j] + (1 - beta2) * g * g;
          layer.w[j] -= params_.learning_rate * (layer.mw[j] / bc1) /
                        (std::sqrt(layer.vw[j] / bc2) + eps);
        }
        for (size_t j = 0; j < layer.b.size(); ++j) {
          const double g = gb[li][j] / count;
          layer.mb[j] = beta1 * layer.mb[j] + (1 - beta1) * g;
          layer.vb[j] = beta2 * layer.vb[j] + (1 - beta2) * g * g;
          layer.b[j] -= params_.learning_rate * (layer.mb[j] / bc1) /
                        (std::sqrt(layer.vb[j] / bc2) + eps);
        }
      }
    }
  }
  fitted_ = true;
}

double Mlp::Predict(const std::vector<double>& x) const {
  CAMAL_CHECK(fitted_);
  const double z = Forward(input_scaler_.Apply(x), nullptr);
  return target_scaler_.Unscale(z);
}

}  // namespace camal::ml
