#ifndef CAMAL_ML_REGRESSOR_H_
#define CAMAL_ML_REGRESSOR_H_

#include <vector>

namespace camal::ml {

/// Common interface of the ML cost models CAMAL can embed (Section 7 of the
/// paper): polynomial/ridge regression, gradient-boosted trees, and a small
/// neural network.
class Regressor {
 public:
  /// Models are owned polymorphically (see tune::MakeModel).
  virtual ~Regressor() = default;

  /// Fits on rows `x` (all the same length) with targets `y`.
  virtual void Fit(const std::vector<std::vector<double>>& x,
                   const std::vector<double>& y) = 0;

  /// Predicts the target for a feature row.
  virtual double Predict(const std::vector<double>& x) const = 0;

  /// True once Fit has been called with at least one sample.
  virtual bool fitted() const = 0;
};

}  // namespace camal::ml

#endif  // CAMAL_ML_REGRESSOR_H_
