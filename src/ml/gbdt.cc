#include "ml/gbdt.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/random.h"
#include "util/status.h"

namespace camal::ml {

Gbdt::Gbdt(const GbdtParams& params) : params_(params) {}

double Gbdt::Tree::Eval(const std::vector<double>& x) const {
  int idx = 0;
  for (;;) {
    const Node& node = nodes[static_cast<size_t>(idx)];
    if (node.feature < 0) return node.value;
    idx = x[static_cast<size_t>(node.feature)] <= node.threshold ? node.left
                                                                 : node.right;
  }
}

int Gbdt::BuildNode(const std::vector<std::vector<double>>& x,
                    const std::vector<double>& residual, std::vector<int> rows,
                    int depth, Tree* tree) const {
  const int node_idx = static_cast<int>(tree->nodes.size());
  tree->nodes.emplace_back();

  double sum = 0.0;
  for (int r : rows) sum += residual[static_cast<size_t>(r)];
  const double mean = sum / static_cast<double>(rows.size());
  tree->nodes[static_cast<size_t>(node_idx)].value = mean;

  if (depth >= params_.max_depth ||
      rows.size() < 2 * static_cast<size_t>(params_.min_samples_leaf)) {
    return node_idx;
  }

  // Exact greedy split: scan every (feature, threshold) pair.
  const size_t num_features = x[0].size();
  double base_sse = 0.0;
  for (int r : rows) {
    const double d = residual[static_cast<size_t>(r)] - mean;
    base_sse += d * d;
  }

  int best_feature = -1;
  double best_threshold = 0.0;
  double best_sse = base_sse - 1e-12;
  std::vector<int> sorted = rows;
  for (size_t f = 0; f < num_features; ++f) {
    std::sort(sorted.begin(), sorted.end(), [&](int a, int b) {
      return x[static_cast<size_t>(a)][f] < x[static_cast<size_t>(b)][f];
    });
    double left_sum = 0.0, left_sq = 0.0;
    double right_sum = 0.0, right_sq = 0.0;
    for (int r : sorted) {
      const double v = residual[static_cast<size_t>(r)];
      right_sum += v;
      right_sq += v * v;
    }
    const auto n = static_cast<double>(sorted.size());
    double left_n = 0.0;
    for (size_t i = 0; i + 1 < sorted.size(); ++i) {
      const double v = residual[static_cast<size_t>(sorted[i])];
      left_sum += v;
      left_sq += v * v;
      right_sum -= v;
      right_sq -= v * v;
      left_n += 1.0;
      const double xi = x[static_cast<size_t>(sorted[i])][f];
      const double xj = x[static_cast<size_t>(sorted[i + 1])][f];
      if (xi == xj) continue;
      if (left_n < params_.min_samples_leaf ||
          n - left_n < params_.min_samples_leaf) {
        continue;
      }
      const double sse = (left_sq - left_sum * left_sum / left_n) +
                         (right_sq - right_sum * right_sum / (n - left_n));
      if (sse < best_sse) {
        best_sse = sse;
        best_feature = static_cast<int>(f);
        best_threshold = (xi + xj) / 2.0;
      }
    }
  }

  if (best_feature < 0) return node_idx;

  std::vector<int> left_rows, right_rows;
  for (int r : rows) {
    if (x[static_cast<size_t>(r)][static_cast<size_t>(best_feature)] <=
        best_threshold) {
      left_rows.push_back(r);
    } else {
      right_rows.push_back(r);
    }
  }
  if (left_rows.empty() || right_rows.empty()) return node_idx;

  const int left = BuildNode(x, residual, std::move(left_rows), depth + 1, tree);
  const int right =
      BuildNode(x, residual, std::move(right_rows), depth + 1, tree);
  Node& node = tree->nodes[static_cast<size_t>(node_idx)];
  node.feature = best_feature;
  node.threshold = best_threshold;
  node.left = left;
  node.right = right;
  return node_idx;
}

Gbdt::Tree Gbdt::BuildTree(const std::vector<std::vector<double>>& x,
                           const std::vector<double>& residual,
                           const std::vector<int>& rows) const {
  Tree tree;
  BuildNode(x, residual, rows, 0, &tree);
  return tree;
}

void Gbdt::Fit(const std::vector<std::vector<double>>& x,
               const std::vector<double>& y) {
  CAMAL_CHECK(!x.empty());
  CAMAL_CHECK(x.size() == y.size());
  trees_.clear();

  double sum = 0.0;
  for (double v : y) sum += v;
  base_prediction_ = sum / static_cast<double>(y.size());

  std::vector<double> prediction(y.size(), base_prediction_);
  std::vector<double> residual(y.size());
  util::Random rng(params_.seed);

  for (int t = 0; t < params_.num_trees; ++t) {
    for (size_t i = 0; i < y.size(); ++i) residual[i] = y[i] - prediction[i];
    std::vector<int> rows;
    rows.reserve(y.size());
    for (size_t i = 0; i < y.size(); ++i) {
      if (params_.subsample >= 1.0 || rng.Bernoulli(params_.subsample)) {
        rows.push_back(static_cast<int>(i));
      }
    }
    if (rows.empty()) rows.push_back(static_cast<int>(rng.Uniform(y.size())));
    Tree tree = BuildTree(x, residual, rows);
    for (size_t i = 0; i < y.size(); ++i) {
      prediction[i] += params_.learning_rate * tree.Eval(x[i]);
    }
    trees_.push_back(std::move(tree));
  }
  fitted_ = true;
}

double Gbdt::Predict(const std::vector<double>& x) const {
  CAMAL_CHECK(fitted_);
  double out = base_prediction_;
  for (const Tree& tree : trees_) out += params_.learning_rate * tree.Eval(x);
  return out;
}

}  // namespace camal::ml
