#ifndef CAMAL_ML_MLP_H_
#define CAMAL_ML_MLP_H_

#include <cstdint>
#include <vector>

#include "ml/regressor.h"
#include "ml/standardizer.h"

namespace camal::ml {

/// Hyperparameters of the neural-network cost model.
struct MlpParams {
  /// Hidden layer widths; with the output layer this gives the paper's
  /// "four fully connected layers".
  std::vector<int> hidden = {32, 32, 16};
  int epochs = 250;
  int batch_size = 16;
  double learning_rate = 3e-3;
  double l2 = 1e-5;
  uint64_t seed = 11;
};

/// Small fully connected ReLU network trained with Adam on standardized
/// inputs/targets — the "NN" model of Section 7. Deliberately data-hungry
/// relative to Poly/Trees, reproducing the paper's observation that it
/// needs ~3x the samples for comparable tuning quality.
class Mlp : public Regressor {
 public:
  explicit Mlp(const MlpParams& params = MlpParams());

  void Fit(const std::vector<std::vector<double>>& x,
           const std::vector<double>& y) override;
  double Predict(const std::vector<double>& x) const override;
  bool fitted() const override { return fitted_; }

 private:
  struct Layer {
    int in = 0;
    int out = 0;
    std::vector<double> w;  // out x in, row-major
    std::vector<double> b;  // out
    // Adam state
    std::vector<double> mw, vw, mb, vb;
  };

  /// Forward pass; fills per-layer activations (post-ReLU except last).
  double Forward(const std::vector<double>& x,
                 std::vector<std::vector<double>>* acts) const;

  MlpParams params_;
  std::vector<Layer> layers_;
  Standardizer input_scaler_;
  TargetScaler target_scaler_;
  bool fitted_ = false;
};

}  // namespace camal::ml

#endif  // CAMAL_ML_MLP_H_
