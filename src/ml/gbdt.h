#ifndef CAMAL_ML_GBDT_H_
#define CAMAL_ML_GBDT_H_

#include <cstdint>
#include <vector>

#include "ml/regressor.h"

namespace camal::ml {

/// Hyperparameters of the gradient-boosted tree ensemble.
struct GbdtParams {
  int num_trees = 150;
  int max_depth = 3;
  int min_samples_leaf = 2;
  double learning_rate = 0.1;
  /// Fraction of rows sampled per tree (1.0 = no subsampling).
  double subsample = 1.0;
  uint64_t seed = 7;
};

/// Gradient-boosted regression trees with squared loss and exact greedy
/// splits — the "Trees" model of the paper (XGBoost stand-in), sized for
/// the tens-to-hundreds of samples active learning produces.
class Gbdt : public Regressor {
 public:
  explicit Gbdt(const GbdtParams& params = GbdtParams());

  void Fit(const std::vector<std::vector<double>>& x,
           const std::vector<double>& y) override;
  double Predict(const std::vector<double>& x) const override;
  bool fitted() const override { return fitted_; }

 private:
  struct Node {
    int feature = -1;  // -1 marks a leaf
    double threshold = 0.0;
    int left = -1;
    int right = -1;
    double value = 0.0;
  };
  struct Tree {
    std::vector<Node> nodes;
    double Eval(const std::vector<double>& x) const;
  };

  /// Builds one regression tree on residuals for the given row subset.
  Tree BuildTree(const std::vector<std::vector<double>>& x,
                 const std::vector<double>& residual,
                 const std::vector<int>& rows) const;
  int BuildNode(const std::vector<std::vector<double>>& x,
                const std::vector<double>& residual, std::vector<int> rows,
                int depth, Tree* tree) const;

  GbdtParams params_;
  double base_prediction_ = 0.0;
  std::vector<Tree> trees_;
  bool fitted_ = false;
};

}  // namespace camal::ml

#endif  // CAMAL_ML_GBDT_H_
