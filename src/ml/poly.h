#ifndef CAMAL_ML_POLY_H_
#define CAMAL_ML_POLY_H_

#include <functional>
#include <vector>

#include "ml/regressor.h"

namespace camal::ml {

/// Polynomial regression in the paper's sense: linear least squares over a
/// set of basis functions phi(x) derived from the theoretical cost model
/// (Equation 11, y = sum_i beta_i * x_i), fit with ridge-regularized normal
/// equations.
///
/// The basis expansion is injected so the CAMAL layer can supply
/// cost-model-specific terms; by default the raw features plus an intercept
/// are used.
class PolyRegression : public Regressor {
 public:
  using BasisFn = std::function<std::vector<double>(const std::vector<double>&)>;

  explicit PolyRegression(double l2 = 1e-6, BasisFn basis = nullptr);

  void Fit(const std::vector<std::vector<double>>& x,
           const std::vector<double>& y) override;
  double Predict(const std::vector<double>& x) const override;
  bool fitted() const override { return !beta_.empty(); }

  const std::vector<double>& coefficients() const { return beta_; }

 private:
  std::vector<double> Expand(const std::vector<double>& x) const;

  double l2_;
  BasisFn basis_;
  std::vector<double> beta_;
};

}  // namespace camal::ml

#endif  // CAMAL_ML_POLY_H_
