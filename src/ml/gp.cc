#include "ml/gp.h"

#include <cmath>

#include "util/status.h"

namespace camal::ml {

GaussianProcess::GaussianProcess(const GpParams& params) : params_(params) {}

double GaussianProcess::Kernel(const std::vector<double>& a,
                               const std::vector<double>& b) const {
  double d2 = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    d2 += d * d;
  }
  return params_.signal_var *
         std::exp(-0.5 * d2 / (params_.length_scale * params_.length_scale));
}

void GaussianProcess::Fit(const std::vector<std::vector<double>>& x,
                          const std::vector<double>& y) {
  CAMAL_CHECK(!x.empty());
  CAMAL_CHECK(x.size() == y.size());
  input_scaler_.Fit(x);
  target_scaler_.Fit(y);
  x_train_ = input_scaler_.ApplyAll(x);
  std::vector<double> ys(y.size());
  for (size_t i = 0; i < y.size(); ++i) ys[i] = target_scaler_.Scale(y[i]);
  // Recover sd for unscaling the variance.
  target_sd_ = 1.0;
  {
    const double a = target_scaler_.Unscale(1.0);
    const double b = target_scaler_.Unscale(0.0);
    target_sd_ = a - b;
  }

  const size_t n = x_train_.size();
  Matrix k(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j <= i; ++j) {
      const double v = Kernel(x_train_[i], x_train_[j]);
      k(i, j) = v;
      k(j, i) = v;
    }
    k(i, i) += params_.noise_var;
  }
  chol_ = k;
  double jitter = 1e-8;
  while (!CholeskyFactor(&chol_)) {
    chol_ = k;
    for (size_t i = 0; i < n; ++i) chol_(i, i) += jitter;
    jitter *= 10.0;
    CAMAL_CHECK(jitter < 1.0);
  }
  alpha_ = CholeskySolve(chol_, ys);
  fitted_ = true;
}

std::pair<double, double> GaussianProcess::PredictMeanVar(
    const std::vector<double>& x) const {
  CAMAL_CHECK(fitted_);
  const std::vector<double> xs = input_scaler_.Apply(x);
  const size_t n = x_train_.size();
  std::vector<double> kstar(n);
  for (size_t i = 0; i < n; ++i) kstar[i] = Kernel(xs, x_train_[i]);

  double mean_z = 0.0;
  for (size_t i = 0; i < n; ++i) mean_z += kstar[i] * alpha_[i];

  // v = L^{-1} k*; var = k(x,x) - v.v
  std::vector<double> v = kstar;
  for (size_t i = 0; i < n; ++i) {
    double s = v[i];
    for (size_t k = 0; k < i; ++k) s -= chol_(i, k) * v[k];
    v[i] = s / chol_(i, i);
  }
  double var_z = Kernel(xs, xs);
  for (size_t i = 0; i < n; ++i) var_z -= v[i] * v[i];
  var_z = std::max(1e-12, var_z);

  return {target_scaler_.Unscale(mean_z), var_z * target_sd_ * target_sd_};
}

double ExpectedImprovement(double mean, double var, double best) {
  const double sd = std::sqrt(std::max(1e-18, var));
  const double z = (best - mean) / sd;
  // Standard normal pdf / cdf.
  const double pdf = std::exp(-0.5 * z * z) / std::sqrt(2.0 * M_PI);
  const double cdf = 0.5 * std::erfc(-z / std::sqrt(2.0));
  return (best - mean) * cdf + sd * pdf;
}

}  // namespace camal::ml
