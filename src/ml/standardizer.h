#ifndef CAMAL_ML_STANDARDIZER_H_
#define CAMAL_ML_STANDARDIZER_H_

#include <vector>

namespace camal::ml {

/// Per-feature z-score scaling fit on training rows, applied at inference.
class Standardizer {
 public:
  void Fit(const std::vector<std::vector<double>>& x);
  std::vector<double> Apply(const std::vector<double>& x) const;
  std::vector<std::vector<double>> ApplyAll(
      const std::vector<std::vector<double>>& x) const;
  bool fitted() const { return !mean_.empty(); }

 private:
  std::vector<double> mean_;
  std::vector<double> inv_std_;
};

/// Scalar z-score scaling for targets.
class TargetScaler {
 public:
  void Fit(const std::vector<double>& y);
  double Scale(double y) const { return (y - mean_) * inv_std_; }
  double Unscale(double z) const { return z / inv_std_ + mean_; }

 private:
  double mean_ = 0.0;
  double inv_std_ = 1.0;
};

}  // namespace camal::ml

#endif  // CAMAL_ML_STANDARDIZER_H_
