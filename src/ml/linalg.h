#ifndef CAMAL_ML_LINALG_H_
#define CAMAL_ML_LINALG_H_

#include <cstddef>
#include <vector>

namespace camal::ml {

/// Minimal dense row-major matrix for the small systems the ML layer solves
/// (normal equations, GP kernels — tens to a few hundred rows).
class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  double& operator()(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double operator()(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

/// In-place Cholesky factorization A = L L^T of a symmetric positive
/// definite matrix; returns false if A is not (numerically) SPD.
/// On success the lower triangle of `a` holds L.
bool CholeskyFactor(Matrix* a);

/// Solves L L^T x = b given the factor produced by CholeskyFactor.
std::vector<double> CholeskySolve(const Matrix& l, std::vector<double> b);

/// Solves the (possibly non-SPD) linear system A x = b with partial-pivot
/// Gaussian elimination. Returns an empty vector if A is singular.
std::vector<double> SolveLinear(Matrix a, std::vector<double> b);

/// Solves the ridge least-squares problem min ||X beta - y||^2 +
/// l2 ||beta||^2 via the normal equations (X^T X + l2 I) beta = X^T y.
std::vector<double> RidgeSolve(const Matrix& x, const std::vector<double>& y,
                               double l2);

}  // namespace camal::ml

#endif  // CAMAL_ML_LINALG_H_
