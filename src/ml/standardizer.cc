#include "ml/standardizer.h"

#include <cmath>

#include "util/status.h"

namespace camal::ml {

void Standardizer::Fit(const std::vector<std::vector<double>>& x) {
  CAMAL_CHECK(!x.empty());
  const size_t d = x[0].size();
  mean_.assign(d, 0.0);
  inv_std_.assign(d, 1.0);
  for (const auto& row : x) {
    for (size_t j = 0; j < d; ++j) mean_[j] += row[j];
  }
  for (double& m : mean_) m /= static_cast<double>(x.size());
  std::vector<double> var(d, 0.0);
  for (const auto& row : x) {
    for (size_t j = 0; j < d; ++j) {
      const double delta = row[j] - mean_[j];
      var[j] += delta * delta;
    }
  }
  for (size_t j = 0; j < d; ++j) {
    const double sd = std::sqrt(var[j] / static_cast<double>(x.size()));
    inv_std_[j] = sd > 1e-12 ? 1.0 / sd : 1.0;
  }
}

std::vector<double> Standardizer::Apply(const std::vector<double>& x) const {
  CAMAL_CHECK(x.size() == mean_.size());
  std::vector<double> out(x.size());
  for (size_t j = 0; j < x.size(); ++j) {
    out[j] = (x[j] - mean_[j]) * inv_std_[j];
  }
  return out;
}

std::vector<std::vector<double>> Standardizer::ApplyAll(
    const std::vector<std::vector<double>>& x) const {
  std::vector<std::vector<double>> out;
  out.reserve(x.size());
  for (const auto& row : x) out.push_back(Apply(row));
  return out;
}

void TargetScaler::Fit(const std::vector<double>& y) {
  CAMAL_CHECK(!y.empty());
  mean_ = 0.0;
  for (double v : y) mean_ += v;
  mean_ /= static_cast<double>(y.size());
  double var = 0.0;
  for (double v : y) var += (v - mean_) * (v - mean_);
  const double sd = std::sqrt(var / static_cast<double>(y.size()));
  inv_std_ = sd > 1e-12 ? 1.0 / sd : 1.0;
}

}  // namespace camal::ml
