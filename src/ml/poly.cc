#include "ml/poly.h"

#include "ml/linalg.h"
#include "util/status.h"

namespace camal::ml {

PolyRegression::PolyRegression(double l2, BasisFn basis)
    : l2_(l2), basis_(std::move(basis)) {}

std::vector<double> PolyRegression::Expand(const std::vector<double>& x) const {
  std::vector<double> phi;
  if (basis_) {
    phi = basis_(x);
  } else {
    phi = x;
  }
  phi.push_back(1.0);  // intercept
  return phi;
}

void PolyRegression::Fit(const std::vector<std::vector<double>>& x,
                         const std::vector<double>& y) {
  CAMAL_CHECK(!x.empty());
  CAMAL_CHECK(x.size() == y.size());
  const std::vector<double> first = Expand(x[0]);
  Matrix design(x.size(), first.size());
  for (size_t i = 0; i < x.size(); ++i) {
    const std::vector<double> phi = Expand(x[i]);
    CAMAL_CHECK(phi.size() == first.size());
    for (size_t j = 0; j < phi.size(); ++j) design(i, j) = phi[j];
  }
  beta_ = RidgeSolve(design, y, l2_);
}

double PolyRegression::Predict(const std::vector<double>& x) const {
  CAMAL_CHECK(!beta_.empty());
  const std::vector<double> phi = Expand(x);
  CAMAL_CHECK(phi.size() == beta_.size());
  double out = 0.0;
  for (size_t j = 0; j < phi.size(); ++j) out += beta_[j] * phi[j];
  return out;
}

}  // namespace camal::ml
