#include "ml/linalg.h"

#include <cmath>

#include "util/status.h"

namespace camal::ml {

bool CholeskyFactor(Matrix* a) {
  CAMAL_CHECK(a->rows() == a->cols());
  const size_t n = a->rows();
  Matrix& m = *a;
  for (size_t j = 0; j < n; ++j) {
    double d = m(j, j);
    for (size_t k = 0; k < j; ++k) d -= m(j, k) * m(j, k);
    if (d <= 0.0 || !std::isfinite(d)) return false;
    m(j, j) = std::sqrt(d);
    for (size_t i = j + 1; i < n; ++i) {
      double s = m(i, j);
      for (size_t k = 0; k < j; ++k) s -= m(i, k) * m(j, k);
      m(i, j) = s / m(j, j);
    }
  }
  return true;
}

std::vector<double> CholeskySolve(const Matrix& l, std::vector<double> b) {
  const size_t n = l.rows();
  CAMAL_CHECK(b.size() == n);
  // Forward substitution L y = b.
  for (size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (size_t k = 0; k < i; ++k) s -= l(i, k) * b[k];
    b[i] = s / l(i, i);
  }
  // Back substitution L^T x = y.
  for (size_t ii = n; ii-- > 0;) {
    double s = b[ii];
    for (size_t k = ii + 1; k < n; ++k) s -= l(k, ii) * b[k];
    b[ii] = s / l(ii, ii);
  }
  return b;
}

std::vector<double> SolveLinear(Matrix a, std::vector<double> b) {
  CAMAL_CHECK(a.rows() == a.cols());
  CAMAL_CHECK(b.size() == a.rows());
  const size_t n = a.rows();
  std::vector<size_t> perm(n);
  for (size_t i = 0; i < n; ++i) perm[i] = i;
  for (size_t col = 0; col < n; ++col) {
    size_t pivot = col;
    double best = std::fabs(a(col, col));
    for (size_t r = col + 1; r < n; ++r) {
      if (std::fabs(a(r, col)) > best) {
        best = std::fabs(a(r, col));
        pivot = r;
      }
    }
    if (best < 1e-12) return {};
    if (pivot != col) {
      for (size_t c = 0; c < n; ++c) std::swap(a(col, c), a(pivot, c));
      std::swap(b[col], b[pivot]);
    }
    for (size_t r = col + 1; r < n; ++r) {
      const double f = a(r, col) / a(col, col);
      if (f == 0.0) continue;
      for (size_t c = col; c < n; ++c) a(r, c) -= f * a(col, c);
      b[r] -= f * b[col];
    }
  }
  std::vector<double> x(n, 0.0);
  for (size_t ii = n; ii-- > 0;) {
    double s = b[ii];
    for (size_t c = ii + 1; c < n; ++c) s -= a(ii, c) * x[c];
    x[ii] = s / a(ii, ii);
  }
  return x;
}

std::vector<double> RidgeSolve(const Matrix& x, const std::vector<double>& y,
                               double l2) {
  const size_t n = x.rows();
  const size_t d = x.cols();
  CAMAL_CHECK(y.size() == n);
  Matrix gram(d, d, 0.0);
  std::vector<double> xty(d, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t a = 0; a < d; ++a) {
      xty[a] += x(i, a) * y[i];
      for (size_t b = a; b < d; ++b) gram(a, b) += x(i, a) * x(i, b);
    }
  }
  for (size_t a = 0; a < d; ++a) {
    gram(a, a) += l2;
    for (size_t b = 0; b < a; ++b) gram(a, b) = gram(b, a);
  }
  Matrix chol = gram;
  if (CholeskyFactor(&chol)) return CholeskySolve(chol, xty);
  return SolveLinear(gram, xty);
}

}  // namespace camal::ml
