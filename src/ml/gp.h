#ifndef CAMAL_ML_GP_H_
#define CAMAL_ML_GP_H_

#include <utility>
#include <vector>

#include "ml/linalg.h"
#include "ml/standardizer.h"

namespace camal::ml {

/// Hyperparameters of the Gaussian-process surrogate.
struct GpParams {
  /// RBF kernel length scale (on standardized features).
  double length_scale = 1.0;
  /// Signal variance.
  double signal_var = 1.0;
  /// Observation noise variance (on standardized targets).
  double noise_var = 1e-3;
};

/// Gaussian-process regression with an RBF kernel — the surrogate behind
/// the Bayesian-optimization baseline (Section 8 "Bayes"). Inputs and
/// targets are standardized internally.
class GaussianProcess {
 public:
  explicit GaussianProcess(const GpParams& params = GpParams());

  void Fit(const std::vector<std::vector<double>>& x,
           const std::vector<double>& y);

  /// Posterior mean and variance at `x` (in original target units;
  /// variance scaled accordingly).
  std::pair<double, double> PredictMeanVar(const std::vector<double>& x) const;

  bool fitted() const { return fitted_; }

 private:
  double Kernel(const std::vector<double>& a,
                const std::vector<double>& b) const;

  GpParams params_;
  std::vector<std::vector<double>> x_train_;  // standardized
  std::vector<double> alpha_;
  Matrix chol_;
  Standardizer input_scaler_;
  TargetScaler target_scaler_;
  double target_sd_ = 1.0;
  bool fitted_ = false;
};

/// Expected improvement of a *minimization* objective at a point with GP
/// posterior (mean, var), relative to the best observed value `best`.
double ExpectedImprovement(double mean, double var, double best);

}  // namespace camal::ml

#endif  // CAMAL_ML_GP_H_
