#ifndef CAMAL_WORKLOAD_REQUEST_H_
#define CAMAL_WORKLOAD_REQUEST_H_

// The single request currency of the serving stack. `engine::Op` /
// `engine::OpResult` are *the* public request/response types: the
// closed-loop executor (workload::Execute), the open-loop gateway
// (serve::Gateway), and any future front-end translate into them here and
// submit through `StorageEngine::ExecuteOps`. The engine's point-op
// virtuals (`Put`/`Get`/`Delete`/`Scan`) remain only as a
// compatibility/testing surface — see storage_engine.h.

#include <array>
#include <cstddef>
#include <cstdint>

#include "engine/storage_engine.h"
#include "util/stats.h"
#include "workload/generator.h"

namespace camal::workload {

/// Translates a generated workload operation into the engine's batched op
/// representation (the zero-/non-zero-result lookup distinction collapses
/// to kGet; the engine does not care which kind of lookup it serves).
engine::Op ToEngineOp(const Operation& op);

/// What a workload run measured.
struct ExecutionResult {
  util::PercentileSketch latency_ns;
  double total_ns = 0.0;
  uint64_t total_ios = 0;
  size_t num_ops = 0;
  size_t lookups_found = 0;
  size_t lookups_missed = 0;

  double MeanLatencyNs() const {
    return num_ops == 0 ? 0.0 : total_ns / static_cast<double>(num_ops);
  }
  double IosPerOp() const {
    return num_ops == 0 ? 0.0
                        : static_cast<double>(total_ios) /
                              static_cast<double>(num_ops);
  }
  /// Tail latencies from the per-operation sketch.
  double P90LatencyNs() const { return latency_ns.Quantile(0.90); }
  double P99LatencyNs() const { return latency_ns.Quantile(0.99); }
};

/// Folds one engine-attributed operation result into the aggregate,
/// crediting found/missed for lookups. `type` must be the OpType the
/// result's op was generated as.
void AccumulateOpResult(OpType type, const engine::OpResult& result,
                        ExecutionResult* out);

/// Context of one executed batch, delivered to `BatchObserver`s. Pointers
/// borrow the driver's buffers and are valid only for the duration of the
/// callback.
struct BatchEvent {
  /// 0-based batch sequence number within the driving run.
  size_t batch_index = 0;
  /// Operations in this batch.
  size_t count = 0;
  /// Generator-level view of the ops (zero- vs non-zero-result lookups
  /// distinguished). Null when the driver serves raw engine ops with no
  /// generator behind them (gateway-driven batches).
  const Operation* ops = nullptr;
  /// Engine-currency view of the batch; always set.
  const engine::Op* engine_ops = nullptr;
  /// Engine-attributed per-op outcomes, in submission order; always set.
  const engine::OpResult* results = nullptr;
  /// Op counts by `engine::OpKind` (kGet/kPut/kDelete/kScan).
  std::array<uint64_t, 4> kind_counts{};
  /// Per-tenant gateway queue depths at dispatch time. Null (with
  /// `num_queues` == 0) for executor-driven batches.
  const uint64_t* queue_depths = nullptr;
  size_t num_queues = 0;
  /// Simulated/real cost (ns) each engine shard advanced during this
  /// batch. Null when the driver does not track per-shard deltas.
  const double* shard_cost_delta_ns = nullptr;
  size_t num_shards = 0;
};

/// Observes executed batches through one typed event. The arbitration
/// layer implements this to account per-shard traffic and redistribute
/// memory between batches; the gateway's metrics and anything
/// deterministic that wants to watch (or reconfigure) the engine at batch
/// boundaries fits. Implementations may call `Reconfigure*` on the engine
/// but must not execute operations on it.
class BatchObserver {
 public:
  /// Observers are borrowed (never owned) by the driver; destruction is
  /// the attaching caller's business.
  virtual ~BatchObserver() = default;

  /// Called after each batch has executed, before the next is served.
  virtual void OnBatchEvent(engine::StorageEngine* engine,
                            const BatchEvent& event) = 0;
};

/// Compatibility shim for pre-BatchEvent observers: implement `OnBatch`
/// and attach anywhere a `BatchObserver` is accepted. The shim forwards
/// the event's generator-level op array, so a plain `BatchHook` only
/// observes generator-driven batches (`event.ops` != nullptr); implement
/// `OnBatchEvent` directly to also see gateway-driven batches.
class BatchHook : public BatchObserver {
 public:
  /// Called after each batch has executed, before the next is generated.
  virtual void OnBatch(engine::StorageEngine* engine, const Operation* ops,
                       size_t count) = 0;

  void OnBatchEvent(engine::StorageEngine* engine,
                    const BatchEvent& event) override {
    if (event.ops != nullptr) OnBatch(engine, event.ops, event.count);
  }
};

/// Fills `event->kind_counts` from `event->engine_ops`.
void CountBatchKinds(BatchEvent* event);

}  // namespace camal::workload

#endif  // CAMAL_WORKLOAD_REQUEST_H_
