#ifndef CAMAL_WORKLOAD_GENERATOR_H_
#define CAMAL_WORKLOAD_GENERATOR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "model/workload_spec.h"
#include "util/random.h"
#include "util/zipf.h"

namespace camal::workload {

/// The kinds of operations a workload stream emits.
enum class OpType {
  kZeroResultLookup,
  kNonZeroResultLookup,
  kRangeLookup,
  kWrite,
  kDelete,
};

/// One generated operation.
struct Operation {
  OpType type = OpType::kWrite;
  uint64_t key = 0;
  uint64_t value = 0;
  size_t scan_len = 0;
};

/// Manages the live key population: existing keys are shuffled even
/// integers (so hot Zipfian ranks are scattered across the key space) and
/// odd integers are guaranteed misses for zero-result lookups.
class KeySpace {
 public:
  KeySpace(uint64_t num_keys, uint64_t seed);

  uint64_t num_keys() const { return keys_.size(); }
  uint64_t KeyAt(uint64_t rank) const { return keys_[rank]; }

  /// A key guaranteed absent from the store.
  uint64_t MissingKey(util::Random* rng) const;

  /// Appends a brand-new key (for insert-heavy dynamic phases) and returns
  /// it.
  uint64_t AppendKey();

  /// All keys in insertion order (used for the initial bulk load).
  const std::vector<uint64_t>& keys() const { return keys_; }

 private:
  std::vector<uint64_t> keys_;
  uint64_t next_even_;
};

/// Stream generation knobs.
struct GeneratorConfig {
  /// Range-lookup selectivity in entries (s).
  size_t scan_len = 16;
  /// When true, write operations insert new keys (growing the data); when
  /// false they update existing keys (steady state).
  bool insert_new_keys = false;
  /// Per-tenant traffic hotness: when > 0 (and `num_shards` > 1), key
  /// draws are rejection-resampled so shard s of a hash-partitioned
  /// engine receives traffic proportional to 1/(s+1)^shard_skew — hot
  /// low-index shards, cold high-index ones. 0 (the default) changes
  /// nothing: the stream is bit-identical to the unbiased generator.
  /// Inserted *new* keys stay unbiased (appending a key fixes its shard).
  double shard_skew = 0.0;
  /// Shard count of the served engine (the ShardedEngine partitioner
  /// `Mix64(key) % num_shards`). Only read when `shard_skew` > 0.
  size_t num_shards = 1;
};

/// Draws operations matching a WorkloadSpec's mix, key skew, and delete
/// fraction.
class OperationGenerator {
 public:
  OperationGenerator(const model::WorkloadSpec& spec, KeySpace* keys,
                     const GeneratorConfig& config, uint64_t seed);

  Operation Next();

  /// Swaps in a new mix mid-stream (dynamic mode).
  void SetSpec(const model::WorkloadSpec& spec);

 private:
  uint64_t ExistingRank();

  /// True when per-shard traffic biasing is configured.
  bool ShardBiasActive() const {
    return config_.shard_skew > 0.0 && config_.num_shards > 1;
  }

  /// Existing-key / missing-key draws with the per-shard hotness bias
  /// applied (plain draws when the bias is off — no extra randomness is
  /// consumed, keeping the skew-off stream bit-identical).
  uint64_t BiasedExistingKey();
  uint64_t BiasedMissingKey();

  /// Accepts or redraws `key` until its home shard passes the hotness
  /// filter (bounded redraws keep generation O(1) per op).
  template <typename Redraw>
  uint64_t RejectionSample(uint64_t key, Redraw redraw);

  model::WorkloadSpec spec_;
  KeySpace* keys_;
  /// Acceptance probability of shard `shard` (hottest shard = 1):
  /// (1/(shard+1))^shard_skew, computed inline — a precomputed table
  /// would cost O(num_shards) memory per generator (8 MB at a million
  /// tenants) for a value `pow` produces bit-identically on demand.
  double ShardAccept(size_t shard) const;

  GeneratorConfig config_;
  util::Random rng_;
  std::unique_ptr<util::ZipfGenerator> zipf_;
  uint64_t zipf_domain_ = 0;
  uint64_t next_value_ = 1;
};

}  // namespace camal::workload

#endif  // CAMAL_WORKLOAD_GENERATOR_H_
