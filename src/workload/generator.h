#ifndef CAMAL_WORKLOAD_GENERATOR_H_
#define CAMAL_WORKLOAD_GENERATOR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "model/workload_spec.h"
#include "util/random.h"
#include "util/zipf.h"

namespace camal::workload {

/// The kinds of operations a workload stream emits.
enum class OpType {
  kZeroResultLookup,
  kNonZeroResultLookup,
  kRangeLookup,
  kWrite,
  kDelete,
};

/// One generated operation.
struct Operation {
  OpType type = OpType::kWrite;
  uint64_t key = 0;
  uint64_t value = 0;
  size_t scan_len = 0;
};

/// Manages the live key population: existing keys are shuffled even
/// integers (so hot Zipfian ranks are scattered across the key space) and
/// odd integers are guaranteed misses for zero-result lookups.
class KeySpace {
 public:
  KeySpace(uint64_t num_keys, uint64_t seed);

  uint64_t num_keys() const { return keys_.size(); }
  uint64_t KeyAt(uint64_t rank) const { return keys_[rank]; }

  /// A key guaranteed absent from the store.
  uint64_t MissingKey(util::Random* rng) const;

  /// Appends a brand-new key (for insert-heavy dynamic phases) and returns
  /// it.
  uint64_t AppendKey();

  /// All keys in insertion order (used for the initial bulk load).
  const std::vector<uint64_t>& keys() const { return keys_; }

 private:
  std::vector<uint64_t> keys_;
  uint64_t next_even_;
};

/// Stream generation knobs.
struct GeneratorConfig {
  /// Range-lookup selectivity in entries (s).
  size_t scan_len = 16;
  /// When true, write operations insert new keys (growing the data); when
  /// false they update existing keys (steady state).
  bool insert_new_keys = false;
};

/// Draws operations matching a WorkloadSpec's mix, key skew, and delete
/// fraction.
class OperationGenerator {
 public:
  OperationGenerator(const model::WorkloadSpec& spec, KeySpace* keys,
                     const GeneratorConfig& config, uint64_t seed);

  Operation Next();

  /// Swaps in a new mix mid-stream (dynamic mode).
  void SetSpec(const model::WorkloadSpec& spec);

 private:
  uint64_t ExistingRank();

  model::WorkloadSpec spec_;
  KeySpace* keys_;
  GeneratorConfig config_;
  util::Random rng_;
  std::unique_ptr<util::ZipfGenerator> zipf_;
  uint64_t zipf_domain_ = 0;
  uint64_t next_value_ = 1;
};

}  // namespace camal::workload

#endif  // CAMAL_WORKLOAD_GENERATOR_H_
