#include "workload/executor.h"

#include <vector>

#include "util/thread_pool.h"

namespace camal::workload {

ExecutionResult Execute(lsm::LsmTree* tree, const model::WorkloadSpec& spec,
                        const ExecutorConfig& config, KeySpace* keys) {
  ExecutionResult result;
  OperationGenerator gen(spec, keys, config.generator, config.seed);
  sim::Device* device = tree->device();
  std::vector<lsm::Entry> scan_buf;

  for (size_t i = 0; i < config.num_ops; ++i) {
    const Operation op = gen.Next();
    const sim::DeviceSnapshot before = device->Snapshot();
    switch (op.type) {
      case OpType::kZeroResultLookup:
      case OpType::kNonZeroResultLookup: {
        uint64_t value = 0;
        if (tree->Get(op.key, &value)) {
          ++result.lookups_found;
        } else {
          ++result.lookups_missed;
        }
        break;
      }
      case OpType::kRangeLookup:
        scan_buf.clear();
        tree->Scan(op.key, op.scan_len, &scan_buf);
        break;
      case OpType::kWrite:
        tree->Put(op.key, op.value);
        break;
      case OpType::kDelete:
        tree->Delete(op.key);
        break;
    }
    const sim::DeviceSnapshot delta = device->Snapshot().Delta(before);
    result.latency_ns.Add(delta.elapsed_ns);
    result.total_ns += delta.elapsed_ns;
    result.total_ios += delta.TotalIos();
  }
  result.num_ops = config.num_ops;
  return result;
}

std::vector<ExecutionResult> ExecuteBatch(const std::vector<ExecuteJob>& jobs,
                                          util::ThreadPool* pool) {
  std::vector<ExecutionResult> out(jobs.size());
  util::ParallelFor(pool, 0, jobs.size(), [&](size_t i) {
    const ExecuteJob& job = jobs[i];
    out[i] = Execute(job.tree, job.spec, job.config, job.keys);
  });
  return out;
}

void BulkLoad(lsm::LsmTree* tree, const KeySpace& keys) {
  uint64_t value = 1;
  for (uint64_t key : keys.keys()) tree->Put(key, value++);
}

}  // namespace camal::workload
