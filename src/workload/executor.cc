#include "workload/executor.h"

#include <vector>

#include "lsm/entry.h"
#include "util/thread_pool.h"

namespace camal::workload {

ExecutionResult Execute(engine::StorageEngine* engine,
                        const model::WorkloadSpec& spec,
                        const ExecutorConfig& config, KeySpace* keys) {
  ExecutionResult result;
  OperationGenerator gen(spec, keys, config.generator, config.seed);
  std::vector<lsm::Entry> scan_buf;

  for (size_t i = 0; i < config.num_ops; ++i) {
    const Operation op = gen.Next();
    // Point ops charge exactly one shard, so price them off that shard's
    // device alone; scans fan out and need the aggregate snapshot. The
    // deltas are identical either way — this only avoids summing every
    // shard device twice per op in the measurement hot loop.
    const bool point_op = op.type != OpType::kRangeLookup;
    const size_t shard = point_op ? engine->ShardIndex(op.key) : 0;
    const sim::DeviceSnapshot before = point_op
                                           ? engine->ShardCostSnapshot(shard)
                                           : engine->CostSnapshot();
    switch (op.type) {
      case OpType::kZeroResultLookup:
      case OpType::kNonZeroResultLookup: {
        uint64_t value = 0;
        if (engine->Get(op.key, &value)) {
          ++result.lookups_found;
        } else {
          ++result.lookups_missed;
        }
        break;
      }
      case OpType::kRangeLookup:
        scan_buf.clear();
        engine->Scan(op.key, op.scan_len, &scan_buf);
        break;
      case OpType::kWrite:
        engine->Put(op.key, op.value);
        break;
      case OpType::kDelete:
        engine->Delete(op.key);
        break;
    }
    const sim::DeviceSnapshot after = point_op
                                          ? engine->ShardCostSnapshot(shard)
                                          : engine->CostSnapshot();
    const sim::DeviceSnapshot delta = after.Delta(before);
    result.latency_ns.Add(delta.elapsed_ns);
    result.total_ns += delta.elapsed_ns;
    result.total_ios += delta.TotalIos();
  }
  result.num_ops = config.num_ops;
  return result;
}

std::vector<ExecutionResult> ExecuteBatch(const std::vector<ExecuteJob>& jobs,
                                          util::ThreadPool* pool) {
  std::vector<ExecutionResult> out(jobs.size());
  util::ParallelFor(pool, 0, jobs.size(), [&](size_t i) {
    const ExecuteJob& job = jobs[i];
    out[i] = Execute(job.engine, job.spec, job.config, job.keys);
  });
  return out;
}

void BulkLoad(engine::StorageEngine* engine, const KeySpace& keys) {
  uint64_t value = 1;
  for (uint64_t key : keys.keys()) engine->Put(key, value++);
}

}  // namespace camal::workload
