#include "workload/executor.h"

#include <algorithm>
#include <vector>

#include "util/thread_pool.h"

namespace camal::workload {

ExecutionResult Execute(engine::StorageEngine* engine,
                        const model::WorkloadSpec& spec,
                        const ExecutorConfig& config, KeySpace* keys) {
  ExecutionResult result;
  OperationGenerator gen(spec, keys, config.generator, config.seed);

  // Generation is inherently serial (the generator's RNG — and, with
  // insert_new_keys, the key space — advances op by op) but independent of
  // execution, so the stream is produced in micro-batches that the engine
  // executes through its batched pipeline. Batch boundaries never affect
  // results; they only bound the working set and set the fan-out grain.
  const size_t batch = std::max<size_t>(1, config.batch_ops);
  std::vector<Operation> pending;
  std::vector<engine::Op> ops;
  std::vector<engine::OpResult> op_results;
  pending.reserve(batch);
  ops.reserve(batch);

  size_t remaining = config.num_ops;
  size_t batch_index = 0;
  while (remaining > 0) {
    const size_t n = std::min(batch, remaining);
    pending.clear();
    ops.clear();
    for (size_t i = 0; i < n; ++i) {
      pending.push_back(gen.Next());
      ops.push_back(ToEngineOp(pending.back()));
    }
    op_results.resize(n);
    engine->ExecuteOps(ops.data(), n, op_results.data());
    for (size_t i = 0; i < n; ++i) {
      AccumulateOpResult(pending[i].type, op_results[i], &result);
    }
    if (config.hook != nullptr) {
      BatchEvent event;
      event.batch_index = batch_index;
      event.count = n;
      event.ops = pending.data();
      event.engine_ops = ops.data();
      event.results = op_results.data();
      CountBatchKinds(&event);
      config.hook->OnBatchEvent(engine, event);
    }
    ++batch_index;
    remaining -= n;
  }
  result.num_ops = config.num_ops;
  return result;
}

std::vector<ExecutionResult> ExecuteBatch(const std::vector<ExecuteJob>& jobs,
                                          util::ThreadPool* pool) {
  std::vector<ExecutionResult> out(jobs.size());
  util::ParallelFor(pool, 0, jobs.size(), [&](size_t i) {
    const ExecuteJob& job = jobs[i];
    out[i] = Execute(job.engine, job.spec, job.config, job.keys);
  });
  return out;
}

void BulkLoad(engine::StorageEngine* engine, const KeySpace& keys) {
  uint64_t value = 1;
  for (uint64_t key : keys.keys()) engine->Put(key, value++);
}

}  // namespace camal::workload
