#ifndef CAMAL_WORKLOAD_TABLES_H_
#define CAMAL_WORKLOAD_TABLES_H_

#include <vector>

#include "model/workload_spec.h"

namespace camal::workload {

/// The 15 standard training workloads of Table 1 (uni/bi/tri-modal mixes).
std::vector<model::WorkloadSpec> TrainingWorkloads();

/// The 24 shifting test workloads of Table 2 (weights progressively
/// transition between operation types).
std::vector<model::WorkloadSpec> ShiftingWorkloads();

}  // namespace camal::workload

#endif  // CAMAL_WORKLOAD_TABLES_H_
