#include "workload/request.h"

namespace camal::workload {

engine::Op ToEngineOp(const Operation& op) {
  engine::Op out;
  out.key = op.key;
  switch (op.type) {
    case OpType::kZeroResultLookup:
    case OpType::kNonZeroResultLookup:
      out.kind = engine::OpKind::kGet;
      break;
    case OpType::kRangeLookup:
      out.kind = engine::OpKind::kScan;
      out.scan_len = op.scan_len;
      break;
    case OpType::kWrite:
      out.kind = engine::OpKind::kPut;
      out.value = op.value;
      break;
    case OpType::kDelete:
      out.kind = engine::OpKind::kDelete;
      break;
  }
  return out;
}

void AccumulateOpResult(OpType type, const engine::OpResult& result,
                        ExecutionResult* out) {
  if (type == OpType::kZeroResultLookup ||
      type == OpType::kNonZeroResultLookup) {
    if (result.found) {
      ++out->lookups_found;
    } else {
      ++out->lookups_missed;
    }
  }
  out->latency_ns.Add(result.latency_ns);
  out->total_ns += result.latency_ns;
  out->total_ios += result.ios;
}

void CountBatchKinds(BatchEvent* event) {
  event->kind_counts = {0, 0, 0, 0};
  for (size_t i = 0; i < event->count; ++i) {
    ++event->kind_counts[static_cast<size_t>(event->engine_ops[i].kind)];
  }
}

}  // namespace camal::workload
