#ifndef CAMAL_WORKLOAD_EXECUTOR_H_
#define CAMAL_WORKLOAD_EXECUTOR_H_

#include <cstdint>
#include <vector>

#include "engine/storage_engine.h"
#include "model/workload_spec.h"
#include "workload/generator.h"
#include "workload/request.h"

namespace camal::util {
class ThreadPool;
}  // namespace camal::util

namespace camal::workload {

/// Execution knobs.
struct ExecutorConfig {
  size_t num_ops = 2000;
  GeneratorConfig generator;
  uint64_t seed = 1;
  /// Operations submitted per `StorageEngine::ExecuteOps` batch. Purely a
  /// pipeline granularity knob: results are bit-identical for any value
  /// >= 1. Larger batches give a sharded engine more work to fan across
  /// its pool between merge points.
  size_t batch_ops = 512;
  /// Optional batch observer (not owned; must outlive the run). Null —
  /// the default — leaves execution exactly as before. Because batches
  /// are cut deterministically, a deterministic observer keeps the whole
  /// run deterministic. Legacy `BatchHook`s attach unchanged (they are
  /// observers through the shim in request.h).
  BatchObserver* hook = nullptr;
};

/// Runs `config.num_ops` operations drawn from `spec` against `engine`
/// through the batched `StorageEngine::ExecuteOps` pipeline; per-op
/// simulated latency and I/O are attributed by the engine itself. Any
/// StorageEngine works: a bare `lsm::LsmTree` or an
/// `engine::ShardedEngine` (which fans each batch across its pool).
ExecutionResult Execute(engine::StorageEngine* engine,
                        const model::WorkloadSpec& spec,
                        const ExecutorConfig& config, KeySpace* keys);

/// One independent run of the batched execution mode. Every run in a batch
/// must target its own engine (and therefore its own device(s)). The key
/// space may be shared between jobs only when no job mutates it — i.e. no
/// job sets `generator.insert_new_keys` (which appends keys during
/// execution); mutating jobs each need their own KeySpace.
struct ExecuteJob {
  engine::StorageEngine* engine = nullptr;
  model::WorkloadSpec spec;
  ExecutorConfig config;
  KeySpace* keys = nullptr;
};

/// Batched parallel run mode: executes every job (fanned across `pool`
/// when provided) and returns the results in job order. Each job carries
/// its own seed, so the output is bit-identical for any thread count.
std::vector<ExecutionResult> ExecuteBatch(const std::vector<ExecuteJob>& jobs,
                                          util::ThreadPool* pool = nullptr);

/// Bulk-loads every key of `keys` into `engine` (initial data ingestion).
void BulkLoad(engine::StorageEngine* engine, const KeySpace& keys);

}  // namespace camal::workload

#endif  // CAMAL_WORKLOAD_EXECUTOR_H_
