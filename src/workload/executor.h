#ifndef CAMAL_WORKLOAD_EXECUTOR_H_
#define CAMAL_WORKLOAD_EXECUTOR_H_

#include <cstdint>
#include <vector>

#include "engine/storage_engine.h"
#include "model/workload_spec.h"
#include "util/stats.h"
#include "workload/generator.h"

namespace camal::util {
class ThreadPool;
}  // namespace camal::util

namespace camal::workload {

/// Observes executed batches. The arbitration layer implements this to
/// account per-shard traffic and redistribute memory between batches;
/// anything deterministic that wants to watch (or reconfigure) the engine
/// at batch boundaries fits. Implementations may call `Reconfigure*` on
/// the engine but must not execute operations on it.
class BatchHook {
 public:
  /// Hooks are borrowed (never owned) by the executor; destruction is
  /// the attaching caller's business.
  virtual ~BatchHook() = default;

  /// Called after each batch has executed, before the next is generated.
  virtual void OnBatch(engine::StorageEngine* engine, const Operation* ops,
                       size_t count) = 0;
};

/// Execution knobs.
struct ExecutorConfig {
  size_t num_ops = 2000;
  GeneratorConfig generator;
  uint64_t seed = 1;
  /// Operations submitted per `StorageEngine::ExecuteOps` batch. Purely a
  /// pipeline granularity knob: results are bit-identical for any value
  /// >= 1. Larger batches give a sharded engine more work to fan across
  /// its pool between merge points.
  size_t batch_ops = 512;
  /// Optional batch observer (not owned; must outlive the run). Null —
  /// the default — leaves execution exactly as before. Because batches
  /// are cut deterministically, a deterministic hook keeps the whole run
  /// deterministic.
  BatchHook* hook = nullptr;
};

/// What a workload run measured.
struct ExecutionResult {
  util::PercentileSketch latency_ns;
  double total_ns = 0.0;
  uint64_t total_ios = 0;
  size_t num_ops = 0;
  size_t lookups_found = 0;
  size_t lookups_missed = 0;

  double MeanLatencyNs() const {
    return num_ops == 0 ? 0.0 : total_ns / static_cast<double>(num_ops);
  }
  double IosPerOp() const {
    return num_ops == 0 ? 0.0
                        : static_cast<double>(total_ios) /
                              static_cast<double>(num_ops);
  }
  /// Tail latencies from the per-operation sketch.
  double P90LatencyNs() const { return latency_ns.Quantile(0.90); }
  double P99LatencyNs() const { return latency_ns.Quantile(0.99); }
};

/// Translates a generated workload operation into the engine's batched op
/// representation (the zero-/non-zero-result lookup distinction collapses
/// to kGet; the engine does not care which kind of lookup it serves).
engine::Op ToEngineOp(const Operation& op);

/// Folds one engine-attributed operation result into the aggregate,
/// crediting found/missed for lookups. `type` must be the OpType the
/// result's op was generated as.
void AccumulateOpResult(OpType type, const engine::OpResult& result,
                        ExecutionResult* out);

/// Runs `config.num_ops` operations drawn from `spec` against `engine`
/// through the batched `StorageEngine::ExecuteOps` pipeline; per-op
/// simulated latency and I/O are attributed by the engine itself. Any
/// StorageEngine works: a bare `lsm::LsmTree` or an
/// `engine::ShardedEngine` (which fans each batch across its pool).
ExecutionResult Execute(engine::StorageEngine* engine,
                        const model::WorkloadSpec& spec,
                        const ExecutorConfig& config, KeySpace* keys);

/// One independent run of the batched execution mode. Every run in a batch
/// must target its own engine (and therefore its own device(s)). The key
/// space may be shared between jobs only when no job mutates it — i.e. no
/// job sets `generator.insert_new_keys` (which appends keys during
/// execution); mutating jobs each need their own KeySpace.
struct ExecuteJob {
  engine::StorageEngine* engine = nullptr;
  model::WorkloadSpec spec;
  ExecutorConfig config;
  KeySpace* keys = nullptr;
};

/// Batched parallel run mode: executes every job (fanned across `pool`
/// when provided) and returns the results in job order. Each job carries
/// its own seed, so the output is bit-identical for any thread count.
std::vector<ExecutionResult> ExecuteBatch(const std::vector<ExecuteJob>& jobs,
                                          util::ThreadPool* pool = nullptr);

/// Bulk-loads every key of `keys` into `engine` (initial data ingestion).
void BulkLoad(engine::StorageEngine* engine, const KeySpace& keys);

}  // namespace camal::workload

#endif  // CAMAL_WORKLOAD_EXECUTOR_H_
