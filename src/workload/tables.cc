#include "workload/tables.h"

namespace camal::workload {

namespace {
model::WorkloadSpec Make(double v, double r, double q, double w) {
  model::WorkloadSpec spec;
  spec.v = v;
  spec.r = r;
  spec.q = q;
  spec.w = w;
  return spec.Normalized();
}
}  // namespace

std::vector<model::WorkloadSpec> TrainingWorkloads() {
  // Table 1: operation percentages in 15 training workloads.
  return {
      Make(25, 25, 25, 25),  // 1  uniform
      Make(97, 1, 1, 1),     // 2  unimodal
      Make(1, 97, 1, 1),     // 3
      Make(1, 1, 97, 1),     // 4
      Make(1, 1, 1, 97),     // 5
      Make(49, 49, 1, 1),    // 6  bimodal
      Make(49, 1, 49, 1),    // 7
      Make(49, 1, 1, 49),    // 8
      Make(1, 49, 49, 1),    // 9
      Make(1, 49, 1, 49),    // 10
      Make(1, 1, 49, 49),    // 11
      Make(33, 33, 33, 1),   // 12 trimodal
      Make(33, 33, 1, 33),   // 13
      Make(33, 1, 33, 33),   // 14
      Make(1, 33, 33, 33),   // 15
  };
}

std::vector<model::WorkloadSpec> ShiftingWorkloads() {
  // Table 2: operation percentages in 24 test workloads; weights shift
  // gradually from zero-result-lookup-heavy through write-heavy.
  const double v[24] = {60, 75, 91, 75, 60, 45, 30, 15, 3,  5,  5,  5,
                        5,  5,  3,  5,  5,  5,  5,  5,  3,  15, 30, 45};
  const double r[24] = {5,  5,  3,  15, 30, 45, 60, 75, 91, 75, 60, 45,
                        30, 15, 3,  5,  5,  5,  5,  5,  3,  5,  5,  5};
  const double q[24] = {5,  5,  3,  5,  5,  5,  5,  5,  3,  15, 30, 45,
                        60, 75, 91, 75, 60, 45, 30, 15, 3,  5,  5,  5};
  const double w[24] = {30, 15, 3,  5,  5,  5,  5,  5,  3,  5,  5,  5,
                        5,  5,  3,  15, 30, 45, 60, 75, 91, 75, 60, 45};
  std::vector<model::WorkloadSpec> out;
  out.reserve(24);
  for (int i = 0; i < 24; ++i) out.push_back(Make(v[i], r[i], q[i], w[i]));
  return out;
}

}  // namespace camal::workload
