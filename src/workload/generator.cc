#include "workload/generator.h"

#include <algorithm>
#include <cmath>

#include "util/status.h"

namespace camal::workload {

KeySpace::KeySpace(uint64_t num_keys, uint64_t seed) {
  CAMAL_CHECK(num_keys > 0);
  keys_.resize(num_keys);
  for (uint64_t i = 0; i < num_keys; ++i) keys_[i] = 2 * (i + 1);
  next_even_ = 2 * (num_keys + 1);
  util::Random rng(seed);
  for (uint64_t i = num_keys; i > 1; --i) {
    std::swap(keys_[i - 1], keys_[rng.Uniform(i)]);
  }
}

uint64_t KeySpace::MissingKey(util::Random* rng) const {
  // Odd keys are never inserted.
  return 2 * rng->Uniform(next_even_ / 2) + 1;
}

uint64_t KeySpace::AppendKey() {
  const uint64_t key = next_even_;
  next_even_ += 2;
  keys_.push_back(key);
  return key;
}

OperationGenerator::OperationGenerator(const model::WorkloadSpec& spec,
                                       KeySpace* keys,
                                       const GeneratorConfig& config,
                                       uint64_t seed)
    : spec_(spec.Normalized()), keys_(keys), config_(config), rng_(seed) {}

double OperationGenerator::ShardAccept(size_t shard) const {
  // Zipf weights over shard index, scaled so the hottest shard always
  // accepts: shard s keeps a draw with probability (1/(s+1))^skew.
  return std::pow(1.0 / static_cast<double>(shard + 1), config_.shard_skew);
}

template <typename Redraw>
uint64_t OperationGenerator::RejectionSample(uint64_t key, Redraw redraw) {
  // Bounded rejection: even a maximally cold draw terminates after a few
  // iterations, and the bound keeps per-op generation cost O(1). The
  // acceptance test consumes one uniform per rejected draw, so the
  // sequence is a pure function of the seed.
  constexpr int kMaxRedraws = 32;
  for (int i = 0; i < kMaxRedraws; ++i) {
    const size_t shard =
        static_cast<size_t>(util::Mix64(key) % config_.num_shards);
    const double accept = ShardAccept(shard);
    if (accept >= 1.0 || rng_.NextDouble() < accept) break;
    key = redraw();
  }
  return key;
}

uint64_t OperationGenerator::BiasedExistingKey() {
  const uint64_t key = keys_->KeyAt(ExistingRank());
  if (!ShardBiasActive()) return key;
  return RejectionSample(key,
                         [this] { return keys_->KeyAt(ExistingRank()); });
}

uint64_t OperationGenerator::BiasedMissingKey() {
  const uint64_t key = keys_->MissingKey(&rng_);
  if (!ShardBiasActive()) return key;
  return RejectionSample(key, [this] { return keys_->MissingKey(&rng_); });
}

void OperationGenerator::SetSpec(const model::WorkloadSpec& spec) {
  spec_ = spec.Normalized();
}

uint64_t OperationGenerator::ExistingRank() {
  const uint64_t n = keys_->num_keys();
  if (spec_.skew <= 0.0) return rng_.Uniform(n);
  // Rebuild the Zipf sampler when the domain drifts (data growth) or the
  // skew changed.
  if (zipf_ == nullptr || zipf_->theta() != spec_.skew ||
      zipf_domain_ < n * 9 / 10 || zipf_domain_ > n) {
    zipf_ = std::make_unique<util::ZipfGenerator>(n, spec_.skew);
    zipf_domain_ = n;
  }
  return std::min<uint64_t>(zipf_->Next(&rng_), n - 1);
}

Operation OperationGenerator::Next() {
  Operation op;
  const double u = rng_.NextDouble();
  if (u < spec_.v) {
    op.type = OpType::kZeroResultLookup;
    op.key = BiasedMissingKey();
  } else if (u < spec_.v + spec_.r) {
    op.type = OpType::kNonZeroResultLookup;
    op.key = BiasedExistingKey();
  } else if (u < spec_.v + spec_.r + spec_.q) {
    op.type = OpType::kRangeLookup;
    op.key = BiasedExistingKey();
    op.scan_len = config_.scan_len;
  } else {
    if (spec_.delete_frac > 0.0 && rng_.Bernoulli(spec_.delete_frac)) {
      op.type = OpType::kDelete;
      op.key = BiasedExistingKey();
    } else {
      op.type = OpType::kWrite;
      op.key = config_.insert_new_keys ? keys_->AppendKey()
                                       : BiasedExistingKey();
      op.value = next_value_++;
    }
  }
  return op;
}

}  // namespace camal::workload
