#ifndef CAMAL_WORKLOAD_SHIFT_DETECTOR_H_
#define CAMAL_WORKLOAD_SHIFT_DETECTOR_H_

#include <cstddef>

#include "model/workload_spec.h"
#include "workload/generator.h"

namespace camal::workload {

/// Threshold-based workload-change detector (Section 6 of the paper).
///
/// Counts operation types over windows of `p` operations; at each window
/// boundary, if any operation fraction deviates from its value at the last
/// reconfiguration by more than `tau`, it signals that a reconfiguration
/// should run.
class ShiftDetector {
 public:
  ShiftDetector(size_t window_ops, double threshold);

  /// Records one operation. Returns true exactly when a reconfiguration
  /// should be triggered (evaluated at window boundaries; the very first
  /// completed window always triggers the initial tuning).
  bool Record(OpType type);

  /// Mix observed over the most recently completed window.
  const model::WorkloadSpec& LastWindowSpec() const { return last_window_; }

  size_t window_ops() const { return window_ops_; }
  double threshold() const { return threshold_; }
  size_t reconfigurations() const { return reconfigurations_; }

 private:
  size_t window_ops_;
  double threshold_;
  size_t counts_[4] = {0, 0, 0, 0};  // v, r, q, w(+deletes)
  size_t in_window_ = 0;
  bool has_reference_ = false;
  double reference_[4] = {0, 0, 0, 0};
  model::WorkloadSpec last_window_;
  size_t reconfigurations_ = 0;
};

}  // namespace camal::workload

#endif  // CAMAL_WORKLOAD_SHIFT_DETECTOR_H_
