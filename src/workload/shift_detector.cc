#include "workload/shift_detector.h"

#include <cmath>

#include "util/status.h"

namespace camal::workload {

ShiftDetector::ShiftDetector(size_t window_ops, double threshold)
    : window_ops_(window_ops), threshold_(threshold) {
  CAMAL_CHECK(window_ops > 0);
  CAMAL_CHECK(threshold >= 0.0);
}

bool ShiftDetector::Record(OpType type) {
  switch (type) {
    case OpType::kZeroResultLookup:
      ++counts_[0];
      break;
    case OpType::kNonZeroResultLookup:
      ++counts_[1];
      break;
    case OpType::kRangeLookup:
      ++counts_[2];
      break;
    case OpType::kWrite:
    case OpType::kDelete:
      ++counts_[3];
      break;
  }
  if (++in_window_ < window_ops_) return false;

  // Window boundary: compute fractions and compare to the reference.
  double frac[4];
  for (int i = 0; i < 4; ++i) {
    frac[i] = static_cast<double>(counts_[i]) /
              static_cast<double>(window_ops_);
    counts_[i] = 0;
  }
  in_window_ = 0;
  last_window_.v = frac[0];
  last_window_.r = frac[1];
  last_window_.q = frac[2];
  last_window_.w = frac[3];

  bool trigger = !has_reference_;
  if (has_reference_) {
    for (int i = 0; i < 4; ++i) {
      if (std::fabs(frac[i] - reference_[i]) > threshold_) {
        trigger = true;
        break;
      }
    }
  }
  if (trigger) {
    has_reference_ = true;
    for (int i = 0; i < 4; ++i) reference_[i] = frac[i];
    ++reconfigurations_;
  }
  return trigger;
}

}  // namespace camal::workload
