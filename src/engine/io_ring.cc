#include "engine/io_ring.h"

// The real implementation talks to the kernel directly through the
// io_uring UAPI: io_uring_setup(2) creates the ring fd, the SQ/CQ rings
// and SQE array are mmap'd from it, and io_uring_enter(2) submits/waits.
// Ring indices are published with acquire/release atomics exactly as
// liburing does — the kernel is the other side of the queue.
#if defined(CAMAL_WITH_URING) && defined(__linux__) && \
    __has_include(<linux/io_uring.h>)
#define CAMAL_URING_IMPL 1
#else
#define CAMAL_URING_IMPL 0
#endif

#if CAMAL_URING_IMPL
#include <linux/io_uring.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#endif

namespace camal::engine::fileio {

#if CAMAL_URING_IMPL

namespace {

int SysIoUringSetup(unsigned entries, io_uring_params* p) {
  return static_cast<int>(syscall(__NR_io_uring_setup, entries, p));
}

int SysIoUringEnter(int fd, unsigned to_submit, unsigned min_complete,
                    unsigned flags) {
  return static_cast<int>(
      syscall(__NR_io_uring_enter, fd, to_submit, min_complete, flags,
              nullptr, 0));
}

}  // namespace

struct IoRing::Impl {
  int ring_fd = -1;
  unsigned sq_entries = 0;
  unsigned cq_entries = 0;
  unsigned to_submit = 0;
  // One pending (prepped, unsubmitted) region of the SQ is tracked via
  // the local tail; the kernel-visible tail is only bumped in Submit().
  unsigned local_sq_tail = 0;

  void* sq_ring = nullptr;
  size_t sq_ring_bytes = 0;
  void* cq_ring = nullptr;
  size_t cq_ring_bytes = 0;
  io_uring_sqe* sqes = nullptr;
  size_t sqes_bytes = 0;
  bool single_mmap = false;

  unsigned* sq_head = nullptr;
  unsigned* sq_tail = nullptr;
  unsigned* sq_mask = nullptr;
  unsigned* sq_array = nullptr;
  unsigned* cq_head = nullptr;
  unsigned* cq_tail = nullptr;
  unsigned* cq_mask = nullptr;
  io_uring_cqe* cqes = nullptr;

  ~Impl() {
    if (sqes != nullptr) munmap(sqes, sqes_bytes);
    if (sq_ring != nullptr) munmap(sq_ring, sq_ring_bytes);
    if (!single_mmap && cq_ring != nullptr) munmap(cq_ring, cq_ring_bytes);
    if (ring_fd >= 0) close(ring_fd);
  }

  bool Setup(unsigned entries) {
    io_uring_params p;
    std::memset(&p, 0, sizeof(p));
    ring_fd = SysIoUringSetup(entries == 0 ? 1 : entries, &p);
    if (ring_fd < 0) return false;
    sq_entries = p.sq_entries;
    cq_entries = p.cq_entries;

    sq_ring_bytes = p.sq_off.array + p.sq_entries * sizeof(unsigned);
    cq_ring_bytes = p.cq_off.cqes + p.cq_entries * sizeof(io_uring_cqe);
    single_mmap = (p.features & IORING_FEAT_SINGLE_MMAP) != 0;
    if (single_mmap && cq_ring_bytes > sq_ring_bytes) {
      sq_ring_bytes = cq_ring_bytes;
    }
    sq_ring = mmap(nullptr, sq_ring_bytes, PROT_READ | PROT_WRITE,
                   MAP_SHARED | MAP_POPULATE, ring_fd, IORING_OFF_SQ_RING);
    if (sq_ring == MAP_FAILED) {
      sq_ring = nullptr;
      return false;
    }
    if (single_mmap) {
      cq_ring = sq_ring;
      cq_ring_bytes = sq_ring_bytes;
    } else {
      cq_ring = mmap(nullptr, cq_ring_bytes, PROT_READ | PROT_WRITE,
                     MAP_SHARED | MAP_POPULATE, ring_fd, IORING_OFF_CQ_RING);
      if (cq_ring == MAP_FAILED) {
        cq_ring = nullptr;
        return false;
      }
    }
    sqes_bytes = p.sq_entries * sizeof(io_uring_sqe);
    void* sq = mmap(nullptr, sqes_bytes, PROT_READ | PROT_WRITE,
                    MAP_SHARED | MAP_POPULATE, ring_fd, IORING_OFF_SQES);
    if (sq == MAP_FAILED) return false;
    sqes = static_cast<io_uring_sqe*>(sq);

    char* sqr = static_cast<char*>(sq_ring);
    sq_head = reinterpret_cast<unsigned*>(sqr + p.sq_off.head);
    sq_tail = reinterpret_cast<unsigned*>(sqr + p.sq_off.tail);
    sq_mask = reinterpret_cast<unsigned*>(sqr + p.sq_off.ring_mask);
    sq_array = reinterpret_cast<unsigned*>(sqr + p.sq_off.array);
    char* cqr = static_cast<char*>(cq_ring);
    cq_head = reinterpret_cast<unsigned*>(cqr + p.cq_off.head);
    cq_tail = reinterpret_cast<unsigned*>(cqr + p.cq_off.tail);
    cq_mask = reinterpret_cast<unsigned*>(cqr + p.cq_off.ring_mask);
    cqes = reinterpret_cast<io_uring_cqe*>(cqr + p.cq_off.cqes);
    local_sq_tail = *sq_tail;
    return true;
  }
};

IoRing::IoRing(unsigned entries) : impl_(std::make_unique<Impl>()) {
  if (!impl_->Setup(entries)) impl_.reset();
}

IoRing::~IoRing() = default;

bool IoRing::ok() const { return impl_ != nullptr; }

unsigned IoRing::capacity() const {
  return impl_ != nullptr ? impl_->sq_entries : 0;
}

bool IoRing::PrepRead(int fd, void* buf, unsigned len, uint64_t offset,
                      uint64_t user_data) {
  if (impl_ == nullptr) return false;
  Impl& r = *impl_;
  const unsigned head = __atomic_load_n(r.sq_head, __ATOMIC_ACQUIRE);
  if (r.local_sq_tail - head >= r.sq_entries) return false;  // SQ full.
  const unsigned idx = r.local_sq_tail & *r.sq_mask;
  io_uring_sqe* sqe = &r.sqes[idx];
  std::memset(sqe, 0, sizeof(*sqe));
  sqe->opcode = IORING_OP_READ;
  sqe->fd = fd;
  sqe->addr = reinterpret_cast<uint64_t>(buf);
  sqe->len = len;
  sqe->off = offset;
  sqe->user_data = user_data;
  r.sq_array[idx] = idx;
  ++r.local_sq_tail;
  ++r.to_submit;
  return true;
}

int IoRing::Submit() {
  if (impl_ == nullptr) return -ENOSYS;
  Impl& r = *impl_;
  if (r.to_submit == 0) return 0;
  __atomic_store_n(r.sq_tail, r.local_sq_tail, __ATOMIC_RELEASE);
  const unsigned n = r.to_submit;
  const int ret = SysIoUringEnter(r.ring_fd, n, 0, 0);
  if (ret < 0) return -errno;
  r.to_submit -= static_cast<unsigned>(ret);
  return ret;
}

int IoRing::WaitCompletions(unsigned min_complete,
                            std::vector<Completion>* out) {
  if (impl_ == nullptr) return -ENOSYS;
  Impl& r = *impl_;
  unsigned head = __atomic_load_n(r.cq_head, __ATOMIC_ACQUIRE);
  unsigned tail = __atomic_load_n(r.cq_tail, __ATOMIC_ACQUIRE);
  if (tail - head < min_complete) {
    const unsigned need = min_complete - (tail - head);
    const int ret = SysIoUringEnter(r.ring_fd, 0, need,
                                    IORING_ENTER_GETEVENTS);
    if (ret < 0) return -errno;
    tail = __atomic_load_n(r.cq_tail, __ATOMIC_ACQUIRE);
  }
  int reaped = 0;
  while (head != tail) {
    const io_uring_cqe& cqe = r.cqes[head & *r.cq_mask];
    out->push_back(Completion{cqe.user_data, cqe.res});
    ++head;
    ++reaped;
  }
  __atomic_store_n(r.cq_head, head, __ATOMIC_RELEASE);
  return reaped;
}

bool IoRingSupported() {
  static const bool supported = [] {
    io_uring_params p;
    std::memset(&p, 0, sizeof(p));
    const int fd = SysIoUringSetup(1, &p);
    if (fd < 0) return false;
    close(fd);
    return true;
  }();
  return supported;
}

#else  // !CAMAL_URING_IMPL — inert stubs; callers take the pread path.

struct IoRing::Impl {};

IoRing::IoRing(unsigned) {}
IoRing::~IoRing() = default;
bool IoRing::ok() const { return false; }
unsigned IoRing::capacity() const { return 0; }
bool IoRing::PrepRead(int, void*, unsigned, uint64_t, uint64_t) {
  return false;
}
int IoRing::Submit() { return -1; }
int IoRing::WaitCompletions(unsigned, std::vector<Completion>*) { return -1; }
bool IoRingSupported() { return false; }

#endif  // CAMAL_URING_IMPL

}  // namespace camal::engine::fileio
