#include "engine/sharded_engine.h"

#include <algorithm>
#include <limits>

#include "util/random.h"
#include "util/status.h"

namespace camal::engine {

ShardedEngine::ShardedEngine(size_t num_shards,
                             const lsm::Options& total_options,
                             const sim::DeviceConfig& device_config) {
  CAMAL_CHECK(num_shards >= 1);
  const lsm::Options shard_options = ShardOptions(total_options, num_shards);
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    sim::DeviceConfig cfg = device_config;
    // Shard 0 keeps the caller's jitter stream (1-shard bit-identity with
    // the direct-tree path); later shards derive independent streams.
    if (i > 0) cfg.jitter_seed = util::HashCombine(cfg.jitter_seed, i);
    Shard shard;
    shard.device = std::make_unique<sim::Device>(cfg);
    shard.tree =
        std::make_unique<lsm::LsmTree>(shard_options, shard.device.get());
    shards_.push_back(std::move(shard));
  }
}

lsm::Options ShardedEngine::ShardOptions(const lsm::Options& total,
                                         size_t num_shards) {
  CAMAL_CHECK(num_shards >= 1);
  if (num_shards == 1) return total;
  lsm::Options per_shard = total;
  const auto n = static_cast<uint64_t>(num_shards);
  per_shard.buffer_bytes =
      std::max<uint64_t>(total.entry_bytes, total.buffer_bytes / n);
  per_shard.bloom_bits = total.bloom_bits / n;
  per_shard.block_cache_bytes = total.block_cache_bytes / n;
  return per_shard;
}

size_t ShardedEngine::ShardIndex(uint64_t key) const {
  if (shards_.size() == 1) return 0;
  return static_cast<size_t>(util::Mix64(key) % shards_.size());
}

void ShardedEngine::Put(uint64_t key, uint64_t value) {
  shards_[ShardIndex(key)].tree->Put(key, value);
}

void ShardedEngine::Delete(uint64_t key) {
  shards_[ShardIndex(key)].tree->Delete(key);
}

bool ShardedEngine::Get(uint64_t key, uint64_t* value) {
  return shards_[ShardIndex(key)].tree->Get(key, value);
}

size_t ShardedEngine::Scan(uint64_t start_key, size_t max_entries,
                           std::vector<lsm::Entry>* out) {
  if (shards_.size() == 1) {
    return shards_[0].tree->Scan(start_key, max_entries, out);
  }
  if (max_entries == 0) return 0;

  // Scatter: each shard contributes up to max_entries of its own sorted,
  // live entries (keys are hash-partitioned, so shard slices are disjoint).
  std::vector<std::vector<lsm::Entry>> slices(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    shards_[s].tree->Scan(start_key, max_entries, &slices[s]);
  }

  // Gather: k-way merge of the disjoint sorted slices. Shard count is
  // small, so a linear min-scan beats a heap here.
  std::vector<size_t> idx(shards_.size(), 0);
  size_t added = 0;
  while (added < max_entries) {
    size_t best = shards_.size();
    uint64_t best_key = std::numeric_limits<uint64_t>::max();
    for (size_t s = 0; s < slices.size(); ++s) {
      if (idx[s] >= slices[s].size()) continue;
      const uint64_t k = slices[s][idx[s]].key;
      if (best == shards_.size() || k < best_key) {
        best = s;
        best_key = k;
      }
    }
    if (best == shards_.size()) break;
    out->push_back(slices[best][idx[best]++]);
    ++added;
  }
  return added;
}

void ShardedEngine::FlushMemtable() {
  for (Shard& shard : shards_) shard.tree->FlushMemtable();
}

void ShardedEngine::Reconfigure(const lsm::Options& new_total_options) {
  const lsm::Options per_shard =
      ShardOptions(new_total_options, shards_.size());
  for (Shard& shard : shards_) shard.tree->Reconfigure(per_shard);
}

void ShardedEngine::ReconfigureShard(size_t shard,
                                     const lsm::Options& options) {
  CAMAL_CHECK(shard < shards_.size());
  shards_[shard].tree->Reconfigure(options);
}

sim::DeviceSnapshot ShardedEngine::CostSnapshot() const {
  sim::DeviceSnapshot total;
  for (const Shard& shard : shards_) {
    const sim::DeviceSnapshot s = shard.device->Snapshot();
    total.block_reads += s.block_reads;
    total.block_writes += s.block_writes;
    total.elapsed_ns += s.elapsed_ns;
  }
  return total;
}

sim::DeviceSnapshot ShardedEngine::ShardCostSnapshot(size_t shard) const {
  CAMAL_CHECK(shard < shards_.size());
  return shards_[shard].device->Snapshot();
}

EngineCounters ShardedEngine::AggregateCounters() const {
  EngineCounters total;
  for (const Shard& shard : shards_) total += shard.tree->counters();
  return total;
}

uint64_t ShardedEngine::TotalEntries() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) total += shard.tree->TotalEntries();
  return total;
}

uint64_t ShardedEngine::DiskEntries() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) total += shard.tree->DiskEntries();
  return total;
}

uint64_t ShardedEngine::ShardEntries(size_t shard) const {
  CAMAL_CHECK(shard < shards_.size());
  return shards_[shard].tree->TotalEntries();
}

bool ShardedEngine::InTransition() const {
  for (const Shard& shard : shards_) {
    if (shard.tree->InTransition()) return true;
  }
  return false;
}

}  // namespace camal::engine
