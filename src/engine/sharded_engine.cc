#include "engine/sharded_engine.h"

#include <algorithm>
#include <limits>

#include "util/random.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace camal::engine {

size_t MergeDisjointSlices(const std::vector<std::vector<lsm::Entry>>& slices,
                           size_t max_entries, std::vector<lsm::Entry>* out) {
  // Min-heap of (head key, slice index); each pop advances one slice
  // cursor and may re-push that slice's next head.
  struct Head {
    uint64_t key;
    size_t slice;
  };
  const auto greater = [](const Head& a, const Head& b) {
    return a.key > b.key;
  };
  std::vector<Head> heap;
  heap.reserve(slices.size());
  std::vector<size_t> idx(slices.size(), 0);
  for (size_t s = 0; s < slices.size(); ++s) {
    if (!slices[s].empty()) heap.push_back(Head{slices[s][0].key, s});
  }
  std::make_heap(heap.begin(), heap.end(), greater);

  size_t added = 0;
  while (added < max_entries && !heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), greater);
    const size_t s = heap.back().slice;
    heap.pop_back();
    out->push_back(slices[s][idx[s]++]);
    ++added;
    if (idx[s] < slices[s].size()) {
      heap.push_back(Head{slices[s][idx[s]].key, s});
      std::push_heap(heap.begin(), heap.end(), greater);
    }
  }
  return added;
}

ShardedEngine::ShardedEngine(size_t num_shards,
                             const lsm::Options& total_options,
                             const sim::DeviceConfig& device_config) {
  CAMAL_CHECK(num_shards >= 1);
  const lsm::Options shard_options = ShardOptions(total_options, num_shards);
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    sim::DeviceConfig cfg = device_config;
    // Shard 0 keeps the caller's jitter stream (1-shard bit-identity with
    // the direct-tree path); later shards derive independent streams.
    if (i > 0) cfg.jitter_seed = util::HashCombine(cfg.jitter_seed, i);
    Shard shard;
    shard.device = std::make_unique<sim::Device>(cfg);
    shard.tree =
        std::make_unique<lsm::LsmTree>(shard_options, shard.device.get());
    shards_.push_back(std::move(shard));
  }
}

lsm::Options ShardedEngine::ShardOptions(const lsm::Options& total,
                                         size_t num_shards) {
  CAMAL_CHECK(num_shards >= 1);
  if (num_shards == 1) return total;
  lsm::Options per_shard = total;
  const auto n = static_cast<uint64_t>(num_shards);
  per_shard.buffer_bytes =
      std::max<uint64_t>(total.entry_bytes, total.buffer_bytes / n);
  per_shard.bloom_bits = total.bloom_bits / n;
  per_shard.block_cache_bytes = total.block_cache_bytes / n;
  return per_shard;
}

size_t ShardedEngine::ShardIndex(uint64_t key) const {
  if (shards_.size() == 1) return 0;
  return static_cast<size_t>(util::Mix64(key) % shards_.size());
}

void ShardedEngine::Put(uint64_t key, uint64_t value) {
  shards_[ShardIndex(key)].tree->Put(key, value);
}

void ShardedEngine::Delete(uint64_t key) {
  shards_[ShardIndex(key)].tree->Delete(key);
}

bool ShardedEngine::Get(uint64_t key, uint64_t* value) {
  return shards_[ShardIndex(key)].tree->Get(key, value);
}

void ShardedEngine::ScatterScan(uint64_t start_key, size_t max_entries,
                                std::vector<std::vector<lsm::Entry>>* slices) {
  // Each probe touches only its own shard's tree and device, so the fan-out
  // is deterministic: shard-local cost is independent of scheduling.
  slices->assign(shards_.size(), {});
  util::ParallelFor(pool_, 0, shards_.size(), [&](size_t s) {
    shards_[s].tree->Scan(start_key, max_entries, &(*slices)[s]);
  });
}

size_t ShardedEngine::Scan(uint64_t start_key, size_t max_entries,
                           std::vector<lsm::Entry>* out) {
  if (shards_.size() == 1) {
    return shards_[0].tree->Scan(start_key, max_entries, out);
  }
  if (max_entries == 0) return 0;

  // Scatter: each shard contributes up to max_entries of its own sorted,
  // live entries (keys are hash-partitioned, so shard slices are disjoint).
  std::vector<std::vector<lsm::Entry>> slices;
  ScatterScan(start_key, max_entries, &slices);

  // Gather: binary-heap k-way merge of the disjoint sorted slices.
  return MergeDisjointSlices(slices, max_entries, out);
}

void ShardedEngine::ExecuteOps(const Op* ops, size_t count,
                               OpResult* results) {
  if (count == 0) return;
  const size_t num_shards = shards_.size();

  // Partition the batch into per-shard operation lists in submission
  // order: point ops go to their routed shard, a scan probe appears in
  // every shard's list. Each shard's list is exactly the op subsequence
  // that shard would serve under serial execution, so running the lists
  // concurrently (shard state — tree, device, jitter stream — is fully
  // shard-local) reproduces the serial results bit-for-bit with no
  // barrier inside the batch.
  std::vector<std::vector<size_t>> lists(num_shards);
  std::vector<size_t> scan_slot(count, 0);
  std::vector<size_t> scan_op;
  for (size_t i = 0; i < count; ++i) {
    if (ops[i].kind == OpKind::kScan) {
      scan_slot[i] = scan_op.size();
      scan_op.push_back(i);
      for (size_t s = 0; s < num_shards; ++s) lists[s].push_back(i);
    } else {
      lists[ShardIndex(ops[i].key)].push_back(i);
    }
  }

  // Per-(scan, shard) probe bookkeeping, indexed slot * num_shards + s so
  // concurrent writers touch disjoint elements. Snapshots (not deltas) are
  // recorded so the merge below can reproduce the historical "sum the
  // devices, then diff the totals" floating-point arithmetic exactly.
  const size_t num_scans = scan_op.size();
  std::vector<sim::DeviceSnapshot> scan_before(num_scans * num_shards);
  std::vector<sim::DeviceSnapshot> scan_after(num_scans * num_shards);
  std::vector<size_t> scan_counts(num_scans * num_shards, 0);

  std::vector<size_t> active;
  active.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    if (!lists[s].empty()) active.push_back(s);
  }

  util::ParallelFor(pool_, 0, active.size(), [&](size_t a) {
    const size_t s = active[a];
    lsm::LsmTree* tree = shards_[s].tree.get();
    sim::Device* dev = shards_[s].device.get();
    std::vector<lsm::Entry> scratch;
    for (size_t i : lists[s]) {
      const Op& op = ops[i];
      if (op.kind == OpKind::kScan) {
        const size_t slot = scan_slot[i] * num_shards + s;
        scratch.clear();
        scan_before[slot] = dev->Snapshot();
        scan_counts[slot] = tree->Scan(op.key, op.scan_len, &scratch);
        scan_after[slot] = dev->Snapshot();
        continue;
      }
      OpResult r;
      const sim::DeviceSnapshot before = dev->Snapshot();
      switch (op.kind) {
        case OpKind::kGet: {
          uint64_t value = 0;
          r.found = tree->Get(op.key, &value);
          break;
        }
        case OpKind::kPut:
          tree->Put(op.key, op.value);
          break;
        case OpKind::kDelete:
          tree->Delete(op.key);
          break;
        case OpKind::kScan:
          break;  // handled above
      }
      const sim::DeviceSnapshot delta = dev->Snapshot().Delta(before);
      r.latency_ns = delta.elapsed_ns;
      r.ios = delta.TotalIos();
      results[i] = r;
    }
  });

  // Deterministic gather for the scans: sum the per-shard snapshots in
  // shard order, diff the totals (the serial-equivalent cost — the same
  // bits the old caller-side CostSnapshot() diff produced), and cap the
  // combined hit count at the probe limit.
  for (size_t slot = 0; slot < num_scans; ++slot) {
    sim::DeviceSnapshot total_before, total_after;
    size_t hits = 0;
    for (size_t s = 0; s < num_shards; ++s) {
      total_before += scan_before[slot * num_shards + s];
      total_after += scan_after[slot * num_shards + s];
      hits += scan_counts[slot * num_shards + s];
    }
    const sim::DeviceSnapshot delta = total_after.Delta(total_before);
    const size_t i = scan_op[slot];
    OpResult r;
    r.latency_ns = delta.elapsed_ns;
    r.ios = delta.TotalIos();
    r.scan_hits = std::min(ops[i].scan_len, hits);
    results[i] = r;
  }
}

void ShardedEngine::FlushMemtable() {
  for (Shard& shard : shards_) shard.tree->FlushMemtable();
}

void ShardedEngine::Reconfigure(const lsm::Options& new_total_options) {
  const lsm::Options per_shard =
      ShardOptions(new_total_options, shards_.size());
  for (Shard& shard : shards_) shard.tree->Reconfigure(per_shard);
}

void ShardedEngine::ReconfigureShard(size_t shard,
                                     const lsm::Options& options) {
  CAMAL_CHECK(shard < shards_.size());
  shards_[shard].tree->Reconfigure(options);
}

lsm::Options ShardedEngine::ShardOptionsSnapshot(size_t shard) const {
  CAMAL_CHECK(shard < shards_.size());
  return shards_[shard].tree->options();
}

sim::DeviceSnapshot ShardedEngine::CostSnapshot() const {
  sim::DeviceSnapshot total;
  for (const Shard& shard : shards_) total += shard.device->Snapshot();
  return total;
}

sim::DeviceSnapshot ShardedEngine::ShardCostSnapshot(size_t shard) const {
  CAMAL_CHECK(shard < shards_.size());
  return shards_[shard].device->Snapshot();
}

EngineCounters ShardedEngine::AggregateCounters() const {
  EngineCounters total;
  for (const Shard& shard : shards_) total += shard.tree->counters();
  return total;
}

EngineCounters ShardedEngine::ShardCounters(size_t shard) const {
  CAMAL_CHECK(shard < shards_.size());
  return shards_[shard].tree->counters();
}

uint64_t ShardedEngine::TotalEntries() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) total += shard.tree->TotalEntries();
  return total;
}

uint64_t ShardedEngine::DiskEntries() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) total += shard.tree->DiskEntries();
  return total;
}

uint64_t ShardedEngine::ShardEntries(size_t shard) const {
  CAMAL_CHECK(shard < shards_.size());
  return shards_[shard].tree->TotalEntries();
}

bool ShardedEngine::InTransition() const {
  for (const Shard& shard : shards_) {
    if (shard.tree->InTransition()) return true;
  }
  return false;
}

}  // namespace camal::engine
