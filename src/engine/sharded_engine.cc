#include "engine/sharded_engine.h"

#include <algorithm>
#include <limits>
#include <unordered_map>
#include <utility>

#include "util/random.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace camal::engine {

namespace {

/// Mirror of LsmTree's private transition predicate, evaluated against a
/// frozen shard's levels so a hibernated shard can be reconfigured
/// in place — updating options, cache capacity, and the transition flag
/// exactly as a live `Reconfigure` would — without rehydrating it.
bool AnyLevelViolates(const lsm::Levels& levels, const lsm::Options& opts) {
  for (size_t i = 0; i < levels.NumLevels(); ++i) {
    const auto& runs = levels.At(i);
    if (runs.empty()) continue;
    if (runs.size() > static_cast<size_t>(opts.MaxRunsPerLevel())) return true;
    if (static_cast<double>(levels.LevelEntries(i)) >
        opts.LevelCapacityEntries(static_cast<int>(i))) {
      return true;
    }
  }
  return false;
}

/// In-place reconfiguration of a hibernated shard: same observable effect
/// as waking it, calling `LsmTree::Reconfigure`, and re-freezing — the
/// cache truncates from the LRU end, the transition flag is recomputed —
/// but O(cache keys) instead of a full rehydration.
void ReconfigureFrozen(lsm::FrozenTreeState* frozen, const lsm::Options& opts,
                       uint64_t block_bytes) {
  CAMAL_CHECK(opts.Validate().ok());
  CAMAL_CHECK(opts.entry_bytes == frozen->options.entry_bytes);
  frozen->options = opts;
  const uint64_t capacity = opts.block_cache_bytes / block_bytes;
  frozen->cache.capacity = capacity;
  if (frozen->cache.keys_mru_to_lru.size() > capacity) {
    frozen->cache.keys_mru_to_lru.resize(capacity);
  }
  frozen->transition_active = AnyLevelViolates(frozen->levels, opts);
}

}  // namespace

size_t MergeDisjointSlices(const std::vector<std::vector<lsm::Entry>>& slices,
                           size_t max_entries, std::vector<lsm::Entry>* out) {
  // Min-heap of (head key, slice index); each pop advances one slice
  // cursor and may re-push that slice's next head.
  struct Head {
    uint64_t key;
    size_t slice;
  };
  const auto greater = [](const Head& a, const Head& b) {
    return a.key > b.key;
  };
  std::vector<Head> heap;
  heap.reserve(slices.size());
  std::vector<size_t> idx(slices.size(), 0);
  for (size_t s = 0; s < slices.size(); ++s) {
    if (!slices[s].empty()) heap.push_back(Head{slices[s][0].key, s});
  }
  std::make_heap(heap.begin(), heap.end(), greater);

  size_t added = 0;
  while (added < max_entries && !heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), greater);
    const size_t s = heap.back().slice;
    heap.pop_back();
    out->push_back(slices[s][idx[s]++]);
    ++added;
    if (idx[s] < slices[s].size()) {
      heap.push_back(Head{slices[s][idx[s]].key, s});
      std::push_heap(heap.begin(), heap.end(), greater);
    }
  }
  return added;
}

ShardedEngine::ShardedEngine(size_t num_shards,
                             const lsm::Options& total_options,
                             const sim::DeviceConfig& device_config,
                             const ShardLifecycleConfig& lifecycle)
    : default_options_(ShardOptions(total_options, num_shards)),
      device_config_(device_config),
      lifecycle_(lifecycle) {
  CAMAL_CHECK(num_shards >= 1);
  CAMAL_CHECK(default_options_.Validate().ok());
  num_shards_ = num_shards;
  if (!lifecycle_.lazy) {
    for (size_t s = 0; s < num_shards; ++s) MaterializeShard(s);
  }
}

lsm::Options ShardedEngine::ShardOptions(const lsm::Options& total,
                                         size_t num_shards) {
  CAMAL_CHECK(num_shards >= 1);
  if (num_shards == 1) return total;
  lsm::Options per_shard = total;
  const auto n = static_cast<uint64_t>(num_shards);
  per_shard.buffer_bytes =
      std::max<uint64_t>(total.entry_bytes, total.buffer_bytes / n);
  per_shard.bloom_bits = total.bloom_bits / n;
  per_shard.block_cache_bytes = total.block_cache_bytes / n;
  return per_shard;
}

size_t ShardedEngine::ShardIndex(uint64_t key) const {
  if (num_shards_ == 1) return 0;
  return static_cast<size_t>(util::Mix64(key) % num_shards_);
}

const lsm::Options& ShardedEngine::EffectiveOptions(size_t s) const {
  const auto it = cold_options_.find(s);
  return it != cold_options_.end() ? it->second : default_options_;
}

sim::Device* ShardedEngine::EnsureDevice(size_t s) {
  Shard& shard = shards_[s];
  if (shard.device == nullptr) {
    sim::DeviceConfig cfg = device_config_;
    // Shard 0 keeps the caller's jitter stream (1-shard bit-identity with
    // the direct-tree path); later shards derive independent streams. The
    // seed is a pure function of the shard index, so a shard that
    // materializes late gets exactly the device eager construction would
    // have given it.
    if (s > 0) cfg.jitter_seed = util::HashCombine(cfg.jitter_seed, s);
    shard.device = std::make_unique<sim::Device>(cfg);
  }
  return shard.device.get();
}

lsm::LsmTree* ShardedEngine::MaterializeShard(size_t s) {
  Shard& shard = shards_[s];
  if (shard.tree != nullptr) return shard.tree.get();
  sim::Device* device = EnsureDevice(s);
  if (shard.frozen != nullptr) {
    shard.tree =
        std::make_unique<lsm::LsmTree>(std::move(*shard.frozen), device);
    shard.frozen.reset();
    hibernated_.erase(s);
  } else {
    const auto it = cold_options_.find(s);
    shard.tree = std::make_unique<lsm::LsmTree>(
        it != cold_options_.end() ? it->second : default_options_, device);
    if (it != cold_options_.end()) cold_options_.erase(it);
  }
  resident_.insert(s);
  return shard.tree.get();
}

void ShardedEngine::HibernateShard(size_t s) {
  Shard& shard = shards_[s];
  CAMAL_CHECK(shard.tree != nullptr);
  shard.frozen = shard.tree->Freeze();
  shard.tree.reset();
  resident_.erase(s);
  hibernated_.insert(s);
}

void ShardedEngine::WakeAllHibernated() {
  while (!hibernated_.empty()) MaterializeShard(*hibernated_.begin());
}

void ShardedEngine::Touch(size_t s) {
  if (lifecycle_.hibernate_after_batches == 0) return;
  Shard& shard = shards_[s];
  if (shard.last_touch_epoch == epoch_) return;
  shard.last_touch_epoch = epoch_;
  idle_queue_.emplace_back(s, epoch_);
}

void ShardedEngine::HibernateIdleShards() {
  const uint64_t window = lifecycle_.hibernate_after_batches;
  while (!idle_queue_.empty() && idle_queue_.front().second + window <= epoch_) {
    const auto [s, touched] = idle_queue_.front();
    idle_queue_.pop_front();
    // Lazy deletion: only the newest timer for a still-resident shard
    // hibernates it; stale entries (shard re-touched or already asleep)
    // fall through.
    const auto it = shards_.find(s);
    if (it != shards_.end() && it->second.tree != nullptr &&
        it->second.last_touch_epoch == touched) {
      HibernateShard(s);
    }
  }
}

void ShardedEngine::Put(uint64_t key, uint64_t value) {
  const size_t s = ShardIndex(key);
  lsm::LsmTree* tree = MaterializeShard(s);
  Touch(s);
  tree->Put(key, value);
}

void ShardedEngine::Delete(uint64_t key) {
  const size_t s = ShardIndex(key);
  lsm::LsmTree* tree = MaterializeShard(s);
  Touch(s);
  tree->Delete(key);
}

bool ShardedEngine::Get(uint64_t key, uint64_t* value) {
  const size_t s = ShardIndex(key);
  lsm::LsmTree* tree = MaterializeShard(s);
  Touch(s);
  return tree->Get(key, value);
}

void ShardedEngine::ScatterScan(const std::vector<size_t>& probed,
                                uint64_t start_key, size_t max_entries,
                                std::vector<std::vector<lsm::Entry>>* slices) {
  // Each probe touches only its own shard's tree and device, so the fan-out
  // is deterministic: shard-local cost is independent of scheduling. Tree
  // pointers are resolved before the fan-out — workers never touch the
  // shard map itself.
  slices->assign(probed.size(), {});
  std::vector<lsm::LsmTree*> trees(probed.size());
  for (size_t k = 0; k < probed.size(); ++k) {
    trees[k] = shards_.at(probed[k]).tree.get();
  }
  util::ParallelFor(pool_, 0, probed.size(), [&](size_t k) {
    trees[k]->Scan(start_key, max_entries, &(*slices)[k]);
  });
}

size_t ShardedEngine::Scan(uint64_t start_key, size_t max_entries,
                           std::vector<lsm::Entry>* out) {
  if (num_shards_ == 1) {
    lsm::LsmTree* tree = MaterializeShard(0);
    Touch(0);
    return tree->Scan(start_key, max_entries, out);
  }
  if (max_entries == 0) return 0;

  // Scans consult every shard that holds data: hibernated shards wake,
  // cold shards are skipped (an empty tree contributes nothing and
  // charges nothing).
  WakeAllHibernated();
  const std::vector<size_t> probed(resident_.begin(), resident_.end());
  for (size_t s : probed) Touch(s);

  // Scatter: each resident shard contributes up to max_entries of its own
  // sorted, live entries (keys are hash-partitioned, so shard slices are
  // disjoint).
  std::vector<std::vector<lsm::Entry>> slices;
  ScatterScan(probed, start_key, max_entries, &slices);

  // Gather: binary-heap k-way merge of the disjoint sorted slices.
  return MergeDisjointSlices(slices, max_entries, out);
}

void ShardedEngine::ExecuteOps(const Op* ops, size_t count,
                               OpResult* results) {
  if (count == 0) return;
  ++epoch_;

  // Pass 1: bring every shard this batch drives to the materialized state.
  // Scans additionally wake all hibernated shards — their data
  // participates in every range probe — while cold shards stay cold
  // (probing an empty tree returns nothing and charges nothing, so
  // skipping them is bit-identical to the eager engine probing them).
  bool has_scan = false;
  for (size_t i = 0; i < count; ++i) {
    if (ops[i].kind == OpKind::kScan) {
      has_scan = true;
    } else {
      const size_t s = ShardIndex(ops[i].key);
      MaterializeShard(s);
      Touch(s);
    }
  }
  if (has_scan) WakeAllHibernated();

  // Pass 2: partition the batch into per-shard operation lists in
  // submission order: point ops go to their routed shard, a scan probe
  // appears in every resident shard's list. Each list is exactly the op
  // subsequence its shard would serve under serial execution, so running
  // the lists concurrently (shard state — tree, device, jitter stream —
  // is fully shard-local) reproduces the serial results bit-for-bit with
  // no barrier inside the batch. All bookkeeping is O(ops + resident),
  // never O(total shards).
  std::vector<size_t> list_shard;  // list index -> shard id
  std::vector<std::vector<size_t>> lists;
  std::unordered_map<size_t, size_t> list_of;
  if (has_scan) {
    // The probe set is the resident set after pass 1, ascending — every
    // point shard of this batch is already in it, so no list is created
    // below and list_shard stays sorted (the gather relies on it).
    list_shard.assign(resident_.begin(), resident_.end());
    lists.resize(list_shard.size());
    list_of.reserve(2 * list_shard.size());
    for (size_t k = 0; k < list_shard.size(); ++k) {
      list_of.emplace(list_shard[k], k);
      Touch(list_shard[k]);
    }
  }
  std::vector<size_t> scan_slot(count, 0);
  std::vector<size_t> scan_op;
  for (size_t i = 0; i < count; ++i) {
    if (ops[i].kind == OpKind::kScan) {
      scan_slot[i] = scan_op.size();
      scan_op.push_back(i);
      for (auto& list : lists) list.push_back(i);
    } else {
      const size_t s = ShardIndex(ops[i].key);
      const auto [it, inserted] = list_of.try_emplace(s, lists.size());
      if (inserted) {
        lists.emplace_back();
        list_shard.push_back(s);
      }
      lists[it->second].push_back(i);
    }
  }

  // Per-(scan, probed shard) bookkeeping, indexed slot * stride + k so
  // concurrent writers touch disjoint elements. Snapshots (not deltas) are
  // recorded so the merge below can reproduce the historical "sum the
  // devices, then diff the totals" floating-point arithmetic exactly.
  const size_t stride = lists.size();
  const size_t num_scans = scan_op.size();
  std::vector<sim::DeviceSnapshot> scan_before(num_scans * stride);
  std::vector<sim::DeviceSnapshot> scan_after(num_scans * stride);
  std::vector<size_t> scan_counts(num_scans * stride, 0);

  // Resolve shard slots before the fan-out: every listed shard is
  // materialized (pass 1), and workers must never touch the shard map.
  std::vector<Shard*> list_slot(lists.size());
  for (size_t k = 0; k < lists.size(); ++k) {
    list_slot[k] = &shards_.at(list_shard[k]);
  }

  util::ParallelFor(pool_, 0, lists.size(), [&](size_t k) {
    lsm::LsmTree* tree = list_slot[k]->tree.get();
    sim::Device* dev = list_slot[k]->device.get();
    std::vector<lsm::Entry> scratch;
    for (size_t i : lists[k]) {
      const Op& op = ops[i];
      if (op.kind == OpKind::kScan) {
        const size_t slot = scan_slot[i] * stride + k;
        scratch.clear();
        scan_before[slot] = dev->Snapshot();
        scan_counts[slot] = tree->Scan(op.key, op.scan_len, &scratch);
        scan_after[slot] = dev->Snapshot();
        continue;
      }
      OpResult r;
      const sim::DeviceSnapshot before = dev->Snapshot();
      switch (op.kind) {
        case OpKind::kGet: {
          uint64_t value = 0;
          r.found = tree->Get(op.key, &value);
          break;
        }
        case OpKind::kPut:
          tree->Put(op.key, op.value);
          break;
        case OpKind::kDelete:
          tree->Delete(op.key);
          break;
        case OpKind::kScan:
          break;  // handled above
      }
      const sim::DeviceSnapshot delta = dev->Snapshot().Delta(before);
      r.latency_ns = delta.elapsed_ns;
      r.ios = delta.TotalIos();
      results[i] = r;
    }
  });

  // Deterministic gather for the scans: sum the per-shard snapshots in
  // ascending shard order (list_shard is sorted whenever scans exist),
  // diff the totals (the serial-equivalent cost — the same bits the old
  // caller-side CostSnapshot() diff produced; absent cold shards would
  // have contributed exact zeros), and cap the combined hit count at the
  // probe limit.
  for (size_t slot = 0; slot < num_scans; ++slot) {
    sim::DeviceSnapshot total_before, total_after;
    size_t hits = 0;
    for (size_t k = 0; k < stride; ++k) {
      total_before += scan_before[slot * stride + k];
      total_after += scan_after[slot * stride + k];
      hits += scan_counts[slot * stride + k];
    }
    const sim::DeviceSnapshot delta = total_after.Delta(total_before);
    const size_t i = scan_op[slot];
    OpResult r;
    r.latency_ns = delta.elapsed_ns;
    r.ios = delta.TotalIos();
    r.scan_hits = std::min(ops[i].scan_len, hits);
    results[i] = r;
  }

  if (lifecycle_.hibernate_after_batches != 0) HibernateIdleShards();
  ProfileBatch(ops, count, results);
}

void ShardedEngine::FlushMemtable() {
  // Hibernated shards holding buffered writes wake to flush them; the
  // rest stay asleep (their flush would be a no-op). Cold shards are
  // empty by construction.
  std::vector<size_t> wake;
  for (size_t s : hibernated_) {
    if (!shards_.at(s).frozen->memtable.empty()) wake.push_back(s);
  }
  for (size_t s : wake) {
    MaterializeShard(s);
    Touch(s);
  }
  for (size_t s : resident_) shards_.at(s).tree->FlushMemtable();
}

void ShardedEngine::Reconfigure(const lsm::Options& new_total_options) {
  const lsm::Options per_shard = ShardOptions(new_total_options, num_shards_);
  default_options_ = per_shard;
  cold_options_.clear();
  for (size_t s : resident_) shards_.at(s).tree->Reconfigure(per_shard);
  for (size_t s : hibernated_) {
    Shard& sh = shards_.at(s);
    ReconfigureFrozen(sh.frozen.get(), per_shard,
                      sh.device->config().block_bytes);
  }
}

void ShardedEngine::ReconfigureShard(size_t shard,
                                     const lsm::Options& options) {
  CAMAL_CHECK(shard < num_shards_);
  const auto it = shards_.find(shard);
  if (it != shards_.end() && it->second.tree != nullptr) {
    it->second.tree->Reconfigure(options);
  } else if (it != shards_.end() && it->second.frozen != nullptr) {
    ReconfigureFrozen(it->second.frozen.get(), options,
                      it->second.device->config().block_bytes);
  } else {
    // Deferred: a cold shard is an empty tree, and reconfiguring an empty
    // tree is observationally identical to constructing it with the new
    // options in the first place.
    cold_options_[shard] = options;
  }
}

lsm::Options ShardedEngine::ShardOptionsSnapshot(size_t shard) const {
  CAMAL_CHECK(shard < num_shards_);
  const auto it = shards_.find(shard);
  if (it != shards_.end()) {
    if (it->second.tree != nullptr) return it->second.tree->options();
    if (it->second.frozen != nullptr) return it->second.frozen->options;
  }
  return EffectiveOptions(shard);
}

ShardState ShardedEngine::ShardLifecycle(size_t shard) const {
  CAMAL_CHECK(shard < num_shards_);
  const auto it = shards_.find(shard);
  if (it != shards_.end()) {
    if (it->second.tree != nullptr) return ShardState::kMaterialized;
    if (it->second.frozen != nullptr) return ShardState::kHibernated;
  }
  return ShardState::kCold;
}

void ShardedEngine::AppendResidentShards(std::vector<size_t>* out) const {
  out->insert(out->end(), resident_.begin(), resident_.end());
}

sim::DeviceSnapshot ShardedEngine::CostSnapshot() const {
  // Ascending shard order — the floating-point sum must be reproducible,
  // and the hashed map iterates in no useful order, so the touched shard
  // ids are sorted first (O(active log active)). Shards with no entry (or
  // no device yet) have charged nothing and contribute the same exact
  // zeros their fresh device would.
  std::vector<size_t> ids;
  ids.reserve(shards_.size());
  for (const auto& [s, shard] : shards_) {
    if (shard.device != nullptr) ids.push_back(s);
  }
  std::sort(ids.begin(), ids.end());
  sim::DeviceSnapshot total;
  for (size_t s : ids) total += shards_.at(s).device->Snapshot();
  return total;
}

sim::DeviceSnapshot ShardedEngine::ShardCostSnapshot(size_t shard) const {
  CAMAL_CHECK(shard < num_shards_);
  const auto it = shards_.find(shard);
  if (it == shards_.end() || it->second.device == nullptr) {
    return sim::DeviceSnapshot{};
  }
  return it->second.device->Snapshot();
}

EngineCounters ShardedEngine::AggregateCounters() const {
  // Integer sums are order-free, so the map iterates directly.
  EngineCounters total;
  for (const auto& [s, shard] : shards_) {
    (void)s;
    if (shard.tree != nullptr) {
      total += shard.tree->counters();
    } else if (shard.frozen != nullptr) {
      total += shard.frozen->counters;
    }
  }
  return total;
}

EngineCounters ShardedEngine::ShardCounters(size_t shard) const {
  CAMAL_CHECK(shard < num_shards_);
  const auto it = shards_.find(shard);
  if (it != shards_.end()) {
    if (it->second.tree != nullptr) return it->second.tree->counters();
    if (it->second.frozen != nullptr) return it->second.frozen->counters;
  }
  return EngineCounters{};
}

uint64_t ShardedEngine::TotalEntries() const {
  uint64_t total = 0;
  for (const auto& [s, shard] : shards_) {
    (void)s;
    if (shard.tree != nullptr) {
      total += shard.tree->TotalEntries();
    } else if (shard.frozen != nullptr) {
      total += shard.frozen->total_entries;
    }
  }
  return total;
}

uint64_t ShardedEngine::DiskEntries() const {
  uint64_t total = 0;
  for (const auto& [s, shard] : shards_) {
    (void)s;
    if (shard.tree != nullptr) {
      total += shard.tree->DiskEntries();
    } else if (shard.frozen != nullptr) {
      total += shard.frozen->disk_entries;
    }
  }
  return total;
}

uint64_t ShardedEngine::ShardEntries(size_t shard) const {
  CAMAL_CHECK(shard < num_shards_);
  const auto it = shards_.find(shard);
  if (it != shards_.end()) {
    if (it->second.tree != nullptr) return it->second.tree->TotalEntries();
    if (it->second.frozen != nullptr) return it->second.frozen->total_entries;
  }
  return 0;
}

bool ShardedEngine::InTransition() const {
  for (const auto& [s, shard] : shards_) {
    (void)s;
    if (shard.tree != nullptr && shard.tree->InTransition()) return true;
    if (shard.frozen != nullptr && shard.frozen->transition_active) {
      return true;
    }
  }
  return false;
}

lsm::LsmTree* ShardedEngine::shard(size_t i) {
  CAMAL_CHECK(i < num_shards_);
  lsm::LsmTree* tree = MaterializeShard(i);
  Touch(i);
  return tree;
}

sim::Device* ShardedEngine::shard_device(size_t i) {
  CAMAL_CHECK(i < num_shards_);
  return EnsureDevice(i);
}

}  // namespace camal::engine
