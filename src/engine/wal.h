#ifndef CAMAL_ENGINE_WAL_H_
#define CAMAL_ENGINE_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "engine/record_log.h"
#include "lsm/entry.h"

namespace camal::engine::fileio {

/// When WAL bytes reach the platter.
enum class WalSyncPolicy {
  /// Never fsync: durable across clean close + reopen (page cache flushes
  /// eventually), but a crash may lose recent writes. Zero added latency.
  kNone,
  /// fsync once per committed batch (group commit) — the default: one
  /// sync amortized over the whole `ExecuteOps` batch.
  kBatch,
  /// fsync every logged write: strongest guarantee, highest latency.
  kAlways,
};

/// \brief Per-shard write-ahead log of memtable contents.
///
/// Each record carries the WAL **epoch** current at append time plus a
/// batch of entries (CRC-framed by `RecordWriter`, torn-tail truncated by
/// replay). A flush bumps the shard's epoch in the manifest (`kFlush`)
/// and resets this log; replay applies only records stamped with the
/// recovered epoch, so a crash *between* the manifest commit and the log
/// reset cannot double-apply entries that already live in a run.
///
/// Appends buffer until `Commit` — group commit on batch boundaries —
/// except under `kAlways`, where every append commits (and syncs)
/// immediately.
class Wal {
 public:
  Wal(FileOps* ops, const std::string& shard_dir, WalSyncPolicy policy);

  /// Logs `n` entries at `epoch`. Buffered until `Commit` (kNone/kBatch);
  /// committed and synced immediately under kAlways.
  void Append(uint64_t epoch, const lsm::Entry* entries, size_t n);

  /// Writes everything buffered (one pwrite) and fsyncs under
  /// kBatch/kAlways. The engine calls this at batch boundaries and on
  /// clean close.
  void Commit();

  /// fsync regardless of policy.
  void Sync();

  /// Drops buffered appends and truncates the log to empty — the
  /// post-flush reset (all logged entries are now durable in a run).
  void Reset();

  /// Truncates a recovery-detected torn tail at `valid_bytes`.
  void TruncateTail(uint64_t valid_bytes);

  WalSyncPolicy policy() const { return policy_; }
  const std::string& path() const { return path_; }

  static std::string PathFor(const std::string& shard_dir) {
    return shard_dir + "/WAL";
  }

 private:
  FileOps* ops_;
  std::string path_;
  WalSyncPolicy policy_;
  std::unique_ptr<RecordWriter> writer_;
};

/// One replayed WAL record: the entries of a single `Append`, plus the
/// epoch they were logged under.
struct WalReplayRecord {
  uint64_t epoch = 0;
  std::vector<lsm::Entry> entries;
};

struct WalReplay {
  bool exists = false;
  std::vector<WalReplayRecord> records;
  uint64_t valid_bytes = 0;
  bool tail_torn = false;
};

/// Reads and CRC-verifies the WAL at `path`, stopping at the first torn
/// frame. The caller filters by epoch and truncates the tail.
WalReplay ReadWal(const std::string& path);

}  // namespace camal::engine::fileio

#endif  // CAMAL_ENGINE_WAL_H_
