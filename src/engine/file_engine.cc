#include "engine/file_engine.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <filesystem>
#include <limits>
#include <list>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "engine/io_ring.h"
#include "engine/manifest.h"
#include "engine/sharded_engine.h"
#include "lsm/bloom.h"
#include "util/random.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace camal::engine {

// Implementation-detail types live in a named namespace (not an anonymous
// one) because they appear as members of FileEngine::Shard, which has
// external linkage.
namespace fileio {

namespace fs = std::filesystem;

/// On-disk record: fixed 24 bytes so blocks decode by offset arithmetic.
/// The layout is private to this engine (run files are ephemeral
/// measurement artifacts, not an interchange format).
struct DiskEntry {
  uint64_t key = 0;
  uint64_t value = 0;
  uint64_t flags = 0;  // bit 0: tombstone
};
static_assert(sizeof(DiskEntry) == 24, "record layout must stay 24 bytes");

constexpr uint64_t kTombstoneFlag = 1;

/// Aborts with errno context; real-IO failures are environment errors the
/// measurement cannot recover from (same policy as CAMAL_CHECK).
inline void SysCheck(bool ok, const char* what, const std::string& path) {
  if (ok) return;
  std::fprintf(stderr, "FileEngine: %s failed for '%s': %s\n", what,
               path.c_str(), std::strerror(errno));
  std::abort();
}

/// Block-aligned heap buffer (O_DIRECT wants aligned reads and writes; the
/// same buffers serve the buffered fallback).
struct FreeDeleter {
  void operator()(void* p) const { std::free(p); }
};
using AlignedBuf = std::unique_ptr<char[], FreeDeleter>;

inline AlignedBuf AllocAligned(size_t bytes, size_t align) {
  void* p = nullptr;
  const int rc = posix_memalign(&p, align, bytes);
  CAMAL_CHECK(rc == 0 && p != nullptr);
  return AlignedBuf(static_cast<char*>(p));
}

inline double NowNs() {
  return std::chrono::duration<double, std::nano>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Profiling-clock read: the injected virtual clock when one is
/// configured, the steady monotonic clock otherwise. Every timing site of
/// the engine reads through this so tests can make measured latencies
/// deterministic.
inline double Now(const FileEngineConfig& cfg) {
  return cfg.clock_ns ? cfg.clock_ns() : NowNs();
}

/// An immutable cached block. Shared ownership lets cache hits hand the
/// caller a reference instead of a copy (runs are append-only, so block
/// bytes never change once read), and keeps a block a scan cursor holds
/// alive across an eviction.
using BlockPtr = std::shared_ptr<const std::vector<char>>;

/// LRU block cache that carries block *contents* (unlike the simulated
/// `lsm::BlockCache`, which only tracks hit/miss — a real backend must
/// serve cached bytes, not just skip a charge).
class ContentCache {
 public:
  explicit ContentCache(uint64_t capacity_blocks)
      : capacity_(capacity_blocks) {}

  /// Returns the cached block (promoted to MRU) or nullptr.
  BlockPtr Lookup(uint64_t key) {
    auto it = map_.find(key);
    if (it == map_.end()) return nullptr;
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->second;
  }

  /// Returns the cached block without promoting it. The ring path's
  /// discovery pass peeks so that resolving access sequences never
  /// perturbs the LRU order its replay pass reproduces.
  BlockPtr Peek(uint64_t key) const {
    auto it = map_.find(key);
    return it == map_.end() ? nullptr : it->second->second;
  }

  void Insert(uint64_t key, BlockPtr content) {
    if (capacity_ == 0) return;
    auto it = map_.find(key);
    if (it != map_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      it->second->second = std::move(content);
      return;
    }
    lru_.emplace_front(key, std::move(content));
    map_[key] = lru_.begin();
    EvictToCapacity();
  }

  void Resize(uint64_t capacity_blocks) {
    capacity_ = capacity_blocks;
    EvictToCapacity();
  }

  /// Cache keys in recency order, most-recent first (hibernation
  /// snapshots persist this so rehydration rebuilds the exact LRU state).
  std::vector<uint64_t> KeysMruToLru() const {
    std::vector<uint64_t> keys;
    keys.reserve(map_.size());
    for (const auto& [key, content] : lru_) {
      (void)content;
      keys.push_back(key);
    }
    return keys;
  }

 private:
  void EvictToCapacity() {
    while (map_.size() > capacity_) {
      map_.erase(lru_.back().first);
      lru_.pop_back();
    }
  }

  uint64_t capacity_;
  std::list<std::pair<uint64_t, BlockPtr>> lru_;
  std::unordered_map<uint64_t,
                     std::list<std::pair<uint64_t, BlockPtr>>::iterator>
      map_;
};

inline uint64_t CacheKey(uint64_t run_id, uint64_t block_idx) {
  return (run_id << 22) | (block_idx & ((1ULL << 22) - 1));
}

/// One immutable sorted run persisted as an append-only file. Fence
/// pointers (first key per block) and the Bloom filter stay in memory;
/// block contents are fetched by pread.
struct FileRun {
  uint64_t id = 0;
  std::string path;
  int fd = -1;
  uint64_t num_entries = 0;
  std::vector<uint64_t> fence;  // first key of each block
  lsm::BloomFilter filter;
  uint64_t min_key = 0;
  uint64_t max_key = 0;

  ~FileRun() {
    if (fd >= 0) ::close(fd);
  }
  size_t num_blocks() const { return fence.size(); }
};
using FileRunPtr = std::shared_ptr<FileRun>;

/// Real per-shard cost clock: actual block reads/writes plus accumulated
/// monotonic wall time, reported through the `sim::DeviceSnapshot`
/// currency so the arbiter and bench observability read it unchanged.
struct Clock {
  uint64_t block_reads = 0;
  uint64_t block_writes = 0;
  double elapsed_ns = 0.0;

  sim::DeviceSnapshot Snapshot() const {
    return sim::DeviceSnapshot{block_reads, block_writes, elapsed_ns};
  }
};

inline uint64_t EntriesPerBlock(uint64_t block_bytes) {
  return block_bytes / sizeof(DiskEntry);
}

inline const DiskEntry* BlockRecords(const std::vector<char>& block) {
  return reinterpret_cast<const DiskEntry*>(block.data());
}

inline lsm::Entry ToEntry(const DiskEntry& d) {
  return lsm::Entry{d.key, d.value, (d.flags & kTombstoneFlag) != 0};
}

inline int OpenRead(const std::string& path, bool direct) {
  int flags = O_RDONLY;
  if (direct) flags |= O_DIRECT;
  int fd = ::open(path.c_str(), flags);
  if (fd < 0 && direct) fd = ::open(path.c_str(), O_RDONLY);
  SysCheck(fd >= 0, "open", path);
  return fd;
}

}  // namespace fileio

/// One shard: a file set (levels of runs) plus memtable, Bloom filters,
/// content cache, live options, and its own cost clock. All state is
/// shard-local so per-shard submission lists can run concurrently.
struct FileEngine::Shard {
  lsm::Options options;
  std::string dir;
  std::map<uint64_t, lsm::Entry> memtable;
  /// levels[l] holds runs oldest-to-newest (read newest first).
  std::vector<std::vector<fileio::FileRunPtr>> levels;
  fileio::ContentCache cache{0};
  fileio::Clock clock;
  EngineCounters counters;
  uint64_t next_run_id = 1;
  uint64_t disk_entries = 0;
  /// pread target; block-aligned for O_DIRECT.
  fileio::AlignedBuf scratch;
  /// Ring path state (null/empty on the pread path): the shard-owned
  /// submission ring, one aligned read buffer per queue slot, and the
  /// resolved queue depth (shard options override the engine default).
  std::unique_ptr<fileio::IoRing> ring;
  std::vector<fileio::AlignedBuf> ring_bufs;
  uint32_t io_depth = 1;

  /// Durability state (null with `FileEngineConfig::durable` off — the
  /// layer then has zero hot-path presence). The manifest logs every
  /// structural transition of the file set; the WAL logs memtable
  /// contents, stamped with `wal_epoch`. A flush bumps the epoch (in the
  /// manifest's kFlush record, the durable marker that older WAL entries
  /// now live in a run) and resets the WAL.
  std::unique_ptr<fileio::Manifest> manifest;
  std::unique_ptr<fileio::Wal> wal;
  uint64_t wal_epoch = 0;
  /// Manifest record count carried across hibernation (the writer and its
  /// fd close while asleep).
  size_t manifest_records = 0;

  /// Hibernation state. While hibernated, the heavy members above
  /// (memtable, levels and their fds, cache contents, scratch, ring) are
  /// released into the sidecar file `dir + "/hibernate.snap"`; the cheap
  /// residuals below keep the observability surface (entries, run counts,
  /// transition status) answerable without rehydrating.
  bool hibernated = false;
  uint64_t hib_memtable_size = 0;
  /// Per-level (run count, entry count) at hibernation time.
  std::vector<std::pair<size_t, uint64_t>> hib_level_shape;
  uint64_t last_touch_epoch = ~uint64_t{0};  // sentinel: never touched
};

namespace {

using fileio::AllocAligned;
using fileio::BlockRecords;
using fileio::DiskEntry;
using fileio::EntriesPerBlock;
using fileio::FileRun;
using fileio::FileRunPtr;
using fileio::kTombstoneFlag;
using fileio::Now;
using fileio::NowNs;
using fileio::SysCheck;
using fileio::ToEntry;
namespace fs = std::filesystem;

/// Cache-aware fetch of block `blk` of `run`. A hit hands back the cached
/// buffer (zero copies); a miss preads into the shard scratch buffer and
/// materializes the bytes into exactly one heap buffer, shared between the
/// caller and the cache.
fileio::BlockPtr FetchBlock(FileEngine::Shard& sh, const FileEngineConfig& cfg,
                            const FileRun& run, size_t blk) {
  const uint64_t key = fileio::CacheKey(run.id, blk);
  if (fileio::BlockPtr hit = sh.cache.Lookup(key)) return hit;
  const ssize_t n = ::pread(run.fd, sh.scratch.get(), cfg.block_bytes,
                            static_cast<off_t>(blk * cfg.block_bytes));
  SysCheck(n == static_cast<ssize_t>(cfg.block_bytes), "pread", run.path);
  auto block = std::make_shared<std::vector<char>>(
      sh.scratch.get(), sh.scratch.get() + cfg.block_bytes);
  ++sh.clock.block_reads;
  sh.cache.Insert(key, block);
  return block;
}

// --------------------------------------------------------------- durability

/// Whether durability writes should reach the platter before the engine
/// proceeds (the `wal_sync` policy knob, gated on the layer being on).
bool DurableSync(const FileEngineConfig& cfg) {
  return cfg.durable && cfg.wal_sync != fileio::WalSyncPolicy::kNone;
}

/// Manifest-side metadata of a built run: everything recovery needs to
/// reopen it without reading a block.
fileio::ManifestRunMeta RunMetaOf(const FileRun& run) {
  fileio::ManifestRunMeta meta;
  meta.id = run.id;
  meta.num_entries = run.num_entries;
  meta.min_key = run.min_key;
  meta.max_key = run.max_key;
  meta.fence = run.fence;
  meta.bloom_bits = run.filter.memory_bits();
  meta.bloom_hashes = static_cast<uint32_t>(run.filter.num_hashes());
  meta.bloom_bpk = run.filter.bits_per_key();
  meta.bloom_words = run.filter.words();
  return meta;
}

/// The live shard's full structural state, as a manifest rotation
/// snapshot.
fileio::RecoveredShardState SnapshotShardState(const FileEngine::Shard& sh) {
  fileio::RecoveredShardState st;
  st.valid = true;
  st.options = sh.options;
  st.wal_epoch = sh.wal_epoch;
  st.next_run_id = sh.next_run_id;
  st.levels.resize(sh.levels.size());
  for (size_t l = 0; l < sh.levels.size(); ++l) {
    st.levels[l].reserve(sh.levels[l].size());
    for (const FileRunPtr& r : sh.levels[l]) {
      st.levels[l].push_back(RunMetaOf(*r));
    }
  }
  return st;
}

/// Compacts the manifest to one snapshot record once it outgrows the
/// configured threshold. Called only at quiescent points (after a flush
/// cascade settles, after reconfigure/wake) where the in-memory state is
/// the authoritative truth.
void MaybeRotateManifest(FileEngine::Shard& sh, const FileEngineConfig& cfg) {
  if (sh.manifest == nullptr) return;
  sh.manifest->MaybeRotate(SnapshotShardState(sh), cfg.manifest_rotate_records);
}

/// Builds one run file from sorted, deduplicated `entries`: serializes
/// them into block-aligned pages, writes the file append-only (one pass,
/// never modified again), and opens it for reads.
FileRunPtr BuildRun(FileEngine::Shard& sh, const FileEngineConfig& cfg,
                    bool direct_io, std::vector<lsm::Entry> entries,
                    double bloom_bits_per_key) {
  CAMAL_CHECK(!entries.empty());
  const uint64_t epb = EntriesPerBlock(cfg.block_bytes);
  const size_t num_blocks = (entries.size() + epb - 1) / epb;

  auto run = std::make_shared<FileRun>();
  run->id = sh.next_run_id++;
  run->path = sh.dir + "/run_" + std::to_string(run->id) + ".cam";
  run->num_entries = entries.size();
  run->min_key = entries.front().key;
  run->max_key = entries.back().key;
  run->filter = lsm::BloomFilter(entries.size(), bloom_bits_per_key);
  run->fence.reserve(num_blocks);

  fileio::AlignedBuf buf =
      AllocAligned(num_blocks * cfg.block_bytes, cfg.block_bytes);
  std::memset(buf.get(), 0, num_blocks * cfg.block_bytes);
  for (size_t i = 0; i < entries.size(); ++i) {
    const lsm::Entry& e = entries[i];
    const size_t blk = i / epb;
    const size_t slot = i % epb;
    // Records pack densely within each page; pages start at multiples of
    // block_bytes (24 does not divide 4096, so each page tail stays zero
    // padding — never decoded, because per-block record counts derive
    // from num_entries).
    auto* records =
        reinterpret_cast<DiskEntry*>(buf.get() + blk * cfg.block_bytes);
    records[slot].key = e.key;
    records[slot].value = e.value;
    records[slot].flags = e.tombstone ? kTombstoneFlag : 0;
    if (slot == 0) run->fence.push_back(e.key);
    run->filter.Add(e.key);
  }

  fileio::FileOps* ops = cfg.file_ops;
  int flags = O_WRONLY | O_CREAT | O_TRUNC;
  if (direct_io) flags |= O_DIRECT;
  int fd = ops->Open(run->path, flags, 0644);
  if (fd < 0 && direct_io) {
    fd = ops->Open(run->path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  }
  SysCheck(fd >= 0, "open(write)", run->path);
  const size_t total = num_blocks * cfg.block_bytes;
  size_t off = 0;
  while (off < total) {
    const int64_t n = ops->PWrite(fd, buf.get() + off, total - off, off);
    SysCheck(n > 0, "pwrite", run->path);
    off += static_cast<size_t>(n);
  }
  // A run must be durable before the manifest record that references it
  // commits; `sync_files` keeps its original meaning independently.
  if (cfg.sync_files || DurableSync(cfg)) {
    SysCheck(ops->Fsync(fd) == 0, "fsync", run->path);
  }
  ops->Close(fd);
  sh.clock.block_writes += num_blocks;

  run->fd = fileio::OpenRead(run->path, direct_io);
  return run;
}

uint64_t LevelEntries(const std::vector<FileRunPtr>& level) {
  uint64_t total = 0;
  for (const FileRunPtr& r : level) total += r->num_entries;
  return total;
}

bool LevelViolates(const lsm::Options& opts,
                   const std::vector<FileRunPtr>& level, size_t level_idx) {
  if (level.empty()) return false;
  if (level.size() > static_cast<size_t>(opts.MaxRunsPerLevel())) return true;
  return static_cast<double>(LevelEntries(level)) >
         opts.LevelCapacityEntries(static_cast<int>(level_idx));
}

/// Bits-per-key for a new run: the shard's Bloom budget spread uniformly
/// over its (post-build) disk entries. Uniform rather than Monkey-curved:
/// the real backend validates *budget* tunings; the per-level curve is a
/// sim-side refinement.
double BloomBpk(const FileEngine::Shard& sh, uint64_t incoming) {
  const uint64_t total = std::max<uint64_t>(1, sh.disk_entries + incoming);
  return std::min(50.0, static_cast<double>(sh.options.bloom_bits) /
                            static_cast<double>(total));
}

/// Reads every entry of `run` sequentially (compaction input: bypasses the
/// cache, counts real reads as compaction I/O). Records decode straight
/// out of the scratch buffer — no per-block heap allocation at all.
void ReadAllEntries(FileEngine::Shard& sh, const FileEngineConfig& cfg,
                    const FileRun& run, std::vector<lsm::Entry>* out) {
  const uint64_t epb = EntriesPerBlock(cfg.block_bytes);
  for (size_t blk = 0; blk < run.num_blocks(); ++blk) {
    const ssize_t n = ::pread(run.fd, sh.scratch.get(), cfg.block_bytes,
                              static_cast<off_t>(blk * cfg.block_bytes));
    SysCheck(n == static_cast<ssize_t>(cfg.block_bytes), "pread", run.path);
    ++sh.clock.block_reads;
    ++sh.counters.compaction_block_reads;
    const uint64_t begin = blk * epb;
    const uint64_t count = std::min(epb, run.num_entries - begin);
    const auto* records = reinterpret_cast<const DiskEntry*>(sh.scratch.get());
    for (uint64_t i = 0; i < count; ++i) out->push_back(ToEntry(records[i]));
  }
}

/// Merges every run of level `l` into one run pushed to level `l + 1`
/// (newest-wins on duplicate keys; tombstones drop when the output
/// becomes the deepest populated level), then unlinks the inputs.
void MergeLevelDown(FileEngine::Shard& sh, const FileEngineConfig& cfg,
                    bool direct_io, size_t l) {
  std::vector<FileRunPtr> inputs = std::move(sh.levels[l]);
  sh.levels[l].clear();
  if (sh.levels.size() <= l + 1) sh.levels.resize(l + 2);

  bool deeper_data = false;
  for (size_t d = l + 1; d < sh.levels.size(); ++d) {
    if (!sh.levels[d].empty()) deeper_data = true;
  }

  // Newest-first insertion keeps the freshest version of each key (the
  // level's runs are stored oldest-to-newest).
  std::map<uint64_t, lsm::Entry> merged;
  for (auto it = inputs.rbegin(); it != inputs.rend(); ++it) {
    std::vector<lsm::Entry> entries;
    ReadAllEntries(sh, cfg, **it, &entries);
    for (const lsm::Entry& e : entries) merged.emplace(e.key, e);
  }

  std::vector<lsm::Entry> out;
  out.reserve(merged.size());
  for (auto& [key, entry] : merged) {
    (void)key;
    if (entry.tombstone && !deeper_data) continue;  // nothing left to shadow
    out.push_back(entry);
  }

  uint64_t drained = 0;
  for (const FileRunPtr& r : inputs) drained += r->num_entries;
  sh.disk_entries -= drained;

  std::vector<fileio::ManifestRunMeta> added;
  if (!out.empty()) {
    const uint64_t incoming = out.size();
    FileRunPtr run =
        BuildRun(sh, cfg, direct_io, std::move(out), BloomBpk(sh, incoming));
    sh.counters.compaction_block_writes += run->num_blocks();
    sh.disk_entries += run->num_entries;
    if (sh.manifest != nullptr) added.push_back(RunMetaOf(*run));
    sh.levels[l + 1].push_back(std::move(run));
  }
  ++sh.counters.merges;

  if (sh.manifest != nullptr) {
    // One composite record carries removed inputs and the added output:
    // the transition commits atomically (CRC framing — a torn record is
    // ignored wholesale), so recovery sees the old file set or the new
    // one, never a mix. Only after it commits may the inputs disappear.
    std::vector<uint64_t> removed;
    removed.reserve(inputs.size());
    for (const FileRunPtr& r : inputs) removed.push_back(r->id);
    sh.manifest->LogCompact(static_cast<uint32_t>(l), removed, added);
  }
  for (const FileRunPtr& r : inputs) cfg.file_ops->Unlink(r->path);
}

/// Restores the level invariants (runs <= K, entries <= capacity) from
/// level 0 downward, cascading merges as needed.
void Normalize(FileEngine::Shard& sh, const FileEngineConfig& cfg,
               bool direct_io) {
  for (size_t l = 0; l < sh.levels.size(); ++l) {
    while (LevelViolates(sh.options, sh.levels[l], l)) {
      MergeLevelDown(sh, cfg, direct_io, l);
    }
  }
}

/// Drains the memtable into a new level-0 run (no-op when empty).
void FlushShard(FileEngine::Shard& sh, const FileEngineConfig& cfg,
                bool direct_io) {
  if (sh.memtable.empty()) return;
  std::vector<lsm::Entry> entries;
  entries.reserve(sh.memtable.size());
  for (const auto& [key, entry] : sh.memtable) {
    (void)key;
    entries.push_back(entry);
  }
  sh.memtable.clear();
  if (sh.levels.empty()) sh.levels.resize(1);
  const uint64_t incoming = entries.size();
  FileRunPtr run =
      BuildRun(sh, cfg, direct_io, std::move(entries), BloomBpk(sh, incoming));
  sh.disk_entries += run->num_entries;
  if (sh.manifest != nullptr) {
    // The epoch bump rides in the kFlush record: once it commits, every
    // WAL entry logged under the old epoch is durable in the run and will
    // be filtered out of replay — so a crash between this commit and the
    // WAL reset below cannot double-apply them.
    ++sh.wal_epoch;
    sh.manifest->LogFlush(sh.wal_epoch, RunMetaOf(*run));
    sh.wal->Reset();
  }
  sh.levels[0].push_back(std::move(run));
  ++sh.counters.flushes;
  Normalize(sh, cfg, direct_io);
  MaybeRotateManifest(sh, cfg);
}

/// Untimed single-shard write (the public surface wraps these in the
/// shard clock; ExecuteOps times them per op).
void DoPut(FileEngine::Shard& sh, const FileEngineConfig& cfg, bool direct_io,
           uint64_t key, uint64_t value, bool tombstone) {
  if (sh.memtable.size() >= sh.options.BufferEntries()) {
    FlushShard(sh, cfg, direct_io);
  }
  const lsm::Entry e{key, value, tombstone};
  sh.memtable[key] = e;
  // Logged at the *current* epoch, buffered until the enclosing batch (or
  // single-op call) commits — group commit on batch boundaries.
  if (sh.wal != nullptr) sh.wal->Append(sh.wal_epoch, &e, 1);
}

bool DoGet(FileEngine::Shard& sh, const FileEngineConfig& cfg, uint64_t key,
           uint64_t* value) {
  auto it = sh.memtable.find(key);
  if (it != sh.memtable.end()) {
    if (it->second.tombstone) return false;
    if (value != nullptr) *value = it->second.value;
    return true;
  }
  const uint64_t epb = EntriesPerBlock(cfg.block_bytes);
  for (const auto& level : sh.levels) {
    for (auto rit = level.rbegin(); rit != level.rend(); ++rit) {
      const FileRun& run = **rit;
      if (key < run.min_key || key > run.max_key) continue;
      if (!run.filter.MayContain(key)) continue;
      // Fence search: the block whose first key is the greatest <= key.
      const auto fit =
          std::upper_bound(run.fence.begin(), run.fence.end(), key);
      const size_t blk =
          static_cast<size_t>(std::distance(run.fence.begin(), fit)) - 1;
      const fileio::BlockPtr block = FetchBlock(sh, cfg, run, blk);
      const uint64_t begin = blk * epb;
      const uint64_t count = std::min(epb, run.num_entries - begin);
      const DiskEntry* records = BlockRecords(*block);
      const DiskEntry* end = records + count;
      const DiskEntry* found = std::lower_bound(
          records, end, key,
          [](const DiskEntry& d, uint64_t k) { return d.key < k; });
      if (found != end && found->key == key) {
        if (found->flags & kTombstoneFlag) return false;
        if (value != nullptr) *value = found->value;
        return true;
      }
      // Bloom false positive: the block read was paid in vain, exactly
      // like the simulated engine's kNotFoundAfterIo outcome.
    }
  }
  return false;
}

/// Resolves the shard's effective queue depth (shard options override the
/// engine default when nonzero) and (re)builds its ring + slot buffers.
/// The ring engages when the engine-level probe passed and either the
/// mode forces it (kUring) or overlap is actually requested (depth > 1);
/// kAuto at depth 1 keeps today's pread behavior byte for byte. A no-op
/// when nothing changed, so arbiter-driven reconfigs stay cheap.
void SetupShardRing(FileEngine::Shard& sh, const FileEngineConfig& cfg,
                    bool engine_uring) {
  const uint32_t depth = std::max<uint32_t>(
      1, sh.options.io_queue_depth > 0
             ? static_cast<uint32_t>(sh.options.io_queue_depth)
             : cfg.io_queue_depth);
  const bool engage =
      engine_uring && (cfg.io_mode == IoMode::kUring || depth > 1);
  if (depth == sh.io_depth && engage == (sh.ring != nullptr)) return;
  sh.io_depth = depth;
  sh.ring.reset();
  sh.ring_bufs.clear();
  if (!engage) return;
  auto ring = std::make_unique<fileio::IoRing>(depth);
  if (!ring->ok()) return;  // per-shard setup failure: pread fallback
  sh.ring = std::move(ring);
  sh.ring_bufs.reserve(depth);
  for (uint32_t i = 0; i < depth; ++i) {
    sh.ring_bufs.push_back(AllocAligned(cfg.block_bytes, cfg.block_bytes));
  }
}

/// The queue depth `SetupShardRing` would resolve for `options` — used to
/// answer queue-depth/backend queries for shards that have no live ring
/// state yet (cold) or released it (hibernated).
uint32_t ResolvedQueueDepth(const lsm::Options& options,
                            const FileEngineConfig& cfg) {
  return std::max<uint32_t>(
      1, options.io_queue_depth > 0
             ? static_cast<uint32_t>(options.io_queue_depth)
             : cfg.io_queue_depth);
}

bool RingWouldEngage(uint32_t depth, const FileEngineConfig& cfg,
                     bool engine_uring) {
  return engine_uring && (cfg.io_mode == IoMode::kUring || depth > 1);
}

constexpr uint64_t kSnapMagic = 0x43414d5348494253ULL;  // "CAMSHIBS"

/// Persists a shard's in-memory structures into its sidecar file and
/// releases them. The sidecar carries everything materialization cannot
/// rebuild from the run files alone without charging I/O: the memtable,
/// per-run metadata (fences, Bloom internals), and the cache's key
/// recency order. All sidecar I/O is deliberately uncounted — hibernation
/// is a resource-management event, not workload cost — so every clock and
/// counter the engine reports stays bit-identical to an eager engine.
void HibernateShardState(FileEngine::Shard& sh, const FileEngineConfig& cfg) {
  // Buffered writes must be durable before their in-memory home is
  // released (the sidecar is belt, the WAL is suspenders: if the sidecar
  // install is lost to a crash, replay still rebuilds the memtable).
  if (sh.wal != nullptr) sh.wal->Commit();

  const std::string path = sh.dir + "/hibernate.snap";
  std::string image;
  auto w64 = [&](uint64_t v) {
    image.append(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  auto wbuf = [&](const void* p, size_t n) {
    image.append(static_cast<const char*>(p), n);
  };

  w64(kSnapMagic);
  w64(sh.memtable.size());
  for (const auto& [key, e] : sh.memtable) {
    (void)key;
    DiskEntry d{e.key, e.value, e.tombstone ? kTombstoneFlag : 0};
    wbuf(&d, sizeof(d));
  }
  w64(sh.levels.size());
  for (const auto& level : sh.levels) {
    w64(level.size());
    for (const FileRunPtr& r : level) {
      w64(r->id);
      w64(r->num_entries);
      w64(r->min_key);
      w64(r->max_key);
      w64(r->fence.size());
      wbuf(r->fence.data(), r->fence.size() * sizeof(uint64_t));
      w64(r->filter.memory_bits());
      w64(static_cast<uint64_t>(r->filter.num_hashes()));
      const double bpk = r->filter.bits_per_key();
      wbuf(&bpk, sizeof(bpk));
      const auto& words = r->filter.words();
      w64(words.size());
      wbuf(words.data(), words.size() * sizeof(uint64_t));
    }
  }
  const std::vector<uint64_t> keys = sh.cache.KeysMruToLru();
  w64(keys.size());
  wbuf(keys.data(), keys.size() * sizeof(uint64_t));

  // Install atomically: write a tmp image, (durably) complete it, then
  // rename into place — a crash leaves either no sidecar or a whole one,
  // never a torn one.
  fileio::FileOps* ops = cfg.file_ops;
  const std::string tmp = path + ".tmp";
  ops->Unlink(tmp);  // a crashed predecessor's leftovers
  const int fd = ops->Open(tmp, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  SysCheck(fd >= 0, "open(hibernate)", tmp);
  size_t off = 0;
  while (off < image.size()) {
    const int64_t n = ops->PWrite(fd, image.data() + off, image.size() - off,
                                  off);
    SysCheck(n > 0, "pwrite(hibernate)", tmp);
    off += static_cast<size_t>(n);
  }
  if (DurableSync(cfg)) SysCheck(ops->Fsync(fd) == 0, "fsync(hibernate)", tmp);
  ops->Close(fd);
  SysCheck(ops->Rename(tmp, path) == 0, "rename(hibernate)", path);

  // Registering the sidecar in the manifest is what makes hibernation
  // survive the process: a reopened engine sees the kHibernate record and
  // restores the shard asleep. Crash before this record commits → the
  // manifest still says "live" and recovery takes the WAL path (the stray
  // sidecar is swept as an orphan).
  if (sh.manifest != nullptr) {
    std::vector<std::pair<uint64_t, uint64_t>> shape;
    shape.reserve(sh.levels.size());
    for (const auto& level : sh.levels) {
      shape.emplace_back(level.size(), LevelEntries(level));
    }
    sh.manifest->LogHibernate(sh.memtable.size(), shape);
    // A hibernated shard holds no descriptors: the log writers close too
    // (the record count survives in a residual for the wake reopen).
    sh.manifest_records = sh.manifest->record_count();
    sh.manifest.reset();
    sh.wal.reset();
  }

  // Cheap residuals keep size/transition queries answerable while asleep.
  sh.hib_memtable_size = sh.memtable.size();
  sh.hib_level_shape.clear();
  for (const auto& level : sh.levels) {
    sh.hib_level_shape.emplace_back(level.size(), LevelEntries(level));
  }
  sh.memtable.clear();
  sh.levels.clear();  // closes every run fd
  sh.cache.Resize(0);
  sh.scratch.reset();
  sh.ring.reset();
  sh.ring_bufs.clear();
  sh.io_depth = 1;
  sh.hibernated = true;
}

/// Rehydrates a hibernated shard from its sidecar: reopens run files,
/// rebuilds fences and Bloom filters from the persisted internals, and
/// refills the block cache to its exact pre-hibernation recency order
/// with uncounted preads. The woken shard behaves bit-identically — same
/// lookup outcomes, same charged reads, same LRU evolution — to one that
/// never slept.
void WakeShardState(FileEngine::Shard& sh, const FileEngineConfig& cfg,
                    bool direct_io, bool engine_uring) {
  const std::string path = sh.dir + "/hibernate.snap";
  std::FILE* f = std::fopen(path.c_str(), "rb");
  SysCheck(f != nullptr, "fopen(wake)", path);
  auto r64 = [&]() {
    uint64_t v = 0;
    SysCheck(std::fread(&v, sizeof(v), 1, f) == 1, "fread", path);
    return v;
  };
  auto rbuf = [&](void* p, size_t n) {
    if (n == 0) return;
    SysCheck(std::fread(p, 1, n, f) == n, "fread", path);
  };

  CAMAL_CHECK(r64() == kSnapMagic);
  const uint64_t mem_count = r64();
  for (uint64_t i = 0; i < mem_count; ++i) {
    DiskEntry d;
    rbuf(&d, sizeof(d));
    sh.memtable.emplace_hint(sh.memtable.end(), d.key, ToEntry(d));
  }
  const uint64_t num_levels = r64();
  sh.levels.resize(num_levels);
  std::unordered_map<uint64_t, const FileRun*> run_by_id;
  for (uint64_t l = 0; l < num_levels; ++l) {
    const uint64_t num_runs = r64();
    sh.levels[l].reserve(num_runs);
    for (uint64_t ri = 0; ri < num_runs; ++ri) {
      auto run = std::make_shared<FileRun>();
      run->id = r64();
      run->num_entries = r64();
      run->min_key = r64();
      run->max_key = r64();
      run->path = sh.dir + "/run_" + std::to_string(run->id) + ".cam";
      run->fence.resize(r64());
      rbuf(run->fence.data(), run->fence.size() * sizeof(uint64_t));
      const uint64_t num_bits = r64();
      const int num_hashes = static_cast<int>(r64());
      double bpk = 0.0;
      rbuf(&bpk, sizeof(bpk));
      std::vector<uint64_t> words(r64());
      rbuf(words.data(), words.size() * sizeof(uint64_t));
      run->filter = lsm::BloomFilter::FromParts(std::move(words), num_bits,
                                                num_hashes, bpk);
      run->fd = fileio::OpenRead(run->path, direct_io);
      run_by_id.emplace(run->id, run.get());
      sh.levels[l].push_back(std::move(run));
    }
  }

  sh.scratch = AllocAligned(cfg.block_bytes, cfg.block_bytes);
  const uint64_t capacity = sh.options.block_cache_bytes / cfg.block_bytes;
  sh.cache.Resize(capacity);
  std::vector<uint64_t> keys(r64());
  rbuf(keys.data(), keys.size() * sizeof(uint64_t));
  SysCheck(std::fclose(f) == 0, "fclose", path);
  cfg.file_ops->Unlink(path);

  if (cfg.durable) {
    // Reopen the log writers the shard closed at hibernation and record
    // the transition. A crash between the sidecar unlink above and this
    // record landing is safe: the manifest still says "hibernated", and
    // recovery, finding no sidecar, falls back to the live path — run
    // metadata from the manifest, memtable from the WAL (committed before
    // the sidecar was written).
    sh.manifest = std::make_unique<fileio::Manifest>(
        cfg.file_ops, sh.dir, DurableSync(cfg), sh.manifest_records);
    sh.wal = std::make_unique<fileio::Wal>(cfg.file_ops, sh.dir, cfg.wal_sync);
    sh.manifest->LogWake();
  }
  // Refill most-recent-first up to the (possibly shrunk-while-asleep)
  // capacity, inserting least-recent first so promotion lands every key
  // in its original recency slot. Uncounted reads: the cache held these
  // bytes when the shard went to sleep.
  const size_t restore = std::min<size_t>(keys.size(), capacity);
  for (size_t i = restore; i-- > 0;) {
    const uint64_t ckey = keys[i];
    const uint64_t run_id = ckey >> 22;
    const uint64_t blk = ckey & ((1ULL << 22) - 1);
    const auto rit = run_by_id.find(run_id);
    CAMAL_CHECK(rit != run_by_id.end());
    const FileRun& run = *rit->second;
    const ssize_t n = ::pread(run.fd, sh.scratch.get(), cfg.block_bytes,
                              static_cast<off_t>(blk * cfg.block_bytes));
    SysCheck(n == static_cast<ssize_t>(cfg.block_bytes), "pread(wake)",
             run.path);
    sh.cache.Insert(ckey, std::make_shared<std::vector<char>>(
                              sh.scratch.get(),
                              sh.scratch.get() + cfg.block_bytes));
  }

  sh.io_depth = 0;  // force SetupShardRing to resolve from scratch
  SetupShardRing(sh, cfg, engine_uring);
  sh.hibernated = false;
  sh.hib_memtable_size = 0;
  sh.hib_level_shape.clear();
  MaybeRotateManifest(sh, cfg);
}

/// Executes a maximal run of consecutive `kGet` ops from one shard's
/// submission list with reads overlapped on the shard's io_uring ring (up
/// to `sh.io_depth` in flight), reproducing the serial pread path's
/// logical results and I/O accounting exactly.
///
/// Why two phases: a Get's *logical* block-access sequence — which runs
/// pass the range/Bloom checks, which fence block each probes, where the
/// probe chain stops — depends only on the immutable file set and the
/// key, never on cache state (a cached block holds the same bytes as the
/// file). The cache only decides which accesses are charged as reads and
/// how the LRU evolves, and those decisions depend on strict op order.
/// So:
///
///   Phase A (discovery) resolves every op's ordered access list with
///   ring-overlapped reads, consulting the cache through non-promoting
///   `Peek` and a window content table that dedups in-flight blocks.
///   Phase B (replay) walks the ops serially in submission order,
///   replaying `Lookup`/`Insert` against the real cache — producing
///   exactly the serial path's per-op `ios`, `block_reads`, and final
///   LRU state.
///
/// Physical reads can only decrease (in-window duplicate fetches dedup);
/// every counter the engine reports is bit-identical to the pread path.
/// Window wall time is attributed evenly across the window's ops (real
/// latencies are allowed to vary; counters are the determinism contract).
void ExecuteGetWindow(FileEngine::Shard& sh, const FileEngineConfig& cfg,
                      const Op* ops, const size_t* op_idx, size_t window,
                      OpResult* results) {
  const uint64_t epb = EntriesPerBlock(cfg.block_bytes);
  const uint32_t depth = sh.io_depth;
  const double t0 = Now(cfg);

  // Flattened probe order: runs newest-first within each level, levels
  // top-down — exactly the order DoGet walks.
  std::vector<const FileRun*> probe;
  for (const auto& level : sh.levels) {
    for (auto rit = level.rbegin(); rit != level.rend(); ++rit) {
      probe.push_back(rit->get());
    }
  }

  struct GetState {
    uint64_t key = 0;
    size_t next_run = 0;  // next probe[] candidate to consider
    bool resolved = false;
    bool found = false;
    bool waiting = false;  // parked on pending_key's content
    uint64_t pending_key = 0;
    const FileRun* pending_run = nullptr;
    size_t pending_blk = 0;
    std::vector<uint64_t> accesses;  // cache keys, in probe order
  };
  std::vector<GetState> states(window);

  // Window content table: block bytes by cache key, filled from cache
  // peeks and ring completions. Replay inserts into the cache from here.
  std::unordered_map<uint64_t, fileio::BlockPtr> contents;
  // Ops parked on a block that is queued or in flight.
  std::unordered_map<uint64_t, std::vector<size_t>> waiters;
  // Blocks requested but not yet completed (dedups fetches).
  std::unordered_set<uint64_t> requested;
  struct Fetch {
    uint64_t key = 0;
    const FileRun* run = nullptr;
    size_t blk = 0;
  };
  std::deque<Fetch> backlog;  // waiting for a free ring slot
  std::vector<uint64_t> slot_key(depth, 0);
  std::vector<const FileRun*> slot_run(depth, nullptr);
  std::vector<uint32_t> free_slots;
  free_slots.reserve(depth);
  for (uint32_t i = 0; i < depth; ++i) free_slots.push_back(i);
  uint32_t inflight = 0;

  // Advances one op until it resolves or parks on a block that is not
  // available yet (registering it as a waiter and queueing the fetch).
  auto advance = [&](size_t si) {
    GetState& st = states[si];
    while (!st.resolved) {
      if (st.waiting) {
        auto cit = contents.find(st.pending_key);
        if (cit == contents.end()) return;  // still in flight
        st.waiting = false;
        const FileRun& run = *st.pending_run;
        const uint64_t begin = st.pending_blk * epb;
        const uint64_t count = std::min(epb, run.num_entries - begin);
        const DiskEntry* records = BlockRecords(*cit->second);
        const DiskEntry* end = records + count;
        const DiskEntry* hit = std::lower_bound(
            records, end, st.key,
            [](const DiskEntry& d, uint64_t k) { return d.key < k; });
        if (hit != end && hit->key == st.key) {
          st.found = (hit->flags & kTombstoneFlag) == 0;
          st.resolved = true;
          return;
        }
        continue;  // Bloom false positive: on to the next candidate run
      }
      const FileRun* run = nullptr;
      size_t blk = 0;
      while (st.next_run < probe.size()) {
        const FileRun* r = probe[st.next_run++];
        if (st.key < r->min_key || st.key > r->max_key) continue;
        if (!r->filter.MayContain(st.key)) continue;
        const auto fit =
            std::upper_bound(r->fence.begin(), r->fence.end(), st.key);
        blk = static_cast<size_t>(std::distance(r->fence.begin(), fit)) - 1;
        run = r;
        break;
      }
      if (run == nullptr) {
        st.resolved = true;  // every candidate exhausted: a miss
        return;
      }
      const uint64_t ckey = fileio::CacheKey(run->id, blk);
      st.accesses.push_back(ckey);
      st.pending_key = ckey;
      st.pending_run = run;
      st.pending_blk = blk;
      st.waiting = true;
      if (contents.count(ckey) != 0) continue;  // fetched earlier this window
      if (fileio::BlockPtr peeked = sh.cache.Peek(ckey)) {
        contents.emplace(ckey, std::move(peeked));
        continue;
      }
      if (requested.insert(ckey).second) backlog.push_back(Fetch{ckey, run, blk});
      waiters[ckey].push_back(si);
      return;
    }
  };

  // Moves backlog entries into free ring slots and submits them.
  auto pump = [&] {
    while (inflight < depth && !backlog.empty()) {
      const Fetch f = backlog.front();
      backlog.pop_front();
      const uint32_t slot = free_slots.back();
      free_slots.pop_back();
      slot_key[slot] = f.key;
      slot_run[slot] = f.run;
      const bool prepped =
          sh.ring->PrepRead(f.run->fd, sh.ring_bufs[slot].get(),
                            static_cast<unsigned>(cfg.block_bytes),
                            f.blk * cfg.block_bytes, slot);
      CAMAL_CHECK(prepped);
      ++inflight;
    }
    const int submitted = sh.ring->Submit();
    SysCheck(submitted >= 0, "io_uring_enter(submit)", sh.dir);
  };

  // Phase A: seed every op in submission order, then drain completions,
  // re-advancing parked ops (which may queue further fetches) until all
  // access sequences are resolved.
  {
    // Memtable hits resolve with zero block accesses, like DoGet.
    for (size_t si = 0; si < window; ++si) {
      GetState& st = states[si];
      st.key = ops[op_idx[si]].key;
      auto it = sh.memtable.find(st.key);
      if (it != sh.memtable.end()) {
        st.resolved = true;
        st.found = !it->second.tombstone;
      }
    }
    for (size_t si = 0; si < window; ++si) advance(si);
    pump();
    std::vector<fileio::IoRing::Completion> comps;
    while (inflight > 0) {
      comps.clear();
      const int n = sh.ring->WaitCompletions(1, &comps);
      SysCheck(n > 0, "io_uring_enter(wait)", sh.dir);
      for (const fileio::IoRing::Completion& c : comps) {
        const auto slot = static_cast<uint32_t>(c.user_data);
        const FileRun* run = slot_run[slot];
        SysCheck(c.result == static_cast<int32_t>(cfg.block_bytes),
                 "ring read", run->path);
        const uint64_t ckey = slot_key[slot];
        contents.emplace(
            ckey, std::make_shared<std::vector<char>>(
                      sh.ring_bufs[slot].get(),
                      sh.ring_bufs[slot].get() + cfg.block_bytes));
        free_slots.push_back(slot);
        --inflight;
        auto wit = waiters.find(ckey);
        if (wit != waiters.end()) {
          const std::vector<size_t> parked = std::move(wit->second);
          waiters.erase(wit);
          for (size_t si : parked) advance(si);
        }
      }
      pump();
    }
  }

  // Phase B: replay cache decisions serially in submission order. This
  // charges per-op reads and evolves the LRU exactly as the pread path
  // would have.
  for (size_t si = 0; si < window; ++si) {
    GetState& st = states[si];
    CAMAL_CHECK(st.resolved);
    uint64_t ios = 0;
    for (uint64_t ckey : st.accesses) {
      if (sh.cache.Lookup(ckey) != nullptr) continue;  // a (promoted) hit
      ++ios;
      auto cit = contents.find(ckey);
      CAMAL_CHECK(cit != contents.end());
      sh.cache.Insert(ckey, cit->second);
    }
    sh.clock.block_reads += ios;
    OpResult r;
    r.found = st.found;
    r.ios = ios;
    results[op_idx[si]] = r;
  }
  const double dt = Now(cfg) - t0;
  sh.clock.elapsed_ns += dt;
  const double per_op = dt / static_cast<double>(window);
  for (size_t si = 0; si < window; ++si) {
    results[op_idx[si]].latency_ns = per_op;
  }
}

/// Shard-local range scan: merges the memtable slice with run cursors
/// (newest wins, tombstones suppress), appending up to `max_entries` live
/// entries to `out`. Block fetches are cache-aware real reads.
size_t DoScanShard(FileEngine::Shard& sh, const FileEngineConfig& cfg,
                   uint64_t start_key, size_t max_entries,
                   std::vector<lsm::Entry>* out) {
  if (max_entries == 0) return 0;
  const uint64_t epb = EntriesPerBlock(cfg.block_bytes);

  struct Cursor {
    const FileRun* run = nullptr;  // null for the memtable source
    std::vector<lsm::Entry> mem;   // materialized memtable tail
    uint64_t idx = 0;
    uint64_t end = 0;
    int64_t block = -1;
    fileio::BlockPtr block_data;  // shared with the cache; eviction-safe
  };
  std::vector<Cursor> cursors;

  {
    // Newest source first: the whole memtable tail (tombstones in it can
    // shadow run entries arbitrarily far into the scan).
    Cursor mem;
    for (auto it = sh.memtable.lower_bound(start_key); it != sh.memtable.end();
         ++it) {
      mem.mem.push_back(it->second);
    }
    mem.end = mem.mem.size();
    cursors.push_back(std::move(mem));
  }
  for (const auto& level : sh.levels) {
    for (auto rit = level.rbegin(); rit != level.rend(); ++rit) {
      const FileRun& run = **rit;
      Cursor c;
      c.run = &run;
      c.end = run.num_entries;
      if (start_key <= run.min_key) {
        c.idx = 0;
      } else if (start_key > run.max_key) {
        c.idx = c.end;
      } else {
        const auto fit =
            std::upper_bound(run.fence.begin(), run.fence.end(), start_key);
        const size_t blk =
            static_cast<size_t>(std::distance(run.fence.begin(), fit)) - 1;
        c.block_data = FetchBlock(sh, cfg, run, blk);
        c.block = static_cast<int64_t>(blk);
        const uint64_t begin = blk * epb;
        const uint64_t count = std::min(epb, run.num_entries - begin);
        const DiskEntry* records = BlockRecords(*c.block_data);
        uint64_t i = 0;
        while (i < count && records[i].key < start_key) ++i;
        // i == count means the next block's first key >= start_key (the
        // fence search guarantees it).
        c.idx = begin + i;
      }
      cursors.push_back(std::move(c));
    }
  }

  auto entry_at = [&](Cursor& c) -> lsm::Entry {
    if (c.run == nullptr) return c.mem[c.idx];
    const auto blk = static_cast<int64_t>(c.idx / epb);
    if (blk != c.block) {
      c.block_data = FetchBlock(sh, cfg, *c.run, static_cast<size_t>(blk));
      c.block = blk;
    }
    return ToEntry(BlockRecords(*c.block_data)[c.idx % epb]);
  };
  auto key_at = [&](Cursor& c) { return entry_at(c).key; };

  size_t added = 0;
  while (added < max_entries) {
    uint64_t min_key = std::numeric_limits<uint64_t>::max();
    bool any = false;
    for (Cursor& c : cursors) {
      if (c.idx >= c.end) continue;
      const uint64_t k = key_at(c);
      if (!any || k < min_key) {
        min_key = k;
        any = true;
      }
    }
    if (!any) break;
    bool taken = false;
    for (Cursor& c : cursors) {
      if (c.idx >= c.end || key_at(c) != min_key) continue;
      if (!taken) {
        taken = true;
        const lsm::Entry e = entry_at(c);
        if (!e.tombstone) {
          out->push_back(e);
          ++added;
        }
      }
      ++c.idx;
    }
  }
  return added;
}

}  // namespace

// ----------------------------------------------------- construction/teardown

uint64_t FileEngine::NextUniqueId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1);
}

FileEngine::FileEngine(size_t num_shards, const lsm::Options& total_options,
                       const FileEngineConfig& config)
    : config_(config) {
  CAMAL_CHECK(num_shards >= 1);
  CAMAL_CHECK(config_.block_bytes >= 512 &&
              (config_.block_bytes & (config_.block_bytes - 1)) == 0);
  // Normalize the durability knobs once: reopening implies the layer is
  // on, and a null seam resolves to raw syscalls so every mutation site
  // can call through `config_.file_ops` unconditionally.
  if (config_.reopen) config_.durable = true;
  if (config_.file_ops == nullptr) config_.file_ops = fileio::FileOps::Real();

  workdir_ = config_.workdir;
  if (workdir_.empty()) {
    workdir_ = (fs::temp_directory_path() /
                ("camal_file_engine_" + std::to_string(::getpid()) + "_" +
                 std::to_string(NextUniqueId())))
                   .string();
  }
  std::error_code ec;
  created_workdir_ = fs::create_directories(workdir_, ec);
  SysCheck(!ec, "create_directories", workdir_);

  // Probe the working directory's filesystem for O_DIRECT support once:
  // filesystems without it (tmpfs, some network/overlay mounts) refuse at
  // open(2) time, and the engine falls back to buffered I/O.
  if (config_.try_direct_io) {
    const std::string probe = workdir_ + "/.direct_probe";
    const int fd = ::open(probe.c_str(), O_WRONLY | O_CREAT | O_DIRECT, 0644);
    if (fd >= 0) {
      direct_io_ = true;
      ::close(fd);
    }
    ::unlink(probe.c_str());
  }

  // Ring capability resolves once per engine: the build must carry the
  // ring path and the kernel must accept io_uring_setup. Whether a given
  // shard actually engages its ring also depends on mode and depth
  // (SetupShardRing); everything else falls back to pread automatically.
  use_uring_ = config_.io_mode != IoMode::kPread && fileio::IoRingSupported();

  default_options_ = ShardedEngine::ShardOptions(total_options, num_shards);
  num_shards_ = num_shards;  // no slots yet: all shards cold
  if (config_.reopen) RecoverShards();
  if (!config_.lifecycle.lazy) {
    for (size_t s = 0; s < num_shards; ++s) MaterializeShard(s);
  }
}

FileEngine::~FileEngine() {
  // Clean close: anything still buffered in a WAL lands (and, per policy,
  // syncs) so `reopen=true` restores the exact logical state. Hibernated
  // shards committed theirs when they went to sleep.
  if (config_.durable) {
    for (auto& [s, sh] : shards_) {
      (void)s;
      if (sh->wal != nullptr) sh->wal->Commit();
    }
  }
  // Close every run fd before touching the directory tree.
  for (auto& [s, sh] : shards_) {
    (void)s;
    for (auto& level : sh->levels) level.clear();
  }
  if (config_.keep_files) return;
  std::error_code ec;
  if (created_workdir_) {
    fs::remove_all(workdir_, ec);
  } else {
    // The caller owned the directory before us: remove only our shard
    // subtrees, never sibling content. Cold shards never created theirs.
    for (const auto& [s, sh] : shards_) {
      (void)s;
      fs::remove_all(sh->dir, ec);
    }
  }
}

void FileEngine::RecoverShards() {
  // Every shard that ever materialized left a directory; everything else
  // stays cold (a cold shard is empty, which is exactly what the twin
  // engine that never crashed would report for it).
  std::vector<std::pair<size_t, std::string>> found;
  for (const auto& entry : fs::directory_iterator(workdir_)) {
    if (!entry.is_directory()) continue;
    const std::string name = entry.path().filename().string();
    if (name.rfind("shard_", 0) != 0) continue;
    char* end = nullptr;
    const unsigned long long s = std::strtoull(name.c_str() + 6, &end, 10);
    if (end == nullptr || *end != '\0') continue;  // not ours
    CAMAL_CHECK(s < num_shards_);  // reopened with a smaller shard count
    found.emplace_back(static_cast<size_t>(s), entry.path().string());
  }
  // Deterministic recovery order (directory iteration order is not).
  std::sort(found.begin(), found.end());
  for (const auto& [s, dir] : found) RecoverShard(s, dir);
}

void FileEngine::RecoverShard(size_t s, const std::string& dir) {
  fileio::FileOps* ops = config_.file_ops;
  fileio::RecoveredShardState st;
  if (!fileio::RecoverManifest(fileio::Manifest::PathFor(dir), &st)) {
    // No replayable manifest (absent, empty, or corrupt from record 0):
    // nothing durable ever committed here, so the shard recovers to the
    // empty (cold) state and the leftovers go.
    std::error_code ec;
    fs::remove_all(dir, ec);
    return;
  }

  auto sh = std::make_unique<Shard>();
  sh->options = st.options;
  sh->dir = dir;
  sh->wal_epoch = st.wal_epoch;
  sh->next_run_id = st.next_run_id;

  // A manifest that says "hibernated" is believed only if the sidecar
  // made it to disk; otherwise (crash in the hibernate window) the shard
  // recovers live from run metadata + WAL.
  const std::string sidecar = dir + "/hibernate.snap";
  const bool hibernated = st.hibernated && fs::exists(sidecar);

  // Sweep orphans: files the durable state does not reference — run files
  // whose introducing record never committed, rotation/sidecar tmp files,
  // a sidecar the manifest no longer claims.
  {
    std::set<std::string> keep = {"MANIFEST", "WAL"};
    if (hibernated) keep.insert("hibernate.snap");
    for (const auto& level : st.levels) {
      for (const fileio::ManifestRunMeta& run : level) {
        keep.insert("run_" + std::to_string(run.id) + ".cam");
      }
    }
    for (const auto& entry : fs::directory_iterator(dir)) {
      const std::string name = entry.path().filename().string();
      if (keep.count(name) == 0) ops->Unlink(entry.path().string());
    }
  }

  const bool sync = DurableSync(config_);
  if (hibernated) {
    // Restored asleep: residuals only, no descriptors, no heap state —
    // the next touching op wakes it through the ordinary sidecar path.
    sh->hibernated = true;
    sh->hib_memtable_size = st.hib_memtable_entries;
    for (const auto& [runs, entries] : st.hib_shape) {
      sh->hib_level_shape.emplace_back(static_cast<size_t>(runs), entries);
    }
    for (const auto& level : st.levels) {
      for (const fileio::ManifestRunMeta& run : level) {
        sh->disk_entries += run.num_entries;
      }
    }
    sh->manifest_records = st.num_records;
    if (st.tail_torn) {
      fileio::Manifest temp(ops, dir, sync, st.num_records);
      temp.TruncateTail(st.valid_bytes);
    }
    shards_.emplace(s, std::move(sh));
    hibernated_.insert(s);
    return;
  }

  // Live shard: reopen every run straight from its logged metadata —
  // fences and Blooms come from the manifest, so not one block is read or
  // rebuilt. Recovery I/O is uncounted (clocks start at zero, like any
  // fresh engine).
  sh->levels.resize(st.levels.size());
  for (size_t l = 0; l < st.levels.size(); ++l) {
    sh->levels[l].reserve(st.levels[l].size());
    for (fileio::ManifestRunMeta& meta : st.levels[l]) {
      auto run = std::make_shared<FileRun>();
      run->id = meta.id;
      run->path = dir + "/run_" + std::to_string(meta.id) + ".cam";
      run->num_entries = meta.num_entries;
      run->min_key = meta.min_key;
      run->max_key = meta.max_key;
      run->fence = std::move(meta.fence);
      run->filter = lsm::BloomFilter::FromParts(
          std::move(meta.bloom_words), meta.bloom_bits,
          static_cast<int>(meta.bloom_hashes), meta.bloom_bpk);
      run->fd = fileio::OpenRead(run->path, direct_io_);
      sh->disk_entries += run->num_entries;
      sh->levels[l].push_back(std::move(run));
    }
  }

  // WAL tail replay: only records stamped with the recovered epoch are
  // live (older ones were flushed into a run before the epoch bumped);
  // within the epoch, later records win, same as the memtable they log.
  const fileio::WalReplay replay = fileio::ReadWal(fileio::Wal::PathFor(dir));
  for (const fileio::WalReplayRecord& rec : replay.records) {
    if (rec.epoch != sh->wal_epoch) continue;
    for (const lsm::Entry& e : rec.entries) sh->memtable[e.key] = e;
  }

  // Repair the logs: truncate torn manifest tails, rewrite the WAL to
  // exactly the recovered memtable (dropping dead epochs and torn bytes),
  // and compact the manifest if it has grown past the rotation threshold.
  sh->manifest = std::make_unique<fileio::Manifest>(ops, dir, sync,
                                                    st.num_records);
  if (st.tail_torn) sh->manifest->TruncateTail(st.valid_bytes);
  sh->wal = std::make_unique<fileio::Wal>(ops, dir, config_.wal_sync);
  sh->wal->Reset();
  if (!sh->memtable.empty()) {
    std::vector<lsm::Entry> entries;
    entries.reserve(sh->memtable.size());
    for (const auto& [key, e] : sh->memtable) {
      (void)key;
      entries.push_back(e);
    }
    sh->wal->Append(sh->wal_epoch, entries.data(), entries.size());
    sh->wal->Commit();
  }
  MaybeRotateManifest(*sh, config_);

  sh->cache.Resize(sh->options.block_cache_bytes / config_.block_bytes);
  sh->scratch = AllocAligned(config_.block_bytes, config_.block_bytes);
  sh->io_depth = 0;  // force SetupShardRing to resolve from scratch
  SetupShardRing(*sh, config_, use_uring_);
  shards_.emplace(s, std::move(sh));
  resident_.insert(s);
}

FileEngine::Shard* FileEngine::ShardPtr(size_t s) {
  const auto it = shards_.find(s);
  return it == shards_.end() ? nullptr : it->second.get();
}
const FileEngine::Shard* FileEngine::ShardPtr(size_t s) const {
  const auto it = shards_.find(s);
  return it == shards_.end() ? nullptr : it->second.get();
}

FileEngine::Shard& FileEngine::shard(size_t s) {
  CAMAL_CHECK(s < num_shards_);
  Shard* sh = ShardPtr(s);
  CAMAL_CHECK(sh != nullptr);
  return *sh;
}
const FileEngine::Shard& FileEngine::shard(size_t s) const {
  CAMAL_CHECK(s < num_shards_);
  const Shard* sh = ShardPtr(s);
  CAMAL_CHECK(sh != nullptr);
  return *sh;
}

const lsm::Options& FileEngine::EffectiveOptions(size_t s) const {
  const auto it = cold_options_.find(s);
  return it != cold_options_.end() ? it->second : default_options_;
}

FileEngine::Shard& FileEngine::MaterializeShard(size_t s) {
  CAMAL_CHECK(s < num_shards_);
  if (Shard* existing = ShardPtr(s)) {
    if (existing->hibernated) {
      WakeShardState(*existing, config_, direct_io_, use_uring_);
      hibernated_.erase(s);
      resident_.insert(s);
    }
    return *existing;
  }
  auto sh = std::make_unique<Shard>();
  const auto it = cold_options_.find(s);
  sh->options = it != cold_options_.end() ? it->second : default_options_;
  if (it != cold_options_.end()) cold_options_.erase(it);
  sh->dir = workdir_ + "/shard_" + std::to_string(s);
  std::error_code ec;
  fs::create_directories(sh->dir, ec);
  SysCheck(!ec, "create_directories", sh->dir);
  if (config_.durable) {
    // A fresh shard starts fresh logs; stale files from an earlier engine
    // in a reused directory (reopen=false deliberately ignores them) must
    // not be appended to.
    config_.file_ops->Unlink(fileio::Manifest::PathFor(sh->dir));
    config_.file_ops->Unlink(fileio::Wal::PathFor(sh->dir));
    sh->manifest = std::make_unique<fileio::Manifest>(
        config_.file_ops, sh->dir, DurableSync(config_));
    sh->manifest->LogInit(s, sh->options);
    sh->wal = std::make_unique<fileio::Wal>(config_.file_ops, sh->dir,
                                            config_.wal_sync);
  }
  sh->cache.Resize(sh->options.block_cache_bytes / config_.block_bytes);
  sh->scratch = AllocAligned(config_.block_bytes, config_.block_bytes);
  sh->io_depth = 0;  // force SetupShardRing to resolve from scratch
  SetupShardRing(*sh, config_, use_uring_);
  Shard& live = *sh;
  shards_.emplace(s, std::move(sh));
  resident_.insert(s);
  return live;
}

void FileEngine::HibernateShardAt(size_t s) {
  Shard& sh = shard(s);
  CAMAL_CHECK(!sh.hibernated);
  HibernateShardState(sh, config_);
  resident_.erase(s);
  hibernated_.insert(s);
}

void FileEngine::WakeAllHibernated() {
  while (!hibernated_.empty()) MaterializeShard(*hibernated_.begin());
}

void FileEngine::Touch(size_t s) {
  if (config_.lifecycle.hibernate_after_batches == 0) return;
  Shard& sh = *shards_.at(s);
  if (sh.last_touch_epoch == epoch_) return;
  sh.last_touch_epoch = epoch_;
  idle_queue_.emplace_back(s, epoch_);
}

void FileEngine::HibernateIdleShards() {
  const uint64_t window = config_.lifecycle.hibernate_after_batches;
  while (!idle_queue_.empty() &&
         idle_queue_.front().second + window <= epoch_) {
    const auto [s, touched] = idle_queue_.front();
    idle_queue_.pop_front();
    // Lazy deletion: only the newest timer of a still-resident shard
    // hibernates it.
    const Shard* sh = ShardPtr(s);
    if (sh != nullptr && !sh->hibernated && sh->last_touch_epoch == touched) {
      HibernateShardAt(s);
    }
  }
}

size_t FileEngine::NumShards() const { return num_shards_; }

size_t FileEngine::ShardIndex(uint64_t key) const {
  if (num_shards_ == 1) return 0;
  return static_cast<size_t>(util::Mix64(key) % num_shards_);
}

// ------------------------------------------------------------ public surface

void FileEngine::Put(uint64_t key, uint64_t value) {
  const size_t s = ShardIndex(key);
  Shard& sh = MaterializeShard(s);
  Touch(s);
  const double t0 = Now(config_);
  DoPut(sh, config_, direct_io_, key, value, /*tombstone=*/false);
  if (sh.wal != nullptr) sh.wal->Commit();  // single-op "batch"
  sh.clock.elapsed_ns += Now(config_) - t0;
}

void FileEngine::Delete(uint64_t key) {
  const size_t s = ShardIndex(key);
  Shard& sh = MaterializeShard(s);
  Touch(s);
  const double t0 = Now(config_);
  DoPut(sh, config_, direct_io_, key, 0, /*tombstone=*/true);
  if (sh.wal != nullptr) sh.wal->Commit();  // single-op "batch"
  sh.clock.elapsed_ns += Now(config_) - t0;
}

bool FileEngine::Get(uint64_t key, uint64_t* value) {
  const size_t s = ShardIndex(key);
  Shard& sh = MaterializeShard(s);
  Touch(s);
  const double t0 = Now(config_);
  const bool found = DoGet(sh, config_, key, value);
  sh.clock.elapsed_ns += Now(config_) - t0;
  return found;
}

size_t FileEngine::Scan(uint64_t start_key, size_t max_entries,
                        std::vector<lsm::Entry>* out) {
  if (num_shards_ == 1) {
    Shard& sh = MaterializeShard(0);
    Touch(0);
    const double t0 = Now(config_);
    const size_t n = DoScanShard(sh, config_, start_key, max_entries, out);
    sh.clock.elapsed_ns += Now(config_) - t0;
    return n;
  }
  if (max_entries == 0) return 0;

  // Scans consult every data-holding shard: hibernated shards wake, cold
  // shards are skipped (an empty shard contributes nothing and performs
  // no reads).
  WakeAllHibernated();
  const std::vector<size_t> probed(resident_.begin(), resident_.end());
  for (size_t s : probed) Touch(s);

  // Scatter: every resident shard contributes its own sorted slice (key
  // sets are hash-partitioned and disjoint), each probe timed on its own
  // clock. Shard slots resolve before the fan-out — workers never touch
  // the shard map.
  std::vector<Shard*> probed_slot(probed.size());
  for (size_t k = 0; k < probed.size(); ++k) {
    probed_slot[k] = shards_.at(probed[k]).get();
  }
  std::vector<std::vector<lsm::Entry>> slices(probed.size());
  util::ParallelFor(pool_, 0, probed.size(), [&](size_t k) {
    Shard& sh = *probed_slot[k];
    const double t0 = Now(config_);
    DoScanShard(sh, config_, start_key, max_entries, &slices[k]);
    sh.clock.elapsed_ns += Now(config_) - t0;
  });

  // Gather: binary-heap k-way merge of the disjoint sorted slices.
  return MergeDisjointSlices(slices, max_entries, out);
}

void FileEngine::ExecuteOps(const Op* ops, size_t count, OpResult* results) {
  if (count == 0) return;
  ++epoch_;

  // Pass 1: bring every shard this batch drives to the materialized
  // state. Scans additionally wake all hibernated shards — their file
  // sets participate in every range probe — while cold shards stay cold
  // (an empty shard contributes nothing and performs no reads).
  bool has_scan = false;
  for (size_t i = 0; i < count; ++i) {
    if (ops[i].kind == OpKind::kScan) {
      has_scan = true;
    } else {
      const size_t s = ShardIndex(ops[i].key);
      MaterializeShard(s);
      Touch(s);
    }
  }
  if (has_scan) WakeAllHibernated();

  // Pass 2: one submission list per touched shard, in submission order; a
  // scan probe appears in every resident shard's list (same sparse
  // decomposition as ShardedEngine::ExecuteOps — O(ops + resident), never
  // O(total shards)).
  std::vector<size_t> list_shard;  // list index -> shard id
  std::vector<std::vector<size_t>> lists;
  std::unordered_map<size_t, size_t> list_of;
  if (has_scan) {
    // The probe set is the resident set after pass 1, ascending; every
    // point shard of this batch is already in it.
    list_shard.assign(resident_.begin(), resident_.end());
    lists.resize(list_shard.size());
    list_of.reserve(2 * list_shard.size());
    for (size_t k = 0; k < list_shard.size(); ++k) {
      list_of.emplace(list_shard[k], k);
      Touch(list_shard[k]);
    }
  }
  std::vector<size_t> scan_slot(count, 0);
  std::vector<size_t> scan_op;
  for (size_t i = 0; i < count; ++i) {
    if (ops[i].kind == OpKind::kScan) {
      scan_slot[i] = scan_op.size();
      scan_op.push_back(i);
      for (auto& list : lists) list.push_back(i);
    } else {
      const size_t s = ShardIndex(ops[i].key);
      const auto [it, inserted] = list_of.try_emplace(s, lists.size());
      if (inserted) {
        lists.emplace_back();
        list_shard.push_back(s);
      }
      lists[it->second].push_back(i);
    }
  }

  // Per-(scan, probed shard) bookkeeping: real duration, real I/O count,
  // and live hits, indexed slot * stride + k so concurrent writers touch
  // disjoint elements.
  const size_t stride = lists.size();
  const size_t num_scans = scan_op.size();
  std::vector<double> scan_ns(num_scans * stride, 0.0);
  std::vector<uint64_t> scan_ios(num_scans * stride, 0);
  std::vector<size_t> scan_hits(num_scans * stride, 0);

  // Resolve shard slots before the fan-out: every listed shard is
  // materialized (pass 1), and workers must never touch the shard map.
  std::vector<Shard*> list_slot(lists.size());
  for (size_t k = 0; k < lists.size(); ++k) {
    list_slot[k] = shards_.at(list_shard[k]).get();
  }

  util::ParallelFor(pool_, 0, lists.size(), [&](size_t k) {
    Shard& sh = *list_slot[k];
    std::vector<lsm::Entry> scratch;
    const std::vector<size_t>& list = lists[k];
    for (size_t li = 0; li < list.size();) {
      const size_t i = list[li];
      const Op& op = ops[i];
      // Ring path: a maximal run of consecutive gets becomes one
      // overlapped submission window. Puts/deletes (may flush or
      // compact) and scans (content-dependent cursors) stay synchronous
      // barriers, executed exactly as on the pread path.
      if (sh.ring != nullptr && op.kind == OpKind::kGet) {
        size_t end = li + 1;
        while (end < list.size() && ops[list[end]].kind == OpKind::kGet) {
          ++end;
        }
        ExecuteGetWindow(sh, config_, ops, list.data() + li, end - li,
                         results);
        li = end;
        continue;
      }
      ++li;
      const uint64_t ios_before = sh.clock.block_reads + sh.clock.block_writes;
      const double t0 = Now(config_);
      if (op.kind == OpKind::kScan) {
        const size_t slot = scan_slot[i] * stride + k;
        scratch.clear();
        scan_hits[slot] =
            DoScanShard(sh, config_, op.key, op.scan_len, &scratch);
        const double dt = Now(config_) - t0;
        scan_ns[slot] = dt;
        scan_ios[slot] =
            sh.clock.block_reads + sh.clock.block_writes - ios_before;
        sh.clock.elapsed_ns += dt;
        continue;
      }
      OpResult r;
      switch (op.kind) {
        case OpKind::kGet:
          r.found = DoGet(sh, config_, op.key, nullptr);
          break;
        case OpKind::kPut:
          DoPut(sh, config_, direct_io_, op.key, op.value, false);
          break;
        case OpKind::kDelete:
          DoPut(sh, config_, direct_io_, op.key, 0, true);
          break;
        case OpKind::kScan:
          break;  // handled above
      }
      const double dt = Now(config_) - t0;
      r.latency_ns = dt;
      r.ios = sh.clock.block_reads + sh.clock.block_writes - ios_before;
      sh.clock.elapsed_ns += dt;
      results[i] = r;
    }
    // Group commit: the shard's whole batch of logged writes lands in one
    // pwrite (+ one fsync under kBatch). Untimed — durability overhead is
    // measured by bench_recovery, not charged to op latencies.
    if (sh.wal != nullptr) sh.wal->Commit();
  });

  // Gather the scans: a probe ran on every resident shard (cold shards
  // would have contributed zero reads and zero hits); the op's latency is
  // the sum of its per-shard probe times (serial-equivalent, the
  // simulated engine's convention), its I/O the sum of real reads.
  for (size_t slot = 0; slot < num_scans; ++slot) {
    OpResult r;
    size_t hits = 0;
    for (size_t k = 0; k < stride; ++k) {
      r.latency_ns += scan_ns[slot * stride + k];
      r.ios += scan_ios[slot * stride + k];
      hits += scan_hits[slot * stride + k];
    }
    const size_t i = scan_op[slot];
    r.scan_hits = std::min(ops[i].scan_len, hits);
    results[i] = r;
  }

  if (config_.lifecycle.hibernate_after_batches != 0) HibernateIdleShards();
  ProfileBatch(ops, count, results);
}

void FileEngine::FlushMemtable() {
  // Hibernated shards holding buffered writes wake to flush them; the
  // rest stay asleep (their flush would be a no-op). Cold shards are
  // empty by construction.
  std::vector<size_t> wake;
  for (size_t s : hibernated_) {
    if (shards_.at(s)->hib_memtable_size > 0) wake.push_back(s);
  }
  for (size_t s : wake) {
    MaterializeShard(s);
    Touch(s);
  }
  for (size_t s : resident_) {
    Shard& sh = *shards_.at(s);
    const double t0 = Now(config_);
    FlushShard(sh, config_, direct_io_);
    sh.clock.elapsed_ns += Now(config_) - t0;
  }
}

void FileEngine::Reconfigure(const lsm::Options& new_total_options) {
  const lsm::Options per_shard =
      ShardedEngine::ShardOptions(new_total_options, num_shards_);
  default_options_ = per_shard;
  cold_options_.clear();
  // Touched shards reconfigure now; untouched (cold) ones pick the new
  // default up at materialization. Gather ids first: the hibernated
  // overflow path inside ReconfigureShard may wake a shard, which
  // mutates the lifecycle sets but never the map itself — still, never
  // iterate a container while callees update its siblings.
  std::vector<size_t> touched;
  touched.reserve(shards_.size());
  for (const auto& [s, sh] : shards_) {
    (void)sh;
    touched.push_back(s);
  }
  for (size_t s : touched) ReconfigureShard(s, per_shard);
}

void FileEngine::ReconfigureShard(size_t s, const lsm::Options& options) {
  CAMAL_CHECK(s < num_shards_);
  Shard* slot = ShardPtr(s);
  if (slot == nullptr) {
    // Deferred: a cold shard is an empty file set, and reconfiguring an
    // empty shard is observationally identical to materializing it with
    // the new options in the first place.
    CAMAL_CHECK(options.entry_bytes == EffectiveOptions(s).entry_bytes);
    cold_options_[s] = options;
    return;
  }
  Shard& sh = *slot;
  CAMAL_CHECK(options.entry_bytes == sh.options.entry_bytes);
  if (sh.hibernated) {
    // In-place update while asleep, unless the buffered writes now
    // overflow the new capacity — then the shard must wake to flush,
    // exactly as the live path would.
    sh.options = options;
    if (sh.hib_memtable_size < options.BufferEntries()) {
      if (config_.durable) {
        // The shard's writers are closed while it sleeps; a short-lived
        // one records the change so a restart wakes into the new config.
        fileio::Manifest temp(config_.file_ops, sh.dir, DurableSync(config_),
                              sh.manifest_records);
        temp.LogOptions(options);
        sh.manifest_records = temp.record_count();
      }
      return;
    }
    MaterializeShard(s);
    Touch(s);
  }
  const double t0 = Now(config_);
  sh.options = options;
  if (sh.manifest != nullptr) sh.manifest->LogOptions(options);
  // The cache resizes immediately; a memtable over the new buffer
  // capacity flushes now; run files converge lazily through subsequent
  // flush/compaction cascades (InTransition reports the interim).
  sh.cache.Resize(options.block_cache_bytes / config_.block_bytes);
  if (sh.memtable.size() >= sh.options.BufferEntries()) {
    FlushShard(sh, config_, direct_io_);
  }
  // A changed io_queue_depth rebuilds the shard's ring and slot buffers
  // (no-op otherwise). Counters stay identical at any depth, so the
  // tuner may retune this knob mid-run like any other.
  SetupShardRing(sh, config_, use_uring_);
  MaybeRotateManifest(sh, config_);
  sh.clock.elapsed_ns += Now(config_) - t0;
}

uint32_t FileEngine::ShardQueueDepth(size_t s) const {
  CAMAL_CHECK(s < num_shards_);
  const Shard* sh = ShardPtr(s);
  if (sh != nullptr && !sh->hibernated) {
    return sh->ring != nullptr ? sh->io_depth : 1;
  }
  // Cold/hibernated: predict the depth materialization will resolve.
  const lsm::Options& options =
      sh != nullptr ? sh->options : EffectiveOptions(s);
  const uint32_t depth = ResolvedQueueDepth(options, config_);
  return RingWouldEngage(depth, config_, use_uring_) ? depth : 1;
}

const char* FileEngine::io_backend() const {
  for (size_t s : resident_) {
    if (shards_.at(s)->ring != nullptr) return "uring";
  }
  // No live ring: predict whether any cold/hibernated shard would engage
  // one on materialization. All such shards run either their recorded
  // options or the engine default, so checking hibernated shards plus one
  // representative of each cold configuration covers every case without
  // an O(total shards) walk.
  if (use_uring_ && resident_.size() < num_shards_) {
    auto engages = [&](const lsm::Options& options) {
      return RingWouldEngage(ResolvedQueueDepth(options, config_), config_,
                             use_uring_);
    };
    for (size_t s : hibernated_) {
      if (engages(shards_.at(s)->options)) return "uring";
    }
    const size_t awake = resident_.size() + hibernated_.size();
    if (awake < num_shards_) {
      for (const auto& [s, options] : cold_options_) {
        (void)s;
        if (engages(options)) return "uring";
      }
      if (cold_options_.size() < num_shards_ - awake &&
          engages(default_options_)) {
        return "uring";
      }
    }
  }
  return "pread";
}

lsm::Options FileEngine::ShardOptionsSnapshot(size_t s) const {
  CAMAL_CHECK(s < num_shards_);
  const Shard* sh = ShardPtr(s);
  return sh != nullptr ? sh->options : EffectiveOptions(s);
}

ShardState FileEngine::ShardLifecycle(size_t s) const {
  CAMAL_CHECK(s < num_shards_);
  const Shard* sh = ShardPtr(s);
  if (sh == nullptr) return ShardState::kCold;
  return sh->hibernated ? ShardState::kHibernated : ShardState::kMaterialized;
}

void FileEngine::AppendResidentShards(std::vector<size_t>* out) const {
  out->insert(out->end(), resident_.begin(), resident_.end());
}

sim::DeviceSnapshot FileEngine::CostSnapshot() const {
  // Ascending shard order, matching the simulated engine's convention
  // (clock values here are real measurements, but a stable summation
  // order keeps the aggregate reproducible given fixed per-shard clocks —
  // e.g. under an injected virtual clock).
  std::vector<size_t> ids;
  ids.reserve(shards_.size());
  for (const auto& [s, sh] : shards_) {
    (void)sh;
    ids.push_back(s);
  }
  std::sort(ids.begin(), ids.end());
  sim::DeviceSnapshot total;
  for (size_t s : ids) total += shards_.at(s)->clock.Snapshot();
  return total;
}

sim::DeviceSnapshot FileEngine::ShardCostSnapshot(size_t s) const {
  CAMAL_CHECK(s < num_shards_);
  const Shard* sh = ShardPtr(s);
  return sh == nullptr ? sim::DeviceSnapshot{} : sh->clock.Snapshot();
}

EngineCounters FileEngine::AggregateCounters() const {
  EngineCounters total;
  for (const auto& [s, sh] : shards_) {
    (void)s;
    total += sh->counters;
  }
  return total;
}

EngineCounters FileEngine::ShardCounters(size_t s) const {
  CAMAL_CHECK(s < num_shards_);
  const Shard* sh = ShardPtr(s);
  return sh == nullptr ? EngineCounters{} : sh->counters;
}

uint64_t FileEngine::TotalEntries() const {
  uint64_t total = 0;
  for (const auto& [s, sh] : shards_) {
    (void)s;
    total += sh->disk_entries +
             (sh->hibernated ? sh->hib_memtable_size : sh->memtable.size());
  }
  return total;
}

uint64_t FileEngine::DiskEntries() const {
  uint64_t total = 0;
  for (const auto& [s, sh] : shards_) {
    (void)s;
    total += sh->disk_entries;
  }
  return total;
}

uint64_t FileEngine::ShardEntries(size_t s) const {
  CAMAL_CHECK(s < num_shards_);
  const Shard* slot = ShardPtr(s);
  if (slot == nullptr) return 0;
  const Shard& sh = *slot;
  return sh.disk_entries +
         (sh.hibernated ? sh.hib_memtable_size : sh.memtable.size());
}

bool FileEngine::InTransition() const {
  for (const auto& [s, sh] : shards_) {
    (void)s;
    if (sh->hibernated) {
      // Judge the frozen shape against the (possibly updated-in-place)
      // options, mirroring the live LevelViolates checks.
      for (size_t l = 0; l < sh->hib_level_shape.size(); ++l) {
        const auto& [runs, entries] = sh->hib_level_shape[l];
        if (runs == 0) continue;
        if (runs > static_cast<size_t>(sh->options.MaxRunsPerLevel())) {
          return true;
        }
        if (static_cast<double>(entries) >
            sh->options.LevelCapacityEntries(static_cast<int>(l))) {
          return true;
        }
      }
      continue;
    }
    for (size_t l = 0; l < sh->levels.size(); ++l) {
      if (LevelViolates(sh->options, sh->levels[l], l)) return true;
    }
  }
  return false;
}

size_t FileEngine::ShardRunCount(size_t s) const {
  CAMAL_CHECK(s < num_shards_);
  const Shard* slot = ShardPtr(s);
  if (slot == nullptr) return 0;
  const Shard& sh = *slot;
  if (sh.hibernated) {
    size_t runs = 0;
    for (const auto& [count, entries] : sh.hib_level_shape) {
      (void)entries;
      runs += count;
    }
    return runs;
  }
  size_t runs = 0;
  for (const auto& level : sh.levels) runs += level.size();
  return runs;
}

}  // namespace camal::engine
