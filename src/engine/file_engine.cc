#include "engine/file_engine.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <limits>
#include <list>
#include <map>
#include <unordered_map>
#include <utility>

#include "engine/sharded_engine.h"
#include "lsm/bloom.h"
#include "util/random.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace camal::engine {

// Implementation-detail types live in a named namespace (not an anonymous
// one) because they appear as members of FileEngine::Shard, which has
// external linkage.
namespace fileio {

namespace fs = std::filesystem;

/// On-disk record: fixed 24 bytes so blocks decode by offset arithmetic.
/// The layout is private to this engine (run files are ephemeral
/// measurement artifacts, not an interchange format).
struct DiskEntry {
  uint64_t key = 0;
  uint64_t value = 0;
  uint64_t flags = 0;  // bit 0: tombstone
};
static_assert(sizeof(DiskEntry) == 24, "record layout must stay 24 bytes");

constexpr uint64_t kTombstoneFlag = 1;

/// Aborts with errno context; real-IO failures are environment errors the
/// measurement cannot recover from (same policy as CAMAL_CHECK).
inline void SysCheck(bool ok, const char* what, const std::string& path) {
  if (ok) return;
  std::fprintf(stderr, "FileEngine: %s failed for '%s': %s\n", what,
               path.c_str(), std::strerror(errno));
  std::abort();
}

/// Block-aligned heap buffer (O_DIRECT wants aligned reads and writes; the
/// same buffers serve the buffered fallback).
struct FreeDeleter {
  void operator()(void* p) const { std::free(p); }
};
using AlignedBuf = std::unique_ptr<char[], FreeDeleter>;

inline AlignedBuf AllocAligned(size_t bytes, size_t align) {
  void* p = nullptr;
  const int rc = posix_memalign(&p, align, bytes);
  CAMAL_CHECK(rc == 0 && p != nullptr);
  return AlignedBuf(static_cast<char*>(p));
}

inline double NowNs() {
  return std::chrono::duration<double, std::nano>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// LRU block cache that carries block *contents* (unlike the simulated
/// `lsm::BlockCache`, which only tracks hit/miss — a real backend must
/// serve cached bytes, not just skip a charge).
class ContentCache {
 public:
  explicit ContentCache(uint64_t capacity_blocks)
      : capacity_(capacity_blocks) {}

  /// Returns the cached block (promoted to MRU) or nullptr.
  const std::vector<char>* Lookup(uint64_t key) {
    auto it = map_.find(key);
    if (it == map_.end()) return nullptr;
    lru_.splice(lru_.begin(), lru_, it->second);
    return &it->second->second;
  }

  void Insert(uint64_t key, const std::vector<char>& content) {
    if (capacity_ == 0) return;
    auto it = map_.find(key);
    if (it != map_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      it->second->second = content;
      return;
    }
    lru_.emplace_front(key, content);
    map_[key] = lru_.begin();
    EvictToCapacity();
  }

  void Resize(uint64_t capacity_blocks) {
    capacity_ = capacity_blocks;
    EvictToCapacity();
  }

 private:
  void EvictToCapacity() {
    while (map_.size() > capacity_) {
      map_.erase(lru_.back().first);
      lru_.pop_back();
    }
  }

  uint64_t capacity_;
  std::list<std::pair<uint64_t, std::vector<char>>> lru_;
  std::unordered_map<
      uint64_t, std::list<std::pair<uint64_t, std::vector<char>>>::iterator>
      map_;
};

inline uint64_t CacheKey(uint64_t run_id, uint64_t block_idx) {
  return (run_id << 22) | (block_idx & ((1ULL << 22) - 1));
}

/// One immutable sorted run persisted as an append-only file. Fence
/// pointers (first key per block) and the Bloom filter stay in memory;
/// block contents are fetched by pread.
struct FileRun {
  uint64_t id = 0;
  std::string path;
  int fd = -1;
  uint64_t num_entries = 0;
  std::vector<uint64_t> fence;  // first key of each block
  lsm::BloomFilter filter;
  uint64_t min_key = 0;
  uint64_t max_key = 0;

  ~FileRun() {
    if (fd >= 0) ::close(fd);
  }
  size_t num_blocks() const { return fence.size(); }
};
using FileRunPtr = std::shared_ptr<FileRun>;

/// Real per-shard cost clock: actual block reads/writes plus accumulated
/// monotonic wall time, reported through the `sim::DeviceSnapshot`
/// currency so the arbiter and bench observability read it unchanged.
struct Clock {
  uint64_t block_reads = 0;
  uint64_t block_writes = 0;
  double elapsed_ns = 0.0;

  sim::DeviceSnapshot Snapshot() const {
    return sim::DeviceSnapshot{block_reads, block_writes, elapsed_ns};
  }
};

inline uint64_t EntriesPerBlock(uint64_t block_bytes) {
  return block_bytes / sizeof(DiskEntry);
}

inline const DiskEntry* BlockRecords(const std::vector<char>& block) {
  return reinterpret_cast<const DiskEntry*>(block.data());
}

inline lsm::Entry ToEntry(const DiskEntry& d) {
  return lsm::Entry{d.key, d.value, (d.flags & kTombstoneFlag) != 0};
}

inline int OpenRead(const std::string& path, bool direct) {
  int flags = O_RDONLY;
  if (direct) flags |= O_DIRECT;
  int fd = ::open(path.c_str(), flags);
  if (fd < 0 && direct) fd = ::open(path.c_str(), O_RDONLY);
  SysCheck(fd >= 0, "open", path);
  return fd;
}

}  // namespace fileio

/// One shard: a file set (levels of runs) plus memtable, Bloom filters,
/// content cache, live options, and its own cost clock. All state is
/// shard-local so per-shard submission lists can run concurrently.
struct FileEngine::Shard {
  lsm::Options options;
  std::string dir;
  std::map<uint64_t, lsm::Entry> memtable;
  /// levels[l] holds runs oldest-to-newest (read newest first).
  std::vector<std::vector<fileio::FileRunPtr>> levels;
  fileio::ContentCache cache{0};
  fileio::Clock clock;
  EngineCounters counters;
  uint64_t next_run_id = 1;
  uint64_t disk_entries = 0;
  /// pread target; block-aligned for O_DIRECT.
  fileio::AlignedBuf scratch;
};

namespace {

using fileio::AllocAligned;
using fileio::BlockRecords;
using fileio::DiskEntry;
using fileio::EntriesPerBlock;
using fileio::FileRun;
using fileio::FileRunPtr;
using fileio::kTombstoneFlag;
using fileio::NowNs;
using fileio::SysCheck;
using fileio::ToEntry;
namespace fs = std::filesystem;

/// Fetches block `blk` of `run` into `out` (cache-aware unless
/// `bypass_cache`; compaction input bypasses it, matching the simulated
/// cache policy).
void FetchBlock(FileEngine::Shard& sh, const FileEngineConfig& cfg,
                const FileRun& run, size_t blk, bool bypass_cache,
                std::vector<char>* out) {
  const uint64_t key = fileio::CacheKey(run.id, blk);
  if (!bypass_cache) {
    if (const std::vector<char>* hit = sh.cache.Lookup(key)) {
      *out = *hit;
      return;
    }
  }
  const ssize_t n = ::pread(run.fd, sh.scratch.get(), cfg.block_bytes,
                            static_cast<off_t>(blk * cfg.block_bytes));
  SysCheck(n == static_cast<ssize_t>(cfg.block_bytes), "pread", run.path);
  out->assign(sh.scratch.get(), sh.scratch.get() + cfg.block_bytes);
  ++sh.clock.block_reads;
  if (!bypass_cache) sh.cache.Insert(key, *out);
}

/// Builds one run file from sorted, deduplicated `entries`: serializes
/// them into block-aligned pages, writes the file append-only (one pass,
/// never modified again), and opens it for reads.
FileRunPtr BuildRun(FileEngine::Shard& sh, const FileEngineConfig& cfg,
                    bool direct_io, std::vector<lsm::Entry> entries,
                    double bloom_bits_per_key) {
  CAMAL_CHECK(!entries.empty());
  const uint64_t epb = EntriesPerBlock(cfg.block_bytes);
  const size_t num_blocks = (entries.size() + epb - 1) / epb;

  auto run = std::make_shared<FileRun>();
  run->id = sh.next_run_id++;
  run->path = sh.dir + "/run_" + std::to_string(run->id) + ".cam";
  run->num_entries = entries.size();
  run->min_key = entries.front().key;
  run->max_key = entries.back().key;
  run->filter = lsm::BloomFilter(entries.size(), bloom_bits_per_key);
  run->fence.reserve(num_blocks);

  fileio::AlignedBuf buf =
      AllocAligned(num_blocks * cfg.block_bytes, cfg.block_bytes);
  std::memset(buf.get(), 0, num_blocks * cfg.block_bytes);
  for (size_t i = 0; i < entries.size(); ++i) {
    const lsm::Entry& e = entries[i];
    const size_t blk = i / epb;
    const size_t slot = i % epb;
    // Records pack densely within each page; pages start at multiples of
    // block_bytes (24 does not divide 4096, so each page tail stays zero
    // padding — never decoded, because per-block record counts derive
    // from num_entries).
    auto* records =
        reinterpret_cast<DiskEntry*>(buf.get() + blk * cfg.block_bytes);
    records[slot].key = e.key;
    records[slot].value = e.value;
    records[slot].flags = e.tombstone ? kTombstoneFlag : 0;
    if (slot == 0) run->fence.push_back(e.key);
    run->filter.Add(e.key);
  }

  int flags = O_WRONLY | O_CREAT | O_TRUNC;
  if (direct_io) flags |= O_DIRECT;
  int fd = ::open(run->path.c_str(), flags, 0644);
  if (fd < 0 && direct_io) {
    fd = ::open(run->path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  }
  SysCheck(fd >= 0, "open(write)", run->path);
  const size_t total = num_blocks * cfg.block_bytes;
  size_t off = 0;
  while (off < total) {
    const ssize_t n =
        ::pwrite(fd, buf.get() + off, total - off, static_cast<off_t>(off));
    SysCheck(n > 0, "pwrite", run->path);
    off += static_cast<size_t>(n);
  }
  if (cfg.sync_files) SysCheck(::fsync(fd) == 0, "fsync", run->path);
  ::close(fd);
  sh.clock.block_writes += num_blocks;

  run->fd = fileio::OpenRead(run->path, direct_io);
  return run;
}

uint64_t LevelEntries(const std::vector<FileRunPtr>& level) {
  uint64_t total = 0;
  for (const FileRunPtr& r : level) total += r->num_entries;
  return total;
}

bool LevelViolates(const lsm::Options& opts,
                   const std::vector<FileRunPtr>& level, size_t level_idx) {
  if (level.empty()) return false;
  if (level.size() > static_cast<size_t>(opts.MaxRunsPerLevel())) return true;
  return static_cast<double>(LevelEntries(level)) >
         opts.LevelCapacityEntries(static_cast<int>(level_idx));
}

/// Bits-per-key for a new run: the shard's Bloom budget spread uniformly
/// over its (post-build) disk entries. Uniform rather than Monkey-curved:
/// the real backend validates *budget* tunings; the per-level curve is a
/// sim-side refinement.
double BloomBpk(const FileEngine::Shard& sh, uint64_t incoming) {
  const uint64_t total = std::max<uint64_t>(1, sh.disk_entries + incoming);
  return std::min(50.0, static_cast<double>(sh.options.bloom_bits) /
                            static_cast<double>(total));
}

/// Reads every entry of `run` sequentially (compaction input: bypasses the
/// cache, counts real reads as compaction I/O).
void ReadAllEntries(FileEngine::Shard& sh, const FileEngineConfig& cfg,
                    const FileRun& run, std::vector<lsm::Entry>* out) {
  const uint64_t epb = EntriesPerBlock(cfg.block_bytes);
  std::vector<char> block;
  for (size_t blk = 0; blk < run.num_blocks(); ++blk) {
    FetchBlock(sh, cfg, run, blk, /*bypass_cache=*/true, &block);
    ++sh.counters.compaction_block_reads;
    const uint64_t begin = blk * epb;
    const uint64_t count = std::min(epb, run.num_entries - begin);
    const DiskEntry* records = BlockRecords(block);
    for (uint64_t i = 0; i < count; ++i) out->push_back(ToEntry(records[i]));
  }
}

/// Merges every run of level `l` into one run pushed to level `l + 1`
/// (newest-wins on duplicate keys; tombstones drop when the output
/// becomes the deepest populated level), then unlinks the inputs.
void MergeLevelDown(FileEngine::Shard& sh, const FileEngineConfig& cfg,
                    bool direct_io, size_t l) {
  std::vector<FileRunPtr> inputs = std::move(sh.levels[l]);
  sh.levels[l].clear();
  if (sh.levels.size() <= l + 1) sh.levels.resize(l + 2);

  bool deeper_data = false;
  for (size_t d = l + 1; d < sh.levels.size(); ++d) {
    if (!sh.levels[d].empty()) deeper_data = true;
  }

  // Newest-first insertion keeps the freshest version of each key (the
  // level's runs are stored oldest-to-newest).
  std::map<uint64_t, lsm::Entry> merged;
  for (auto it = inputs.rbegin(); it != inputs.rend(); ++it) {
    std::vector<lsm::Entry> entries;
    ReadAllEntries(sh, cfg, **it, &entries);
    for (const lsm::Entry& e : entries) merged.emplace(e.key, e);
  }

  std::vector<lsm::Entry> out;
  out.reserve(merged.size());
  for (auto& [key, entry] : merged) {
    (void)key;
    if (entry.tombstone && !deeper_data) continue;  // nothing left to shadow
    out.push_back(entry);
  }

  uint64_t drained = 0;
  for (const FileRunPtr& r : inputs) drained += r->num_entries;
  sh.disk_entries -= drained;

  if (!out.empty()) {
    const uint64_t incoming = out.size();
    FileRunPtr run =
        BuildRun(sh, cfg, direct_io, std::move(out), BloomBpk(sh, incoming));
    sh.counters.compaction_block_writes += run->num_blocks();
    sh.disk_entries += run->num_entries;
    sh.levels[l + 1].push_back(std::move(run));
  }
  ++sh.counters.merges;

  for (const FileRunPtr& r : inputs) ::unlink(r->path.c_str());
}

/// Restores the level invariants (runs <= K, entries <= capacity) from
/// level 0 downward, cascading merges as needed.
void Normalize(FileEngine::Shard& sh, const FileEngineConfig& cfg,
               bool direct_io) {
  for (size_t l = 0; l < sh.levels.size(); ++l) {
    while (LevelViolates(sh.options, sh.levels[l], l)) {
      MergeLevelDown(sh, cfg, direct_io, l);
    }
  }
}

/// Drains the memtable into a new level-0 run (no-op when empty).
void FlushShard(FileEngine::Shard& sh, const FileEngineConfig& cfg,
                bool direct_io) {
  if (sh.memtable.empty()) return;
  std::vector<lsm::Entry> entries;
  entries.reserve(sh.memtable.size());
  for (const auto& [key, entry] : sh.memtable) {
    (void)key;
    entries.push_back(entry);
  }
  sh.memtable.clear();
  if (sh.levels.empty()) sh.levels.resize(1);
  const uint64_t incoming = entries.size();
  FileRunPtr run =
      BuildRun(sh, cfg, direct_io, std::move(entries), BloomBpk(sh, incoming));
  sh.disk_entries += run->num_entries;
  sh.levels[0].push_back(std::move(run));
  ++sh.counters.flushes;
  Normalize(sh, cfg, direct_io);
}

/// Untimed single-shard write (the public surface wraps these in the
/// shard clock; ExecuteOps times them per op).
void DoPut(FileEngine::Shard& sh, const FileEngineConfig& cfg, bool direct_io,
           uint64_t key, uint64_t value, bool tombstone) {
  if (sh.memtable.size() >= sh.options.BufferEntries()) {
    FlushShard(sh, cfg, direct_io);
  }
  sh.memtable[key] = lsm::Entry{key, value, tombstone};
}

bool DoGet(FileEngine::Shard& sh, const FileEngineConfig& cfg, uint64_t key,
           uint64_t* value) {
  auto it = sh.memtable.find(key);
  if (it != sh.memtable.end()) {
    if (it->second.tombstone) return false;
    if (value != nullptr) *value = it->second.value;
    return true;
  }
  const uint64_t epb = EntriesPerBlock(cfg.block_bytes);
  std::vector<char> block;
  for (const auto& level : sh.levels) {
    for (auto rit = level.rbegin(); rit != level.rend(); ++rit) {
      const FileRun& run = **rit;
      if (key < run.min_key || key > run.max_key) continue;
      if (!run.filter.MayContain(key)) continue;
      // Fence search: the block whose first key is the greatest <= key.
      const auto fit =
          std::upper_bound(run.fence.begin(), run.fence.end(), key);
      const size_t blk =
          static_cast<size_t>(std::distance(run.fence.begin(), fit)) - 1;
      FetchBlock(sh, cfg, run, blk, /*bypass_cache=*/false, &block);
      const uint64_t begin = blk * epb;
      const uint64_t count = std::min(epb, run.num_entries - begin);
      const DiskEntry* records = BlockRecords(block);
      const DiskEntry* end = records + count;
      const DiskEntry* found = std::lower_bound(
          records, end, key,
          [](const DiskEntry& d, uint64_t k) { return d.key < k; });
      if (found != end && found->key == key) {
        if (found->flags & kTombstoneFlag) return false;
        if (value != nullptr) *value = found->value;
        return true;
      }
      // Bloom false positive: the block read was paid in vain, exactly
      // like the simulated engine's kNotFoundAfterIo outcome.
    }
  }
  return false;
}

/// Shard-local range scan: merges the memtable slice with run cursors
/// (newest wins, tombstones suppress), appending up to `max_entries` live
/// entries to `out`. Block fetches are cache-aware real reads.
size_t DoScanShard(FileEngine::Shard& sh, const FileEngineConfig& cfg,
                   uint64_t start_key, size_t max_entries,
                   std::vector<lsm::Entry>* out) {
  if (max_entries == 0) return 0;
  const uint64_t epb = EntriesPerBlock(cfg.block_bytes);

  struct Cursor {
    const FileRun* run = nullptr;  // null for the memtable source
    std::vector<lsm::Entry> mem;   // materialized memtable tail
    uint64_t idx = 0;
    uint64_t end = 0;
    int64_t block = -1;
    std::vector<char> block_data;
  };
  std::vector<Cursor> cursors;

  {
    // Newest source first: the whole memtable tail (tombstones in it can
    // shadow run entries arbitrarily far into the scan).
    Cursor mem;
    for (auto it = sh.memtable.lower_bound(start_key); it != sh.memtable.end();
         ++it) {
      mem.mem.push_back(it->second);
    }
    mem.end = mem.mem.size();
    cursors.push_back(std::move(mem));
  }
  for (const auto& level : sh.levels) {
    for (auto rit = level.rbegin(); rit != level.rend(); ++rit) {
      const FileRun& run = **rit;
      Cursor c;
      c.run = &run;
      c.end = run.num_entries;
      if (start_key <= run.min_key) {
        c.idx = 0;
      } else if (start_key > run.max_key) {
        c.idx = c.end;
      } else {
        const auto fit =
            std::upper_bound(run.fence.begin(), run.fence.end(), start_key);
        const size_t blk =
            static_cast<size_t>(std::distance(run.fence.begin(), fit)) - 1;
        FetchBlock(sh, cfg, run, blk, /*bypass_cache=*/false, &c.block_data);
        c.block = static_cast<int64_t>(blk);
        const uint64_t begin = blk * epb;
        const uint64_t count = std::min(epb, run.num_entries - begin);
        const DiskEntry* records = BlockRecords(c.block_data);
        uint64_t i = 0;
        while (i < count && records[i].key < start_key) ++i;
        // i == count means the next block's first key >= start_key (the
        // fence search guarantees it).
        c.idx = begin + i;
      }
      cursors.push_back(std::move(c));
    }
  }

  auto entry_at = [&](Cursor& c) -> lsm::Entry {
    if (c.run == nullptr) return c.mem[c.idx];
    const auto blk = static_cast<int64_t>(c.idx / epb);
    if (blk != c.block) {
      FetchBlock(sh, cfg, *c.run, static_cast<size_t>(blk),
                 /*bypass_cache=*/false, &c.block_data);
      c.block = blk;
    }
    return ToEntry(BlockRecords(c.block_data)[c.idx % epb]);
  };
  auto key_at = [&](Cursor& c) { return entry_at(c).key; };

  size_t added = 0;
  while (added < max_entries) {
    uint64_t min_key = std::numeric_limits<uint64_t>::max();
    bool any = false;
    for (Cursor& c : cursors) {
      if (c.idx >= c.end) continue;
      const uint64_t k = key_at(c);
      if (!any || k < min_key) {
        min_key = k;
        any = true;
      }
    }
    if (!any) break;
    bool taken = false;
    for (Cursor& c : cursors) {
      if (c.idx >= c.end || key_at(c) != min_key) continue;
      if (!taken) {
        taken = true;
        const lsm::Entry e = entry_at(c);
        if (!e.tombstone) {
          out->push_back(e);
          ++added;
        }
      }
      ++c.idx;
    }
  }
  return added;
}

}  // namespace

// ----------------------------------------------------- construction/teardown

uint64_t FileEngine::NextUniqueId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1);
}

FileEngine::FileEngine(size_t num_shards, const lsm::Options& total_options,
                       const FileEngineConfig& config)
    : config_(config) {
  CAMAL_CHECK(num_shards >= 1);
  CAMAL_CHECK(config_.block_bytes >= 512 &&
              (config_.block_bytes & (config_.block_bytes - 1)) == 0);

  workdir_ = config_.workdir;
  if (workdir_.empty()) {
    workdir_ = (fs::temp_directory_path() /
                ("camal_file_engine_" + std::to_string(::getpid()) + "_" +
                 std::to_string(NextUniqueId())))
                   .string();
  }
  std::error_code ec;
  created_workdir_ = fs::create_directories(workdir_, ec);
  SysCheck(!ec, "create_directories", workdir_);

  // Probe the working directory's filesystem for O_DIRECT support once:
  // filesystems without it (tmpfs, some network/overlay mounts) refuse at
  // open(2) time, and the engine falls back to buffered I/O.
  if (config_.try_direct_io) {
    const std::string probe = workdir_ + "/.direct_probe";
    const int fd = ::open(probe.c_str(), O_WRONLY | O_CREAT | O_DIRECT, 0644);
    if (fd >= 0) {
      direct_io_ = true;
      ::close(fd);
    }
    ::unlink(probe.c_str());
  }

  const lsm::Options shard_options =
      ShardedEngine::ShardOptions(total_options, num_shards);
  shards_.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    auto sh = std::make_unique<Shard>();
    sh->options = shard_options;
    sh->dir = workdir_ + "/shard_" + std::to_string(s);
    fs::create_directories(sh->dir, ec);
    SysCheck(!ec, "create_directories", sh->dir);
    sh->cache.Resize(shard_options.block_cache_bytes / config_.block_bytes);
    sh->scratch = AllocAligned(config_.block_bytes, config_.block_bytes);
    shards_.push_back(std::move(sh));
  }
}

FileEngine::~FileEngine() {
  // Close every run fd before touching the directory tree.
  for (auto& sh : shards_) {
    for (auto& level : sh->levels) level.clear();
  }
  if (config_.keep_files) return;
  std::error_code ec;
  if (created_workdir_) {
    fs::remove_all(workdir_, ec);
  } else {
    // The caller owned the directory before us: remove only our shard
    // subtrees, never sibling content.
    for (const auto& sh : shards_) fs::remove_all(sh->dir, ec);
  }
}

FileEngine::Shard& FileEngine::shard(size_t s) {
  CAMAL_CHECK(s < shards_.size());
  return *shards_[s];
}
const FileEngine::Shard& FileEngine::shard(size_t s) const {
  CAMAL_CHECK(s < shards_.size());
  return *shards_[s];
}

size_t FileEngine::NumShards() const { return shards_.size(); }

size_t FileEngine::ShardIndex(uint64_t key) const {
  if (shards_.size() == 1) return 0;
  return static_cast<size_t>(util::Mix64(key) % shards_.size());
}

// ------------------------------------------------------------ public surface

void FileEngine::Put(uint64_t key, uint64_t value) {
  Shard& sh = shard(ShardIndex(key));
  const double t0 = NowNs();
  DoPut(sh, config_, direct_io_, key, value, /*tombstone=*/false);
  sh.clock.elapsed_ns += NowNs() - t0;
}

void FileEngine::Delete(uint64_t key) {
  Shard& sh = shard(ShardIndex(key));
  const double t0 = NowNs();
  DoPut(sh, config_, direct_io_, key, 0, /*tombstone=*/true);
  sh.clock.elapsed_ns += NowNs() - t0;
}

bool FileEngine::Get(uint64_t key, uint64_t* value) {
  Shard& sh = shard(ShardIndex(key));
  const double t0 = NowNs();
  const bool found = DoGet(sh, config_, key, value);
  sh.clock.elapsed_ns += NowNs() - t0;
  return found;
}

size_t FileEngine::Scan(uint64_t start_key, size_t max_entries,
                        std::vector<lsm::Entry>* out) {
  if (shards_.size() == 1) {
    Shard& sh = *shards_[0];
    const double t0 = NowNs();
    const size_t n = DoScanShard(sh, config_, start_key, max_entries, out);
    sh.clock.elapsed_ns += NowNs() - t0;
    return n;
  }
  if (max_entries == 0) return 0;

  // Scatter: every shard contributes its own sorted slice (key sets are
  // hash-partitioned and disjoint), each probe timed on its own clock.
  std::vector<std::vector<lsm::Entry>> slices(shards_.size());
  util::ParallelFor(pool_, 0, shards_.size(), [&](size_t s) {
    Shard& sh = *shards_[s];
    const double t0 = NowNs();
    DoScanShard(sh, config_, start_key, max_entries, &slices[s]);
    sh.clock.elapsed_ns += NowNs() - t0;
  });

  // Gather: linear min-scan merge of the disjoint sorted slices.
  std::vector<size_t> idx(shards_.size(), 0);
  size_t added = 0;
  while (added < max_entries) {
    size_t best = shards_.size();
    uint64_t best_key = std::numeric_limits<uint64_t>::max();
    for (size_t s = 0; s < slices.size(); ++s) {
      if (idx[s] >= slices[s].size()) continue;
      const uint64_t k = slices[s][idx[s]].key;
      if (best == shards_.size() || k < best_key) {
        best = s;
        best_key = k;
      }
    }
    if (best == shards_.size()) break;
    out->push_back(slices[best][idx[best]++]);
    ++added;
  }
  return added;
}

void FileEngine::ExecuteOps(const Op* ops, size_t count, OpResult* results) {
  if (count == 0) return;
  const size_t num_shards = shards_.size();

  // One submission list per shard/file-set, in submission order; a scan
  // probe appears in every shard's list (same decomposition as
  // ShardedEngine::ExecuteOps — the shape a real submission ring wants).
  std::vector<std::vector<size_t>> lists(num_shards);
  std::vector<size_t> scan_slot(count, 0);
  std::vector<size_t> scan_op;
  for (size_t i = 0; i < count; ++i) {
    if (ops[i].kind == OpKind::kScan) {
      scan_slot[i] = scan_op.size();
      scan_op.push_back(i);
      for (size_t s = 0; s < num_shards; ++s) lists[s].push_back(i);
    } else {
      lists[ShardIndex(ops[i].key)].push_back(i);
    }
  }

  // Per-(scan, shard) probe bookkeeping: real duration, real I/O count,
  // and live hits, indexed slot * num_shards + s so concurrent writers
  // touch disjoint elements.
  const size_t num_scans = scan_op.size();
  std::vector<double> scan_ns(num_scans * num_shards, 0.0);
  std::vector<uint64_t> scan_ios(num_scans * num_shards, 0);
  std::vector<size_t> scan_hits(num_scans * num_shards, 0);

  std::vector<size_t> active;
  active.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    if (!lists[s].empty()) active.push_back(s);
  }

  util::ParallelFor(pool_, 0, active.size(), [&](size_t a) {
    const size_t s = active[a];
    Shard& sh = *shards_[s];
    std::vector<lsm::Entry> scratch;
    for (size_t i : lists[s]) {
      const Op& op = ops[i];
      const uint64_t ios_before = sh.clock.block_reads + sh.clock.block_writes;
      const double t0 = NowNs();
      if (op.kind == OpKind::kScan) {
        const size_t slot = scan_slot[i] * num_shards + s;
        scratch.clear();
        scan_hits[slot] =
            DoScanShard(sh, config_, op.key, op.scan_len, &scratch);
        const double dt = NowNs() - t0;
        scan_ns[slot] = dt;
        scan_ios[slot] =
            sh.clock.block_reads + sh.clock.block_writes - ios_before;
        sh.clock.elapsed_ns += dt;
        continue;
      }
      OpResult r;
      switch (op.kind) {
        case OpKind::kGet:
          r.found = DoGet(sh, config_, op.key, nullptr);
          break;
        case OpKind::kPut:
          DoPut(sh, config_, direct_io_, op.key, op.value, false);
          break;
        case OpKind::kDelete:
          DoPut(sh, config_, direct_io_, op.key, 0, true);
          break;
        case OpKind::kScan:
          break;  // handled above
      }
      const double dt = NowNs() - t0;
      r.latency_ns = dt;
      r.ios = sh.clock.block_reads + sh.clock.block_writes - ios_before;
      sh.clock.elapsed_ns += dt;
      results[i] = r;
    }
  });

  // Gather the scans: a probe ran on every shard; the op's latency is the
  // sum of its per-shard probe times (serial-equivalent, the simulated
  // engine's convention), its I/O the sum of real reads.
  for (size_t slot = 0; slot < num_scans; ++slot) {
    OpResult r;
    size_t hits = 0;
    for (size_t s = 0; s < num_shards; ++s) {
      r.latency_ns += scan_ns[slot * num_shards + s];
      r.ios += scan_ios[slot * num_shards + s];
      hits += scan_hits[slot * num_shards + s];
    }
    const size_t i = scan_op[slot];
    r.scan_hits = std::min(ops[i].scan_len, hits);
    results[i] = r;
  }
}

void FileEngine::FlushMemtable() {
  for (auto& sh : shards_) {
    const double t0 = NowNs();
    FlushShard(*sh, config_, direct_io_);
    sh->clock.elapsed_ns += NowNs() - t0;
  }
}

void FileEngine::Reconfigure(const lsm::Options& new_total_options) {
  const lsm::Options per_shard =
      ShardedEngine::ShardOptions(new_total_options, shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) ReconfigureShard(s, per_shard);
}

void FileEngine::ReconfigureShard(size_t s, const lsm::Options& options) {
  Shard& sh = shard(s);
  CAMAL_CHECK(options.entry_bytes == sh.options.entry_bytes);
  const double t0 = NowNs();
  sh.options = options;
  // The cache resizes immediately; a memtable over the new buffer
  // capacity flushes now; run files converge lazily through subsequent
  // flush/compaction cascades (InTransition reports the interim).
  sh.cache.Resize(options.block_cache_bytes / config_.block_bytes);
  if (sh.memtable.size() >= sh.options.BufferEntries()) {
    FlushShard(sh, config_, direct_io_);
  }
  sh.clock.elapsed_ns += NowNs() - t0;
}

lsm::Options FileEngine::ShardOptionsSnapshot(size_t s) const {
  return shard(s).options;
}

sim::DeviceSnapshot FileEngine::CostSnapshot() const {
  sim::DeviceSnapshot total;
  for (const auto& sh : shards_) total += sh->clock.Snapshot();
  return total;
}

sim::DeviceSnapshot FileEngine::ShardCostSnapshot(size_t s) const {
  return shard(s).clock.Snapshot();
}

EngineCounters FileEngine::AggregateCounters() const {
  EngineCounters total;
  for (const auto& sh : shards_) total += sh->counters;
  return total;
}

EngineCounters FileEngine::ShardCounters(size_t s) const {
  return shard(s).counters;
}

uint64_t FileEngine::TotalEntries() const {
  uint64_t total = 0;
  for (const auto& sh : shards_) {
    total += sh->disk_entries + sh->memtable.size();
  }
  return total;
}

uint64_t FileEngine::DiskEntries() const {
  uint64_t total = 0;
  for (const auto& sh : shards_) total += sh->disk_entries;
  return total;
}

uint64_t FileEngine::ShardEntries(size_t s) const {
  const Shard& sh = shard(s);
  return sh.disk_entries + sh.memtable.size();
}

bool FileEngine::InTransition() const {
  for (const auto& sh : shards_) {
    for (size_t l = 0; l < sh->levels.size(); ++l) {
      if (LevelViolates(sh->options, sh->levels[l], l)) return true;
    }
  }
  return false;
}

size_t FileEngine::ShardRunCount(size_t s) const {
  const Shard& sh = shard(s);
  size_t runs = 0;
  for (const auto& level : sh.levels) runs += level.size();
  return runs;
}

}  // namespace camal::engine
