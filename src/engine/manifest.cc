#include "engine/manifest.h"

#include <algorithm>

namespace camal::engine::fileio {

namespace {

constexpr uint32_t kManifestVersion = 1;

enum RecordTag : uint8_t {
  kInit = 1,
  kOptions = 2,
  kFlush = 3,
  kCompact = 4,
  kHibernate = 5,
  kWake = 6,
  kSnapshot = 7,
};

void EncodeOptions(ByteWriter* w, const lsm::Options& o) {
  w->F64(o.size_ratio);
  w->U64(o.entry_bytes);
  w->U64(o.buffer_bytes);
  w->U64(o.bloom_bits);
  w->U64(o.block_cache_bytes);
  w->U8(o.policy == lsm::CompactionPolicy::kTiering ? 1 : 0);
  w->U32(static_cast<uint32_t>(o.runs_per_level));
  w->U64(o.file_bytes);
  w->U32(static_cast<uint32_t>(o.io_queue_depth));
}

lsm::Options DecodeOptions(ByteReader* r) {
  lsm::Options o;
  o.size_ratio = r->F64();
  o.entry_bytes = r->U64();
  o.buffer_bytes = r->U64();
  o.bloom_bits = r->U64();
  o.block_cache_bytes = r->U64();
  o.policy = r->U8() == 1 ? lsm::CompactionPolicy::kTiering
                          : lsm::CompactionPolicy::kLeveling;
  o.runs_per_level = static_cast<int>(r->U32());
  o.file_bytes = r->U64();
  o.io_queue_depth = static_cast<int>(r->U32());
  return o;
}

void EncodeRun(ByteWriter* w, const ManifestRunMeta& run) {
  w->U64(run.id);
  w->U64(run.num_entries);
  w->U64(run.min_key);
  w->U64(run.max_key);
  w->U64Vec(run.fence);
  w->U64(run.bloom_bits);
  w->U32(run.bloom_hashes);
  w->F64(run.bloom_bpk);
  w->U64Vec(run.bloom_words);
}

ManifestRunMeta DecodeRun(ByteReader* r) {
  ManifestRunMeta run;
  run.id = r->U64();
  run.num_entries = r->U64();
  run.min_key = r->U64();
  run.max_key = r->U64();
  run.fence = r->U64Vec();
  run.bloom_bits = r->U64();
  run.bloom_hashes = r->U32();
  run.bloom_bpk = r->F64();
  run.bloom_words = r->U64Vec();
  return run;
}

std::string EncodeSnapshot(const RecoveredShardState& st, uint64_t shard) {
  ByteWriter w;
  w.U8(kSnapshot);
  w.U32(kManifestVersion);
  w.U64(shard);
  EncodeOptions(&w, st.options);
  w.U64(st.wal_epoch);
  w.U64(st.next_run_id);
  w.U32(static_cast<uint32_t>(st.levels.size()));
  for (const auto& level : st.levels) {
    w.U32(static_cast<uint32_t>(level.size()));
    for (const ManifestRunMeta& run : level) EncodeRun(&w, run);
  }
  w.U8(st.hibernated ? 1 : 0);
  w.U64(st.hib_memtable_entries);
  w.U32(static_cast<uint32_t>(st.hib_shape.size()));
  for (const auto& [runs, entries] : st.hib_shape) {
    w.U64(runs);
    w.U64(entries);
  }
  return w.Take();
}

/// Applies one decoded record to the replay state. Returns false when the
/// payload is semantically malformed (decoder ran out of bytes) — the
/// caller treats that record as the start of a torn tail.
bool ApplyRecord(const std::string& payload, RecoveredShardState* st,
                 uint64_t* max_run_id, bool* initialized) {
  ByteReader r(payload);
  const uint8_t tag = r.U8();
  switch (tag) {
    case kInit: {
      r.U32();  // version (single-version format so far)
      r.U64();  // shard id (engine derives it from the directory name)
      st->options = DecodeOptions(&r);
      *initialized = true;
      break;
    }
    case kOptions: {
      st->options = DecodeOptions(&r);
      break;
    }
    case kFlush: {
      st->wal_epoch = r.U64();
      ManifestRunMeta run = DecodeRun(&r);
      if (!r.ok()) return false;
      *max_run_id = std::max(*max_run_id, run.id);
      if (st->levels.empty()) st->levels.resize(1);
      st->levels[0].push_back(std::move(run));
      break;
    }
    case kCompact: {
      const uint32_t src = r.U32();
      const std::vector<uint64_t> removed = r.U64Vec();
      const uint32_t added_count = r.U32();
      std::vector<ManifestRunMeta> added;
      added.reserve(added_count);
      for (uint32_t i = 0; i < added_count; ++i) {
        added.push_back(DecodeRun(&r));
        if (!r.ok()) return false;
      }
      if (!r.ok() || src >= st->levels.size()) return false;
      auto& level = st->levels[src];
      level.erase(std::remove_if(level.begin(), level.end(),
                                 [&](const ManifestRunMeta& run) {
                                   return std::find(removed.begin(),
                                                    removed.end(),
                                                    run.id) != removed.end();
                                 }),
                  level.end());
      if (st->levels.size() <= src + 1) st->levels.resize(src + 2);
      for (ManifestRunMeta& run : added) {
        *max_run_id = std::max(*max_run_id, run.id);
        st->levels[src + 1].push_back(std::move(run));
      }
      break;
    }
    case kHibernate: {
      st->hibernated = true;
      st->hib_memtable_entries = r.U64();
      const uint32_t n = r.U32();
      st->hib_shape.clear();
      for (uint32_t i = 0; i < n; ++i) {
        const uint64_t runs = r.U64();
        const uint64_t entries = r.U64();
        st->hib_shape.emplace_back(runs, entries);
      }
      break;
    }
    case kWake: {
      st->hibernated = false;
      st->hib_memtable_entries = 0;
      st->hib_shape.clear();
      break;
    }
    case kSnapshot: {
      r.U32();  // version
      r.U64();  // shard id
      RecoveredShardState snap;
      snap.options = DecodeOptions(&r);
      snap.wal_epoch = r.U64();
      snap.next_run_id = r.U64();
      const uint32_t num_levels = r.U32();
      if (!r.ok()) return false;
      snap.levels.resize(num_levels);
      for (uint32_t l = 0; l < num_levels; ++l) {
        const uint32_t num_runs = r.U32();
        if (!r.ok()) return false;
        snap.levels[l].reserve(num_runs);
        for (uint32_t i = 0; i < num_runs; ++i) {
          snap.levels[l].push_back(DecodeRun(&r));
          if (!r.ok()) return false;
        }
      }
      snap.hibernated = r.U8() == 1;
      snap.hib_memtable_entries = r.U64();
      const uint32_t shape = r.U32();
      for (uint32_t i = 0; i < shape; ++i) {
        const uint64_t runs = r.U64();
        const uint64_t entries = r.U64();
        snap.hib_shape.emplace_back(runs, entries);
      }
      if (!r.ok()) return false;
      // The snapshot replaces all structural state accumulated so far.
      st->options = snap.options;
      st->wal_epoch = snap.wal_epoch;
      st->levels = std::move(snap.levels);
      st->hibernated = snap.hibernated;
      st->hib_memtable_entries = snap.hib_memtable_entries;
      st->hib_shape = std::move(snap.hib_shape);
      *max_run_id = std::max(*max_run_id, snap.next_run_id - 1);
      *initialized = true;
      break;
    }
    default:
      return false;  // unknown tag: cannot replay past it
  }
  return r.ok();
}

}  // namespace

bool RecoverManifest(const std::string& path, RecoveredShardState* out) {
  RecordFileContents log = ReadRecordFile(path);
  if (!log.exists) return false;

  RecoveredShardState st;
  uint64_t max_run_id = 0;
  bool initialized = false;
  uint64_t offset = 0;
  for (const std::string& payload : log.records) {
    if (!ApplyRecord(payload, &st, &max_run_id, &initialized)) {
      // A CRC-valid but undecodable record: treat it and everything after
      // as a torn tail (same repair as physical damage).
      log.torn_tail = true;
      break;
    }
    offset += 8 + payload.size();
    ++st.num_records;
  }
  if (!initialized) return false;  // empty or corrupt-from-record-0

  st.valid = true;
  st.valid_bytes = offset;
  st.tail_torn = log.torn_tail;
  st.next_run_id = max_run_id + 1;
  // Trailing empty levels are an artifact of replay order; the live shard
  // never keeps them either.
  while (!st.levels.empty() && st.levels.back().empty()) st.levels.pop_back();
  *out = std::move(st);
  return true;
}

Manifest::Manifest(FileOps* ops, const std::string& shard_dir, bool sync,
                   size_t known_records)
    : ops_(ops), path_(PathFor(shard_dir)), sync_(sync),
      records_(known_records),
      writer_(std::make_unique<RecordWriter>(ops, path_)) {}

void Manifest::TruncateTail(uint64_t valid_bytes) {
  writer_->TruncateTo(valid_bytes);
}

void Manifest::Log(const std::string& payload) {
  writer_->Append(payload);
  writer_->Commit();
  if (sync_) writer_->Sync();
  ++records_;
}

void Manifest::LogInit(uint64_t shard, const lsm::Options& options) {
  ByteWriter w;
  w.U8(kInit);
  w.U32(kManifestVersion);
  w.U64(shard);
  EncodeOptions(&w, options);
  Log(w.Take());
}

void Manifest::LogOptions(const lsm::Options& options) {
  ByteWriter w;
  w.U8(kOptions);
  EncodeOptions(&w, options);
  Log(w.Take());
}

void Manifest::LogFlush(uint64_t new_epoch, const ManifestRunMeta& run) {
  ByteWriter w;
  w.U8(kFlush);
  w.U64(new_epoch);
  EncodeRun(&w, run);
  Log(w.Take());
}

void Manifest::LogCompact(uint32_t src_level,
                          const std::vector<uint64_t>& removed,
                          const std::vector<ManifestRunMeta>& added) {
  ByteWriter w;
  w.U8(kCompact);
  w.U32(src_level);
  w.U64Vec(removed);
  w.U32(static_cast<uint32_t>(added.size()));
  for (const ManifestRunMeta& run : added) EncodeRun(&w, run);
  Log(w.Take());
}

void Manifest::LogHibernate(
    uint64_t memtable_entries,
    const std::vector<std::pair<uint64_t, uint64_t>>& shape) {
  ByteWriter w;
  w.U8(kHibernate);
  w.U64(memtable_entries);
  w.U32(static_cast<uint32_t>(shape.size()));
  for (const auto& [runs, entries] : shape) {
    w.U64(runs);
    w.U64(entries);
  }
  Log(w.Take());
}

void Manifest::LogWake() {
  ByteWriter w;
  w.U8(kWake);
  Log(w.Take());
}

bool Manifest::MaybeRotate(const RecoveredShardState& state,
                           uint32_t rotate_records) {
  if (rotate_records == 0 || records_ <= rotate_records) return false;
  return Rotate(state);
}

bool Manifest::Rotate(const RecoveredShardState& state) {
  const std::string tmp = path_ + ".tmp";
  // A stale tmp from an earlier crashed rotation would otherwise make the
  // fresh writer append after its leftovers.
  ops_->Unlink(tmp);
  {
    RecordWriter snap(ops_, tmp);
    snap.Append(EncodeSnapshot(state, /*shard=*/0));
    snap.Commit();
    snap.Sync();  // the snapshot must be complete before it can be named
  }
  if (ops_->Rename(tmp, path_) != 0) {
    // Rotation is an optimization; the long log stays authoritative.
    ops_->Unlink(tmp);
    return false;
  }
  // The old inode is orphaned; reopen the writer on the new file.
  writer_ = std::make_unique<RecordWriter>(ops_, path_);
  records_ = 1;
  return true;
}

}  // namespace camal::engine::fileio
