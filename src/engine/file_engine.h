#ifndef CAMAL_ENGINE_FILE_ENGINE_H_
#define CAMAL_ENGINE_FILE_ENGINE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "engine/file_ops.h"
#include "engine/storage_engine.h"
#include "engine/wal.h"
#include "lsm/options.h"

namespace camal::util {
class ThreadPool;
}  // namespace camal::util

namespace camal::engine {

/// How `FileEngine` issues block reads inside `ExecuteOps`.
enum class IoMode {
  /// Serial `pread` per block — the reference path.
  kPread,
  /// io_uring ring submission whenever the build + kernel support it
  /// (falls back to pread otherwise), at any queue depth — lets tests
  /// pin the ring path even at depth 1.
  kUring,
  /// Ring submission only when supported *and* the effective queue depth
  /// exceeds 1; otherwise pread. The default: depth 1 preserves today's
  /// behavior exactly.
  kAuto,
};

/// Construction-time knobs of the real-IO backend.
struct FileEngineConfig {
  /// Working directory the engine persists its run files under. Created
  /// (recursively) when missing. Empty selects a unique directory under
  /// the system temp dir. Unless `keep_files` is set, the directory and
  /// everything in it are removed when the engine is destroyed.
  std::string workdir;
  /// Attempt to open run files with O_DIRECT (unbuffered device I/O, the
  /// paper's testbed configuration). Filesystems that refuse it (tmpfs,
  /// some overlayfs) silently fall back to buffered I/O; `direct_io()`
  /// reports what actually stuck.
  bool try_direct_io = true;
  /// Leave the working directory (and all run files) behind on
  /// destruction — for post-mortem inspection.
  bool keep_files = false;
  /// fsync run files after writing them. Off by default: the engine is a
  /// measurement backend, not a durability story, and fsync latency on CI
  /// machines drowns the signal under test.
  bool sync_files = false;
  /// Size of one on-disk block: the read unit, the fence-pointer
  /// granularity, and the O_DIRECT alignment. Must be a power of two and
  /// a multiple of 512.
  uint64_t block_bytes = 4096;
  /// Read-submission backend selection (see `IoMode`). Whatever the mode,
  /// logical results, per-op I/O counts, and all `EngineCounters` are
  /// bit-identical — only wall-clock changes.
  IoMode io_mode = IoMode::kAuto;
  /// Engine-default number of block reads a shard keeps in flight on the
  /// ring path (1 = no overlap). Per-shard `lsm::Options::io_queue_depth`
  /// overrides this when nonzero — that is the knob the tuner drives.
  uint32_t io_queue_depth = 1;
  /// Injectable time source for the profiling clocks, in nanoseconds.
  /// Null (the default) reads the steady monotonic clock. Tests inject a
  /// virtual clock here so measured latencies — and everything downstream
  /// of them: cost-profiler windows, calibration fits, racing verdicts —
  /// are deterministic instead of real-time-dependent. Logical results
  /// and I/O *counts* never depend on the clock.
  std::function<double()> clock_ns;
  /// Durability layer master switch. When set, every shard keeps a
  /// manifest (append-only log of its file-set structure) and a WAL (its
  /// memtable contents), so a crash or restart can reconstruct the exact
  /// logical state. Off by default: the engine is first a measurement
  /// backend, and with `durable=false` nothing below exists on the hot
  /// path — all I/O counters stay bit-identical to pre-durability builds.
  /// Durability I/O (manifest, WAL, sidecars) is never charged to the
  /// shard clocks even when enabled.
  bool durable = false;
  /// Reconstruct shards from an existing workdir's manifests instead of
  /// starting empty (implies `durable`). Recovery = manifest replay (run
  /// metadata: fences, Blooms, levels — run files are reopened, never
  /// rebuilt or rescanned) + WAL tail replay (memtable contents), with
  /// CRC-invalid tails truncated and unreferenced files removed.
  bool reopen = false;
  /// When WAL/manifest bytes are fsynced (see `fileio::WalSyncPolicy`).
  /// `kNone` still survives clean close + reopen; only crash durability
  /// needs `kBatch`/`kAlways`.
  fileio::WalSyncPolicy wal_sync = fileio::WalSyncPolicy::kBatch;
  /// Rotate (rewrite as one snapshot record) a shard's manifest once it
  /// exceeds this many records. 0 disables rotation.
  uint32_t manifest_rotate_records = 128;
  /// Injectable seam for all mutating file operations (null = raw
  /// syscalls). Tests substitute fault models to build deterministic
  /// crash-point matrices; production never pays more than a virtual
  /// dispatch per syscall.
  fileio::FileOps* file_ops = nullptr;
  /// Shard lifecycle: lazy instantiation (a cold shard holds no memtable,
  /// Bloom filters, cache, scratch buffers, or file descriptors) and
  /// idle-shard hibernation (a hibernated shard persists its in-memory
  /// structures to an uncounted sidecar file next to its run files and
  /// releases them; the next touching op rehydrates it). Both transitions
  /// leave logical results, per-op I/O counts, and `EngineCounters`
  /// bit-identical to an eager engine.
  ShardLifecycleConfig lifecycle;
};

/// \brief Real-IO storage backend: an LSM engine whose sorted runs are
/// append-only files on a real filesystem, with costs measured by
/// monotonic clocks instead of the simulated device.
///
/// `FileEngine` is the second `StorageEngine` implementation (next to the
/// `sim::Device`-priced `lsm::LsmTree`/`ShardedEngine` stack) and exists
/// to validate that model-driven tunings transfer from the simulator to
/// an actual device. It keeps the same externally visible structure as
/// the simulated engine — N hash-partitioned shards (`Mix64(key) % N`),
/// per-shard memtable / Bloom filters / block cache, a leveled run
/// hierarchy shaped by `lsm::Options` (buffer size, size ratio T, policy,
/// runs-per-level K), scatter-gather `Scan` — but every run is a real
/// file and every read path block access is a real `pread`.
///
/// Cost accounting is truthful, not simulated: per-shard clocks accumulate
/// wall time measured around each operation plus real block read/write
/// counts, and `ShardCostSnapshot(shard)` reports them in the same
/// `sim::DeviceSnapshot` currency the rest of the stack consumes. The
/// tuning layers (`tune::MemoryArbiter`, `tune::DynamicTuner`) therefore
/// run against this backend unchanged, observing real costs.
///
/// File layout: `workdir/shard_<s>/run_<id>.cam`, each an immutable
/// append-only file of fixed-size blocks written once at flush/compaction
/// time. Fence pointers (first key per block) and Bloom filters live in
/// memory; reads fetch single blocks through a content-carrying LRU block
/// cache sized by `Options::block_cache_bytes`.
///
/// Determinism: given the same operation sequence, file structure, flush
/// points, Bloom decisions, cache behavior, and therefore **all I/O
/// counters and logical results** (found flags, scan hits) are
/// deterministic. Only the clock-measured latencies vary run to run —
/// they are real.
///
/// Thread-safety: externally synchronized, like every `StorageEngine`.
/// Shard state is fully shard-local, so `ExecuteOps` may fan per-shard
/// submission lists across an attached pool (see `set_pool`).
class FileEngine : public StorageEngine {
 public:
  /// Creates `num_shards` file-set shards under `config.workdir`.
  /// `total_options` is the system-wide configuration; each shard receives
  /// the same even slice `ShardedEngine::ShardOptions` hands a simulated
  /// shard, so budget arithmetic (and the arbiter's conserved total) is
  /// identical across backends.
  FileEngine(size_t num_shards, const lsm::Options& total_options,
             const FileEngineConfig& config);
  ~FileEngine() override;

  FileEngine(const FileEngine&) = delete;
  FileEngine& operator=(const FileEngine&) = delete;

  void Put(uint64_t key, uint64_t value) override;
  void Delete(uint64_t key) override;
  bool Get(uint64_t key, uint64_t* value) override;
  size_t Scan(uint64_t start_key, size_t max_entries,
              std::vector<lsm::Entry>* out) override;

  /// Batched execution: the batch is partitioned into one submission list
  /// per shard/file-set (a scan probe joins every list), the lists run
  /// concurrently when a pool is attached, and per-op cost comes from a
  /// monotonic clock around each operation (a scan's latency is the sum
  /// of its per-shard probe times — the serial-equivalent convention the
  /// simulated engine uses). Logical results and I/O counts are
  /// deterministic at any pool size; measured latencies are real.
  void ExecuteOps(const Op* ops, size_t count, OpResult* results) override;
  using StorageEngine::ExecuteOps;

  void FlushMemtable() override;

  /// Divides `new_total_options` across shards (same arithmetic as the
  /// simulated sharded engine) and reconfigures every shard.
  void Reconfigure(const lsm::Options& new_total_options) override;

  /// Applies shard-local `options` at runtime: the block cache resizes
  /// immediately, a memtable over the new buffer capacity flushes, and
  /// future runs size their Bloom filters from the new budget. Existing
  /// run files converge through subsequent flushes/compactions (lazy,
  /// like the simulated tree). Safe between `ExecuteOps` batches — this
  /// is the surface the memory arbiter and the dynamic tuner drive.
  void ReconfigureShard(size_t shard, const lsm::Options& options) override;

  size_t NumShards() const override;
  size_t ShardIndex(uint64_t key) const override;

  lsm::Options ShardOptionsSnapshot(size_t shard) const override;

  ShardState ShardLifecycle(size_t shard) const override;
  size_t MaterializedShards() const override { return resident_.size(); }
  void AppendResidentShards(std::vector<size_t>* out) const override;

  /// Real cost clocks: block_reads/block_writes are actual pread/pwrite
  /// block counts, elapsed_ns is accumulated monotonic wall time.
  sim::DeviceSnapshot CostSnapshot() const override;
  sim::DeviceSnapshot ShardCostSnapshot(size_t shard) const override;
  EngineCounters AggregateCounters() const override;
  EngineCounters ShardCounters(size_t shard) const override;

  uint64_t TotalEntries() const override;
  uint64_t DiskEntries() const override;
  uint64_t ShardEntries(size_t shard) const override;
  bool InTransition() const override;

  /// Attaches (or detaches, with nullptr) the worker pool `ExecuteOps`
  /// and `Scan` fan per-shard work across. Not owned; must outlive its
  /// use. No pool runs inline.
  void set_pool(util::ThreadPool* pool) { pool_ = pool; }
  util::ThreadPool* pool() const { return pool_; }

  /// True when run files are actually being read with O_DIRECT (the
  /// constructor probes the working directory's filesystem once).
  bool direct_io() const { return direct_io_; }

  /// The read-submission backend that actually engages inside
  /// `ExecuteOps`: "uring" when the build carries the ring path, the
  /// kernel accepted `io_uring_setup`, and the configured mode/depth gave
  /// at least one shard a live ring; "pread" otherwise (the automatic
  /// fallback). For cold/hibernated shards the answer is predicted from
  /// their effective options — the same resolution materialization will
  /// perform — so the report is stable across lifecycle transitions.
  const char* io_backend() const;

  /// The queue depth a shard's ring currently runs at (after applying the
  /// shard-options override); 1 on the pread path. Predicted from the
  /// effective options for cold/hibernated shards (see `io_backend`).
  uint32_t ShardQueueDepth(size_t shard) const;

  /// The resolved working directory (useful when `workdir` was empty).
  const std::string& workdir() const { return workdir_; }

  /// Whether the durability layer (manifest + WAL) is active — true when
  /// `durable` or `reopen` was configured.
  bool durable() const { return config_.durable; }

  /// Number of live run files in one shard (observability/tests).
  size_t ShardRunCount(size_t shard) const;

  /// Process-unique suffix source for callers that create many engines
  /// under one base directory (the Evaluator's file-backend measurements).
  static uint64_t NextUniqueId();

  /// Opaque per-shard state (defined in file_engine.cc).
  struct Shard;

 private:
  Shard& shard(size_t s);
  const Shard& shard(size_t s) const;

  /// Slot lookup in the hashed active-shard map: the live shard, or null
  /// for a cold shard (no entry).
  Shard* ShardPtr(size_t s);
  const Shard* ShardPtr(size_t s) const;

  /// The options shard `s` will materialize with while it is cold.
  const lsm::Options& EffectiveOptions(size_t s) const;

  /// Brings shard `s` to the materialized state: creates its directory,
  /// cache, scratch buffers, and ring for a cold shard, or rehydrates a
  /// hibernated one from its sidecar. Returns the live shard.
  Shard& MaterializeShard(size_t s);

  /// `reopen=true` startup: scans the workdir for shard directories and
  /// reconstructs each from its manifest + WAL.
  void RecoverShards();

  /// Rebuilds one shard from `dir`'s manifest (levels, Blooms, fences,
  /// hibernation status) and WAL tail (memtable), truncating torn log
  /// tails and deleting unreferenced files.
  void RecoverShard(size_t s, const std::string& dir);

  /// Freezes shard `s` into its sidecar and releases in-memory state.
  void HibernateShardAt(size_t s);

  /// Wakes every hibernated shard (scans probe all data-holding shards).
  void WakeAllHibernated();

  /// Marks shard `s` active this batch and arms its idle timer.
  void Touch(size_t s);

  /// Hibernates shards whose idle timers expired.
  void HibernateIdleShards();

  FileEngineConfig config_;
  std::string workdir_;
  bool created_workdir_ = false;
  bool direct_io_ = false;
  bool use_uring_ = false;
  lsm::Options default_options_;
  /// Hashed active-shard map: an entry exists only for shards that have
  /// been materialized at least once (live or hibernated), so engine
  /// memory is O(active) even at a million mostly-cold tenants. No entry
  /// = cold shard.
  std::unordered_map<size_t, std::unique_ptr<Shard>> shards_;
  size_t num_shards_ = 0;
  /// Options applied to a shard while cold, pending materialization.
  std::map<size_t, lsm::Options> cold_options_;
  /// Materialized shard ids, ascending (scan probe order).
  std::set<size_t> resident_;
  /// Hibernated shard ids.
  std::set<size_t> hibernated_;
  /// Idle tracking: (shard, touch epoch) entries with lazy deletion.
  std::deque<std::pair<size_t, uint64_t>> idle_queue_;
  uint64_t epoch_ = 0;
  util::ThreadPool* pool_ = nullptr;
};

}  // namespace camal::engine

#endif  // CAMAL_ENGINE_FILE_ENGINE_H_
