#ifndef CAMAL_ENGINE_FILE_OPS_H_
#define CAMAL_ENGINE_FILE_OPS_H_

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdint>
#include <string>

namespace camal::engine::fileio {

/// \brief Injectable seam for every *mutating* file operation of the
/// real-IO backend (run-file builds, manifest/WAL appends, sidecar
/// rotation, unlinks).
///
/// The base class IS the production implementation: each virtual forwards
/// straight to the corresponding syscall, so the default path costs one
/// virtual dispatch per syscall — noise next to the syscall itself. Tests
/// subclass it to build deterministic fault models: count mutation sites,
/// crash (throw) at the k-th call, write only a prefix of a record before
/// dying, turn `Fsync` into a lie, or fail `Rename` — which is what makes
/// the durability layer's crash-point matrix (`crash_recovery_test`)
/// enumerable instead of probabilistic.
///
/// Read-side calls (`pread`) stay direct: power loss never corrupts a read,
/// so routing them through the seam would add surface without adding any
/// testable failure mode.
class FileOps {
 public:
  virtual ~FileOps() = default;

  /// `open(2)`. Creation and truncation flags make this a mutation site.
  virtual int Open(const std::string& path, int flags, int mode) {
    return ::open(path.c_str(), flags, mode);
  }

  /// `pwrite(2)` at an explicit offset (append offsets are tracked by the
  /// callers so fault models can reason about exact byte positions).
  virtual int64_t PWrite(int fd, const void* buf, uint64_t count,
                         uint64_t offset) {
    return ::pwrite(fd, buf, count, static_cast<off_t>(offset));
  }

  /// `fsync(2)`.
  virtual int Fsync(int fd) { return ::fsync(fd); }

  /// `rename(2)` — the atomic commit point of manifest rotation and
  /// sidecar installation.
  virtual int Rename(const std::string& from, const std::string& to) {
    return ::rename(from.c_str(), to.c_str());
  }

  /// `unlink(2)`.
  virtual int Unlink(const std::string& path) {
    return ::unlink(path.c_str());
  }

  /// `ftruncate(2)` — WAL resets and torn-tail truncation.
  virtual int Ftruncate(int fd, uint64_t length) {
    return ::ftruncate(fd, static_cast<off_t>(length));
  }

  /// `close(2)`. Not a durability event, but routed so fault models can
  /// keep an exact ledger of descriptors they handed out.
  virtual int Close(int fd) { return ::close(fd); }

  /// The shared production instance (raw syscalls). Engines resolve a null
  /// `FileEngineConfig::file_ops` to this.
  static FileOps* Real() {
    static FileOps real;
    return &real;
  }
};

}  // namespace camal::engine::fileio

#endif  // CAMAL_ENGINE_FILE_OPS_H_
