#ifndef CAMAL_ENGINE_IO_RING_H_
#define CAMAL_ENGINE_IO_RING_H_

#include <cstdint>
#include <memory>
#include <vector>

namespace camal::engine::fileio {

/// Thin wrapper over the kernel's io_uring submission/completion queues,
/// implemented directly on the raw syscall ABI (<linux/io_uring.h> +
/// syscall(2)) so the engine carries no liburing dependency. Only the
/// operation `FileEngine` needs is exposed: positional reads.
///
/// Build gating: when the tree is configured with -DCAMAL_WITH_URING=OFF,
/// or the platform lacks the io_uring UAPI header, every constructor
/// yields a ring with `ok() == false` and `IoRingSupported()` is false —
/// callers fall back to their pread path with no #ifdefs of their own.
///
/// Thread safety: none. A ring belongs to exactly one shard worker at a
/// time, matching the externally-synchronized shard contract.
class IoRing {
 public:
  /// One reaped completion: `user_data` echoes the tag passed to
  /// `PrepRead`; `result` is the read's byte count or a negated errno.
  struct Completion {
    uint64_t user_data = 0;
    int32_t result = 0;
  };

  /// Sets up a ring with capacity for `entries` in-flight reads (rounded
  /// up to a power of two by the kernel). On any failure — unsupported
  /// build, old kernel, seccomp/rlimit denial — the ring is inert:
  /// `ok()` returns false and all other calls are harmless no-ops.
  explicit IoRing(unsigned entries);
  ~IoRing();

  IoRing(const IoRing&) = delete;
  IoRing& operator=(const IoRing&) = delete;

  /// True when the ring is live and can accept submissions.
  bool ok() const;

  /// Submission-queue capacity the kernel actually granted (0 when
  /// `!ok()`). Up to this many reads may be in flight at once.
  unsigned capacity() const;

  /// Queues one positional read of `len` bytes at `offset` into `buf`
  /// (caller keeps `buf` alive and untouched until the completion for
  /// `user_data` is reaped). Returns false when the submission queue is
  /// full or the ring is inert.
  bool PrepRead(int fd, void* buf, unsigned len, uint64_t offset,
                uint64_t user_data);

  /// Hands all queued SQEs to the kernel. Returns the number submitted,
  /// or a negated errno.
  int Submit();

  /// Blocks until at least `min_complete` completions are available
  /// (counting ones already reaped into the CQ), appends every available
  /// completion to `out`, and returns the number appended (negated errno
  /// on failure). `min_complete == 0` drains without blocking.
  int WaitCompletions(unsigned min_complete, std::vector<Completion>* out);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// True when this build has the io_uring path compiled in *and* the
/// running kernel accepts io_uring_setup(2). Probed once, cached.
bool IoRingSupported();

}  // namespace camal::engine::fileio

#endif  // CAMAL_ENGINE_IO_RING_H_
