#include "engine/wal.h"

namespace camal::engine::fileio {

namespace {

// Wire layout of one entry inside a WAL record: key, value, flags (bit 0:
// tombstone) — the same 24-byte triple the run files use.
constexpr uint64_t kTombstoneFlag = 1;

}  // namespace

Wal::Wal(FileOps* ops, const std::string& shard_dir, WalSyncPolicy policy)
    : ops_(ops), path_(PathFor(shard_dir)), policy_(policy),
      writer_(std::make_unique<RecordWriter>(ops, path_)) {}

void Wal::Append(uint64_t epoch, const lsm::Entry* entries, size_t n) {
  if (n == 0) return;
  ByteWriter w;
  w.U64(epoch);
  w.U32(static_cast<uint32_t>(n));
  for (size_t i = 0; i < n; ++i) {
    w.U64(entries[i].key);
    w.U64(entries[i].value);
    w.U64(entries[i].tombstone ? kTombstoneFlag : 0);
  }
  writer_->Append(w.str());
  if (policy_ == WalSyncPolicy::kAlways) {
    writer_->Commit();
    writer_->Sync();
  }
}

void Wal::Commit() {
  if (!writer_->has_pending()) return;  // nothing new: no write, no sync
  writer_->Commit();
  if (policy_ != WalSyncPolicy::kNone) writer_->Sync();
}

void Wal::Sync() { writer_->Sync(); }

void Wal::Reset() { writer_->Reset(); }

void Wal::TruncateTail(uint64_t valid_bytes) {
  writer_->TruncateTo(valid_bytes);
}

WalReplay ReadWal(const std::string& path) {
  WalReplay out;
  RecordFileContents log = ReadRecordFile(path);
  out.exists = log.exists;
  if (!log.exists) return out;

  uint64_t offset = 0;
  for (const std::string& payload : log.records) {
    ByteReader r(payload);
    WalReplayRecord rec;
    rec.epoch = r.U64();
    const uint32_t n = r.U32();
    rec.entries.reserve(n);
    for (uint32_t i = 0; i < n && r.ok(); ++i) {
      lsm::Entry e;
      e.key = r.U64();
      e.value = r.U64();
      e.tombstone = (r.U64() & kTombstoneFlag) != 0;
      rec.entries.push_back(e);
    }
    if (!r.ok() || !r.AtEnd()) {
      // CRC-valid but undecodable: treat as the start of a torn tail.
      log.torn_tail = true;
      break;
    }
    offset += 8 + payload.size();
    out.records.push_back(std::move(rec));
  }
  out.valid_bytes = offset;
  out.tail_torn = log.torn_tail || offset != log.valid_bytes;
  return out;
}

}  // namespace camal::engine::fileio
