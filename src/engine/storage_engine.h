#ifndef CAMAL_ENGINE_STORAGE_ENGINE_H_
#define CAMAL_ENGINE_STORAGE_ENGINE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "lsm/entry.h"
#include "lsm/options.h"
#include "sim/device.h"
#include "util/status.h"

namespace camal::engine {

/// Aggregate compaction/flush counters exposed by every storage engine.
/// For a single LSM-tree these are the tree's own counters; a sharded
/// engine reports the sum over its shards.
struct EngineCounters {
  uint64_t compaction_block_reads = 0;
  uint64_t compaction_block_writes = 0;
  /// Compaction I/O performed while the engine was morphing toward a new
  /// configuration (dynamic mode, Section 6 of the paper).
  uint64_t transition_ios = 0;
  uint64_t flushes = 0;
  uint64_t merges = 0;

  EngineCounters& operator+=(const EngineCounters& other) {
    compaction_block_reads += other.compaction_block_reads;
    compaction_block_writes += other.compaction_block_writes;
    transition_ios += other.transition_ios;
    flushes += other.flushes;
    merges += other.merges;
    return *this;
  }
};

/// Abstract key-value serving engine — the boundary between the execution
/// stack (workload::Execute, tune::Evaluator, tune::DynamicTuner) and a
/// concrete storage backend. `lsm::LsmTree` implements it directly (one
/// tree, one device); `ShardedEngine` composes N trees behind a hash
/// partitioner. Later backends (async shard I/O, a real-device engine)
/// slot in behind the same surface.
///
/// Simulated cost accounting flows through `CostSnapshot()`: callers diff
/// two snapshots around an operation to price it, exactly as they would
/// diff a single `sim::Device`. Multi-device engines report the *sum* over
/// their devices, i.e. the serial-equivalent simulated time.
class StorageEngine {
 public:
  virtual ~StorageEngine() = default;

  /// Inserts or updates a key. May trigger flushes and compactions.
  virtual void Put(uint64_t key, uint64_t value) = 0;

  /// Deletes a key by writing a tombstone.
  virtual void Delete(uint64_t key) = 0;

  /// Point lookup. Returns true and fills `*value` when the key is live;
  /// false for missing or deleted keys. (`value` may be null.)
  virtual bool Get(uint64_t key, uint64_t* value) = 0;

  /// Range lookup: appends up to `max_entries` live entries with
  /// key >= start_key, in globally sorted key order, to `out`. Returns how
  /// many were added.
  virtual size_t Scan(uint64_t start_key, size_t max_entries,
                      std::vector<lsm::Entry>* out) = 0;

  /// Forces buffered writes to disk (no-op when empty).
  virtual void FlushMemtable() = 0;

  /// Applies a new configuration lazily (Section 6). For sharded engines
  /// `new_options` describes the *total* system budget, divided evenly
  /// across shards.
  virtual void Reconfigure(const lsm::Options& new_options) = 0;

  // --- Sharding surface -------------------------------------------------

  /// Number of independent partitions. 1 for a single tree.
  virtual size_t NumShards() const { return 1; }

  /// Deterministic partition a point operation on `key` routes to.
  virtual size_t ShardIndex(uint64_t key) const {
    (void)key;
    return 0;
  }

  /// Reconfigures one shard with *shard-local* options (the dynamic tuner
  /// retunes shards independently as their local mixes drift). The default
  /// serves single-shard engines.
  virtual void ReconfigureShard(size_t shard, const lsm::Options& options) {
    CAMAL_CHECK(shard == 0);
    Reconfigure(options);
  }

  // --- Cost accounting --------------------------------------------------

  /// Point-in-time aggregate of simulated I/O + time across the engine's
  /// devices. Diff two snapshots to price an operation window.
  virtual sim::DeviceSnapshot CostSnapshot() const = 0;

  /// Cost snapshot of one shard's device. A point operation only charges
  /// its routed shard, so callers can price it by diffing this instead of
  /// summing every device (the deltas are identical; scans, which touch
  /// all shards, must diff the full `CostSnapshot`).
  virtual sim::DeviceSnapshot ShardCostSnapshot(size_t shard) const {
    CAMAL_CHECK(shard == 0);
    return CostSnapshot();
  }

  /// Aggregate compaction/flush counters.
  virtual EngineCounters AggregateCounters() const = 0;

  // --- Scale views ------------------------------------------------------

  virtual uint64_t TotalEntries() const = 0;
  virtual uint64_t DiskEntries() const = 0;

  /// Live entries held by one shard (memtable + disk).
  virtual uint64_t ShardEntries(size_t shard) const {
    CAMAL_CHECK(shard == 0);
    return TotalEntries();
  }

  /// True while any shard's structure still violates its latest
  /// configuration.
  virtual bool InTransition() const = 0;
};

}  // namespace camal::engine

#endif  // CAMAL_ENGINE_STORAGE_ENGINE_H_
