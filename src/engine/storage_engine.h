#ifndef CAMAL_ENGINE_STORAGE_ENGINE_H_
#define CAMAL_ENGINE_STORAGE_ENGINE_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "lsm/entry.h"
#include "lsm/options.h"
#include "sim/device.h"
#include "util/status.h"

namespace camal::engine {

/// Aggregate compaction/flush counters exposed by every storage engine.
/// For a single LSM-tree these are the tree's own counters; a sharded
/// engine reports the sum over its shards.
struct EngineCounters {
  uint64_t compaction_block_reads = 0;
  uint64_t compaction_block_writes = 0;
  /// Compaction I/O performed while the engine was morphing toward a new
  /// configuration (dynamic mode, Section 6 of the paper).
  uint64_t transition_ios = 0;
  uint64_t flushes = 0;
  uint64_t merges = 0;

  EngineCounters& operator+=(const EngineCounters& other) {
    compaction_block_reads += other.compaction_block_reads;
    compaction_block_writes += other.compaction_block_writes;
    transition_ios += other.transition_ios;
    flushes += other.flushes;
    merges += other.merges;
    return *this;
  }
};

/// The memory a shard currently holds across the three arbitrable pools —
/// the currency of per-tenant memory arbitration. Budgets are always a
/// *view* of the shard's live `lsm::Options`; the options remain the
/// authority the engine is configured with.
struct ShardBudget {
  uint64_t buffer_bytes = 0;
  uint64_t bloom_bits = 0;
  uint64_t block_cache_bytes = 0;

  static ShardBudget FromOptions(const lsm::Options& options) {
    return ShardBudget{options.buffer_bytes, options.bloom_bits,
                       options.block_cache_bytes};
  }

  /// Total memory in bits (the unit budgets are arbitrated in).
  uint64_t TotalBits() const {
    return 8 * buffer_bytes + bloom_bits + 8 * block_cache_bytes;
  }
};

/// Lifecycle state of one shard in an engine with lazy instantiation.
/// Cold shards have never been touched and hold no in-memory structures;
/// materialized shards are live; hibernated shards released their
/// in-memory structures into a frozen snapshot and rehydrate
/// transparently on the next operation that touches them.
enum class ShardState : uint8_t {
  kCold,
  kMaterialized,
  kHibernated,
};

/// Shard-lifecycle knobs shared by the engines that support lazy
/// instantiation (`ShardedEngine`, `FileEngine`). The defaults — lazy on,
/// hibernation off — are bit-identical to the historical eager engines:
/// cold shards are observationally empty, and materializing one on first
/// touch reproduces exactly the state eager construction would have
/// produced.
struct ShardLifecycleConfig {
  /// Defer shard instantiation to the first operation that touches the
  /// shard. Off forces eager construction of every shard (the historical
  /// behavior, useful for A/B golden tests).
  bool lazy = true;
  /// Hibernate a materialized shard after it has sat idle for this many
  /// `ExecuteOps` batches (its frozen snapshot preserves all state
  /// bit-exactly). 0 disables hibernation.
  size_t hibernate_after_batches = 0;
};

/// The operation kinds of the batched request pipeline. The workload layer
/// distinguishes zero- from non-zero-result lookups when it *generates*
/// operations; by the time an op reaches the engine both are a `kGet`.
enum class OpKind : uint8_t {
  kGet,
  kPut,
  kDelete,
  kScan,
};

/// One operation of a batch submitted to `StorageEngine::ExecuteOps`.
struct Op {
  OpKind kind = OpKind::kGet;
  uint64_t key = 0;
  /// Payload for kPut.
  uint64_t value = 0;
  /// Maximum entries for kScan.
  size_t scan_len = 0;
};

/// Per-operation outcome and cost, attributed by the engine itself: the
/// simulated time and I/O the operation consumed on the device(s) it
/// touched. Callers no longer price operations by diffing engine-wide
/// cost snapshots around each call.
struct OpResult {
  /// Simulated latency of this operation (serial-equivalent: a scan that
  /// probes N shard devices costs the sum of the probes).
  double latency_ns = 0.0;
  /// Blocks read + written by this operation.
  uint64_t ios = 0;
  /// kGet: whether the key was live.
  bool found = false;
  /// kScan: how many entries the range probe produced. Batched scans
  /// report counts and costs only; use `Scan` directly when the entries
  /// themselves are needed.
  size_t scan_hits = 0;
};

/// Number of `OpKind` values — sizes per-kind aggregation arrays.
inline constexpr size_t kNumOpKinds = 4;

/// One always-on measurement window of a per-(shard, op-kind) cost
/// profiler: how many ops of the kind the shard served since the last
/// reset, and what they measurably cost. For simulated backends the
/// costs are the bit-deterministic device clocks; for `FileEngine` they
/// are real monotonic-clock latencies and real pread/pwrite block
/// counts — the measured side of the sim-vs-real calibration loop.
struct OpCostWindow {
  uint64_t ops = 0;
  uint64_t ios = 0;
  double latency_ns = 0.0;

  /// Measured blocks per operation (0 for an empty window).
  double IosPerOp() const {
    return ops == 0 ? 0.0 : static_cast<double>(ios) / static_cast<double>(ops);
  }
  /// Measured latency per operation in ns (0 for an empty window).
  double LatencyPerOp() const {
    return ops == 0 ? 0.0 : latency_ns / static_cast<double>(ops);
  }

  OpCostWindow& operator+=(const OpCostWindow& other) {
    ops += other.ops;
    ios += other.ios;
    latency_ns += other.latency_ns;
    return *this;
  }
};

/// \brief Abstract key-value serving engine — the boundary between the
/// execution stack (workload::Execute, tune::Evaluator, tune::DynamicTuner)
/// and a concrete storage backend.
///
/// Implementations: `lsm::LsmTree` (one simulated tree, one device),
/// `ShardedEngine` (N trees behind a hash partitioner, simulated), and
/// `FileEngine` (real files + real clocks). The tuning layers talk only
/// to this surface, so any backend slots in unchanged.
///
/// **Contract.** The serving hot path is `ExecuteOps`: the caller submits
/// a batch and receives one `OpResult` per op, in submission order, with
/// per-op cost attributed by the engine. The base implementation runs the
/// batch serially and prices each op by diffing `CostSnapshot()` (exactly
/// what callers historically did); `ShardedEngine` overrides it to execute
/// shard-local sub-batches concurrently while producing bit-identical
/// results. Every serving path — closed-loop (`workload::Execute`,
/// `tune::DynamicTuner`) and open-loop (`serve::Gateway`) — submits
/// through `ExecuteOps`. The point-op virtuals (`Put`/`Get`/`Delete`/
/// `Scan`) are a compatibility and testing surface, not a serving
/// entrypoint: use them for bulk loads, assertions, and probing entries,
/// and expect them to agree with `ExecuteOps` — executing a stream
/// through either path must produce the same logical outcomes and the
/// same I/O accounting. `CostSnapshot()` remains for whole-window
/// accounting (e.g. pricing an ingest phase). Multi-device engines report
/// the *sum* over their devices, i.e. the serial-equivalent time.
///
/// **Thread-safety.** Engines are externally synchronized: callers must
/// not invoke two methods concurrently on the same engine. Any
/// parallelism (shard fan-out) happens *inside* `ExecuteOps` (and
/// scatter-gather `Scan`), over state that is fully shard-local.
///
/// **Determinism.** Given the same operation sequence, logical results
/// and I/O *counts* are deterministic for every implementation, at any
/// internal thread count. Simulated backends additionally make the cost
/// clocks (`latency_ns`, `CostSnapshot().elapsed_ns`) bit-reproducible;
/// the real-IO backend measures them with monotonic clocks, so only its
/// timings vary between runs.
class StorageEngine {
 public:
  /// Engines own their storage (trees/devices/file sets); destruction
  /// releases it. Virtual: engines are deleted through this interface.
  virtual ~StorageEngine() = default;

  /// Inserts or updates a key. May trigger flushes and compactions.
  virtual void Put(uint64_t key, uint64_t value) = 0;

  /// Deletes a key by writing a tombstone.
  virtual void Delete(uint64_t key) = 0;

  /// Point lookup. Returns true and fills `*value` when the key is live;
  /// false for missing or deleted keys. (`value` may be null.)
  virtual bool Get(uint64_t key, uint64_t* value) = 0;

  /// Range lookup: appends up to `max_entries` live entries with
  /// key >= start_key, in globally sorted key order, to `out`. Returns how
  /// many were added.
  virtual size_t Scan(uint64_t start_key, size_t max_entries,
                      std::vector<lsm::Entry>* out) = 0;

  /// Executes `count` operations in submission order, writing one result
  /// per op to `results[0..count)`. The base implementation runs serially;
  /// overrides may execute independent sub-streams concurrently but must
  /// preserve per-key ordering and produce results bit-identical to the
  /// serial execution.
  virtual void ExecuteOps(const Op* ops, size_t count, OpResult* results);

  /// Convenience wrapper over the pointer form.
  std::vector<OpResult> ExecuteOps(const std::vector<Op>& ops) {
    std::vector<OpResult> results(ops.size());
    ExecuteOps(ops.data(), ops.size(), results.data());
    return results;
  }

  /// Forces buffered writes to disk (no-op when empty).
  virtual void FlushMemtable() = 0;

  /// Applies a new configuration lazily (Section 6). For sharded engines
  /// `new_options` describes the *total* system budget, divided evenly
  /// across shards.
  virtual void Reconfigure(const lsm::Options& new_options) = 0;

  // --- Sharding surface -------------------------------------------------

  /// Number of independent partitions. 1 for a single tree.
  virtual size_t NumShards() const { return 1; }

  /// Deterministic partition a point operation on `key` routes to.
  virtual size_t ShardIndex(uint64_t key) const {
    (void)key;
    return 0;
  }

  /// Reconfigures one shard with *shard-local* options (the dynamic tuner
  /// retunes shards independently as their local mixes drift). The default
  /// serves single-shard engines.
  virtual void ReconfigureShard(size_t shard, const lsm::Options& options) {
    CAMAL_CHECK(shard == 0);
    Reconfigure(options);
  }

  /// Lifecycle state of one shard. Eagerly constructed engines report
  /// every shard as materialized (the default).
  virtual ShardState ShardLifecycle(size_t shard) const {
    CAMAL_CHECK(shard < NumShards());
    return ShardState::kMaterialized;
  }

  /// Number of shards currently holding in-memory structures (cold and
  /// hibernated shards excluded). Equals `NumShards()` for eager engines.
  virtual size_t MaterializedShards() const { return NumShards(); }

  /// Appends the indices of all materialized shards, ascending — the
  /// active set a per-window pass (e.g. the memory arbiter's scan
  /// accounting) should visit instead of iterating every shard. Eager
  /// engines append every shard.
  virtual void AppendResidentShards(std::vector<size_t>* out) const {
    for (size_t s = 0; s < NumShards(); ++s) out->push_back(s);
  }

  /// Live configuration one shard currently runs with (budgets are
  /// shard-local, shape knobs as last applied). This is the surface the
  /// memory arbiter and the observability layer read budgets from.
  virtual lsm::Options ShardOptionsSnapshot(size_t shard) const = 0;

  /// Memory budget one shard currently holds — a view of its options.
  ShardBudget ShardBudgetSnapshot(size_t shard) const {
    return ShardBudget::FromOptions(ShardOptionsSnapshot(shard));
  }

  // --- Cost accounting --------------------------------------------------

  /// Point-in-time aggregate of simulated I/O + time across the engine's
  /// devices. Diff two snapshots to price a whole execution window (per-op
  /// costs come from `ExecuteOps` instead).
  virtual sim::DeviceSnapshot CostSnapshot() const = 0;

  /// Point-in-time cost of one shard's device(s) — the per-tenant cost
  /// clock the memory arbiter and per-shard bench columns read. The
  /// default serves single-shard engines.
  virtual sim::DeviceSnapshot ShardCostSnapshot(size_t shard) const {
    CAMAL_CHECK(shard == 0);
    return CostSnapshot();
  }

  /// Accumulated measurement window of one (shard, op kind) cell of the
  /// always-on cost profiler — every op that flowed through `ExecuteOps`
  /// since construction or the last `ResetOpCostWindows()`. Shards that
  /// never served an op of the kind report an empty window. Scans are
  /// attributed to the home shard of their start key (a deterministic
  /// approximation: a scatter-gather scan's cost lands on one cell).
  OpCostWindow ShardOpCostWindow(size_t shard, OpKind kind) const {
    const auto it = op_cost_windows_.find(shard);
    if (it == op_cost_windows_.end()) return OpCostWindow{};
    return it->second[static_cast<size_t>(kind)];
  }

  /// Sum of one op kind's measurement windows across all shards.
  OpCostWindow OpCostWindowTotal(OpKind kind) const {
    OpCostWindow total;
    for (const auto& [shard, cells] : op_cost_windows_) {
      (void)shard;
      total += cells[static_cast<size_t>(kind)];
    }
    return total;
  }

  /// Starts a fresh measurement window on every (shard, op kind) cell.
  void ResetOpCostWindows() { op_cost_windows_.clear(); }

  /// Aggregate compaction/flush counters.
  virtual EngineCounters AggregateCounters() const = 0;

  /// Compaction/flush counters of one shard.
  virtual EngineCounters ShardCounters(size_t shard) const {
    CAMAL_CHECK(shard == 0);
    return AggregateCounters();
  }

  // --- Scale views ------------------------------------------------------

  /// Live entries across the whole engine (memtables + disk structures).
  virtual uint64_t TotalEntries() const = 0;
  /// Entries persisted in on-disk structures (excludes write buffers).
  virtual uint64_t DiskEntries() const = 0;

  /// Live entries held by one shard (memtable + disk).
  virtual uint64_t ShardEntries(size_t shard) const {
    CAMAL_CHECK(shard == 0);
    return TotalEntries();
  }

  /// True while any shard's structure still violates its latest
  /// configuration.
  virtual bool InTransition() const = 0;

 protected:
  /// Folds one executed batch into the per-(shard, op-kind) measurement
  /// windows. Implementations call this at the end of `ExecuteOps` with
  /// the results they produced; the profiler only observes — it never
  /// changes results, and its map is O(shards that served traffic).
  void ProfileBatch(const Op* ops, size_t count, const OpResult* results) {
    for (size_t i = 0; i < count; ++i) {
      OpCostWindow& cell =
          op_cost_windows_[ShardIndex(ops[i].key)][static_cast<size_t>(
              ops[i].kind)];
      cell.ops += 1;
      cell.ios += results[i].ios;
      cell.latency_ns += results[i].latency_ns;
    }
  }

 private:
  /// Sparse per-shard profiler cells (only shards that served traffic).
  std::unordered_map<size_t, std::array<OpCostWindow, kNumOpKinds>>
      op_cost_windows_;
};

}  // namespace camal::engine

#endif  // CAMAL_ENGINE_STORAGE_ENGINE_H_
