#include "engine/record_log.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "util/crc32c.h"

namespace camal::engine::fileio {

namespace {

constexpr size_t kFrameHeaderBytes = 8;  // u32 length + u32 masked CRC.

// A single frame never legitimately approaches this: the largest payloads
// are manifest snapshots of a shard (fences + Bloom words), low megabytes
// at most. Anything bigger is a corrupt length field.
constexpr uint32_t kMaxPayloadBytes = 256u << 20;

void SysCheckRecord(bool ok, const char* what, const std::string& path) {
  if (!ok) {
    std::fprintf(stderr, "record log: %s failed for '%s': %s\n", what,
                 path.c_str(), std::strerror(errno));
    std::abort();
  }
}

}  // namespace

RecordWriter::RecordWriter(FileOps* ops, std::string path)
    : ops_(ops), path_(std::move(path)) {
  fd_ = ops_->Open(path_, O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  SysCheckRecord(fd_ >= 0, "open", path_);
  struct stat st;
  SysCheckRecord(::fstat(fd_, &st) == 0, "fstat", path_);
  offset_ = static_cast<uint64_t>(st.st_size);
}

RecordWriter::~RecordWriter() {
  if (fd_ >= 0) ops_->Close(fd_);
}

void RecordWriter::Append(const std::string& payload) {
  const uint32_t len = static_cast<uint32_t>(payload.size());
  const uint32_t crc = util::MaskedCrc32c(payload.data(), payload.size());
  pending_.append(reinterpret_cast<const char*>(&len), sizeof(len));
  pending_.append(reinterpret_cast<const char*>(&crc), sizeof(crc));
  pending_.append(payload);
  ++appended_;
}

void RecordWriter::Commit() {
  if (pending_.empty()) return;
  const int64_t n =
      ops_->PWrite(fd_, pending_.data(), pending_.size(), offset_);
  SysCheckRecord(n == static_cast<int64_t>(pending_.size()), "pwrite", path_);
  offset_ += pending_.size();
  pending_.clear();
}

void RecordWriter::Sync() { SysCheckRecord(ops_->Fsync(fd_) == 0, "fsync", path_); }

void RecordWriter::Reset() {
  pending_.clear();
  SysCheckRecord(ops_->Ftruncate(fd_, 0) == 0, "ftruncate", path_);
  offset_ = 0;
}

void RecordWriter::TruncateTo(uint64_t offset) {
  SysCheckRecord(ops_->Ftruncate(fd_, offset) == 0, "ftruncate", path_);
  offset_ = offset;
}

RecordFileContents ReadRecordFile(const std::string& path) {
  RecordFileContents out;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return out;  // exists = false
  out.exists = true;

  std::string bytes;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) bytes.append(buf, n);
  std::fclose(f);

  size_t pos = 0;
  while (pos + kFrameHeaderBytes <= bytes.size()) {
    uint32_t len, crc;
    std::memcpy(&len, bytes.data() + pos, sizeof(len));
    std::memcpy(&crc, bytes.data() + pos + sizeof(len), sizeof(crc));
    if (len > kMaxPayloadBytes ||
        pos + kFrameHeaderBytes + len > bytes.size()) {
      break;  // short frame / absurd length: torn tail starts here
    }
    const char* payload = bytes.data() + pos + kFrameHeaderBytes;
    if (util::MaskedCrc32c(payload, len) != crc) break;
    out.records.emplace_back(payload, len);
    pos += kFrameHeaderBytes + len;
    out.valid_bytes = pos;
  }
  out.torn_tail = out.valid_bytes != bytes.size();
  return out;
}

}  // namespace camal::engine::fileio
