#ifndef CAMAL_ENGINE_MANIFEST_H_
#define CAMAL_ENGINE_MANIFEST_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "engine/record_log.h"
#include "lsm/options.h"

namespace camal::engine::fileio {

/// \brief Per-shard manifest: an append-only, CRC-framed log of every
/// structural change to a shard's file set, from which `reopen=true`
/// reconstructs the shard (levels, fences, Blooms, hibernation status)
/// without reading a single run block.
///
/// Record types (first payload byte):
///
///   | tag | record     | payload                                          |
///   |-----|------------|--------------------------------------------------|
///   | 1   | kInit      | version, shard id, per-shard `lsm::Options`      |
///   | 2   | kOptions   | new per-shard `lsm::Options`                     |
///   | 3   | kFlush     | new WAL epoch, the level-0 run added             |
///   | 4   | kCompact   | source level, removed run ids, added runs        |
///   | 5   | kHibernate | frozen memtable entry count, level shape         |
///   | 6   | kWake      | (empty)                                          |
///   | 7   | kSnapshot  | full shard state (rotation compacts to this)     |
///
/// Structural transitions are **composite single records** on purpose: a
/// compaction's removed-inputs and added-output land in one CRC frame, so
/// the log can never durably tear between "runs removed" and "run added" —
/// any crash leaves either the old state or the new one, nothing between.
///
/// A run's metadata (fences, Bloom internals) rides in the record that
/// introduces it, so recovery reopens run files for reading but never
/// rebuilds or rescans them.

/// Metadata of one immutable run, as logged/recovered.
struct ManifestRunMeta {
  uint64_t id = 0;
  uint64_t num_entries = 0;
  uint64_t min_key = 0;
  uint64_t max_key = 0;
  std::vector<uint64_t> fence;
  uint64_t bloom_bits = 0;
  uint32_t bloom_hashes = 0;
  double bloom_bpk = 0.0;
  std::vector<uint64_t> bloom_words;
};

/// The state a manifest replay yields — everything the engine needs to
/// rebuild a shard minus the WAL tail (memtable contents).
struct RecoveredShardState {
  /// False: no usable manifest (absent, empty, or corrupt from record 0) —
  /// the shard recovers to the empty state.
  bool valid = false;
  lsm::Options options;
  /// WAL records stamped with this epoch are live (everything older was
  /// made durable-in-runs by the flush that bumped the epoch).
  uint64_t wal_epoch = 0;
  /// One past the largest run id the log ever mentioned — keeps new run
  /// files from colliding with deleted ones.
  uint64_t next_run_id = 1;
  /// levels[l] holds runs oldest-to-newest, exactly as the live shard does.
  std::vector<std::vector<ManifestRunMeta>> levels;
  bool hibernated = false;
  uint64_t hib_memtable_entries = 0;
  /// Per-level (run count, entry count) residuals while hibernated.
  std::vector<std::pair<uint64_t, uint64_t>> hib_shape;
  /// Parse telemetry: bytes of intact log (truncation point when torn),
  /// whether a torn tail followed, and how many records replayed.
  uint64_t valid_bytes = 0;
  bool tail_torn = false;
  size_t num_records = 0;
};

/// Replays the manifest at `path` into `out`. Returns `out->valid`. Reads
/// only — repairs (tail truncation, rotation) are the writer's job.
bool RecoverManifest(const std::string& path, RecoveredShardState* out);

/// Append-side handle on one shard's manifest. Every `Log*` call frames,
/// commits (one pwrite), and — when `sync` is set — fsyncs before
/// returning, so a record is on its way to disk before the engine acts on
/// the transition it describes.
class Manifest {
 public:
  /// Opens (creating if missing) `<shard_dir>/MANIFEST`. `known_records`
  /// seeds the rotation counter after recovery.
  Manifest(FileOps* ops, const std::string& shard_dir, bool sync,
           size_t known_records = 0);

  /// Truncates a recovery-detected torn tail: everything past
  /// `valid_bytes` is discarded before the first append.
  void TruncateTail(uint64_t valid_bytes);

  void LogInit(uint64_t shard, const lsm::Options& options);
  void LogOptions(const lsm::Options& options);
  void LogFlush(uint64_t new_epoch, const ManifestRunMeta& run);
  void LogCompact(uint32_t src_level, const std::vector<uint64_t>& removed,
                  const std::vector<ManifestRunMeta>& added);
  void LogHibernate(uint64_t memtable_entries,
                    const std::vector<std::pair<uint64_t, uint64_t>>& shape);
  void LogWake();

  /// Compacts the log to one `kSnapshot` record when it has grown past
  /// `rotate_records`: writes `MANIFEST.tmp`, fsyncs it, and renames over
  /// `MANIFEST` — the rename is the atomic commit point. A failed rename
  /// is tolerated: the tmp file is unlinked and the old (equivalent,
  /// longer) log stays authoritative. Returns whether rotation happened.
  bool MaybeRotate(const RecoveredShardState& state, uint32_t rotate_records);

  /// Unconditional rotation (tests; recovery-time log compaction).
  bool Rotate(const RecoveredShardState& state);

  size_t record_count() const { return records_; }
  const std::string& path() const { return path_; }

  /// The manifest path for a shard directory (shared with recovery).
  static std::string PathFor(const std::string& shard_dir) {
    return shard_dir + "/MANIFEST";
  }

 private:
  void Log(const std::string& payload);

  FileOps* ops_;
  std::string path_;
  bool sync_;
  size_t records_ = 0;
  std::unique_ptr<RecordWriter> writer_;
};

}  // namespace camal::engine::fileio

#endif  // CAMAL_ENGINE_MANIFEST_H_
