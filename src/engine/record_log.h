#ifndef CAMAL_ENGINE_RECORD_LOG_H_
#define CAMAL_ENGINE_RECORD_LOG_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "engine/file_ops.h"

namespace camal::engine::fileio {

/// \brief CRC-framed append-only record files — the common physical format
/// of the per-shard manifest and WAL.
///
/// Frame layout, repeated back to back from byte 0:
///
///     [u32 payload_length][u32 masked_crc32c(payload)][payload bytes]
///
/// The reader walks frames until the file ends or a frame fails to parse
/// (short header, impossible length, CRC mismatch). Everything from the
/// first bad frame onward is an untrusted torn tail — on an append-only
/// log a record can only be damaged by the crash that also killed every
/// record after it — so recovery truncates there and keeps the prefix.
/// An empty file parses as zero records, cleanly.

/// Appends framed records to a file through a `FileOps` seam. Appends are
/// buffered until `Commit` so a batch of records lands in one write
/// (group commit); `Sync` is the caller's fsync-policy hook.
class RecordWriter {
 public:
  /// Opens (creating if missing) `path` for appending; the write offset
  /// resumes at the current file size.
  RecordWriter(FileOps* ops, std::string path);
  ~RecordWriter();

  RecordWriter(const RecordWriter&) = delete;
  RecordWriter& operator=(const RecordWriter&) = delete;

  /// Frames `payload` into the pending buffer. Nothing reaches the file
  /// until `Commit`.
  void Append(const std::string& payload);

  /// Writes the pending buffer at the tracked append offset (one pwrite)
  /// and clears it. No-op when nothing is pending.
  void Commit();

  /// `fsync` the underlying file.
  void Sync();

  /// Truncates the file to zero and discards any pending appends — the
  /// WAL-reset primitive (a flush made every logged entry durable in a
  /// run, so the log restarts empty).
  void Reset();

  /// Truncates the file to `offset` bytes (torn-tail repair at recovery).
  /// Pending appends are preserved; the append offset moves to `offset`.
  void TruncateTo(uint64_t offset);

  /// Whether appends are buffered awaiting `Commit`.
  bool has_pending() const { return !pending_.empty(); }

  /// Bytes durably framed so far (committed; excludes pending).
  uint64_t committed_bytes() const { return offset_; }

  /// Records appended since this writer opened (committed or pending).
  size_t appended_records() const { return appended_; }

  const std::string& path() const { return path_; }

 private:
  FileOps* ops_;
  std::string path_;
  int fd_ = -1;
  uint64_t offset_ = 0;
  size_t appended_ = 0;
  std::string pending_;
};

/// One parsed record file.
struct RecordFileContents {
  /// True when the file exists and its frames parsed from byte 0 (possibly
  /// zero of them). False: the file is absent.
  bool exists = false;
  /// Parsed payloads, in file order, up to the first bad frame.
  std::vector<std::string> records;
  /// Bytes covered by the parsed frames — the truncation point when a torn
  /// tail follows.
  uint64_t valid_bytes = 0;
  /// True when bytes past `valid_bytes` failed to frame (torn tail or
  /// corruption); the tail is untrusted and should be truncated away.
  bool torn_tail = false;
};

/// Reads and verifies every frame of `path` (plain buffered reads — no
/// fault seam: reads cannot corrupt anything).
RecordFileContents ReadRecordFile(const std::string& path);

/// Little-endian primitive serialization of record payloads. Fixed-width
/// encodes (no varint): durability records are dwarfed by the run files
/// they describe, and fixed widths keep the torn-write arithmetic of the
/// fault-injection tests exact.
class ByteWriter {
 public:
  void U8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void U32(uint32_t v) { Raw(&v, sizeof(v)); }
  void U64(uint64_t v) { Raw(&v, sizeof(v)); }
  void F64(double v) { Raw(&v, sizeof(v)); }
  void Bytes(const void* p, size_t n) { Raw(p, n); }
  void U64Vec(const std::vector<uint64_t>& v) {
    U32(static_cast<uint32_t>(v.size()));
    if (!v.empty()) Raw(v.data(), v.size() * sizeof(uint64_t));
  }

  const std::string& str() const { return buf_; }
  std::string Take() { return std::move(buf_); }

 private:
  void Raw(const void* p, size_t n) {
    buf_.append(static_cast<const char*>(p), n);
  }
  std::string buf_;
};

/// Bounds-checked reader over one payload. Any out-of-bounds read flips
/// `ok()` to false and returns zeros; decoders check `ok()` once at the
/// end instead of after every field.
class ByteReader {
 public:
  explicit ByteReader(const std::string& buf) : buf_(buf) {}

  uint8_t U8() {
    uint8_t v = 0;
    Raw(&v, sizeof(v));
    return v;
  }
  uint32_t U32() {
    uint32_t v = 0;
    Raw(&v, sizeof(v));
    return v;
  }
  uint64_t U64() {
    uint64_t v = 0;
    Raw(&v, sizeof(v));
    return v;
  }
  double F64() {
    double v = 0;
    Raw(&v, sizeof(v));
    return v;
  }
  std::vector<uint64_t> U64Vec() {
    const uint32_t n = U32();
    // Guard impossible sizes before allocating (a corrupt length must not
    // become a multi-gigabyte resize).
    if (!ok_ || static_cast<uint64_t>(n) * sizeof(uint64_t) > Remaining()) {
      ok_ = false;
      return {};
    }
    std::vector<uint64_t> v(n);
    if (n > 0) Raw(v.data(), n * sizeof(uint64_t));
    return v;
  }

  uint64_t Remaining() const { return buf_.size() - pos_; }
  bool AtEnd() const { return pos_ == buf_.size(); }
  bool ok() const { return ok_; }

 private:
  void Raw(void* p, size_t n) {
    if (!ok_ || n > Remaining()) {
      ok_ = false;
      return;
    }
    std::memcpy(p, buf_.data() + pos_, n);
    pos_ += n;
  }

  const std::string& buf_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace camal::engine::fileio

#endif  // CAMAL_ENGINE_RECORD_LOG_H_
