#ifndef CAMAL_ENGINE_SHARDED_ENGINE_H_
#define CAMAL_ENGINE_SHARDED_ENGINE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "engine/storage_engine.h"
#include "lsm/lsm_tree.h"
#include "sim/device.h"

namespace camal::util {
class ThreadPool;
}  // namespace camal::util

namespace camal::engine {

/// Gathers per-shard sorted slices into one globally sorted stream of up
/// to `max_entries` entries via a binary-heap k-way merge: O(total·log k)
/// instead of a linear min-scan's O(total·k). Keys across slices must be
/// pairwise disjoint (hash partitioning guarantees it), so no tie-break
/// is needed and the output order is unique. Both `ShardedEngine::Scan`
/// and `FileEngine::Scan` gather through this.
size_t MergeDisjointSlices(const std::vector<std::vector<lsm::Entry>>& slices,
                           size_t max_entries, std::vector<lsm::Entry>* out);

/// N independent `lsm::LsmTree` shards behind a deterministic hash
/// partitioner — the multi-tenant serving engine. Each shard owns its own
/// simulated device and its own options; the total memory budget of the
/// system-wide options is divided evenly across shards.
///
/// Point operations route to `Mix64(key) % N`. `Scan` scatter-gathers: all
/// shards are range-probed and their sorted slices k-way merged into a
/// globally sorted result. `Reconfigure` re-divides a new total budget;
/// `ReconfigureShard` retunes one shard independently (the dynamic tuner's
/// per-shard path).
///
/// `ExecuteOps` is the async serving path: each batch is partitioned into
/// per-shard operation lists (a scan probe appears in every shard's list),
/// the lists run concurrently on `pool()` workers with intra-shard order
/// preserved, and per-op results are merged back into submission order.
/// Because every shard owns its device (including its jitter stream), the
/// results are bit-identical to serial execution at any thread count.
///
/// With one shard the engine is bit-identical to driving the tree
/// directly: shard 0 uses the caller's device config verbatim (including
/// its jitter seed), options pass through undivided, and `Scan` forwards
/// without a merge layer.
class ShardedEngine : public StorageEngine {
 public:
  /// `total_options` is the system-wide configuration; each shard receives
  /// `ShardOptions(total_options, num_shards)`. Shard 0's device uses
  /// `device_config` verbatim; shard i > 0 derives an independent jitter
  /// stream from it (seed ⊕ i), so distinct shards never share correlated
  /// jitter.
  ShardedEngine(size_t num_shards, const lsm::Options& total_options,
                const sim::DeviceConfig& device_config);

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  void Put(uint64_t key, uint64_t value) override;
  void Delete(uint64_t key) override;
  bool Get(uint64_t key, uint64_t* value) override;
  size_t Scan(uint64_t start_key, size_t max_entries,
              std::vector<lsm::Entry>* out) override;

  /// Batched execution with concurrent per-shard sub-batches (serial when
  /// no pool is attached). Deterministic: bit-identical results for any
  /// `pool()` value.
  void ExecuteOps(const Op* ops, size_t count, OpResult* results) override;
  using StorageEngine::ExecuteOps;

  void FlushMemtable() override;

  /// Divides `new_total_options`'s memory budget across shards and
  /// reconfigures every shard lazily.
  void Reconfigure(const lsm::Options& new_total_options) override;

  /// Applies `options` to one shard as-is (shard-local budget).
  void ReconfigureShard(size_t shard, const lsm::Options& options) override;

  size_t NumShards() const override { return shards_.size(); }
  size_t ShardIndex(uint64_t key) const override;

  lsm::Options ShardOptionsSnapshot(size_t shard) const override;

  sim::DeviceSnapshot CostSnapshot() const override;
  sim::DeviceSnapshot ShardCostSnapshot(size_t shard) const override;
  EngineCounters AggregateCounters() const override;
  EngineCounters ShardCounters(size_t shard) const override;

  uint64_t TotalEntries() const override;
  uint64_t DiskEntries() const override;
  uint64_t ShardEntries(size_t shard) const override;
  bool InTransition() const override;

  /// Attaches (or detaches, with nullptr) the worker pool `ExecuteOps` and
  /// `Scan` fan shard-local work across. Not owned; must outlive its use.
  /// No pool — and any call made from inside a pool worker — runs inline.
  void set_pool(util::ThreadPool* pool) { pool_ = pool; }
  util::ThreadPool* pool() const { return pool_; }

  /// Direct shard access (tests, per-shard inspection).
  lsm::LsmTree* shard(size_t i) { return shards_[i].tree.get(); }
  const lsm::LsmTree* shard(size_t i) const { return shards_[i].tree.get(); }
  sim::Device* shard_device(size_t i) { return shards_[i].device.get(); }

  /// The per-shard slice of a total configuration: buffer, Bloom, and
  /// block-cache budgets divided by `num_shards` (shape knobs unchanged).
  /// Identity when `num_shards` == 1.
  static lsm::Options ShardOptions(const lsm::Options& total,
                                   size_t num_shards);

 private:
  struct Shard {
    std::unique_ptr<sim::Device> device;
    std::unique_ptr<lsm::LsmTree> tree;
  };

  /// Range-probes every shard concurrently; slices[s] receives shard s's
  /// up-to-max_entries sorted live entries with key >= start_key.
  void ScatterScan(uint64_t start_key, size_t max_entries,
                   std::vector<std::vector<lsm::Entry>>* slices);

  std::vector<Shard> shards_;
  util::ThreadPool* pool_ = nullptr;
};

}  // namespace camal::engine

#endif  // CAMAL_ENGINE_SHARDED_ENGINE_H_
