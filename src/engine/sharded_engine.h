#ifndef CAMAL_ENGINE_SHARDED_ENGINE_H_
#define CAMAL_ENGINE_SHARDED_ENGINE_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <unordered_map>
#include <vector>

#include "engine/storage_engine.h"
#include "lsm/lsm_tree.h"
#include "sim/device.h"

namespace camal::util {
class ThreadPool;
}  // namespace camal::util

namespace camal::engine {

/// Gathers per-shard sorted slices into one globally sorted stream of up
/// to `max_entries` entries via a binary-heap k-way merge: O(total·log k)
/// instead of a linear min-scan's O(total·k). Keys across slices must be
/// pairwise disjoint (hash partitioning guarantees it), so no tie-break
/// is needed and the output order is unique. Both `ShardedEngine::Scan`
/// and `FileEngine::Scan` gather through this.
size_t MergeDisjointSlices(const std::vector<std::vector<lsm::Entry>>& slices,
                           size_t max_entries, std::vector<lsm::Entry>* out);

/// N independent `lsm::LsmTree` shards behind a deterministic hash
/// partitioner — the multi-tenant serving engine. Each shard owns its own
/// simulated device and its own options; the total memory budget of the
/// system-wide options is divided evenly across shards.
///
/// Point operations route to `Mix64(key) % N`. `Scan` scatter-gathers: all
/// data-holding shards are range-probed and their sorted slices k-way
/// merged into a globally sorted result. `Reconfigure` re-divides a new
/// total budget; `ReconfigureShard` retunes one shard independently (the
/// dynamic tuner's per-shard path).
///
/// **Shard lifecycle (million-tenant scale).** Shards are lazy by
/// default: a cold shard holds no memtable, Bloom filters, cache, or
/// device — just a few pointers — and materializes on the first operation
/// that touches it. With `ShardLifecycleConfig::hibernate_after_batches`
/// set, a materialized shard idle for that many `ExecuteOps` batches
/// freezes its tree into a compact snapshot (`lsm::FrozenTreeState`) and
/// releases the live structures; the next touching operation rehydrates
/// it transparently. Both transitions charge nothing and preserve all
/// state bit-exactly, so logical results, per-op costs, and
/// `EngineCounters` are identical to an eager engine serving the same
/// stream:
///   - a cold shard is observationally an empty tree (empty-tree probes
///     charge nothing and contribute exact zeros to scan cost sums);
///   - materialization builds exactly the state eager construction built
///     (shard i's device seed is a pure function of i);
///   - freeze/restore round-trips the complete tree state, cache LRU
///     order and counters included.
///
/// `ExecuteOps` is the async serving path: each batch is partitioned into
/// per-shard operation lists (a scan probe appears in every resident
/// shard's list; scans first wake all hibernated shards), the lists run
/// concurrently on `pool()` workers with intra-shard order preserved, and
/// per-op results are merged back into submission order. Partitioning and
/// all bookkeeping are O(ops + resident), never O(total shards). Because
/// every shard owns its device (including its jitter stream), the results
/// are bit-identical to serial execution at any thread count.
///
/// With one shard the engine is bit-identical to driving the tree
/// directly: shard 0 uses the caller's device config verbatim (including
/// its jitter seed), options pass through undivided, and `Scan` forwards
/// without a merge layer.
class ShardedEngine : public StorageEngine {
 public:
  /// `total_options` is the system-wide configuration; each shard receives
  /// `ShardOptions(total_options, num_shards)`. Shard 0's device uses
  /// `device_config` verbatim; shard i > 0 derives an independent jitter
  /// stream from it (seed ⊕ i), so distinct shards never share correlated
  /// jitter. `lifecycle` controls lazy instantiation and hibernation; the
  /// default (lazy, no hibernation) is bit-identical to eager
  /// construction.
  ShardedEngine(size_t num_shards, const lsm::Options& total_options,
                const sim::DeviceConfig& device_config,
                const ShardLifecycleConfig& lifecycle = {});

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  void Put(uint64_t key, uint64_t value) override;
  void Delete(uint64_t key) override;
  bool Get(uint64_t key, uint64_t* value) override;
  size_t Scan(uint64_t start_key, size_t max_entries,
              std::vector<lsm::Entry>* out) override;

  /// Batched execution with concurrent per-shard sub-batches (serial when
  /// no pool is attached). Deterministic: bit-identical results for any
  /// `pool()` value.
  void ExecuteOps(const Op* ops, size_t count, OpResult* results) override;
  using StorageEngine::ExecuteOps;

  void FlushMemtable() override;

  /// Divides `new_total_options`'s memory budget across shards and
  /// reconfigures every shard lazily. Hibernated shards wake to apply it;
  /// cold shards record it as their materialization target.
  void Reconfigure(const lsm::Options& new_total_options) override;

  /// Applies `options` to one shard as-is (shard-local budget). A
  /// hibernated shard wakes; a cold shard stays cold and materializes
  /// with `options` later (deferred reconfiguration of an empty tree is
  /// observationally identical to applying it now).
  void ReconfigureShard(size_t shard, const lsm::Options& options) override;

  size_t NumShards() const override { return num_shards_; }
  size_t ShardIndex(uint64_t key) const override;

  lsm::Options ShardOptionsSnapshot(size_t shard) const override;

  ShardState ShardLifecycle(size_t shard) const override;
  size_t MaterializedShards() const override { return resident_.size(); }
  void AppendResidentShards(std::vector<size_t>* out) const override;

  sim::DeviceSnapshot CostSnapshot() const override;
  sim::DeviceSnapshot ShardCostSnapshot(size_t shard) const override;
  EngineCounters AggregateCounters() const override;
  EngineCounters ShardCounters(size_t shard) const override;

  uint64_t TotalEntries() const override;
  uint64_t DiskEntries() const override;
  uint64_t ShardEntries(size_t shard) const override;
  bool InTransition() const override;

  /// Attaches (or detaches, with nullptr) the worker pool `ExecuteOps` and
  /// `Scan` fan shard-local work across. Not owned; must outlive its use.
  /// No pool — and any call made from inside a pool worker — runs inline.
  void set_pool(util::ThreadPool* pool) { pool_ = pool; }
  util::ThreadPool* pool() const { return pool_; }

  /// Direct shard access (tests, per-shard inspection). Materializes the
  /// shard (waking it if hibernated) — access implies intent to touch.
  lsm::LsmTree* shard(size_t i);
  sim::Device* shard_device(size_t i);

  /// The per-shard slice of a total configuration: buffer, Bloom, and
  /// block-cache budgets divided by `num_shards` (shape knobs unchanged).
  /// Identity when `num_shards` == 1.
  static lsm::Options ShardOptions(const lsm::Options& total,
                                   size_t num_shards);

 private:
  struct Shard {
    std::unique_ptr<sim::Device> device;           // survives hibernation
    std::unique_ptr<lsm::LsmTree> tree;            // iff materialized
    std::unique_ptr<lsm::FrozenTreeState> frozen;  // iff hibernated
    uint64_t last_touch_epoch = ~uint64_t{0};      // sentinel: never touched
  };

  /// The options shard `s` materializes (or rehydrates) with.
  const lsm::Options& EffectiveOptions(size_t s) const;

  sim::Device* EnsureDevice(size_t s);

  /// Brings shard `s` to the materialized state (create cold / wake
  /// hibernated); returns its live tree.
  lsm::LsmTree* MaterializeShard(size_t s);

  /// Freezes shard `s`'s tree into its compact snapshot and releases the
  /// live structures (device stays: its jitter stream is mid-sequence).
  void HibernateShard(size_t s);

  /// Wakes every hibernated shard (scans: their data must be probed).
  void WakeAllHibernated();

  /// Marks shard `s` active this batch and arms its idle timer.
  void Touch(size_t s);

  /// Hibernates shards whose idle timers expired.
  void HibernateIdleShards();

  /// Range-probes every resident shard concurrently; slices[k] receives
  /// probed shard k's up-to-max_entries sorted live entries.
  void ScatterScan(const std::vector<size_t>& probed, uint64_t start_key,
                   size_t max_entries,
                   std::vector<std::vector<lsm::Entry>>* slices);

  /// Hashed active-shard map: holds an entry only for shards that have
  /// ever been touched (materialized, hibernated, or device-only), so
  /// engine memory is O(active), not O(total) — a million cold tenants
  /// cost nothing but this map's empty buckets.
  std::unordered_map<size_t, Shard> shards_;
  size_t num_shards_ = 0;
  lsm::Options default_options_;
  sim::DeviceConfig device_config_;
  ShardLifecycleConfig lifecycle_;
  /// Options applied to a shard while cold, pending materialization.
  std::map<size_t, lsm::Options> cold_options_;
  /// Materialized shard ids, ascending (scan probe order).
  std::set<size_t> resident_;
  /// Hibernated shard ids (O(hibernated) wake-all, not O(total)).
  std::set<size_t> hibernated_;
  /// Idle tracking: (shard, touch epoch) entries with lazy deletion; a
  /// shard hibernates when its newest entry expires untouched.
  std::deque<std::pair<size_t, uint64_t>> idle_queue_;
  uint64_t epoch_ = 0;
  util::ThreadPool* pool_ = nullptr;
};

}  // namespace camal::engine

#endif  // CAMAL_ENGINE_SHARDED_ENGINE_H_
