#include "engine/storage_engine.h"

namespace camal::engine {

void StorageEngine::ExecuteOps(const Op* ops, size_t count,
                               OpResult* results) {
  // Serial reference path: execute in submission order and price every op
  // by diffing the engine-wide cost snapshot around it. Single-device
  // engines (lsm::LsmTree) serve the batched pipeline through this.
  std::vector<lsm::Entry> scan_buf;
  for (size_t i = 0; i < count; ++i) {
    const Op& op = ops[i];
    OpResult r;
    const sim::DeviceSnapshot before = CostSnapshot();
    switch (op.kind) {
      case OpKind::kGet: {
        uint64_t value = 0;
        r.found = Get(op.key, &value);
        break;
      }
      case OpKind::kPut:
        Put(op.key, op.value);
        break;
      case OpKind::kDelete:
        Delete(op.key);
        break;
      case OpKind::kScan:
        scan_buf.clear();
        r.scan_hits = Scan(op.key, op.scan_len, &scan_buf);
        break;
    }
    const sim::DeviceSnapshot delta = CostSnapshot().Delta(before);
    r.latency_ns = delta.elapsed_ns;
    r.ios = delta.TotalIos();
    results[i] = r;
  }
  ProfileBatch(ops, count, results);
}

}  // namespace camal::engine
