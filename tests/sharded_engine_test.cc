#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <vector>

#include "camal/sample.h"
#include "engine/sharded_engine.h"
#include "lsm/lsm_tree.h"
#include "util/random.h"
#include "workload/executor.h"
#include "workload/generator.h"

namespace camal::engine {
namespace {

lsm::Options SmallOptions() {
  lsm::Options opts;
  opts.entry_bytes = 128;
  opts.buffer_bytes = 128 * 128;
  opts.bloom_bits = 10 * 8000;
  return opts;
}

sim::DeviceConfig QuietDevice() {
  sim::DeviceConfig cfg;
  cfg.io_jitter_frac = 0.0;
  return cfg;
}

TEST(ShardedEngineTest, PartitionRoutingIsDeterministicAndCovering) {
  ShardedEngine eng(4, SmallOptions(), QuietDevice());
  std::vector<size_t> hits(4, 0);
  for (uint64_t key = 0; key < 4000; key += 2) {
    const size_t s = eng.ShardIndex(key);
    ASSERT_LT(s, 4u);
    EXPECT_EQ(s, eng.ShardIndex(key));  // stable
    ++hits[s];
  }
  // A hash partitioner must not starve or overload any shard badly.
  for (size_t s = 0; s < 4; ++s) {
    EXPECT_GT(hits[s], 250u) << "shard " << s;
    EXPECT_LT(hits[s], 750u) << "shard " << s;
  }
}

TEST(ShardedEngineTest, PointOpsLandOnTheRoutedShardOnly) {
  ShardedEngine eng(4, SmallOptions(), QuietDevice());
  for (uint64_t key = 2; key <= 400; key += 2) {
    eng.Put(key, key * 10);
  }
  // Every key is readable through the engine...
  uint64_t value = 0;
  for (uint64_t key = 2; key <= 400; key += 2) {
    ASSERT_TRUE(eng.Get(key, &value));
    EXPECT_EQ(value, key * 10);
  }
  // ...and lives exactly on its routed shard.
  for (uint64_t key = 2; key <= 400; key += 2) {
    const size_t home = eng.ShardIndex(key);
    for (size_t s = 0; s < eng.NumShards(); ++s) {
      EXPECT_EQ(eng.shard(s)->Get(key, nullptr), s == home);
    }
  }
}

TEST(ShardedEngineTest, ScatterGatherScanIsGloballySorted) {
  ShardedEngine eng(4, SmallOptions(), QuietDevice());
  std::map<uint64_t, uint64_t> reference;
  util::Random rng(7);
  for (int i = 0; i < 5000; ++i) {
    const uint64_t key = 2 * rng.Uniform(1 << 16);
    const uint64_t value = rng.Next();
    eng.Put(key, value);
    reference[key] = value;
  }

  for (const uint64_t start : {0ULL, 1000ULL, 60000ULL, 130000ULL}) {
    std::vector<lsm::Entry> got;
    const size_t n = eng.Scan(start, 64, &got);
    EXPECT_EQ(n, got.size());

    // Expected: the first up-to-64 live entries with key >= start.
    std::vector<std::pair<uint64_t, uint64_t>> expected;
    for (auto it = reference.lower_bound(start);
         it != reference.end() && expected.size() < 64; ++it) {
      expected.push_back(*it);
    }
    ASSERT_EQ(got.size(), expected.size()) << "start=" << start;
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].key, expected[i].first) << "start=" << start;
      EXPECT_EQ(got[i].value, expected[i].second) << "start=" << start;
      if (i > 0) {
        EXPECT_LT(got[i - 1].key, got[i].key);
      }
    }
  }
}

TEST(ShardedEngineTest, DeleteShadowsAcrossGetAndScan) {
  ShardedEngine eng(2, SmallOptions(), QuietDevice());
  for (uint64_t key = 2; key <= 200; key += 2) eng.Put(key, key);
  eng.Delete(100);
  eng.Delete(102);
  EXPECT_FALSE(eng.Get(100, nullptr));
  EXPECT_FALSE(eng.Get(102, nullptr));
  std::vector<lsm::Entry> got;
  eng.Scan(96, 5, &got);
  ASSERT_GE(got.size(), 3u);
  EXPECT_EQ(got[0].key, 96u);
  EXPECT_EQ(got[1].key, 98u);
  EXPECT_EQ(got[2].key, 104u);  // 100 and 102 are gone
}

TEST(ShardedEngineTest, ShardOptionsDivideMemoryBudgets) {
  lsm::Options total = SmallOptions();
  total.block_cache_bytes = 64 * 1024;
  const lsm::Options per_shard = ShardedEngine::ShardOptions(total, 4);
  EXPECT_EQ(per_shard.buffer_bytes, total.buffer_bytes / 4);
  EXPECT_EQ(per_shard.bloom_bits, total.bloom_bits / 4);
  EXPECT_EQ(per_shard.block_cache_bytes, total.block_cache_bytes / 4);
  EXPECT_EQ(per_shard.size_ratio, total.size_ratio);
  EXPECT_EQ(per_shard.entry_bytes, total.entry_bytes);
  // Identity at one shard.
  const lsm::Options same = ShardedEngine::ShardOptions(total, 1);
  EXPECT_EQ(same.buffer_bytes, total.buffer_bytes);
  EXPECT_EQ(same.bloom_bits, total.bloom_bits);
}

TEST(ShardedEngineTest, ShardOptionsNonDivisibleBudgetsFloorWithClamp) {
  lsm::Options total = SmallOptions();
  total.buffer_bytes = 100003;      // prime: never divisible
  total.bloom_bits = 77777;
  total.block_cache_bytes = 999;
  for (size_t n : {3, 5, 7}) {
    const lsm::Options per_shard = ShardedEngine::ShardOptions(total, n);
    // Remainders are dropped (floor division): the system never
    // over-commits the stated total budget...
    EXPECT_EQ(per_shard.buffer_bytes, total.buffer_bytes / n) << "n=" << n;
    EXPECT_EQ(per_shard.bloom_bits, total.bloom_bits / n) << "n=" << n;
    EXPECT_EQ(per_shard.block_cache_bytes, total.block_cache_bytes / n)
        << "n=" << n;
    EXPECT_LE(per_shard.buffer_bytes * n, total.buffer_bytes);
    EXPECT_LE(per_shard.bloom_bits * n, total.bloom_bits);
  }
  // ...except the write buffer, which is clamped up to one entry so a
  // shard can always buffer something even under absurd division.
  lsm::Options tiny = SmallOptions();
  tiny.buffer_bytes = tiny.entry_bytes * 2;  // 2 entries total
  const lsm::Options starved = ShardedEngine::ShardOptions(tiny, 7);
  EXPECT_EQ(starved.buffer_bytes, tiny.entry_bytes);
}

TEST(ShardedEngineTest, PartitionerBalancesSequentialAndRandomKeys) {
  // The Mix64(key) % N partitioner must spread both structured key sets
  // (the KeySpace's consecutive even integers — raw modulo would stripe
  // them) and uniform random keys evenly across shards.
  for (const size_t num_shards : {4, 8}) {
    const size_t num_keys = 40000;
    const double mean =
        static_cast<double>(num_keys) / static_cast<double>(num_shards);

    std::vector<size_t> sequential_hits(num_shards, 0);
    for (size_t i = 1; i <= num_keys; ++i) {
      ++sequential_hits[util::Mix64(2 * i) % num_shards];
    }
    util::Random rng(123);
    std::vector<size_t> random_hits(num_shards, 0);
    for (size_t i = 0; i < num_keys; ++i) {
      ++random_hits[util::Mix64(rng.Next()) % num_shards];
    }

    // 10% tolerance: ~7 sigma at this sample size, far beyond hash noise,
    // but tight enough to catch striping or a starved shard immediately.
    for (size_t s = 0; s < num_shards; ++s) {
      EXPECT_NEAR(static_cast<double>(sequential_hits[s]), mean, 0.10 * mean)
          << "sequential keys, shard " << s << "/" << num_shards;
      EXPECT_NEAR(static_cast<double>(random_hits[s]), mean, 0.10 * mean)
          << "random keys, shard " << s << "/" << num_shards;
    }
  }
}

TEST(ShardedEngineTest, PerShardReconfigureTouchesOnlyThatShard) {
  ShardedEngine eng(3, SmallOptions(), QuietDevice());
  const double t_before = eng.shard(0)->options().size_ratio;

  lsm::Options retuned = ShardedEngine::ShardOptions(SmallOptions(), 3);
  retuned.size_ratio = 4.0;
  eng.ReconfigureShard(1, retuned);

  EXPECT_EQ(eng.shard(0)->options().size_ratio, t_before);
  EXPECT_EQ(eng.shard(1)->options().size_ratio, 4.0);
  EXPECT_EQ(eng.shard(2)->options().size_ratio, t_before);
}

TEST(ShardedEngineTest, TotalReconfigureDividesAcrossShards) {
  ShardedEngine eng(4, SmallOptions(), QuietDevice());
  lsm::Options bigger = SmallOptions();
  bigger.bloom_bits = 16 * 8000;
  eng.Reconfigure(bigger);
  for (size_t s = 0; s < eng.NumShards(); ++s) {
    EXPECT_EQ(eng.shard(s)->options().bloom_bits, bigger.bloom_bits / 4);
  }
}

TEST(ShardedEngineTest, AggregatesSumOverShards) {
  ShardedEngine eng(4, SmallOptions(), QuietDevice());
  for (uint64_t key = 2; key <= 2 * 6000; key += 2) eng.Put(key, key);
  eng.FlushMemtable();

  uint64_t entries = 0;
  EngineCounters counters;
  sim::DeviceSnapshot cost;
  for (size_t s = 0; s < eng.NumShards(); ++s) {
    entries += eng.ShardEntries(s);
    counters += eng.shard(s)->counters();
    const sim::DeviceSnapshot snap = eng.shard_device(s)->Snapshot();
    cost.block_reads += snap.block_reads;
    cost.block_writes += snap.block_writes;
    cost.elapsed_ns += snap.elapsed_ns;
  }
  EXPECT_EQ(eng.TotalEntries(), entries);
  EXPECT_EQ(eng.TotalEntries(), 6000u);
  EXPECT_EQ(eng.AggregateCounters().flushes, counters.flushes);
  EXPECT_GT(eng.AggregateCounters().flushes, 0u);
  EXPECT_EQ(eng.CostSnapshot().block_writes, cost.block_writes);
  EXPECT_DOUBLE_EQ(eng.CostSnapshot().elapsed_ns, cost.elapsed_ns);
}

// The acceptance-critical regression: a 1-shard ShardedEngine must produce
// bit-identical ExecutionResults to driving the LsmTree directly — same
// simulated time, same I/O counts, same per-op latency distribution.
TEST(ShardedEngineTest, OneShardBitIdenticalToDirectTree) {
  tune::SystemSetup setup;
  setup.num_entries = 6000;
  setup.total_memory_bits = 16 * 6000;
  const tune::TuningConfig config = tune::MonkeyDefaultConfig(setup);
  const model::WorkloadSpec mix{0.25, 0.25, 0.25, 0.25};

  workload::ExecutorConfig exec;
  exec.num_ops = 3000;
  exec.generator.scan_len = setup.scan_len;
  exec.seed = 99;

  auto run = [&](engine::StorageEngine* eng, workload::KeySpace* keys) {
    workload::BulkLoad(eng, *keys);
    return workload::Execute(eng, mix, exec, keys);
  };

  // Direct tree path (jittered device, so the equality is non-trivial).
  workload::KeySpace keys_direct(setup.num_entries, setup.seed);
  sim::Device device(setup.MakeDeviceConfig());
  lsm::LsmTree tree(config.ToOptions(setup), &device);
  workload::ExecutionResult direct = run(&tree, &keys_direct);

  workload::KeySpace keys_sharded(setup.num_entries, setup.seed);
  ShardedEngine eng(1, config.ToOptions(setup), setup.MakeDeviceConfig());
  workload::ExecutionResult sharded = run(&eng, &keys_sharded);

  EXPECT_EQ(direct.total_ns, sharded.total_ns);  // bit-exact doubles
  EXPECT_EQ(direct.total_ios, sharded.total_ios);
  EXPECT_EQ(direct.lookups_found, sharded.lookups_found);
  EXPECT_EQ(direct.lookups_missed, sharded.lookups_missed);
  EXPECT_EQ(direct.latency_ns.count(), sharded.latency_ns.count());
  for (double q : {0.5, 0.9, 0.99, 1.0}) {
    EXPECT_EQ(direct.latency_ns.Quantile(q), sharded.latency_ns.Quantile(q))
        << "q=" << q;
  }
  EXPECT_EQ(tree.TotalEntries(), eng.TotalEntries());
  EXPECT_EQ(tree.counters().flushes, eng.AggregateCounters().flushes);
  EXPECT_EQ(tree.counters().merges, eng.AggregateCounters().merges);
}

TEST(ShardedEngineTest, PerShardObservabilityAccessors) {
  ShardedEngine eng(3, SmallOptions(), QuietDevice());
  for (uint64_t key = 2; key <= 2 * 3000; key += 2) eng.Put(key, key);
  eng.FlushMemtable();

  sim::DeviceSnapshot cost_sum;
  EngineCounters counter_sum;
  uint64_t entry_sum = 0;
  for (size_t s = 0; s < eng.NumShards(); ++s) {
    // Options snapshot reflects the live per-shard configuration...
    EXPECT_EQ(eng.ShardOptionsSnapshot(s).bloom_bits,
              eng.shard(s)->options().bloom_bits);
    // ...the budget view is exactly its memory fields...
    const ShardBudget budget = eng.ShardBudgetSnapshot(s);
    EXPECT_EQ(budget.buffer_bytes, eng.shard(s)->options().buffer_bytes);
    EXPECT_EQ(budget.bloom_bits, eng.shard(s)->options().bloom_bits);
    EXPECT_EQ(budget.TotalBits(),
              8 * budget.buffer_bytes + budget.bloom_bits +
                  8 * budget.block_cache_bytes);
    // ...and per-shard cost/counters decompose the aggregates.
    cost_sum += eng.ShardCostSnapshot(s);
    counter_sum += eng.ShardCounters(s);
    entry_sum += eng.ShardEntries(s);
  }
  EXPECT_DOUBLE_EQ(cost_sum.elapsed_ns, eng.CostSnapshot().elapsed_ns);
  EXPECT_EQ(cost_sum.block_writes, eng.CostSnapshot().block_writes);
  EXPECT_EQ(counter_sum.flushes, eng.AggregateCounters().flushes);
  EXPECT_EQ(counter_sum.merges, eng.AggregateCounters().merges);
  EXPECT_EQ(entry_sum, eng.TotalEntries());
}

TEST(ShardedEngineTest, SingleTreeObservabilityDefaults) {
  sim::Device device(QuietDevice());
  lsm::LsmTree tree(SmallOptions(), &device);
  for (uint64_t key = 2; key <= 600; key += 2) tree.Put(key, key);
  engine::StorageEngine& eng = tree;
  EXPECT_EQ(eng.ShardOptionsSnapshot(0).buffer_bytes,
            SmallOptions().buffer_bytes);
  EXPECT_EQ(eng.ShardBudgetSnapshot(0).bloom_bits, SmallOptions().bloom_bits);
  EXPECT_DOUBLE_EQ(eng.ShardCostSnapshot(0).elapsed_ns,
                   eng.CostSnapshot().elapsed_ns);
  EXPECT_EQ(eng.ShardCounters(0).flushes, eng.AggregateCounters().flushes);
}

TEST(ShardedEngineTest, UnevenArbiterBudgetsConserveTheTotalAndServe) {
  // The arbitration contract on the engine side: per-shard options with
  // uneven budgets applied through ReconfigureShard must be reported back
  // verbatim, never exceed the original system total, and keep the data
  // fully readable.
  const lsm::Options total = SmallOptions();
  ShardedEngine eng(4, total, QuietDevice());
  for (uint64_t key = 2; key <= 2000; key += 2) eng.Put(key, key / 2);

  const uint64_t total_bits =
      4 * ShardBudget::FromOptions(ShardedEngine::ShardOptions(total, 4))
              .TotalBits();
  // Move one quarter of shard 3's budget to shard 0 (a typical arbiter
  // outcome: hot shard up, cold shard down, others untouched).
  lsm::Options hot = eng.ShardOptionsSnapshot(0);
  lsm::Options cold = eng.ShardOptionsSnapshot(3);
  const uint64_t moved_bloom = cold.bloom_bits / 2;
  const uint64_t moved_buffer = cold.buffer_bytes / 4;
  cold.bloom_bits -= moved_bloom;
  cold.buffer_bytes -= moved_buffer;
  hot.bloom_bits += moved_bloom;
  hot.buffer_bytes += moved_buffer;
  eng.ReconfigureShard(0, hot);
  eng.ReconfigureShard(3, cold);

  EXPECT_EQ(eng.ShardBudgetSnapshot(0).bloom_bits, hot.bloom_bits);
  EXPECT_EQ(eng.ShardBudgetSnapshot(3).buffer_bytes, cold.buffer_bytes);
  uint64_t applied = 0;
  for (size_t s = 0; s < eng.NumShards(); ++s) {
    applied += eng.ShardBudgetSnapshot(s).TotalBits();
  }
  EXPECT_LE(applied, total_bits);

  uint64_t value = 0;
  for (uint64_t key = 2; key <= 2000; key += 2) {
    ASSERT_TRUE(eng.Get(key, &value)) << "key " << key;
    EXPECT_EQ(value, key / 2);
  }
}

TEST(MergeDisjointSlicesTest, MatchesSortOnOverlappingKeyRanges) {
  // Hash-partitioned shards hold disjoint *keys* but thoroughly
  // interleaved key *ranges* — the case the k-way heap merge must get
  // right. Reference: concatenate and sort.
  util::Random rng(17);
  std::vector<std::vector<lsm::Entry>> slices(5);
  for (uint64_t key = 0; key < 4000; ++key) {
    const size_t slice = rng.Uniform(5);
    slices[slice].push_back({key, key * 3 + slice});  // ascending per slice
  }
  slices[3].clear();  // an empty slice must not confuse the heap

  std::vector<lsm::Entry> expected;
  for (const std::vector<lsm::Entry>& slice : slices) {
    expected.insert(expected.end(), slice.begin(), slice.end());
  }
  std::sort(expected.begin(), expected.end(),
            [](const lsm::Entry& a, const lsm::Entry& b) {
              return a.key < b.key;
            });

  for (const size_t cap : {size_t{0}, size_t{1}, size_t{63}, size_t{4000},
                           size_t{100000}}) {
    std::vector<lsm::Entry> got;
    const size_t n = MergeDisjointSlices(slices, cap, &got);
    EXPECT_EQ(n, got.size());
    ASSERT_EQ(got.size(), std::min(cap, expected.size())) << "cap=" << cap;
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].key, expected[i].key) << "cap=" << cap << " i=" << i;
      EXPECT_EQ(got[i].value, expected[i].value);
    }
  }
}

TEST(ShardedEngineTest, ShardsUseUncorrelatedJitterStreams) {
  // Same config in every shard, jittered I/O on: had the shards shared one
  // jitter seed, identical op sequences would cost identical time.
  sim::DeviceConfig jittery;  // default io_jitter_frac = 0.05
  ShardedEngine eng(2, SmallOptions(), jittery);
  for (uint64_t k = 1; k <= 2000; ++k) {
    eng.shard(0)->Put(2 * k, k);
    eng.shard(1)->Put(2 * k, k);
  }
  eng.shard(0)->FlushMemtable();
  eng.shard(1)->FlushMemtable();
  EXPECT_NE(eng.shard_device(0)->elapsed_ns(),
            eng.shard_device(1)->elapsed_ns());
}

}  // namespace
}  // namespace camal::engine
