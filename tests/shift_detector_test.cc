// Edge-case coverage for the (p, tau) threshold detector: exact-tau
// boundaries, partial windows, and first-window semantics. The common
// cases live in workload_test.cc.

#include <gtest/gtest.h>

#include "workload/shift_detector.h"

namespace camal::workload {
namespace {

// Feeds `n` ops of one type; returns how many of the calls triggered.
size_t Feed(ShiftDetector* det, OpType type, size_t n) {
  size_t triggers = 0;
  for (size_t i = 0; i < n; ++i) {
    if (det->Record(type)) ++triggers;
  }
  return triggers;
}

TEST(ShiftDetectorEdgeTest, ExactTauDeviationDoesNotTrigger) {
  // Window 10, tau 0.2. Reference window: all writes (w = 1.0).
  ShiftDetector det(10, 0.2);
  EXPECT_EQ(Feed(&det, OpType::kWrite, 10), 1u);  // initial tuning

  // Second window: 8 writes + 2 lookups -> |0.8 - 1.0| == tau exactly.
  // The detector fires on strict excess only, so this must NOT trigger.
  size_t triggers = Feed(&det, OpType::kWrite, 8);
  triggers += Feed(&det, OpType::kNonZeroResultLookup, 2);
  EXPECT_EQ(triggers, 0u);
  EXPECT_EQ(det.reconfigurations(), 1u);

  // Third window: 7 writes + 3 lookups -> 0.3 > tau. Must trigger.
  triggers = Feed(&det, OpType::kWrite, 7);
  triggers += Feed(&det, OpType::kNonZeroResultLookup, 3);
  EXPECT_EQ(triggers, 1u);
  EXPECT_EQ(det.reconfigurations(), 2u);
}

TEST(ShiftDetectorEdgeTest, PartialWindowNeverTriggers) {
  // 99 ops into a 100-op window: no boundary, no evaluation — even though
  // the stream is wildly different from anything seen before.
  ShiftDetector det(100, 0.0);
  EXPECT_EQ(Feed(&det, OpType::kWrite, 99), 0u);
  EXPECT_EQ(det.reconfigurations(), 0u);
  // The 100th op completes the window and fires the initial tuning.
  EXPECT_TRUE(det.Record(OpType::kWrite));
  EXPECT_EQ(det.reconfigurations(), 1u);
}

TEST(ShiftDetectorEdgeTest, PartialFinalWindowAfterShiftIsInvisible) {
  ShiftDetector det(50, 0.1);
  Feed(&det, OpType::kWrite, 50);  // reference: all writes
  // A drastic shift that never completes a window is never reported, and
  // LastWindowSpec still describes the last *completed* window.
  EXPECT_EQ(Feed(&det, OpType::kRangeLookup, 49), 0u);
  EXPECT_EQ(det.reconfigurations(), 1u);
  EXPECT_DOUBLE_EQ(det.LastWindowSpec().w, 1.0);
  EXPECT_DOUBLE_EQ(det.LastWindowSpec().q, 0.0);
}

TEST(ShiftDetectorEdgeTest, FirstCompletedWindowAlwaysTriggers) {
  // Even an infinite threshold cannot suppress the initial tuning: there
  // is no reference yet, so the first boundary must fire.
  ShiftDetector det(5, 1e9);
  EXPECT_EQ(Feed(&det, OpType::kNonZeroResultLookup, 4), 0u);
  EXPECT_TRUE(det.Record(OpType::kNonZeroResultLookup));
  EXPECT_EQ(det.reconfigurations(), 1u);
  // ...and with no reference deviation possible afterwards, never again.
  EXPECT_EQ(Feed(&det, OpType::kWrite, 500), 0u);
  EXPECT_EQ(det.reconfigurations(), 1u);
}

TEST(ShiftDetectorEdgeTest, WindowCountsResetAtBoundary) {
  // Mix fractions must be computed per window, not cumulatively: two
  // half-write windows followed by an all-lookup window must report the
  // all-lookup mix exactly.
  ShiftDetector det(10, 0.3);
  for (int w = 0; w < 2; ++w) {
    Feed(&det, OpType::kWrite, 5);
    Feed(&det, OpType::kZeroResultLookup, 5);
  }
  Feed(&det, OpType::kNonZeroResultLookup, 10);
  EXPECT_DOUBLE_EQ(det.LastWindowSpec().r, 1.0);
  EXPECT_DOUBLE_EQ(det.LastWindowSpec().w, 0.0);
  EXPECT_DOUBLE_EQ(det.LastWindowSpec().v, 0.0);
}

TEST(ShiftDetectorEdgeTest, ReferenceUpdatesOnlyOnTrigger) {
  // Sub-tau drift must not creep the reference: each window is only 0.08
  // from its predecessor, but the detector compares against the mix at the
  // last *reconfiguration*, so the cumulative drift eventually fires.
  ShiftDetector det(25, 0.1);
  auto window = [&](size_t writes) {
    size_t triggers = Feed(&det, OpType::kWrite, writes);
    triggers += Feed(&det, OpType::kNonZeroResultLookup, 25 - writes);
    return triggers;
  };
  EXPECT_EQ(window(25), 1u);  // reference: w = 1.0
  EXPECT_EQ(window(23), 0u);  // w = 0.92, drift 0.08 <= tau: quiet
  EXPECT_EQ(window(21), 1u);  // w = 0.84, drift 0.16 vs *reference*: fires
  EXPECT_EQ(det.reconfigurations(), 2u);
}

}  // namespace
}  // namespace camal::workload
