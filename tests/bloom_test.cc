#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "lsm/bloom.h"
#include "lsm/monkey.h"
#include "util/random.h"

namespace camal::lsm {
namespace {

TEST(BloomTest, NoFalseNegatives) {
  BloomFilter filter(1000, 10.0);
  for (uint64_t k = 0; k < 1000; ++k) filter.Add(k * 7 + 1);
  for (uint64_t k = 0; k < 1000; ++k) EXPECT_TRUE(filter.MayContain(k * 7 + 1));
}

TEST(BloomTest, FprCloseToTheory) {
  const double bpk = 10.0;
  BloomFilter filter(5000, bpk);
  for (uint64_t k = 0; k < 5000; ++k) filter.Add(k * 2);
  int fp = 0;
  const int probes = 20000;
  for (int i = 0; i < probes; ++i) fp += filter.MayContain(2 * i + 1);
  const double fpr = static_cast<double>(fp) / probes;
  const double theory = filter.TheoreticalFpr();
  EXPECT_NEAR(fpr, theory, theory * 1.0 + 0.003);
  EXPECT_LT(fpr, 0.03);
}

TEST(BloomTest, MoreBitsFewerFalsePositives) {
  BloomFilter small(2000, 4.0), big(2000, 12.0);
  for (uint64_t k = 0; k < 2000; ++k) {
    small.Add(k * 2);
    big.Add(k * 2);
  }
  int fp_small = 0, fp_big = 0;
  for (int i = 0; i < 10000; ++i) {
    fp_small += small.MayContain(2 * i + 1);
    fp_big += big.MayContain(2 * i + 1);
  }
  EXPECT_GT(fp_small, fp_big);
}

TEST(BloomTest, AbsentFilterAlwaysTrue) {
  BloomFilter absent;
  EXPECT_TRUE(absent.absent());
  EXPECT_TRUE(absent.MayContain(42));
  EXPECT_EQ(absent.memory_bits(), 0u);
  EXPECT_DOUBLE_EQ(absent.TheoreticalFpr(), 1.0);
}

TEST(BloomTest, TinyBpkDegeneratesToAbsent) {
  BloomFilter filter(1000, 0.2);
  EXPECT_TRUE(filter.absent());
  EXPECT_TRUE(filter.MayContain(1));
}

TEST(BloomTest, MemorySizedByBpk) {
  BloomFilter filter(1000, 8.0);
  EXPECT_NEAR(static_cast<double>(filter.memory_bits()), 8000.0, 64.0);
  EXPECT_DOUBLE_EQ(filter.bits_per_key(), 8.0);
}

TEST(MonkeyTest, BudgetRoughlyConsumed) {
  const std::vector<uint64_t> levels = {1000, 10000, 100000};
  const double budget = 10.0 * 111000;
  const std::vector<double> bpk = MonkeyAllocate(budget, levels);
  double used = 0.0;
  for (size_t i = 0; i < levels.size(); ++i) {
    used += bpk[i] * static_cast<double>(levels[i]);
  }
  EXPECT_NEAR(used, budget, budget * 0.01);
}

TEST(MonkeyTest, DeeperLevelsFewerBitsPerKey) {
  const std::vector<uint64_t> levels = {1000, 10000, 100000};
  const std::vector<double> bpk = MonkeyAllocate(10.0 * 111000, levels);
  EXPECT_GT(bpk[0], bpk[1]);
  EXPECT_GT(bpk[1], bpk[2]);
}

TEST(MonkeyTest, TinyBudgetDropsDeepFilters) {
  const std::vector<uint64_t> levels = {100, 1000, 100000};
  const std::vector<double> bpk = MonkeyAllocate(2000.0, levels);
  // The deepest level is too big to filter with such a small budget.
  EXPECT_EQ(bpk[2], 0.0);
  EXPECT_GT(bpk[0], 0.0);
}

TEST(MonkeyTest, ZeroBudgetAllZero) {
  const std::vector<double> bpk = MonkeyAllocate(0.0, {100, 1000});
  EXPECT_EQ(bpk[0], 0.0);
  EXPECT_EQ(bpk[1], 0.0);
}

TEST(MonkeyTest, EmptyLevelsIgnored) {
  const std::vector<double> bpk = MonkeyAllocate(10000.0, {0, 1000, 0});
  EXPECT_EQ(bpk[0], 0.0);
  EXPECT_EQ(bpk[2], 0.0);
  EXPECT_NEAR(bpk[1], 10.0, 0.1);
}

TEST(MonkeyTest, ZeroResultCostDecreasesWithBudget) {
  const std::vector<uint64_t> levels = {1000, 10000, 100000};
  const double lo = MonkeyZeroResultIoCost(1.0 * 111000, levels);
  const double mid = MonkeyZeroResultIoCost(5.0 * 111000, levels);
  const double hi = MonkeyZeroResultIoCost(12.0 * 111000, levels);
  EXPECT_GT(lo, mid);
  EXPECT_GT(mid, hi);
}

TEST(MonkeyTest, MonkeyBeatsUniformAllocation) {
  // The Monkey allocation should yield no more expected false-positive I/O
  // than uniform bits-per-key across levels.
  const std::vector<uint64_t> levels = {500, 5000, 50000};
  const double total_entries = 55500;
  const double budget = 8.0 * total_entries;
  const double monkey_cost = MonkeyZeroResultIoCost(budget, levels);
  constexpr double kLn2Sq = 0.4804530139182014;
  double uniform_cost = 0.0;
  for (uint64_t n : levels) {
    (void)n;
    uniform_cost += std::exp(-8.0 * kLn2Sq);
  }
  EXPECT_LE(monkey_cost, uniform_cost + 1e-9);
}

}  // namespace
}  // namespace camal::lsm
