#include <map>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "lsm/lsm_tree.h"
#include "util/random.h"

namespace camal::lsm {
namespace {

sim::DeviceConfig QuietDevice() {
  sim::DeviceConfig cfg;
  cfg.io_jitter_frac = 0.0;
  return cfg;
}

Options SmallOptions(CompactionPolicy policy = CompactionPolicy::kLeveling,
                     double t = 4.0) {
  Options opts;
  opts.policy = policy;
  opts.size_ratio = t;
  opts.entry_bytes = 128;
  opts.buffer_bytes = 128 * 32;  // 32 entries
  opts.bloom_bits = 10 * 4096;
  opts.block_cache_bytes = 0;
  return opts;
}

TEST(LsmTreeTest, PutGetSingle) {
  sim::Device dev(QuietDevice());
  LsmTree tree(SmallOptions(), &dev);
  tree.Put(42, 7);
  uint64_t value = 0;
  ASSERT_TRUE(tree.Get(42, &value));
  EXPECT_EQ(value, 7u);
  EXPECT_FALSE(tree.Get(43, &value));
}

TEST(LsmTreeTest, OverwriteReturnsLatest) {
  sim::Device dev(QuietDevice());
  LsmTree tree(SmallOptions(), &dev);
  for (uint64_t i = 0; i < 200; ++i) tree.Put(5, i);
  uint64_t value = 0;
  ASSERT_TRUE(tree.Get(5, &value));
  EXPECT_EQ(value, 199u);
}

TEST(LsmTreeTest, DeleteHidesKeyAcrossFlushes) {
  sim::Device dev(QuietDevice());
  LsmTree tree(SmallOptions(), &dev);
  for (uint64_t k = 1; k <= 100; ++k) tree.Put(k, k);
  tree.Delete(50);
  tree.FlushMemtable();
  uint64_t value = 0;
  EXPECT_FALSE(tree.Get(50, &value));
  EXPECT_TRUE(tree.Get(51, &value));
}

TEST(LsmTreeTest, FlushMovesDataToDisk) {
  sim::Device dev(QuietDevice());
  LsmTree tree(SmallOptions(), &dev);
  for (uint64_t k = 1; k <= 10; ++k) tree.Put(k, k);
  EXPECT_EQ(tree.DiskEntries(), 0u);
  tree.FlushMemtable();
  EXPECT_EQ(tree.MemtableSize(), 0u);
  EXPECT_EQ(tree.DiskEntries(), 10u);
  uint64_t value = 0;
  EXPECT_TRUE(tree.Get(7, &value));
}

TEST(LsmTreeTest, AutomaticFlushAtBufferCapacity) {
  sim::Device dev(QuietDevice());
  Options opts = SmallOptions();
  LsmTree tree(opts, &dev);
  for (uint64_t k = 1; k <= opts.BufferEntries() + 1; ++k) tree.Put(k, k);
  EXPECT_GT(tree.DiskEntries(), 0u);
  EXPECT_GE(tree.counters().flushes, 1u);
}

TEST(LsmTreeTest, ScanReturnsSortedLiveEntries) {
  sim::Device dev(QuietDevice());
  LsmTree tree(SmallOptions(), &dev);
  for (uint64_t k = 1; k <= 300; ++k) tree.Put(k * 2, k);
  tree.Delete(10);
  std::vector<Entry> out;
  const size_t n = tree.Scan(6, 5, &out);
  ASSERT_EQ(n, 5u);
  EXPECT_EQ(out[0].key, 6u);
  EXPECT_EQ(out[1].key, 8u);
  EXPECT_EQ(out[2].key, 12u);  // 10 was deleted
  EXPECT_EQ(out[3].key, 14u);
  EXPECT_EQ(out[4].key, 16u);
}

TEST(LsmTreeTest, ScanSeesFreshestVersion) {
  sim::Device dev(QuietDevice());
  LsmTree tree(SmallOptions(), &dev);
  for (uint64_t k = 1; k <= 200; ++k) tree.Put(k, 1);
  tree.Put(100, 999);  // newer version still in memtable
  std::vector<Entry> out;
  tree.Scan(100, 1, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].value, 999u);
}

TEST(LsmTreeTest, ScanPastEndReturnsFewer) {
  sim::Device dev(QuietDevice());
  LsmTree tree(SmallOptions(), &dev);
  for (uint64_t k = 1; k <= 10; ++k) tree.Put(k, k);
  std::vector<Entry> out;
  EXPECT_EQ(tree.Scan(8, 100, &out), 3u);
  EXPECT_EQ(tree.Scan(11, 5, &out), 0u);
}

TEST(LsmTreeTest, LevelingKeepsOneRunPerLevel) {
  sim::Device dev(QuietDevice());
  LsmTree tree(SmallOptions(CompactionPolicy::kLeveling), &dev);
  util::Random rng(1);
  for (int i = 0; i < 3000; ++i) tree.Put(rng.Uniform(100000), i);
  for (size_t runs : tree.LevelRunCounts()) EXPECT_LE(runs, 1u);
}

TEST(LsmTreeTest, TieringBoundsRunsPerLevel) {
  sim::Device dev(QuietDevice());
  Options opts = SmallOptions(CompactionPolicy::kTiering);
  LsmTree tree(opts, &dev);
  util::Random rng(2);
  for (int i = 0; i < 3000; ++i) tree.Put(rng.Uniform(100000), i);
  for (size_t runs : tree.LevelRunCounts()) {
    EXPECT_LE(runs, static_cast<size_t>(opts.MaxRunsPerLevel()));
  }
}

TEST(LsmTreeTest, LevelingWritesMoreThanTiering) {
  // Classic trade-off: leveling has higher write amplification.
  sim::Device dev_level(QuietDevice());
  LsmTree level(SmallOptions(CompactionPolicy::kLeveling, 6.0), &dev_level);
  sim::Device dev_tier(QuietDevice());
  LsmTree tier(SmallOptions(CompactionPolicy::kTiering, 6.0), &dev_tier);
  for (uint64_t k = 0; k < 5000; ++k) {
    level.Put(k * 7 % 65536, k);
    tier.Put(k * 7 % 65536, k);
  }
  EXPECT_GT(dev_level.block_writes(), dev_tier.block_writes());
}

TEST(LsmTreeTest, TieringReadsMoreRunsOnLookup) {
  // Use a deliberately small filter budget (~3 bits/key) so false-positive
  // counts are large enough to compare statistically.
  Options lev_opts = SmallOptions(CompactionPolicy::kLeveling, 6.0);
  lev_opts.bloom_bits = 3 * 4000;
  Options tier_opts = lev_opts;
  tier_opts.policy = CompactionPolicy::kTiering;
  sim::Device dev_level(QuietDevice());
  LsmTree level(lev_opts, &dev_level);
  sim::Device dev_tier(QuietDevice());
  LsmTree tier(tier_opts, &dev_tier);
  // Insert in random order so every run spans the key space (sequential
  // insertion would let tiering skip runs via min/max fences alone).
  std::vector<uint64_t> keys(4000);
  for (uint64_t k = 0; k < 4000; ++k) keys[k] = 2 * k;
  util::Random shuffle_rng(123);
  for (size_t i = keys.size(); i > 1; --i) {
    std::swap(keys[i - 1], keys[shuffle_rng.Uniform(i)]);
  }
  for (uint64_t k : keys) {
    level.Put(k, k);
    tier.Put(k, k);
  }
  // Zero-result lookups: expected wasted I/O grows with the number of runs
  // (the Figure 2 "x T" factor of tiering).
  const auto probe = [](LsmTree* tree, sim::Device* dev) {
    const uint64_t before = dev->block_reads();
    for (uint64_t k = 1; k < 8001; k += 2) tree->Get(k, nullptr);
    return dev->block_reads() - before;
  };
  const uint64_t wasted_level = probe(&level, &dev_level);
  const uint64_t wasted_tier = probe(&tier, &dev_tier);
  EXPECT_GT(wasted_tier, wasted_level);
}

TEST(LsmTreeTest, BloomlessTreePaysIoPerMiss) {
  Options opts = SmallOptions();
  opts.bloom_bits = 0;
  sim::Device dev(QuietDevice());
  LsmTree tree(opts, &dev);
  for (uint64_t k = 1; k <= 2000; ++k) tree.Put(2 * k, k);
  const uint64_t before = dev.block_reads();
  for (uint64_t k = 0; k < 100; ++k) tree.Get(2 * k + 501, nullptr);
  const uint64_t wasted = dev.block_reads() - before;
  // Without filters every in-range miss costs a read per touched run.
  EXPECT_GT(wasted, 80u);
}

TEST(LsmTreeTest, BloomCutsMissIo) {
  Options with = SmallOptions();
  with.bloom_bits = 12 * 2000;
  Options without = SmallOptions();
  without.bloom_bits = 0;
  sim::Device dev_with(QuietDevice()), dev_without(QuietDevice());
  LsmTree tree_with(with, &dev_with);
  LsmTree tree_without(without, &dev_without);
  for (uint64_t k = 1; k <= 2000; ++k) {
    tree_with.Put(2 * k, k);
    tree_without.Put(2 * k, k);
  }
  const auto misses = [](LsmTree* tree, sim::Device* dev) {
    const uint64_t before = dev->block_reads();
    for (uint64_t k = 0; k < 500; ++k) tree->Get(2 * k + 101, nullptr);
    return dev->block_reads() - before;
  };
  EXPECT_LT(misses(&tree_with, &dev_with),
            misses(&tree_without, &dev_without) / 4);
}

TEST(LsmTreeTest, BlockCacheReducesRepeatedReadIo) {
  Options cached = SmallOptions();
  cached.block_cache_bytes = 64 * 4096;
  sim::Device dev_cached(QuietDevice()), dev_plain(QuietDevice());
  LsmTree tree_cached(cached, &dev_cached);
  LsmTree tree_plain(SmallOptions(), &dev_plain);
  for (uint64_t k = 1; k <= 2000; ++k) {
    tree_cached.Put(2 * k, k);
    tree_plain.Put(2 * k, k);
  }
  const auto hot_reads = [](LsmTree* tree, sim::Device* dev) {
    const uint64_t before = dev->block_reads();
    for (int rep = 0; rep < 50; ++rep) {
      for (uint64_t k = 1; k <= 20; ++k) tree->Get(2 * k, nullptr);
    }
    return dev->block_reads() - before;
  };
  EXPECT_LT(hot_reads(&tree_cached, &dev_cached),
            hot_reads(&tree_plain, &dev_plain) / 5);
}

TEST(LsmTreeTest, CountersTrackCompactions) {
  sim::Device dev(QuietDevice());
  LsmTree tree(SmallOptions(), &dev);
  for (uint64_t k = 0; k < 2000; ++k) tree.Put(k, k);
  const TreeCounters& counters = tree.counters();
  EXPECT_GT(counters.flushes, 0u);
  EXPECT_GT(counters.merges, 0u);
  EXPECT_GT(counters.compaction_block_writes, 0u);
  EXPECT_EQ(counters.transition_ios, 0u);  // no reconfiguration happened
}

TEST(LsmTreeTest, ReconfigureShrinkTriggersTransition) {
  sim::Device dev(QuietDevice());
  Options opts = SmallOptions(CompactionPolicy::kLeveling, 8.0);
  LsmTree tree(opts, &dev);
  for (uint64_t k = 0; k < 4000; ++k) tree.Put(k, k);

  Options smaller = opts;
  smaller.size_ratio = 2.0;
  tree.Reconfigure(smaller);
  EXPECT_TRUE(tree.InTransition());
  // Keep writing: natural compactions morph the tree to the new shape.
  for (uint64_t k = 0; k < 4000; ++k) tree.Put(k + 50000, k);
  EXPECT_FALSE(tree.InTransition());
  EXPECT_GT(tree.counters().transition_ios, 0u);
  // Data still correct after the transition.
  uint64_t value = 0;
  EXPECT_TRUE(tree.Get(100, &value));
  EXPECT_TRUE(tree.Get(50100, &value));
}

TEST(LsmTreeTest, ReconfigureGrowIsFree) {
  sim::Device dev(QuietDevice());
  Options opts = SmallOptions(CompactionPolicy::kLeveling, 2.0);
  LsmTree tree(opts, &dev);
  for (uint64_t k = 0; k < 3000; ++k) tree.Put(k, k);
  Options bigger = opts;
  bigger.size_ratio = 10.0;
  tree.Reconfigure(bigger);
  // Growing capacities violates nothing: no transition needed.
  EXPECT_FALSE(tree.InTransition());
  EXPECT_EQ(tree.counters().transition_ios, 0u);
}

TEST(LsmTreeTest, ReconfigureWhileTransitionInFlight) {
  // A second Reconfigure arriving while the tree is still morphing toward
  // the previous target must simply retarget: the lazy transition machinery
  // converges to the *latest* configuration, and data stays correct.
  sim::Device dev(QuietDevice());
  Options opts = SmallOptions(CompactionPolicy::kLeveling, 10.0);
  LsmTree tree(opts, &dev);
  for (uint64_t k = 0; k < 4000; ++k) tree.Put(k, k);

  Options shrink = opts;
  shrink.size_ratio = 2.0;
  tree.Reconfigure(shrink);
  ASSERT_TRUE(tree.InTransition());

  // Mid-flight retarget to an intermediate shape.
  Options mid = opts;
  mid.size_ratio = 4.0;
  tree.Reconfigure(mid);
  EXPECT_EQ(tree.options().size_ratio, 4.0);

  for (uint64_t k = 0; k < 6000; ++k) tree.Put(k + 50000, k);
  EXPECT_FALSE(tree.InTransition());
  uint64_t value = 0;
  EXPECT_TRUE(tree.Get(100, &value));
  EXPECT_EQ(value, 100u);
  EXPECT_TRUE(tree.Get(50100, &value));
}

TEST(LsmTreeTest, ReconfigureRevertMidFlightClearsTransition) {
  // Reverting to the original shape while a shrink is still in flight must
  // immediately cancel the transition: nothing violates the (restored)
  // configuration, so no transition I/O should be charged afterwards.
  sim::Device dev(QuietDevice());
  Options opts = SmallOptions(CompactionPolicy::kLeveling, 8.0);
  LsmTree tree(opts, &dev);
  for (uint64_t k = 0; k < 4000; ++k) tree.Put(k, k);

  Options shrink = opts;
  shrink.size_ratio = 2.0;
  tree.Reconfigure(shrink);
  ASSERT_TRUE(tree.InTransition());
  const uint64_t transition_ios_before = tree.counters().transition_ios;

  tree.Reconfigure(opts);
  EXPECT_FALSE(tree.InTransition());
  for (uint64_t k = 0; k < 2000; ++k) tree.Put(k + 50000, k);
  EXPECT_EQ(tree.counters().transition_ios, transition_ios_before);
}

TEST(LsmTreeTest, ReconfigureCacheResizeImmediate) {
  sim::Device dev(QuietDevice());
  Options opts = SmallOptions();
  opts.block_cache_bytes = 16 * 4096;
  LsmTree tree(opts, &dev);
  for (uint64_t k = 0; k < 1000; ++k) tree.Put(k, k);
  Options no_cache = opts;
  no_cache.block_cache_bytes = 0;
  tree.Reconfigure(no_cache);
  EXPECT_EQ(tree.cache()->capacity_blocks(), 0u);
}

TEST(LsmTreeTest, ReconfigurePolicySwitchConverges) {
  sim::Device dev(QuietDevice());
  LsmTree tree(SmallOptions(CompactionPolicy::kTiering, 4.0), &dev);
  for (uint64_t k = 0; k < 3000; ++k) tree.Put(k, k);
  Options lev = SmallOptions(CompactionPolicy::kLeveling, 4.0);
  tree.Reconfigure(lev);
  for (uint64_t k = 0; k < 3000; ++k) tree.Put(k + 90000, k);
  for (size_t runs : tree.LevelRunCounts()) EXPECT_LE(runs, 1u);
  uint64_t value = 0;
  EXPECT_TRUE(tree.Get(1500, &value));
}

TEST(LsmTreeTest, RunsPerLevelOverrideHonored) {
  Options opts = SmallOptions(CompactionPolicy::kTiering, 8.0);
  opts.runs_per_level = 3;
  sim::Device dev(QuietDevice());
  LsmTree tree(opts, &dev);
  util::Random rng(3);
  for (int i = 0; i < 4000; ++i) tree.Put(rng.Uniform(1 << 20), i);
  for (size_t runs : tree.LevelRunCounts()) EXPECT_LE(runs, 3u);
}

// ---------------------------------------------------------------------------
// Randomized differential test against std::map across policies and size
// ratios (property-style sweep).

class TreeReferenceTest
    : public ::testing::TestWithParam<std::tuple<CompactionPolicy, double>> {};

TEST_P(TreeReferenceTest, MatchesReferenceModel) {
  const auto [policy, t] = GetParam();
  sim::Device dev(QuietDevice());
  LsmTree tree(SmallOptions(policy, t), &dev);
  std::map<uint64_t, uint64_t> reference;
  util::Random rng(static_cast<uint64_t>(t) * 31 +
                   (policy == CompactionPolicy::kTiering ? 7 : 0));

  for (int i = 0; i < 6000; ++i) {
    const double u = rng.NextDouble();
    const uint64_t key = rng.Uniform(4000);
    if (u < 0.55) {
      tree.Put(key, static_cast<uint64_t>(i));
      reference[key] = static_cast<uint64_t>(i);
    } else if (u < 0.70) {
      tree.Delete(key);
      reference.erase(key);
    } else if (u < 0.90) {
      uint64_t value = 0;
      const bool found = tree.Get(key, &value);
      const auto it = reference.find(key);
      ASSERT_EQ(found, it != reference.end()) << "key " << key;
      if (found) {
        ASSERT_EQ(value, it->second);
      }
    } else {
      std::vector<Entry> out;
      tree.Scan(key, 10, &out);
      auto it = reference.lower_bound(key);
      for (const Entry& e : out) {
        ASSERT_NE(it, reference.end());
        ASSERT_EQ(e.key, it->first);
        ASSERT_EQ(e.value, it->second);
        ++it;
      }
      // The scan must not stop early while reference entries remain.
      if (out.size() < 10) {
        ASSERT_EQ(it, reference.end());
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    PoliciesAndRatios, TreeReferenceTest,
    ::testing::Combine(::testing::Values(CompactionPolicy::kLeveling,
                                         CompactionPolicy::kTiering),
                       ::testing::Values(2.0, 3.0, 5.0, 10.0)),
    [](const auto& info) {
      const CompactionPolicy policy = std::get<0>(info.param);
      const double t = std::get<1>(info.param);
      return std::string(policy == CompactionPolicy::kLeveling ? "Level"
                                                               : "Tier") +
             "T" + std::to_string(static_cast<int>(t));
    });

// Level capacities follow the (T-1)*T^(i-1) law.
class CapacityTest : public ::testing::TestWithParam<double> {};

TEST_P(CapacityTest, LevelsRespectCapacity) {
  const double t = GetParam();
  Options opts = SmallOptions(CompactionPolicy::kLeveling, t);
  sim::Device dev(QuietDevice());
  LsmTree tree(opts, &dev);
  util::Random rng(17);
  for (int i = 0; i < 8000; ++i) tree.Put(rng.Uniform(1 << 22), i);
  const std::vector<uint64_t> counts = tree.LevelEntryCounts();
  for (size_t i = 0; i < counts.size(); ++i) {
    EXPECT_LE(static_cast<double>(counts[i]),
              opts.LevelCapacityEntries(static_cast<int>(i)) + 1e-9)
        << "level " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Ratios, CapacityTest,
                         ::testing::Values(2.0, 3.0, 4.0, 6.0, 8.0, 12.0));

TEST(OptionsTest, ValidateRejectsBadValues) {
  Options opts;
  opts.size_ratio = 1.5;
  EXPECT_FALSE(opts.Validate().ok());
  opts = Options();
  opts.buffer_bytes = 16;  // smaller than one entry
  EXPECT_FALSE(opts.Validate().ok());
  opts = Options();
  EXPECT_TRUE(opts.Validate().ok());
}

TEST(OptionsTest, DerivedQuantities) {
  Options opts;
  opts.entry_bytes = 128;
  opts.buffer_bytes = 128 * 100;
  opts.size_ratio = 4.0;
  EXPECT_EQ(opts.BufferEntries(), 100u);
  EXPECT_EQ(opts.EntriesPerBlock(4096), 32u);
  EXPECT_EQ(opts.MaxRunsPerLevel(), 1);
  opts.policy = CompactionPolicy::kTiering;
  EXPECT_EQ(opts.MaxRunsPerLevel(), 4);
  EXPECT_DOUBLE_EQ(opts.LevelCapacityEntries(0), 300.0);
  EXPECT_DOUBLE_EQ(opts.LevelCapacityEntries(1), 1200.0);
}

TEST(OptionsTest, LevelsForEntries) {
  Options opts;
  opts.entry_bytes = 128;
  opts.buffer_bytes = 128 * 100;
  opts.size_ratio = 10.0;
  // ceil(log10(9900/100 + 1)) = 2; Equation 1 includes the "+1" term.
  EXPECT_EQ(opts.LevelsForEntries(9900), 2);
  EXPECT_EQ(opts.LevelsForEntries(10000), 3);  // log10(101) just over 2
  EXPECT_EQ(opts.LevelsForEntries(100), 1);
}

}  // namespace
}  // namespace camal::lsm
