#include <gtest/gtest.h>

#include "lsm/block_cache.h"

namespace camal::lsm {
namespace {

TEST(BlockCacheTest, MissThenHit) {
  BlockCache cache(4);
  EXPECT_FALSE(cache.Lookup(1));
  cache.Insert(1);
  EXPECT_TRUE(cache.Lookup(1));
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(BlockCacheTest, EvictsLeastRecentlyUsed) {
  BlockCache cache(2);
  cache.Insert(1);
  cache.Insert(2);
  EXPECT_TRUE(cache.Lookup(1));  // promote 1; LRU is now 2
  cache.Insert(3);               // evicts 2
  EXPECT_TRUE(cache.Lookup(1));
  EXPECT_FALSE(cache.Lookup(2));
  EXPECT_TRUE(cache.Lookup(3));
}

TEST(BlockCacheTest, ZeroCapacityNeverCaches) {
  BlockCache cache(0);
  cache.Insert(1);
  EXPECT_FALSE(cache.Lookup(1));
  EXPECT_EQ(cache.size(), 0u);
}

TEST(BlockCacheTest, ReinsertPromotes) {
  BlockCache cache(2);
  cache.Insert(1);
  cache.Insert(2);
  cache.Insert(1);  // promote, not duplicate
  EXPECT_EQ(cache.size(), 2u);
  cache.Insert(3);  // evicts 2
  EXPECT_FALSE(cache.Lookup(2));
  EXPECT_TRUE(cache.Lookup(1));
}

TEST(BlockCacheTest, ResizeShrinkEvicts) {
  BlockCache cache(4);
  for (uint64_t k = 1; k <= 4; ++k) cache.Insert(k);
  cache.Resize(2);
  EXPECT_EQ(cache.size(), 2u);
  // The two most recently used (3, 4) survive.
  EXPECT_TRUE(cache.Lookup(4));
  EXPECT_TRUE(cache.Lookup(3));
  EXPECT_FALSE(cache.Lookup(1));
}

TEST(BlockCacheTest, ResizeGrowKeepsContents) {
  BlockCache cache(2);
  cache.Insert(1);
  cache.Insert(2);
  cache.Resize(8);
  EXPECT_TRUE(cache.Lookup(1));
  EXPECT_TRUE(cache.Lookup(2));
}

TEST(BlockCacheTest, ClearEmpties) {
  BlockCache cache(4);
  cache.Insert(1);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Lookup(1));
}

TEST(BlockCacheTest, MakeKeyDistinguishesRunsAndBlocks) {
  EXPECT_NE(BlockCache::MakeKey(1, 0), BlockCache::MakeKey(2, 0));
  EXPECT_NE(BlockCache::MakeKey(1, 0), BlockCache::MakeKey(1, 1));
}

}  // namespace
}  // namespace camal::lsm
