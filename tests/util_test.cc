#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "util/random.h"
#include "util/stats.h"
#include "util/status.h"
#include "util/zipf.h"

namespace camal::util {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, InvalidArgumentCarriesMessage) {
  Status s = Status::InvalidArgument("bad knob");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.message(), "bad knob");
  EXPECT_NE(s.ToString().find("bad knob"), std::string::npos);
}

TEST(StatusTest, NotFound) {
  Status s = Status::NotFound("key");
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_FALSE(s.IsInvalidArgument());
}

TEST(RandomTest, DeterministicForSameSeed) {
  Random a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RandomTest, DifferentSeedsDiffer) {
  Random a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 5);
}

TEST(RandomTest, UniformWithinBounds) {
  Random rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RandomTest, UniformCoversRange) {
  Random rng(9);
  std::vector<int> hits(8, 0);
  for (int i = 0; i < 8000; ++i) ++hits[rng.Uniform(8)];
  for (int h : hits) EXPECT_GT(h, 700);  // expectation 1000
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Random rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, GaussianMoments) {
  Random rng(13);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.Add(rng.NextGaussian());
  EXPECT_NEAR(stats.mean(), 0.0, 0.03);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.03);
}

TEST(RandomTest, BernoulliRate) {
  Random rng(17);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(ZipfTest, ThetaZeroIsUniform) {
  Random rng(3);
  ZipfGenerator zipf(10, 0.0);
  std::vector<int> hits(10, 0);
  for (int i = 0; i < 10000; ++i) ++hits[zipf.Next(&rng)];
  for (int h : hits) EXPECT_NEAR(h, 1000, 200);
}

TEST(ZipfTest, RanksWithinDomain) {
  Random rng(5);
  ZipfGenerator zipf(100, 0.9);
  for (int i = 0; i < 5000; ++i) EXPECT_LT(zipf.Next(&rng), 100u);
}

TEST(ZipfTest, SkewConcentratesOnHotRanks) {
  Random rng(7);
  ZipfGenerator zipf(1000, 0.9);
  int top10 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) top10 += (zipf.Next(&rng) < 10);
  // With theta=0.9 the head is heavily hit; uniform would give 1%.
  EXPECT_GT(static_cast<double>(top10) / n, 0.25);
}

TEST(ZipfTest, HigherThetaMoreSkew) {
  Random rng1(9), rng2(9);
  ZipfGenerator mild(1000, 0.3), hot(1000, 0.9);
  int mild_top = 0, hot_top = 0;
  for (int i = 0; i < 10000; ++i) {
    mild_top += (mild.Next(&rng1) < 10);
    hot_top += (hot.Next(&rng2) < 10);
  }
  EXPECT_GT(hot_top, mild_top);
}

TEST(RunningStatsTest, KnownValues) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, EmptyAndSingle) {
  RunningStats s;
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  s.Add(3.0);
  EXPECT_EQ(s.mean(), 3.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(PercentileSketchTest, Quantiles) {
  PercentileSketch sketch;
  for (int i = 1; i <= 100; ++i) sketch.Add(i);
  EXPECT_NEAR(sketch.Quantile(0.0), 1.0, 1e-9);
  EXPECT_NEAR(sketch.Quantile(1.0), 100.0, 1e-9);
  EXPECT_NEAR(sketch.Quantile(0.5), 50.5, 1.0);
  EXPECT_NEAR(sketch.Quantile(0.9), 90.1, 1.0);
  EXPECT_NEAR(sketch.Mean(), 50.5, 1e-9);
}

TEST(PercentileSketchTest, EmptyReturnsZero) {
  PercentileSketch sketch;
  EXPECT_EQ(sketch.Quantile(0.5), 0.0);
  EXPECT_EQ(sketch.Mean(), 0.0);
}

TEST(PercentileSketchTest, InterleavedAddAndQuery) {
  PercentileSketch sketch;
  sketch.Add(10.0);
  EXPECT_DOUBLE_EQ(sketch.Quantile(0.5), 10.0);
  sketch.Add(20.0);
  sketch.Add(0.0);
  EXPECT_DOUBLE_EQ(sketch.Quantile(0.5), 10.0);
}

}  // namespace
}  // namespace camal::util
