#include <gtest/gtest.h>

#include "sim/device.h"

namespace camal::sim {
namespace {

DeviceConfig NoJitter() {
  DeviceConfig cfg;
  cfg.io_jitter_frac = 0.0;
  return cfg;
}

TEST(DeviceTest, ReadChargesLatencyAndCounts) {
  Device dev(NoJitter());
  dev.ReadBlock();
  EXPECT_EQ(dev.block_reads(), 1u);
  EXPECT_EQ(dev.block_writes(), 0u);
  EXPECT_DOUBLE_EQ(dev.elapsed_ns(), 90.0 * 1000.0);
}

TEST(DeviceTest, SequentialReadCheaperThanRandom) {
  Device dev(NoJitter());
  dev.ReadBlock();
  const double random_ns = dev.elapsed_ns();
  dev.Reset();
  dev.ReadBlockSequential();
  EXPECT_LT(dev.elapsed_ns(), random_ns);
  EXPECT_EQ(dev.block_reads(), 1u);
}

TEST(DeviceTest, WriteChargesLatency) {
  Device dev(NoJitter());
  dev.WriteBlock();
  EXPECT_EQ(dev.block_writes(), 1u);
  EXPECT_DOUBLE_EQ(dev.elapsed_ns(), 25.0 * 1000.0);
}

TEST(DeviceTest, CpuCharge) {
  Device dev(NoJitter());
  dev.ChargeCpu(123.0);
  dev.ChargeCpu(7.0);
  EXPECT_DOUBLE_EQ(dev.elapsed_ns(), 130.0);
  EXPECT_EQ(dev.block_reads() + dev.block_writes(), 0u);
}

TEST(DeviceTest, SnapshotDelta) {
  Device dev(NoJitter());
  dev.ReadBlock();
  const DeviceSnapshot before = dev.Snapshot();
  dev.ReadBlock();
  dev.WriteBlock();
  dev.ChargeCpu(100.0);
  const DeviceSnapshot delta = dev.Snapshot().Delta(before);
  EXPECT_EQ(delta.block_reads, 1u);
  EXPECT_EQ(delta.block_writes, 1u);
  EXPECT_EQ(delta.TotalIos(), 2u);
  EXPECT_DOUBLE_EQ(delta.elapsed_ns, 90000.0 + 25000.0 + 100.0);
}

TEST(DeviceTest, ResetZeroesEverything) {
  Device dev(NoJitter());
  dev.ReadBlock();
  dev.WriteBlock();
  dev.Reset();
  EXPECT_EQ(dev.block_reads(), 0u);
  EXPECT_EQ(dev.block_writes(), 0u);
  EXPECT_DOUBLE_EQ(dev.elapsed_ns(), 0.0);
}

TEST(DeviceTest, JitterIsDeterministicPerSeed) {
  DeviceConfig cfg;
  cfg.io_jitter_frac = 0.1;
  cfg.jitter_seed = 99;
  Device a(cfg), b(cfg);
  for (int i = 0; i < 10; ++i) {
    a.ReadBlock();
    b.ReadBlock();
  }
  EXPECT_DOUBLE_EQ(a.elapsed_ns(), b.elapsed_ns());
}

TEST(DeviceTest, JitterVariesLatency) {
  DeviceConfig cfg;
  cfg.io_jitter_frac = 0.2;
  Device dev(cfg);
  dev.ReadBlock();
  const double first = dev.elapsed_ns();
  dev.Reset();
  dev.ReadBlock();
  // Two consecutive draws from the jitter stream almost surely differ.
  EXPECT_NE(first, dev.elapsed_ns());
}

TEST(DeviceTest, JitterNeverNegative) {
  DeviceConfig cfg;
  cfg.io_jitter_frac = 5.0;  // absurd jitter still clamps at 10% of base
  Device dev(cfg);
  for (int i = 0; i < 100; ++i) {
    const double before = dev.elapsed_ns();
    dev.ReadBlock();
    EXPECT_GT(dev.elapsed_ns(), before);
  }
}

}  // namespace
}  // namespace camal::sim
