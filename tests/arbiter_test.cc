// Per-tenant memory arbitration: conservation invariants (the system
// total is never exceeded, per-shard floors always hold), determinism,
// skew-driven budget divergence, and the bit-identity of the arbiter-off
// (and observation-only) paths with the pre-arbiter system.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "camal/classic_tuner.h"
#include "camal/dynamic_tuner.h"
#include "camal/evaluator.h"
#include "camal/memory_arbiter.h"
#include "camal/sample.h"
#include "engine/sharded_engine.h"
#include "workload/executor.h"
#include "workload/generator.h"

namespace camal::tune {
namespace {

// Large enough that the even share's buffer slice clears the model's
// minimum sensible buffer (the arbiter's degenerate-budget guard).
SystemSetup MediumSetup() {
  SystemSetup setup;
  setup.num_entries = 8000;
  setup.total_memory_bits = 16 * 8000;
  return setup;
}

std::unique_ptr<engine::ShardedEngine> MakeLoadedEngine(
    const SystemSetup& setup, size_t shards, const workload::KeySpace& keys) {
  auto eng = std::make_unique<engine::ShardedEngine>(
      shards, MonkeyDefaultConfig(setup).ToOptions(setup),
      setup.MakeDeviceConfig());
  workload::BulkLoad(eng.get(), keys);
  return eng;
}

// Drives a steady-state skewed stream through the batched pipeline with
// `hook` attached (nullptr = the plain pre-arbiter execution).
workload::ExecutionResult RunStream(engine::StorageEngine* eng,
                                    workload::KeySpace* keys, double skew,
                                    size_t num_ops, workload::BatchHook* hook,
                                    size_t batch_ops = 256) {
  workload::ExecutorConfig exec;
  exec.num_ops = num_ops;
  exec.seed = 77;
  exec.batch_ops = batch_ops;
  exec.generator.scan_len = 16;
  exec.generator.shard_skew = skew;
  exec.generator.num_shards = eng->NumShards();
  exec.hook = hook;
  return workload::Execute(eng, model::WorkloadSpec{0.2, 0.3, 0.2, 0.3}, exec,
                           keys);
}

TEST(MemoryArbiterTest, ConservationAndFloorsHoldAfterEveryRound) {
  const SystemSetup setup = MediumSetup();
  workload::KeySpace keys(setup.num_entries, setup.seed);
  auto eng = MakeLoadedEngine(setup, 4, keys);

  ArbiterOptions opts;
  opts.period_ops = 400;
  MemoryArbiter arbiter(setup, MonkeyDefaultConfig(setup).ToOptions(setup), 4,
                        opts);
  ASSERT_TRUE(arbiter.active());

  // Small batches so the invariant is checked at many round boundaries.
  workload::GeneratorConfig gen_cfg;
  gen_cfg.scan_len = setup.scan_len;
  gen_cfg.shard_skew = 1.0;
  gen_cfg.num_shards = 4;
  workload::OperationGenerator gen(model::WorkloadSpec{0.2, 0.3, 0.2, 0.3},
                                   &keys, gen_cfg, /*seed=*/5);
  std::vector<workload::Operation> pending;
  std::vector<engine::Op> ops;
  std::vector<engine::OpResult> results;
  for (int batch = 0; batch < 60; ++batch) {
    pending.clear();
    ops.clear();
    for (int i = 0; i < 100; ++i) {
      pending.push_back(gen.Next());
      ops.push_back(workload::ToEngineOp(pending.back()));
    }
    results.resize(ops.size());
    eng->ExecuteOps(ops.data(), ops.size(), results.data());
    arbiter.OnBatch(eng.get(), pending.data(), pending.size());

    // The arbitrated ledger conserves the total and respects floors...
    uint64_t ledger = 0;
    for (uint64_t bits : arbiter.budget_bits()) {
      EXPECT_GE(bits, arbiter.floor_bits());
      ledger += bits;
    }
    EXPECT_LE(ledger, arbiter.total_bits());
    // ...and what the engine actually holds never exceeds the ledger
    // (applied options round bits down into bytes).
    uint64_t applied = 0;
    for (size_t s = 0; s < eng->NumShards(); ++s) {
      applied += eng->ShardBudgetSnapshot(s).TotalBits();
    }
    EXPECT_LE(applied, arbiter.total_bits());
  }
  EXPECT_GE(arbiter.rounds(), 10u);
  EXPECT_GT(arbiter.moves(), 0u);
}

TEST(MemoryArbiterTest, SkewedTrafficDivergesBudgetsDeterministically) {
  const SystemSetup setup = MediumSetup();
  auto run = [&] {
    workload::KeySpace keys(setup.num_entries, setup.seed);
    auto eng = MakeLoadedEngine(setup, 4, keys);
    ArbiterOptions opts;
    opts.period_ops = 500;
    MemoryArbiter arbiter(setup, MonkeyDefaultConfig(setup).ToOptions(setup),
                          4, opts);
    RunStream(eng.get(), &keys, /*skew=*/1.0, /*num_ops=*/4000, &arbiter);
    return std::make_pair(arbiter.budget_bits(), arbiter.moves());
  };

  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.first, b.first);  // deterministic given the seed
  EXPECT_EQ(a.second, b.second);
  EXPECT_GT(a.second, 0u);

  // Shard 0 is the generator's hottest tenant; some cold shard must have
  // donated, so the even split is gone and the hot shard holds the max.
  const uint64_t even_share = a.first[0] + a.first[1] + a.first[2] +
                              a.first[3];
  const uint64_t hot = a.first[0];
  uint64_t coldest = hot;
  for (uint64_t bits : a.first) coldest = std::min(coldest, bits);
  EXPECT_GT(hot, even_share / 4);
  EXPECT_LT(coldest, even_share / 4);
  for (uint64_t bits : a.first) EXPECT_LE(bits, hot);
}

TEST(MemoryArbiterTest, UniformTrafficHoldsTheEvenSplit) {
  const SystemSetup setup = MediumSetup();
  workload::KeySpace keys(setup.num_entries, setup.seed);
  auto eng = MakeLoadedEngine(setup, 4, keys);
  ArbiterOptions opts;
  opts.period_ops = 500;
  MemoryArbiter arbiter(setup, MonkeyDefaultConfig(setup).ToOptions(setup), 4,
                        opts);
  RunStream(eng.get(), &keys, /*skew=*/0.0, /*num_ops=*/4000, &arbiter);
  EXPECT_GE(arbiter.rounds(), 4u);
  for (uint64_t bits : arbiter.budget_bits()) {
    EXPECT_EQ(bits, arbiter.budget_bits()[0]);
  }
}

TEST(MemoryArbiterTest, ObservationIsFreeBitIdentical) {
  // An attached arbiter that never finds a profitable move (infinite
  // hysteresis) must leave execution byte-for-byte untouched: recording
  // and pricing live outside the simulated cost domain.
  const SystemSetup setup = MediumSetup();

  workload::KeySpace keys_a(setup.num_entries, setup.seed);
  auto eng_a = MakeLoadedEngine(setup, 4, keys_a);
  const workload::ExecutionResult plain =
      RunStream(eng_a.get(), &keys_a, 1.0, 3000, nullptr);

  workload::KeySpace keys_b(setup.num_entries, setup.seed);
  auto eng_b = MakeLoadedEngine(setup, 4, keys_b);
  ArbiterOptions opts;
  opts.period_ops = 300;
  opts.hysteresis = 1e18;  // rounds fire, no move ever clears the bar
  MemoryArbiter arbiter(setup, MonkeyDefaultConfig(setup).ToOptions(setup), 4,
                        opts);
  const workload::ExecutionResult hooked =
      RunStream(eng_b.get(), &keys_b, 1.0, 3000, &arbiter);

  EXPECT_GE(arbiter.rounds(), 5u);
  EXPECT_EQ(arbiter.moves(), 0u);
  EXPECT_EQ(plain.total_ns, hooked.total_ns);  // bit-exact doubles
  EXPECT_EQ(plain.total_ios, hooked.total_ios);
  EXPECT_EQ(plain.lookups_found, hooked.lookups_found);
  EXPECT_EQ(plain.latency_ns.Quantile(0.99),
            hooked.latency_ns.Quantile(0.99));
}

TEST(MemoryArbiterTest, DegenerateBudgetGuardHoldsBudgets) {
  // 8 shards over a small budget push the even share's buffer slice
  // below the model's minimum sensible buffer: the arbiter must refuse
  // to trade transition I/O for modeled noise.
  SystemSetup setup;
  setup.num_entries = 4000;
  setup.total_memory_bits = 16 * 4000;
  workload::KeySpace keys(setup.num_entries, setup.seed);
  auto eng = MakeLoadedEngine(setup, 8, keys);
  ArbiterOptions opts;
  opts.period_ops = 300;
  MemoryArbiter arbiter(setup, MonkeyDefaultConfig(setup).ToOptions(setup), 8,
                        opts);
  EXPECT_FALSE(arbiter.active());
  RunStream(eng.get(), &keys, 1.0, 3000, &arbiter);
  EXPECT_GE(arbiter.rounds(), 5u);
  EXPECT_EQ(arbiter.moves(), 0u);
  for (uint64_t bits : arbiter.budget_bits()) {
    EXPECT_EQ(bits, arbiter.budget_bits()[0]);
  }
}

TEST(MemoryArbiterTest, EvaluatorArbitrationKnob) {
  // kOff is the construction-default (bit-identical trivially); kPeriodic
  // under skewed tenant traffic must actually change the measurement —
  // budgets moved mid-run — while staying deterministic.
  SystemSetup setup = MediumSetup();
  setup.num_shards = 4;
  setup.shard_skew = 1.0;
  setup.eval_ops = 6000;
  setup.arbiter_period_ops = 1000;
  const Evaluator off_eval(setup);

  setup.arbitration = ArbitrationMode::kPeriodic;
  const Evaluator on_eval(setup);

  const model::WorkloadSpec w{0.2, 0.3, 0.2, 0.3};
  const TuningConfig config = MonkeyDefaultConfig(setup);
  const Measurement off = off_eval.Evaluate(w, config);
  const Measurement on_a = on_eval.Evaluate(w, config);
  const Measurement on_b = on_eval.Evaluate(w, config);

  EXPECT_EQ(on_a.mean_latency_ns, on_b.mean_latency_ns);  // deterministic
  EXPECT_EQ(on_a.ios_per_op, on_b.ios_per_op);
  EXPECT_NE(on_a.mean_latency_ns, off.mean_latency_ns);  // budgets moved
  EXPECT_GT(on_a.mean_latency_ns, 0.0);
  EXPECT_GT(on_a.p99_latency_ns, 0.0);
}

TEST(MemoryArbiterTest, ComposesWithDynamicTunerRetunes) {
  const SystemSetup setup = [] {
    SystemSetup s = MediumSetup();
    s.train_ops = 400;
    s.eval_ops = 800;
    return s;
  }();
  auto classic = std::make_shared<ClassicTuner>(setup, TunerOptions{});
  RecommendFn recommend = [classic](const model::WorkloadSpec& w,
                                    const model::SystemParams& target) {
    return classic->RecommendFor(w, target);
  };
  DynamicTuner::Params params;
  params.window_ops = 250;
  params.tau = 0.1;

  auto run = [&] {
    workload::KeySpace keys(setup.num_entries, setup.seed);
    auto eng = MakeLoadedEngine(setup, 4, keys);
    ArbiterOptions opts;
    opts.period_ops = 600;
    MemoryArbiter arbiter(setup, MonkeyDefaultConfig(setup).ToOptions(setup),
                          4, opts);
    DynamicTuner dyn(recommend, setup, params);
    dyn.set_arbiter(&arbiter);
    // Two phases with different mixes: detectors retune shards while the
    // arbiter shifts budgets between the same batches.
    model::WorkloadSpec phase1{0.1, 0.2, 0.1, 0.6};
    model::WorkloadSpec phase2{0.3, 0.4, 0.2, 0.1};
    phase1.skew = 0.8;
    phase2.skew = 0.8;
    const workload::ExecutionResult r1 =
        dyn.RunPhase(eng.get(), &keys, phase1, 1500, 1);
    const workload::ExecutionResult r2 =
        dyn.RunPhase(eng.get(), &keys, phase2, 1500, 2);

    uint64_t ledger = 0;
    for (uint64_t bits : arbiter.budget_bits()) {
      EXPECT_GE(bits, arbiter.floor_bits());
      ledger += bits;
    }
    EXPECT_LE(ledger, arbiter.total_bits());
    EXPECT_GE(dyn.reconfigurations(), 4u);  // every shard retuned at least once
    return std::make_tuple(r1.total_ns + r2.total_ns,
                           r1.total_ios + r2.total_ios,
                           arbiter.budget_bits(), dyn.reconfigurations());
  };

  const auto a = run();
  const auto b = run();
  EXPECT_EQ(std::get<0>(a), std::get<0>(b));  // bit-exact simulated time
  EXPECT_EQ(std::get<1>(a), std::get<1>(b));
  EXPECT_EQ(std::get<2>(a), std::get<2>(b));
  EXPECT_EQ(std::get<3>(a), std::get<3>(b));
}

TEST(MemoryArbiterTest, ZeroActivityWindowIsAnExactNoOp) {
  // Million-tenant regime, sparse traffic: a window in which no shard saw
  // an operation must move nothing, reconfigure nothing, touch no engine
  // shard (an all-cold engine stays all-cold), and leave every budget at
  // exactly the even share with the total conserved to the bit.
  SystemSetup setup;
  setup.num_entries = 8000;
  setup.total_memory_bits = 64 * 32000;  // even share matches MediumSetup/4
  engine::ShardedEngine eng(64, MonkeyDefaultConfig(setup).ToOptions(setup),
                            setup.MakeDeviceConfig());
  ASSERT_EQ(eng.MaterializedShards(), 0u);

  ArbiterOptions opts;
  opts.period_ops = 100;
  MemoryArbiter arbiter(setup, MonkeyDefaultConfig(setup).ToOptions(setup), 64,
                        opts);
  ASSERT_TRUE(arbiter.active());

  const std::vector<uint64_t> before = arbiter.budget_bits();
  for (int round = 0; round < 3; ++round) arbiter.Rebalance(&eng);

  EXPECT_EQ(arbiter.moves(), 0u);
  EXPECT_EQ(arbiter.reconfigurations(), 0u);
  EXPECT_EQ(arbiter.budget_bits(), before);
  uint64_t ledger = 0;
  for (uint64_t bits : arbiter.budget_bits()) {
    EXPECT_EQ(bits, before[0]);  // the undisturbed even share
    ledger += bits;
  }
  EXPECT_EQ(ledger, arbiter.total_bits());  // exact, not just bounded
  // The arbitration pass itself is O(active): with zero activity it read
  // nothing from the engine, so no shard materialized.
  EXPECT_EQ(eng.MaterializedShards(), 0u);
}

TEST(MemoryArbiterTest, SingleActiveShardWindowConservesExactly) {
  // One tenant active out of eight: the round promotes it from its group
  // pool, funds it from silent implicit members, and the two-level ledger
  // conserves the system total bit-exactly through every handoff.
  SystemSetup setup;
  setup.num_entries = 8000;
  setup.total_memory_bits = 8 * 32000;
  workload::KeySpace keys(setup.num_entries, setup.seed);
  auto eng = MakeLoadedEngine(setup, 8, keys);

  ArbiterOptions opts;
  opts.period_ops = 400;
  MemoryArbiter arbiter(setup, MonkeyDefaultConfig(setup).ToOptions(setup), 8,
                        opts);
  ASSERT_TRUE(arbiter.active());
  const uint64_t even = arbiter.budget_bits()[0];

  for (int i = 0; i < 400; ++i) {
    arbiter.Record(3, i % 2 == 0 ? workload::OpType::kNonZeroResultLookup
                                 : workload::OpType::kWrite);
  }
  // Record() only accumulates counts; the window clock advances in the
  // OnBatch hooks, so fire the round directly.
  arbiter.Rebalance(eng.get());

  // The active shard gained; every donor was a silent shard; nobody fell
  // through the floor; and the ledger total is exact — pool withdrawals
  // hand out exactly the even share, so sparse promotion loses no bits.
  EXPECT_GT(arbiter.moves(), 0u);
  EXPECT_GE(arbiter.reconfigurations(), 2u);
  EXPECT_GT(arbiter.BudgetBits(3), even);
  uint64_t ledger = 0;
  for (size_t s = 0; s < 8; ++s) {
    const uint64_t bits = arbiter.BudgetBits(s);
    EXPECT_GE(bits, arbiter.floor_bits());
    if (s != 3) {
      EXPECT_LE(bits, even) << "shard " << s;
    }
    ledger += bits;
  }
  EXPECT_EQ(ledger, arbiter.total_bits());
  // What the engine actually holds never exceeds the conserved total.
  uint64_t applied = 0;
  for (size_t s = 0; s < 8; ++s) {
    applied += eng->ShardBudgetSnapshot(s).TotalBits();
  }
  EXPECT_LE(applied, arbiter.total_bits());
}

TEST(MemoryArbiterTest, HibernationHandoffConservesAcrossDemoteAndRepromote) {
  // The lifecycle handoff loop: skewed traffic diverges explicit budgets,
  // a traffic shift hibernates the idle half (their budgets deposit back
  // into the group pool — demotion), and the traffic's return wakes and
  // re-promotes them at the pool's amortized slice. The conserved total
  // may be under-reported only by the pool's floor-division remainder
  // (< one bit per implicit member), never exceeded.
  SystemSetup setup;
  setup.num_entries = 8000;
  setup.total_memory_bits = 8 * 32000;
  workload::KeySpace keys(setup.num_entries, setup.seed);
  auto eng = std::make_unique<engine::ShardedEngine>(
      8, MonkeyDefaultConfig(setup).ToOptions(setup), setup.MakeDeviceConfig(),
      engine::ShardLifecycleConfig{/*lazy=*/true,
                                   /*hibernate_after_batches=*/1});
  workload::BulkLoad(eng.get(), keys);

  ArbiterOptions opts;
  opts.period_ops = 300;  // one round per 300-op batch
  MemoryArbiter arbiter(setup, MonkeyDefaultConfig(setup).ToOptions(setup), 8,
                        opts);
  ASSERT_TRUE(arbiter.active());

  // A skewed stream with no scans (scans touch every shard, which would
  // keep the idle half awake). Point ops split cleanly by routed shard.
  workload::GeneratorConfig gen_cfg;
  gen_cfg.shard_skew = 1.0;
  gen_cfg.num_shards = 8;
  workload::OperationGenerator gen(model::WorkloadSpec{0.25, 0.35, 0.0, 0.4},
                                   &keys, gen_cfg, /*seed=*/5);
  std::vector<workload::Operation> all_ops;
  std::vector<workload::Operation> low_ops;  // shards 0-3 only
  for (int i = 0; i < 4000; ++i) {
    const workload::Operation op = gen.Next();
    all_ops.push_back(op);
    if (eng->ShardIndex(op.key) < 4) low_ops.push_back(op);
  }
  ASSERT_GE(low_ops.size(), 1200u);

  const auto check_conserved = [&] {
    uint64_t ledger = 0;
    for (uint64_t bits : arbiter.budget_bits()) {
      EXPECT_GE(bits, arbiter.floor_bits());
      ledger += bits;
    }
    EXPECT_LE(ledger, arbiter.total_bits());
    EXPECT_GE(ledger + 8, arbiter.total_bits());  // view slack < members
  };
  const auto run_batch = [&](const std::vector<workload::Operation>& stream,
                             size_t from) {
    std::vector<engine::Op> ops;
    ops.reserve(300);
    for (size_t i = from; i < from + 300; ++i) {
      ops.push_back(workload::ToEngineOp(stream[i]));
    }
    std::vector<engine::OpResult> results(ops.size());
    eng->ExecuteOps(ops.data(), ops.size(), results.data());
    arbiter.OnBatch(eng.get(), stream.data() + from, 300);
    check_conserved();
  };

  // Phase 1: every shard trafficked -> all promoted, budgets diverge.
  for (size_t b = 0; b < 4; ++b) run_batch(all_ops, b * 300);
  EXPECT_GT(arbiter.moves(), 0u);

  // Phase 2: traffic narrows to shards 0-3. The idle half hibernates
  // after one silent batch and the next round demotes it — each shard's
  // entire (diverged) budget deposits back into the pool, exactly.
  for (size_t b = 0; b < 4; ++b) run_batch(low_ops, b * 300);
  for (size_t s = 4; s < 8; ++s) {
    EXPECT_EQ(eng->ShardLifecycle(s), engine::ShardState::kHibernated) << s;
  }

  // Phase 3: the broad mix returns; hibernated shards wake transparently
  // and re-promote from the pool at its amortized slice.
  for (size_t b = 0; b < 4; ++b) run_batch(all_ops, b * 300);
  for (size_t s = 0; s < 8; ++s) {
    EXPECT_EQ(eng->ShardLifecycle(s), engine::ShardState::kMaterialized) << s;
  }
  EXPECT_GE(arbiter.rounds(), 12u);
}

}  // namespace
}  // namespace camal::tune
