// Online config racing: convergence to a planted better configuration on
// live traffic, hysteresis against flapping, composition with per-tenant
// memory arbitration (racing owns the shape, the arbiter owns the
// budget), and the bit-identity of the racing-off path with the
// pre-racing dynamic tuner.

#include <gtest/gtest.h>

#include <memory>
#include <tuple>
#include <vector>

#include "camal/classic_tuner.h"
#include "camal/dynamic_tuner.h"
#include "camal/memory_arbiter.h"
#include "camal/sample.h"
#include "engine/sharded_engine.h"
#include "workload/tables.h"

namespace camal::tune {
namespace {

SystemSetup TinySetup() {
  SystemSetup setup;
  setup.num_entries = 6000;
  setup.total_memory_bits = 16 * 6000;
  return setup;
}

// A deliberately read-hostile incumbent: 1 bit/key of Bloom memory leaves
// the filters nearly useless, so point lookups probe almost every run.
TuningConfig WeakBloomConfig(const SystemSetup& setup) {
  TuningConfig c;
  c.policy = lsm::CompactionPolicy::kLeveling;
  c.size_ratio = 10.0;
  c.mf_bits = static_cast<double>(setup.num_entries);
  c.mb_bits = static_cast<double>(setup.total_memory_bits) - c.mf_bits;
  c.mc_bits = 0.0;
  return c;
}

// A recommender that always returns one planted config — the race then
// measures exactly "incumbent vs planted (vs its perturbation)".
RecommendFn PlantedRecommender(const TuningConfig& planted) {
  return [planted](const model::WorkloadSpec&, const model::SystemParams&) {
    return planted;
  };
}

RecommendFn ClassicRecommender(const SystemSetup& setup) {
  auto tuner = std::make_shared<ClassicTuner>(setup, TunerOptions{});
  return [tuner](const model::WorkloadSpec& w,
                 const model::SystemParams& target) {
    return tuner->RecommendFor(w, target);
  };
}

RacingOptions FastRacing() {
  RacingOptions racing;
  racing.enabled = true;
  racing.window_ops = 64;
  racing.min_rounds = 1;
  racing.min_improvement = 0.02;
  return racing;
}

TEST(RacingTest, ConvergesToPlantedBestWithinBoundedWindows) {
  const SystemSetup setup = TinySetup();
  const TuningConfig weak = WeakBloomConfig(setup);
  const TuningConfig planted = MonkeyDefaultConfig(setup);  // 10 bits/key

  engine::ShardedEngine eng(1, weak.ToOptions(setup), setup.MakeDeviceConfig());
  workload::KeySpace keys(setup.num_entries, setup.seed);
  workload::BulkLoad(&eng, keys);

  DynamicTuner::Params params;
  params.window_ops = 200;
  params.tau = 0.1;
  DynamicTuner dyn(PlantedRecommender(planted), setup, params);
  dyn.set_racing(FastRacing());

  // Read-heavy traffic: the planted config's real filters beat the weak
  // incumbent on measured ios/op, so the race must switch away.
  dyn.RunPhase(&eng, &keys, model::WorkloadSpec{0.45, 0.45, 0.0, 0.1}, 4000,
               1);

  EXPECT_GE(dyn.races_started(), 1u);
  EXPECT_GE(dyn.race_switches(), 1u);
  EXPECT_EQ(dyn.active_races(), 0u);  // settled within the phase
  // The live shard carries the planted winner's filters.
  EXPECT_EQ(eng.ShardOptionsSnapshot(0).bloom_bits,
            planted.ToOptions(setup).bloom_bits);
}

TEST(RacingTest, HysteresisBlocksSwitchBelowImprovementBar) {
  const SystemSetup setup = TinySetup();
  const TuningConfig weak = WeakBloomConfig(setup);
  const TuningConfig planted = MonkeyDefaultConfig(setup);

  engine::ShardedEngine eng(1, weak.ToOptions(setup), setup.MakeDeviceConfig());
  workload::KeySpace keys(setup.num_entries, setup.seed);
  workload::BulkLoad(&eng, keys);

  DynamicTuner::Params params;
  params.window_ops = 200;
  params.tau = 0.1;
  DynamicTuner dyn(PlantedRecommender(planted), setup, params);
  RacingOptions racing = FastRacing();
  // A challenger can never clear this bar (it would need cost <= 0), so
  // even the genuinely better planted config settles back to the
  // incumbent: hysteresis holds, nothing flaps.
  racing.min_improvement = 1.0;
  dyn.set_racing(racing);

  dyn.RunPhase(&eng, &keys, model::WorkloadSpec{0.45, 0.45, 0.0, 0.1}, 4000,
               1);

  EXPECT_GE(dyn.races_started(), 1u);
  EXPECT_EQ(dyn.race_switches(), 0u);
  EXPECT_GE(dyn.race_holds(), 1u);
  EXPECT_EQ(dyn.active_races(), 0u);
  // Settling restored the incumbent's shape on the live shard.
  EXPECT_EQ(eng.ShardOptionsSnapshot(0).bloom_bits,
            weak.ToOptions(setup).bloom_bits);
}

TEST(RacingTest, ComposesWithArbiterBudgetConservation) {
  SystemSetup setup = TinySetup();
  setup.num_entries = 8000;
  setup.total_memory_bits = 16 * 8000;

  const auto run = [&setup] {
    workload::KeySpace keys(setup.num_entries, setup.seed);
    engine::ShardedEngine eng(4, MonkeyDefaultConfig(setup).ToOptions(setup),
                              setup.MakeDeviceConfig());
    workload::BulkLoad(&eng, keys);
    ArbiterOptions opts;
    opts.period_ops = 600;
    MemoryArbiter arbiter(setup, MonkeyDefaultConfig(setup).ToOptions(setup),
                          4, opts);
    DynamicTuner::Params params;
    params.window_ops = 250;
    params.tau = 0.1;
    DynamicTuner dyn(ClassicRecommender(setup), setup, params);
    dyn.set_arbiter(&arbiter);
    dyn.set_racing(FastRacing());

    model::WorkloadSpec phase1{0.1, 0.2, 0.1, 0.6};
    model::WorkloadSpec phase2{0.3, 0.4, 0.2, 0.1};
    phase1.skew = 0.8;
    phase2.skew = 0.8;
    const workload::ExecutionResult r1 =
        dyn.RunPhase(&eng, &keys, phase1, 1500, 1);
    const workload::ExecutionResult r2 =
        dyn.RunPhase(&eng, &keys, phase2, 1500, 2);

    EXPECT_GE(dyn.races_started(), 1u);
    // Budget conservation holds with races rotating candidate shapes:
    // every shard keeps its floor, the ledger never exceeds the system
    // total, and neither does the memory actually applied to the engine.
    uint64_t ledger = 0;
    uint64_t applied = 0;
    for (size_t s = 0; s < eng.NumShards(); ++s) {
      EXPECT_GE(arbiter.BudgetBits(s), arbiter.floor_bits());
      ledger += arbiter.BudgetBits(s);
      applied += eng.ShardBudgetSnapshot(s).TotalBits();
    }
    EXPECT_LE(ledger, arbiter.total_bits());
    EXPECT_LE(applied, arbiter.total_bits());
    return std::make_tuple(r1.total_ns + r2.total_ns,
                           r1.total_ios + r2.total_ios, dyn.races_started(),
                           dyn.race_switches(), dyn.race_holds());
  };

  // Racing under arbitration stays deterministic on the sim backend.
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a, b);
}

TEST(RacingTest, RacingOffIsBitIdenticalToPreRacingTuner) {
  const SystemSetup setup = TinySetup();
  const auto run = [&setup](bool set_disabled_racing) {
    workload::KeySpace keys(setup.num_entries, setup.seed);
    engine::ShardedEngine eng(2, MonkeyDefaultConfig(setup).ToOptions(setup),
                              setup.MakeDeviceConfig());
    workload::BulkLoad(&eng, keys);
    DynamicTuner::Params params;
    params.window_ops = 200;
    params.tau = 0.1;
    DynamicTuner dyn(ClassicRecommender(setup), setup, params);
    if (set_disabled_racing) {
      dyn.set_racing(RacingOptions{});  // enabled = false: inert
    }
    const workload::ExecutionResult r = dyn.RunPhase(
        &eng, &keys, model::WorkloadSpec{0.25, 0.25, 0.25, 0.25}, 1200, 1);
    EXPECT_EQ(dyn.races_started(), 0u);
    return std::make_tuple(r.total_ns, r.total_ios, dyn.reconfigurations());
  };

  EXPECT_EQ(run(false), run(true));
}

}  // namespace
}  // namespace camal::tune
