#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "camal/bayes_tuner.h"
#include "camal/camal_tuner.h"
#include "camal/classic_tuner.h"
#include "camal/evaluator.h"
#include "camal/extrapolation.h"
#include "camal/grid_tuner.h"
#include "camal/group_sampling.h"
#include "camal/plain_al_tuner.h"
#include "camal/sample.h"
#include "camal/uncertainty.h"

namespace camal::tune {
namespace {

// A deliberately tiny setup so tuner tests stay fast.
SystemSetup TinySetup() {
  SystemSetup setup;
  setup.num_entries = 6000;
  setup.total_memory_bits = 16 * 6000;
  setup.train_ops = 400;
  setup.eval_ops = 800;
  return setup;
}

model::WorkloadSpec Mixed() { return model::WorkloadSpec{0.25, 0.25, 0.25, 0.25}; }

TEST(SystemSetupTest, ModelParamsDerivation) {
  SystemSetup setup;
  const model::SystemParams p = setup.ToModelParams();
  EXPECT_DOUBLE_EQ(p.num_entries, 40000.0);
  EXPECT_DOUBLE_EQ(p.entry_bits, 1024.0);
  EXPECT_DOUBLE_EQ(p.block_entries, 32.0);
  EXPECT_DOUBLE_EQ(p.total_memory_bits, 640000.0);
}

TEST(SystemSetupTest, ScaledDownDividesNandM) {
  SystemSetup setup;
  const SystemSetup small = ScaledDown(setup, 10.0);
  EXPECT_EQ(small.num_entries, 4000u);
  EXPECT_EQ(small.total_memory_bits, 64000u);
  EXPECT_EQ(small.entry_bytes, setup.entry_bytes);
}

TEST(TuningConfigTest, ToOptionsMapsBitsToBytes) {
  SystemSetup setup;
  TuningConfig c;
  c.size_ratio = 6.0;
  c.mf_bits = 80000;
  c.mb_bits = 160000;
  c.mc_bits = 400000;
  const lsm::Options opts = c.ToOptions(setup);
  EXPECT_DOUBLE_EQ(opts.size_ratio, 6.0);
  EXPECT_EQ(opts.buffer_bytes, 20000u);
  EXPECT_EQ(opts.bloom_bits, 80000u);
  EXPECT_EQ(opts.block_cache_bytes, 50000u);
  EXPECT_TRUE(opts.Validate().ok());
}

TEST(TuningConfigTest, IoQueueDepthFlowsToOptionsAndModel) {
  SystemSetup setup;
  TuningConfig c = MonkeyDefaultConfig(setup);
  // Untuned (0): options inherit the engine default, the model prices
  // serial reads.
  EXPECT_EQ(c.ToOptions(setup).io_queue_depth, 0);
  EXPECT_DOUBLE_EQ(c.ToModelConfig().io_queue_depth, 1.0);
  c.io_queue_depth = 16;
  EXPECT_EQ(c.ToOptions(setup).io_queue_depth, 16);
  EXPECT_DOUBLE_EQ(c.ToModelConfig().io_queue_depth, 16.0);
  EXPECT_NE(c.ToString().find("qd=16"), std::string::npos);
}

TEST(SystemSetupTest, RejectsUringKnobsOnSimBackend) {
  SystemSetup setup;
  EXPECT_TRUE(setup.Validate().ok());
  setup.io_mode = FileIoMode::kUring;
  EXPECT_FALSE(setup.Validate().ok());
  setup.io_mode = FileIoMode::kAuto;
  setup.io_queue_depth = 8;
  EXPECT_FALSE(setup.Validate().ok());
  // The same knobs are legal on the real-IO backend...
  setup.backend = EngineBackend::kFile;
  setup.io_mode = FileIoMode::kUring;
  EXPECT_TRUE(setup.Validate().ok());
  // ...but the depth range is still enforced.
  setup.io_queue_depth = 0;
  EXPECT_FALSE(setup.Validate().ok());
  setup.io_queue_depth = 2000;
  EXPECT_FALSE(setup.Validate().ok());
}

TEST(TunerOptionsTest, TuneIoDepthStampsRecommendations) {
  // Closed-form fallback path (untrained model): the recommendation must
  // carry the cost model's depth when the knob is on, and stay at the
  // untuned default when off.
  SystemSetup setup = TinySetup();
  TunerOptions off;
  TunerOptions opts;
  opts.tune_io_depth = true;
  opts.max_io_queue_depth = 32;
  const model::WorkloadSpec scans{0.0, 0.1, 0.8, 0.1};
  CamalTuner tuned(setup, opts);
  const TuningConfig rec = tuned.Recommend(scans);
  const model::CostModel cm(setup.ToModelParams());
  EXPECT_EQ(rec.io_queue_depth,
            cm.RecommendedQueueDepth(scans.Normalized(), rec.ToModelConfig(),
                                     opts.max_io_queue_depth));
  EXPECT_GT(rec.io_queue_depth, 1);  // scan-heavy mixes fan out widely
  CamalTuner untouched(setup, off);
  EXPECT_EQ(untouched.Recommend(scans).io_queue_depth, 0);
}

TEST(TuningConfigTest, MonkeyDefaultSumsToBudget) {
  SystemSetup setup;
  const TuningConfig c = MonkeyDefaultConfig(setup);
  EXPECT_NEAR(c.mf_bits + c.mb_bits + c.mc_bits,
              static_cast<double>(setup.total_memory_bits), 1.0);
  EXPECT_NEAR(c.mf_bits, 10.0 * setup.num_entries, 1.0);
}

TEST(FeatureTest, ScaleInvarianceLemma51) {
  // Features of (T, Mf, Mb) at (N, M) equal features of (T, kMf, kMb) at
  // (kN, kM) — the formal backbone of extrapolation.
  SystemSetup setup;
  const model::SystemParams sys = setup.ToModelParams();
  const model::SystemParams big = ScaleParams(sys, 10.0);
  TuningConfig c;
  c.size_ratio = 8.0;
  c.mf_bits = 9.0 * sys.num_entries;
  c.mb_bits = sys.total_memory_bits - c.mf_bits;
  const TuningConfig scaled = ExtrapolateConfig(c, 10.0);
  const auto f1 = RawFeatures(Mixed(), c, sys);
  const auto f2 = RawFeatures(Mixed(), scaled, big);
  ASSERT_EQ(f1.size(), f2.size());
  for (size_t i = 0; i < f1.size(); ++i) {
    if (i == 12) continue;  // log10(N) intentionally differs
    EXPECT_NEAR(f1[i], f2[i], 1e-9) << "feature " << i;
  }
}

TEST(FeatureTest, CostBasisDimensionsStable) {
  SystemSetup setup;
  const auto raw = RawFeatures(Mixed(), MonkeyDefaultConfig(setup),
                               setup.ToModelParams());
  const auto basis = CostBasisFromRaw(raw);
  EXPECT_EQ(basis.size(), 13u);
  for (double b : basis) EXPECT_TRUE(std::isfinite(b));
}

TEST(ExtrapolationTest, ConfigScaling) {
  TuningConfig c;
  c.size_ratio = 7.0;
  c.mf_bits = 100;
  c.mb_bits = 200;
  c.mc_bits = 50;
  const TuningConfig big = ExtrapolateConfig(c, 4.0);
  EXPECT_DOUBLE_EQ(big.size_ratio, 7.0);  // T unchanged (Lemma 5.1)
  EXPECT_DOUBLE_EQ(big.mf_bits, 400.0);
  EXPECT_DOUBLE_EQ(big.mb_bits, 800.0);
  EXPECT_DOUBLE_EQ(big.mc_bits, 200.0);
}

TEST(EvaluatorTest, DeterministicForSameSalt) {
  Evaluator ev(TinySetup());
  const TuningConfig c = MonkeyDefaultConfig(TinySetup());
  const Measurement a = ev.Measure(Mixed(), c, 300, 5);
  const Measurement b = ev.Measure(Mixed(), c, 300, 5);
  EXPECT_DOUBLE_EQ(a.mean_latency_ns, b.mean_latency_ns);
  EXPECT_DOUBLE_EQ(a.ios_per_op, b.ios_per_op);
}

TEST(EvaluatorTest, DifferentSaltDifferentNoise) {
  Evaluator ev(TinySetup());
  const TuningConfig c = MonkeyDefaultConfig(TinySetup());
  const Measurement a = ev.Measure(Mixed(), c, 300, 5);
  const Measurement b = ev.Measure(Mixed(), c, 300, 6);
  EXPECT_NE(a.mean_latency_ns, b.mean_latency_ns);
  // ... but they are the same system: within a loose band.
  EXPECT_NEAR(a.mean_latency_ns, b.mean_latency_ns,
              0.5 * a.mean_latency_ns);
}

TEST(EvaluatorTest, SampleCarriesCostAndScale) {
  const SystemSetup setup = TinySetup();
  Evaluator ev(setup);
  const Sample s = ev.MakeSample(Mixed(), MonkeyDefaultConfig(setup), 1);
  EXPECT_GT(s.cost_ns, 0.0);
  EXPECT_GT(s.mean_latency_ns, 0.0);
  EXPECT_DOUBLE_EQ(s.sys.num_entries, 6000.0);
}

TEST(ObjectiveTest, SelectsRequestedMetric) {
  Sample s;
  s.mean_latency_ns = 1.0;
  s.p90_latency_ns = 2.0;
  s.ios_per_op = 3.0;
  EXPECT_DOUBLE_EQ(ObjectiveValue(s, Objective::kMeanLatency), 1.0);
  EXPECT_DOUBLE_EQ(ObjectiveValue(s, Objective::kP90Latency), 2.0);
  EXPECT_DOUBLE_EQ(ObjectiveValue(s, Objective::kIosPerOp), 3.0);
}

TEST(ClassicTunerTest, RecommendsClosedFormOptimum) {
  const SystemSetup setup = TinySetup();
  TunerOptions opts;
  ClassicTuner tuner(setup, opts);
  model::WorkloadSpec write_heavy{0.01, 0.01, 0.01, 0.97};
  const TuningConfig c = tuner.Recommend(write_heavy);
  EXPECT_LE(c.size_ratio, 5.0);  // writes want small T under leveling
  EXPECT_NEAR(c.mf_bits + c.mb_bits,
              static_cast<double>(setup.total_memory_bits), 1.0);
  // Nearly no point reads: nearly no bloom memory.
  EXPECT_LT(c.mf_bits / setup.num_entries, 4.0);
}

TEST(ClassicTunerTest, PointReadHeavyGetsBloomMemory) {
  const SystemSetup setup = TinySetup();
  TunerOptions opts;
  ClassicTuner tuner(setup, opts);
  model::WorkloadSpec read_heavy{0.5, 0.47, 0.02, 0.01};
  const TuningConfig c = tuner.Recommend(read_heavy);
  EXPECT_GT(c.mf_bits / setup.num_entries, 6.0);
}

TEST(MonkeyTunerTest, FixedConfiguration) {
  const SystemSetup setup = TinySetup();
  MonkeyTuner tuner(setup);
  const TuningConfig c = tuner.Recommend(Mixed());
  EXPECT_DOUBLE_EQ(c.size_ratio, 10.0);
  EXPECT_EQ(c.policy, lsm::CompactionPolicy::kLeveling);
  const TuningConfig c2 = tuner.Recommend(model::WorkloadSpec{0, 0, 0, 1});
  EXPECT_DOUBLE_EQ(c.size_ratio, c2.size_ratio);  // workload-independent
}

TEST(MonkeyTunerTest, CacheVariantAllocatesCache) {
  const SystemSetup setup = TinySetup();
  MonkeyTuner tuner(setup, /*use_cache=*/true);
  const TuningConfig c = tuner.Recommend(Mixed());
  EXPECT_GT(c.mc_bits, 0.0);
  EXPECT_NEAR(c.mf_bits + c.mb_bits + c.mc_bits,
              static_cast<double>(setup.total_memory_bits), 1.0);
}

TEST(CamalTunerTest, TrainCollectsDecoupledSamples) {
  const SystemSetup setup = TinySetup();
  TunerOptions opts;
  opts.model_kind = ModelKind::kPoly;
  opts.refine_rounds = 0;
  CamalTuner tuner(setup, opts);
  tuner.Train({Mixed()});
  // Two rounds (T, memory) x 3 samples each, plus at most one
  // default-anchor sample in the memory round.
  EXPECT_GE(tuner.samples().size(), 6u);
  EXPECT_LE(tuner.samples().size(), 7u);
  EXPECT_GT(tuner.sampling_cost_ns(), 0.0);
  EXPECT_EQ(tuner.tuned_configs().size(), 1u);
}

TEST(CamalTunerTest, RecommendationExhaustsMemoryBudget) {
  const SystemSetup setup = TinySetup();
  TunerOptions opts;
  opts.model_kind = ModelKind::kPoly;
  CamalTuner tuner(setup, opts);
  tuner.Train({Mixed()});
  const TuningConfig c = tuner.Recommend(Mixed());
  EXPECT_NEAR(c.mf_bits + c.mb_bits + c.mc_bits,
              static_cast<double>(setup.total_memory_bits), 1.0);
  EXPECT_GE(c.size_ratio, 2.0);
}

TEST(CamalTunerTest, McRoundAddsSamplesWhenEnabled) {
  const SystemSetup setup = TinySetup();
  TunerOptions opts;
  opts.model_kind = ModelKind::kPoly;
  opts.refine_rounds = 0;
  CamalTuner base_tuner(setup, opts);
  base_tuner.Train({Mixed()});
  opts.tune_mc = true;
  CamalTuner tuner(setup, opts);
  tuner.Train({Mixed()});
  // The Mc round adds samples_per_round more samples.
  EXPECT_EQ(tuner.samples().size(), base_tuner.samples().size() + 3);
}

TEST(CamalTunerTest, CheckpointCallbackFires) {
  const SystemSetup setup = TinySetup();
  TunerOptions opts;
  opts.model_kind = ModelKind::kPoly;
  CamalTuner tuner(setup, opts);
  int calls = 0;
  double last_cost = -1.0;
  tuner.SetCheckpointCallback([&](double cost) {
    ++calls;
    EXPECT_GT(cost, last_cost);
    last_cost = cost;
  });
  tuner.Train({Mixed(), model::WorkloadSpec{0.6, 0.2, 0.1, 0.1}});
  EXPECT_EQ(calls, 2);
}

TEST(CamalTunerTest, ExtrapolationTrainsAtSmallScale) {
  const SystemSetup setup = TinySetup();
  TunerOptions opts;
  opts.model_kind = ModelKind::kPoly;
  opts.extrapolation_factor = 4.0;
  CamalTuner tuner(setup, opts);
  tuner.Train({Mixed()});
  EXPECT_EQ(tuner.train_setup().num_entries, setup.num_entries / 4);
  // Samples were collected at the small scale...
  EXPECT_DOUBLE_EQ(tuner.samples()[0].sys.num_entries,
                   static_cast<double>(setup.num_entries / 4));
  // ...but recommendations are for the full scale.
  const TuningConfig c = tuner.Recommend(Mixed());
  EXPECT_NEAR(c.mf_bits + c.mb_bits + c.mc_bits,
              static_cast<double>(setup.total_memory_bits), 1.0);
}

TEST(CamalTunerTest, ExtrapolationCutsSamplingCost) {
  const SystemSetup setup = TinySetup();
  TunerOptions opts;
  opts.model_kind = ModelKind::kPoly;
  CamalTuner full(setup, opts);
  full.Train({Mixed()});
  opts.extrapolation_factor = 4.0;
  CamalTuner scaled(setup, opts);
  scaled.Train({Mixed()});
  EXPECT_LT(scaled.sampling_cost_ns(), full.sampling_cost_ns() / 2.0);
}

TEST(CamalTunerTest, KIndependentRoundAddsSamples) {
  const SystemSetup setup = TinySetup();
  TunerOptions opts;
  opts.model_kind = ModelKind::kPoly;
  opts.refine_rounds = 0;
  CamalTuner base_tuner(setup, opts);
  base_tuner.Train({Mixed()});
  opts.k_mode = KTuningMode::kIndependent;
  CamalTuner tuner(setup, opts);
  tuner.Train({Mixed()});
  EXPECT_EQ(tuner.samples().size(), base_tuner.samples().size() + 3);
  const TuningConfig c = tuner.Recommend(Mixed());
  EXPECT_GE(c.runs_per_level, 0);
}

TEST(CamalTunerTest, KCodependentSamplesJointly) {
  const SystemSetup setup = TinySetup();
  TunerOptions opts;
  opts.model_kind = ModelKind::kPoly;
  opts.refine_rounds = 0;
  opts.k_mode = KTuningMode::kCodependent;
  CamalTuner tuner(setup, opts);
  tuner.Train({Mixed()});
  // Joint (T, K) round samples 2x the per-round budget, then the memory
  // round adds 3-4 more.
  EXPECT_GE(tuner.samples().size(), 9u);
  EXPECT_LE(tuner.samples().size(), 10u);
}

TEST(CamalTunerTest, FileSizeRoundWhenEnabled) {
  const SystemSetup setup = TinySetup();
  TunerOptions opts;
  opts.model_kind = ModelKind::kPoly;
  opts.refine_rounds = 0;
  CamalTuner base_tuner(setup, opts);
  base_tuner.Train({Mixed()});
  opts.tune_file_size = true;
  CamalTuner tuner(setup, opts);
  tuner.Train({Mixed()});
  EXPECT_EQ(tuner.samples().size(), base_tuner.samples().size() + 3);
}

TEST(PlainAlTunerTest, RespectsBudget) {
  const SystemSetup setup = TinySetup();
  TunerOptions opts;
  opts.model_kind = ModelKind::kPoly;
  opts.budget_per_workload = 6;
  PlainAlTuner tuner(setup, opts);
  tuner.Train({Mixed()});
  EXPECT_EQ(tuner.samples().size(), 6u);
}

TEST(PlainAlTunerTest, AvoidsResamplingSamePoint) {
  const SystemSetup setup = TinySetup();
  TunerOptions opts;
  opts.model_kind = ModelKind::kPoly;
  opts.budget_per_workload = 8;
  PlainAlTuner tuner(setup, opts);
  tuner.Train({Mixed()});
  const auto& samples = tuner.samples();
  for (size_t i = 0; i < samples.size(); ++i) {
    for (size_t j = i + 1; j < samples.size(); ++j) {
      EXPECT_FALSE(SameConfig(samples[i].config, samples[j].config))
          << i << " vs " << j;
    }
  }
}

TEST(GridTunerTest, UniformCoverage) {
  const SystemSetup setup = TinySetup();
  TunerOptions opts;
  opts.model_kind = ModelKind::kPoly;
  opts.budget_per_workload = 9;
  GridTuner tuner(setup, opts);
  tuner.Train({Mixed()});
  EXPECT_EQ(tuner.samples().size(), 9u);
  // The grid spans the T range rather than clustering.
  double t_min = 1e9, t_max = 0;
  for (const Sample& s : tuner.samples()) {
    t_min = std::min(t_min, s.config.size_ratio);
    t_max = std::max(t_max, s.config.size_ratio);
  }
  EXPECT_LE(t_min, 3.0);
  EXPECT_GE(t_max, 10.0);
}

TEST(BayesTunerTest, RunsWithinBudgetAndFitsModel) {
  const SystemSetup setup = TinySetup();
  TunerOptions opts;
  opts.model_kind = ModelKind::kPoly;
  opts.budget_per_workload = 6;
  BayesOptTuner tuner(setup, opts);
  tuner.Train({Mixed()});
  EXPECT_EQ(tuner.samples().size(), 6u);
  EXPECT_TRUE(tuner.has_model());
  const TuningConfig c = tuner.Recommend(Mixed());
  EXPECT_GE(c.size_ratio, 2.0);
}

TEST(UncertaintyTest, ZeroRhoEqualsPlainRecommendation) {
  const SystemSetup setup = TinySetup();
  TunerOptions opts;
  opts.model_kind = ModelKind::kPoly;
  CamalTuner tuner(setup, opts);
  tuner.Train({Mixed()});
  util::Random rng(3);
  const TuningConfig plain = tuner.Recommend(Mixed());
  const TuningConfig robust =
      RecommendUnderUncertainty(tuner, Mixed(), 0.0, 10, &rng);
  EXPECT_DOUBLE_EQ(plain.size_ratio, robust.size_ratio);
}

TEST(UncertaintyTest, ProducesValidConfigUnderUncertainty) {
  const SystemSetup setup = TinySetup();
  TunerOptions opts;
  opts.model_kind = ModelKind::kPoly;
  CamalTuner tuner(setup, opts);
  tuner.Train({Mixed()});
  util::Random rng(3);
  const TuningConfig c =
      RecommendUnderUncertainty(tuner, Mixed(), 1.0, 8, &rng);
  EXPECT_GE(c.size_ratio, 2.0);
  EXPECT_GE(c.mb_bits, 0.0);
}

TEST(GroupSamplingTest, NeighborhoodShapes) {
  const auto pairs = JointTkNeighborhood(10.0, 2, 6, 40.0);
  EXPECT_EQ(pairs.size(), 6u);
  EXPECT_DOUBLE_EQ(pairs[0].first, 10.0);
  EXPECT_EQ(pairs[0].second, 2);
  for (const auto& [t, k] : pairs) {
    EXPECT_GE(t, 2.0);
    EXPECT_LE(t, 40.0);
    EXPECT_GE(k, 1);
    EXPECT_LE(k, 8);
  }
}

}  // namespace
}  // namespace camal::tune
