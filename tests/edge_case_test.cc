// Edge cases and failure-injection-style tests for the engine and tuners:
// empty structures, boundary keys, degenerate configurations, and repeated
// online reconfiguration under load.

#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "camal/camal_tuner.h"
#include "camal/evaluator.h"
#include "lsm/lsm_tree.h"
#include "lsm/monkey.h"
#include "model/optimum.h"
#include "util/random.h"

namespace camal {
namespace {

sim::DeviceConfig QuietDevice() {
  sim::DeviceConfig cfg;
  cfg.io_jitter_frac = 0.0;
  return cfg;
}

lsm::Options TinyOptions() {
  lsm::Options opts;
  opts.entry_bytes = 128;
  opts.buffer_bytes = 128 * 16;
  opts.size_ratio = 3.0;
  opts.bloom_bits = 10 * 2000;
  return opts;
}

TEST(EdgeCaseTest, EmptyTreeOperations) {
  sim::Device dev(QuietDevice());
  lsm::LsmTree tree(TinyOptions(), &dev);
  uint64_t value = 0;
  EXPECT_FALSE(tree.Get(1, &value));
  std::vector<lsm::Entry> out;
  EXPECT_EQ(tree.Scan(0, 10, &out), 0u);
  tree.FlushMemtable();  // no-op on empty memtable
  EXPECT_EQ(tree.DiskEntries(), 0u);
  EXPECT_EQ(tree.NumPopulatedLevels(), 0);
}

TEST(EdgeCaseTest, GetWithNullValuePointer) {
  sim::Device dev(QuietDevice());
  lsm::LsmTree tree(TinyOptions(), &dev);
  tree.Put(7, 70);
  EXPECT_TRUE(tree.Get(7, nullptr));
  EXPECT_FALSE(tree.Get(8, nullptr));
}

TEST(EdgeCaseTest, BoundaryKeys) {
  sim::Device dev(QuietDevice());
  lsm::LsmTree tree(TinyOptions(), &dev);
  const uint64_t max_key = std::numeric_limits<uint64_t>::max();
  tree.Put(0, 1);
  tree.Put(max_key, 2);
  tree.FlushMemtable();
  uint64_t value = 0;
  EXPECT_TRUE(tree.Get(0, &value));
  EXPECT_EQ(value, 1u);
  EXPECT_TRUE(tree.Get(max_key, &value));
  EXPECT_EQ(value, 2u);
  std::vector<lsm::Entry> out;
  EXPECT_EQ(tree.Scan(max_key, 5, &out), 1u);
}

TEST(EdgeCaseTest, DeleteNonexistentKeyIsHarmless) {
  sim::Device dev(QuietDevice());
  lsm::LsmTree tree(TinyOptions(), &dev);
  for (uint64_t k = 1; k <= 100; ++k) tree.Put(k, k);
  tree.Delete(100000);  // never inserted
  for (uint64_t k = 1; k <= 200; ++k) tree.Put(k + 1000, k);  // force flushes
  uint64_t value = 0;
  EXPECT_FALSE(tree.Get(100000, &value));
  EXPECT_TRUE(tree.Get(50, &value));
}

TEST(EdgeCaseTest, DeleteEverythingThenScan) {
  sim::Device dev(QuietDevice());
  lsm::LsmTree tree(TinyOptions(), &dev);
  for (uint64_t k = 1; k <= 300; ++k) tree.Put(k, k);
  for (uint64_t k = 1; k <= 300; ++k) tree.Delete(k);
  std::vector<lsm::Entry> out;
  EXPECT_EQ(tree.Scan(0, 500, &out), 0u);
  EXPECT_FALSE(tree.Get(150, nullptr));
}

TEST(EdgeCaseTest, ReinsertAfterDelete) {
  sim::Device dev(QuietDevice());
  lsm::LsmTree tree(TinyOptions(), &dev);
  for (uint64_t k = 1; k <= 200; ++k) tree.Put(k, 1);
  tree.Delete(42);
  tree.FlushMemtable();
  tree.Put(42, 99);
  uint64_t value = 0;
  ASSERT_TRUE(tree.Get(42, &value));
  EXPECT_EQ(value, 99u);
}

TEST(EdgeCaseTest, ScanZeroEntriesRequested) {
  sim::Device dev(QuietDevice());
  lsm::LsmTree tree(TinyOptions(), &dev);
  tree.Put(1, 1);
  std::vector<lsm::Entry> out;
  EXPECT_EQ(tree.Scan(0, 0, &out), 0u);
  EXPECT_TRUE(out.empty());
}

TEST(EdgeCaseTest, HeavyOverwriteSingleKey) {
  sim::Device dev(QuietDevice());
  lsm::LsmTree tree(TinyOptions(), &dev);
  for (uint64_t i = 0; i < 5000; ++i) tree.Put(7, i);
  uint64_t value = 0;
  ASSERT_TRUE(tree.Get(7, &value));
  EXPECT_EQ(value, 4999u);
  // Compaction must have collapsed the duplicates.
  EXPECT_LE(tree.DiskEntries(), 64u);
}

TEST(EdgeCaseTest, RepeatedReconfigurationUnderLoad) {
  sim::Device dev(QuietDevice());
  lsm::LsmTree tree(TinyOptions(), &dev);
  util::Random rng(3);
  std::vector<double> ratios = {2.0, 8.0, 3.0, 12.0, 2.0, 6.0};
  uint64_t key = 0;
  for (double t : ratios) {
    lsm::Options opts = TinyOptions();
    opts.size_ratio = t;
    opts.policy = rng.Bernoulli(0.5) ? lsm::CompactionPolicy::kLeveling
                                     : lsm::CompactionPolicy::kTiering;
    tree.Reconfigure(opts);
    for (int i = 0; i < 600; ++i) {
      ++key;
      tree.Put(key, key);
    }
  }
  // Everything written across all configurations is still readable.
  uint64_t value = 0;
  for (uint64_t probe = 1; probe <= key; probe += 97) {
    ASSERT_TRUE(tree.Get(probe, &value)) << "key " << probe;
    ASSERT_EQ(value, probe);
  }
}

TEST(EdgeCaseTest, ZeroBloomBudgetStillCorrect) {
  lsm::Options opts = TinyOptions();
  opts.bloom_bits = 0;
  sim::Device dev(QuietDevice());
  lsm::LsmTree tree(opts, &dev);
  for (uint64_t k = 1; k <= 1000; ++k) tree.Put(2 * k, k);
  uint64_t value = 0;
  EXPECT_TRUE(tree.Get(500, &value));
  EXPECT_FALSE(tree.Get(501, &value));
}

TEST(EdgeCaseTest, MinimalSizeRatioTwo) {
  lsm::Options opts = TinyOptions();
  opts.size_ratio = 2.0;
  sim::Device dev(QuietDevice());
  lsm::LsmTree tree(opts, &dev);
  for (uint64_t k = 1; k <= 3000; ++k) tree.Put(k * 3 % 8192, k);
  // A deep tree (T=2 grows levels fastest) still honors capacity.
  EXPECT_GE(tree.NumPopulatedLevels(), 4);
  const auto counts = tree.LevelEntryCounts();
  for (size_t i = 0; i < counts.size(); ++i) {
    EXPECT_LE(static_cast<double>(counts[i]),
              opts.LevelCapacityEntries(static_cast<int>(i)) + 1e-9);
  }
}

TEST(EdgeCaseTest, MonkeyAllocateSingleLevel) {
  const auto bpk = lsm::MonkeyAllocate(50000.0, {5000});
  EXPECT_NEAR(bpk[0], 10.0, 0.05);
}

TEST(EdgeCaseTest, MonkeyAllocateHugeBudgetSaturates) {
  // With an absurd budget the solver must not loop or produce NaN.
  const auto bpk = lsm::MonkeyAllocate(1e15, {100, 1000});
  EXPECT_GT(bpk[0], 20.0);
  EXPECT_TRUE(std::isfinite(bpk[0]));
  EXPECT_TRUE(std::isfinite(bpk[1]));
}

TEST(EdgeCaseTest, OptimalMfHandlesPurePointReads) {
  model::SystemParams p;
  model::CostModel cm(p);
  model::WorkloadSpec w{0.5, 0.5, 0.0, 0.0};
  // With no writes/ranges, everything but the minimum buffer goes to
  // filters.
  const double mf = model::OptimalMfBitsLeveling(w, cm, 10.0);
  EXPECT_NEAR(mf, p.total_memory_bits - model::MinBufferBits(p),
              p.total_memory_bits * 0.01);
}

TEST(EdgeCaseTest, EvaluatorTinyInstance) {
  tune::SystemSetup setup;
  setup.num_entries = 600;
  setup.total_memory_bits = 16 * 600;
  setup.train_ops = 100;
  tune::Evaluator ev(setup);
  const tune::Measurement m = ev.Measure(
      model::WorkloadSpec{0.25, 0.25, 0.25, 0.25},
      tune::MonkeyDefaultConfig(setup), 100, 1);
  EXPECT_GT(m.mean_latency_ns, 0.0);
  EXPECT_GT(m.total_cost_ns, 0.0);
}

TEST(EdgeCaseTest, CamalRecommendUnseenWorkloadUsesModel) {
  tune::SystemSetup setup;
  setup.num_entries = 5000;
  setup.total_memory_bits = 16 * 5000;
  setup.train_ops = 300;
  tune::TunerOptions opts;
  opts.model_kind = tune::ModelKind::kPoly;
  opts.refine_rounds = 0;
  tune::CamalTuner tuner(setup, opts);
  tuner.Train({model::WorkloadSpec{0.25, 0.25, 0.25, 0.25}});
  // A workload never trained on still yields a budget-feasible config.
  const tune::TuningConfig c =
      tuner.Recommend(model::WorkloadSpec{0.7, 0.1, 0.1, 0.1});
  EXPECT_GE(c.size_ratio, 2.0);
  EXPECT_NEAR(c.mf_bits + c.mb_bits + c.mc_bits,
              static_cast<double>(setup.total_memory_bits), 1.0);
}

TEST(EdgeCaseTest, TuningConfigHugeCacheClampsFilter) {
  tune::SystemSetup setup;
  tune::TuningConfig c;
  c.size_ratio = 4.0;
  c.mc_bits = 0.9 * setup.total_memory_bits;
  c.mf_bits = 0.0;
  c.mb_bits = 0.1 * setup.total_memory_bits;
  const lsm::Options opts = c.ToOptions(setup);
  EXPECT_TRUE(opts.Validate().ok());
  EXPECT_GT(opts.block_cache_bytes, 0u);
}

}  // namespace
}  // namespace camal
