#include <vector>

#include <gtest/gtest.h>

#include "lsm/lsm_tree.h"
#include "workload/executor.h"
#include "workload/generator.h"
#include "workload/shift_detector.h"
#include "workload/tables.h"

namespace camal::workload {
namespace {

TEST(TablesTest, TrainingWorkloadsCountAndNormalization) {
  const auto workloads = TrainingWorkloads();
  ASSERT_EQ(workloads.size(), 15u);
  for (const auto& w : workloads) {
    EXPECT_NEAR(w.Total(), 1.0, 1e-9);
  }
  // Spot checks against Table 1.
  EXPECT_NEAR(workloads[0].v, 0.25, 1e-9);
  EXPECT_NEAR(workloads[1].v, 0.97, 1e-9);
  EXPECT_NEAR(workloads[4].w, 0.97, 1e-9);
  EXPECT_NEAR(workloads[11].v, 0.33, 1e-2);
  EXPECT_NEAR(workloads[14].v, 0.01, 1e-2);
}

TEST(TablesTest, ShiftingWorkloadsCountAndShape) {
  const auto workloads = ShiftingWorkloads();
  ASSERT_EQ(workloads.size(), 24u);
  for (const auto& w : workloads) EXPECT_NEAR(w.Total(), 1.0, 1e-9);
  // Columns 3, 9, 15, 21 are the 91% peaks of v, r, q, w respectively.
  EXPECT_NEAR(workloads[2].v, 0.91, 1e-9);
  EXPECT_NEAR(workloads[8].r, 0.91, 1e-9);
  EXPECT_NEAR(workloads[14].q, 0.91, 1e-9);
  EXPECT_NEAR(workloads[20].w, 0.91, 1e-9);
}

TEST(TablesTest, ShiftingWorkloadsChangeGradually) {
  const auto workloads = ShiftingWorkloads();
  for (size_t i = 1; i < workloads.size(); ++i) {
    const double jump = std::fabs(workloads[i].v - workloads[i - 1].v) +
                        std::fabs(workloads[i].r - workloads[i - 1].r) +
                        std::fabs(workloads[i].q - workloads[i - 1].q) +
                        std::fabs(workloads[i].w - workloads[i - 1].w);
    EXPECT_LE(jump, 0.61) << "between workloads " << i - 1 << " and " << i;
  }
}

TEST(KeySpaceTest, KeysAreEvenAndUnique) {
  KeySpace keys(1000, 7);
  std::vector<bool> seen(4002, false);
  for (uint64_t k : keys.keys()) {
    EXPECT_EQ(k % 2, 0u);
    ASSERT_LT(k, seen.size());
    EXPECT_FALSE(seen[k]);
    seen[k] = true;
  }
}

TEST(KeySpaceTest, MissingKeysAreOdd) {
  KeySpace keys(100, 7);
  util::Random rng(3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(keys.MissingKey(&rng) % 2, 1u);
}

TEST(KeySpaceTest, AppendGrowsPopulation) {
  KeySpace keys(10, 7);
  const uint64_t added = keys.AppendKey();
  EXPECT_EQ(keys.num_keys(), 11u);
  EXPECT_EQ(added % 2, 0u);
  EXPECT_EQ(keys.KeyAt(10), added);
}

TEST(KeySpaceTest, ShuffleIsDeterministicPerSeed) {
  KeySpace a(100, 42), b(100, 42), c(100, 43);
  EXPECT_EQ(a.keys(), b.keys());
  EXPECT_NE(a.keys(), c.keys());
}

TEST(GeneratorTest, MixMatchesSpec) {
  KeySpace keys(1000, 1);
  model::WorkloadSpec spec{0.4, 0.3, 0.2, 0.1};
  OperationGenerator gen(spec, &keys, GeneratorConfig{}, 5);
  int counts[5] = {0, 0, 0, 0, 0};
  const int n = 20000;
  for (int i = 0; i < n; ++i) ++counts[static_cast<int>(gen.Next().type)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.4, 0.02);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.02);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.2, 0.02);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.1, 0.02);
  EXPECT_EQ(counts[4], 0);  // no deletes by default
}

TEST(GeneratorTest, DeleteFractionRespected) {
  KeySpace keys(1000, 1);
  model::WorkloadSpec spec{0.0, 0.0, 0.0, 1.0};
  spec.delete_frac = 0.25;
  OperationGenerator gen(spec, &keys, GeneratorConfig{}, 5);
  int deletes = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    deletes += gen.Next().type == OpType::kDelete;
  }
  EXPECT_NEAR(deletes / static_cast<double>(n), 0.25, 0.02);
}

TEST(GeneratorTest, ZeroLookupsUseMissingKeys) {
  KeySpace keys(500, 1);
  model::WorkloadSpec spec{1.0, 0.0, 0.0, 0.0};
  OperationGenerator gen(spec, &keys, GeneratorConfig{}, 5);
  for (int i = 0; i < 200; ++i) {
    const Operation op = gen.Next();
    EXPECT_EQ(op.type, OpType::kZeroResultLookup);
    EXPECT_EQ(op.key % 2, 1u);
  }
}

TEST(GeneratorTest, SkewConcentratesAccesses) {
  KeySpace keys(1000, 1);
  model::WorkloadSpec spec{0.0, 1.0, 0.0, 0.0};
  spec.skew = 0.9;
  OperationGenerator gen(spec, &keys, GeneratorConfig{}, 5);
  std::map<uint64_t, int> hist;
  const int n = 10000;
  for (int i = 0; i < n; ++i) ++hist[gen.Next().key];
  int max_hits = 0;
  for (const auto& [k, c] : hist) max_hits = std::max(max_hits, c);
  // Uniform would put ~10 hits on each key; skew concentrates far more.
  EXPECT_GT(max_hits, 300);
}

TEST(GeneratorTest, InsertNewKeysGrowsKeySpace) {
  KeySpace keys(100, 1);
  model::WorkloadSpec spec{0.0, 0.0, 0.0, 1.0};
  GeneratorConfig cfg;
  cfg.insert_new_keys = true;
  OperationGenerator gen(spec, &keys, cfg, 5);
  for (int i = 0; i < 50; ++i) gen.Next();
  EXPECT_EQ(keys.num_keys(), 150u);
}

TEST(ExecutorTest, RunsWorkloadAndFindsKeys) {
  sim::DeviceConfig dev_cfg;
  dev_cfg.io_jitter_frac = 0.0;
  sim::Device device(dev_cfg);
  lsm::Options opts;
  opts.entry_bytes = 128;
  opts.buffer_bytes = 128 * 64;
  opts.bloom_bits = 10 * 3000;
  lsm::LsmTree tree(opts, &device);
  KeySpace keys(3000, 11);
  BulkLoad(&tree, keys);

  model::WorkloadSpec spec{0.3, 0.5, 0.1, 0.1};
  ExecutorConfig cfg;
  cfg.num_ops = 2000;
  cfg.seed = 3;
  const ExecutionResult result = Execute(&tree, spec, cfg, &keys);
  EXPECT_EQ(result.num_ops, 2000u);
  EXPECT_GT(result.total_ns, 0.0);
  // Every non-zero lookup must find its key; zero lookups must all miss.
  EXPECT_NEAR(static_cast<double>(result.lookups_found) /
                  static_cast<double>(result.lookups_found +
                                      result.lookups_missed),
              0.5 / 0.8, 0.05);
}

TEST(ExecutorTest, LatencySketchMatchesTotals) {
  sim::DeviceConfig dev_cfg;
  dev_cfg.io_jitter_frac = 0.0;
  sim::Device device(dev_cfg);
  lsm::Options opts;
  opts.entry_bytes = 128;
  opts.buffer_bytes = 128 * 64;
  lsm::LsmTree tree(opts, &device);
  KeySpace keys(500, 11);
  BulkLoad(&tree, keys);
  ExecutorConfig cfg;
  cfg.num_ops = 500;
  ExecutionResult result =
      Execute(&tree, model::WorkloadSpec{0.25, 0.25, 0.25, 0.25}, cfg, &keys);
  EXPECT_EQ(result.latency_ns.count(), 500u);
  EXPECT_NEAR(result.latency_ns.Mean() * 500.0, result.total_ns, 1.0);
}

TEST(ShiftDetectorTest, FirstWindowTriggersInitialTuning) {
  ShiftDetector det(100, 0.1);
  bool triggered = false;
  for (int i = 0; i < 100; ++i) {
    triggered = det.Record(OpType::kWrite);
  }
  EXPECT_TRUE(triggered);
  EXPECT_EQ(det.reconfigurations(), 1u);
}

TEST(ShiftDetectorTest, StableWorkloadNoRetrigger) {
  ShiftDetector det(100, 0.1);
  for (int w = 0; w < 5; ++w) {
    bool triggered = false;
    for (int i = 0; i < 100; ++i) {
      triggered = det.Record(i % 2 == 0 ? OpType::kWrite
                                        : OpType::kNonZeroResultLookup);
    }
    if (w == 0) {
      EXPECT_TRUE(triggered);
    } else {
      EXPECT_FALSE(triggered);
    }
  }
  EXPECT_EQ(det.reconfigurations(), 1u);
}

TEST(ShiftDetectorTest, LargeShiftTriggers) {
  ShiftDetector det(100, 0.1);
  for (int i = 0; i < 100; ++i) det.Record(OpType::kWrite);  // reference: 100% w
  bool triggered = false;
  for (int i = 0; i < 100; ++i) {
    triggered = det.Record(OpType::kRangeLookup);  // now 100% q
  }
  EXPECT_TRUE(triggered);
  EXPECT_EQ(det.reconfigurations(), 2u);
  EXPECT_NEAR(det.LastWindowSpec().q, 1.0, 1e-9);
}

TEST(ShiftDetectorTest, SmallShiftBelowTauIgnored) {
  ShiftDetector det(100, 0.2);
  for (int i = 0; i < 100; ++i) {
    det.Record(i < 50 ? OpType::kWrite : OpType::kNonZeroResultLookup);
  }
  // Shift by 10% < tau=20%: no trigger.
  bool triggered = false;
  for (int i = 0; i < 100; ++i) {
    triggered = det.Record(i < 60 ? OpType::kWrite
                                  : OpType::kNonZeroResultLookup);
  }
  EXPECT_FALSE(triggered);
}

TEST(ShiftDetectorTest, DeletesCountAsWrites) {
  ShiftDetector det(10, 0.1);
  for (int i = 0; i < 10; ++i) det.Record(OpType::kDelete);
  EXPECT_NEAR(det.LastWindowSpec().w, 1.0, 1e-9);
}

TEST(GeneratorTest, ShardSkewConcentratesTrafficOnHotShards) {
  const size_t num_shards = 4;
  KeySpace keys(8000, 42);
  GeneratorConfig cfg;
  cfg.shard_skew = 1.0;
  cfg.num_shards = num_shards;
  OperationGenerator gen(model::WorkloadSpec{0.2, 0.3, 0.2, 0.3}, &keys, cfg,
                         /*seed=*/9);
  std::vector<size_t> hits(num_shards, 0);
  for (int i = 0; i < 8000; ++i) {
    const Operation op = gen.Next();
    if (op.type == OpType::kRangeLookup) continue;  // probes every shard
    ++hits[util::Mix64(op.key) % num_shards];
  }
  // Zipf(1.0) over shard index: strictly decreasing, and the hottest
  // shard must see several times the coldest's traffic.
  for (size_t s = 1; s < num_shards; ++s) {
    EXPECT_LT(hits[s], hits[s - 1]) << "shard " << s;
  }
  EXPECT_GT(hits[0], 3 * hits[num_shards - 1]);
}

TEST(GeneratorTest, ZeroShardSkewIsBitIdenticalToUnbiasedStream) {
  KeySpace keys_a(2000, 42);
  KeySpace keys_b(2000, 42);
  GeneratorConfig plain;
  GeneratorConfig zero_skew;
  zero_skew.shard_skew = 0.0;
  zero_skew.num_shards = 8;  // must be inert while skew is 0
  OperationGenerator gen_a(model::WorkloadSpec{0.2, 0.3, 0.2, 0.3}, &keys_a,
                           plain, /*seed=*/5);
  OperationGenerator gen_b(model::WorkloadSpec{0.2, 0.3, 0.2, 0.3}, &keys_b,
                           zero_skew, /*seed=*/5);
  for (int i = 0; i < 3000; ++i) {
    const Operation a = gen_a.Next();
    const Operation b = gen_b.Next();
    ASSERT_EQ(static_cast<int>(a.type), static_cast<int>(b.type)) << i;
    ASSERT_EQ(a.key, b.key) << i;
    ASSERT_EQ(a.value, b.value) << i;
  }
}

}  // namespace
}  // namespace camal::workload
