// Tests for the memoized Zipf harmonic normalizer and the rank sampler:
// the memo must be bitwise invisible (cached and fresh computations
// identical), correct at million-element domains, and deterministic.

#include "util/zipf.h"

#include <cmath>
#include <cstdint>
#include <vector>

#include "gtest/gtest.h"
#include "util/random.h"

namespace camal::util {
namespace {

/// The reference: the exact floating-point operation sequence
/// HarmonicZeta promises — ascending adds of 1/i^theta starting from 0.
double ReferenceZeta(uint64_t n, double theta) {
  double sum = 0.0;
  for (uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

TEST(HarmonicZetaTest, MatchesReferenceAtSmallN) {
  for (const double theta : {0.0, 0.3, 0.5, 0.99}) {
    for (const uint64_t n : {uint64_t{1}, uint64_t{2}, uint64_t{17},
                             uint64_t{1000}}) {
      EXPECT_EQ(HarmonicZeta(n, theta), ReferenceZeta(n, theta))
          << "n=" << n << " theta=" << theta;
    }
  }
}

TEST(HarmonicZetaTest, CheckpointResumeIsBitwiseIdenticalToFreshLoop) {
  // Seed checkpoints in an adversarial order, then ask for values between
  // and past them: every answer must be bitwise the fresh-loop result, no
  // matter which checkpoint the computation resumed from.
  const double theta = 0.77;
  HarmonicZeta(10'000, theta);
  HarmonicZeta(100, theta);
  HarmonicZeta(50'000, theta);
  for (const uint64_t n : {uint64_t{99}, uint64_t{100}, uint64_t{101},
                           uint64_t{9'999}, uint64_t{10'001},
                           uint64_t{25'000}, uint64_t{50'000},
                           uint64_t{60'000}}) {
    EXPECT_EQ(HarmonicZeta(n, theta), ReferenceZeta(n, theta)) << "n=" << n;
  }
}

TEST(HarmonicZetaTest, MillionElementTailIsExact) {
  // The memoization exists for exactly this regime: million-tenant
  // domains. Extending 999k -> 1M must append only the 1000-term tail yet
  // produce the bitwise full-loop sum.
  const double theta = 0.99;
  const uint64_t kMillion = 1'000'000;
  HarmonicZeta(kMillion - 1000, theta);  // checkpoint just below
  const double extended = HarmonicZeta(kMillion, theta);
  EXPECT_EQ(extended, ReferenceZeta(kMillion, theta));
  // Sanity on the magnitude: zeta(1e6, 0.99) is a slowly diverging sum,
  // comfortably between its integral bounds.
  EXPECT_GT(extended, 1.0);
  EXPECT_LT(extended, 1e6);
  // Asking again is a pure cache hit and must return the identical bits.
  EXPECT_EQ(HarmonicZeta(kMillion, theta), extended);
}

TEST(HarmonicZetaTest, ThetaKeysAreIndependent) {
  const uint64_t n = 4096;
  const double a = HarmonicZeta(n, 0.5);
  const double b = HarmonicZeta(n, 0.6);
  EXPECT_EQ(a, ReferenceZeta(n, 0.5));
  EXPECT_EQ(b, ReferenceZeta(n, 0.6));
  EXPECT_NE(a, b);
}

TEST(ZipfGeneratorTest, DeterministicAcrossInstancesAndCacheState) {
  // Two generators with the same parameters — one constructed after the
  // normalizer cache is warm, one effectively warming it — must sample
  // identical rank sequences from identical rng streams.
  const uint64_t n = 1'000'000;
  ZipfGenerator first(n, 0.8);
  ZipfGenerator second(n, 0.8);
  Random rng_a(123);
  Random rng_b(123);
  for (int i = 0; i < 2000; ++i) {
    ASSERT_EQ(first.Next(&rng_a), second.Next(&rng_b)) << "draw " << i;
  }
}

TEST(ZipfGeneratorTest, LargeDomainRanksInBoundsAndSkewed) {
  const uint64_t n = 1'000'000;
  ZipfGenerator zipf(n, 0.9);
  Random rng(7);
  uint64_t head_hits = 0;  // ranks in the hottest 1% of the domain
  const int kDraws = 20'000;
  for (int i = 0; i < kDraws; ++i) {
    const uint64_t rank = zipf.Next(&rng);
    ASSERT_LT(rank, n);
    if (rank < n / 100) ++head_hits;
  }
  // Under uniform sampling the hottest 1% would see ~1% of draws; at
  // theta 0.9 it concentrates the majority.
  EXPECT_GT(head_hits, kDraws / 2);
}

TEST(ZipfGeneratorTest, ThetaZeroIsUniformPassThrough) {
  const uint64_t n = 1024;
  ZipfGenerator zipf(n, 0.0);
  Random rng(99);
  Random ref(99);
  for (int i = 0; i < 500; ++i) {
    ASSERT_EQ(zipf.Next(&rng), ref.Uniform(n));
  }
}

}  // namespace
}  // namespace camal::util
