// serve::Gateway: overload determinism (a fixed arrival trace produces
// identical admit/shed decisions and bit-identical completions at any
// engine pool size), exact token-bucket accounting, the guarantee that
// shed requests never reach the engine, producer-side concurrency safety
// (run under TSan in CI), the typed BatchEvent surface, the arbiter
// riding gateway batch boundaries, SystemSetup::Validate, and the
// Evaluator's gateway serving mode.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "camal/evaluator.h"
#include "camal/memory_arbiter.h"
#include "camal/sample.h"
#include "engine/sharded_engine.h"
#include "serve/gateway.h"
#include "util/random.h"
#include "util/thread_pool.h"
#include "workload/executor.h"
#include "workload/generator.h"

namespace camal::serve {
namespace {

tune::SystemSetup SmallSetup(size_t shards = 4) {
  tune::SystemSetup setup;
  setup.num_entries = 4000;
  setup.total_memory_bits = 16 * 4000;
  setup.num_shards = shards;
  return setup;
}

std::unique_ptr<engine::ShardedEngine> MakeLoadedEngine(
    const tune::SystemSetup& setup, const workload::KeySpace& keys) {
  auto eng = std::make_unique<engine::ShardedEngine>(
      setup.num_shards, tune::MonkeyDefaultConfig(setup).ToOptions(setup),
      setup.MakeDeviceConfig());
  workload::BulkLoad(eng.get(), keys);
  return eng;
}

struct TraceEntry {
  uint32_t tenant = 0;
  engine::Op op;
  uint64_t arrival_ns = 0;
};

// A bursty trace that overloads the gateway enough to shed: `gap_ns`
// between ops inside a burst, a long idle between bursts.
std::vector<TraceEntry> MakeTrace(const engine::StorageEngine& eng,
                                  workload::KeySpace* keys, size_t num_ops,
                                  uint64_t gap_ns) {
  workload::GeneratorConfig gen_cfg;
  gen_cfg.scan_len = 8;
  workload::OperationGenerator gen(model::WorkloadSpec{0.2, 0.3, 0.2, 0.3},
                                   keys, gen_cfg, /*seed=*/9);
  std::vector<TraceEntry> trace;
  uint64_t t = 0;
  for (size_t i = 0; i < num_ops; ++i) {
    t += gap_ns;
    if ((i + 1) % 64 == 0) t += gap_ns * 200;
    TraceEntry e;
    e.op = workload::ToEngineOp(gen.Next());
    e.tenant = static_cast<uint32_t>(eng.ShardIndex(e.op.key));
    e.arrival_ns = t;
    trace.push_back(e);
  }
  return trace;
}

struct Replay {
  std::vector<AdmitStatus> statuses;
  std::vector<Completion> completions;
  GatewayStats stats;
};

Replay ReplayTrace(Gateway* gw, const std::vector<TraceEntry>& trace) {
  Replay out;
  for (const TraceEntry& e : trace) {
    out.statuses.push_back(gw->Submit(e.tenant, e.op, e.arrival_ns).status);
  }
  gw->Flush();
  gw->PollCompletions(&out.completions);
  out.stats = gw->StatsSnapshot();
  return out;
}

TEST(GatewayTest, FixedTraceIsDeterministicAtAnyEnginePoolSize) {
  const tune::SystemSetup setup = SmallSetup();
  workload::KeySpace keys(setup.num_entries, setup.seed);

  GatewayConfig gcfg;
  gcfg.num_tenants = setup.num_shards;
  gcfg.max_queue_depth = 16;

  // Build the trace once against a throwaway engine (ShardIndex is a pure
  // function of (key, num_shards), identical across instances).
  auto trace_eng = MakeLoadedEngine(setup, keys);
  const std::vector<TraceEntry> trace =
      MakeTrace(*trace_eng, &keys, 3000, 50);

  auto serial_eng = MakeLoadedEngine(setup, keys);
  Gateway serial_gw(serial_eng.get(), gcfg);
  const Replay serial = ReplayTrace(&serial_gw, trace);

  util::ThreadPool pool(4);
  auto pooled_eng = MakeLoadedEngine(setup, keys);
  pooled_eng->set_pool(&pool);
  Gateway pooled_gw(pooled_eng.get(), gcfg);
  const Replay pooled = ReplayTrace(&pooled_gw, trace);

  // The overload policy actually engaged (otherwise this test proves
  // nothing about shed determinism)...
  EXPECT_GT(serial.stats.shed(), 0u);
  // ...and every decision and attribution is bit-identical.
  ASSERT_EQ(serial.statuses.size(), pooled.statuses.size());
  EXPECT_EQ(serial.statuses, pooled.statuses);
  ASSERT_EQ(serial.completions.size(), pooled.completions.size());
  for (size_t i = 0; i < serial.completions.size(); ++i) {
    const Completion& a = serial.completions[i];
    const Completion& b = pooled.completions[i];
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.tenant, b.tenant);
    EXPECT_EQ(a.arrival_ns, b.arrival_ns);
    EXPECT_EQ(a.queue_ns, b.queue_ns);      // bit-exact, no tolerance
    EXPECT_EQ(a.service_ns, b.service_ns);  // bit-exact, no tolerance
    EXPECT_EQ(a.result.ios, b.result.ios);
    EXPECT_EQ(a.result.found, b.result.found);
  }
  EXPECT_EQ(serial.stats.admitted, pooled.stats.admitted);
  EXPECT_EQ(serial.stats.shed_queue, pooled.stats.shed_queue);
  EXPECT_EQ(serial.stats.total_ios, pooled.stats.total_ios);
  EXPECT_EQ(serial_gw.engine_free_ns(), pooled_gw.engine_free_ns());
}

TEST(GatewayTest, TokenBucketAccountingIsExact) {
  const tune::SystemSetup setup = SmallSetup(1);
  workload::KeySpace keys(setup.num_entries, setup.seed);
  auto eng = MakeLoadedEngine(setup, keys);

  GatewayConfig gcfg;
  gcfg.num_tenants = 1;
  gcfg.admission_control = false;  // isolate the rate limit
  gcfg.rate_limit_ops_per_sec = 1e6;  // exactly 1000 ns per token
  gcfg.rate_limit_burst = 4;          // 4000 ns of initial credit
  Gateway gw(eng.get(), gcfg);

  // Arrivals every 250 ns: tokens refill at 1/4 of the demand rate, so in
  // the long run exactly 1 in 4 requests is admitted. Mirror the integer
  // arithmetic exactly and expect a perfect match, op by op.
  uint64_t credit = 4000, last = 0;
  const uint64_t kCap = 4000, kCost = 1000;
  uint64_t expect_admitted = 0;
  const size_t kOps = 1000;
  uint64_t actual_admitted = 0;
  for (size_t i = 0; i < kOps; ++i) {
    const uint64_t now = 250 * static_cast<uint64_t>(i);
    bool expect_admit = false;
    if (now > last) {
      const uint64_t delta = now - last;
      credit = delta >= kCap - credit ? kCap : credit + delta;
      last = now;
    }
    if (credit >= kCost) {
      credit -= kCost;
      expect_admit = true;
      ++expect_admitted;
    }
    engine::Op op;
    op.kind = engine::OpKind::kGet;
    op.key = keys.KeyAt(i % keys.num_keys());
    const SubmitResult r = gw.Submit(0, op, now);
    EXPECT_EQ(r.status == AdmitStatus::kAdmitted, expect_admit)
        << "op " << i << " at t=" << now;
    if (r.status == AdmitStatus::kAdmitted) ++actual_admitted;
  }
  gw.Flush();
  // Hand computation: 4 burst tokens + floor(249750/1000) refilled - the
  // first op consuming at t=0... net: 1 admit per 1000 ns of elapsed time
  // plus the burst, so 250 + 4 admits over 999 * 250 ns.
  EXPECT_EQ(actual_admitted, expect_admitted);
  EXPECT_EQ(actual_admitted, 253u);
  const GatewayStats stats = gw.StatsSnapshot();
  EXPECT_EQ(stats.submitted, kOps);
  EXPECT_EQ(stats.admitted, actual_admitted);
  EXPECT_EQ(stats.shed_rate_limited, kOps - actual_admitted);
  EXPECT_EQ(stats.shed_queue, 0u);
  EXPECT_EQ(stats.completed, actual_admitted);
}

// Captures every dispatched batch's engine ops (copies: event buffers are
// only valid during the callback).
class BatchRecorder : public workload::BatchObserver {
 public:
  void OnBatchEvent(engine::StorageEngine* /*engine*/,
                    const workload::BatchEvent& event) override {
    batches_.emplace_back(event.engine_ops, event.engine_ops + event.count);
    last_event_ops_null_ = event.ops == nullptr;
    num_queues_ = event.num_queues;
    ++events_;
  }

  const std::vector<std::vector<engine::Op>>& batches() const {
    return batches_;
  }
  size_t events() const { return events_; }
  bool last_event_ops_null() const { return last_event_ops_null_; }
  size_t num_queues() const { return num_queues_; }

 private:
  std::vector<std::vector<engine::Op>> batches_;
  size_t events_ = 0;
  bool last_event_ops_null_ = false;
  size_t num_queues_ = 0;
};

TEST(GatewayTest, RejectedRequestsNeverReachTheEngine) {
  const tune::SystemSetup setup = SmallSetup();
  workload::KeySpace keys(setup.num_entries, setup.seed);
  auto eng = MakeLoadedEngine(setup, keys);
  const std::vector<TraceEntry> trace = MakeTrace(*eng, &keys, 2000, 20);

  GatewayConfig gcfg;
  gcfg.num_tenants = setup.num_shards;
  gcfg.max_queue_depth = 8;  // tight bound: lots of shedding
  Gateway gw(eng.get(), gcfg);
  BatchRecorder recorder;
  gw.set_observer(&recorder);
  const Replay replay = ReplayTrace(&gw, trace);
  ASSERT_GT(replay.stats.shed(), 0u);

  // Exactly the admitted ops were dispatched...
  size_t dispatched = 0;
  for (const auto& batch : recorder.batches()) dispatched += batch.size();
  EXPECT_EQ(dispatched, replay.stats.admitted);
  EXPECT_EQ(replay.completions.size(), replay.stats.admitted);

  // ...and replaying those batches on a second, identically built engine
  // reproduces the first engine's cost clocks and counters bit-exactly:
  // the shed requests left no trace in the engine.
  auto replay_eng = MakeLoadedEngine(setup, keys);
  std::vector<engine::OpResult> results;
  for (const auto& batch : recorder.batches()) {
    results.resize(batch.size());
    replay_eng->ExecuteOps(batch.data(), batch.size(), results.data());
  }
  const sim::DeviceSnapshot a = eng->CostSnapshot();
  const sim::DeviceSnapshot b = replay_eng->CostSnapshot();
  EXPECT_EQ(a.block_reads, b.block_reads);
  EXPECT_EQ(a.block_writes, b.block_writes);
  EXPECT_EQ(a.elapsed_ns, b.elapsed_ns);  // bit-exact
  EXPECT_EQ(eng->TotalEntries(), replay_eng->TotalEntries());
  const engine::EngineCounters ca = eng->AggregateCounters();
  const engine::EngineCounters cb = replay_eng->AggregateCounters();
  EXPECT_EQ(ca.flushes, cb.flushes);
  EXPECT_EQ(ca.merges, cb.merges);
  EXPECT_EQ(ca.compaction_block_reads, cb.compaction_block_reads);
  EXPECT_EQ(ca.compaction_block_writes, cb.compaction_block_writes);
}

TEST(GatewayTest, ConcurrentProducersConserveRequestAccounting) {
  const tune::SystemSetup setup = SmallSetup();
  workload::KeySpace keys(setup.num_entries, setup.seed);
  auto eng = MakeLoadedEngine(setup, keys);

  GatewayConfig gcfg;
  gcfg.num_tenants = setup.num_shards;
  gcfg.max_queue_depth = 12;
  Gateway gw(eng.get(), gcfg);

  // 4 producers, each with its own generator stream and its own monotone
  // arrival clock, submitting concurrently (TSan covers this test in CI).
  constexpr int kProducers = 4;
  constexpr size_t kOpsPerProducer = 1500;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      workload::GeneratorConfig gen_cfg;
      gen_cfg.scan_len = 8;
      workload::OperationGenerator gen(
          model::WorkloadSpec{0.2, 0.3, 0.2, 0.3}, &keys, gen_cfg,
          /*seed=*/100 + p);
      uint64_t t = static_cast<uint64_t>(p);
      for (size_t i = 0; i < kOpsPerProducer; ++i) {
        t += 40;
        const engine::Op op = workload::ToEngineOp(gen.Next());
        gw.Submit(static_cast<uint32_t>(eng->ShardIndex(op.key)), op, t);
      }
    });
  }
  for (std::thread& t : producers) t.join();
  gw.Flush();

  std::vector<Completion> completions;
  gw.PollCompletions(&completions);
  const GatewayStats stats = gw.StatsSnapshot();
  EXPECT_EQ(stats.submitted, kProducers * kOpsPerProducer);
  EXPECT_EQ(stats.submitted, stats.admitted + stats.shed());
  EXPECT_EQ(stats.completed, stats.admitted);
  EXPECT_EQ(completions.size(), stats.admitted);
  // The admission bound held at every tenant, at all times.
  EXPECT_LE(stats.max_queue_depth, gcfg.max_queue_depth);
  for (uint32_t t = 0; t < gcfg.num_tenants; ++t) {
    EXPECT_LE(gw.TenantStats(t).max_queue_depth, gcfg.max_queue_depth);
    EXPECT_EQ(gw.QueueDepth(t), 0u);  // Flush drained everything
  }
}

// Counts executor-driven events and checks their shape.
class EventShapeChecker : public workload::BatchHook {
 public:
  void OnBatch(engine::StorageEngine*, const workload::Operation*,
               size_t) override {
    ++legacy_calls_;
  }
  void OnBatchEvent(engine::StorageEngine* engine,
                    const workload::BatchEvent& event) override {
    EXPECT_EQ(event.batch_index, events_);  // consecutive from 0
    EXPECT_NE(event.engine_ops, nullptr);
    EXPECT_NE(event.results, nullptr);
    uint64_t kinds = 0;
    for (uint64_t k : event.kind_counts) kinds += k;
    EXPECT_EQ(kinds, event.count);
    ++events_;
    workload::BatchHook::OnBatchEvent(engine, event);  // forward shim
  }
  size_t events() const { return events_; }
  size_t legacy_calls() const { return legacy_calls_; }

 private:
  size_t events_ = 0;
  size_t legacy_calls_ = 0;
};

TEST(GatewayTest, BatchEventsCarryTypedContextInBothPipelines) {
  const tune::SystemSetup setup = SmallSetup();
  workload::KeySpace keys(setup.num_entries, setup.seed);

  // Executor-driven: `ops` is set, so the BatchHook shim forwards.
  {
    auto eng = MakeLoadedEngine(setup, keys);
    EventShapeChecker checker;
    workload::ExecutorConfig exec;
    exec.num_ops = 1000;
    exec.batch_ops = 128;
    exec.generator.scan_len = 8;
    exec.seed = 3;
    exec.hook = &checker;
    workload::Execute(eng.get(), model::WorkloadSpec{0.2, 0.3, 0.2, 0.3},
                      exec, &keys);
    EXPECT_EQ(checker.events(), (1000 + 127) / 128);
    EXPECT_EQ(checker.legacy_calls(), checker.events());
  }

  // Gateway-driven: `ops` is null, queue depths cover every tenant.
  {
    auto eng = MakeLoadedEngine(setup, keys);
    const std::vector<TraceEntry> trace = MakeTrace(*eng, &keys, 500, 50);
    Gateway gw(eng.get(), GatewayConfig{setup.num_shards});
    BatchRecorder recorder;
    gw.set_observer(&recorder);
    ReplayTrace(&gw, trace);
    ASSERT_GT(recorder.events(), 0u);
    EXPECT_TRUE(recorder.last_event_ops_null());
    EXPECT_EQ(recorder.num_queues(), setup.num_shards);
  }
}

TEST(GatewayTest, ArbiterRidesGatewayBatchBoundaries) {
  tune::SystemSetup setup = SmallSetup();
  setup.num_entries = 8000;  // clear the arbiter's degenerate-budget guard
  setup.total_memory_bits = 16 * 8000;
  workload::KeySpace keys(setup.num_entries, setup.seed);
  auto eng = MakeLoadedEngine(setup, keys);

  tune::ArbiterOptions arb_opts;
  arb_opts.period_ops = 400;
  tune::MemoryArbiter arbiter(
      setup, tune::MonkeyDefaultConfig(setup).ToOptions(setup),
      setup.num_shards, arb_opts);
  ASSERT_TRUE(arbiter.active());

  // Skewed open-loop traffic through the gateway with the arbiter
  // attached as the batch observer.
  workload::GeneratorConfig gen_cfg;
  gen_cfg.scan_len = 8;
  gen_cfg.shard_skew = 1.5;
  gen_cfg.num_shards = setup.num_shards;
  workload::OperationGenerator gen(model::WorkloadSpec{0.2, 0.3, 0.2, 0.3},
                                   &keys, gen_cfg, /*seed=*/21);
  Gateway gw(eng.get(), GatewayConfig{setup.num_shards});
  gw.set_observer(&arbiter);
  uint64_t t = 0;
  for (size_t i = 0; i < 4000; ++i) {
    t += 60;
    const engine::Op op = workload::ToEngineOp(gen.Next());
    gw.Submit(static_cast<uint32_t>(eng->ShardIndex(op.key)), op, t);
  }
  gw.Flush();

  EXPECT_GT(arbiter.rounds(), 0u);
  // Conservation: budgets moved between shards, never in or out of the
  // system total; floors always hold.
  uint64_t total = 0;
  for (size_t s = 0; s < setup.num_shards; ++s) {
    EXPECT_GE(arbiter.BudgetBits(s), arbiter.floor_bits());
    total += arbiter.BudgetBits(s);
  }
  EXPECT_EQ(total, arbiter.total_bits());
}

TEST(SystemSetupValidateTest, RejectsInconsistentKnobCombinations) {
  using tune::SystemSetup;
  const auto expect_invalid = [](SystemSetup setup) {
    const util::Status status = setup.Validate();
    EXPECT_FALSE(status.ok());
    EXPECT_FALSE(status.message().empty());
  };

  EXPECT_TRUE(SystemSetup{}.Validate().ok());

  SystemSetup s = SmallSetup();
  EXPECT_TRUE(s.Validate().ok());

  s = SmallSetup(1);
  s.arbitration = tune::ArbitrationMode::kPeriodic;
  expect_invalid(s);  // nothing to arbitrate with one shard

  s = SmallSetup();
  s.arbitration = tune::ArbitrationMode::kPeriodic;
  s.arbiter_period_ops = 0;
  expect_invalid(s);

  s = SmallSetup(1);
  s.shard_skew = 1.0;
  expect_invalid(s);  // no hot/cold shards to bias between

  s = SmallSetup();
  s.file_workdir = "/tmp/somewhere";
  expect_invalid(s);  // file knob on the sim backend

  s = SmallSetup();
  s.serve_mode = tune::ServeMode::kGateway;
  expect_invalid(s);  // gateway without an arrival rate

  s = SmallSetup();
  s.serve_mode = tune::ServeMode::kGateway;
  s.gateway_interarrival_ns = 500.0;
  s.gateway_queue_depth = 0;
  expect_invalid(s);  // admission on with a zero depth bound

  s = SmallSetup();
  s.gateway_rate_limit_ops_per_sec = 1e6;
  expect_invalid(s);  // rate limit without gateway serving

  s = SmallSetup();
  s.num_entries = 0;
  expect_invalid(s);

  // num_shards range: zero shards and counts past the 16M ceiling are
  // both units mistakes, rejected with a message; the ceiling itself is
  // a legal (if enormous) fleet.
  s = SmallSetup();
  s.num_shards = 0;
  expect_invalid(s);

  s = SmallSetup();
  s.num_shards = SystemSetup::kMaxShards + 1;
  expect_invalid(s);

  s = SmallSetup();
  s.num_shards = SystemSetup::kMaxShards;
  EXPECT_TRUE(s.Validate().ok());

  // The valid gateway combination passes.
  s = SmallSetup();
  s.serve_mode = tune::ServeMode::kGateway;
  s.gateway_interarrival_ns = 500.0;
  EXPECT_TRUE(s.Validate().ok());
}

TEST(EvaluatorGatewayTest, GatewayModeMeasuresDeterministically) {
  tune::SystemSetup setup = SmallSetup();
  setup.train_ops = 1500;
  setup.eval_ops = 1500;
  setup.serve_mode = tune::ServeMode::kGateway;
  setup.gateway_interarrival_ns = 2000.0;
  setup.gateway_queue_depth = 32;
  const tune::Evaluator evaluator(setup);
  const model::WorkloadSpec mix{0.2, 0.3, 0.2, 0.3};
  const tune::TuningConfig config = tune::MonkeyDefaultConfig(setup);

  const tune::Measurement a = evaluator.Evaluate(mix, config, 1);
  const tune::Measurement b = evaluator.Evaluate(mix, config, 1);
  EXPECT_EQ(a.mean_latency_ns, b.mean_latency_ns);  // bit-exact repeat
  EXPECT_EQ(a.p99_latency_ns, b.p99_latency_ns);
  EXPECT_EQ(a.ios_per_op, b.ios_per_op);
  EXPECT_EQ(a.shed_rate, b.shed_rate);
  EXPECT_EQ(a.queue_p99_ns, b.queue_p99_ns);

  EXPECT_GT(a.mean_latency_ns, 0.0);
  EXPECT_GE(a.shed_rate, 0.0);
  EXPECT_LE(a.shed_rate, 1.0);
  EXPECT_GE(a.queue_p99_ns, 0.0);
  // End-to-end latency includes queueing, so the open-loop mean can never
  // undercut a closed-loop measurement of the same stream.
  tune::SystemSetup closed = setup;
  closed.serve_mode = tune::ServeMode::kClosedLoop;
  closed.gateway_interarrival_ns = 0.0;
  const tune::Measurement c =
      tune::Evaluator(closed).Evaluate(mix, config, 1);
  EXPECT_GE(a.mean_latency_ns, 0.5 * c.mean_latency_ns);
  EXPECT_EQ(c.shed_rate, 0.0);
  EXPECT_EQ(c.queue_p99_ns, 0.0);
}

}  // namespace
}  // namespace camal::serve
