// The batched op pipeline: engine-attributed per-op costs must reproduce
// the historical caller-side snapshot-diff loop bit-for-bit, at any shard
// count, any pool size, and any batch granularity.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "camal/classic_tuner.h"
#include "camal/dynamic_tuner.h"
#include "camal/sample.h"
#include "engine/sharded_engine.h"
#include "lsm/lsm_tree.h"
#include "util/thread_pool.h"
#include "workload/executor.h"
#include "workload/generator.h"

namespace camal::engine {
namespace {

tune::SystemSetup SmallSetup() {
  tune::SystemSetup setup;
  setup.num_entries = 6000;
  setup.total_memory_bits = 16 * 6000;
  return setup;
}

std::vector<Op> GenerateOps(const tune::SystemSetup& setup, size_t num_ops,
                            workload::KeySpace* keys,
                            std::vector<workload::OpType>* types) {
  workload::GeneratorConfig gen_cfg;
  gen_cfg.scan_len = setup.scan_len;
  workload::OperationGenerator gen(model::WorkloadSpec{0.2, 0.3, 0.2, 0.3},
                                   keys, gen_cfg, /*seed=*/99);
  std::vector<Op> ops;
  for (size_t i = 0; i < num_ops; ++i) {
    const workload::Operation op = gen.Next();
    if (types != nullptr) types->push_back(op.type);
    ops.push_back(workload::ToEngineOp(op));
  }
  return ops;
}

// The pre-refactor executor loop: one virtual call per op, priced by
// diffing device snapshots around it (per-shard for point ops, the
// engine-wide sum for scans). The batched pipeline owes these exact bits.
std::vector<OpResult> ExecuteOpsLikePr2(ShardedEngine* eng,
                                        const std::vector<Op>& ops) {
  std::vector<OpResult> results(ops.size());
  std::vector<lsm::Entry> scan_buf;
  for (size_t i = 0; i < ops.size(); ++i) {
    const Op& op = ops[i];
    const bool point_op = op.kind != OpKind::kScan;
    const size_t shard = point_op ? eng->ShardIndex(op.key) : 0;
    const sim::DeviceSnapshot before =
        point_op ? eng->shard_device(shard)->Snapshot() : eng->CostSnapshot();
    OpResult r;
    switch (op.kind) {
      case OpKind::kGet: {
        uint64_t value = 0;
        r.found = eng->Get(op.key, &value);
        break;
      }
      case OpKind::kPut:
        eng->Put(op.key, op.value);
        break;
      case OpKind::kDelete:
        eng->Delete(op.key);
        break;
      case OpKind::kScan:
        scan_buf.clear();
        r.scan_hits = eng->Scan(op.key, op.scan_len, &scan_buf);
        break;
    }
    const sim::DeviceSnapshot after =
        point_op ? eng->shard_device(shard)->Snapshot() : eng->CostSnapshot();
    const sim::DeviceSnapshot delta = after.Delta(before);
    r.latency_ns = delta.elapsed_ns;
    r.ios = delta.TotalIos();
    results[i] = r;
  }
  return results;
}

std::unique_ptr<ShardedEngine> MakeLoadedEngine(const tune::SystemSetup& setup,
                                                size_t shards,
                                                const workload::KeySpace& keys) {
  auto eng = std::make_unique<ShardedEngine>(
      shards, tune::MonkeyDefaultConfig(setup).ToOptions(setup),
      setup.MakeDeviceConfig());
  workload::BulkLoad(eng.get(), keys);
  return eng;
}

void ExpectSameResults(const std::vector<OpResult>& a,
                       const std::vector<OpResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].latency_ns, b[i].latency_ns) << "op " << i;  // bit-exact
    EXPECT_EQ(a[i].ios, b[i].ios) << "op " << i;
    EXPECT_EQ(a[i].found, b[i].found) << "op " << i;
    EXPECT_EQ(a[i].scan_hits, b[i].scan_hits) << "op " << i;
  }
}

TEST(ExecuteOpsTest, MatchesCallerSideDiffingOnSingleTree) {
  const tune::SystemSetup setup = SmallSetup();
  workload::KeySpace keys(setup.num_entries, setup.seed);
  const std::vector<Op> ops = GenerateOps(setup, 2000, &keys, nullptr);

  workload::KeySpace keys_a(setup.num_entries, setup.seed);
  auto ref_eng = MakeLoadedEngine(setup, 1, keys_a);
  const std::vector<OpResult> expected = ExecuteOpsLikePr2(ref_eng.get(), ops);

  // Direct tree through the base-class serial implementation.
  workload::KeySpace keys_b(setup.num_entries, setup.seed);
  sim::Device device(setup.MakeDeviceConfig());
  lsm::LsmTree tree(tune::MonkeyDefaultConfig(setup).ToOptions(setup),
                    &device);
  workload::BulkLoad(&tree, keys_b);
  StorageEngine& engine = tree;
  ExpectSameResults(engine.ExecuteOps(ops), expected);
}

TEST(ExecuteOpsTest, MatchesCallerSideDiffingAcrossShardCounts) {
  const tune::SystemSetup setup = SmallSetup();
  for (size_t shards : {2, 3, 8}) {
    workload::KeySpace keys(setup.num_entries, setup.seed);
    const std::vector<Op> ops = GenerateOps(setup, 2000, &keys, nullptr);

    workload::KeySpace keys_a(setup.num_entries, setup.seed);
    auto ref_eng = MakeLoadedEngine(setup, shards, keys_a);
    const std::vector<OpResult> expected =
        ExecuteOpsLikePr2(ref_eng.get(), ops);

    workload::KeySpace keys_b(setup.num_entries, setup.seed);
    auto eng = MakeLoadedEngine(setup, shards, keys_b);
    ExpectSameResults(eng->ExecuteOps(ops), expected);
  }
}

TEST(ExecuteOpsTest, BitIdenticalAtAnyPoolSize) {
  const tune::SystemSetup setup = SmallSetup();
  workload::KeySpace keys(setup.num_entries, setup.seed);
  const std::vector<Op> ops = GenerateOps(setup, 2000, &keys, nullptr);

  workload::KeySpace keys_serial(setup.num_entries, setup.seed);
  auto serial_eng = MakeLoadedEngine(setup, 4, keys_serial);
  const std::vector<OpResult> expected = serial_eng->ExecuteOps(ops);

  for (int threads : {2, 4, 7}) {
    util::ThreadPool pool(threads);
    workload::KeySpace keys_pooled(setup.num_entries, setup.seed);
    auto eng = MakeLoadedEngine(setup, 4, keys_pooled);
    eng->set_pool(&pool);
    ExpectSameResults(eng->ExecuteOps(ops), expected);
  }
}

TEST(ExecuteOpsTest, GetReportsFoundAndScanReportsHits) {
  const tune::SystemSetup setup = SmallSetup();
  workload::KeySpace keys(setup.num_entries, setup.seed);
  auto eng = MakeLoadedEngine(setup, 3, keys);

  std::vector<Op> ops;
  Op live;
  live.kind = OpKind::kGet;
  live.key = keys.KeyAt(7);  // loaded key: found
  ops.push_back(live);
  Op missing;
  missing.kind = OpKind::kGet;
  missing.key = keys.KeyAt(7) + 1;  // odd keys are never inserted
  ops.push_back(missing);
  Op scan;
  scan.kind = OpKind::kScan;
  scan.key = 0;
  scan.scan_len = 40;
  ops.push_back(scan);

  const std::vector<OpResult> results = eng->ExecuteOps(ops);
  EXPECT_TRUE(results[0].found);
  EXPECT_GT(results[0].latency_ns, 0.0);
  EXPECT_FALSE(results[1].found);
  EXPECT_EQ(results[2].scan_hits, 40u);
  EXPECT_GT(results[2].latency_ns, 0.0);

  // The batched scan must report the same count as the direct Scan API.
  std::vector<lsm::Entry> out;
  EXPECT_EQ(eng->Scan(0, 40, &out), results[2].scan_hits);
}

TEST(ExecuteOpsTest, ExecuteIsBatchGranularityInvariant) {
  const tune::SystemSetup setup = SmallSetup();
  workload::ExecutorConfig exec;
  exec.num_ops = 1500;
  exec.generator.scan_len = setup.scan_len;
  exec.seed = 42;

  auto run = [&](size_t batch_ops) {
    workload::KeySpace keys(setup.num_entries, setup.seed);
    auto eng = MakeLoadedEngine(setup, 4, keys);
    workload::ExecutorConfig cfg = exec;
    cfg.batch_ops = batch_ops;
    return workload::Execute(eng.get(),
                             model::WorkloadSpec{0.25, 0.25, 0.25, 0.25}, cfg,
                             &keys);
  };

  const workload::ExecutionResult base = run(512);
  for (size_t batch_ops : {1, 3, 100, 4000}) {
    const workload::ExecutionResult r = run(batch_ops);
    EXPECT_EQ(r.total_ns, base.total_ns) << "batch_ops=" << batch_ops;
    EXPECT_EQ(r.total_ios, base.total_ios) << "batch_ops=" << batch_ops;
    EXPECT_EQ(r.lookups_found, base.lookups_found);
    EXPECT_EQ(r.lookups_missed, base.lookups_missed);
    EXPECT_EQ(r.latency_ns.Quantile(0.99), base.latency_ns.Quantile(0.99));
  }
}

TEST(ExecuteOpsTest, DynamicTunerBitIdenticalWithEnginePool) {
  // The dynamic path (batches cut at detector firings, per-shard retunes
  // in between) must be unaffected by engine-level parallelism.
  const tune::SystemSetup setup = [] {
    tune::SystemSetup s = SmallSetup();
    s.train_ops = 400;
    s.eval_ops = 800;
    return s;
  }();
  auto classic =
      std::make_shared<tune::ClassicTuner>(setup, tune::TunerOptions{});
  tune::RecommendFn recommend = [classic](const model::WorkloadSpec& w,
                                          const model::SystemParams& target) {
    return classic->RecommendFor(w, target);
  };
  tune::DynamicTuner::Params params;
  params.window_ops = 250;
  params.tau = 0.1;

  auto run = [&](util::ThreadPool* pool) {
    workload::KeySpace keys(setup.num_entries, setup.seed);
    auto eng = MakeLoadedEngine(setup, 4, keys);
    eng->set_pool(pool);
    tune::DynamicTuner dyn(recommend, setup, params);
    const workload::ExecutionResult r1 = dyn.RunPhase(
        eng.get(), &keys, model::WorkloadSpec{0.1, 0.1, 0.1, 0.7}, 700, 1);
    const workload::ExecutionResult r2 = dyn.RunPhase(
        eng.get(), &keys, model::WorkloadSpec{0.1, 0.1, 0.6, 0.2}, 700, 2);
    return std::make_tuple(r1.total_ns + r2.total_ns,
                           r1.total_ios + r2.total_ios,
                           dyn.reconfigurations(),
                           dyn.last_applied().size_ratio);
  };

  const auto serial = run(nullptr);
  util::ThreadPool pool(4);
  const auto pooled = run(&pool);
  EXPECT_EQ(std::get<0>(serial), std::get<0>(pooled));  // bit-exact time
  EXPECT_EQ(std::get<1>(serial), std::get<1>(pooled));
  EXPECT_EQ(std::get<2>(serial), std::get<2>(pooled));
  EXPECT_EQ(std::get<3>(serial), std::get<3>(pooled));
}

TEST(ExecuteOpsTest, ReconfigureShardMidPhaseStaysDeterministicAndCorrect) {
  // An arbitration round lands between two batches of a phase: the
  // reconfigured engine must produce bit-identical batched results at any
  // pool size, and Scan must stay globally sorted and complete across the
  // budget change.
  const tune::SystemSetup setup = SmallSetup();
  workload::KeySpace keys(setup.num_entries, setup.seed);
  const std::vector<Op> ops = GenerateOps(setup, 3000, &keys, nullptr);
  const size_t half = ops.size() / 2;

  auto run = [&](util::ThreadPool* pool) {
    workload::KeySpace run_keys(setup.num_entries, setup.seed);
    auto eng = MakeLoadedEngine(setup, 4, run_keys);
    eng->set_pool(pool);
    std::vector<OpResult> results(ops.size());
    eng->ExecuteOps(ops.data(), half, results.data());
    // The "arbiter": shrink shard 2, grow shard 1 by the same amount.
    lsm::Options grown = eng->ShardOptionsSnapshot(1);
    lsm::Options shrunk = eng->ShardOptionsSnapshot(2);
    const uint64_t delta_bloom = shrunk.bloom_bits / 3;
    const uint64_t delta_buffer = shrunk.buffer_bytes / 4;
    shrunk.bloom_bits -= delta_bloom;
    shrunk.buffer_bytes -= delta_buffer;
    grown.bloom_bits += delta_bloom;
    grown.buffer_bytes += delta_buffer;
    eng->ReconfigureShard(1, grown);
    eng->ReconfigureShard(2, shrunk);
    eng->ExecuteOps(ops.data() + half, ops.size() - half,
                    results.data() + half);
    std::vector<lsm::Entry> scanned;
    eng->Scan(0, 200, &scanned);
    return std::make_pair(std::move(results), std::move(scanned));
  };

  const auto serial = run(nullptr);
  for (int threads : {2, 4}) {
    util::ThreadPool pool(threads);
    const auto pooled = run(&pool);
    ExpectSameResults(pooled.first, serial.first);
    ASSERT_EQ(pooled.second.size(), serial.second.size());
    for (size_t i = 0; i < serial.second.size(); ++i) {
      EXPECT_EQ(pooled.second[i].key, serial.second[i].key);
      if (i > 0) {
        EXPECT_LT(serial.second[i - 1].key, serial.second[i].key);
      }
    }
  }
}

TEST(ExecuteOpsTest, ExecuteWithReconfiguringHookIsBatchDeterministic) {
  // workload::Execute with a hook that retunes a shard after a fixed
  // batch (an arbitration-triggered ReconfigureShard landing mid-phase):
  // identical streams must produce identical results at any pool size.
  const tune::SystemSetup setup = SmallSetup();

  class RetuneOnceHook : public workload::BatchHook {
   public:
    void OnBatch(engine::StorageEngine* engine, const workload::Operation*,
                 size_t) override {
      if (++batches_ != 2) return;
      lsm::Options opts = engine->ShardOptionsSnapshot(3);
      opts.bloom_bits /= 2;
      opts.buffer_bytes = opts.buffer_bytes * 3 / 4;
      engine->ReconfigureShard(3, opts);
    }
    int batches_ = 0;
  };

  auto run = [&](util::ThreadPool* pool) {
    workload::KeySpace keys(setup.num_entries, setup.seed);
    auto eng = MakeLoadedEngine(setup, 4, keys);
    eng->set_pool(pool);
    RetuneOnceHook hook;
    workload::ExecutorConfig exec;
    exec.num_ops = 2000;
    exec.batch_ops = 400;
    exec.seed = 31;
    exec.generator.scan_len = setup.scan_len;
    exec.hook = &hook;
    return workload::Execute(eng.get(),
                             model::WorkloadSpec{0.2, 0.3, 0.2, 0.3}, exec,
                             &keys);
  };

  const workload::ExecutionResult serial = run(nullptr);
  util::ThreadPool pool(4);
  const workload::ExecutionResult pooled = run(&pool);
  EXPECT_EQ(serial.total_ns, pooled.total_ns);  // bit-exact
  EXPECT_EQ(serial.total_ios, pooled.total_ios);
  EXPECT_EQ(serial.lookups_found, pooled.lookups_found);
  EXPECT_EQ(serial.latency_ns.Quantile(0.99),
            pooled.latency_ns.Quantile(0.99));
}

TEST(ExecuteOpsTest, EvaluatorEnginePoolDoesNotChangeMeasurements) {
  tune::SystemSetup setup = SmallSetup();
  setup.num_shards = 4;
  setup.train_ops = 300;
  setup.eval_ops = 600;
  const tune::Evaluator serial_eval(setup);

  setup.engine_threads = 4;
  const tune::Evaluator pooled_eval(setup);
  ASSERT_NE(pooled_eval.engine_pool(), nullptr);

  const model::WorkloadSpec w{0.2, 0.3, 0.2, 0.3};
  const tune::TuningConfig config = tune::MonkeyDefaultConfig(setup);
  const tune::Measurement a = serial_eval.Evaluate(w, config);
  const tune::Measurement b = pooled_eval.Evaluate(w, config);
  EXPECT_EQ(a.mean_latency_ns, b.mean_latency_ns);  // bit-exact
  EXPECT_EQ(a.p99_latency_ns, b.p99_latency_ns);
  EXPECT_EQ(a.ios_per_op, b.ios_per_op);
  EXPECT_EQ(a.build_ns, b.build_ns);
}

}  // namespace
}  // namespace camal::engine
