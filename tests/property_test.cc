// Cross-module property tests: invariants that must hold over swept
// parameter ranges rather than at single points.

#include <algorithm>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "camal/camal_tuner.h"
#include "camal/extrapolation.h"
#include "lsm/compaction.h"
#include "lsm/lsm_tree.h"
#include "model/cost_model.h"
#include "model/optimum.h"
#include "util/random.h"

namespace camal {
namespace {

// ---------------------------------------------------------------------------
// Closed-form model monotonicity properties.

class CostMonotonicityTest : public ::testing::TestWithParam<double> {};

TEST_P(CostMonotonicityTest, ZeroResultCostDecreasesInFilterMemory) {
  model::SystemParams p;
  model::CostModel cm(p);
  const double t = GetParam();
  double prev = 1e300;
  for (double bpk = 0.0; bpk <= 14.0; bpk += 2.0) {
    model::ModelConfig c;
    c.size_ratio = t;
    c.mf_bits = bpk * p.num_entries;
    c.mb_bits = p.total_memory_bits - c.mf_bits;
    const double cost = cm.ZeroResultLookupCost(c);
    EXPECT_LT(cost, prev + 1e-12);
    prev = cost;
  }
}

TEST_P(CostMonotonicityTest, RangeCostDecreasesInT) {
  model::SystemParams p;
  model::CostModel cm(p);
  model::ModelConfig c;
  c.mf_bits = 10.0 * p.num_entries;
  c.mb_bits = p.total_memory_bits - c.mf_bits;
  c.size_ratio = GetParam();
  const double cost_here = cm.RangeLookupCost(c);
  c.size_ratio = GetParam() * 2.0;
  EXPECT_LE(cm.RangeLookupCost(c), cost_here + 1e-12);
}

TEST_P(CostMonotonicityTest, LevelingWriteCostIncreasesInTBeyondE) {
  model::SystemParams p;
  model::CostModel cm(p);
  const double t = std::max(3.0, GetParam());
  model::ModelConfig c;
  c.mf_bits = 0.0;
  c.mb_bits = 0.3 * p.total_memory_bits;
  c.size_ratio = t;
  const double cost_here = cm.WriteCost(c);
  c.size_ratio = t * 2.0;
  EXPECT_GE(cm.WriteCost(c), cost_here - 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Ratios, CostMonotonicityTest,
                         ::testing::Values(2.0, 4.0, 8.0, 16.0, 32.0));

// ---------------------------------------------------------------------------
// Optimum solver properties across the full workload simplex.

class OptimumSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(OptimumSweepTest, AnalyticTStarAgreesWithNumericArgmin) {
  util::Random rng(static_cast<uint64_t>(GetParam()) * 91 + 3);
  model::SystemParams p;
  model::CostModel cm(p);
  // Random normalized workload.
  double raw[4];
  double total = 0.0;
  for (double& x : raw) {
    x = 0.01 + rng.NextDouble();
    total += x;
  }
  model::WorkloadSpec w{raw[0] / total, raw[1] / total, raw[2] / total,
                        raw[3] / total};
  const double analytic = model::OptimalSizeRatioLeveling(w, cm);

  model::ModelConfig base;
  base.mf_bits = 10.0 * p.num_entries;
  base.mb_bits = p.total_memory_bits - base.mf_bits;
  const double numeric = model::OptimalSizeRatioNumeric(w, cm, base);
  // Both minimize the same (flat-near-optimum) objective: compare costs.
  model::ModelConfig ca = base, cn = base;
  ca.size_ratio = analytic;
  cn.size_ratio = numeric;
  EXPECT_LE(cm.OpCost(w, ca), cm.OpCost(w, cn) * 1.10 + 1e-9);
}

TEST_P(OptimumSweepTest, MinimizeCostNeverWorseThanMonkeyDefault) {
  util::Random rng(static_cast<uint64_t>(GetParam()) * 77 + 5);
  model::SystemParams p;
  model::CostModel cm(p);
  double raw[4];
  double total = 0.0;
  for (double& x : raw) {
    x = 0.01 + rng.NextDouble();
    total += x;
  }
  model::WorkloadSpec w{raw[0] / total, raw[1] / total, raw[2] / total,
                        raw[3] / total};
  const model::TheoreticalOptimum opt =
      model::MinimizeCost(w, cm, lsm::CompactionPolicy::kLeveling);
  model::ModelConfig monkey;
  monkey.size_ratio = 10.0;
  monkey.mf_bits = 10.0 * p.num_entries;
  monkey.mb_bits = p.total_memory_bits - monkey.mf_bits;
  EXPECT_LE(opt.cost, cm.OpCost(w, monkey) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimumSweepTest, ::testing::Range(0, 10));

// ---------------------------------------------------------------------------
// Merge properties on random inputs vs a reference merge.

class MergePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(MergePropertyTest, MatchesReferenceSemantics) {
  util::Random rng(static_cast<uint64_t>(GetParam()) * 13 + 1);
  // Build 3 runs of random sorted entries; newer runs shadow older.
  std::vector<lsm::RunPtr> newest_first;
  std::map<uint64_t, lsm::Entry> reference;  // built oldest-to-newest
  std::vector<std::vector<lsm::Entry>> raw_runs;
  for (int r = 0; r < 3; ++r) {
    std::map<uint64_t, lsm::Entry> run_entries;
    const size_t count = 5 + rng.Uniform(40);
    for (size_t i = 0; i < count; ++i) {
      const uint64_t key = rng.Uniform(60);
      const bool tomb = rng.Bernoulli(0.25);
      run_entries[key] =
          lsm::Entry{key, rng.Next() % 1000, tomb};
    }
    std::vector<lsm::Entry> sorted;
    for (const auto& [k, e] : run_entries) sorted.push_back(e);
    raw_runs.push_back(sorted);
  }
  // raw_runs[0] is oldest; apply in order for the reference.
  for (const auto& run : raw_runs) {
    for (const lsm::Entry& e : run) reference[e.key] = e;
  }
  for (auto it = raw_runs.rbegin(); it != raw_runs.rend(); ++it) {
    newest_first.push_back(
        std::make_shared<const lsm::Run>(newest_first.size() + 1, *it, 8,
                                         0.0, 128, 0));
  }

  const std::vector<lsm::Entry> merged =
      lsm::MergeRuns(newest_first, /*drop_tombstones=*/false);
  ASSERT_EQ(merged.size(), reference.size());
  size_t idx = 0;
  for (const auto& [key, expected] : reference) {
    EXPECT_EQ(merged[idx].key, key);
    EXPECT_EQ(merged[idx].value, expected.value);
    EXPECT_EQ(merged[idx].tombstone, expected.tombstone);
    ++idx;
  }

  // With tombstone dropping, the output is exactly the live subset.
  const std::vector<lsm::Entry> dropped = lsm::MergeRuns(newest_first, true);
  size_t live = 0;
  for (const auto& [key, e] : reference) live += !e.tombstone;
  EXPECT_EQ(dropped.size(), live);
  for (const lsm::Entry& e : dropped) EXPECT_FALSE(e.tombstone);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MergePropertyTest, ::testing::Range(0, 8));

// ---------------------------------------------------------------------------
// Extrapolation identities.

TEST(ExtrapolationPropertyTest, RoundTripIsIdentity) {
  tune::TuningConfig c;
  c.size_ratio = 9.0;
  c.mf_bits = 12345.0;
  c.mb_bits = 54321.0;
  c.mc_bits = 777.0;
  const tune::TuningConfig back =
      tune::ExtrapolateConfig(tune::ExtrapolateConfig(c, 8.0), 1.0 / 8.0);
  EXPECT_NEAR(back.mf_bits, c.mf_bits, 1e-9);
  EXPECT_NEAR(back.mb_bits, c.mb_bits, 1e-9);
  EXPECT_NEAR(back.mc_bits, c.mc_bits, 1e-9);
}

TEST(ExtrapolationPropertyTest, ComposesMultiplicatively) {
  tune::TuningConfig c;
  c.mf_bits = 100.0;
  c.mb_bits = 200.0;
  const tune::TuningConfig ab = tune::ExtrapolateConfig(
      tune::ExtrapolateConfig(c, 2.0), 3.0);
  const tune::TuningConfig direct = tune::ExtrapolateConfig(c, 6.0);
  EXPECT_NEAR(ab.mf_bits, direct.mf_bits, 1e-9);
  EXPECT_NEAR(ab.mb_bits, direct.mb_bits, 1e-9);
}

TEST(ExtrapolationPropertyTest, RecommendForScalesWithTarget) {
  tune::SystemSetup setup;
  setup.num_entries = 6000;
  setup.total_memory_bits = 16 * 6000;
  setup.train_ops = 300;
  tune::TunerOptions opts;
  opts.model_kind = tune::ModelKind::kPoly;
  opts.refine_rounds = 0;
  tune::CamalTuner tuner(setup, opts);
  model::WorkloadSpec w{0.25, 0.25, 0.25, 0.25};
  tuner.Train({w});
  const model::SystemParams base = setup.ToModelParams();
  const tune::TuningConfig at_1x = tuner.RecommendFor(w, base);
  const tune::TuningConfig at_3x =
      tuner.RecommendFor(w, tune::ScaleParams(base, 3.0));
  EXPECT_DOUBLE_EQ(at_3x.size_ratio, at_1x.size_ratio);
  EXPECT_NEAR(at_3x.mf_bits, 3.0 * at_1x.mf_bits, 1.0);
  EXPECT_NEAR(at_3x.mb_bits, 3.0 * at_1x.mb_bits, 1.0);
}

// ---------------------------------------------------------------------------
// Engine conservation properties over random operation streams.

class ConservationTest : public ::testing::TestWithParam<int> {};

TEST_P(ConservationTest, LiveKeyCountMatchesReference) {
  sim::DeviceConfig dc;
  dc.io_jitter_frac = 0.0;
  sim::Device dev(dc);
  lsm::Options opts;
  opts.entry_bytes = 128;
  opts.buffer_bytes = 128 * 24;
  opts.size_ratio = 3.0;
  opts.policy = GetParam() % 2 == 0 ? lsm::CompactionPolicy::kLeveling
                                    : lsm::CompactionPolicy::kTiering;
  lsm::LsmTree tree(opts, &dev);
  std::map<uint64_t, uint64_t> reference;
  util::Random rng(static_cast<uint64_t>(GetParam()) * 331 + 17);
  for (int i = 0; i < 4000; ++i) {
    const uint64_t key = rng.Uniform(1500);
    if (rng.Bernoulli(0.7)) {
      tree.Put(key, static_cast<uint64_t>(i));
      reference[key] = static_cast<uint64_t>(i);
    } else {
      tree.Delete(key);
      reference.erase(key);
    }
  }
  // A full scan must return exactly the live reference contents.
  std::vector<lsm::Entry> out;
  tree.Scan(0, reference.size() + 100, &out);
  ASSERT_EQ(out.size(), reference.size());
  auto it = reference.begin();
  for (const lsm::Entry& e : out) {
    EXPECT_EQ(e.key, it->first);
    EXPECT_EQ(e.value, it->second);
    ++it;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConservationTest, ::testing::Range(0, 6));

}  // namespace
}  // namespace camal
