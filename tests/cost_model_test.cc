#include <cmath>

#include <gtest/gtest.h>

#include "model/cost_model.h"
#include "model/optimum.h"
#include "model/workload_spec.h"

namespace camal::model {
namespace {

constexpr double kLn2Sq = 0.4804530139182014;

SystemParams Params() {
  SystemParams p;
  p.num_entries = 40000;
  p.entry_bits = 1024;
  p.block_entries = 32;
  p.selectivity = 16;
  p.total_memory_bits = 640000;
  return p;
}

ModelConfig Leveled(double t, double mf, double mb) {
  ModelConfig c;
  c.policy = lsm::CompactionPolicy::kLeveling;
  c.size_ratio = t;
  c.mf_bits = mf;
  c.mb_bits = mb;
  return c;
}

TEST(WorkloadSpecTest, NormalizedSumsToOne) {
  WorkloadSpec w;
  w.v = 2;
  w.r = 2;
  w.q = 2;
  w.w = 2;
  const WorkloadSpec n = w.Normalized();
  EXPECT_DOUBLE_EQ(n.Total(), 1.0);
  EXPECT_DOUBLE_EQ(n.v, 0.25);
}

TEST(WorkloadSpecTest, KlDivergenceProperties) {
  WorkloadSpec a{0.25, 0.25, 0.25, 0.25};
  WorkloadSpec b{0.7, 0.1, 0.1, 0.1};
  EXPECT_NEAR(KlDivergence(a, a), 0.0, 1e-9);
  EXPECT_GT(KlDivergence(a, b), 0.0);
  EXPECT_GT(KlDivergence(b, a), 0.0);
}

TEST(WorkloadSpecTest, SampleInKlBallStaysInBall) {
  util::Random rng(5);
  WorkloadSpec center{0.4, 0.3, 0.2, 0.1};
  for (int i = 0; i < 50; ++i) {
    const WorkloadSpec s = SampleInKlBall(center, 0.3, &rng);
    EXPECT_LE(KlDivergence(s, center), 0.3 + 1e-9);
    EXPECT_NEAR(s.Total(), 1.0, 1e-9);
  }
}

TEST(WorkloadSpecTest, SampleInKlBallVaries) {
  util::Random rng(6);
  WorkloadSpec center{0.25, 0.25, 0.25, 0.25};
  double max_kl = 0.0;
  for (int i = 0; i < 50; ++i) {
    max_kl = std::max(max_kl, KlDivergence(SampleInKlBall(center, 1.0, &rng),
                                           center));
  }
  EXPECT_GT(max_kl, 0.05);
}

TEST(WorkloadSpecTest, InterpolateEndpoints) {
  WorkloadSpec a{1, 0, 0, 0};
  WorkloadSpec b{0, 0, 0, 1};
  EXPECT_DOUBLE_EQ(Interpolate(a, b, 0.0).v, 1.0);
  EXPECT_DOUBLE_EQ(Interpolate(a, b, 1.0).w, 1.0);
  const WorkloadSpec mid = Interpolate(a, b, 0.5);
  EXPECT_DOUBLE_EQ(mid.v, 0.5);
  EXPECT_DOUBLE_EQ(mid.w, 0.5);
}

TEST(CostModelTest, LevelsFormula) {
  CostModel cm(Params());
  const ModelConfig c = Leveled(10.0, 0.0, 128000);
  // L = log_10(40000*1024/128000 + 1) = log_10(321)
  EXPECT_NEAR(cm.Levels(c), std::log(321.0) / std::log(10.0), 1e-9);
}

TEST(CostModelTest, ZeroResultCostMatchesFormula) {
  CostModel cm(Params());
  const double mf = 10.0 * 40000;
  const ModelConfig c = Leveled(10.0, mf, 200000);
  EXPECT_NEAR(cm.ZeroResultLookupCost(c), std::exp(-kLn2Sq * 10.0), 1e-12);
}

TEST(CostModelTest, NonZeroIsZeroPlusOne) {
  CostModel cm(Params());
  const ModelConfig c = Leveled(8.0, 200000, 200000);
  EXPECT_DOUBLE_EQ(cm.NonZeroResultLookupCost(c),
                   cm.ZeroResultLookupCost(c) + 1.0);
}

TEST(CostModelTest, TieringMultipliesPointCostByT) {
  CostModel cm(Params());
  ModelConfig lev = Leveled(6.0, 100000, 200000);
  ModelConfig tier = lev;
  tier.policy = lsm::CompactionPolicy::kTiering;
  EXPECT_NEAR(cm.ZeroResultLookupCost(tier),
              6.0 * cm.ZeroResultLookupCost(lev), 1e-12);
}

TEST(CostModelTest, RangeCostLevelingFormula) {
  CostModel cm(Params());
  const ModelConfig c = Leveled(10.0, 0.0, 128000);
  EXPECT_NEAR(cm.RangeLookupCost(c), cm.Levels(c) + 16.0 / 32.0, 1e-12);
}

TEST(CostModelTest, WriteCostTieringCheaper) {
  CostModel cm(Params());
  ModelConfig lev = Leveled(8.0, 100000, 200000);
  ModelConfig tier = lev;
  tier.policy = lsm::CompactionPolicy::kTiering;
  EXPECT_LT(cm.WriteCost(tier), cm.WriteCost(lev));
  EXPECT_NEAR(cm.WriteCost(lev), cm.Levels(lev) * 8.0 / 32.0, 1e-12);
  EXPECT_NEAR(cm.WriteCost(tier), cm.Levels(tier) / 32.0, 1e-12);
}

TEST(CostModelTest, GeneralizedKInterpolatesPolicies) {
  CostModel cm(Params());
  ModelConfig lev = Leveled(8.0, 100000, 200000);
  ModelConfig k1 = lev;
  k1.runs_per_level = 1;
  ModelConfig k8 = lev;
  k8.runs_per_level = 8;
  ModelConfig tier = lev;
  tier.policy = lsm::CompactionPolicy::kTiering;
  EXPECT_DOUBLE_EQ(cm.ZeroResultLookupCost(k1), cm.ZeroResultLookupCost(lev));
  EXPECT_DOUBLE_EQ(cm.ZeroResultLookupCost(k8),
                   cm.ZeroResultLookupCost(tier));
  EXPECT_DOUBLE_EQ(cm.WriteCost(k8), cm.WriteCost(tier));
}

TEST(CostModelTest, OpCostIsWeightedSum) {
  CostModel cm(Params());
  const ModelConfig c = Leveled(10.0, 100000, 200000);
  WorkloadSpec w{0.1, 0.2, 0.3, 0.4};
  const double expected = 0.1 * cm.ZeroResultLookupCost(c) +
                          0.2 * cm.NonZeroResultLookupCost(c) +
                          0.3 * cm.RangeLookupCost(c) + 0.4 * cm.WriteCost(c);
  EXPECT_NEAR(cm.OpCost(w, c), expected, 1e-12);
}

TEST(CostModelTest, ReadFanoutIsReadMixWeightedAndFloored) {
  CostModel cm(Params());
  const ModelConfig c = Leveled(10.0, 100000, 200000);
  const WorkloadSpec w{0.2, 0.3, 0.1, 0.4};
  const double expected = (0.2 * cm.ZeroResultLookupCost(c) +
                           0.3 * cm.NonZeroResultLookupCost(c) +
                           0.1 * cm.RangeLookupCost(c)) /
                          0.6;
  EXPECT_NEAR(cm.ReadFanout(w, c), std::max(1.0, expected), 1e-12);
  // Write-only workloads have nothing to overlap: fan-out floors at 1.
  EXPECT_DOUBLE_EQ(cm.ReadFanout(WorkloadSpec{0.0, 0.0, 0.0, 1.0}, c), 1.0);
  // More range reads -> more independent blocks per op.
  EXPECT_GT(cm.ReadFanout(WorkloadSpec{0.0, 0.1, 0.9, 0.0}, c),
            cm.ReadFanout(WorkloadSpec{0.0, 0.9, 0.1, 0.0}, c));
}

TEST(CostModelTest, OverlapFactorBoundsAndMonotonicity) {
  CostModel cm(Params());
  ModelConfig c = Leveled(10.0, 100000, 200000);
  const WorkloadSpec w{0.1, 0.2, 0.4, 0.3};
  // Depth 1 never scales anything.
  c.io_queue_depth = 1.0;
  EXPECT_DOUBLE_EQ(cm.OverlapFactor(w, c), 1.0);
  // Deeper rings help monotonically, bounded below by 1/fanout: depth
  // beyond the per-op fan-out buys nothing the model can see.
  double prev = 1.0;
  for (double depth : {2.0, 4.0, 8.0, 64.0, 1024.0}) {
    c.io_queue_depth = depth;
    const double ov = cm.OverlapFactor(w, c);
    EXPECT_LE(ov, prev) << "depth " << depth;
    EXPECT_GE(ov, 1.0 / cm.ReadFanout(w, c) - 1e-12) << "depth " << depth;
    prev = ov;
  }
  c.io_queue_depth = 1024.0;
  EXPECT_NEAR(cm.OverlapFactor(w, c), 1.0 / cm.ReadFanout(w, c), 1e-12);
}

TEST(CostModelTest, EffectiveOpCostCollapsesToOpCostAtDepthOne) {
  CostModel cm(Params());
  ModelConfig c = Leveled(8.0, 200000, 200000);
  const WorkloadSpec w{0.25, 0.25, 0.25, 0.25};
  c.io_queue_depth = 1.0;
  EXPECT_DOUBLE_EQ(cm.EffectiveOpCost(w, c), cm.OpCost(w, c));
  // At depth d only the read terms shrink; the write term is serial
  // compaction I/O and must survive unscaled.
  c.io_queue_depth = 16.0;
  const double ov = cm.OverlapFactor(w, c);
  const double expected = ov * (0.25 * cm.ZeroResultLookupCost(c) +
                                0.25 * cm.NonZeroResultLookupCost(c) +
                                0.25 * cm.RangeLookupCost(c)) +
                          0.25 * cm.WriteCost(c);
  EXPECT_NEAR(cm.EffectiveOpCost(w, c), expected, 1e-12);
  EXPECT_LT(cm.EffectiveOpCost(w, c), cm.OpCost(w, c));
}

TEST(CostModelTest, RecommendedQueueDepthTracksFanoutAndClamps) {
  CostModel cm(Params());
  const ModelConfig c = Leveled(10.0, 0.0, 128000);
  // Scan-heavy mix: fan-out ~= Q, well above 1.
  const WorkloadSpec scans{0.0, 0.0, 1.0, 0.0};
  const int fanout =
      static_cast<int>(std::llround(cm.ReadFanout(scans, c)));
  EXPECT_EQ(cm.RecommendedQueueDepth(scans, c, 64), fanout);
  EXPECT_EQ(cm.RecommendedQueueDepth(scans, c, 2), 2);  // clamped above
  // Write-only: never recommend overlap that cannot materialize.
  EXPECT_EQ(cm.RecommendedQueueDepth(WorkloadSpec{0.0, 0.0, 0.0, 1.0}, c, 64),
            1);
  // A degenerate max_depth still yields a usable depth.
  EXPECT_EQ(cm.RecommendedQueueDepth(scans, c, 0), 1);
}

TEST(CostModelTest, SizeRatioLimitClamped) {
  SystemParams p = Params();
  CostModel cm(p);
  EXPECT_NEAR(cm.SizeRatioLimit(), 65.0, 1.0);
  p.total_memory_bits = 1e12;  // absurdly large memory
  EXPECT_DOUBLE_EQ(CostModel(p).SizeRatioLimit(), 4.0);
  p.total_memory_bits = 1.0;  // absurdly small
  EXPECT_DOUBLE_EQ(CostModel(p).SizeRatioLimit(), 64.0);
}

// ------------------------- optimum solvers --------------------------------

TEST(OptimumTest, SizeRatioRootSolvesEquation5) {
  CostModel cm(Params());
  WorkloadSpec w{0.1, 0.1, 0.3, 0.5};
  const double t = OptimalSizeRatioLeveling(w, cm);
  // Residual of w*T*(lnT - 1) - q*B at the root should be ~0 (if interior).
  if (t < cm.SizeRatioLimit() - 1e-6) {
    const double residual =
        0.5 * t * (std::log(t) - 1.0) - 0.3 * cm.params().block_entries;
    EXPECT_NEAR(residual, 0.0, 1e-3);
  }
}

TEST(OptimumTest, NoWritesPushesToTlim) {
  CostModel cm(Params());
  WorkloadSpec w{0.2, 0.2, 0.6, 0.0};
  EXPECT_NEAR(OptimalSizeRatioLeveling(w, cm), cm.SizeRatioLimit(), 1e-9);
}

TEST(OptimumTest, WriteOnlyNearE) {
  CostModel cm(Params());
  WorkloadSpec w{0.0, 0.0, 0.0, 1.0};
  EXPECT_NEAR(OptimalSizeRatioLeveling(w, cm), std::exp(1.0), 0.3);
}

TEST(OptimumTest, PointOnlyDefaultT) {
  CostModel cm(Params());
  WorkloadSpec w{0.5, 0.5, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(OptimalSizeRatioLeveling(w, cm), 10.0);
}

TEST(OptimumTest, MfZeroWithoutPointReads) {
  CostModel cm(Params());
  WorkloadSpec w{0.0, 0.0, 0.5, 0.5};
  EXPECT_DOUBLE_EQ(OptimalMfBitsLeveling(w, cm, 10.0), 0.0);
}

TEST(OptimumTest, MfGrowsWithPointReadShare) {
  CostModel cm(Params());
  WorkloadSpec mostly_writes{0.1, 0.1, 0.1, 0.7};
  WorkloadSpec mostly_reads{0.7, 0.1, 0.1, 0.1};
  EXPECT_GT(OptimalMfBitsLeveling(mostly_reads, cm, 10.0),
            OptimalMfBitsLeveling(mostly_writes, cm, 10.0));
}

TEST(OptimumTest, AnalyticAndNumericMfAgree) {
  CostModel cm(Params());
  WorkloadSpec w{0.3, 0.3, 0.2, 0.2};
  ModelConfig base = Leveled(10.0, 0.0, 0.0);
  const double analytic = OptimalMfBitsLeveling(w, cm, 10.0);
  const double numeric = OptimalMfBitsNumeric(w, cm, base);
  // Both near-minimize the same cost; compare achieved costs.
  ModelConfig ca = base, cn = base;
  ca.mf_bits = analytic;
  ca.mb_bits = cm.params().total_memory_bits - analytic;
  cn.mf_bits = numeric;
  cn.mb_bits = cm.params().total_memory_bits - numeric;
  EXPECT_NEAR(cm.OpCost(w, ca), cm.OpCost(w, cn),
              0.02 * std::max(cm.OpCost(w, ca), 1e-9));
}

TEST(OptimumTest, MinimizeCostIsLocalOptimum) {
  CostModel cm(Params());
  WorkloadSpec w{0.25, 0.25, 0.25, 0.25};
  const TheoreticalOptimum opt =
      MinimizeCost(w, cm, lsm::CompactionPolicy::kLeveling);
  // Perturbing T or Mf should not reduce the cost by more than numeric fuzz.
  for (double dt : {-1.0, 1.0}) {
    ModelConfig c = opt.config;
    c.size_ratio = std::max(2.0, c.size_ratio + dt);
    EXPECT_GE(cm.OpCost(w, c), opt.cost - 1e-9);
  }
  for (double dm : {-0.1, 0.1}) {
    ModelConfig c = opt.config;
    const double delta = dm * cm.params().total_memory_bits;
    if (c.mf_bits + delta < 0.0 || c.mb_bits - delta < 1024.0) continue;
    c.mf_bits += delta;
    c.mb_bits -= delta;
    EXPECT_GE(cm.OpCost(w, c), opt.cost - 1e-9);
  }
}

TEST(OptimumTest, PolicyChoiceFollowsWorkload) {
  CostModel cm(Params());
  // Write-dominant workloads favor tiering; range-dominant favor leveling.
  WorkloadSpec writes{0.01, 0.01, 0.01, 0.97};
  WorkloadSpec ranges{0.01, 0.01, 0.97, 0.01};
  EXPECT_EQ(MinimizeCostOverPolicies(writes, cm).config.policy,
            lsm::CompactionPolicy::kTiering);
  EXPECT_EQ(MinimizeCostOverPolicies(ranges, cm).config.policy,
            lsm::CompactionPolicy::kLeveling);
}

TEST(OptimumTest, MemorySplitExhaustsBudget) {
  CostModel cm(Params());
  WorkloadSpec w{0.4, 0.3, 0.2, 0.1};
  const TheoreticalOptimum opt =
      MinimizeCost(w, cm, lsm::CompactionPolicy::kLeveling);
  EXPECT_NEAR(opt.config.mf_bits + opt.config.mb_bits,
              cm.params().total_memory_bits, 1.0);
  EXPECT_GE(opt.config.mb_bits, MinBufferBits(cm.params()) - 1.0);
}

}  // namespace
}  // namespace camal::model
