#include <vector>

#include <gtest/gtest.h>

#include "lsm/block_cache.h"
#include "lsm/compaction.h"
#include "lsm/memtable.h"
#include "lsm/run.h"
#include "sim/device.h"

namespace camal::lsm {
namespace {

sim::DeviceConfig QuietDevice() {
  sim::DeviceConfig cfg;
  cfg.io_jitter_frac = 0.0;
  return cfg;
}

std::vector<Entry> MakeEntries(int n, uint64_t stride = 2) {
  std::vector<Entry> entries;
  for (int i = 1; i <= n; ++i) {
    entries.push_back(Entry{stride * static_cast<uint64_t>(i),
                            static_cast<uint64_t>(i), false});
  }
  return entries;
}

TEST(MemtableTest, PutGetOverwrite) {
  sim::Device dev(QuietDevice());
  Memtable mem;
  mem.Put(5, 100, false, &dev);
  mem.Put(5, 200, false, &dev);
  Entry e;
  ASSERT_TRUE(mem.Get(5, &e, &dev));
  EXPECT_EQ(e.value, 200u);
  EXPECT_EQ(mem.size(), 1u);
}

TEST(MemtableTest, TombstoneVisible) {
  sim::Device dev(QuietDevice());
  Memtable mem;
  mem.Put(5, 100, false, &dev);
  mem.Put(5, 0, true, &dev);
  Entry e;
  ASSERT_TRUE(mem.Get(5, &e, &dev));
  EXPECT_TRUE(e.tombstone);
}

TEST(MemtableTest, DrainSortedOrderAndClear) {
  sim::Device dev(QuietDevice());
  Memtable mem;
  mem.Put(30, 3, false, &dev);
  mem.Put(10, 1, false, &dev);
  mem.Put(20, 2, false, &dev);
  const std::vector<Entry> drained = mem.DrainSorted();
  ASSERT_EQ(drained.size(), 3u);
  EXPECT_EQ(drained[0].key, 10u);
  EXPECT_EQ(drained[1].key, 20u);
  EXPECT_EQ(drained[2].key, 30u);
  EXPECT_TRUE(mem.empty());
}

TEST(MemtableTest, CollectFromRespectsStartAndLimit) {
  sim::Device dev(QuietDevice());
  Memtable mem;
  for (uint64_t k = 1; k <= 10; ++k) mem.Put(k * 10, k, false, &dev);
  std::vector<Entry> out;
  mem.CollectFrom(35, 3, &out);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].key, 40u);
  EXPECT_EQ(out[2].key, 60u);
}

TEST(MemtableTest, ChargesCpu) {
  sim::Device dev(QuietDevice());
  Memtable mem;
  mem.Put(1, 1, false, &dev);
  EXPECT_GT(dev.elapsed_ns(), 0.0);
}

TEST(RunTest, GetFindsExistingKey) {
  sim::Device dev(QuietDevice());
  BlockCache cache(0);
  ::camal::lsm::Run run(1, MakeEntries(100), 8, 10.0, 128, 0);
  Entry e;
  EXPECT_EQ(run.Get(100, &e, &dev, &cache), Run::LookupOutcome::kFound);
  EXPECT_EQ(e.value, 50u);
  EXPECT_EQ(dev.block_reads(), 1u);
}

TEST(RunTest, FilterBlocksMissesWithoutIo) {
  sim::Device dev(QuietDevice());
  BlockCache cache(0);
  ::camal::lsm::Run run(1, MakeEntries(2000), 8, 14.0, 128, 0);
  int ios = 0;
  for (uint64_t k = 3; k < 203; k += 2) {  // odd keys: absent, in range
    Entry e;
    const auto outcome = run.Get(k, &e, &dev, &cache);
    EXPECT_NE(outcome, Run::LookupOutcome::kFound);
    if (outcome == Run::LookupOutcome::kNotFoundAfterIo) ++ios;
  }
  // At 14 bpk virtually everything is filtered without I/O.
  EXPECT_LE(ios, 3);
  EXPECT_EQ(dev.block_reads(), static_cast<uint64_t>(ios));
}

TEST(RunTest, OutOfRangeKeysSkipWithoutProbeIo) {
  sim::Device dev(QuietDevice());
  BlockCache cache(0);
  ::camal::lsm::Run run(1, MakeEntries(100), 8, 10.0, 128, 0);
  Entry e;
  EXPECT_EQ(run.Get(1, &e, &dev, &cache), Run::LookupOutcome::kFilteredOut);
  EXPECT_EQ(run.Get(99999, &e, &dev, &cache),
            Run::LookupOutcome::kFilteredOut);
  EXPECT_EQ(dev.block_reads(), 0u);
}

TEST(RunTest, CacheAvoidsSecondRead) {
  sim::Device dev(QuietDevice());
  BlockCache cache(16);
  ::camal::lsm::Run run(1, MakeEntries(100), 8, 10.0, 128, 0);
  Entry e;
  run.Get(100, &e, &dev, &cache);
  EXPECT_EQ(dev.block_reads(), 1u);
  run.Get(100, &e, &dev, &cache);
  EXPECT_EQ(dev.block_reads(), 1u);  // second access served by cache
}

TEST(RunTest, FirstGeqBoundaries) {
  sim::Device dev(QuietDevice());
  ::camal::lsm::Run run(1, MakeEntries(10), 4, 10.0, 128, 0);  // keys 2..20 even
  EXPECT_EQ(run.FirstGeq(1, &dev), 0u);
  EXPECT_EQ(run.FirstGeq(2, &dev), 0u);
  EXPECT_EQ(run.FirstGeq(3, &dev), 1u);
  EXPECT_EQ(run.FirstGeq(20, &dev), 9u);
  EXPECT_EQ(run.FirstGeq(21, &dev), 10u);
}

TEST(RunTest, BlockAndFileCounts) {
  sim::Device dev(QuietDevice());
  ::camal::lsm::Run run(7, MakeEntries(100), 8, 10.0, 128, /*file_bytes=*/128 * 25);
  EXPECT_EQ(run.num_blocks(), 13u);  // ceil(100/8)
  EXPECT_EQ(run.num_files(), 4u);    // ceil(100/25)
  EXPECT_EQ(run.id(), 7u);
  EXPECT_EQ(run.min_key(), 2u);
  EXPECT_EQ(run.max_key(), 200u);
}

TEST(CompactionTest, MergeShadowingNewestWins) {
  auto old_run = std::make_shared<const ::camal::lsm::Run>(
      1, std::vector<Entry>{{10, 1, false}, {20, 1, false}}, 8, 0.0, 128, 0);
  auto new_run = std::make_shared<const ::camal::lsm::Run>(
      2, std::vector<Entry>{{10, 2, false}, {30, 2, false}}, 8, 0.0, 128, 0);
  const std::vector<Entry> merged =
      MergeRuns(std::vector<RunPtr>{new_run, old_run}, /*drop_tombstones=*/false);
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].key, 10u);
  EXPECT_EQ(merged[0].value, 2u);  // newest version wins
  EXPECT_EQ(merged[1].key, 20u);
  EXPECT_EQ(merged[2].key, 30u);
}

TEST(CompactionTest, TombstonesCarriedWhenNotBottommost) {
  auto old_run = std::make_shared<const ::camal::lsm::Run>(
      1, std::vector<Entry>{{10, 1, false}}, 8, 0.0, 128, 0);
  auto new_run = std::make_shared<const ::camal::lsm::Run>(
      2, std::vector<Entry>{{10, 0, true}}, 8, 0.0, 128, 0);
  const std::vector<Entry> merged = MergeRuns(std::vector<RunPtr>{new_run, old_run}, false);
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_TRUE(merged[0].tombstone);
}

TEST(CompactionTest, TombstonesDroppedAtBottom) {
  auto old_run = std::make_shared<const ::camal::lsm::Run>(
      1, std::vector<Entry>{{10, 1, false}, {20, 1, false}}, 8, 0.0, 128, 0);
  auto new_run = std::make_shared<const ::camal::lsm::Run>(
      2, std::vector<Entry>{{10, 0, true}}, 8, 0.0, 128, 0);
  const std::vector<Entry> merged = MergeRuns(std::vector<RunPtr>{new_run, old_run}, true);
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].key, 20u);
}

TEST(CompactionTest, ThreeWayMergeKeepsSortedOrder) {
  auto r1 = std::make_shared<const ::camal::lsm::Run>(
      1, std::vector<Entry>{{5, 1, false}, {50, 1, false}}, 8, 0.0, 128, 0);
  auto r2 = std::make_shared<const ::camal::lsm::Run>(
      2, std::vector<Entry>{{10, 2, false}, {40, 2, false}}, 8, 0.0, 128, 0);
  auto r3 = std::make_shared<const ::camal::lsm::Run>(
      3, std::vector<Entry>{{20, 3, false}, {30, 3, false}}, 8, 0.0, 128, 0);
  const std::vector<Entry> merged = MergeRuns(std::vector<RunPtr>{r3, r2, r1}, false);
  ASSERT_EQ(merged.size(), 6u);
  for (size_t i = 1; i < merged.size(); ++i) {
    EXPECT_LT(merged[i - 1].key, merged[i].key);
  }
}

}  // namespace
}  // namespace camal::lsm
