// io_uring read-submission path of engine::FileEngine: ring wrapper unit
// coverage, uring-vs-pread bit-equality (logical results, per-op I/O
// counts, EngineCounters) over mixed batches at several queue depths and
// pool sizes, backend/fallback reporting, and mid-batch ReconfigureShard
// determinism on the ring path. Auto-skips (with a clear message) when
// the build or kernel lacks io_uring — the pread fallback is then the
// path under test elsewhere (file_engine_test).

#include <fcntl.h>
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "engine/file_engine.h"
#include "engine/io_ring.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace camal::engine {
namespace {

#define SKIP_WITHOUT_URING()                                                \
  do {                                                                      \
    if (!fileio::IoRingSupported()) {                                       \
      GTEST_SKIP() << "io_uring unavailable (build configured with "        \
                      "CAMAL_WITH_URING=OFF, or the kernel refuses "        \
                      "io_uring_setup); FileEngine stays on its pread "     \
                      "path, which file_engine_test covers";                \
    }                                                                       \
  } while (0)

std::string TestBase() {
  if (const char* env = std::getenv("CAMAL_FILE_WORKDIR")) return env;
  return ::testing::TempDir();
}

std::string UniqueDir(const std::string& tag) {
  return TestBase() + "/camal_uring_test_" + tag + "_" +
         std::to_string(FileEngine::NextUniqueId());
}

lsm::Options SmallOptions() {
  lsm::Options opts;
  opts.buffer_bytes = 64 * 128;  // 64 entries per shard slice
  opts.bloom_bits = 8 * 4000;
  opts.block_cache_bytes = 8 * 4096;
  return opts;
}

/// The deterministic mixed stream of the engine suites (puts, hit/miss
/// gets, deletes, scans) — every op kind a submission list can carry.
std::vector<Op> MixedStream(size_t num_ops, uint64_t seed) {
  std::vector<Op> ops;
  ops.reserve(num_ops);
  util::Random rng(seed);
  for (size_t i = 0; i < num_ops; ++i) {
    Op op;
    const double roll = rng.NextDouble();
    if (roll < 0.35) {
      op.kind = OpKind::kPut;
      op.key = 2 * rng.Uniform(1500);
      op.value = static_cast<uint64_t>(i);
    } else if (roll < 0.8) {
      op.kind = OpKind::kGet;
      op.key = rng.Uniform(3000);  // half will be odd = misses
    } else if (roll < 0.9) {
      op.kind = OpKind::kDelete;
      op.key = 2 * rng.Uniform(1500);
    } else {
      op.kind = OpKind::kScan;
      op.key = rng.Uniform(3000);
      op.scan_len = 16;
    }
    ops.push_back(op);
  }
  return ops;
}

struct StreamOutcome {
  std::vector<bool> found;
  std::vector<uint64_t> ios;
  std::vector<size_t> scan_hits;
  sim::DeviceSnapshot cost;
  EngineCounters counters;
  uint64_t total_entries = 0;
  std::vector<uint64_t> shard_reads;
  std::vector<uint64_t> shard_writes;
};

/// Runs `ops` through ExecuteOps in uneven slices and snapshots every
/// deterministic observable.
StreamOutcome RunBatched(FileEngine* eng, const std::vector<Op>& ops) {
  StreamOutcome o;
  o.found.resize(ops.size());
  o.ios.resize(ops.size());
  o.scan_hits.resize(ops.size());
  size_t at = 0;
  const size_t slices[] = {1, 7, 64, 256, 1000};
  size_t slice = 0;
  while (at < ops.size()) {
    const size_t n = std::min(slices[slice++ % 5], ops.size() - at);
    std::vector<OpResult> results(n);
    eng->ExecuteOps(ops.data() + at, n, results.data());
    for (size_t i = 0; i < n; ++i) {
      o.found[at + i] = results[i].found;
      o.ios[at + i] = results[i].ios;
      o.scan_hits[at + i] = results[i].scan_hits;
    }
    at += n;
  }
  o.cost = eng->CostSnapshot();
  o.counters = eng->AggregateCounters();
  o.total_entries = eng->TotalEntries();
  for (size_t s = 0; s < eng->NumShards(); ++s) {
    o.shard_reads.push_back(eng->ShardCostSnapshot(s).block_reads);
    o.shard_writes.push_back(eng->ShardCostSnapshot(s).block_writes);
  }
  return o;
}

void ExpectBitIdentical(const StreamOutcome& pread, const StreamOutcome& uring,
                        const std::string& label) {
  SCOPED_TRACE(label);
  ASSERT_EQ(pread.found.size(), uring.found.size());
  for (size_t i = 0; i < pread.found.size(); ++i) {
    ASSERT_EQ(pread.found[i], uring.found[i]) << "op " << i;
    ASSERT_EQ(pread.ios[i], uring.ios[i]) << "op " << i;
    ASSERT_EQ(pread.scan_hits[i], uring.scan_hits[i]) << "op " << i;
  }
  EXPECT_EQ(pread.cost.block_reads, uring.cost.block_reads);
  EXPECT_EQ(pread.cost.block_writes, uring.cost.block_writes);
  EXPECT_EQ(pread.counters.flushes, uring.counters.flushes);
  EXPECT_EQ(pread.counters.merges, uring.counters.merges);
  EXPECT_EQ(pread.counters.compaction_block_reads,
            uring.counters.compaction_block_reads);
  EXPECT_EQ(pread.counters.compaction_block_writes,
            uring.counters.compaction_block_writes);
  EXPECT_EQ(pread.counters.transition_ios, uring.counters.transition_ios);
  EXPECT_EQ(pread.total_entries, uring.total_entries);
  EXPECT_EQ(pread.shard_reads, uring.shard_reads);
  EXPECT_EQ(pread.shard_writes, uring.shard_writes);
}

TEST(IoRingTest, ReadsBlocksAtOffsets) {
  SKIP_WITHOUT_URING();
  const std::string path = UniqueDir("raw") + ".dat";
  const int wfd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  ASSERT_GE(wfd, 0);
  std::vector<char> block(4096);
  for (char fill : {'A', 'B', 'C'}) {
    std::memset(block.data(), fill, block.size());
    ASSERT_EQ(::write(wfd, block.data(), block.size()),
              static_cast<ssize_t>(block.size()));
  }
  ::close(wfd);
  const int rfd = ::open(path.c_str(), O_RDONLY);
  ASSERT_GE(rfd, 0);

  fileio::IoRing ring(4);
  ASSERT_TRUE(ring.ok());
  EXPECT_GE(ring.capacity(), 4u);
  std::vector<std::vector<char>> bufs(3, std::vector<char>(4096));
  for (uint64_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(ring.PrepRead(rfd, bufs[i].data(), 4096, i * 4096, i));
  }
  ASSERT_EQ(ring.Submit(), 3);
  std::vector<fileio::IoRing::Completion> comps;
  int got = 0;
  while (got < 3) {
    const int n = ring.WaitCompletions(1, &comps);
    ASSERT_GT(n, 0);
    got += n;
  }
  std::vector<bool> seen(3, false);
  for (const auto& c : comps) {
    ASSERT_LT(c.user_data, 3u);
    EXPECT_EQ(c.result, 4096);
    seen[c.user_data] = true;
    EXPECT_EQ(bufs[c.user_data][0], static_cast<char>('A' + c.user_data));
  }
  EXPECT_TRUE(seen[0] && seen[1] && seen[2]);
  ::close(rfd);
  ::unlink(path.c_str());
}

TEST(IoUringEngineTest, BackendReportingAndFallbackMatrix) {
  // io_mode=pread never engages the ring, whatever the depth; auto at
  // depth 1 preserves today's behavior; auto at depth > 1 and uring at
  // any depth engage it when supported.
  {
    FileEngineConfig cfg;
    cfg.workdir = UniqueDir("mode_pread");
    cfg.io_mode = IoMode::kPread;
    cfg.io_queue_depth = 16;
    FileEngine eng(2, SmallOptions(), cfg);
    EXPECT_STREQ(eng.io_backend(), "pread");
    EXPECT_EQ(eng.ShardQueueDepth(0), 1u);
  }
  {
    FileEngineConfig cfg;
    cfg.workdir = UniqueDir("mode_auto1");
    cfg.io_mode = IoMode::kAuto;
    cfg.io_queue_depth = 1;
    FileEngine eng(2, SmallOptions(), cfg);
    EXPECT_STREQ(eng.io_backend(), "pread");
  }
  SKIP_WITHOUT_URING();
  {
    FileEngineConfig cfg;
    cfg.workdir = UniqueDir("mode_auto8");
    cfg.io_mode = IoMode::kAuto;
    cfg.io_queue_depth = 8;
    FileEngine eng(2, SmallOptions(), cfg);
    EXPECT_STREQ(eng.io_backend(), "uring");
    EXPECT_EQ(eng.ShardQueueDepth(0), 8u);
    EXPECT_EQ(eng.ShardQueueDepth(1), 8u);
  }
  {
    FileEngineConfig cfg;
    cfg.workdir = UniqueDir("mode_uring1");
    cfg.io_mode = IoMode::kUring;
    cfg.io_queue_depth = 1;
    FileEngine eng(2, SmallOptions(), cfg);
    EXPECT_STREQ(eng.io_backend(), "uring");
    EXPECT_EQ(eng.ShardQueueDepth(0), 1u);
  }
  {
    // Per-shard options override the engine default.
    lsm::Options opts = SmallOptions();
    opts.io_queue_depth = 32;
    FileEngineConfig cfg;
    cfg.workdir = UniqueDir("opts_override");
    cfg.io_mode = IoMode::kAuto;
    cfg.io_queue_depth = 1;
    FileEngine eng(2, opts, cfg);
    EXPECT_STREQ(eng.io_backend(), "uring");
    EXPECT_EQ(eng.ShardQueueDepth(0), 32u);
  }
}

TEST(IoUringEngineTest, UringMatchesPreadMixedBatches) {
  SKIP_WITHOUT_URING();
  // The determinism contract of the tentpole: at every queue depth and
  // pool size, the ring path must be bit-identical to the pread path in
  // everything except wall-clock.
  const std::vector<Op> ops = MixedStream(4000, 31);
  for (const size_t pool_size : {size_t{1}, size_t{4}}) {
    util::ThreadPool pool(pool_size);

    FileEngineConfig pread_cfg;
    pread_cfg.workdir = UniqueDir("eq_pread");
    pread_cfg.io_mode = IoMode::kPread;
    FileEngine pread_eng(3, SmallOptions(), pread_cfg);
    if (pool_size > 1) pread_eng.set_pool(&pool);
    const StreamOutcome baseline = RunBatched(&pread_eng, ops);

    for (const uint32_t qd : {1u, 8u, 32u}) {
      FileEngineConfig uring_cfg;
      uring_cfg.workdir = UniqueDir("eq_uring");
      uring_cfg.io_mode = IoMode::kUring;
      uring_cfg.io_queue_depth = qd;
      FileEngine uring_eng(3, SmallOptions(), uring_cfg);
      ASSERT_STREQ(uring_eng.io_backend(), "uring");
      if (pool_size > 1) uring_eng.set_pool(&pool);
      const StreamOutcome outcome = RunBatched(&uring_eng, ops);
      ExpectBitIdentical(baseline, outcome,
                         "qd=" + std::to_string(qd) +
                             " pool=" + std::to_string(pool_size));
    }
  }
}

TEST(IoUringEngineTest, ZeroCacheStillBitIdentical) {
  SKIP_WITHOUT_URING();
  // With no block cache every access is charged — the replay path must
  // count each one even though the window dedups physical reads.
  lsm::Options opts = SmallOptions();
  opts.block_cache_bytes = 0;
  const std::vector<Op> ops = MixedStream(2500, 47);

  FileEngineConfig pread_cfg;
  pread_cfg.workdir = UniqueDir("nocache_pread");
  pread_cfg.io_mode = IoMode::kPread;
  FileEngine pread_eng(2, opts, pread_cfg);
  const StreamOutcome baseline = RunBatched(&pread_eng, ops);

  FileEngineConfig uring_cfg;
  uring_cfg.workdir = UniqueDir("nocache_uring");
  uring_cfg.io_mode = IoMode::kUring;
  uring_cfg.io_queue_depth = 16;
  FileEngine uring_eng(2, opts, uring_cfg);
  const StreamOutcome outcome = RunBatched(&uring_eng, ops);
  ExpectBitIdentical(baseline, outcome, "zero-cache qd=16");
}

TEST(IoUringEngineTest, ReconfigureShardMidBatchDeterministicOnUring) {
  SKIP_WITHOUT_URING();
  // Mid-stream per-shard reconfiguration — including retuning the queue
  // depth itself — must leave the ring path bit-identical to the pread
  // path making the same reconfigurations at the same op boundaries.
  const std::vector<Op> ops = MixedStream(3000, 83);

  auto run_with_retunes = [&](IoMode mode, const std::string& tag) {
    FileEngineConfig cfg;
    cfg.workdir = UniqueDir(tag);
    cfg.io_mode = mode;
    cfg.io_queue_depth = 8;
    FileEngine eng(2, SmallOptions(), cfg);

    StreamOutcome o;
    o.found.resize(ops.size());
    o.ios.resize(ops.size());
    o.scan_hits.resize(ops.size());
    size_t at = 0;
    size_t batch_no = 0;
    while (at < ops.size()) {
      const size_t n = std::min<size_t>(250, ops.size() - at);
      std::vector<OpResult> results(n);
      eng.ExecuteOps(ops.data() + at, n, results.data());
      for (size_t i = 0; i < n; ++i) {
        o.found[at + i] = results[i].found;
        o.ios[at + i] = results[i].ios;
        o.scan_hits[at + i] = results[i].scan_hits;
      }
      at += n;
      // Between batches: shrink/grow shard 0's cache and flip the queue
      // depth — the dynamic-tuner surface, driven mid-run.
      ++batch_no;
      lsm::Options retune = SmallOptions();
      retune.block_cache_bytes = (batch_no % 2 == 0) ? 4 * 4096 : 16 * 4096;
      retune.io_queue_depth = (batch_no % 2 == 0) ? 4 : 32;
      eng.ReconfigureShard(0, retune);
    }
    o.cost = eng.CostSnapshot();
    o.counters = eng.AggregateCounters();
    o.total_entries = eng.TotalEntries();
    for (size_t s = 0; s < eng.NumShards(); ++s) {
      o.shard_reads.push_back(eng.ShardCostSnapshot(s).block_reads);
      o.shard_writes.push_back(eng.ShardCostSnapshot(s).block_writes);
    }
    return o;
  };

  const StreamOutcome pread = run_with_retunes(IoMode::kPread, "retune_pread");
  const StreamOutcome uring = run_with_retunes(IoMode::kUring, "retune_uring");
  ExpectBitIdentical(pread, uring, "mid-batch retune");
}

}  // namespace
}  // namespace camal::engine
