// Per-shard manifest and its CRC-framed record-log substrate
// (engine::fileio): frame round-trips, CRC rejection of flipped bytes,
// torn-tail detection and truncation, replay of every record type,
// rotate-and-rename atomicity (including a failed rename), and the
// empty/corrupt-header files that must recover to the empty state.

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "engine/file_ops.h"
#include "engine/manifest.h"
#include "engine/record_log.h"

namespace camal::engine::fileio {
namespace {

namespace fs = std::filesystem;

std::string TestBase() {
  if (const char* env = std::getenv("CAMAL_FILE_WORKDIR")) return env;
  return ::testing::TempDir();
}

/// A fresh shard-style directory per test.
class ManifestTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = TestBase() + "/camal_manifest_test_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string dir_;
};

uint64_t FileSize(const std::string& path) {
  return static_cast<uint64_t>(fs::file_size(path));
}

/// Truncates or corrupts a file in place (the crash/bit-rot primitive of
/// this suite; plain stdio, outside any FileOps seam).
void TruncateFile(const std::string& path, uint64_t size) {
  ASSERT_EQ(::truncate(path.c_str(), static_cast<off_t>(size)), 0);
}

void FlipByte(const std::string& path, uint64_t offset) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.is_open());
  f.seekg(static_cast<std::streamoff>(offset));
  char c = 0;
  f.read(&c, 1);
  c = static_cast<char>(c ^ 0x40);
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(&c, 1);
}

lsm::Options TestOptions() {
  lsm::Options opts;
  opts.size_ratio = 6.0;
  opts.buffer_bytes = 64 * 128;
  opts.bloom_bits = 8 * 4000;
  opts.block_cache_bytes = 8 * 4096;
  opts.policy = lsm::CompactionPolicy::kTiering;
  opts.runs_per_level = 3;
  opts.file_bytes = 1 << 20;
  opts.io_queue_depth = 4;
  return opts;
}

void ExpectOptionsEq(const lsm::Options& a, const lsm::Options& b) {
  EXPECT_DOUBLE_EQ(a.size_ratio, b.size_ratio);
  EXPECT_EQ(a.entry_bytes, b.entry_bytes);
  EXPECT_EQ(a.buffer_bytes, b.buffer_bytes);
  EXPECT_EQ(a.bloom_bits, b.bloom_bits);
  EXPECT_EQ(a.block_cache_bytes, b.block_cache_bytes);
  EXPECT_EQ(a.policy, b.policy);
  EXPECT_EQ(a.runs_per_level, b.runs_per_level);
  EXPECT_EQ(a.file_bytes, b.file_bytes);
  EXPECT_EQ(a.io_queue_depth, b.io_queue_depth);
}

ManifestRunMeta TestRun(uint64_t id, uint64_t entries) {
  ManifestRunMeta run;
  run.id = id;
  run.num_entries = entries;
  run.min_key = 2;
  run.max_key = 2 * entries;
  run.fence = {2, 100, 300, 2 * entries};
  run.bloom_bits = 512;
  run.bloom_hashes = 5;
  run.bloom_bpk = 8.0;
  run.bloom_words = {0xdeadbeefULL, 0x12345678ULL,
                     0xfeedface00000000ULL + id, 0};
  return run;
}

void ExpectRunEq(const ManifestRunMeta& a, const ManifestRunMeta& b) {
  EXPECT_EQ(a.id, b.id);
  EXPECT_EQ(a.num_entries, b.num_entries);
  EXPECT_EQ(a.min_key, b.min_key);
  EXPECT_EQ(a.max_key, b.max_key);
  EXPECT_EQ(a.fence, b.fence);
  EXPECT_EQ(a.bloom_bits, b.bloom_bits);
  EXPECT_EQ(a.bloom_hashes, b.bloom_hashes);
  EXPECT_DOUBLE_EQ(a.bloom_bpk, b.bloom_bpk);
  EXPECT_EQ(a.bloom_words, b.bloom_words);
}

// ------------------------------------------------------------- record log

TEST_F(ManifestTest, RecordFileRoundTrip) {
  const std::string path = dir_ + "/log";
  const std::vector<std::string> payloads = {
      "first", std::string(1, '\0'), "", std::string(5000, 'x'), "tail"};
  {
    RecordWriter w(FileOps::Real(), path);
    for (const auto& p : payloads) w.Append(p);
    EXPECT_TRUE(w.has_pending());
    EXPECT_EQ(w.committed_bytes(), 0u);  // nothing on disk pre-commit
    w.Commit();
    EXPECT_FALSE(w.has_pending());
    EXPECT_EQ(w.appended_records(), payloads.size());
  }
  const RecordFileContents got = ReadRecordFile(path);
  ASSERT_TRUE(got.exists);
  EXPECT_FALSE(got.torn_tail);
  EXPECT_EQ(got.valid_bytes, FileSize(path));
  ASSERT_EQ(got.records.size(), payloads.size());
  for (size_t i = 0; i < payloads.size(); ++i) {
    EXPECT_EQ(got.records[i], payloads[i]) << "record " << i;
  }
}

TEST_F(ManifestTest, WriterResumesAppendOffsetAcrossReopen) {
  const std::string path = dir_ + "/log";
  {
    RecordWriter w(FileOps::Real(), path);
    w.Append("one");
    w.Commit();
  }
  {
    RecordWriter w(FileOps::Real(), path);  // reopens at existing size
    w.Append("two");
    w.Commit();
  }
  const RecordFileContents got = ReadRecordFile(path);
  ASSERT_EQ(got.records.size(), 2u);
  EXPECT_EQ(got.records[0], "one");
  EXPECT_EQ(got.records[1], "two");
}

TEST_F(ManifestTest, AbsentAndEmptyFilesParseCleanly) {
  const RecordFileContents absent = ReadRecordFile(dir_ + "/nope");
  EXPECT_FALSE(absent.exists);
  EXPECT_TRUE(absent.records.empty());

  { std::ofstream(dir_ + "/empty").flush(); }
  const RecordFileContents empty = ReadRecordFile(dir_ + "/empty");
  EXPECT_TRUE(empty.exists);
  EXPECT_TRUE(empty.records.empty());
  EXPECT_FALSE(empty.torn_tail);
  EXPECT_EQ(empty.valid_bytes, 0u);
}

TEST_F(ManifestTest, CrcRejectsFlippedPayloadByte) {
  const std::string path = dir_ + "/log";
  uint64_t first_frame = 0;
  {
    RecordWriter w(FileOps::Real(), path);
    w.Append("good record");
    w.Commit();
    first_frame = w.committed_bytes();
    w.Append("soon to be damaged");
    w.Append("unreachable after the damage");
    w.Commit();
  }
  // Flip one payload byte of the middle record: its CRC must reject it,
  // and everything after it is untrusted tail by the append-only rule.
  FlipByte(path, first_frame + 8 + 2);
  const RecordFileContents got = ReadRecordFile(path);
  ASSERT_TRUE(got.exists);
  EXPECT_TRUE(got.torn_tail);
  ASSERT_EQ(got.records.size(), 1u);
  EXPECT_EQ(got.records[0], "good record");
  EXPECT_EQ(got.valid_bytes, first_frame);
}

TEST_F(ManifestTest, TornTailDetectedAndTruncatable) {
  const std::string path = dir_ + "/log";
  uint64_t two_frames = 0;
  {
    RecordWriter w(FileOps::Real(), path);
    w.Append("alpha");
    w.Append("beta");
    w.Commit();
    two_frames = w.committed_bytes();
    w.Append("gamma-torn-by-the-crash");
    w.Commit();
  }
  // Crash mid-write: only part of the last frame reached the platter.
  TruncateFile(path, two_frames + 11);
  {
    const RecordFileContents got = ReadRecordFile(path);
    EXPECT_TRUE(got.torn_tail);
    ASSERT_EQ(got.records.size(), 2u);
    EXPECT_EQ(got.valid_bytes, two_frames);
  }
  // Recovery repair: truncate at the parse point, then keep appending —
  // the log is whole again.
  {
    RecordWriter w(FileOps::Real(), path);
    w.TruncateTo(two_frames);
    w.Append("delta");
    w.Commit();
  }
  const RecordFileContents healed = ReadRecordFile(path);
  EXPECT_FALSE(healed.torn_tail);
  ASSERT_EQ(healed.records.size(), 3u);
  EXPECT_EQ(healed.records[2], "delta");
}

TEST_F(ManifestTest, AbsurdLengthHeaderIsATornTail) {
  const std::string path = dir_ + "/log";
  {
    RecordWriter w(FileOps::Real(), path);
    w.Append("fine");
    w.Commit();
  }
  // Append garbage that claims a multi-GB payload: the reader must stop
  // at the claim, not try to allocate it.
  {
    std::ofstream f(path, std::ios::app | std::ios::binary);
    const uint32_t absurd = 0x7fffffffu;
    f.write(reinterpret_cast<const char*>(&absurd), sizeof(absurd));
    f.write("junkjunk", 8);
  }
  const RecordFileContents got = ReadRecordFile(path);
  EXPECT_TRUE(got.torn_tail);
  ASSERT_EQ(got.records.size(), 1u);
}

// --------------------------------------------------------------- manifest

TEST_F(ManifestTest, ReplaysInitFlushCompactOptions) {
  const lsm::Options opts = TestOptions();
  {
    Manifest m(FileOps::Real(), dir_, /*sync=*/false);
    m.LogInit(7, opts);
    m.LogFlush(/*new_epoch=*/1, TestRun(1, 64));
    m.LogFlush(/*new_epoch=*/2, TestRun(2, 64));
    // Compact runs 1+2 of level 0 into run 3 of level 1 — one record.
    m.LogCompact(0, {1, 2}, {TestRun(3, 128)});
    lsm::Options retuned = opts;
    retuned.buffer_bytes *= 2;
    m.LogOptions(retuned);
    EXPECT_EQ(m.record_count(), 5u);
  }
  RecoveredShardState st;
  ASSERT_TRUE(RecoverManifest(Manifest::PathFor(dir_), &st));
  EXPECT_TRUE(st.valid);
  EXPECT_FALSE(st.tail_torn);
  EXPECT_EQ(st.num_records, 5u);
  EXPECT_EQ(st.wal_epoch, 2u);
  EXPECT_EQ(st.next_run_id, 4u);  // one past the largest id ever logged
  EXPECT_FALSE(st.hibernated);
  // Level 0 emptied by the compaction; level 1 holds the output.
  ASSERT_EQ(st.levels.size(), 2u);
  EXPECT_TRUE(st.levels[0].empty());
  ASSERT_EQ(st.levels[1].size(), 1u);
  ExpectRunEq(st.levels[1][0], TestRun(3, 128));
  lsm::Options retuned = TestOptions();
  retuned.buffer_bytes *= 2;
  ExpectOptionsEq(st.options, retuned);
}

TEST_F(ManifestTest, ReplaysHibernateAndWake) {
  {
    Manifest m(FileOps::Real(), dir_, /*sync=*/false);
    m.LogInit(0, TestOptions());
    m.LogFlush(1, TestRun(1, 64));
    m.LogHibernate(/*memtable_entries=*/17, {{1, 64}});
  }
  RecoveredShardState st;
  ASSERT_TRUE(RecoverManifest(Manifest::PathFor(dir_), &st));
  EXPECT_TRUE(st.hibernated);
  EXPECT_EQ(st.hib_memtable_entries, 17u);
  ASSERT_EQ(st.hib_shape.size(), 1u);
  EXPECT_EQ(st.hib_shape[0], (std::pair<uint64_t, uint64_t>{1, 64}));

  {
    Manifest m(FileOps::Real(), dir_, /*sync=*/false, st.num_records);
    m.LogWake();
  }
  RecoveredShardState awake;
  ASSERT_TRUE(RecoverManifest(Manifest::PathFor(dir_), &awake));
  EXPECT_FALSE(awake.hibernated);
  ASSERT_EQ(awake.levels.size(), 1u);  // runs survive the round trip
  ExpectRunEq(awake.levels[0][0], TestRun(1, 64));
}

TEST_F(ManifestTest, AbsentOrEmptyManifestRecoversToEmptyState) {
  RecoveredShardState st;
  EXPECT_FALSE(RecoverManifest(Manifest::PathFor(dir_), &st));
  EXPECT_FALSE(st.valid);

  { std::ofstream(Manifest::PathFor(dir_)).flush(); }
  EXPECT_FALSE(RecoverManifest(Manifest::PathFor(dir_), &st));
  EXPECT_FALSE(st.valid);
}

TEST_F(ManifestTest, CorruptHeaderRecoversToEmptyState) {
  // Garbage from byte 0: no record ever replays, so the shard must be
  // treated as never-initialized, not half-recovered.
  {
    std::ofstream f(Manifest::PathFor(dir_), std::ios::binary);
    f << "this is not a manifest at all, not even close";
  }
  RecoveredShardState st;
  EXPECT_FALSE(RecoverManifest(Manifest::PathFor(dir_), &st));
  EXPECT_FALSE(st.valid);
}

TEST_F(ManifestTest, TornTailKeepsThePrefixState) {
  uint64_t before_compact = 0;
  {
    Manifest m(FileOps::Real(), dir_, /*sync=*/false);
    m.LogInit(0, TestOptions());
    m.LogFlush(1, TestRun(1, 64));
    before_compact = FileSize(m.path());
    m.LogCompact(0, {1}, {TestRun(2, 64)});
  }
  // Tear the compact record in half: recovery must land on the pre-compact
  // state (run 1 still live) and report the truncation point.
  TruncateFile(Manifest::PathFor(dir_), before_compact + 7);
  RecoveredShardState st;
  ASSERT_TRUE(RecoverManifest(Manifest::PathFor(dir_), &st));
  EXPECT_TRUE(st.tail_torn);
  EXPECT_EQ(st.valid_bytes, before_compact);
  ASSERT_EQ(st.levels.size(), 1u);
  ASSERT_EQ(st.levels[0].size(), 1u);
  EXPECT_EQ(st.levels[0][0].id, 1u);
  // The torn record's output id was never applied, so id 2 is free again
  // (recovery's orphan sweep removes any run_2 file the crashed process
  // left behind before the id is handed out anew).
  EXPECT_EQ(st.next_run_id, 2u);
}

TEST_F(ManifestTest, RotationCompactsToOneSnapshotRecord) {
  RecoveredShardState st;
  {
    Manifest m(FileOps::Real(), dir_, /*sync=*/false);
    m.LogInit(3, TestOptions());
    for (uint64_t i = 1; i <= 6; ++i) m.LogFlush(i, TestRun(i, 64));
    m.LogCompact(0, {1, 2, 3, 4, 5, 6}, {TestRun(7, 384)});
    ASSERT_TRUE(RecoverManifest(m.path(), &st));
    const uint64_t long_log = FileSize(m.path());
    ASSERT_TRUE(m.Rotate(st));
    EXPECT_EQ(m.record_count(), 1u);
    EXPECT_LT(FileSize(m.path()), long_log);
    EXPECT_FALSE(fs::exists(m.path() + ".tmp"));
  }
  // The one-record log replays to the identical state.
  RecoveredShardState after;
  ASSERT_TRUE(RecoverManifest(Manifest::PathFor(dir_), &after));
  EXPECT_EQ(after.num_records, 1u);
  EXPECT_EQ(after.wal_epoch, st.wal_epoch);
  EXPECT_EQ(after.next_run_id, st.next_run_id);
  ASSERT_EQ(after.levels.size(), st.levels.size());
  for (size_t l = 0; l < st.levels.size(); ++l) {
    ASSERT_EQ(after.levels[l].size(), st.levels[l].size()) << "level " << l;
    for (size_t r = 0; r < st.levels[l].size(); ++r) {
      ExpectRunEq(after.levels[l][r], st.levels[l][r]);
    }
  }
  ExpectOptionsEq(after.options, st.options);
}

TEST_F(ManifestTest, MaybeRotateHonorsThreshold) {
  Manifest m(FileOps::Real(), dir_, /*sync=*/false);
  m.LogInit(0, TestOptions());
  m.LogFlush(1, TestRun(1, 64));
  RecoveredShardState st;
  ASSERT_TRUE(RecoverManifest(m.path(), &st));
  EXPECT_FALSE(m.MaybeRotate(st, /*rotate_records=*/16));  // under threshold
  EXPECT_FALSE(m.MaybeRotate(st, /*rotate_records=*/2));   // at, not past
  EXPECT_EQ(m.record_count(), 2u);
  EXPECT_TRUE(m.MaybeRotate(st, /*rotate_records=*/1));  // past threshold
  EXPECT_EQ(m.record_count(), 1u);
}

/// Fails every rename — the rotation commit point.
class RenameFailsOps : public FileOps {
 public:
  int Rename(const std::string&, const std::string&) override {
    ++attempts_;
    errno = EIO;
    return -1;
  }
  int attempts() const { return attempts_; }

 private:
  int attempts_ = 0;
};

TEST_F(ManifestTest, FailedRotationRenameKeepsOldLogAuthoritative) {
  RecoveredShardState st;
  RenameFailsOps ops;
  {
    Manifest m(&ops, dir_, /*sync=*/false);
    m.LogInit(0, TestOptions());
    m.LogFlush(1, TestRun(1, 64));
    const size_t records_before = m.record_count();
    ASSERT_TRUE(RecoverManifest(m.path(), &st));
    EXPECT_FALSE(m.Rotate(st));  // rename failed: rotation rolled back
    EXPECT_EQ(ops.attempts(), 1);
    EXPECT_EQ(m.record_count(), records_before);
    // The tmp snapshot is cleaned up; the old log is untouched on disk.
    EXPECT_FALSE(fs::exists(m.path() + ".tmp"));
    // The writer still appends to the *old* log after the failure.
    m.LogFlush(2, TestRun(2, 64));
  }
  RecoveredShardState after;
  ASSERT_TRUE(RecoverManifest(Manifest::PathFor(dir_), &after));
  EXPECT_EQ(after.wal_epoch, 2u);
  ASSERT_EQ(after.levels[0].size(), 2u);
}

}  // namespace
}  // namespace camal::engine::fileio
