#include "util/thread_pool.h"

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "util/random.h"

namespace camal::util {
namespace {

TEST(ThreadPoolTest, SubmittedTasksAllComplete) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIdleOnFreshPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.WaitIdle();  // must not hang
}

TEST(ThreadPoolTest, DefaultSizeUsesHardwareConcurrency) {
  ThreadPool pool;
  EXPECT_EQ(pool.num_threads(), HardwareThreads());
  EXPECT_GE(pool.num_threads(), 1);
}

TEST(ParallelForTest, CoversExactlyTheRange) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(64);
  ParallelFor(&pool, 5, 64, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), i >= 5 ? 1 : 0) << "index " << i;
  }
}

TEST(ParallelForTest, EmptyRangeIsANoOp) {
  ThreadPool pool(2);
  bool touched = false;
  ParallelFor(&pool, 7, 7, [&](size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ParallelForTest, NullPoolRunsInline) {
  int sum = 0;
  ParallelFor(nullptr, 0, 10, [&](size_t i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum, 45);
}

TEST(ParallelForTest, PropagatesExceptionsToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      ParallelFor(&pool, 0, 100,
                  [](size_t i) {
                    if (i == 37) throw std::runtime_error("task failed");
                  }),
      std::runtime_error);
  // The pool must stay usable after a failed loop.
  std::atomic<int> counter{0};
  ParallelFor(&pool, 0, 8, [&](size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 8);
}

TEST(ParallelForTest, NestedLoopsRunInlineWithoutDeadlock) {
  ThreadPool pool(2);
  std::vector<long> totals(4, 0);
  ParallelFor(&pool, 0, 4, [&](size_t outer) {
    ParallelFor(&pool, 0, 100,
                [&](size_t inner) { totals[outer] += static_cast<long>(inner); });
  });
  for (long t : totals) EXPECT_EQ(t, 4950);
}

// The determinism contract: per-task seeds are derived from the task index
// (base_seed ^ index style), so a parallel run fills the output exactly
// like a serial run.
TEST(ParallelForTest, IndexSeededStreamsMatchSerialBitForBit) {
  const uint64_t base_seed = 12345;
  auto run = [&](ThreadPool* pool) {
    std::vector<uint64_t> out(257);
    ParallelFor(pool, 0, out.size(), [&](size_t i) {
      Random rng(base_seed ^ static_cast<uint64_t>(i));
      out[i] = rng.Next() + rng.Uniform(1000);
    });
    return out;
  };
  ThreadPool pool(4);
  EXPECT_EQ(run(nullptr), run(&pool));
}

TEST(GlobalPoolTest, FollowsConfiguredThreadCount) {
  SetGlobalThreads(1);
  EXPECT_EQ(GlobalThreads(), 1);
  EXPECT_EQ(GlobalPool(), nullptr);

  SetGlobalThreads(3);
  EXPECT_EQ(GlobalThreads(), 3);
  ThreadPool* pool = GlobalPool();
  ASSERT_NE(pool, nullptr);
  EXPECT_EQ(pool->num_threads(), 3);

  std::atomic<int> counter{0};
  ParallelFor(pool, 0, 32, [&](size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 32);

  SetGlobalThreads(1);  // restore the serial default for other tests
}

}  // namespace
}  // namespace camal::util
