// Crash-point fault-injection matrix for the durability subsystem: a
// FileOps fault model enumerates every mutating file operation (write,
// fsync, rename, unlink, truncate, create) inside an armed operation —
// memtable flush with compaction, idle-shard hibernation, wake — then
// re-runs the scenario once per site, killing the engine (an injected
// exception) exactly there, with a torn-write variant that persists only
// half the buffer at write sites. After every crash, `reopen=true`
// recovery must restore a state logically identical (Gets over the whole
// key universe + Scans) to the never-crashed reference, without
// rebuilding a single run. Plus the clean-close paths: reopen restores
// all shards — including hibernated ones — from their manifests alone.

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "engine/file_engine.h"
#include "engine/file_ops.h"
#include "lsm/options.h"

namespace camal::engine {
namespace {

namespace fs = std::filesystem;

std::string TestBase() {
  if (const char* env = std::getenv("CAMAL_FILE_WORKDIR")) return env;
  return ::testing::TempDir();
}

std::string UniqueDir(const std::string& tag) {
  return TestBase() + "/camal_crash_test_" + tag + "_" +
         std::to_string(FileEngine::NextUniqueId());
}

/// The injected "power loss". Thrown *instead of* performing the k-th
/// armed mutation, so everything before the crash point is really on
/// disk and nothing after it ever happens.
struct CrashInjected {};

/// Fault model over the FileOps seam. Three phases:
///  - counting (crash_at < 0): every armed mutation increments the site
///    counter and executes normally — the enumeration pass;
///  - crashing: the site equal to `crash_at` throws CrashInjected
///    (optionally after persisting half the buffer at a write site) and
///    flips the model inert;
///  - inert: every mutation reports success without touching disk, so
///    the crashed engine's destructor cannot repair or further damage
///    the post-crash file set. Close stays real (descriptor hygiene).
class CrashOps : public fileio::FileOps {
 public:
  void Arm() { armed_ = true; }
  void Disarm() { armed_ = false; }
  void SetCrash(int site, bool torn) {
    crash_at_ = site;
    torn_ = torn;
  }

  int sites() const { return sites_; }
  const std::vector<bool>& site_is_write() const { return site_is_write_; }

  int Open(const std::string& path, int flags, int mode) override {
    if (inert_) {
      errno = EIO;  // nothing may create files after the crash
      return -1;
    }
    Site(false);
    return FileOps::Open(path, flags, mode);
  }

  int64_t PWrite(int fd, const void* buf, uint64_t count,
                 uint64_t offset) override {
    if (inert_) return static_cast<int64_t>(count);
    if (armed_ && sites_ == crash_at_ && torn_ && count > 1) {
      // Torn write: half the buffer reaches the platter, then the power
      // goes. The CRC framing must reject the half-record on replay.
      FileOps::PWrite(fd, buf, count / 2, offset);
    }
    Site(true);
    return FileOps::PWrite(fd, buf, count, offset);
  }

  int Fsync(int fd) override {
    if (inert_) return 0;
    Site(false);
    return FileOps::Fsync(fd);
  }

  int Rename(const std::string& from, const std::string& to) override {
    if (inert_) return 0;
    Site(false);
    return FileOps::Rename(from, to);
  }

  int Unlink(const std::string& path) override {
    if (inert_) return 0;
    Site(false);
    return FileOps::Unlink(path);
  }

  int Ftruncate(int fd, uint64_t length) override {
    if (inert_) return 0;
    Site(false);
    return FileOps::Ftruncate(fd, length);
  }

 private:
  void Site(bool is_write) {
    if (!armed_) return;
    const int site = sites_++;
    site_is_write_.push_back(is_write);
    if (site == crash_at_) {
      inert_ = true;
      throw CrashInjected{};
    }
  }

  bool armed_ = false;
  bool inert_ = false;
  bool torn_ = false;
  int crash_at_ = -1;
  int sites_ = 0;
  std::vector<bool> site_is_write_;
};

using Reference = std::map<uint64_t, uint64_t>;

/// One crash scenario: how to build the pre-crash state (unarmed) and
/// which logically-neutral operation to kill (armed — a flush or a GET
/// batch changes no logical contents, so the never-crashed expectation
/// is simply the reference map the setup built).
struct Scenario {
  size_t shards = 1;
  lsm::Options options;
  ShardLifecycleConfig lifecycle;
  uint32_t rotate_records = 128;
  std::function<void(FileEngine&, Reference*)> setup;
  std::function<void(FileEngine&)> armed;
  uint64_t max_key = 0;
};

void PutBatch(FileEngine& eng, const std::vector<Op>& ops) {
  std::vector<OpResult> results(ops.size());
  eng.ExecuteOps(ops.data(), ops.size(), results.data());
}

Op Put(uint64_t key, uint64_t value) {
  Op op;
  op.kind = OpKind::kPut;
  op.key = key;
  op.value = value;
  return op;
}

Op GetOp(uint64_t key) {
  Op op;
  op.kind = OpKind::kGet;
  op.key = key;
  return op;
}

/// Gets over the whole key universe plus scans from several starts: the
/// logical-identity check between a recovered engine and the reference.
void VerifyMatchesReference(FileEngine& eng, const Reference& ref,
                            uint64_t max_key) {
  uint64_t value = 0;
  for (uint64_t k = 0; k <= max_key; ++k) {
    const auto it = ref.find(k);
    if (it != ref.end()) {
      ASSERT_TRUE(eng.Get(k, &value)) << "lost key " << k;
      EXPECT_EQ(value, it->second) << "key " << k;
    } else {
      EXPECT_FALSE(eng.Get(k, &value)) << "resurrected key " << k;
    }
  }
  for (const uint64_t start :
       {uint64_t{0}, uint64_t{37}, max_key / 2, max_key}) {
    std::vector<lsm::Entry> got;
    eng.Scan(start, 20, &got);
    auto it = ref.lower_bound(start);
    size_t i = 0;
    for (; i < 20 && it != ref.end(); ++i, ++it) {
      ASSERT_LT(i, got.size()) << "scan from " << start;
      EXPECT_EQ(got[i].key, it->first);
      EXPECT_EQ(got[i].value, it->second);
    }
    EXPECT_EQ(got.size(), i) << "scan from " << start;
  }
}

/// Runs one scenario pass against `dir` through `ops`. Returns whether
/// the armed operation crashed. The engine is destroyed before return
/// (with `ops` inert if it crashed), leaving the file set in its exact
/// post-crash state.
bool RunPass(const Scenario& sc, const std::string& dir, CrashOps* ops,
             Reference* ref) {
  FileEngineConfig cfg;
  cfg.workdir = dir;
  cfg.durable = true;
  cfg.keep_files = true;  // the reopen pass owns cleanup
  cfg.wal_sync = fileio::WalSyncPolicy::kBatch;
  cfg.manifest_rotate_records = sc.rotate_records;
  cfg.lifecycle = sc.lifecycle;
  cfg.file_ops = ops;
  FileEngine eng(sc.shards, sc.options, cfg);
  sc.setup(eng, ref);
  ops->Arm();
  bool crashed = false;
  try {
    sc.armed(eng);
  } catch (const CrashInjected&) {
    crashed = true;
  }
  ops->Disarm();
  return crashed;
}

/// Reopens the post-crash (or post-clean-close) file set and checks
/// logical identity with the reference. Recovery must not rebuild runs:
/// the reopened engine's write counter stays at zero.
void ReopenAndVerify(const Scenario& sc, const std::string& dir,
                     const Reference& ref) {
  {
    FileEngineConfig cfg;
    cfg.workdir = dir;
    cfg.reopen = true;
    FileEngine eng(sc.shards, sc.options, cfg);
    EXPECT_EQ(eng.CostSnapshot().block_writes, 0u)
        << "recovery rebuilt run files instead of replaying the manifest";
    VerifyMatchesReference(eng, ref, sc.max_key);
  }
  fs::remove_all(dir);
}

/// The full matrix: enumerate the armed mutation sites once, then crash
/// at every site (and, at write sites, crash again mid-write) and prove
/// recovery restores the reference state each time.
void RunCrashMatrix(const Scenario& sc, const std::string& tag) {
  CrashOps counter;
  Reference clean_ref;
  const std::string clean_dir = UniqueDir(tag + "_clean");
  ASSERT_FALSE(RunPass(sc, clean_dir, &counter, &clean_ref));
  const int sites = counter.sites();
  ASSERT_GT(sites, 0) << "armed operation performed no mutations";
  // The clean close itself must reopen to the reference state.
  ReopenAndVerify(sc, clean_dir, clean_ref);

  for (int k = 0; k < sites; ++k) {
    for (const bool torn : {false, true}) {
      if (torn && !counter.site_is_write()[static_cast<size_t>(k)]) {
        continue;  // only writes can tear
      }
      SCOPED_TRACE(tag + " site " + std::to_string(k) +
                   (torn ? " (torn write)" : ""));
      CrashOps ops;
      ops.SetCrash(k, torn);
      Reference ref;
      const std::string dir = UniqueDir(tag + "_s" + std::to_string(k) +
                                        (torn ? "t" : ""));
      EXPECT_TRUE(RunPass(sc, dir, &ops, &ref))
          << "site " << k << " was not reached on the crash pass";
      ReopenAndVerify(sc, dir, ref);
    }
  }
}

lsm::Options CrashOptions(size_t shards) {
  lsm::Options opts;
  opts.size_ratio = 4.0;
  // Per-shard slices divide the totals; keep ~64 entries of buffer and a
  // real Bloom/cache per shard at any scenario shard count.
  opts.buffer_bytes = 64 * 128 * shards;
  opts.bloom_bits = 8 * 2000 * shards;
  opts.block_cache_bytes = 8 * 4096 * shards;
  return opts;
}

/// Keys of `eng`'s shard `s` (hash partitioning makes the split opaque;
/// ask the engine).
std::vector<uint64_t> ShardKeys(const FileEngine& eng, size_t s, size_t n,
                                uint64_t max_key) {
  std::vector<uint64_t> keys;
  for (uint64_t k = 2; k <= max_key && keys.size() < n; k += 2) {
    if (eng.ShardIndex(k) == s) keys.push_back(k);
  }
  return keys;
}

TEST(CrashRecoveryTest, FlushAndCompactionCrashMatrix) {
  Scenario sc;
  sc.shards = 1;
  sc.options = CrashOptions(1);
  sc.rotate_records = 4;  // the armed flush also exercises rotation
  sc.max_key = 620;
  sc.setup = [](FileEngine& eng, Reference* ref) {
    // Enough entries that the setup batch itself flushes several times
    // (unarmed), so the armed flush lands on a populated level structure
    // and triggers a real merge.
    std::vector<Op> batch;
    for (uint64_t k = 2; k <= 600; k += 2) {
      batch.push_back(Put(k, k * 3 + 1));
      (*ref)[k] = k * 3 + 1;
    }
    PutBatch(eng, batch);
    // A round of overwrites and deletes: recovery must preserve
    // shadowing, not just presence.
    batch.clear();
    for (uint64_t k = 2; k <= 120; k += 2) {
      if (k % 6 == 0) {
        Op op;
        op.kind = OpKind::kDelete;
        op.key = k;
        batch.push_back(op);
        ref->erase(k);
      } else {
        batch.push_back(Put(k, k + 7));
        (*ref)[k] = k + 7;
      }
    }
    PutBatch(eng, batch);
  };
  sc.armed = [](FileEngine& eng) { eng.FlushMemtable(); };
  RunCrashMatrix(sc, "flush");
}

TEST(CrashRecoveryTest, HibernateCrashMatrix) {
  Scenario sc;
  sc.shards = 2;
  sc.options = CrashOptions(2);
  sc.lifecycle =
      ShardLifecycleConfig{/*lazy=*/true, /*hibernate_after_batches=*/1};
  sc.max_key = 1200;
  sc.setup = [&sc](FileEngine& eng, Reference* ref) {
    std::vector<Op> batch;
    for (uint64_t k = 2; k <= sc.max_key; k += 2) {
      batch.push_back(Put(k, k + 5));
      (*ref)[k] = k + 5;
    }
    PutBatch(eng, batch);
    eng.FlushMemtable();
    // Fresh memtable residue in both shards: the sidecar must carry it.
    batch.clear();
    for (uint64_t k = 2; k <= 80; k += 2) {
      batch.push_back(Put(k, k + 9));
      (*ref)[k] = k + 9;
    }
    PutBatch(eng, batch);
  };
  sc.armed = [&sc](FileEngine& eng) {
    // GET-only batches confined to shard 0: shard 1 goes idle past the
    // threshold and hibernates at a batch boundary — the armed mutation
    // sites are the sidecar write, its rename, and the manifest record.
    const std::vector<uint64_t> hot = ShardKeys(eng, 0, 24, sc.max_key);
    ASSERT_FALSE(hot.empty());
    std::vector<Op> batch;
    for (const uint64_t k : hot) batch.push_back(GetOp(k));
    PutBatch(eng, batch);
    PutBatch(eng, batch);
    ASSERT_EQ(eng.ShardLifecycle(1), ShardState::kHibernated);
  };
  RunCrashMatrix(sc, "hibernate");
}

TEST(CrashRecoveryTest, WakeCrashMatrix) {
  Scenario sc;
  sc.shards = 2;
  sc.options = CrashOptions(2);
  sc.lifecycle =
      ShardLifecycleConfig{/*lazy=*/true, /*hibernate_after_batches=*/1};
  sc.max_key = 1200;
  sc.setup = [&sc](FileEngine& eng, Reference* ref) {
    std::vector<Op> batch;
    for (uint64_t k = 2; k <= sc.max_key; k += 2) {
      batch.push_back(Put(k, k + 5));
      (*ref)[k] = k + 5;
    }
    PutBatch(eng, batch);
    eng.FlushMemtable();
    batch.clear();
    for (uint64_t k = 2; k <= 80; k += 2) {
      batch.push_back(Put(k, k + 9));
      (*ref)[k] = k + 9;
    }
    PutBatch(eng, batch);
    // Hibernate shard 1 cleanly (unarmed) with shard-0-only traffic.
    const std::vector<uint64_t> hot = ShardKeys(eng, 0, 24, sc.max_key);
    batch.clear();
    for (const uint64_t k : hot) batch.push_back(GetOp(k));
    PutBatch(eng, batch);
    PutBatch(eng, batch);
    ASSERT_EQ(eng.ShardLifecycle(1), ShardState::kHibernated);
  };
  sc.armed = [&sc](FileEngine& eng) {
    // Touching the hibernated shard wakes it: sidecar unlink, manifest
    // reopen, the kWake record — all armed crash sites.
    const std::vector<uint64_t> cold = ShardKeys(eng, 1, 24, sc.max_key);
    ASSERT_FALSE(cold.empty());
    std::vector<Op> batch;
    for (const uint64_t k : cold) batch.push_back(GetOp(k));
    PutBatch(eng, batch);
    ASSERT_EQ(eng.ShardLifecycle(1), ShardState::kMaterialized);
  };
  RunCrashMatrix(sc, "wake");
}

// ------------------------------------------------- clean-close recovery

TEST(CrashRecoveryTest, CleanCloseReopenRestoresShardsWithoutRebuilding) {
  const std::string dir = UniqueDir("clean_reopen");
  const lsm::Options opts = CrashOptions(3);
  Reference ref;
  std::vector<size_t> run_counts(3);
  uint64_t disk_entries = 0;
  uint64_t total_entries = 0;
  {
    FileEngineConfig cfg;
    cfg.workdir = dir;
    cfg.durable = true;
    cfg.keep_files = true;
    FileEngine eng(3, opts, cfg);
    std::vector<Op> batch;
    for (uint64_t k = 2; k <= 1500; k += 2) {
      batch.push_back(Put(k, k * 2 + 3));
      ref[k] = k * 2 + 3;
    }
    PutBatch(eng, batch);
    eng.FlushMemtable();
    batch.clear();
    for (uint64_t k = 2; k <= 90; k += 2) {
      if (k % 10 == 0) {
        Op op;
        op.kind = OpKind::kDelete;
        op.key = k;
        batch.push_back(op);
        ref.erase(k);
      } else {
        batch.push_back(Put(k, k));
        ref[k] = k;
      }
    }
    PutBatch(eng, batch);  // leaves live memtable residue for the WAL
    for (size_t s = 0; s < 3; ++s) run_counts[s] = eng.ShardRunCount(s);
    disk_entries = eng.DiskEntries();
    total_entries = eng.TotalEntries();
  }
  {
    FileEngineConfig cfg;
    cfg.workdir = dir;
    cfg.reopen = true;
    FileEngine eng(3, opts, cfg);
    EXPECT_TRUE(eng.durable());  // reopen implies the durability layer
    // The file-set structure came back exactly — same runs per shard,
    // same disk/total entry split (memtable via WAL replay) — and no run
    // was rebuilt (zero write I/O during recovery).
    EXPECT_EQ(eng.CostSnapshot().block_writes, 0u);
    EXPECT_EQ(eng.CostSnapshot().block_reads, 0u);
    for (size_t s = 0; s < 3; ++s) {
      EXPECT_EQ(eng.ShardRunCount(s), run_counts[s]) << "shard " << s;
    }
    EXPECT_EQ(eng.DiskEntries(), disk_entries);
    EXPECT_EQ(eng.TotalEntries(), total_entries);
    VerifyMatchesReference(eng, ref, 1500);
  }
  fs::remove_all(dir);
}

TEST(CrashRecoveryTest, HibernatedShardSurvivesRestart) {
  const std::string dir = UniqueDir("hib_restart");
  const lsm::Options opts = CrashOptions(2);
  Reference ref;
  {
    FileEngineConfig cfg;
    cfg.workdir = dir;
    cfg.durable = true;
    cfg.keep_files = true;
    cfg.lifecycle =
        ShardLifecycleConfig{/*lazy=*/true, /*hibernate_after_batches=*/1};
    FileEngine eng(2, opts, cfg);
    std::vector<Op> batch;
    for (uint64_t k = 2; k <= 1200; k += 2) {
      batch.push_back(Put(k, k + 11));
      ref[k] = k + 11;
    }
    PutBatch(eng, batch);
    eng.FlushMemtable();
    batch.clear();
    for (uint64_t k = 2; k <= 60; k += 2) {
      batch.push_back(Put(k, k + 13));
      ref[k] = k + 13;
    }
    PutBatch(eng, batch);
    const std::vector<uint64_t> hot = ShardKeys(eng, 0, 16, 1200);
    batch.clear();
    for (const uint64_t k : hot) batch.push_back(GetOp(k));
    PutBatch(eng, batch);
    PutBatch(eng, batch);
    ASSERT_EQ(eng.ShardLifecycle(1), ShardState::kHibernated);
  }
  {
    FileEngineConfig cfg;
    cfg.workdir = dir;
    cfg.reopen = true;
    // Hibernation stays off in the reopened engine; the shard must still
    // come back hibernated because its sidecar is registered in the
    // manifest — surviving the process restart without rebuilding.
    FileEngine eng(2, opts, cfg);
    EXPECT_EQ(eng.ShardLifecycle(1), ShardState::kHibernated);
    EXPECT_EQ(eng.CostSnapshot().block_writes, 0u);
    VerifyMatchesReference(eng, ref, 1200);  // gets wake the shard
    EXPECT_EQ(eng.ShardLifecycle(1), ShardState::kMaterialized);
  }
  fs::remove_all(dir);
}

}  // namespace
}  // namespace camal::engine
