#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "ml/gbdt.h"
#include "ml/gp.h"
#include "ml/linalg.h"
#include "ml/mlp.h"
#include "ml/poly.h"
#include "ml/standardizer.h"
#include "util/random.h"

namespace camal::ml {
namespace {

TEST(LinalgTest, CholeskySolveKnownSystem) {
  // A = [[4,2],[2,3]], b = [10, 9] -> x = [1.5, 2]
  Matrix a(2, 2);
  a(0, 0) = 4;
  a(0, 1) = 2;
  a(1, 0) = 2;
  a(1, 1) = 3;
  ASSERT_TRUE(CholeskyFactor(&a));
  const std::vector<double> x = CholeskySolve(a, {10, 9});
  EXPECT_NEAR(x[0], 1.5, 1e-9);
  EXPECT_NEAR(x[1], 2.0, 1e-9);
}

TEST(LinalgTest, CholeskyRejectsNonSpd) {
  Matrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 5;
  a(1, 0) = 5;
  a(1, 1) = 1;  // indefinite
  EXPECT_FALSE(CholeskyFactor(&a));
}

TEST(LinalgTest, SolveLinearWithPivoting) {
  // Requires row swap: [[0,1],[1,0]] x = [2,3] -> x = [3,2]
  Matrix a(2, 2);
  a(0, 1) = 1;
  a(1, 0) = 1;
  const std::vector<double> x = SolveLinear(a, {2, 3});
  ASSERT_EQ(x.size(), 2u);
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(LinalgTest, SolveLinearSingularReturnsEmpty) {
  Matrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 2;
  a(1, 1) = 4;
  EXPECT_TRUE(SolveLinear(a, {1, 2}).empty());
}

TEST(LinalgTest, RidgeRecoversCoefficients) {
  util::Random rng(3);
  Matrix x(200, 3);
  std::vector<double> y(200);
  for (size_t i = 0; i < 200; ++i) {
    for (size_t j = 0; j < 3; ++j) x(i, j) = rng.NextGaussian();
    y[i] = 2.0 * x(i, 0) - 1.0 * x(i, 1) + 0.5 * x(i, 2);
  }
  const std::vector<double> beta = RidgeSolve(x, y, 1e-8);
  EXPECT_NEAR(beta[0], 2.0, 1e-5);
  EXPECT_NEAR(beta[1], -1.0, 1e-5);
  EXPECT_NEAR(beta[2], 0.5, 1e-5);
}

TEST(StandardizerTest, ZeroMeanUnitVariance) {
  std::vector<std::vector<double>> x = {{1, 100}, {2, 200}, {3, 300}};
  Standardizer s;
  s.Fit(x);
  const auto scaled = s.ApplyAll(x);
  for (size_t j = 0; j < 2; ++j) {
    double mean = 0;
    for (const auto& row : scaled) mean += row[j];
    EXPECT_NEAR(mean / 3.0, 0.0, 1e-12);
  }
  EXPECT_NEAR(scaled[0][0], -scaled[2][0], 1e-12);
}

TEST(StandardizerTest, ConstantFeatureSafe) {
  std::vector<std::vector<double>> x = {{5.0}, {5.0}, {5.0}};
  Standardizer s;
  s.Fit(x);
  EXPECT_NEAR(s.Apply({5.0})[0], 0.0, 1e-12);  // no division blowup
}

TEST(TargetScalerTest, RoundTrip) {
  TargetScaler s;
  s.Fit({10, 20, 30});
  EXPECT_NEAR(s.Unscale(s.Scale(17.0)), 17.0, 1e-12);
}

TEST(PolyTest, FitsLinearFunctionExactly) {
  PolyRegression poly(1e-10);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  util::Random rng(5);
  for (int i = 0; i < 50; ++i) {
    const double a = rng.NextDouble(), b = rng.NextDouble();
    x.push_back({a, b});
    y.push_back(3.0 * a - 2.0 * b + 1.0);
  }
  poly.Fit(x, y);
  EXPECT_TRUE(poly.fitted());
  EXPECT_NEAR(poly.Predict({0.5, 0.5}), 1.5, 1e-6);
  EXPECT_NEAR(poly.Predict({0.0, 0.0}), 1.0, 1e-6);
}

TEST(PolyTest, CustomBasis) {
  // y = 2 * x^2, basis exposes x^2.
  PolyRegression poly(
      1e-10, [](const std::vector<double>& x) {
        return std::vector<double>{x[0] * x[0]};
      });
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 1; i <= 20; ++i) {
    x.push_back({static_cast<double>(i)});
    y.push_back(2.0 * i * i);
  }
  poly.Fit(x, y);
  EXPECT_NEAR(poly.Predict({30.0}), 1800.0, 1e-4);
}

TEST(PolyTest, ExtrapolatesBeyondTrainingRange) {
  PolyRegression poly(1e-10);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 20; ++i) {
    x.push_back({static_cast<double>(i)});
    y.push_back(5.0 * i);
  }
  poly.Fit(x, y);
  EXPECT_NEAR(poly.Predict({100.0}), 500.0, 1e-5);
}

TEST(GbdtTest, FitsNonlinearFunction) {
  Gbdt gbdt;
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  util::Random rng(7);
  for (int i = 0; i < 300; ++i) {
    const double a = rng.NextDouble() * 10.0;
    const double b = rng.NextDouble() * 10.0;
    x.push_back({a, b});
    y.push_back(std::sin(a) * 3.0 + (b > 5.0 ? 10.0 : 0.0));
  }
  gbdt.Fit(x, y);
  double sse = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    const double d = gbdt.Predict(x[i]) - y[i];
    sse += d * d;
  }
  EXPECT_LT(std::sqrt(sse / static_cast<double>(x.size())), 0.8);
}

TEST(GbdtTest, StepFunctionSplit) {
  Gbdt gbdt;
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 100; ++i) {
    x.push_back({static_cast<double>(i)});
    y.push_back(i < 50 ? 1.0 : 9.0);
  }
  gbdt.Fit(x, y);
  EXPECT_NEAR(gbdt.Predict({10.0}), 1.0, 0.2);
  EXPECT_NEAR(gbdt.Predict({90.0}), 9.0, 0.2);
}

TEST(GbdtTest, ConstantTargetIsConstant) {
  Gbdt gbdt;
  std::vector<std::vector<double>> x = {{1}, {2}, {3}, {4}};
  std::vector<double> y = {5, 5, 5, 5};
  gbdt.Fit(x, y);
  EXPECT_NEAR(gbdt.Predict({2.5}), 5.0, 1e-9);
}

TEST(GbdtTest, DeterministicGivenSeed) {
  GbdtParams params;
  params.subsample = 0.8;
  Gbdt a(params), b(params);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  util::Random rng(9);
  for (int i = 0; i < 100; ++i) {
    x.push_back({rng.NextDouble()});
    y.push_back(x.back()[0] * 4.0);
  }
  a.Fit(x, y);
  b.Fit(x, y);
  EXPECT_DOUBLE_EQ(a.Predict({0.3}), b.Predict({0.3}));
}

TEST(MlpTest, FitsSmoothFunctionApproximately) {
  MlpParams params;
  params.epochs = 300;
  Mlp mlp(params);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  util::Random rng(11);
  for (int i = 0; i < 256; ++i) {
    const double a = rng.NextDouble() * 2.0 - 1.0;
    x.push_back({a});
    y.push_back(a * a);
  }
  mlp.Fit(x, y);
  double err = 0.0;
  for (double probe : {-0.8, -0.4, 0.0, 0.4, 0.8}) {
    err += std::fabs(mlp.Predict({probe}) - probe * probe);
  }
  EXPECT_LT(err / 5.0, 0.1);
}

TEST(MlpTest, UnderfitsWithFewSamples) {
  // The data-hungriness that makes NN the weakest CAMAL model: with only a
  // handful of samples its generalization error is large.
  MlpParams params;
  params.epochs = 200;
  Mlp mlp(params);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 4; ++i) {
    x.push_back({static_cast<double>(i)});
    y.push_back(i % 2 == 0 ? 0.0 : 1.0);
  }
  mlp.Fit(x, y);  // must not crash on tiny data
  EXPECT_TRUE(mlp.fitted());
}

TEST(GpTest, InterpolatesTrainingPoints) {
  GaussianProcess gp;
  std::vector<std::vector<double>> x = {{0}, {1}, {2}, {3}};
  std::vector<double> y = {0, 1, 4, 9};
  gp.Fit(x, y);
  for (size_t i = 0; i < x.size(); ++i) {
    const auto [mean, var] = gp.PredictMeanVar(x[i]);
    EXPECT_NEAR(mean, y[i], 0.35);
    EXPECT_LT(var, 0.5);
  }
}

TEST(GpTest, UncertaintyGrowsAwayFromData) {
  GaussianProcess gp;
  gp.Fit({{0}, {1}, {2}}, {1, 2, 3});
  const auto [near_mean, near_var] = gp.PredictMeanVar({1.0});
  const auto [far_mean, far_var] = gp.PredictMeanVar({50.0});
  (void)near_mean;
  (void)far_mean;
  EXPECT_GT(far_var, near_var * 5.0);
}

TEST(GpTest, ExpectedImprovementBehaviour) {
  // A point predicted far below best has high EI; far above, near zero.
  EXPECT_GT(ExpectedImprovement(0.0, 0.01, 1.0),
            ExpectedImprovement(2.0, 0.01, 1.0));
  // More variance -> more EI when the mean equals the best.
  EXPECT_GT(ExpectedImprovement(1.0, 1.0, 1.0),
            ExpectedImprovement(1.0, 0.0001, 1.0));
  EXPECT_GE(ExpectedImprovement(5.0, 0.001, 1.0), 0.0);
}

}  // namespace
}  // namespace camal::ml
