// Golden equality for the shard lifecycle: a lazy engine — and a lazy
// engine that hibernates idle shards and wakes them on touch — must be
// observationally indistinguishable from the historical eager engine
// serving the same stream. On the simulated backend that means bitwise:
// per-op latency/ios/found/scan_hits, EngineCounters, device cost sums,
// and entry counts. On the real-IO backend wall-clock varies, so the
// deterministic surface is compared instead: logical results, per-op I/O
// counts, block read/write totals, counters, and run-file structure.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "camal/sample.h"
#include "engine/file_engine.h"
#include "engine/sharded_engine.h"
#include "workload/executor.h"
#include "workload/generator.h"

namespace camal::engine {
namespace {

tune::SystemSetup SmallSetup(size_t shards) {
  tune::SystemSetup setup;
  setup.num_entries = 6000;
  setup.total_memory_bits = 16 * 6000;
  setup.num_shards = shards;
  return setup;
}

std::vector<Op> GenerateOps(const tune::SystemSetup& setup, size_t num_ops,
                            workload::KeySpace* keys, uint64_t seed) {
  workload::GeneratorConfig gen_cfg;
  gen_cfg.scan_len = setup.scan_len;
  workload::OperationGenerator gen(model::WorkloadSpec{0.2, 0.3, 0.2, 0.3},
                                   keys, gen_cfg, seed);
  std::vector<Op> ops;
  ops.reserve(num_ops);
  for (size_t i = 0; i < num_ops; ++i) {
    ops.push_back(workload::ToEngineOp(gen.Next()));
  }
  return ops;
}

/// Splits a mixed stream into batches that each touch only shards
/// `< pivot` (`low`) or only shards `>= pivot` (`high`), preserving
/// relative order. Scans touch every shard, so they go to neither — the
/// phased hibernation tests schedule them explicitly.
void SplitByShard(const StorageEngine& eng, const std::vector<Op>& ops,
                  size_t pivot, std::vector<Op>* low, std::vector<Op>* high) {
  for (const Op& op : ops) {
    if (op.kind == OpKind::kScan) continue;
    (eng.ShardIndex(op.key) < pivot ? low : high)->push_back(op);
  }
}

void ExpectSameResults(const std::vector<OpResult>& got,
                       const std::vector<OpResult>& want,
                       bool compare_latency) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    if (compare_latency) {
      EXPECT_EQ(got[i].latency_ns, want[i].latency_ns) << "op " << i;
    }
    EXPECT_EQ(got[i].ios, want[i].ios) << "op " << i;
    EXPECT_EQ(got[i].found, want[i].found) << "op " << i;
    EXPECT_EQ(got[i].scan_hits, want[i].scan_hits) << "op " << i;
  }
}

void ExpectSameCounters(const EngineCounters& got, const EngineCounters& want) {
  EXPECT_EQ(got.compaction_block_reads, want.compaction_block_reads);
  EXPECT_EQ(got.compaction_block_writes, want.compaction_block_writes);
  EXPECT_EQ(got.transition_ios, want.transition_ios);
  EXPECT_EQ(got.flushes, want.flushes);
  EXPECT_EQ(got.merges, want.merges);
}

// ---------------------------------------------------------------------------
// Simulated backend (ShardedEngine): full bitwise equality.
// ---------------------------------------------------------------------------

std::unique_ptr<ShardedEngine> MakeSimEngine(const tune::SystemSetup& setup,
                                             const workload::KeySpace& keys,
                                             const ShardLifecycleConfig& lc) {
  auto eng = std::make_unique<ShardedEngine>(
      setup.num_shards, tune::MonkeyDefaultConfig(setup).ToOptions(setup),
      setup.MakeDeviceConfig(), lc);
  workload::BulkLoad(eng.get(), keys);
  return eng;
}

/// Runs the same pre-built batch schedule on both engines and asserts the
/// complete observable surface matches bitwise after every batch.
void RunGoldenSchedule(ShardedEngine* lazy, ShardedEngine* eager,
                       const std::vector<std::vector<Op>>& batches) {
  for (size_t b = 0; b < batches.size(); ++b) {
    SCOPED_TRACE("batch " + std::to_string(b));
    const std::vector<Op>& batch = batches[b];
    std::vector<OpResult> got(batch.size());
    std::vector<OpResult> want(batch.size());
    lazy->ExecuteOps(batch.data(), batch.size(), got.data());
    eager->ExecuteOps(batch.data(), batch.size(), want.data());
    ExpectSameResults(got, want, /*compare_latency=*/true);
  }
  ExpectSameCounters(lazy->AggregateCounters(), eager->AggregateCounters());
  for (size_t s = 0; s < eager->NumShards(); ++s) {
    ExpectSameCounters(lazy->ShardCounters(s), eager->ShardCounters(s));
    const sim::DeviceSnapshot a = lazy->ShardCostSnapshot(s);
    const sim::DeviceSnapshot b = eager->ShardCostSnapshot(s);
    EXPECT_EQ(a.block_reads, b.block_reads) << "shard " << s;
    EXPECT_EQ(a.block_writes, b.block_writes) << "shard " << s;
    EXPECT_EQ(a.elapsed_ns, b.elapsed_ns) << "shard " << s;  // bit-exact
    EXPECT_EQ(lazy->ShardEntries(s), eager->ShardEntries(s));
  }
  const sim::DeviceSnapshot a = lazy->CostSnapshot();
  const sim::DeviceSnapshot b = eager->CostSnapshot();
  EXPECT_EQ(a.TotalIos(), b.TotalIos());
  EXPECT_EQ(a.elapsed_ns, b.elapsed_ns);
  EXPECT_EQ(lazy->TotalEntries(), eager->TotalEntries());
  EXPECT_EQ(lazy->DiskEntries(), eager->DiskEntries());
}

TEST(ShardLifecycleTest, LazyIsBitIdenticalToEagerOnMixedStream) {
  const tune::SystemSetup setup = SmallSetup(8);
  workload::KeySpace gen_keys(setup.num_entries, setup.seed);
  const std::vector<Op> ops = GenerateOps(setup, 3000, &gen_keys, 99);

  workload::KeySpace keys_a(setup.num_entries, setup.seed);
  auto lazy = MakeSimEngine(setup, keys_a, ShardLifecycleConfig{});
  workload::KeySpace keys_b(setup.num_entries, setup.seed);
  auto eager =
      MakeSimEngine(setup, keys_b, ShardLifecycleConfig{/*lazy=*/false, 0});

  std::vector<std::vector<Op>> batches;
  for (size_t i = 0; i < ops.size(); i += 256) {
    batches.emplace_back(ops.begin() + i,
                         ops.begin() + std::min(i + 256, ops.size()));
  }
  RunGoldenSchedule(lazy.get(), eager.get(), batches);
}

TEST(ShardLifecycleTest, HibernateWakeRehibernateIsBitIdenticalOnSim) {
  const tune::SystemSetup setup = SmallSetup(8);
  workload::KeySpace gen_keys(setup.num_entries, setup.seed);
  const std::vector<Op> ops = GenerateOps(setup, 6000, &gen_keys, 99);

  workload::KeySpace keys_a(setup.num_entries, setup.seed);
  auto hib = MakeSimEngine(
      setup, keys_a,
      ShardLifecycleConfig{/*lazy=*/true, /*hibernate_after_batches=*/2});
  workload::KeySpace keys_b(setup.num_entries, setup.seed);
  auto eager =
      MakeSimEngine(setup, keys_b, ShardLifecycleConfig{/*lazy=*/false, 0});

  // Partition point ops into a low half (shards 0-3) and a high half
  // (shards 4-7), and pull out one scan for the wake-all phase.
  std::vector<Op> low, high;
  SplitByShard(*eager, ops, 4, &low, &high);
  ASSERT_GT(low.size(), 1200u);
  ASSERT_GT(high.size(), 1200u);
  Op scan;
  scan.kind = OpKind::kScan;
  scan.key = 0;
  scan.scan_len = 64;

  auto slice = [](const std::vector<Op>& src, size_t from, size_t count) {
    return std::vector<Op>(src.begin() + from, src.begin() + from + count);
  };
  // Phase A: four low-only batches — shards 4-7 go idle past the
  // threshold and hibernate. Phase B: a high-only batch wakes them.
  // Phase C: four more low-only batches — they hibernate AGAIN (the
  // freeze -> wake -> freeze cycle). Phase D: a scan wakes everything.
  const std::vector<std::vector<Op>> batches = {
      slice(low, 0, 300),   slice(low, 300, 300), slice(low, 600, 300),
      slice(low, 900, 300), slice(high, 0, 600),  slice(low, 0, 300),
      slice(low, 300, 300), slice(low, 600, 300), slice(low, 900, 300),
      {scan},               slice(high, 600, high.size() - 600)};

  // Interleave the schedule with lifecycle assertions on the hibernating
  // engine (the eager engine must never leave kMaterialized).
  size_t b = 0;
  auto run_batch = [&](const std::vector<Op>& batch) {
    SCOPED_TRACE("batch " + std::to_string(b));
    std::vector<OpResult> got(batch.size());
    std::vector<OpResult> want(batch.size());
    hib->ExecuteOps(batch.data(), batch.size(), got.data());
    eager->ExecuteOps(batch.data(), batch.size(), want.data());
    ExpectSameResults(got, want, /*compare_latency=*/true);
    ++b;
  };

  for (size_t i = 0; i < 4; ++i) run_batch(batches[i]);
  // Shards 4-7 idled through >2 batches: frozen.
  for (size_t s = 4; s < 8; ++s) {
    EXPECT_EQ(hib->ShardLifecycle(s), ShardState::kHibernated) << s;
    EXPECT_EQ(eager->ShardLifecycle(s), ShardState::kMaterialized) << s;
  }
  EXPECT_EQ(hib->MaterializedShards(), 4u);

  run_batch(batches[4]);  // high traffic: transparent wake
  for (size_t s = 4; s < 8; ++s) {
    EXPECT_EQ(hib->ShardLifecycle(s), ShardState::kMaterialized) << s;
  }

  for (size_t i = 5; i < 9; ++i) run_batch(batches[i]);
  // Hibernated a second time.
  for (size_t s = 4; s < 8; ++s) {
    EXPECT_EQ(hib->ShardLifecycle(s), ShardState::kHibernated) << s;
  }

  run_batch(batches[9]);  // the scan wakes every hibernated shard
  EXPECT_EQ(hib->MaterializedShards(), 8u);
  run_batch(batches[10]);

  // After the full freeze/wake/freeze/wake history the complete state is
  // still bitwise the eager engine's.
  ExpectSameCounters(hib->AggregateCounters(), eager->AggregateCounters());
  for (size_t s = 0; s < 8; ++s) {
    ExpectSameCounters(hib->ShardCounters(s), eager->ShardCounters(s));
    EXPECT_EQ(hib->ShardCostSnapshot(s).elapsed_ns,
              eager->ShardCostSnapshot(s).elapsed_ns);
    EXPECT_EQ(hib->ShardEntries(s), eager->ShardEntries(s));
  }
  EXPECT_EQ(hib->CostSnapshot().elapsed_ns, eager->CostSnapshot().elapsed_ns);
  EXPECT_EQ(hib->TotalEntries(), eager->TotalEntries());
  EXPECT_EQ(hib->DiskEntries(), eager->DiskEntries());
}

TEST(ShardLifecycleTest, ColdShardsHoldNothingAndAccessorsAreSafe) {
  const tune::SystemSetup setup = SmallSetup(16);
  // No bulk load: every shard starts cold.
  ShardedEngine eng(setup.num_shards,
                    tune::MonkeyDefaultConfig(setup).ToOptions(setup),
                    setup.MakeDeviceConfig());
  EXPECT_EQ(eng.MaterializedShards(), 0u);
  for (size_t s = 0; s < setup.num_shards; ++s) {
    EXPECT_EQ(eng.ShardLifecycle(s), ShardState::kCold);
    EXPECT_EQ(eng.ShardEntries(s), 0u);
    EXPECT_EQ(eng.ShardCostSnapshot(s).TotalIos(), 0u);
    EXPECT_EQ(eng.ShardCounters(s).flushes, 0u);
  }
  EXPECT_EQ(eng.TotalEntries(), 0u);
  EXPECT_EQ(eng.DiskEntries(), 0u);
  EXPECT_FALSE(eng.InTransition());

  // A scan over an all-cold engine probes nothing and finds nothing.
  std::vector<lsm::Entry> out;
  EXPECT_EQ(eng.Scan(0, 100, &out), 0u);
  EXPECT_EQ(eng.MaterializedShards(), 0u);

  // One touching op materializes exactly its own shard.
  Op get;
  get.kind = OpKind::kGet;
  get.key = 12345;
  OpResult r;
  eng.ExecuteOps(&get, 1, &r);
  EXPECT_FALSE(r.found);
  EXPECT_EQ(eng.MaterializedShards(), 1u);
  EXPECT_EQ(eng.ShardLifecycle(eng.ShardIndex(get.key)),
            ShardState::kMaterialized);
}

TEST(ShardLifecycleTest, ReconfigureWhileColdAppliesOnMaterialization) {
  const tune::SystemSetup setup = SmallSetup(4);
  const lsm::Options total = tune::MonkeyDefaultConfig(setup).ToOptions(setup);
  ShardedEngine eng(setup.num_shards, total, setup.MakeDeviceConfig());

  // Retune a cold shard: it must stay cold (deferred reconfiguration of
  // an empty tree is observationally identical to applying it now)...
  lsm::Options tuned = ShardedEngine::ShardOptions(total, setup.num_shards);
  tuned.bloom_bits = tuned.bloom_bits / 2 + 7;
  tuned.buffer_bytes = tuned.buffer_bytes / 2;
  eng.ReconfigureShard(2, tuned);
  EXPECT_EQ(eng.ShardLifecycle(2), ShardState::kCold);
  // ...and the snapshot — and the later materialized shard — must carry
  // the tuned values.
  EXPECT_EQ(eng.ShardOptionsSnapshot(2).bloom_bits, tuned.bloom_bits);
  uint64_t key = 0;
  while (eng.ShardIndex(key) != 2) ++key;
  eng.Put(key, 1);
  EXPECT_EQ(eng.ShardLifecycle(2), ShardState::kMaterialized);
  EXPECT_EQ(eng.ShardOptionsSnapshot(2).bloom_bits, tuned.bloom_bits);
  EXPECT_EQ(eng.ShardOptionsSnapshot(2).buffer_bytes, tuned.buffer_bytes);
}

// ---------------------------------------------------------------------------
// Real-IO backend (FileEngine): the deterministic surface matches; only
// wall-clock latencies may differ.
// ---------------------------------------------------------------------------

std::string TestBase() {
  if (const char* env = std::getenv("CAMAL_FILE_WORKDIR")) return env;
  return ::testing::TempDir();
}

std::string UniqueDir(const std::string& tag) {
  return TestBase() + "/camal_lc_test_" + tag + "_" +
         std::to_string(FileEngine::NextUniqueId());
}

TEST(ShardLifecycleTest, HibernateWakeRehibernateMatchesEagerOnFile) {
  tune::SystemSetup setup = SmallSetup(4);
  setup.num_entries = 3000;
  setup.total_memory_bits = 16 * 3000;
  const lsm::Options total = tune::MonkeyDefaultConfig(setup).ToOptions(setup);

  FileEngineConfig hib_cfg;
  hib_cfg.workdir = UniqueDir("hib");
  hib_cfg.lifecycle =
      ShardLifecycleConfig{/*lazy=*/true, /*hibernate_after_batches=*/1};
  FileEngine hib(setup.num_shards, total, hib_cfg);

  FileEngineConfig eager_cfg;
  eager_cfg.workdir = UniqueDir("eager");
  eager_cfg.lifecycle = ShardLifecycleConfig{/*lazy=*/false, 0};
  FileEngine eager(setup.num_shards, total, eager_cfg);

  workload::KeySpace keys_a(setup.num_entries, setup.seed);
  workload::BulkLoad(&hib, keys_a);
  workload::KeySpace keys_b(setup.num_entries, setup.seed);
  workload::BulkLoad(&eager, keys_b);

  workload::KeySpace gen_keys(setup.num_entries, setup.seed);
  const std::vector<Op> ops = GenerateOps(setup, 3000, &gen_keys, 99);
  std::vector<Op> low, high;
  SplitByShard(eager, ops, 2, &low, &high);
  ASSERT_GT(low.size(), 600u);
  ASSERT_GT(high.size(), 600u);
  Op scan;
  scan.kind = OpKind::kScan;
  scan.key = 0;
  scan.scan_len = 64;

  auto slice = [](const std::vector<Op>& src, size_t from, size_t count) {
    return std::vector<Op>(src.begin() + from, src.begin() + from + count);
  };
  const std::vector<std::vector<Op>> batches = {
      slice(low, 0, 300),  slice(low, 300, 300),  // shards 2-3 freeze
      slice(high, 0, 300),                        // sidecar rehydration
      slice(low, 600, std::min(size_t{300}, low.size() - 600)),
      slice(low, 0, 300),                         // shards 2-3 freeze again
      {scan},                                     // wake-all
      slice(high, 300, high.size() - 300)};

  for (size_t b = 0; b < batches.size(); ++b) {
    SCOPED_TRACE("batch " + std::to_string(b));
    const std::vector<Op>& batch = batches[b];
    std::vector<OpResult> got(batch.size());
    std::vector<OpResult> want(batch.size());
    hib.ExecuteOps(batch.data(), batch.size(), got.data());
    eager.ExecuteOps(batch.data(), batch.size(), want.data());
    // Real clocks: latency differs run to run; everything else is owed
    // bit-exactly.
    ExpectSameResults(got, want, /*compare_latency=*/false);
    if (b == 1) {
      // Two low-only batches passed: the high shards froze to sidecars.
      EXPECT_EQ(hib.ShardLifecycle(2), ShardState::kHibernated);
      EXPECT_EQ(hib.ShardLifecycle(3), ShardState::kHibernated);
    }
    if (b == 2) {
      EXPECT_EQ(hib.ShardLifecycle(2), ShardState::kMaterialized);
      EXPECT_EQ(hib.ShardLifecycle(3), ShardState::kMaterialized);
    }
    if (b == 5) {
      EXPECT_EQ(hib.MaterializedShards(), 4u);
    }
  }

  ExpectSameCounters(hib.AggregateCounters(), eager.AggregateCounters());
  EXPECT_EQ(hib.CostSnapshot().block_reads, eager.CostSnapshot().block_reads);
  EXPECT_EQ(hib.CostSnapshot().block_writes,
            eager.CostSnapshot().block_writes);
  for (size_t s = 0; s < setup.num_shards; ++s) {
    ExpectSameCounters(hib.ShardCounters(s), eager.ShardCounters(s));
    EXPECT_EQ(hib.ShardRunCount(s), eager.ShardRunCount(s)) << "shard " << s;
    EXPECT_EQ(hib.ShardEntries(s), eager.ShardEntries(s)) << "shard " << s;
  }
  EXPECT_EQ(hib.TotalEntries(), eager.TotalEntries());
  EXPECT_EQ(hib.DiskEntries(), eager.DiskEntries());
}

}  // namespace
}  // namespace camal::engine
