// Per-shard write-ahead log (engine::fileio::Wal): entry round-trips with
// epochs and tombstones, group-commit buffering vs the kAlways policy,
// post-flush reset, CRC rejection, torn-tail truncation and repair, and
// the fsync ledger each policy implies (counted through a FileOps spy).

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "engine/file_ops.h"
#include "engine/wal.h"
#include "lsm/entry.h"

namespace camal::engine::fileio {
namespace {

namespace fs = std::filesystem;

std::string TestBase() {
  if (const char* env = std::getenv("CAMAL_FILE_WORKDIR")) return env;
  return ::testing::TempDir();
}

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = TestBase() + "/camal_wal_test_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string dir_;
};

lsm::Entry E(uint64_t key, uint64_t value, bool tombstone = false) {
  lsm::Entry e;
  e.key = key;
  e.value = value;
  e.tombstone = tombstone;
  return e;
}

/// Counts writes and fsyncs (the policy ledger).
class CountingOps : public FileOps {
 public:
  int64_t PWrite(int fd, const void* buf, uint64_t count,
                 uint64_t offset) override {
    ++pwrites_;
    return FileOps::PWrite(fd, buf, count, offset);
  }
  int Fsync(int fd) override {
    ++fsyncs_;
    return FileOps::Fsync(fd);
  }

  int pwrites() const { return pwrites_; }
  int fsyncs() const { return fsyncs_; }

 private:
  int pwrites_ = 0;
  int fsyncs_ = 0;
};

TEST_F(WalTest, RoundTripsEntriesEpochsAndTombstones) {
  {
    Wal wal(FileOps::Real(), dir_, WalSyncPolicy::kNone);
    const lsm::Entry batch1[] = {E(2, 10), E(4, 20), E(6, 0, true)};
    wal.Append(/*epoch=*/0, batch1, 3);
    wal.Commit();
    const lsm::Entry batch2[] = {E(8, 40)};
    wal.Append(/*epoch=*/1, batch2, 1);
    wal.Commit();
  }
  const WalReplay replay = ReadWal(Wal::PathFor(dir_));
  ASSERT_TRUE(replay.exists);
  EXPECT_FALSE(replay.tail_torn);
  ASSERT_EQ(replay.records.size(), 2u);
  EXPECT_EQ(replay.records[0].epoch, 0u);
  ASSERT_EQ(replay.records[0].entries.size(), 3u);
  EXPECT_EQ(replay.records[0].entries[0], E(2, 10));
  EXPECT_EQ(replay.records[0].entries[1], E(4, 20));
  EXPECT_TRUE(replay.records[0].entries[2].tombstone);
  EXPECT_EQ(replay.records[0].entries[2].key, 6u);
  EXPECT_EQ(replay.records[1].epoch, 1u);
  ASSERT_EQ(replay.records[1].entries.size(), 1u);
  EXPECT_EQ(replay.records[1].entries[0], E(8, 40));
}

TEST_F(WalTest, AbsentAndEmptyLogsReplayEmpty) {
  const WalReplay absent = ReadWal(Wal::PathFor(dir_));
  EXPECT_FALSE(absent.exists);
  EXPECT_TRUE(absent.records.empty());

  { std::ofstream(Wal::PathFor(dir_)).flush(); }
  const WalReplay empty = ReadWal(Wal::PathFor(dir_));
  EXPECT_TRUE(empty.exists);
  EXPECT_TRUE(empty.records.empty());
  EXPECT_FALSE(empty.tail_torn);
}

TEST_F(WalTest, AppendsBufferUntilCommit) {
  Wal wal(FileOps::Real(), dir_, WalSyncPolicy::kNone);
  const lsm::Entry e = E(2, 10);
  wal.Append(0, &e, 1);
  // Uncommitted appends are invisible to replay (the file is empty or
  // absent until the batch boundary).
  EXPECT_TRUE(ReadWal(wal.path()).records.empty());
  wal.Commit();
  EXPECT_EQ(ReadWal(wal.path()).records.size(), 1u);
}

TEST_F(WalTest, PolicyLedger) {
  const lsm::Entry e = E(2, 10);
  {
    // kNone: one pwrite per commit, zero fsyncs.
    CountingOps ops;
    fs::create_directories(dir_ + "/none");
    Wal wal(&ops, dir_ + "/none", WalSyncPolicy::kNone);
    wal.Append(0, &e, 1);
    wal.Append(0, &e, 1);
    wal.Commit();
    EXPECT_EQ(ops.pwrites(), 1);  // group commit: both appends, one write
    EXPECT_EQ(ops.fsyncs(), 0);
  }
  {
    // kBatch: one pwrite + one fsync per commit.
    CountingOps ops;
    fs::create_directories(dir_ + "/batch");
    Wal wal(&ops, dir_ + "/batch", WalSyncPolicy::kBatch);
    wal.Append(0, &e, 1);
    wal.Append(0, &e, 1);
    wal.Commit();
    EXPECT_EQ(ops.pwrites(), 1);
    EXPECT_EQ(ops.fsyncs(), 1);
    wal.Commit();  // idle commit: nothing pending, no write, no sync
    EXPECT_EQ(ops.pwrites(), 1);
    EXPECT_EQ(ops.fsyncs(), 1);
  }
  {
    // kAlways: every append commits and syncs immediately.
    CountingOps ops;
    fs::create_directories(dir_ + "/always");
    Wal wal(&ops, dir_ + "/always", WalSyncPolicy::kAlways);
    wal.Append(0, &e, 1);
    wal.Append(0, &e, 1);
    EXPECT_EQ(ops.pwrites(), 2);
    EXPECT_EQ(ops.fsyncs(), 2);
    wal.Commit();  // nothing left to do
    EXPECT_EQ(ops.pwrites(), 2);
    EXPECT_EQ(ops.fsyncs(), 2);
  }
}

TEST_F(WalTest, ResetEmptiesTheLog) {
  Wal wal(FileOps::Real(), dir_, WalSyncPolicy::kNone);
  const lsm::Entry e = E(2, 10);
  wal.Append(0, &e, 1);
  wal.Commit();
  ASSERT_EQ(ReadWal(wal.path()).records.size(), 1u);
  wal.Reset();  // the flush made the logged entries durable in a run
  EXPECT_TRUE(ReadWal(wal.path()).records.empty());
  // The log keeps working after a reset.
  wal.Append(1, &e, 1);
  wal.Commit();
  const WalReplay replay = ReadWal(wal.path());
  ASSERT_EQ(replay.records.size(), 1u);
  EXPECT_EQ(replay.records[0].epoch, 1u);
}

TEST_F(WalTest, TornTailTruncatesToLastWholeRecord) {
  uint64_t whole = 0;
  {
    Wal wal(FileOps::Real(), dir_, WalSyncPolicy::kNone);
    const lsm::Entry a[] = {E(2, 1), E(4, 2)};
    wal.Append(0, a, 2);
    wal.Commit();
    whole = static_cast<uint64_t>(fs::file_size(wal.path()));
    const lsm::Entry b[] = {E(6, 3)};
    wal.Append(0, b, 1);
    wal.Commit();
  }
  // Crash mid-record: only part of the second record hit the platter.
  ASSERT_EQ(::truncate(Wal::PathFor(dir_).c_str(),
                       static_cast<off_t>(whole + 9)),
            0);
  const WalReplay replay = ReadWal(Wal::PathFor(dir_));
  EXPECT_TRUE(replay.tail_torn);
  ASSERT_EQ(replay.records.size(), 1u);
  EXPECT_EQ(replay.records[0].entries.size(), 2u);
  EXPECT_EQ(replay.valid_bytes, whole);

  // Repair then append: the log is whole again.
  {
    Wal wal(FileOps::Real(), dir_, WalSyncPolicy::kNone);
    wal.TruncateTail(replay.valid_bytes);
    const lsm::Entry c[] = {E(8, 4)};
    wal.Append(0, c, 1);
    wal.Commit();
  }
  const WalReplay healed = ReadWal(Wal::PathFor(dir_));
  EXPECT_FALSE(healed.tail_torn);
  ASSERT_EQ(healed.records.size(), 2u);
  EXPECT_EQ(healed.records[1].entries[0], E(8, 4));
}

TEST_F(WalTest, CrcRejectsDamagedRecord) {
  uint64_t first = 0;
  {
    Wal wal(FileOps::Real(), dir_, WalSyncPolicy::kNone);
    const lsm::Entry a[] = {E(2, 1)};
    wal.Append(0, a, 1);
    wal.Commit();
    first = static_cast<uint64_t>(fs::file_size(wal.path()));
    const lsm::Entry b[] = {E(4, 2)};
    wal.Append(0, b, 1);
    wal.Commit();
  }
  // Damage one byte inside the second record's payload.
  {
    std::fstream f(Wal::PathFor(dir_),
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(first + 8 + 3));
    char c = 0x5a;
    f.write(&c, 1);
  }
  const WalReplay replay = ReadWal(Wal::PathFor(dir_));
  EXPECT_TRUE(replay.tail_torn);
  ASSERT_EQ(replay.records.size(), 1u);
  EXPECT_EQ(replay.records[0].entries[0], E(2, 1));
}

}  // namespace
}  // namespace camal::engine::fileio
