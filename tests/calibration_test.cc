// Sim-vs-real calibration: the residual corrector's identity and
// determinism contracts, the corrected cost-model plumbing, the engine's
// always-on op-cost profiler, and the Measurement residual fields. Every
// "off" state (no corrector, unfitted corrector) is pinned bit-identical
// to the uncalibrated system.

#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <vector>

#include "camal/classic_tuner.h"
#include "camal/evaluator.h"
#include "camal/residual_corrector.h"
#include "camal/sample.h"
#include "engine/sharded_engine.h"
#include "model/calibrated_cost_model.h"
#include "model/cost_model.h"
#include "workload/executor.h"
#include "workload/generator.h"
#include "workload/tables.h"

namespace camal::tune {
namespace {

using model::CostChannel;

SystemSetup TinySetup() {
  SystemSetup setup;
  setup.num_entries = 6000;
  setup.total_memory_bits = 16 * 6000;
  setup.train_ops = 400;
  setup.eval_ops = 800;
  return setup;
}

std::vector<model::ModelConfig> ConfigSweep(const model::SystemParams& params) {
  std::vector<model::ModelConfig> out;
  for (const double t : {2.0, 4.0, 10.0}) {
    for (const double bloom_frac : {0.1, 0.4, 0.6}) {
      model::ModelConfig c;
      c.size_ratio = t;
      c.mf_bits = bloom_frac * params.total_memory_bits;
      c.mb_bits = 0.5 * (params.total_memory_bits - c.mf_bits);
      out.push_back(c);
      c.policy = lsm::CompactionPolicy::kTiering;
      out.push_back(c);
    }
  }
  return out;
}

TEST(ResidualCorrectorTest, UnfittedCorrectorIsBitIdentical) {
  const model::SystemParams params = TinySetup().ToModelParams();
  const model::CostModel plain(params);
  ResidualCorrector corrector;  // never observed, never fitted: identity
  const model::CostModel attached(params, &corrector);

  const model::WorkloadSpec mixes[] = {{0.25, 0.25, 0.25, 0.25},
                                       {0.7, 0.1, 0.1, 0.1},
                                       {0.05, 0.05, 0.0, 0.9}};
  for (const model::WorkloadSpec& w : mixes) {
    for (model::ModelConfig c : ConfigSweep(params)) {
      EXPECT_EQ(plain.OpCost(w, c), attached.OpCost(w, c));
      c.io_queue_depth = 8.0;
      EXPECT_EQ(plain.EffectiveOpCost(w, c), attached.EffectiveOpCost(w, c));
    }
  }
}

TEST(ResidualCorrectorTest, FitIsDeterministicAtFixedSeed) {
  ResidualCorrectorOptions opts;
  opts.seed = 7;
  const auto feed = [](ResidualCorrector* rc) {
    for (int i = 1; i <= 12; ++i) {
      const double p = 0.5 * i;
      rc->Observe(CostChannel::kPointLookup, p, 1.7 * p + 0.3);
      rc->Observe(CostChannel::kWrite, p, 0.6 * p);
    }
  };
  ResidualCorrector a(opts);
  ResidualCorrector b(opts);
  feed(&a);
  feed(&b);
  a.Fit();
  b.Fit();

  EXPECT_TRUE(a.fitted(CostChannel::kPointLookup));
  EXPECT_TRUE(a.fitted(CostChannel::kWrite));
  EXPECT_FALSE(a.fitted(CostChannel::kRangeLookup));  // nothing observed
  for (double x = 0.25; x <= 7.0; x += 0.25) {
    EXPECT_EQ(a.Correct(CostChannel::kPointLookup, x),
              b.Correct(CostChannel::kPointLookup, x));
    EXPECT_EQ(a.Correct(CostChannel::kWrite, x),
              b.Correct(CostChannel::kWrite, x));
    // The unobserved channel stays the exact identity.
    EXPECT_EQ(a.Correct(CostChannel::kRangeLookup, x), x);
  }

  // Refitting from the same observations is a pure function: the second
  // Fit reproduces the first bit for bit.
  a.Fit();
  for (double x = 0.25; x <= 7.0; x += 0.25) {
    EXPECT_EQ(a.Correct(CostChannel::kPointLookup, x),
              b.Correct(CostChannel::kPointLookup, x));
  }
}

TEST(ResidualCorrectorTest, FitLearnsSystematicBias) {
  // The engine consistently measures twice the predicted cost; a fitted
  // corrector must move predictions decisively toward measured.
  ResidualCorrector rc;
  for (int i = 1; i <= 16; ++i) {
    const double p = 0.4 * i;
    rc.Observe(CostChannel::kPointLookup, p, 2.0 * p);
  }
  rc.Fit();
  ASSERT_TRUE(rc.fitted(CostChannel::kPointLookup));
  EXPECT_GT(rc.Correct(CostChannel::kPointLookup, 3.2), 3.2 * 1.3);
  // A corrected cost is still a cost.
  EXPECT_GE(rc.Correct(CostChannel::kPointLookup, 0.0), 0.0);
}

TEST(ResidualCorrectorTest, UnderObservedChannelStaysIdentity) {
  ResidualCorrectorOptions opts;
  opts.min_observations = 4;
  ResidualCorrector rc(opts);
  rc.Observe(CostChannel::kRangeLookup, 2.0, 9.0);
  rc.Observe(CostChannel::kRangeLookup, 3.0, 11.0);
  rc.Fit();  // 2 < 4: below the floor
  EXPECT_FALSE(rc.fitted(CostChannel::kRangeLookup));
  EXPECT_EQ(rc.Correct(CostChannel::kRangeLookup, 5.5), 5.5);
}

TEST(CalibratedCostModelTest, UnfittedOwnedCorrectorIsBitIdentical) {
  const model::SystemParams params = TinySetup().ToModelParams();
  const model::CostModel plain(params);
  const model::CalibratedCostModel calibrated(
      params, std::make_shared<ResidualCorrector>());
  const model::CalibratedCostModel null_owned =
      model::MakeCalibratedModel(params, nullptr);
  EXPECT_EQ(null_owned.corrector(), nullptr);

  const model::WorkloadSpec w{0.2, 0.3, 0.2, 0.3};
  for (const model::ModelConfig& c : ConfigSweep(params)) {
    EXPECT_EQ(plain.OpCost(w, c), calibrated.OpCost(w, c));
    EXPECT_EQ(plain.OpCost(w, c), null_owned.OpCost(w, c));
  }
}

TEST(CalibratedCostModelTest, FittedCorrectorShiftsObjectives) {
  const model::SystemParams params = TinySetup().ToModelParams();
  auto rc = std::make_shared<ResidualCorrector>();
  // Point lookups measure 3x their prediction across the observed range.
  for (int i = 1; i <= 16; ++i) {
    const double p = 0.25 * i;
    rc->Observe(CostChannel::kPointLookup, p, 3.0 * p);
  }
  rc->Fit();
  const model::CostModel plain(params);
  const model::CalibratedCostModel calibrated(params, rc);

  const model::WorkloadSpec read_heavy{0.45, 0.45, 0.0, 0.1};
  model::ModelConfig c;
  c.mf_bits = 0.4 * params.total_memory_bits;
  c.mb_bits = 0.4 * params.total_memory_bits;
  EXPECT_GT(calibrated.OpCost(read_heavy, c), plain.OpCost(read_heavy, c));
  // The structural primitives stay uncorrected: only the workload-weighted
  // objectives consume the corrector.
  EXPECT_EQ(calibrated.ZeroResultLookupCost(c), plain.ZeroResultLookupCost(c));
  EXPECT_EQ(calibrated.WriteCost(c), plain.WriteCost(c));
}

TEST(CalibrationTest, IdentityCorrectorLeavesTunerRecommendationUnchanged) {
  // TunerOptions::cost_corrector with an unfitted corrector must recommend
  // exactly what no corrector recommends — the calibration-off sim path is
  // bit-identical.
  const SystemSetup setup = TinySetup();
  const model::SystemParams params = setup.ToModelParams();
  ClassicTuner plain(setup, TunerOptions{});
  TunerOptions calib_opts;
  calib_opts.cost_corrector = std::make_shared<ResidualCorrector>();
  ClassicTuner calibrated(setup, calib_opts);

  const model::WorkloadSpec mixes[] = {{0.25, 0.25, 0.25, 0.25},
                                       {0.6, 0.2, 0.1, 0.1},
                                       {0.05, 0.05, 0.1, 0.8}};
  for (const model::WorkloadSpec& w : mixes) {
    const TuningConfig a = plain.RecommendFor(w, params);
    const TuningConfig b = calibrated.RecommendFor(w, params);
    EXPECT_EQ(a.policy, b.policy);
    EXPECT_EQ(a.size_ratio, b.size_ratio);
    EXPECT_EQ(a.mf_bits, b.mf_bits);
    EXPECT_EQ(a.mb_bits, b.mb_bits);
    EXPECT_EQ(a.mc_bits, b.mc_bits);
  }
}

TEST(OpCostProfilerTest, WindowsMatchBatchResultsExactly) {
  const SystemSetup setup = TinySetup();
  engine::ShardedEngine eng(2, MonkeyDefaultConfig(setup).ToOptions(setup),
                            setup.MakeDeviceConfig());
  workload::KeySpace keys(setup.num_entries, setup.seed);
  workload::BulkLoad(&eng, keys);
  eng.ResetOpCostWindows();

  std::vector<engine::Op> ops;
  for (size_t i = 0; i < 300; ++i) {
    engine::Op op;
    op.key = keys.KeyAt(i % keys.num_keys());
    switch (i % 3) {
      case 0:
        op.kind = engine::OpKind::kGet;
        break;
      case 1:
        op.kind = engine::OpKind::kPut;
        op.value = i;
        break;
      default:
        op.kind = engine::OpKind::kScan;
        op.scan_len = 8;
        break;
    }
    ops.push_back(op);
  }
  const std::vector<engine::OpResult> results = eng.ExecuteOps(ops);

  // The profiler's windows are exactly the per-kind sums of the batch's
  // own OpResults — same ops, same ios, same (deterministic) latency.
  std::array<engine::OpCostWindow, engine::kNumOpKinds> expect{};
  for (size_t i = 0; i < ops.size(); ++i) {
    engine::OpCostWindow& cell = expect[static_cast<size_t>(ops[i].kind)];
    cell.ops += 1;
    cell.ios += results[i].ios;
    cell.latency_ns += results[i].latency_ns;
  }
  for (size_t k = 0; k < engine::kNumOpKinds; ++k) {
    const auto kind = static_cast<engine::OpKind>(k);
    const engine::OpCostWindow total = eng.OpCostWindowTotal(kind);
    EXPECT_EQ(total.ops, expect[k].ops);
    EXPECT_EQ(total.ios, expect[k].ios);
    EXPECT_DOUBLE_EQ(total.latency_ns, expect[k].latency_ns);
    // Per-shard windows partition the total.
    engine::OpCostWindow sharded;
    for (size_t s = 0; s < eng.NumShards(); ++s) {
      sharded += eng.ShardOpCostWindow(s, kind);
    }
    EXPECT_EQ(sharded.ops, total.ops);
    EXPECT_EQ(sharded.ios, total.ios);
  }

  eng.ResetOpCostWindows();
  EXPECT_EQ(eng.OpCostWindowTotal(engine::OpKind::kGet).ops, 0u);
}

TEST(CalibrationTest, MeasurementResidualsConsistentAndDeterministic) {
  const SystemSetup setup = TinySetup();
  const Evaluator evaluator(setup);
  const model::WorkloadSpec w{0.2, 0.3, 0.2, 0.3};
  const TuningConfig config = MonkeyDefaultConfig(setup);

  const Measurement m1 = evaluator.Measure(w, config, 800, 5);
  const Measurement m2 = evaluator.Measure(w, config, 800, 5);

  // Every channel served ops under this mix, so predictions, measurements
  // and residuals are all populated, and residual = measured - predicted.
  EXPECT_GT(m1.point_ios_predicted, 0.0);
  EXPECT_GT(m1.point_ios_measured, 0.0);
  EXPECT_GT(m1.range_ios_measured, 0.0);
  EXPECT_GT(m1.write_ios_measured, 0.0);
  EXPECT_EQ(m1.point_ios_residual,
            m1.point_ios_measured - m1.point_ios_predicted);
  EXPECT_EQ(m1.range_ios_residual,
            m1.range_ios_measured - m1.range_ios_predicted);
  EXPECT_EQ(m1.write_ios_residual,
            m1.write_ios_measured - m1.write_ios_predicted);

  // Same salt, sim backend: the whole measurement is bit-reproducible,
  // residual fields included.
  EXPECT_EQ(m1.ios_per_op, m2.ios_per_op);
  EXPECT_EQ(m1.point_ios_measured, m2.point_ios_measured);
  EXPECT_EQ(m1.range_ios_measured, m2.range_ios_measured);
  EXPECT_EQ(m1.write_ios_measured, m2.write_ios_measured);
  EXPECT_EQ(m1.point_ios_residual, m2.point_ios_residual);
}

}  // namespace
}  // namespace camal::tune
