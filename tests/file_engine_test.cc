// Real-IO backend (engine::FileEngine): working-directory lifecycle,
// O_DIRECT fallback, point-op vs batched-pipeline equivalence, runtime
// per-shard reconfiguration under in-flight batches, arbiter budget
// conservation on real files, and the sim-vs-real smoke: the
// model-recommended tuning is no worse than the default tuning on the
// file backend (compared on real, deterministic I/O counts).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "camal/classic_tuner.h"
#include "camal/evaluator.h"
#include "camal/memory_arbiter.h"
#include "camal/sample.h"
#include "engine/file_engine.h"
#include "util/random.h"
#include "util/thread_pool.h"
#include "workload/executor.h"
#include "workload/generator.h"

namespace camal::engine {
namespace {

namespace fs = std::filesystem;

/// Base directory for this suite's file sets. CI points it at a tmpfs
/// mount (CAMAL_FILE_WORKDIR=/dev/shm/...) so the engine-label suite can
/// run the real-IO paths without touching slow disks.
std::string TestBase() {
  if (const char* env = std::getenv("CAMAL_FILE_WORKDIR")) return env;
  return ::testing::TempDir();
}

std::string UniqueDir(const std::string& tag) {
  return TestBase() + "/camal_fe_test_" + tag + "_" +
         std::to_string(FileEngine::NextUniqueId());
}

lsm::Options SmallOptions() {
  lsm::Options opts;
  opts.buffer_bytes = 64 * 128;  // 64 entries per shard slice
  opts.bloom_bits = 8 * 4000;
  opts.block_cache_bytes = 8 * 4096;
  return opts;
}

tune::SystemSetup FileSetup(uint64_t entries, size_t shards) {
  tune::SystemSetup setup;
  setup.num_entries = entries;
  setup.total_memory_bits = 16 * entries;
  setup.num_shards = shards;
  setup.backend = tune::EngineBackend::kFile;
  setup.file_workdir = TestBase();
  return setup;
}

/// The canonical steady-state stream of the engine suites.
workload::ExecutionResult RunStream(StorageEngine* eng,
                                    workload::KeySpace* keys, size_t num_ops,
                                    double skew = 0.0,
                                    workload::BatchHook* hook = nullptr,
                                    size_t batch_ops = 256) {
  workload::ExecutorConfig exec;
  exec.num_ops = num_ops;
  exec.seed = 77;
  exec.batch_ops = batch_ops;
  exec.generator.scan_len = 16;
  exec.generator.shard_skew = skew;
  exec.generator.num_shards = eng->NumShards();
  exec.hook = hook;
  return workload::Execute(eng, model::WorkloadSpec{0.2, 0.3, 0.2, 0.3}, exec,
                           keys);
}

TEST(FileEngineTest, WorkdirLifecycleCreatesAndRemoves) {
  const std::string dir = UniqueDir("lifecycle");
  ASSERT_FALSE(fs::exists(dir));
  {
    FileEngineConfig cfg;
    cfg.workdir = dir;
    FileEngine eng(2, SmallOptions(), cfg);
    for (uint64_t k = 0; k < 500; ++k) eng.Put(2 * k, k);
    eng.FlushMemtable();
    EXPECT_TRUE(fs::exists(dir + "/shard_0"));
    EXPECT_TRUE(fs::exists(dir + "/shard_1"));
    // At least one run file persisted per shard.
    size_t files = 0;
    for (const auto& e : fs::recursive_directory_iterator(dir)) {
      if (e.is_regular_file()) ++files;
    }
    EXPECT_GT(files, 0u);
  }
  // Destruction removes the directory the engine created.
  EXPECT_FALSE(fs::exists(dir));
}

TEST(FileEngineTest, KeepFilesLeavesRunsBehind) {
  const std::string dir = UniqueDir("keep");
  {
    FileEngineConfig cfg;
    cfg.workdir = dir;
    cfg.keep_files = true;
    FileEngine eng(1, SmallOptions(), cfg);
    for (uint64_t k = 0; k < 200; ++k) eng.Put(2 * k, k);
    eng.FlushMemtable();
  }
  EXPECT_TRUE(fs::exists(dir + "/shard_0"));
  fs::remove_all(dir);
}

TEST(FileEngineTest, PreexistingCallerDirectoryIsPreserved) {
  const std::string dir = UniqueDir("caller_owned");
  fs::create_directories(dir);
  const std::string sibling = dir + "/unrelated.txt";
  { std::ofstream(sibling) << "keep me"; }
  {
    FileEngineConfig cfg;
    cfg.workdir = dir;
    FileEngine eng(1, SmallOptions(), cfg);
    eng.Put(2, 1);
    eng.FlushMemtable();
  }
  // Only the engine's shard subtrees are removed, never sibling content.
  EXPECT_TRUE(fs::exists(sibling));
  EXPECT_FALSE(fs::exists(dir + "/shard_0"));
  fs::remove_all(dir);
}

TEST(FileEngineTest, DefaultWorkdirIsUniqueAndRemoved) {
  std::string wd0, wd1;
  {
    FileEngine a(1, SmallOptions(), FileEngineConfig{});
    FileEngine b(1, SmallOptions(), FileEngineConfig{});
    wd0 = a.workdir();
    wd1 = b.workdir();
    EXPECT_NE(wd0, wd1);
    EXPECT_TRUE(fs::exists(wd0));
    EXPECT_TRUE(fs::exists(wd1));
  }
  EXPECT_FALSE(fs::exists(wd0));
  EXPECT_FALSE(fs::exists(wd1));
}

TEST(FileEngineTest, BasicReadYourWrites) {
  FileEngineConfig cfg;
  cfg.workdir = UniqueDir("rw");
  FileEngine eng(4, SmallOptions(), cfg);
  const workload::KeySpace keys(3000, 42);
  workload::BulkLoad(&eng, keys);
  EXPECT_EQ(eng.TotalEntries(), 3000u);

  uint64_t value = 0;
  for (uint64_t r = 0; r < keys.num_keys(); ++r) {
    ASSERT_TRUE(eng.Get(keys.KeyAt(r), &value)) << "rank " << r;
  }
  // Odd keys are guaranteed misses.
  for (uint64_t k = 1; k < 999; k += 2) {
    EXPECT_FALSE(eng.Get(k, &value));
  }
  // Deletes shadow older versions.
  eng.Delete(keys.KeyAt(7));
  EXPECT_FALSE(eng.Get(keys.KeyAt(7), &value));
  eng.FlushMemtable();
  EXPECT_FALSE(eng.Get(keys.KeyAt(7), &value));
}

TEST(FileEngineTest, ScanMatchesReferenceModel) {
  FileEngineConfig cfg;
  cfg.workdir = UniqueDir("scan");
  FileEngine eng(3, SmallOptions(), cfg);

  std::map<uint64_t, uint64_t> reference;
  util::Random rng(9);
  for (int i = 0; i < 3000; ++i) {
    const uint64_t key = 2 * rng.Uniform(2000);
    if (rng.Bernoulli(0.15)) {
      eng.Delete(key);
      reference.erase(key);
    } else {
      eng.Put(key, i);
      reference[key] = static_cast<uint64_t>(i);
    }
  }

  for (uint64_t start : {0ull, 100ull, 999ull, 2500ull, 3999ull}) {
    std::vector<lsm::Entry> got;
    eng.Scan(start, 25, &got);
    auto it = reference.lower_bound(start);
    size_t i = 0;
    for (; i < 25 && it != reference.end(); ++i, ++it) {
      ASSERT_LT(i, got.size()) << "start " << start;
      EXPECT_EQ(got[i].key, it->first);
      EXPECT_EQ(got[i].value, it->second);
    }
    EXPECT_EQ(got.size(), i);
  }
}

TEST(FileEngineTest, DirectIoAndBufferedProduceIdenticalResults) {
  // The engine probes the filesystem and falls back to buffered I/O when
  // O_DIRECT is refused; logical results and real I/O *counts* must be
  // identical either way (only timings differ).
  FileEngineConfig direct_cfg;
  direct_cfg.workdir = UniqueDir("direct");
  direct_cfg.try_direct_io = true;
  FileEngineConfig buffered_cfg;
  buffered_cfg.workdir = UniqueDir("buffered");
  buffered_cfg.try_direct_io = false;

  FileEngine direct(2, SmallOptions(), direct_cfg);
  FileEngine buffered(2, SmallOptions(), buffered_cfg);
  EXPECT_FALSE(buffered.direct_io());

  workload::KeySpace keys_a(2000, 42);
  workload::KeySpace keys_b(2000, 42);
  workload::BulkLoad(&direct, keys_a);
  workload::BulkLoad(&buffered, keys_b);
  const workload::ExecutionResult ra = RunStream(&direct, &keys_a, 1500);
  const workload::ExecutionResult rb = RunStream(&buffered, &keys_b, 1500);

  EXPECT_EQ(ra.lookups_found, rb.lookups_found);
  EXPECT_EQ(ra.lookups_missed, rb.lookups_missed);
  EXPECT_EQ(ra.total_ios, rb.total_ios);
  EXPECT_EQ(direct.CostSnapshot().block_reads,
            buffered.CostSnapshot().block_reads);
  EXPECT_EQ(direct.CostSnapshot().block_writes,
            buffered.CostSnapshot().block_writes);
  EXPECT_EQ(direct.TotalEntries(), buffered.TotalEntries());
}

TEST(FileEngineTest, PointOpsAndExecuteOpsEquivalent) {
  // The batched pipeline must serve exactly what op-at-a-time serving
  // serves: same outcomes, same real I/O counts, same end state.
  FileEngineConfig cfg_a;
  cfg_a.workdir = UniqueDir("point");
  FileEngineConfig cfg_b;
  cfg_b.workdir = UniqueDir("batched");
  FileEngine point(3, SmallOptions(), cfg_a);
  FileEngine batched(3, SmallOptions(), cfg_b);

  // A deterministic mixed stream, including misses and deletes.
  std::vector<Op> ops;
  util::Random rng(31);
  for (int i = 0; i < 4000; ++i) {
    Op op;
    const double roll = rng.NextDouble();
    if (roll < 0.45) {
      op.kind = OpKind::kPut;
      op.key = 2 * rng.Uniform(1500);
      op.value = static_cast<uint64_t>(i);
    } else if (roll < 0.8) {
      op.kind = OpKind::kGet;
      op.key = rng.Uniform(3000);  // half will be odd = misses
    } else if (roll < 0.9) {
      op.kind = OpKind::kDelete;
      op.key = 2 * rng.Uniform(1500);
    } else {
      op.kind = OpKind::kScan;
      op.key = rng.Uniform(3000);
      op.scan_len = 16;
    }
    ops.push_back(op);
  }

  // Point-op serving.
  size_t point_found = 0, point_scan_hits = 0;
  std::vector<lsm::Entry> scan_buf;
  for (const Op& op : ops) {
    switch (op.kind) {
      case OpKind::kPut:
        point.Put(op.key, op.value);
        break;
      case OpKind::kDelete:
        point.Delete(op.key);
        break;
      case OpKind::kGet: {
        uint64_t v = 0;
        if (point.Get(op.key, &v)) ++point_found;
        break;
      }
      case OpKind::kScan:
        scan_buf.clear();
        point_scan_hits += point.Scan(op.key, op.scan_len, &scan_buf);
        break;
    }
  }

  // Batched serving in uneven batch slices.
  size_t batched_found = 0, batched_scan_hits = 0;
  size_t at = 0;
  const size_t slices[] = {1, 7, 64, 256, 1000};
  size_t slice = 0;
  while (at < ops.size()) {
    const size_t n = std::min(slices[slice++ % 5], ops.size() - at);
    std::vector<OpResult> results(n);
    batched.ExecuteOps(ops.data() + at, n, results.data());
    for (size_t i = 0; i < n; ++i) {
      if (ops[at + i].kind == OpKind::kGet && results[i].found) {
        ++batched_found;
      }
      batched_scan_hits += results[i].scan_hits;
    }
    at += n;
  }

  EXPECT_EQ(point_found, batched_found);
  EXPECT_EQ(point_scan_hits, batched_scan_hits);
  EXPECT_EQ(point.TotalEntries(), batched.TotalEntries());
  EXPECT_EQ(point.DiskEntries(), batched.DiskEntries());
  EXPECT_EQ(point.CostSnapshot().block_reads,
            batched.CostSnapshot().block_reads);
  EXPECT_EQ(point.CostSnapshot().block_writes,
            batched.CostSnapshot().block_writes);
  for (size_t s = 0; s < point.NumShards(); ++s) {
    EXPECT_EQ(point.ShardEntries(s), batched.ShardEntries(s));
    EXPECT_EQ(point.ShardCostSnapshot(s).block_reads,
              batched.ShardCostSnapshot(s).block_reads);
  }
}

TEST(FileEngineTest, PooledExecuteOpsMatchesSerial) {
  // The per-shard submission lists run concurrently when a pool is
  // attached; logical results and real I/O counts must match the serial
  // execution exactly (shard state — file set, cache, clock — is fully
  // shard-local).
  FileEngineConfig cfg_a;
  cfg_a.workdir = UniqueDir("serial_exec");
  FileEngineConfig cfg_b;
  cfg_b.workdir = UniqueDir("pooled_exec");
  FileEngine serial(4, SmallOptions(), cfg_a);
  FileEngine pooled(4, SmallOptions(), cfg_b);
  util::ThreadPool pool(3);
  pooled.set_pool(&pool);

  workload::KeySpace keys_a(2500, 42);
  workload::KeySpace keys_b(2500, 42);
  workload::BulkLoad(&serial, keys_a);
  workload::BulkLoad(&pooled, keys_b);
  const workload::ExecutionResult ra = RunStream(&serial, &keys_a, 2000);
  const workload::ExecutionResult rb = RunStream(&pooled, &keys_b, 2000);

  EXPECT_EQ(ra.lookups_found, rb.lookups_found);
  EXPECT_EQ(ra.lookups_missed, rb.lookups_missed);
  EXPECT_EQ(ra.total_ios, rb.total_ios);
  EXPECT_EQ(serial.TotalEntries(), pooled.TotalEntries());
  for (size_t s = 0; s < serial.NumShards(); ++s) {
    EXPECT_EQ(serial.ShardCostSnapshot(s).block_reads,
              pooled.ShardCostSnapshot(s).block_reads);
    EXPECT_EQ(serial.ShardCostSnapshot(s).block_writes,
              pooled.ShardCostSnapshot(s).block_writes);
    EXPECT_EQ(serial.ShardEntries(s), pooled.ShardEntries(s));
  }
}

TEST(FileEngineTest, RealClocksAccumulatePerShard) {
  FileEngineConfig cfg;
  cfg.workdir = UniqueDir("clocks");
  FileEngine eng(2, SmallOptions(), cfg);
  workload::KeySpace keys(2000, 42);
  workload::BulkLoad(&eng, keys);
  const workload::ExecutionResult res = RunStream(&eng, &keys, 1000);

  // Per-op latencies are real measurements: positive, and their sum is
  // reflected in the engine clocks.
  EXPECT_GT(res.MeanLatencyNs(), 0.0);
  EXPECT_GT(res.total_ios, 0u);
  double shard_sum = 0.0;
  for (size_t s = 0; s < eng.NumShards(); ++s) {
    const sim::DeviceSnapshot snap = eng.ShardCostSnapshot(s);
    EXPECT_GT(snap.elapsed_ns, 0.0);
    shard_sum += snap.elapsed_ns;
  }
  EXPECT_DOUBLE_EQ(shard_sum, eng.CostSnapshot().elapsed_ns);
  // The execution window is part of the engine's lifetime clock.
  EXPECT_LE(res.total_ns, eng.CostSnapshot().elapsed_ns * (1.0 + 1e-9));
}

/// Reconfigures one shard between batches — the arbiter's mutation shape,
/// driven mid-phase while batches are in flight.
class ShrinkShardHook : public workload::BatchHook {
 public:
  void OnBatch(StorageEngine* engine, const workload::Operation* ops,
               size_t count) override {
    (void)ops;
    (void)count;
    ++batches_;
    if (batches_ % 3 != 0) return;
    const size_t s = batches_ % engine->NumShards();
    lsm::Options opts = engine->ShardOptionsSnapshot(s);
    // Alternate shrinking and growing the shard's footprint.
    if (grow_) {
      opts.buffer_bytes *= 2;
      opts.block_cache_bytes *= 2;
    } else {
      opts.buffer_bytes = std::max<uint64_t>(opts.entry_bytes * 4,
                                             opts.buffer_bytes / 2);
      opts.block_cache_bytes /= 2;
    }
    grow_ = !grow_;
    engine->ReconfigureShard(s, opts);
    ++reconfigures_;
  }

  size_t reconfigures() const { return reconfigures_; }

 private:
  size_t batches_ = 0;
  size_t reconfigures_ = 0;
  bool grow_ = false;
};

TEST(FileEngineTest, ReconfigureShardUnderInFlightBatches) {
  FileEngineConfig cfg;
  cfg.workdir = UniqueDir("reconf");
  FileEngine eng(4, SmallOptions(), cfg);
  workload::KeySpace keys(3000, 42);
  workload::BulkLoad(&eng, keys);

  ShrinkShardHook hook;
  RunStream(&eng, &keys, 3000, /*skew=*/0.0, &hook, /*batch_ops=*/128);
  EXPECT_GT(hook.reconfigures(), 0u);

  // The engine stays fully readable after repeated mid-flight resizes:
  // the stream only updates existing keys (delete_frac is 0), so every
  // key remains live.
  uint64_t value = 0;
  for (uint64_t r = 0; r < keys.num_keys(); ++r) {
    ASSERT_TRUE(eng.Get(keys.KeyAt(r), &value)) << "rank " << r;
  }

  // Shrunken buffers take effect: the buffered residue across all shards
  // stays within the sum of the *current* per-shard capacities.
  uint64_t capacity_sum = 0;
  for (size_t s = 0; s < eng.NumShards(); ++s) {
    capacity_sum += eng.ShardOptionsSnapshot(s).BufferEntries();
  }
  EXPECT_LE(eng.TotalEntries() - eng.DiskEntries(), capacity_sum);
}

TEST(FileEngineTest, ReconfigureShardResizesFootprintImmediately) {
  FileEngineConfig cfg;
  cfg.workdir = UniqueDir("resize");
  FileEngine eng(1, SmallOptions(), cfg);  // 1 shard: memtable observable
  for (uint64_t k = 0; k < 40; ++k) eng.Put(2 * k, k);
  ASSERT_GT(eng.TotalEntries(), eng.DiskEntries());  // buffered residue

  lsm::Options shrunk = eng.ShardOptionsSnapshot(0);
  shrunk.buffer_bytes = shrunk.entry_bytes * 8;
  shrunk.block_cache_bytes = 0;
  shrunk.bloom_bits /= 2;
  eng.ReconfigureShard(0, shrunk);

  // The snapshot reflects the new options verbatim (this is the surface
  // the arbiter's conservation accounting reads).
  const lsm::Options live = eng.ShardOptionsSnapshot(0);
  EXPECT_EQ(live.buffer_bytes, shrunk.buffer_bytes);
  EXPECT_EQ(live.block_cache_bytes, 0u);
  EXPECT_EQ(live.bloom_bits, shrunk.bloom_bits);
  EXPECT_EQ(eng.ShardBudgetSnapshot(0).TotalBits(),
            ShardBudget::FromOptions(shrunk).TotalBits());
  // The over-capacity memtable flushed on reconfigure.
  EXPECT_EQ(eng.TotalEntries(), eng.DiskEntries());
}

TEST(FileEngineTest, ArbiterConservesBudgetOnFileBackend) {
  // The memory arbiter talks only to the StorageEngine surface; on the
  // file backend its rounds must conserve the total budget exactly while
  // moving memory toward hot shards, and every applied per-shard budget
  // must respect the floor.
  const size_t kShards = 4;
  tune::SystemSetup setup;
  setup.num_entries = 8000;
  setup.total_memory_bits = 16 * 8000;
  const lsm::Options total = tune::MonkeyDefaultConfig(setup).ToOptions(setup);

  FileEngineConfig cfg;
  cfg.workdir = UniqueDir("arbiter");
  FileEngine eng(kShards, total, cfg);
  workload::KeySpace keys(setup.num_entries, setup.seed);
  workload::BulkLoad(&eng, keys);

  tune::ArbiterOptions arb_opts;
  arb_opts.period_ops = 512;
  tune::MemoryArbiter arbiter(setup, total, kShards, arb_opts);
  const uint64_t total_bits = arbiter.total_bits();

  RunStream(&eng, &keys, 6000, /*skew=*/1.2, &arbiter, /*batch_ops=*/256);

  ASSERT_GT(arbiter.rounds(), 0u);
  EXPECT_GT(arbiter.moves(), 0u) << "skewed traffic should move memory";

  // Conservation: the arbitrated budgets sum to the system total exactly;
  // the engine-side applied budgets never exceed it (floor divisions can
  // only round down) and respect the per-shard floor.
  uint64_t arbited = 0, applied = 0;
  for (size_t s = 0; s < kShards; ++s) {
    arbited += arbiter.BudgetBits(s);
    applied += eng.ShardBudgetSnapshot(s).TotalBits();
    EXPECT_GE(arbiter.BudgetBits(s), arbiter.floor_bits());
  }
  EXPECT_EQ(arbited, total_bits);
  EXPECT_LE(applied, total_bits);
  // Budgets actually diverged from the even split (hot shard 0 gained).
  EXPECT_NE(arbiter.BudgetBits(0), total_bits / kShards);
}

TEST(FileEngineTest, DurabilityLayerKeepsCountersBitIdentical) {
  // The golden no-reopen guarantee: with the durability layer on, every
  // manifest/WAL/sidecar byte is written outside the counted cost
  // clocks, so logical results and all I/O counters are bit-identical to
  // a durable-off engine serving the same stream — durability shows up
  // only in wall-clock.
  FileEngineConfig plain_cfg;
  plain_cfg.workdir = UniqueDir("plain");
  FileEngineConfig durable_cfg;
  durable_cfg.workdir = UniqueDir("durable");
  durable_cfg.durable = true;
  durable_cfg.wal_sync = fileio::WalSyncPolicy::kNone;  // CI-friendly

  FileEngine plain(3, SmallOptions(), plain_cfg);
  FileEngine durable(3, SmallOptions(), durable_cfg);
  EXPECT_FALSE(plain.durable());
  EXPECT_TRUE(durable.durable());

  workload::KeySpace keys_a(2500, 42);
  workload::KeySpace keys_b(2500, 42);
  workload::BulkLoad(&plain, keys_a);
  workload::BulkLoad(&durable, keys_b);
  const workload::ExecutionResult ra = RunStream(&plain, &keys_a, 2000);
  const workload::ExecutionResult rb = RunStream(&durable, &keys_b, 2000);

  EXPECT_EQ(ra.lookups_found, rb.lookups_found);
  EXPECT_EQ(ra.lookups_missed, rb.lookups_missed);
  EXPECT_EQ(ra.total_ios, rb.total_ios);
  EXPECT_EQ(plain.TotalEntries(), durable.TotalEntries());
  EXPECT_EQ(plain.DiskEntries(), durable.DiskEntries());
  for (size_t s = 0; s < plain.NumShards(); ++s) {
    EXPECT_EQ(plain.ShardCostSnapshot(s).block_reads,
              durable.ShardCostSnapshot(s).block_reads)
        << "shard " << s;
    EXPECT_EQ(plain.ShardCostSnapshot(s).block_writes,
              durable.ShardCostSnapshot(s).block_writes)
        << "shard " << s;
    EXPECT_EQ(plain.ShardEntries(s), durable.ShardEntries(s));
    EXPECT_EQ(plain.ShardRunCount(s), durable.ShardRunCount(s));
  }
}

TEST(FileEngineTest, EvaluatorMeasuresOnFileBackend) {
  // SystemSetup::backend = kFile routes Evaluator measurements through
  // the real-IO engine: costs are real clocks, I/O counts deterministic.
  tune::SystemSetup setup = FileSetup(3000, 2);
  const tune::Evaluator evaluator(setup);
  const model::WorkloadSpec mix{0.25, 0.25, 0.25, 0.25};
  const tune::Measurement m = evaluator.Measure(
      mix, tune::MonkeyDefaultConfig(setup), /*num_ops=*/1500, /*salt=*/1);
  EXPECT_GT(m.mean_latency_ns, 0.0);
  EXPECT_GT(m.ios_per_op, 0.0);
  EXPECT_GT(m.build_ns, 0.0);
  EXPECT_GT(m.total_cost_ns, m.build_ns);

  // I/O counts are a deterministic function of the op stream: a repeated
  // measurement at the same salt sees the same ios_per_op.
  const tune::Measurement m2 = evaluator.Measure(
      mix, tune::MonkeyDefaultConfig(setup), /*num_ops=*/1500, /*salt=*/1);
  EXPECT_DOUBLE_EQ(m.ios_per_op, m2.ios_per_op);
}

TEST(FileEngineTest, EvaluatorTimesRecoveryWhenAsked) {
  // measure_recovery: the evaluator closes the measured engine cleanly,
  // times a reopen=true recovery of the same file set, and removes the
  // files afterwards. The timing is real wall-clock (positive, noisy);
  // the measurement itself is unchanged.
  tune::SystemSetup setup = FileSetup(3000, 2);
  setup.file_durable = true;
  setup.file_wal_sync = tune::FileWalSync::kNone;
  setup.measure_recovery = true;
  const tune::Evaluator evaluator(setup);
  const model::WorkloadSpec mix{0.25, 0.25, 0.25, 0.25};
  const tune::Measurement m = evaluator.Measure(
      mix, tune::MonkeyDefaultConfig(setup), /*num_ops=*/1200, /*salt=*/2);
  EXPECT_GT(m.recovery_ns, 0.0);
  EXPECT_GT(m.ios_per_op, 0.0);

  // Off by default: no recovery pass, no timing.
  tune::SystemSetup plain = FileSetup(3000, 2);
  const tune::Evaluator plain_eval(plain);
  const tune::Measurement p = plain_eval.Measure(
      mix, tune::MonkeyDefaultConfig(plain), /*num_ops=*/1200, /*salt=*/2);
  EXPECT_EQ(p.recovery_ns, 0.0);
  // The durability knobs never change what is measured: deterministic
  // I/O counts match between durable and plain measurements.
  EXPECT_DOUBLE_EQ(m.ios_per_op, p.ios_per_op);
}

TEST(FileEngineTest, SimRecommendedTuningTransfersToFileBackend) {
  // The sim-vs-real smoke of the ROADMAP: the closed-form model's
  // recommended tuning — derived entirely on the simulated cost model —
  // must be no worse than the default (well-tuned RocksDB) configuration
  // when both serve the same stream on the *real* backend. Compared on
  // real I/O counts, which are deterministic (latency comparisons on CI
  // machines are not).
  tune::SystemSetup setup = FileSetup(6000, 1);
  const model::WorkloadSpec mix{0.2, 0.3, 0.2, 0.3};
  const tune::TunerOptions topts;
  const tune::ClassicTuner classic(setup, topts);
  const tune::TuningConfig recommended = classic.Recommend(mix);
  const tune::TuningConfig fallback = tune::MonkeyDefaultConfig(setup);

  const tune::Evaluator evaluator(setup);
  const tune::Measurement m_rec =
      evaluator.Measure(mix, recommended, /*num_ops=*/4000, /*salt=*/3);
  const tune::Measurement m_def =
      evaluator.Measure(mix, fallback, /*num_ops=*/4000, /*salt=*/3);

  // "No worse" with a 5% tolerance for discretization differences.
  EXPECT_LE(m_rec.ios_per_op, m_def.ios_per_op * 1.05)
      << "recommended " << recommended.ToString() << " vs default "
      << fallback.ToString();
}

}  // namespace
}  // namespace camal::engine
