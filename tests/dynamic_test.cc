#include <gtest/gtest.h>

#include "camal/classic_tuner.h"
#include "camal/dynamic_tuner.h"
#include "camal/extrapolation.h"
#include "camal/sample.h"
#include "engine/sharded_engine.h"
#include "lsm/lsm_tree.h"
#include "workload/tables.h"

namespace camal::tune {
namespace {

SystemSetup TinySetup() {
  SystemSetup setup;
  setup.num_entries = 6000;
  setup.total_memory_bits = 16 * 6000;
  setup.train_ops = 400;
  setup.eval_ops = 800;
  return setup;
}

// Recommender used by the tests: the closed-form classic tuner (cheap,
// deterministic, workload-sensitive).
RecommendFn ClassicRecommender(const SystemSetup& setup) {
  auto tuner = std::make_shared<ClassicTuner>(setup, TunerOptions{});
  return [tuner](const model::WorkloadSpec& w,
                 const model::SystemParams& target) {
    return tuner->RecommendFor(w, target);
  };
}

TEST(DynamicTunerTest, InitialWindowTriggersReconfiguration) {
  const SystemSetup setup = TinySetup();
  sim::Device device(setup.device);
  workload::KeySpace keys(setup.num_entries, setup.seed);
  lsm::LsmTree tree(MonkeyDefaultConfig(setup).ToOptions(setup), &device);
  workload::BulkLoad(&tree, keys);

  DynamicTuner::Params params;
  params.window_ops = 200;
  params.tau = 0.1;
  DynamicTuner dyn(ClassicRecommender(setup), setup, params);
  dyn.RunPhase(&tree, &keys, model::WorkloadSpec{0.25, 0.25, 0.25, 0.25},
               600, 1);
  EXPECT_GE(dyn.reconfigurations(), 1u);
}

TEST(DynamicTunerTest, ShiftTriggersRetune) {
  const SystemSetup setup = TinySetup();
  sim::Device device(setup.device);
  workload::KeySpace keys(setup.num_entries, setup.seed);
  lsm::LsmTree tree(MonkeyDefaultConfig(setup).ToOptions(setup), &device);
  workload::BulkLoad(&tree, keys);

  DynamicTuner::Params params;
  params.window_ops = 300;
  params.tau = 0.1;
  DynamicTuner dyn(ClassicRecommender(setup), setup, params);
  dyn.RunPhase(&tree, &keys, model::WorkloadSpec{0.05, 0.05, 0.0, 0.9}, 900,
               1);
  const size_t after_writes = dyn.reconfigurations();
  dyn.RunPhase(&tree, &keys, model::WorkloadSpec{0.05, 0.05, 0.9, 0.0}, 900,
               2);
  EXPECT_GT(dyn.reconfigurations(), after_writes);
  // The applied config should reflect the range-heavy estimate: large T.
  EXPECT_GT(dyn.last_applied().size_ratio, 8.0);
}

TEST(DynamicTunerTest, StableWorkloadReconfiguresOnce) {
  const SystemSetup setup = TinySetup();
  sim::Device device(setup.device);
  workload::KeySpace keys(setup.num_entries, setup.seed);
  lsm::LsmTree tree(MonkeyDefaultConfig(setup).ToOptions(setup), &device);
  workload::BulkLoad(&tree, keys);

  DynamicTuner::Params params;
  params.window_ops = 200;
  params.tau = 0.15;
  DynamicTuner dyn(ClassicRecommender(setup), setup, params);
  for (int phase = 0; phase < 3; ++phase) {
    dyn.RunPhase(&tree, &keys, model::WorkloadSpec{0.25, 0.25, 0.25, 0.25},
                 600, static_cast<uint64_t>(phase));
  }
  EXPECT_EQ(dyn.reconfigurations(), 1u);
}

TEST(DynamicTunerTest, DataGrowsDuringPhases) {
  const SystemSetup setup = TinySetup();
  sim::Device device(setup.device);
  workload::KeySpace keys(setup.num_entries, setup.seed);
  lsm::LsmTree tree(MonkeyDefaultConfig(setup).ToOptions(setup), &device);
  workload::BulkLoad(&tree, keys);
  const uint64_t before = tree.TotalEntries();

  DynamicTuner::Params params;
  DynamicTuner dyn(ClassicRecommender(setup), setup, params);
  dyn.RunPhase(&tree, &keys, model::WorkloadSpec{0.0, 0.0, 0.0, 1.0}, 2000,
               1);
  EXPECT_GT(tree.TotalEntries(), before + 1500);
  EXPECT_EQ(keys.num_keys(), setup.num_entries + 2000);
}

TEST(DynamicTunerTest, OneShardEngineBitIdenticalToDirectTree) {
  // The dynamic path through a 1-shard ShardedEngine must reproduce the
  // direct-tree run exactly: same detector firings, same simulated time.
  const SystemSetup setup = TinySetup();
  DynamicTuner::Params params;
  params.window_ops = 250;
  params.tau = 0.1;

  auto run = [&](engine::StorageEngine* eng, DynamicTuner* dyn) {
    workload::KeySpace keys(setup.num_entries, setup.seed);
    workload::BulkLoad(eng, keys);
    workload::ExecutionResult r1 = dyn->RunPhase(
        eng, &keys, model::WorkloadSpec{0.1, 0.1, 0.0, 0.8}, 700, 1);
    workload::ExecutionResult r2 = dyn->RunPhase(
        eng, &keys, model::WorkloadSpec{0.1, 0.1, 0.7, 0.1}, 700, 2);
    return std::make_pair(r1.total_ns + r2.total_ns,
                          r1.total_ios + r2.total_ios);
  };

  sim::Device device(setup.MakeDeviceConfig());
  lsm::LsmTree tree(MonkeyDefaultConfig(setup).ToOptions(setup), &device);
  DynamicTuner dyn_tree(ClassicRecommender(setup), setup, params);
  const auto direct = run(&tree, &dyn_tree);

  engine::ShardedEngine eng(1, MonkeyDefaultConfig(setup).ToOptions(setup),
                            setup.MakeDeviceConfig());
  DynamicTuner dyn_eng(ClassicRecommender(setup), setup, params);
  const auto sharded = run(&eng, &dyn_eng);

  EXPECT_EQ(direct.first, sharded.first);  // bit-exact simulated time
  EXPECT_EQ(direct.second, sharded.second);
  EXPECT_EQ(dyn_tree.reconfigurations(), dyn_eng.reconfigurations());
}

TEST(DynamicTunerTest, ShardedEngineRetunesShardsIndependently) {
  const SystemSetup setup = TinySetup();
  engine::ShardedEngine eng(2, MonkeyDefaultConfig(setup).ToOptions(setup),
                            setup.MakeDeviceConfig());
  workload::KeySpace keys(setup.num_entries, setup.seed);
  workload::BulkLoad(&eng, keys);
  const double t0_before = eng.shard(0)->options().size_ratio;
  const double t1_before = eng.shard(1)->options().size_ratio;

  DynamicTuner::Params params;
  params.window_ops = 200;  // per shard: each sees ~half the stream
  params.tau = 0.1;
  DynamicTuner dyn(ClassicRecommender(setup), setup, params);
  dyn.RunPhase(&eng, &keys, model::WorkloadSpec{0.05, 0.05, 0.0, 0.9}, 1200,
               1);

  // Both shards completed their initial windows and were retuned
  // independently (write-heavy mix: the classic tuner moves T down from
  // the Monkey default on both).
  EXPECT_GE(dyn.reconfigurations(), 2u);
  EXPECT_NE(eng.shard(0)->options().size_ratio, t0_before);
  EXPECT_NE(eng.shard(1)->options().size_ratio, t1_before);

  // Data stays correct across per-shard reconfigurations.
  uint64_t value = 0;
  EXPECT_TRUE(eng.Get(keys.KeyAt(0), &value));
  EXPECT_TRUE(eng.Get(keys.KeyAt(100), &value));
}

TEST(DynamicTunerTest, TreeStaysCorrectAcrossReconfigurations) {
  const SystemSetup setup = TinySetup();
  sim::Device device(setup.device);
  workload::KeySpace keys(setup.num_entries, setup.seed);
  lsm::LsmTree tree(MonkeyDefaultConfig(setup).ToOptions(setup), &device);
  workload::BulkLoad(&tree, keys);

  DynamicTuner::Params params;
  params.window_ops = 150;
  params.tau = 0.05;
  DynamicTuner dyn(ClassicRecommender(setup), setup, params);
  const auto shifting = workload::ShiftingWorkloads();
  for (size_t i = 0; i < 6; ++i) {
    const auto result = dyn.RunPhase(&tree, &keys, shifting[i * 4], 500, i);
    // Workloads with non-zero-result lookups must find keys; zero-result
    // lookups must miss (odd keys are never inserted).
    if (shifting[i * 4].r > 0.1) {
      EXPECT_GT(result.lookups_found, 0u);
    }
    if (shifting[i * 4].v > 0.1) {
      EXPECT_GT(result.lookups_missed, 0u);
    }
  }
  // Spot check a few original keys survived every transition.
  uint64_t value = 0;
  EXPECT_TRUE(tree.Get(keys.KeyAt(0), &value));
  EXPECT_TRUE(tree.Get(keys.KeyAt(100), &value));
}

}  // namespace
}  // namespace camal::tune
