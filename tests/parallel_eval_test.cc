// Determinism contract of the parallel evaluation engine: every batched
// entry point must produce bit-identical output at 1 thread and N threads.

#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "camal/bayes_tuner.h"
#include "camal/camal_tuner.h"
#include "camal/evaluator.h"
#include "camal/grid_tuner.h"
#include "camal/plain_al_tuner.h"
#include "lsm/lsm_tree.h"
#include "util/thread_pool.h"
#include "workload/executor.h"
#include "workload/generator.h"

namespace camal::tune {
namespace {

SystemSetup TinySetup() {
  SystemSetup setup;
  setup.num_entries = 6000;
  setup.total_memory_bits = 16 * 6000;
  setup.train_ops = 400;
  setup.eval_ops = 800;
  return setup;
}

std::vector<TuningConfig> SomeConfigs(const SystemSetup& setup) {
  std::vector<TuningConfig> configs;
  for (double t : {2.0, 4.0, 8.0, 12.0}) {
    for (double bpk : {5.0, 10.0}) {
      TuningConfig c;
      c.size_ratio = t;
      c.mf_bits = bpk * static_cast<double>(setup.num_entries);
      c.mb_bits = static_cast<double>(setup.total_memory_bits) - c.mf_bits;
      configs.push_back(c);
    }
  }
  return configs;
}

void ExpectSamplesIdentical(const std::vector<Sample>& a,
                            const std::vector<Sample>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].mean_latency_ns, b[i].mean_latency_ns) << "sample " << i;
    EXPECT_EQ(a[i].p90_latency_ns, b[i].p90_latency_ns) << "sample " << i;
    EXPECT_EQ(a[i].ios_per_op, b[i].ios_per_op) << "sample " << i;
    EXPECT_EQ(a[i].cost_ns, b[i].cost_ns) << "sample " << i;
    EXPECT_EQ(a[i].config.size_ratio, b[i].config.size_ratio) << "sample " << i;
    EXPECT_EQ(a[i].config.mf_bits, b[i].config.mf_bits) << "sample " << i;
  }
}

TEST(ParallelEvalTest, MakeSamplesIdenticalSerialVsParallel) {
  const SystemSetup setup = TinySetup();
  const Evaluator evaluator(setup);
  const model::WorkloadSpec w{0.25, 0.25, 0.25, 0.25};
  const std::vector<TuningConfig> configs = SomeConfigs(setup);

  const std::vector<Sample> serial = evaluator.MakeSamples(w, configs, 1);
  util::ThreadPool pool(4);
  const std::vector<Sample> parallel =
      evaluator.MakeSamples(w, configs, 1, &pool);
  ExpectSamplesIdentical(serial, parallel);
}

TEST(ParallelEvalTest, MakeSamplesMatchesSerialMakeSampleLoop) {
  const SystemSetup setup = TinySetup();
  const Evaluator evaluator(setup);
  const model::WorkloadSpec w{0.1, 0.3, 0.2, 0.4};
  const std::vector<TuningConfig> configs = SomeConfigs(setup);

  std::vector<Sample> loop;
  uint64_t salt = 41;
  for (const TuningConfig& c : configs) {
    loop.push_back(evaluator.MakeSample(w, c, ++salt));
  }
  util::ThreadPool pool(3);
  ExpectSamplesIdentical(loop, evaluator.MakeSamples(w, configs, 42, &pool));
}

TEST(ParallelEvalTest, EvaluateBatchIdenticalSerialVsParallel) {
  const SystemSetup setup = TinySetup();
  const Evaluator evaluator(setup);
  std::vector<EvalJob> jobs;
  uint64_t salt = 0;
  for (const TuningConfig& c : SomeConfigs(setup)) {
    jobs.push_back(EvalJob{model::WorkloadSpec{0.25, 0.25, 0.25, 0.25}, c,
                           ++salt});
  }
  const std::vector<Measurement> serial = evaluator.EvaluateBatch(jobs);
  util::ThreadPool pool(4);
  const std::vector<Measurement> parallel = evaluator.EvaluateBatch(jobs, &pool);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].mean_latency_ns, parallel[i].mean_latency_ns);
    EXPECT_EQ(serial[i].p90_latency_ns, parallel[i].p90_latency_ns);
    EXPECT_EQ(serial[i].ios_per_op, parallel[i].ios_per_op);
    EXPECT_EQ(serial[i].total_cost_ns, parallel[i].total_cost_ns);
  }
}

template <typename Tuner>
void ExpectTrainingIdenticalAcrossThreadCounts() {
  const SystemSetup setup = TinySetup();
  const std::vector<model::WorkloadSpec> workloads = {
      model::WorkloadSpec{0.25, 0.25, 0.25, 0.25},
      model::WorkloadSpec{0.1, 0.4, 0.1, 0.4},
  };

  auto train = [&](int threads) {
    TunerOptions options;
    options.threads = threads;
    options.refine_rounds = 1;
    options.budget_per_workload = 6;
    Tuner tuner(setup, options);
    tuner.Train(workloads);
    return tuner;
  };
  const Tuner serial = train(1);
  const Tuner parallel = train(4);

  ExpectSamplesIdentical(serial.samples(), parallel.samples());
  EXPECT_EQ(serial.sampling_cost_ns(), parallel.sampling_cost_ns());
  for (const model::WorkloadSpec& w : workloads) {
    const TuningConfig a = serial.Recommend(w);
    const TuningConfig b = parallel.Recommend(w);
    EXPECT_EQ(a.policy, b.policy);
    EXPECT_EQ(a.size_ratio, b.size_ratio);
    EXPECT_EQ(a.mf_bits, b.mf_bits);
    EXPECT_EQ(a.mb_bits, b.mb_bits);
    EXPECT_EQ(a.mc_bits, b.mc_bits);
    EXPECT_EQ(a.runs_per_level, b.runs_per_level);
  }
}

TEST(ParallelEvalTest, CamalTunerTrainIdenticalAt1And4Threads) {
  ExpectTrainingIdenticalAcrossThreadCounts<CamalTuner>();
}

TEST(ParallelEvalTest, GridTunerTrainIdenticalAt1And4Threads) {
  ExpectTrainingIdenticalAcrossThreadCounts<GridTuner>();
}

TEST(ParallelEvalTest, PlainAlTunerTrainIdenticalAt1And4Threads) {
  ExpectTrainingIdenticalAcrossThreadCounts<PlainAlTuner>();
}

TEST(ParallelEvalTest, BayesTunerTrainIdenticalAt1And4Threads) {
  ExpectTrainingIdenticalAcrossThreadCounts<BayesOptTuner>();
}

TEST(ParallelEvalTest, ExecuteBatchIdenticalSerialVsParallel) {
  const SystemSetup setup = TinySetup();
  workload::KeySpace keys(setup.num_entries, setup.seed);
  TuningConfig config;
  config.mf_bits = 10.0 * static_cast<double>(setup.num_entries);
  config.mb_bits = static_cast<double>(setup.total_memory_bits) - config.mf_bits;

  auto run = [&](util::ThreadPool* pool) {
    // Each job needs its own tree/device; trees are rebuilt per run so the
    // serial and parallel batches start from identical states.
    std::vector<std::unique_ptr<sim::Device>> devices;
    std::vector<std::unique_ptr<lsm::LsmTree>> trees;
    std::vector<workload::ExecuteJob> jobs;
    for (int j = 0; j < 4; ++j) {
      devices.push_back(std::make_unique<sim::Device>(setup.device));
      trees.push_back(std::make_unique<lsm::LsmTree>(config.ToOptions(setup),
                                                     devices.back().get()));
      workload::BulkLoad(trees.back().get(), keys);
      workload::ExecuteJob job;
      job.engine = trees.back().get();
      job.spec = model::WorkloadSpec{0.25, 0.25, 0.25, 0.25};
      job.config.num_ops = 500;
      job.config.seed = 100 + static_cast<uint64_t>(j);
      job.keys = &keys;
      jobs.push_back(job);
    }
    return workload::ExecuteBatch(jobs, pool);
  };

  const std::vector<workload::ExecutionResult> serial = run(nullptr);
  util::ThreadPool pool(4);
  const std::vector<workload::ExecutionResult> parallel = run(&pool);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].total_ns, parallel[i].total_ns) << "job " << i;
    EXPECT_EQ(serial[i].total_ios, parallel[i].total_ios) << "job " << i;
    EXPECT_EQ(serial[i].lookups_found, parallel[i].lookups_found) << "job " << i;
    EXPECT_EQ(serial[i].lookups_missed, parallel[i].lookups_missed)
        << "job " << i;
  }
}

}  // namespace
}  // namespace camal::tune
