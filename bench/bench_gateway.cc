// Open-loop gateway overload bench: requests arrive on a virtual-time
// clock (Poisson or bursty), pass per-tenant admission at serve::Gateway,
// and are coalesced into ExecuteOps batches. The sweep crosses arrival
// pattern x offered load x admission policy and reports end-to-end tail
// latency (queueing + service) and the shed rate.
//
// Expected shape: below saturation (load < 1) the two policies agree —
// queues stay shallow, nothing is shed. Under bursty overload (load > 1)
// the admission-off rows collapse (p99 grows with the backlog, toward the
// makespan) while admission-on rows shed a nonzero fraction and keep p99
// bounded near depth x service — the overload-policy tradeoff the serve
// layer exists to make explicit.
//
// The offered load is calibrated per backend: a closed-loop run over an
// identically built engine measures the mean per-op service time, and
// load L sets the mean inter-arrival gap to service/L.
//
// Flags:
//   --tenants=N    per-tenant queues, mapped 1:1 onto engine shards
//                  (default 4)
//   --ops=N        requests per cell (default 20000)
//   --entries=N    initially loaded entries (default 8000)
//   --pattern=P    poisson | bursty | both (default both)
//   --admission=A  on | off | both (default both)
//   --depth=N      per-tenant queue depth bound (default 64)
//   --rate=F       per-tenant token-bucket rate limit, ops/sim-second
//                  (default 0: off)
//   --burst=N      token-bucket burst capacity (default 32)
//   --skew=F       Zipf tenant-traffic hotness (default 0: uniform)
//   --backend=B    sim | file | both (default sim)
//   --workdir=P    base directory for file-backend run files
//   --json PATH    also write the sweep as a JSON artifact
//   --quick        tiny scale for CI smoke

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "engine/file_engine.h"
#include "engine/sharded_engine.h"
#include "serve/gateway.h"
#include "util/random.h"
#include "workload/executor.h"
#include "workload/generator.h"

namespace camal::bench {
namespace {

struct GatewayBenchConfig {
  size_t tenants = 4;
  size_t num_ops = 20000;
  uint64_t entries = 8000;
  bool run_poisson = true;
  bool run_bursty = true;
  bool run_admission_on = true;
  bool run_admission_off = true;
  size_t queue_depth = 64;
  double rate_limit = 0.0;
  size_t rate_burst = 32;
  double skew = 0.0;
  bool run_sim = true;
  bool run_file = false;
  std::string workdir;  // file backend; empty = system temp dir
};

struct GatewayRow {
  const char* backend = "sim";
  const char* pattern = "poisson";
  bool admission = true;
  double load = 0.0;
  uint64_t submitted = 0;
  double shed_frac = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double p999_us = 0.0;
  double queue_p99_us = 0.0;
  double service_mean_us = 0.0;
  uint64_t max_depth = 0;
  uint64_t batches = 0;
  double wall_ms = 0.0;
};

tune::SystemSetup MakeSetup(const GatewayBenchConfig& cfg) {
  tune::SystemSetup setup;
  setup.num_entries = cfg.entries;
  setup.total_memory_bits = 16 * cfg.entries;
  setup.num_shards = cfg.tenants;
  tune::ValidateOrDie(setup);
  return setup;
}

std::unique_ptr<engine::StorageEngine> BuildEngine(
    const GatewayBenchConfig& cfg, const tune::SystemSetup& setup,
    const workload::KeySpace& keys, bool file_backend) {
  const tune::TuningConfig config = tune::MonkeyDefaultConfig(setup);
  std::unique_ptr<engine::StorageEngine> eng;
  if (file_backend) {
    engine::FileEngineConfig fcfg;
    if (!cfg.workdir.empty()) {
      fcfg.workdir = cfg.workdir + "/gw_" +
                     std::to_string(engine::FileEngine::NextUniqueId());
    }
    eng = std::make_unique<engine::FileEngine>(
        cfg.tenants, config.ToOptions(setup), fcfg);
  } else {
    eng = std::make_unique<engine::ShardedEngine>(
        cfg.tenants, config.ToOptions(setup), setup.MakeDeviceConfig());
  }
  workload::BulkLoad(eng.get(), keys);
  return eng;
}

/// Mean per-op service time (engine-attributed) of the cell's mix on an
/// identically built engine, via a closed-loop run — the unit offered
/// load is expressed in.
double CalibrateServiceNs(const GatewayBenchConfig& cfg,
                          const tune::SystemSetup& setup,
                          const workload::KeySpace& keys,
                          const model::WorkloadSpec& mix, bool file_backend) {
  auto eng = BuildEngine(cfg, setup, keys, file_backend);
  workload::ExecutorConfig exec;
  exec.num_ops = std::max<size_t>(2000, cfg.num_ops / 4);
  exec.generator.scan_len = setup.scan_len;
  exec.generator.shard_skew = cfg.skew;
  exec.generator.num_shards = cfg.tenants;
  exec.seed = setup.seed + 77;
  // Steady-state updates only: the shared KeySpace stays immutable.
  const workload::ExecutionResult r = workload::Execute(
      eng.get(), mix, exec, const_cast<workload::KeySpace*>(&keys));
  return std::max(1.0, r.MeanLatencyNs());
}

GatewayRow RunCell(const GatewayBenchConfig& cfg, bool bursty, double load,
                   bool admission, bool file_backend, double service_ns) {
  const tune::SystemSetup setup = MakeSetup(cfg);
  workload::KeySpace keys(setup.num_entries, setup.seed);
  auto eng = BuildEngine(cfg, setup, keys, file_backend);

  serve::GatewayConfig gcfg;
  gcfg.num_tenants = cfg.tenants;
  gcfg.max_queue_depth = cfg.queue_depth;
  gcfg.admission_control = admission;
  gcfg.rate_limit_ops_per_sec = cfg.rate_limit;
  gcfg.rate_limit_burst = cfg.rate_burst;
  serve::Gateway gateway(eng.get(), gcfg);

  // The same generated stream regardless of arrival pattern; tenant skew
  // rides the generator's per-shard traffic bias.
  const model::WorkloadSpec mix{0.2, 0.3, 0.2, 0.3};
  workload::GeneratorConfig gen_cfg;
  gen_cfg.scan_len = setup.scan_len;
  gen_cfg.shard_skew = cfg.skew;
  gen_cfg.num_shards = cfg.tenants;
  workload::OperationGenerator gen(mix, &keys, gen_cfg, setup.seed + 1);
  util::Random arrivals(setup.seed + 2);

  // Mean inter-arrival gap for offered load L: service/L. Bursty traffic
  // preserves the mean — groups of kBurstOps arrive at gap/4 spacing,
  // then the stream idles the rest of the group's budget.
  const double gap_ns = service_ns / load;
  constexpr size_t kBurstOps = 64;

  const auto start = std::chrono::steady_clock::now();
  double clock_ns = 0.0;
  for (size_t i = 0; i < cfg.num_ops; ++i) {
    if (bursty) {
      clock_ns += gap_ns / 4.0;
      if ((i + 1) % kBurstOps == 0) {
        clock_ns += gap_ns * 0.75 * static_cast<double>(kBurstOps);
      }
    } else {
      clock_ns += -gap_ns * std::log(1.0 - arrivals.NextDouble());
    }
    const workload::Operation op = gen.Next();
    const engine::Op engine_op = workload::ToEngineOp(op);
    gateway.Submit(
        static_cast<uint32_t>(eng->ShardIndex(engine_op.key)), engine_op,
        static_cast<uint64_t>(clock_ns));
  }
  gateway.Flush();
  const auto stop = std::chrono::steady_clock::now();

  const serve::GatewayStats stats = gateway.StatsSnapshot();
  GatewayRow row;
  row.backend = file_backend ? "file" : "sim";
  row.pattern = bursty ? "bursty" : "poisson";
  row.admission = admission;
  row.load = load;
  row.submitted = stats.submitted;
  row.shed_frac = stats.ShedFraction();
  row.p50_us = stats.total_latency_ns.Quantile(0.5) / 1e3;
  row.p99_us = stats.total_latency_ns.Quantile(0.99) / 1e3;
  row.p999_us = stats.total_latency_ns.Quantile(0.999) / 1e3;
  row.queue_p99_us = stats.queue_latency_ns.Quantile(0.99) / 1e3;
  row.service_mean_us = stats.service_latency_ns.Mean() / 1e3;
  row.max_depth = stats.max_queue_depth;
  row.batches = stats.batches;
  row.wall_ms =
      std::chrono::duration<double, std::milli>(stop - start).count();
  return row;
}

void WriteJson(const std::string& path, const GatewayBenchConfig& cfg,
               const std::vector<GatewayRow>& rows) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "[bench] cannot open %s for writing\n",
                 path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"gateway\",\n");
  std::fprintf(f, "  \"tenants\": %zu,\n  \"ops\": %zu,\n", cfg.tenants,
               cfg.num_ops);
  std::fprintf(f, "  \"queue_depth\": %zu,\n  \"skew\": %.3f,\n",
               cfg.queue_depth, cfg.skew);
  std::fprintf(f, "  \"rows\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const GatewayRow& r = rows[i];
    std::fprintf(f,
                 "    {\"backend\": \"%s\", \"pattern\": \"%s\", "
                 "\"admission\": %s, \"load\": %.2f, "
                 "\"submitted\": %llu, \"shed_frac\": %.4f, "
                 "\"p50_us\": %.3f, \"p99_us\": %.3f, \"p999_us\": %.3f, "
                 "\"queue_p99_us\": %.3f, \"service_mean_us\": %.3f, "
                 "\"max_depth\": %llu, \"batches\": %llu, "
                 "\"wall_ms\": %.3f}%s\n",
                 r.backend, r.pattern, r.admission ? "true" : "false",
                 r.load, static_cast<unsigned long long>(r.submitted),
                 r.shed_frac, r.p50_us, r.p99_us, r.p999_us, r.queue_p99_us,
                 r.service_mean_us,
                 static_cast<unsigned long long>(r.max_depth),
                 static_cast<unsigned long long>(r.batches), r.wall_ms,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("[bench] wrote %s\n", path.c_str());
}

void Run(const GatewayBenchConfig& cfg, const std::string& json_path) {
  std::printf("Gateway overload sweep: %zu requests across %zu tenants "
              "(engine shards), depth bound %zu, skew %.2f\n"
              "latency = queueing + service (end to end); load is offered "
              "arrival rate / calibrated service rate\n\n",
              cfg.num_ops, cfg.tenants, cfg.queue_depth, cfg.skew);
  std::printf("%5s %8s %5s %5s %7s %9s %9s %9s %9s %7s %8s\n", "back",
              "pattern", "adm", "load", "shed", "p50 us", "p99 us",
              "p999 us", "q p99", "depth", "wall ms");
  PrintRule(94);

  const std::vector<double> loads = {0.7, 1.0, 1.5};
  const model::WorkloadSpec mix{0.2, 0.3, 0.2, 0.3};
  std::vector<GatewayRow> rows;
  for (int file = 0; file <= 1; ++file) {
    if (file == 0 && !cfg.run_sim) continue;
    if (file == 1 && !cfg.run_file) continue;
    const tune::SystemSetup setup = MakeSetup(cfg);
    const workload::KeySpace keys(setup.num_entries, setup.seed);
    const double service_ns =
        CalibrateServiceNs(cfg, setup, keys, mix, file == 1);
    std::printf("[bench] %s backend: calibrated mean service %.2f us/op\n",
                file == 1 ? "file" : "sim", service_ns / 1e3);
    for (int bursty = 0; bursty <= 1; ++bursty) {
      if (bursty == 0 && !cfg.run_poisson) continue;
      if (bursty == 1 && !cfg.run_bursty) continue;
      for (double load : loads) {
        for (int adm = 1; adm >= 0; --adm) {
          if (adm == 1 && !cfg.run_admission_on) continue;
          if (adm == 0 && !cfg.run_admission_off) continue;
          const GatewayRow row = RunCell(cfg, bursty == 1, load, adm == 1,
                                         file == 1, service_ns);
          std::printf(
              "%5s %8s %5s %5.2f %6.2f%% %9.1f %9.1f %9.1f %9.1f %7llu "
              "%8.1f\n",
              row.backend, row.pattern, row.admission ? "on" : "off",
              row.load, 100.0 * row.shed_frac, row.p50_us, row.p99_us,
              row.p999_us, row.queue_p99_us,
              static_cast<unsigned long long>(row.max_depth), row.wall_ms);
          rows.push_back(row);
        }
      }
    }
  }
  if (!json_path.empty()) WriteJson(json_path, cfg, rows);
}

}  // namespace
}  // namespace camal::bench

int main(int argc, char** argv) {
  camal::bench::InitBenchThreads(&argc, argv);
  const std::string json_path = camal::bench::TakeJsonFlag(&argc, argv);

  camal::bench::GatewayBenchConfig cfg;
  const auto parse_count = [](const char* flag, const char* s,
                              uint64_t* out) {
    char* end = nullptr;
    errno = 0;
    const long long v = std::strtoll(s, &end, 10);
    if (end == s || *end != '\0' || v <= 0 || errno == ERANGE) {
      std::fprintf(stderr, "invalid %s value '%s'\n", flag, s);
      return false;
    }
    *out = static_cast<uint64_t>(v);
    return true;
  };
  const auto parse_frac = [](const char* flag, const char* s, double* out) {
    char* end = nullptr;
    errno = 0;
    const double v = std::strtod(s, &end);
    if (end == s || *end != '\0' || v < 0.0 || errno == ERANGE) {
      std::fprintf(stderr, "invalid %s value '%s'\n", flag, s);
      return false;
    }
    *out = v;
    return true;
  };
  for (int i = 1; i < argc; ++i) {
    uint64_t value = 0;
    if (std::strcmp(argv[i], "--quick") == 0) {
      cfg.num_ops = 6000;
      cfg.entries = 4000;
    } else if (std::strncmp(argv[i], "--tenants=", 10) == 0) {
      if (!parse_count("--tenants", argv[i] + 10, &value)) return 1;
      cfg.tenants = static_cast<size_t>(value);
    } else if (std::strncmp(argv[i], "--ops=", 6) == 0) {
      if (!parse_count("--ops", argv[i] + 6, &value)) return 1;
      cfg.num_ops = static_cast<size_t>(value);
    } else if (std::strncmp(argv[i], "--entries=", 10) == 0) {
      if (!parse_count("--entries", argv[i] + 10, &value)) return 1;
      cfg.entries = value;
    } else if (std::strncmp(argv[i], "--depth=", 8) == 0) {
      if (!parse_count("--depth", argv[i] + 8, &value)) return 1;
      cfg.queue_depth = static_cast<size_t>(value);
    } else if (std::strncmp(argv[i], "--burst=", 8) == 0) {
      if (!parse_count("--burst", argv[i] + 8, &value)) return 1;
      cfg.rate_burst = static_cast<size_t>(value);
    } else if (std::strncmp(argv[i], "--rate=", 7) == 0) {
      if (!parse_frac("--rate", argv[i] + 7, &cfg.rate_limit)) return 1;
    } else if (std::strncmp(argv[i], "--skew=", 7) == 0) {
      if (!parse_frac("--skew", argv[i] + 7, &cfg.skew)) return 1;
    } else if (std::strncmp(argv[i], "--pattern=", 10) == 0) {
      const char* p = argv[i] + 10;
      if (std::strcmp(p, "poisson") == 0) {
        cfg.run_bursty = false;
      } else if (std::strcmp(p, "bursty") == 0) {
        cfg.run_poisson = false;
      } else if (std::strcmp(p, "both") != 0) {
        std::fprintf(stderr,
                     "invalid --pattern value '%s' (poisson|bursty|both)\n",
                     p);
        return 1;
      }
    } else if (std::strncmp(argv[i], "--admission=", 12) == 0) {
      const char* a = argv[i] + 12;
      if (std::strcmp(a, "on") == 0) {
        cfg.run_admission_off = false;
      } else if (std::strcmp(a, "off") == 0) {
        cfg.run_admission_on = false;
      } else if (std::strcmp(a, "both") != 0) {
        std::fprintf(stderr,
                     "invalid --admission value '%s' (on|off|both)\n", a);
        return 1;
      }
    } else if (std::strncmp(argv[i], "--backend=", 10) == 0) {
      const char* backend = argv[i] + 10;
      if (std::strcmp(backend, "sim") == 0) {
        cfg.run_file = false;
      } else if (std::strcmp(backend, "file") == 0) {
        cfg.run_sim = false;
        cfg.run_file = true;
      } else if (std::strcmp(backend, "both") == 0) {
        cfg.run_file = true;
      } else {
        std::fprintf(stderr, "invalid --backend value '%s' (sim|file|both)\n",
                     backend);
        return 1;
      }
    } else if (std::strncmp(argv[i], "--workdir=", 10) == 0) {
      cfg.workdir = argv[i] + 10;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 1;
    }
  }
  camal::bench::Run(cfg, json_path);
  return 0;
}
