// Figure 5c: mean I/Os per operation for every method. CAMAL does not
// optimize I/O directly, yet low latency implies low I/O (the converse
// does not hold — Classic minimizes modeled I/O and still loses).
//
// Expected shape (paper): CAMAL(Trees) lowest (4.5 vs Classic 16.2 there,
// a ~70% reduction); Monkey highest; NN variants high within each family.

#include "bench_common.h"

namespace camal::bench {
namespace {

void Run() {
  tune::SystemSetup setup = BenchSetup();
  tune::Evaluator evaluator(setup);
  const auto workloads = workload::TrainingWorkloads();

  std::printf("Figure 5c: I/Os per operation across the 15 Table-1 "
              "workloads\n");
  std::printf("%-22s %10s\n", "method", "mean I/O");
  PrintRule(34);

  auto report = [&](const std::string& name,
                    const RecommendForWorkload& recommend) {
    const SuiteStats stats = EvaluateSuite(evaluator, recommend, workloads);
    std::printf("%-22s %10.2f\n", name.c_str(), stats.mean_ios);
  };

  for (tune::ModelKind model : {tune::ModelKind::kPoly,
                                tune::ModelKind::kTrees,
                                tune::ModelKind::kNn}) {
    for (Strategy strategy : {Strategy::kCamal, Strategy::kPlainAl,
                              Strategy::kBayes, Strategy::kPlainMl}) {
      tune::TunerOptions options;
      options.model_kind = model;
      options.extrapolation_factor = 10.0;
      options.budget_per_workload = 12;
      auto tuner = MakeStrategy(strategy, setup, options);
      tuner->Train(workloads);
      report(std::string(StrategyName(strategy)) + " (" +
                 tune::ModelKindName(model) + ")",
             [&](const auto& w) { return tuner->Recommend(w); });
    }
  }

  tune::ClassicTuner classic(setup, tune::TunerOptions{});
  report("Classic", [&](const auto& w) { return classic.Recommend(w); });
  report("Classic (Cache)", [&](const auto& w) {
    tune::TuningConfig c = classic.Recommend(w);
    const double mc = 0.2 * static_cast<double>(setup.total_memory_bits);
    const double shrink = std::min(c.mb_bits - 1024.0, mc);
    c.mc_bits = shrink;
    c.mb_bits -= shrink;
    return c;
  });
  tune::MonkeyTuner monkey(setup);
  report("Monkey", [&](const auto& w) { return monkey.Recommend(w); });
}

}  // namespace
}  // namespace camal::bench

int main(int argc, char** argv) {
  camal::bench::InitBenchThreads(&argc, argv);
  camal::bench::Run();
  return 0;
}
