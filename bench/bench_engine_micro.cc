// Engine micro-benchmarks (google-benchmark): wall-clock cost of the core
// LSM operations and ML primitives. These measure the *reproduction's own*
// implementation speed (not the simulated latency the figures report).

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "camal/evaluator.h"
#include "engine/sharded_engine.h"
#include "lsm/bloom.h"
#include "lsm/lsm_tree.h"
#include "lsm/monkey.h"
#include "ml/gbdt.h"
#include "ml/poly.h"
#include "model/optimum.h"
#include "util/random.h"
#include "util/thread_pool.h"
#include "workload/generator.h"

namespace {

camal::sim::DeviceConfig QuietDevice() {
  camal::sim::DeviceConfig cfg;
  cfg.io_jitter_frac = 0.0;
  return cfg;
}

camal::lsm::Options DefaultOptions() {
  camal::lsm::Options opts;
  opts.entry_bytes = 128;
  opts.buffer_bytes = 128 * 256;
  opts.bloom_bits = 10 * 40000;
  return opts;
}

void BM_LsmPut(benchmark::State& state) {
  camal::sim::Device device(QuietDevice());
  camal::lsm::LsmTree tree(DefaultOptions(), &device);
  camal::util::Random rng(1);
  uint64_t key = 0;
  for (auto _ : state) {
    tree.Put(rng.Next() % (1 << 22), ++key);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LsmPut);

void BM_LsmGetHit(benchmark::State& state) {
  camal::sim::Device device(QuietDevice());
  camal::lsm::LsmTree tree(DefaultOptions(), &device);
  for (uint64_t k = 1; k <= 40000; ++k) tree.Put(2 * k, k);
  camal::util::Random rng(2);
  uint64_t value = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Get(2 * (1 + rng.Uniform(40000)), &value));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LsmGetHit);

void BM_LsmGetMiss(benchmark::State& state) {
  camal::sim::Device device(QuietDevice());
  camal::lsm::LsmTree tree(DefaultOptions(), &device);
  for (uint64_t k = 1; k <= 40000; ++k) tree.Put(2 * k, k);
  camal::util::Random rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Get(2 * rng.Uniform(40000) + 1, nullptr));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LsmGetMiss);

void BM_LsmScan(benchmark::State& state) {
  camal::sim::Device device(QuietDevice());
  camal::lsm::LsmTree tree(DefaultOptions(), &device);
  for (uint64_t k = 1; k <= 40000; ++k) tree.Put(2 * k, k);
  camal::util::Random rng(4);
  std::vector<camal::lsm::Entry> out;
  for (auto _ : state) {
    out.clear();
    tree.Scan(2 * rng.Uniform(40000), 16, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LsmScan);

// ------------------------------------------------------------------------
// Sharded serving engine: the same core operations through
// engine::ShardedEngine at varying shard counts (Arg = shards). Overhead
// vs the BM_Lsm* direct-tree numbers is the partition + scatter-gather
// cost.

void BM_ShardedPut(benchmark::State& state) {
  const auto shards = static_cast<size_t>(state.range(0));
  camal::engine::ShardedEngine eng(shards, DefaultOptions(), QuietDevice());
  camal::util::Random rng(1);
  uint64_t key = 0;
  for (auto _ : state) {
    eng.Put(rng.Next() % (1 << 22), ++key);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["shards"] = static_cast<double>(shards);
}
BENCHMARK(BM_ShardedPut)->Arg(1)->Arg(4)->Arg(16);

void BM_ShardedGetHit(benchmark::State& state) {
  const auto shards = static_cast<size_t>(state.range(0));
  camal::engine::ShardedEngine eng(shards, DefaultOptions(), QuietDevice());
  for (uint64_t k = 1; k <= 40000; ++k) eng.Put(2 * k, k);
  camal::util::Random rng(2);
  uint64_t value = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(eng.Get(2 * (1 + rng.Uniform(40000)), &value));
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["shards"] = static_cast<double>(shards);
}
BENCHMARK(BM_ShardedGetHit)->Arg(1)->Arg(4)->Arg(16);

void BM_ShardedScan(benchmark::State& state) {
  const auto shards = static_cast<size_t>(state.range(0));
  camal::engine::ShardedEngine eng(shards, DefaultOptions(), QuietDevice());
  for (uint64_t k = 1; k <= 40000; ++k) eng.Put(2 * k, k);
  camal::util::Random rng(4);
  std::vector<camal::lsm::Entry> out;
  for (auto _ : state) {
    out.clear();
    eng.Scan(2 * rng.Uniform(40000), 16, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["shards"] = static_cast<double>(shards);
}
BENCHMARK(BM_ShardedScan)->Arg(1)->Arg(4)->Arg(16);

void BM_BloomProbe(benchmark::State& state) {
  camal::lsm::BloomFilter filter(40000, 10.0);
  for (uint64_t k = 0; k < 40000; ++k) filter.Add(2 * k);
  camal::util::Random rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter.MayContain(rng.Next()));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BloomProbe);

void BM_MonkeyAllocate(benchmark::State& state) {
  const std::vector<uint64_t> levels = {300, 2700, 24300, 218700};
  for (auto _ : state) {
    benchmark::DoNotOptimize(camal::lsm::MonkeyAllocate(10.0 * 246000, levels));
  }
}
BENCHMARK(BM_MonkeyAllocate);

void BM_TheoreticalOptimum(benchmark::State& state) {
  camal::model::SystemParams params;
  camal::model::CostModel cm(params);
  camal::model::WorkloadSpec w{0.25, 0.25, 0.25, 0.25};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        camal::model::MinimizeCost(w, cm, camal::lsm::CompactionPolicy::kLeveling));
  }
}
BENCHMARK(BM_TheoreticalOptimum);

void BM_GbdtFitPredict(benchmark::State& state) {
  camal::util::Random rng(6);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 90; ++i) {
    x.push_back({rng.NextDouble(), rng.NextDouble(), rng.NextDouble()});
    y.push_back(x.back()[0] * 3 + x.back()[1]);
  }
  for (auto _ : state) {
    camal::ml::Gbdt gbdt;
    gbdt.Fit(x, y);
    benchmark::DoNotOptimize(gbdt.Predict(x[0]));
  }
}
BENCHMARK(BM_GbdtFitPredict);

// ------------------------------------------------------------------------
// Parallel evaluation engine: one CAMAL-style sampling batch (8 candidate
// configurations on a small setup) through Evaluator::MakeSamples, fanned
// across the pool configured by --threads. Items/sec at --threads=N vs
// --threads=1 is the engine's speedup; the results themselves are
// bit-identical either way.

camal::tune::SystemSetup BatchSetup() {
  camal::tune::SystemSetup setup = camal::bench::BenchSetup();
  setup.num_entries = 4000;
  setup.total_memory_bits = 16 * 4000;
  setup.train_ops = 300;
  setup.eval_ops = 600;
  return setup;
}

void BM_EvaluatorSampleBatch(benchmark::State& state) {
  const camal::tune::SystemSetup setup = BatchSetup();
  const camal::tune::Evaluator evaluator(setup);
  const camal::model::WorkloadSpec w{0.25, 0.25, 0.25, 0.25};
  std::vector<camal::tune::TuningConfig> configs;
  for (double t : {2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 14.0, 16.0}) {
    camal::tune::TuningConfig c;
    c.size_ratio = t;
    c.mf_bits = 10.0 * static_cast<double>(setup.num_entries);
    c.mb_bits = static_cast<double>(setup.total_memory_bits) - c.mf_bits;
    configs.push_back(c);
  }
  camal::util::ThreadPool* pool = camal::util::GlobalPool();
  uint64_t salt = 1;
  for (auto _ : state) {
    const auto samples = evaluator.MakeSamples(w, configs, salt, pool);
    benchmark::DoNotOptimize(samples.data());
    salt += configs.size();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(configs.size()));
  state.counters["threads"] =
      static_cast<double>(camal::util::GlobalThreads());
}
BENCHMARK(BM_EvaluatorSampleBatch)->Unit(benchmark::kMillisecond);

void BM_ParallelForOverhead(benchmark::State& state) {
  camal::util::ThreadPool* pool = camal::util::GlobalPool();
  std::vector<double> out(64);
  for (auto _ : state) {
    camal::util::ParallelFor(pool, 0, out.size(), [&](size_t i) {
      double acc = 0.0;
      for (int k = 0; k < 2000; ++k) {
        acc += static_cast<double>((i + 1) * (k + 1) % 97);
      }
      out[i] = acc;
    });
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(out.size()));
}
BENCHMARK(BM_ParallelForOverhead);

}  // namespace

// Custom main: strip --threads=N (0 = all cores) and --json PATH before
// google-benchmark sees the unknown flags, then size the global pool.
// --json PATH is sugar for --benchmark_out=PATH --benchmark_out_format=json
// — machine-readable output (op throughput, per-benchmark latency, the
// threads/shards counters) for the perf-trajectory artifact.
int main(int argc, char** argv) {
  camal::bench::InitBenchThreads(&argc, argv);
  const std::string json_path = camal::bench::TakeJsonFlag(&argc, argv);

  std::vector<std::string> arg_storage(argv, argv + argc);
  if (!json_path.empty()) {
    arg_storage.insert(arg_storage.begin() + 1,
                       "--benchmark_out_format=json");
    arg_storage.insert(arg_storage.begin() + 1,
                       "--benchmark_out=" + json_path);
  }
  std::vector<char*> args;
  args.reserve(arg_storage.size() + 1);
  for (std::string& s : arg_storage) args.push_back(s.data());
  args.push_back(nullptr);
  int bench_argc = static_cast<int>(arg_storage.size());

  benchmark::Initialize(&bench_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!json_path.empty()) {
    std::printf("[bench] wrote %s\n", json_path.c_str());
  }
  return 0;
}
