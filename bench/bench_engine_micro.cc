// Engine micro-benchmarks (google-benchmark): wall-clock cost of the core
// LSM operations and ML primitives. These measure the *reproduction's own*
// implementation speed (not the simulated latency the figures report).

#include <benchmark/benchmark.h>

#include "lsm/bloom.h"
#include "lsm/lsm_tree.h"
#include "lsm/monkey.h"
#include "ml/gbdt.h"
#include "ml/poly.h"
#include "model/optimum.h"
#include "util/random.h"
#include "workload/generator.h"

namespace {

camal::sim::DeviceConfig QuietDevice() {
  camal::sim::DeviceConfig cfg;
  cfg.io_jitter_frac = 0.0;
  return cfg;
}

camal::lsm::Options DefaultOptions() {
  camal::lsm::Options opts;
  opts.entry_bytes = 128;
  opts.buffer_bytes = 128 * 256;
  opts.bloom_bits = 10 * 40000;
  return opts;
}

void BM_LsmPut(benchmark::State& state) {
  camal::sim::Device device(QuietDevice());
  camal::lsm::LsmTree tree(DefaultOptions(), &device);
  camal::util::Random rng(1);
  uint64_t key = 0;
  for (auto _ : state) {
    tree.Put(rng.Next() % (1 << 22), ++key);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LsmPut);

void BM_LsmGetHit(benchmark::State& state) {
  camal::sim::Device device(QuietDevice());
  camal::lsm::LsmTree tree(DefaultOptions(), &device);
  for (uint64_t k = 1; k <= 40000; ++k) tree.Put(2 * k, k);
  camal::util::Random rng(2);
  uint64_t value = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Get(2 * (1 + rng.Uniform(40000)), &value));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LsmGetHit);

void BM_LsmGetMiss(benchmark::State& state) {
  camal::sim::Device device(QuietDevice());
  camal::lsm::LsmTree tree(DefaultOptions(), &device);
  for (uint64_t k = 1; k <= 40000; ++k) tree.Put(2 * k, k);
  camal::util::Random rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Get(2 * rng.Uniform(40000) + 1, nullptr));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LsmGetMiss);

void BM_LsmScan(benchmark::State& state) {
  camal::sim::Device device(QuietDevice());
  camal::lsm::LsmTree tree(DefaultOptions(), &device);
  for (uint64_t k = 1; k <= 40000; ++k) tree.Put(2 * k, k);
  camal::util::Random rng(4);
  std::vector<camal::lsm::Entry> out;
  for (auto _ : state) {
    out.clear();
    tree.Scan(2 * rng.Uniform(40000), 16, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LsmScan);

void BM_BloomProbe(benchmark::State& state) {
  camal::lsm::BloomFilter filter(40000, 10.0);
  for (uint64_t k = 0; k < 40000; ++k) filter.Add(2 * k);
  camal::util::Random rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter.MayContain(rng.Next()));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BloomProbe);

void BM_MonkeyAllocate(benchmark::State& state) {
  const std::vector<uint64_t> levels = {300, 2700, 24300, 218700};
  for (auto _ : state) {
    benchmark::DoNotOptimize(camal::lsm::MonkeyAllocate(10.0 * 246000, levels));
  }
}
BENCHMARK(BM_MonkeyAllocate);

void BM_TheoreticalOptimum(benchmark::State& state) {
  camal::model::SystemParams params;
  camal::model::CostModel cm(params);
  camal::model::WorkloadSpec w{0.25, 0.25, 0.25, 0.25};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        camal::model::MinimizeCost(w, cm, camal::lsm::CompactionPolicy::kLeveling));
  }
}
BENCHMARK(BM_TheoreticalOptimum);

void BM_GbdtFitPredict(benchmark::State& state) {
  camal::util::Random rng(6);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 90; ++i) {
    x.push_back({rng.NextDouble(), rng.NextDouble(), rng.NextDouble()});
    y.push_back(x.back()[0] * 3 + x.back()[1]);
  }
  for (auto _ : state) {
    camal::ml::Gbdt gbdt;
    gbdt.Fit(x, y);
    benchmark::DoNotOptimize(gbdt.Predict(x[0]));
  }
}
BENCHMARK(BM_GbdtFitPredict);

}  // namespace

BENCHMARK_MAIN();
